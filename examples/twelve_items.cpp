// The Figure-1 walkthrough: partial quantum search of a twelve-item
// database in two queries — the headline run served by pqs::Engine (the
// "twelve" registry entry; "auto" also picks it, because N = 12, K = 3 is
// exactly the N = 4K/(K-2) shape), the stage-by-stage pictures from the
// low-level partial/twelve.h trace API.
#include <iostream>

#include "api/api.h"
#include "common/cli.h"
#include "partial/twelve.h"

int main(int argc, char** argv) {
  using namespace pqs;
  Cli cli(argc, argv);
  api::SpecFlagSet flags;
  flags.algo = false;
  flags.problem = false;
  SearchSpec spec = api::parse_search_spec(cli, flags);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }
  cli.finish();

  std::cout <<
      "Figure 1 - partial quantum search in a database of twelve items\n"
      "three blocks of four; we only want to know WHICH THIRD holds the "
      "target.\n\n";

  // The amplitude pictures need the full per-stage vectors: that is the
  // low-level trace API's job.
  const auto trace = partial::run_figure1(/*target=*/7, spec.backend);
  std::cout << trace.render();

  // The run itself is one declarative request.
  Engine engine;
  spec.n_items = 12;
  spec.n_blocks = 3;
  spec.marked = {7};
  spec.algorithm = "auto";
  std::cout << "auto resolves (N = 12, K = 3) to: "
            << engine.resolve_algorithm(spec) << "\n";
  const auto report = engine.run(spec);
  std::cout << report.to_string() << "\n\n";

  std::cout << "queries used:          " << report.queries << "\n"
            << "P(correct block):      " << report.success_probability << "\n"
            << "P(target state):       " << trace.target_probability
            << "  (a free bonus: 3/4 of the time we get the exact item)\n\n";

  std::cout <<
      "why it works: after (C) the target block holds amplitude 2/sqrt(12) "
      "on the target\nand 0 elsewhere; inverting the target again (D) makes "
      "the GLOBAL average exactly\nhalf the non-target amplitude, so the "
      "final inversion about the average (E)\nannihilates every non-target "
      "block. Measuring the block index is then certain.\n\n";

  std::cout << "the same two-query pattern is exact only when "
               "N = 4K/(K-2):\n";
  for (const auto& inst : partial::two_query_instances(64)) {
    std::cout << "  N = " << inst.n_items << ", K = " << inst.k_blocks
              << "\n";
  }
  std::cout << "for all other shapes the paper's general three-step "
               "algorithm (--algo grk) takes over.\n";
  return 0;
}

// The Figure-1 walkthrough: partial quantum search of a twelve-item
// database in two queries, stage by stage, exactly as drawn in the paper.
#include <iostream>

#include "common/cli.h"
#include "partial/twelve.h"
#include "qsim/flags.h"

int main(int argc, char** argv) {
  using namespace pqs;
  Cli cli(argc, argv);
  const auto engine = qsim::parse_engine_flags(cli);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }
  cli.finish();

  std::cout <<
      "Figure 1 - partial quantum search in a database of twelve items\n"
      "three blocks of four; we only want to know WHICH THIRD holds the "
      "target.\n\n";

  const auto trace = partial::run_figure1(/*target=*/7, engine.backend);
  std::cout << trace.render();

  std::cout << "queries used:          " << trace.queries << "\n"
            << "P(correct block):      " << trace.block_probability << "\n"
            << "P(target state):       " << trace.target_probability
            << "  (a free bonus: 3/4 of the time we get the exact item)\n\n";

  std::cout <<
      "why it works: after (C) the target block holds amplitude 2/sqrt(12) "
      "on the target\nand 0 elsewhere; inverting the target again (D) makes "
      "the GLOBAL average exactly\nhalf the non-target amplitude, so the "
      "final inversion about the average (E)\nannihilates every non-target "
      "block. Measuring the block index is then certain.\n\n";

  std::cout << "the same two-query pattern is exact only when "
               "N = 4K/(K-2):\n";
  for (const auto& inst : partial::two_query_instances(64)) {
    std::cout << "  N = " << inst.n_items << ", K = " << inst.k_blocks
              << "\n";
  }
  std::cout << "for all other shapes the paper's general three-step "
               "algorithm (partial/grk.h) takes over.\n";
  return 0;
}

// Noise-robustness demo: how does the partial-search advantage survive an
// imperfect oracle? We sweep the depolarizing rate — each point is one
// "noisy" request against the engine (the plan cache derives the schedule
// once and serves every later point) — and watch both answers decay: the
// partial searcher, running ~25% fewer queries, decays slower.
//
//   ./build/examples/noisy_search --qubits 9
//   ./build/examples/noisy_search --qubits 32 --backend symmetry --batch 0
#include <iostream>
#include <vector>

#include "api/api.h"
#include "common/cli.h"
#include "common/table.h"
#include "oracle/database.h"
#include "partial/noisy.h"

int main(int argc, char** argv) {
  using namespace pqs;
  Cli cli(argc, argv);
  api::SpecFlagSet flags;
  flags.algo = false;
  flags.batch = true;
  flags.noise = true;
  flags.noise_default = "depolarizing";
  flags.seed_default = 99;
  SearchSpec spec = api::parse_search_spec(cli, flags, "noisy",
                                           /*default_qubits=*/9,
                                           /*default_kbits=*/2,
                                           /*default_target=*/100);
  // The historical flag name for the trajectory count (--shots stays
  // undeclared here so the two knobs cannot silently shadow each other).
  const auto trials = static_cast<std::uint64_t>(
      cli.get_int("trials", 120, "trajectories per point"));
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }
  cli.finish();
  spec.shots = trials;

  Engine engine;
  std::cout << "which quarter holds the target, when every oracle call "
               "leaks noise? (N = " << spec.n_items << ")\n\n";

  std::vector<double> rates{0.0, 0.005, 0.02, 0.08};
  if (spec.noise.probability > 0.0) {
    rates = {0.0, spec.noise.probability};  // --noise-p replaces the sweep
  } else if (spec.noise.kind == qsim::NoiseKind::kNone) {
    rates = {0.0};  // clean baseline only: no channel means no noisy rows
  }

  Table table({"error rate", "partial search", "full search (same question)",
               "plan"});
  for (const double p : rates) {
    spec.noise.probability = p;
    const auto part = engine.run(spec);

    // The comparison row — full Grover answering the same block question —
    // comes from the documented low-level driver.
    const oracle::Database db(spec.n_items, spec.target());
    Rng rng(spec.seed);
    partial::NoisyOptions options;
    options.backend = spec.backend;
    options.batch = spec.batch;
    const auto full = partial::run_noisy_full_search_block(
        db, 2, spec.noise, trials, rng, options);

    table.add_row({Table::num(p, 3),
                   Table::num(part.success_probability, 2) + " @ " +
                       Table::num(part.queries_per_trial) + " queries",
                   Table::num(full.success_rate, 2) + " @ " +
                       Table::num(full.queries_per_trial) + " queries",
                   part.plan_cache_hit ? "cached" : "computed"});
  }
  std::cout << table.render();
  std::cout << "\nfewer queries = fewer chances for the environment to "
               "corrupt the register: partial search is not just faster, "
               "it is more robust per answer.\n";
  return 0;
}

// Noise-robustness demo: how does the partial-search advantage survive an
// imperfect oracle? We sweep the depolarizing rate and watch both answers
// decay — the partial searcher, running ~25% fewer queries, decays slower.
#include <iostream>

#include "common/cli.h"
#include "common/table.h"
#include "oracle/database.h"
#include "partial/noisy.h"

int main(int argc, char** argv) {
  using namespace pqs;
  Cli cli(argc, argv);
  const auto n = static_cast<unsigned>(
      cli.get_int("qubits", 9, "address qubits"));
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }
  cli.finish();

  const oracle::Database db = oracle::Database::with_qubits(n, 100);
  Rng rng(99);
  std::cout << "which quarter holds the target, when every oracle call "
               "leaks noise? (N = 2^" << n << ")\n\n";

  Table table({"error rate", "partial search", "full search (same question)"});
  for (const double p : {0.0, 0.005, 0.02, 0.08}) {
    const qsim::NoiseModel model{qsim::NoiseKind::kDepolarizing, p};
    const auto part = partial::run_noisy_partial_search(db, 2, model, 120, rng);
    const auto full =
        partial::run_noisy_full_search_block(db, 2, model, 120, rng);
    table.add_row({Table::num(p, 3),
                   Table::num(part.success_rate, 2) + " @ " +
                       Table::num(part.queries_per_trial) + " queries",
                   Table::num(full.success_rate, 2) + " @ " +
                       Table::num(full.queries_per_trial) + " queries"});
  }
  std::cout << table.render();
  std::cout << "\nfewer queries = fewer chances for the environment to "
               "corrupt the register: partial search is not just faster, "
               "it is more robust per answer.\n";
  return 0;
}

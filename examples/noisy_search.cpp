// Noise-robustness demo: how does the partial-search advantage survive an
// imperfect oracle? We sweep the depolarizing rate and watch both answers
// decay — the partial searcher, running ~25% fewer queries, decays slower.
//
//   ./build/examples/noisy_search --qubits 9
//   ./build/examples/noisy_search --qubits 32 --backend symmetry --batch 0
#include <cmath>
#include <iostream>
#include <vector>

#include "common/cli.h"
#include "common/table.h"
#include "oracle/database.h"
#include "partial/noisy.h"
#include "partial/optimizer.h"
#include "qsim/flags.h"

int main(int argc, char** argv) {
  using namespace pqs;
  Cli cli(argc, argv);
  const auto n = static_cast<unsigned>(
      cli.get_int("qubits", 9, "address qubits"));
  const auto trials = static_cast<std::uint64_t>(
      cli.get_int("trials", 120, "trajectories per point"));
  const auto engine = qsim::parse_engine_flags_with_noise(cli);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }
  cli.finish();

  const oracle::Database db = oracle::Database::with_qubits(n, 100);
  Rng rng(99);
  partial::NoisyOptions options;
  options.backend = engine.backend;
  options.batch = engine.batch;
  // One schedule for the whole sweep, size-aware (exact at small n, the
  // asymptotic geometry past 2^24 items), paid for once.
  const auto schedule = partial::optimize_schedule(
      db.size(), 4, 1.0 - 1.0 / std::sqrt(static_cast<double>(db.size())));
  options.l1 = schedule.l1;
  options.l2 = schedule.l2;
  std::cout << "which quarter holds the target, when every oracle call "
               "leaks noise? (N = 2^" << n << ")\n\n";

  std::vector<double> rates{0.0, 0.005, 0.02, 0.08};
  if (engine.noise.probability > 0.0) {
    rates = {0.0, engine.noise.probability};  // --noise-p replaces the sweep
  } else if (engine.noise.kind == qsim::NoiseKind::kNone) {
    rates = {0.0};  // clean baseline only: no channel means no noisy rows
  }
  Table table({"error rate", "partial search", "full search (same question)"});
  for (const double p : rates) {
    const qsim::NoiseModel model{engine.noise.kind, p};
    const auto part =
        partial::run_noisy_partial_search(db, 2, model, trials, rng, options);
    const auto full = partial::run_noisy_full_search_block(db, 2, model,
                                                           trials, rng,
                                                           options);
    table.add_row({Table::num(p, 3),
                   Table::num(part.success_rate, 2) + " @ " +
                       Table::num(part.queries_per_trial) + " queries",
                   Table::num(full.success_rate, 2) + " @ " +
                       Table::num(full.queries_per_trial) + " queries"});
  }
  std::cout << table.render();
  std::cout << "\nfewer queries = fewer chances for the environment to "
               "corrupt the register: partial search is not just faster, "
               "it is more robust per answer.\n";
  return 0;
}

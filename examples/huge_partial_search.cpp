// Partial search far beyond dense-simulation reach: the symmetry backend
// evolves the exact GRK dynamics in O(K) per iteration, so a 2^60-item
// database is as cheap as a 2^10-item one. Batched shots fan out across
// OpenMP threads with independent per-shot RNG streams.
//
//   ./build/examples/huge_partial_search --qubits 60 --kbits 3 \
//       --shots 1000 --backend symmetry --batch 0
#include <cmath>
#include <iostream>

#include "common/cli.h"
#include "common/math.h"
#include "common/table.h"
#include "common/timing.h"
#include "oracle/database.h"
#include "partial/grk.h"
#include "partial/optimizer.h"
#include "qsim/backend.h"
#include "qsim/batch.h"

int main(int argc, char** argv) {
  using namespace pqs;
  Cli cli(argc, argv);
  const auto n = static_cast<unsigned>(
      cli.get_int("qubits", 48, "address bits (N = 2^n items; up to 62)"));
  const auto k = static_cast<unsigned>(
      cli.get_int("kbits", 3, "wanted bits (K = 2^k blocks)"));
  const auto shots = static_cast<std::uint64_t>(
      cli.get_int("shots", 1000, "measurement shots of the final state"));
  const std::string backend_flag = cli.get_string(
      "backend", "auto", "simulation engine (auto | dense | symmetry)");
  const auto batch_threads = static_cast<unsigned>(cli.get_int(
      "batch", 0, "threads for the shot fan-out (0 = all hardware threads)"));
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }
  cli.finish();
  PQS_CHECK_MSG(n >= 2 && n <= 62, "need 2 <= qubits <= 62");
  PQS_CHECK_MSG(k >= 1 && k < n, "need 1 <= kbits < qubits");
  const qsim::BackendKind kind = qsim::parse_backend_kind(backend_flag);

  const std::uint64_t n_items = pow2(n);
  const std::uint64_t k_blocks = pow2(k);
  const oracle::Database db(n_items, n_items / 3 + 5);

  // The asymptotic schedule: the finite-N integer scan would itself cost
  // O(sqrt(N) sqrt(N/K)), so at huge N we use the paper's closed form.
  const auto opt = partial::optimize_epsilon(k_blocks);
  const double sqrt_n = std::sqrt(static_cast<double>(n_items));
  const double sqrt_block =
      std::sqrt(static_cast<double>(n_items / k_blocks));
  partial::GrkOptions options;
  options.l1 = static_cast<std::uint64_t>(
      std::llround(kQuarterPi * (1.0 - opt.epsilon) * sqrt_n));
  options.l2 = static_cast<std::uint64_t>(std::llround(
      (opt.angles.theta1 + opt.angles.theta2) / 2.0 * sqrt_block));
  options.backend = kind;

  std::cout << "partial search over N = 2^" << n << " = " << n_items
            << " items, K = " << k_blocks << " blocks\n"
            << "schedule: l1 = " << *options.l1 << " global + l2 = "
            << *options.l2 << " local iterations + 1 (Step 3)\n";

  Stopwatch evolve_watch;
  const auto backend = partial::evolve_partial_search_on_backend(
      db, k, *options.l1, *options.l2, kind);
  const double evolve_seconds = evolve_watch.seconds();

  const qsim::Index target_block = backend->target_block();
  std::cout << "engine: " << to_string(backend->kind()) << ", evolved in "
            << evolve_watch.human() << "\n"
            << "target block " << target_block << " holds probability "
            << Table::num(backend->block_probability(target_block), 12)
            << " (target state itself: "
            << Table::num(backend->marked_probability(), 12) << ")\n"
            << "queries: " << db.queries() << " vs full Grover's ~"
            << Table::num(kQuarterPi * sqrt_n, 0) << "\n\n";

  const qsim::BatchRunner runner({.threads = batch_threads, .seed = 2005});
  Stopwatch shot_watch;
  const auto report = runner.sample_block_shots(*backend, shots,
                                                db.queries());
  std::cout << "batched block measurement (" << runner.threads()
            << " thread(s), " << shot_watch.human() << "):\n"
            << report.to_string() << "\n"
            << (report.mode == target_block
                    ? "=> the measured mode IS the target block"
                    : "=> unexpected mode (should be vanishingly rare)")
            << "\n"
            << "evolution wall time: " << Table::num(evolve_seconds, 6)
            << " s for " << db.queries() << " oracle queries\n";
  return 0;
}

// Partial search far beyond dense-simulation reach, as ONE declarative
// request: the engine plans the schedule (the plan cache switches to the
// paper's asymptotic geometry at huge N, so planning stays instant), runs
// the O(K)-per-step symmetry engine, and fans the measurement shots across
// OpenMP threads. A second identical request shows the cache at work.
//
//   ./build/examples/huge_partial_search --qubits 60 --kbits 3 \
//       --shots 1000 --backend symmetry --batch 0
#include <cmath>
#include <iostream>

#include "api/api.h"
#include "common/cli.h"
#include "common/math.h"
#include "common/table.h"

int main(int argc, char** argv) {
  using namespace pqs;
  Cli cli(argc, argv);
  api::SpecFlagSet flags;
  flags.algo = false;
  flags.shots = true;
  flags.shots_default = 1000;
  flags.batch = true;
  SearchSpec spec = api::parse_search_spec(
      cli, flags, "grk", /*default_qubits=*/48, /*default_kbits=*/3,
      /*default_target=*/pow2(48) / 3 + 5);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }
  cli.finish();

  std::cout << "partial search over N = " << spec.n_items << " items, K = "
            << spec.n_blocks << " blocks\n";

  Engine engine;
  const auto report = engine.run(spec);
  std::cout << "schedule: l1 = " << report.l1 << " global + l2 = "
            << report.l2 << " local iterations + 1 (Step 3), planned in "
            << Table::num(static_cast<double>(report.plan_ns) * 1e-9, 6) << " s\n"
            << "engine: " << qsim::to_string(report.backend_used)
            << ", evolved + " << report.trials << " shots in "
            << Table::num(static_cast<double>(report.exec_ns) * 1e-9, 6) << " s\n"
            << "measured mode: block " << report.measured
            << (report.correct ? " (the target block)" : " (UNEXPECTED)")
            << "\n"
            << "success probability "
            << Table::num(report.success_probability, 12) << "; queries "
            << report.queries_per_trial << " vs full Grover's ~"
            << Table::num(kQuarterPi *
                              std::sqrt(static_cast<double>(spec.n_items)),
                          0)
            << "\n\n";

  // The same request again: the engine plans in ~0 time off the cache.
  const auto again = engine.run(spec);
  std::cout << "same request again: plan "
            << (again.plan_cache_hit ? "served from cache" : "recomputed")
            << " (" << Table::num(static_cast<double>(again.plan_ns) * 1e-9, 6)
            << " s planning, "
            << Table::num(static_cast<double>(again.exec_ns) * 1e-9, 6)
            << " s run)\n";
  return 0;
}

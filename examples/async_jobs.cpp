// The service layer in one sitting: asynchronous submits, coalescing,
// priorities, progress, cancellation, and the queue/plan/exec timing split.
//
//   ./build/examples/async_jobs --threads 2 --queue-depth 64 --qubits 14
#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "api/serialize.h"
#include "common/cli.h"
#include "common/math.h"
#include "service/flags.h"
#include "service/service.h"

using namespace pqs;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const ServiceOptions options = service::parse_service_flags(cli);
  const auto n = static_cast<unsigned>(
      cli.get_int("qubits", 14, "address bits (N = 2^qubits items)"));
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }
  cli.finish();

  Service service(options);
  std::cout << "service: " << options.threads << " worker(s), queue depth "
            << options.queue_capacity << "\n\n";

  // A burst of jobs: one spec submitted twice (they coalesce into ONE
  // driver execution), a different-seed variant, and a high-priority
  // latecomer that overtakes the FIFO.
  SearchSpec spec = SearchSpec::single_target(pow2(n), 4, pow2(n) / 3 + 1);
  spec.algorithm = "grk";
  spec.shots = 2000;

  std::vector<JobHandle> handles;
  handles.push_back(service.submit(spec));
  handles.push_back(service.submit(spec));  // identical -> coalesces
  SearchSpec variant = spec;
  variant.seed = 77;
  handles.push_back(service.submit(variant));
  SearchSpec urgent = spec;
  urgent.seed = 99;
  handles.push_back(service.submit(urgent, /*priority=*/10));

  for (std::size_t i = 0; i < handles.size(); ++i) {
    const JobStatus status = handles[i].wait();
    const SearchReport& report = handles[i].report();
    std::cout << "job " << i << " [" << to_string(status) << "] measured "
              << (report.block_answer ? "block " : "address ")
              << report.measured << (report.correct ? " ok" : " WRONG")
              << ", timing queue " << report.queue_ns << " ns / plan "
              << report.plan_ns << " ns / exec " << report.exec_ns << " ns\n";
  }
  const ServiceStats stats = service.stats();
  std::cout << "\nstats: " << stats.submitted << " submitted, "
            << stats.coalesced_submits << " coalesced, " << stats.executed
            << " executed, " << stats.done << " done\n";

  // Cancellation: a huge sweep we change our mind about.
  SearchSpec sweep = SearchSpec::single_target(pow2(n), 4, 5);
  sweep.algorithm = "noisy";
  sweep.noise.kind = qsim::NoiseKind::kDepolarizing;
  sweep.noise.probability = 1e-4;
  sweep.shots = 500000;
  JobHandle big = service.submit(sweep);
  while (big.status() == JobStatus::kQueued) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  big.cancel();
  std::cout << "cancelled sweep: [" << to_string(big.wait()) << "] at "
            << big.progress() * 100.0 << "% done\n";

  // The same spec as JSON — what a pqs_serve client would send.
  std::cout << "\nwire form of the first request:\n"
            << api::to_json(spec).dump() << "\n";
  return 0;
}

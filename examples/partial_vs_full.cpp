// Side-by-side cost comparison for YOUR problem size: how much cheaper is
// knowing only the first k bits of the address? The GRK schedule comes
// from Engine::plan — the same cached planner the service path uses — so
// this is also the cost-preview workflow: plan first, run later, pay the
// schedule search once.
//
//   ./build/examples/partial_vs_full --qubits 18 --kbits 3
#include <cmath>
#include <iostream>

#include "api/api.h"
#include "common/cli.h"
#include "common/math.h"
#include "common/table.h"
#include "partial/bounds.h"
#include "partial/certainty.h"

int main(int argc, char** argv) {
  using namespace pqs;
  Cli cli(argc, argv);
  api::SpecFlagSet flags;
  flags.algo = false;
  SearchSpec spec = api::parse_search_spec(cli, flags, "grk",
                                           /*default_qubits=*/16,
                                           /*default_kbits=*/2,
                                           /*default_target=*/0);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }
  cli.finish();
  PQS_CHECK_MSG(spec.n_blocks >= 2 && spec.n_blocks < spec.n_items,
                "need 1 <= kbits < qubits");

  const std::uint64_t n_items = spec.n_items;
  const std::uint64_t k_blocks = spec.n_blocks;
  const double sqrt_n = std::sqrt(static_cast<double>(n_items));
  const unsigned k = log2_exact(k_blocks);

  std::cout << "N = " << n_items << " items; you want the first " << k
            << " bit(s) of the marked address (" << k_blocks
            << " blocks)\n\n";

  Engine engine;
  spec.min_success = 1.0 - 1.0 / sqrt_n;
  const auto grk = engine.plan(spec);  // the cached planner's schedule
  const auto certain = partial::certainty_schedule(n_items, k_blocks);

  Table table({"method", "queries", "per sqrt(N)", "answer quality"});
  table.add_row({"classical randomized (optimal, App. A)",
                 Table::num(partial::classical_partial_randomized_paper(
                                n_items, k_blocks),
                            0),
                 "-", "exact"});
  table.add_row({"full Grover search (overkill)",
                 Table::num(grover_optimal_iterations(n_items)),
                 Table::num(kQuarterPi, 3), "whole address, err ~1/N"});
  table.add_row({"naive quantum partial (Sec. 1.2)",
                 Table::num(partial::naive_block_discard_coefficient(
                                k_blocks) * sqrt_n,
                            0),
                 Table::num(partial::naive_block_discard_coefficient(k_blocks),
                            3),
                 "block, small error"});
  table.add_row({"GRK partial search (Sec. 3)",
                 Table::num(grk.schedule.queries),
                 Table::num(static_cast<double>(grk.schedule.queries) /
                                sqrt_n,
                            3),
                 "block, err <= " +
                     Table::num(1.0 - grk.schedule.success, 5)});
  table.add_row({"GRK sure-success variant", Table::num(certain.queries),
                 Table::num(static_cast<double>(certain.queries) / sqrt_n, 3),
                 "block, certain"});
  table.add_row({"Theorem-2 lower bound",
                 Table::num(partial::lower_bound_coefficient(k_blocks) *
                                sqrt_n,
                            0),
                 Table::num(partial::lower_bound_coefficient(k_blocks), 3),
                 "(no algorithm can beat this)"});
  std::cout << table.render();

  const double saved =
      static_cast<double>(grover_optimal_iterations(n_items)) -
      static_cast<double>(grk.schedule.queries);
  std::cout << "\nsavings over full search: " << Table::num(saved, 0)
            << " queries ~ " << Table::num(saved / sqrt_n, 3)
            << " sqrt(N) = Theta(sqrt(N/K)); schedule: l1 = "
            << grk.schedule.l1 << " global + l2 = " << grk.schedule.l2
            << " local + 1 final query (planned in "
            << Table::num(static_cast<double>(grk.plan_ns) * 1e-9, 4) << " s, cached for "
            << "every later request).\n";
  return 0;
}

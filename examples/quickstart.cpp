// Quickstart: search a 4096-item database three ways.
//
//   1. Full quantum search (Grover): ~ (pi/4) sqrt(N) queries.
//   2. Partial quantum search (this paper): you only want the first k bits
//      of the address, and you get them CHEAPER.
//   3. Sure-success partial search: same answer, probability exactly 1.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//   ./build/examples/quickstart --backend symmetry   # same run, O(K) engine
#include <iostream>

#include "common/cli.h"
#include "common/random.h"
#include "grover/grover.h"
#include "oracle/database.h"
#include "partial/certainty.h"
#include "partial/grk.h"
#include "qsim/flags.h"

int main(int argc, char** argv) {
  using namespace pqs;
  Cli cli(argc, argv);
  const auto engine = qsim::parse_engine_flags(cli);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }
  cli.finish();

  // A database of N = 2^12 items with one marked address. The Database
  // counts every oracle query, classical or quantum.
  constexpr unsigned kQubits = 12;
  constexpr qsim::Index kTarget = 2731;  // 101010101011 in binary
  const oracle::Database db = oracle::Database::with_qubits(kQubits, kTarget);
  Rng rng(/*seed=*/1);

  // --- 1. Full search -------------------------------------------------
  const auto full = grover::search(db, rng, {.backend = engine.backend});
  std::cout << "full search:      found address " << full.measured
            << (full.correct ? " (correct)" : " (wrong!)") << " in "
            << full.queries << " queries\n";

  // --- 2. Partial search ----------------------------------------------
  // Only the first k = 2 bits: which quarter of the database is it in?
  db.reset_queries();
  const auto partial = partial::run_partial_search(
      db, /*k=*/2, rng, {.backend = engine.backend});
  std::cout << "partial search:   target is in quarter "
            << partial.measured_block
            << (partial.correct ? " (correct)" : " (wrong!)") << " in "
            << partial.queries << " queries "
            << "(success probability " << partial.block_probability << ")\n";

  // --- 3. Sure-success partial search ----------------------------------
  db.reset_queries();
  const auto certain =
      partial::run_partial_search_certain(db, /*k=*/2, rng, engine.backend);
  std::cout << "sure-success:     target is in quarter "
            << certain.measured_block << " in " << certain.schedule.queries
            << " queries (probability " << certain.block_probability
            << ")\n\n";

  std::cout << "the paper's point: " << partial.queries << " < "
            << full.queries
            << " - knowing less costs less, by Theta(sqrt(N/K)) queries.\n";
  return 0;
}

// Quickstart: search a 4096-item database three ways, all through the ONE
// declarative API — build a pqs::SearchSpec, hand it to pqs::Engine, read
// the unified SearchReport. The engine owns the algorithm registry and the
// plan cache; the per-module headers (grover/grover.h, partial/grk.h, ...)
// remain the documented low-level layer underneath.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//   ./build/examples/quickstart --backend symmetry   # same runs, O(K) engine
#include <iostream>

#include "api/api.h"
#include "common/cli.h"

int main(int argc, char** argv) {
  using namespace pqs;
  Cli cli(argc, argv);
  // One spec carries the whole request; --backend/--seed parse into it.
  api::SpecFlagSet flags;
  flags.algo = false;
  flags.problem = false;
  flags.seed_default = 1;
  SearchSpec spec = api::parse_search_spec(cli, flags);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }
  cli.finish();

  // A database of N = 2^12 items with one marked address; the engine builds
  // the counted-query oracle from the spec on every run.
  spec.n_items = 4096;
  spec.marked = {2731};  // 101010101011 in binary

  Engine engine;

  // --- 1. Full search (the whole address) ------------------------------
  spec.algorithm = "grover";
  spec.n_blocks = 1;
  const auto full = engine.run(spec);
  std::cout << "full search:      " << full.to_string() << "\n\n";

  // --- 2. Partial search: which quarter of the database? ----------------
  spec.algorithm = "grk";
  spec.n_blocks = 4;  // first k = 2 bits
  const auto partial = engine.run(spec);
  std::cout << "partial search:   " << partial.to_string() << "\n\n";

  // --- 3. Sure-success partial search -----------------------------------
  spec.algorithm = "certainty";
  const auto certain = engine.run(spec);
  std::cout << "sure-success:     " << certain.to_string() << "\n\n";

  // "auto" picks per the paper's cost model; with min_success = 1 it
  // resolves to the sure-success variant.
  spec.algorithm = "auto";
  std::cout << "auto resolves to: " << engine.resolve_algorithm(spec)
            << " (and with min_success = 1: ";
  spec.min_success = 1.0;
  std::cout << engine.resolve_algorithm(spec) << ")\n\n";

  std::cout << "the paper's point: " << partial.queries << " < "
            << full.queries
            << " - knowing less costs less, by Theta(sqrt(N/K)) queries.\n";
  return 0;
}

// The search service in one binary: EVERY algorithm in the repository
// behind one flag set — pick with --algo (or let "auto" plan), tune with
// the shared knobs, and read one report format. Then a burst of repeated
// requests shows what the plan cache buys a long-lived engine: the first
// request pays the schedule search, every later one plans in ~0 time.
//
//   ./build/examples/search_service --algo grk --qubits 16 --kbits 2
//   ./build/examples/search_service --algo auto --qubits 12 --min-success 1
//   ./build/examples/search_service --algo grk --qubits 40 --kbits 3 \
//       --backend symmetry --shots 1000 --batch 0
//   ./build/examples/search_service --algo noisy --qubits 9 --kbits 2 \
//       --noise depolarizing --noise-p 0.01 --shots 200
#include <iostream>

#include "api/api.h"
#include "common/cli.h"
#include "common/table.h"
#include "common/timing.h"

int main(int argc, char** argv) {
  using namespace pqs;
  Cli cli(argc, argv);
  api::SpecFlagSet flags;
  flags.shots = true;
  flags.batch = true;
  flags.noise = true;
  flags.schedule = true;
  SearchSpec spec = api::parse_search_spec(cli, flags);
  const auto requests = static_cast<std::uint64_t>(cli.get_int(
      "requests", 5, "how many identical requests to serve (cache demo)"));
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }
  cli.finish();

  Engine engine;
  std::cout << "registered algorithms:";
  for (const auto& name : engine.algorithm_names()) {
    std::cout << ' ' << name;
  }
  std::cout << "\n\nrequest: " << spec.describe() << "\n";
  if (spec.algorithm == "auto") {
    std::cout << "auto resolves to: " << engine.resolve_algorithm(spec)
              << "\n";
  }
  std::cout << "\n";

  Table table({"request", "answer", "queries", "success", "plan", "run"});
  for (std::uint64_t r = 0; r < requests; ++r) {
    const SearchReport report = engine.run(spec);
    table.add_row(
        {Table::num(r + 1),
         (report.block_answer ? "block " : "address ") +
             Table::num(report.measured) +
             (report.correct ? "" : " (WRONG)"),
         Table::num(report.queries),
         Table::num(report.success_probability, 6),
         report.plan_cache_hit
             ? "cache hit"
             : Table::num(static_cast<double>(report.plan_ns) * 1e-9, 6) + " s",
         Table::num(static_cast<double>(report.exec_ns) * 1e-9, 6) + " s"});
    if (r == 0 && !report.detail.empty()) {
      std::cout << "detail: " << report.detail << "\n\n";
    }
  }
  std::cout << table.render();
  std::cout << "\nplan cache: " << engine.planner().size()
            << " schedule(s), " << engine.planner().hits() << " hit(s), "
            << engine.planner().misses()
            << " miss(es) - a warm engine never re-derives a schedule it "
               "already knows.\n";
  return 0;
}

// The paper's motivating scenario (Section 1):
//
//   "the items in a database may be listed according to the order of
//    preference (say a merit-list which consists of a ranking of students
//    in a class sorted by the rank). We want to know roughly where a
//    particular student stands - whether he/she ranks in the top 25%, the
//    next 25%, the next 25%, or the bottom 25%. In other words, we want to
//    know the first two bits of the rank."
//
// We build a 1024-student merit list, pick a student, and answer the
// quartile question with partial quantum search — then show what the full
// rank would have cost.
#include <iostream>

#include "common/cli.h"
#include "common/random.h"
#include "grover/exact.h"
#include "grover/grover.h"
#include "oracle/merit_list.h"
#include "partial/certainty.h"
#include "qsim/flags.h"

int main(int argc, char** argv) {
  using namespace pqs;
  Cli cli(argc, argv);
  const auto engine = qsim::parse_engine_flags(cli);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }
  cli.finish();

  constexpr std::uint64_t kStudents = 1024;
  const oracle::MeritList list(kStudents, /*seed=*/2005);
  Rng rng(42);

  // Ask about a student (we don't know their rank; only the oracle does).
  const std::string student = list.name_at_rank(389);  // secretly rank 389
  std::cout << "merit list of " << kStudents << " students; asking about '"
            << student << "'\n\n";

  // Quartile = first two bits of the rank -> partial search with k = 2.
  const oracle::Database db = list.database_for(student);
  const auto result =
      partial::run_partial_search_certain(db, /*k=*/2, rng, engine.backend);
  std::cout << "quartile answer:  " << student << " is in the "
            << oracle::MeritList::fraction_label(result.measured_block, 4)
            << "\n";
  std::cout << "cost:             " << db.queries()
            << " oracle queries (probability-1 answer)\n\n";

  // What the full rank would cost.
  const oracle::Database db_full = list.database_for(student);
  const auto full =
      grover::search_exact(db_full, rng, {.backend = engine.backend});
  std::cout << "full rank:        " << full.measured << " (exact), costing "
            << db_full.queries() << " queries\n\n";

  std::cout << "partial search saved "
            << (db_full.queries() - db.queries())
            << " queries by answering only the question we asked.\n";

  // Finer bands: first three bits = which eighth of the class.
  const oracle::Database db8 = list.database_for(student);
  const auto eighth =
      partial::run_partial_search_certain(db8, /*k=*/3, rng, engine.backend);
  std::cout << "\nfiner answer:     the "
            << oracle::MeritList::fraction_label(eighth.measured_block, 8)
            << " cost " << db8.queries()
            << " queries - more bits, more queries, exactly as Theorem 1 "
               "prices them.\n";
  return 0;
}

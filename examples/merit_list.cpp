// The paper's motivating scenario (Section 1):
//
//   "the items in a database may be listed according to the order of
//    preference (say a merit-list which consists of a ranking of students
//    in a class sorted by the rank). We want to know roughly where a
//    particular student stands - whether he/she ranks in the top 25%, the
//    next 25%, the next 25%, or the bottom 25%. In other words, we want to
//    know the first two bits of the rank."
//
// We build a 1024-student merit list, pick a student, and phrase the
// quartile question as a declarative SearchSpec — the MERIT PREDICATE form:
// the spec never names the rank, only the question "is this position held
// by our student?", and the engine materializes the oracle from it.
#include <iostream>

#include "api/api.h"
#include "common/cli.h"
#include "oracle/merit_list.h"

int main(int argc, char** argv) {
  using namespace pqs;
  Cli cli(argc, argv);
  api::SpecFlagSet flags;
  flags.algo = false;
  flags.problem = false;
  flags.seed_default = 42;
  SearchSpec spec = api::parse_search_spec(cli, flags);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }
  cli.finish();

  constexpr std::uint64_t kStudents = 1024;
  const oracle::MeritList list(kStudents, /*seed=*/2005);

  // Ask about a student (we don't know their rank; only the oracle does).
  const std::string student = list.name_at_rank(389);  // secretly rank 389
  std::cout << "merit list of " << kStudents << " students; asking about '"
            << student << "'\n\n";

  // Quartile = first two bits of the rank -> sure-success partial search
  // with K = 4 blocks, phrased as a merit predicate.
  Engine engine;
  spec.algorithm = "certainty";
  spec.n_items = kStudents;
  spec.n_blocks = 4;
  spec.marked.clear();
  spec.predicate = [&](qsim::Index rank) {
    return list.name_at_rank(rank) == student;
  };

  const auto quartile = engine.run(spec);
  std::cout << "quartile answer:  " << student << " is in the "
            << oracle::MeritList::fraction_label(quartile.measured, 4)
            << "\n";
  std::cout << "cost:             " << quartile.queries
            << " oracle queries (probability-1 answer)\n\n";

  // What the full rank would cost (same spec, full-address algorithm).
  spec.algorithm = "exact";
  spec.n_blocks = 1;
  const auto full = engine.run(spec);
  std::cout << "full rank:        " << full.measured << " (exact), costing "
            << full.queries << " queries\n\n";

  std::cout << "partial search saved " << (full.queries - quartile.queries)
            << " queries by answering only the question we asked.\n";

  // Finer bands: first three bits = which eighth of the class.
  spec.algorithm = "certainty";
  spec.n_blocks = 8;
  const auto eighth = engine.run(spec);
  std::cout << "\nfiner answer:     the "
            << oracle::MeritList::fraction_label(eighth.measured, 8)
            << " cost " << eighth.queries
            << " queries - more bits, more queries, exactly as Theorem 1 "
               "prices them.\n";
  return 0;
}

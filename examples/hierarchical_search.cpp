// Hierarchical search: recover the FULL address by fixing k bits at a time
// with sure-success partial search (the Theorem-2 reduction run forward,
// as an algorithm rather than a proof device).
//
// Useful when answers are consumed progressively — e.g. routing: first pick
// the rack, then the machine, then the slot — paying per level, with the
// total still ~ sqrt(K)/(sqrt(K)-1) * c_K * sqrt(N).
#include <iostream>

#include "common/cli.h"
#include "common/math.h"
#include "common/random.h"
#include "common/table.h"
#include "oracle/database.h"
#include "qsim/flags.h"
#include "reduction/reduction.h"

int main(int argc, char** argv) {
  using namespace pqs;
  Cli cli(argc, argv);
  const auto n = static_cast<unsigned>(
      cli.get_int("qubits", 14, "address bits"));
  const auto k = static_cast<unsigned>(
      cli.get_int("kbits", 2, "bits fixed per level"));
  const auto target = static_cast<qsim::Index>(
      cli.get_int("target", 11213, "marked address"));
  const auto engine = qsim::parse_engine_flags(cli);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }
  cli.finish();

  const std::uint64_t n_items = pow2(n);
  const oracle::Database db =
      oracle::Database::with_qubits(n, target % n_items);
  Rng rng(7);

  std::cout << "hierarchical search of N = " << n_items << " addresses, "
            << k << " bit(s) per level\n\n";

  reduction::ReductionOptions options;
  options.backend = engine.backend;
  const auto result = reduction::search_full_via_partial(db, k, rng, options);

  Table table({"level", "sub-database", "bits fixed", "queries", "method"});
  for (const auto& level : result.levels) {
    table.add_row({Table::num(level.level), Table::num(level.db_size),
                   Table::num(level.bits_fixed), Table::num(level.queries),
                   level.via_partial_search ? "partial quantum search"
                                            : "classical scan"});
  }
  std::cout << table.render();

  std::cout << "\nfound address " << result.found
            << (result.correct ? " (correct)" : " (WRONG)") << " in "
            << result.total_queries << " total queries; a single full "
            << "Grover search would use "
            << grover_optimal_iterations(n_items)
            << ".\nthe overhead factor sqrt(K)/(sqrt(K)-1) is the price of "
               "progressive answers - and inverting it is exactly how the "
               "paper proves its lower bound.\n";
  return 0;
}

// Hierarchical search: recover the FULL address by fixing k bits at a time
// with sure-success partial search (the Theorem-2 reduction run forward,
// as an algorithm rather than a proof device) — one "reduction" request
// against the engine.
//
// Useful when answers are consumed progressively — e.g. routing: first pick
// the rack, then the machine, then the slot — paying per level, with the
// total still ~ sqrt(K)/(sqrt(K)-1) * c_K * sqrt(N).
#include <iostream>

#include "api/api.h"
#include "common/cli.h"
#include "common/math.h"

int main(int argc, char** argv) {
  using namespace pqs;
  Cli cli(argc, argv);
  api::SpecFlagSet flags;
  flags.seed_default = 7;
  SearchSpec spec = api::parse_search_spec(cli, flags, "reduction",
                                           /*default_qubits=*/14,
                                           /*default_kbits=*/2,
                                           /*default_target=*/11213);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }
  cli.finish();

  std::cout << "hierarchical search of N = " << spec.n_items
            << " addresses, " << log2_exact(spec.n_blocks)
            << " bit(s) per level\n\n";

  Engine engine;
  const auto report = engine.run(spec);
  std::cout << report.to_string() << "\n";

  std::cout << "\nfound address " << report.measured
            << (report.correct ? " (correct)" : " (WRONG)") << " in "
            << report.queries << " total queries; a single full "
            << "Grover search would use "
            << grover_optimal_iterations(spec.n_items)
            << ".\nthe overhead factor sqrt(K)/(sqrt(K)-1) is the price of "
               "progressive answers - and inverting it is exactly how the "
               "paper proves its lower bound.\n";
  return 0;
}

#!/usr/bin/env bash
# Networked-serve smoke: the byte-determinism acceptance gate for the net
# subsystem. Replays tests/fixtures/serve_session.jsonl through
#
#   1. one pqs_serve --listen worker, directly, and
#   2. a pqs_router sharding the same fixture across FOUR workers,
#
# and requires the client-visible result streams to be byte-identical —
# submission-ordered release in the session emitter and the router's
# in-order flush are exactly what make a shard fleet transparent at fixed
# seeds. Also asserts the fixture's known shape: 6 results (the seventh
# request carries an invalid spec and is answered by an error ack).
#
# On top of the determinism gate, the observability ops are probed against
# both deployments: `metrics` must answer with a well-formed registry
# snapshot (counters/gauges/histograms; fleet-merged with worker counts on
# the router) and `trace` must return the span timeline of a job submitted
# on the same connection.
#
# Usage: scripts/net_smoke.sh [build-dir]   (default: build)
set -eu
cd "$(dirname "$0")/.."
build="${1:-build}"
serve="${build}/tools/pqs_serve"
router="${build}/tools/pqs_router"
loadgen="${build}/tools/pqs_loadgen"
fixture="tests/fixtures/serve_session.jsonl"
out="$(mktemp -d)"
pids=()

cleanup() {
  for pid in "${pids[@]:-}"; do
    kill "${pid}" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "${out}"
}
trap cleanup EXIT

# Ephemeral base port, offset into the dynamic range by PID to keep
# concurrent CI shards from colliding.
base=$(( 20000 + ($$ % 20000) ))

# Probe the observability ops against a live endpoint: submit one job on a
# fresh connection, then require `trace` to return that job's span timeline
# and `metrics` to return a well-formed registry snapshot. $2 names the
# deployment ("direct" | "router") — the router's metrics event must carry
# the fleet scope (role/workers) on top of the merged snapshot.
probe_obs_ops() {
  python3 - "$1" "$2" <<'PY'
import json, socket, sys

hostport, mode = sys.argv[1], sys.argv[2]
host, port = hostport.rsplit(":", 1)
sock = socket.create_connection((host, int(port)), timeout=30)
reader = sock.makefile("r", encoding="utf-8")

def send(obj):
    sock.sendall((json.dumps(obj) + "\n").encode())

def next_event():
    line = reader.readline()
    assert line, "connection closed while expecting an event"
    return json.loads(line)

# Distinct from every fixture spec: a result-cache hit is answered without
# re-running the job, so it mints no trace — the probe needs a fresh run.
spec = {"algorithm": "grk", "n_items": 4096, "n_blocks": 4,
        "marked": [1234], "seed": 90210}
send({"op": "submit", "id": "obs-probe", "spec": spec})
ack = next_event()
assert ack["event"] == "accepted", ack
while True:
    event = next_event()
    if event["event"] == "result":
        assert event["id"] == "obs-probe", event
        break

send({"op": "trace", "id": "obs-probe"})
trace = next_event()
assert trace["event"] == "trace", trace
assert trace["id"] == "obs-probe", trace
spans = trace["trace"]["spans"]
names = [s["name"] for s in spans]
assert "submit" in names and "finish.done" in names, names
assert trace["trace"]["trace_id"] >= 1, trace

send({"op": "metrics", "id": "obs-metrics"})
metrics = next_event()
assert metrics["event"] == "metrics", metrics
snapshot = metrics["metrics"]
for key in ("counters", "gauges", "histograms"):
    assert key in snapshot, (key, sorted(snapshot))
assert snapshot["counters"]["service.submitted"] >= 1, snapshot["counters"]
assert snapshot["histograms"]["latency.exec_ns"]["count"] >= 1
if mode == "router":
    assert metrics["role"] == "router", metrics
    assert metrics["workers"] == 4, metrics
    assert metrics["workers_answering"] == 4, metrics

sock.close()
print(f"obs probe ({mode}): trace has {len(spans)} spans; "
      f"metrics snapshot well-formed")
PY
}

echo "== direct: one worker =="
"${serve}" --listen "127.0.0.1:$((base))" --threads 2 \
  2>"${out}/serve_direct.log" &
pids+=($!)
"${loadgen}" --connect "127.0.0.1:$((base))" --fixture "${fixture}" \
  > "${out}/direct.jsonl"
probe_obs_ops "127.0.0.1:$((base))" direct

echo "== routed: pqs_router over four workers =="
workers=""
for w in 1 2 3 4; do
  "${serve}" --listen "127.0.0.1:$((base + w))" --threads 2 \
    2>"${out}/serve_w${w}.log" &
  pids+=($!)
  workers="${workers}${workers:+,}127.0.0.1:$((base + w))"
done
"${router}" --listen "127.0.0.1:$((base + 5))" --workers "${workers}" \
  2>"${out}/router.log" &
pids+=($!)
"${loadgen}" --connect "127.0.0.1:$((base + 5))" --fixture "${fixture}" \
  > "${out}/routed.jsonl"
probe_obs_ops "127.0.0.1:$((base + 5))" router

echo "== verdict =="
test "$(wc -l < "${out}/direct.jsonl")" = 6
diff "${out}/direct.jsonl" "${out}/routed.jsonl"
echo "net_smoke: result stream byte-identical, 1 direct worker vs router + 4 workers"

#!/usr/bin/env bash
# Networked-serve smoke: the byte-determinism acceptance gate for the net
# subsystem. Replays tests/fixtures/serve_session.jsonl through
#
#   1. one pqs_serve --listen worker, directly, and
#   2. a pqs_router sharding the same fixture across FOUR workers,
#
# and requires the client-visible result streams to be byte-identical —
# submission-ordered release in the session emitter and the router's
# in-order flush are exactly what make a shard fleet transparent at fixed
# seeds. Also asserts the fixture's known shape: 6 results (the seventh
# request carries an invalid spec and is answered by an error ack).
#
# Usage: scripts/net_smoke.sh [build-dir]   (default: build)
set -eu
cd "$(dirname "$0")/.."
build="${1:-build}"
serve="${build}/tools/pqs_serve"
router="${build}/tools/pqs_router"
loadgen="${build}/tools/pqs_loadgen"
fixture="tests/fixtures/serve_session.jsonl"
out="$(mktemp -d)"
pids=()

cleanup() {
  for pid in "${pids[@]:-}"; do
    kill "${pid}" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "${out}"
}
trap cleanup EXIT

# Ephemeral base port, offset into the dynamic range by PID to keep
# concurrent CI shards from colliding.
base=$(( 20000 + ($$ % 20000) ))

echo "== direct: one worker =="
"${serve}" --listen "127.0.0.1:$((base))" --threads 2 \
  2>"${out}/serve_direct.log" &
pids+=($!)
"${loadgen}" --connect "127.0.0.1:$((base))" --fixture "${fixture}" \
  > "${out}/direct.jsonl"

echo "== routed: pqs_router over four workers =="
workers=""
for w in 1 2 3 4; do
  "${serve}" --listen "127.0.0.1:$((base + w))" --threads 2 \
    2>"${out}/serve_w${w}.log" &
  pids+=($!)
  workers="${workers}${workers:+,}127.0.0.1:$((base + w))"
done
"${router}" --listen "127.0.0.1:$((base + 5))" --workers "${workers}" \
  2>"${out}/router.log" &
pids+=($!)
"${loadgen}" --connect "127.0.0.1:$((base + 5))" --fixture "${fixture}" \
  > "${out}/routed.jsonl"

echo "== verdict =="
test "$(wc -l < "${out}/direct.jsonl")" = 6
diff "${out}/direct.jsonl" "${out}/routed.jsonl"
echo "net_smoke: result stream byte-identical, 1 direct worker vs router + 4 workers"

#!/usr/bin/env bash
# clang-tidy gate driver: configure a compile database, then run the tuned
# .clang-tidy (WarningsAsErrors: '*' — any finding is a non-zero exit) over
# every TU in src/. CI runs this enforcing; locally it is the same command:
#
#   scripts/run_clang_tidy.sh [build_dir]          # default build-tidy
#   CLANG_TIDY=clang-tidy-18 scripts/run_clang_tidy.sh
#
# The tidy build configures with OpenMP off so the gate needs no libomp on
# the host: the `#pragma omp` lines are PQS_HAVE_OPENMP-guarded and OpenMP
# policy is tools/pqs_lint.py's job, not clang-tidy's.
set -euo pipefail
cd "$(dirname "$0")/.."

build="${1:-build-tidy}"
tidy="${CLANG_TIDY:-clang-tidy}"

if ! command -v "${tidy}" >/dev/null 2>&1; then
  echo "run_clang_tidy: '${tidy}' not found; install clang-tidy or set" \
       "CLANG_TIDY" >&2
  exit 2
fi

cmake -B "${build}" -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DPQS_ENABLE_OPENMP=OFF \
  -DPQS_BUILD_TESTS=OFF \
  -DPQS_BUILD_BENCHES=OFF \
  -DPQS_BUILD_EXAMPLES=OFF \
  > /dev/null

mapfile -t files < <(find src tools -name '*.cpp' | sort)
echo "run_clang_tidy: ${#files[@]} TUs, config .clang-tidy," \
     "$("${tidy}" --version | head -n 1)"

# Fan the TUs over the cores; xargs exits non-zero if any invocation does,
# which is what makes the gate enforcing.
printf '%s\n' "${files[@]}" \
  | xargs -P "$(nproc)" -n 4 "${tidy}" -p "${build}" --quiet

echo "run_clang_tidy: clean"

#!/usr/bin/env bash
# net_serve scaling bench: drive a 64-client loadgen replay against
#   1. a single pqs_serve worker, and
#   2. a pqs_router sharding across N workers,
# and print the two JSON summaries (throughput, latency percentiles). The
# workload draws from a unique-key working set sized ABOVE one worker's
# result-LRU capacity but WITHIN the fleet's aggregate capacity, so the
# scaling story measured here is the one the router actually sells:
# shard-local caches growing linearly with worker count. Single-machine
# runs on few cores understate CPU scaling; the cache-capacity effect is
# what survives that, and BENCH_qsim.json records the core count so the
# numbers stay honest.
#
# Usage: scripts/bench_net_serve.sh [build-dir] [workers] [clients] [requests] [unique_keys] [cache] [n_items] [window]
set -eu
cd "$(dirname "$0")/.."
build="${1:-build}"
n_workers="${2:-4}"
clients="${3:-64}"
requests="${4:-100000}"
unique_keys="${5:-2048}"
cache="${6:-640}"  # per-worker result-LRU capacity: keys > cache, keys <= N*cache
n_items="${7:-16384}"  # sized so one execution costs ~1.4 ms: misses must hurt
window="${8:-4}"   # shallow per-client pipeline: keeps total inflight (clients
                   # x window) far below unique_keys, so concurrent duplicate
                   # submits (which the service would coalesce into one
                   # execution even without a cache) stay rare and the
                   # single-worker run is honestly eviction-bound
serve="${build}/tools/pqs_serve"
router="${build}/tools/pqs_router"
loadgen="${build}/tools/pqs_loadgen"
pids=()

cleanup() {
  for pid in "${pids[@]:-}"; do
    kill "${pid}" 2>/dev/null || true
  done
  wait 2>/dev/null || true
}
trap cleanup EXIT

base=$(( 21000 + ($$ % 20000) ))

echo "== 1 worker, direct ==" >&2
"${serve}" --listen "127.0.0.1:$((base))" --threads 2 \
  --result-cache "${cache}" --max-connections 256 2>/dev/null &
pids+=($!)
"${loadgen}" --connect "127.0.0.1:$((base))" --clients "${clients}" \
  --requests "${requests}" --unique-keys "${unique_keys}" \
  --n-items "${n_items}" --inflight-per-conn "${window}"

echo "== ${n_workers} workers behind pqs_router ==" >&2
workers=""
for w in $(seq 1 "${n_workers}"); do
  "${serve}" --listen "127.0.0.1:$((base + w))" --threads 2 \
    --result-cache "${cache}" --max-connections 256 2>/dev/null &
  pids+=($!)
  workers="${workers}${workers:+,}127.0.0.1:$((base + w))"
done
"${router}" --listen "127.0.0.1:$((base + n_workers + 1))" \
  --workers "${workers}" --max-connections 256 2>/dev/null &
pids+=($!)
"${loadgen}" --connect "127.0.0.1:$((base + n_workers + 1))" \
  --clients "${clients}" --requests "${requests}" \
  --unique-keys "${unique_keys}" --n-items "${n_items}" --inflight-per-conn "${window}"

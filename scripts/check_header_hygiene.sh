#!/usr/bin/env bash
# Header hygiene: every public header of the facade (src/api) and the
# simulation substrate (src/qsim) must compile standalone — i.e. carry all
# of its own includes. Catches the "works because some .cpp included X
# first" rot that breaks downstream users who include one header.
#
# Usage: scripts/check_header_hygiene.sh [compiler]
set -u
cd "$(dirname "$0")/.."
cxx="${1:-g++}"
status=0
for header in src/api/*.h src/api/algorithms/*.h src/qsim/*.h; do
  rel="${header#src/}"
  if ! echo "#include \"${rel}\"" | \
       "${cxx}" -std=c++20 -fsyntax-only -Isrc -x c++ -; then
    echo "NOT self-contained: ${header}"
    status=1
  fi
done
if [ "${status}" -eq 0 ]; then
  echo "all public api/ and qsim/ headers are self-contained"
fi
exit "${status}"

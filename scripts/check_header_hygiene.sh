#!/usr/bin/env bash
# Header hygiene: EVERY header under src/ must compile standalone — i.e.
# carry all of its own includes. Catches the "works because some .cpp
# included X first" rot that breaks downstream users who include one
# header. Originally scoped to the public facade (src/api) and the
# simulation substrate (src/qsim); now that src/common and src/service
# are load-bearing for embedders too, the sweep covers the whole tree.
#
# Usage: scripts/check_header_hygiene.sh [compiler]
set -u
cd "$(dirname "$0")/.."
cxx="${1:-g++}"
status=0
checked=0
while IFS= read -r header; do
  rel="${header#src/}"
  if ! echo "#include \"${rel}\"" | \
       "${cxx}" -std=c++20 -fsyntax-only -Isrc -x c++ -; then
    echo "NOT self-contained: ${header}"
    status=1
  fi
  checked=$((checked + 1))
done < <(find src -name '*.h' | sort)
if [ "${status}" -eq 0 ]; then
  echo "all ${checked} src/ headers are self-contained"
fi
exit "${status}"

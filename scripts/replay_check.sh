#!/usr/bin/env bash
# Record/replay regression gate for all 13 algorithms at once — the ctest
# entry ISSUE 9 calls for.
#
# Two properties are pinned, both machine-local (recorded bytes embed
# floating-point reports, and the SIMD tiers agree only to tolerance, so a
# fixture recorded on an AVX-512 box must never be diffed on an AVX2 one):
#
#   1. journal replay: serve the all-algorithms fixture once with --journal,
#      then `pqs_replay --check` the journal — every re-executed report must
#      byte-match the report recorded in its completion marker, with both a
#      1-worker and a 4-worker replay pool;
#   2. session replay: replaying the fixture through the Service+Session
#      path must produce byte-identical ack and result streams at 1 and 4
#      workers (coalescing, caching, and scheduling must not leak into
#      results at fixed seeds).
#
# Usage: scripts/replay_check.sh [build-dir] [fixture]   (default: build,
#        tests/fixtures/replay_all_algorithms.jsonl)
set -eu
cd "$(dirname "$0")/.."
build="${1:-build}"
fixture="${2:-tests/fixtures/replay_all_algorithms.jsonl}"
serve="${build}/tools/pqs_serve"
replay="${build}/tools/pqs_replay"
out="$(mktemp -d)"
trap 'rm -rf "${out}"' EXIT

echo "== record: serve ${fixture} with --journal =="
"${serve}" --threads 2 --journal "${out}/session.wal" \
  < "${fixture}" > "${out}/recorded.jsonl" 2> "${out}/serve.log"

echo "== journal replay --check, 1 worker =="
"${replay}" --input "${out}/session.wal" --check --threads 1

echo "== journal replay --check, 4 workers =="
"${replay}" --input "${out}/session.wal" --check --threads 4

echo "== session replay, 1 worker vs 4 workers =="
"${replay}" --input "${fixture}" --threads 1 > "${out}/session_1w.jsonl"
"${replay}" --input "${fixture}" --threads 4 \
  --expected "${out}/session_1w.jsonl" --check > /dev/null

echo "== session replay vs the recorded serve run =="
"${replay}" --input "${fixture}" --threads 2 \
  --expected "${out}/recorded.jsonl" --check > /dev/null

echo "replay_check: journal and session replays byte-identical"

// Ablation: is the paper's G^l1 L^l2 schedule the right shape?
//
// We search over ALL alternating global/local schedules with up to 4
// segments on the exact subspace model and compare the cheapest one per
// segment budget. Expectation (confirmed): two segments capture almost all
// of the win; a third buys a few queries (the direction the Korepin-Grover
// follow-up formalizes); the fourth is negligible.
#include <cmath>
#include <iostream>

#include "api/api.h"
#include "common/cli.h"
#include "common/math.h"
#include "common/table.h"
#include "common/timing.h"
#include "oracle/database.h"
#include "partial/interleave.h"
#include "partial/optimizer.h"

int main(int argc, char** argv) {
  using namespace pqs;
  Cli cli(argc, argv);
  const auto max_segments = static_cast<unsigned>(
      cli.get_int("max-segments", 4, "largest schedule arity to search"));
  api::SpecFlagSet spec_flags;
  spec_flags.algo = false;
  spec_flags.target = false;  // the demo target derives from the problem size
  SearchSpec spec = api::parse_search_spec(cli, spec_flags, "interleave",
                                           /*default_qubits=*/12,
                                           /*default_kbits=*/1,
                                           /*default_target=*/0);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }
  cli.finish();
  const unsigned n = log2_exact(spec.n_items);
  const qsim::BackendKind engine_backend = spec.backend;

  const std::uint64_t n_items = pow2(n);
  Stopwatch timer;
  Engine facade;
  std::cout << "ablation - alternating global/local schedules on the exact "
               "model (N = " << n_items << ", floor = 1 - 4/sqrt(N))\n\n";

  for (const std::uint64_t k : {2u, 4u, 8u}) {
    const double floor_p = partial::default_min_success(n_items);
    Table table({"segments allowed", "best schedule", "queries", "success",
                 "success (engine)"});
    table.set_title("K = " + std::to_string(k));
    const oracle::Database db =
        oracle::Database::with_qubits(n, n_items / 2 + 3);
    for (unsigned segs = 1; segs <= max_segments; ++segs) {
      const auto opt =
          partial::optimize_interleaved(n_items, k, floor_p, segs);
      const double engine_success = partial::run_schedule_on_backend(
          db, log2_exact(k), opt.schedule, engine_backend);
      table.add_row({Table::num(std::uint64_t{segs}),
                     opt.schedule.to_string() + " +step3",
                     Table::num(opt.queries), Table::num(opt.success, 5),
                     Table::num(engine_success, 5)});
    }
    const auto paper = partial::optimize_integer(n_items, k, floor_p);
    const partial::Schedule paper_schedule{
        {partial::ScheduleSegment{/*global=*/true, paper.l1},
         partial::ScheduleSegment{/*global=*/false, paper.l2}}};
    table.add_row({"paper shape (G^l1 L^l2)",
                   "G^" + std::to_string(paper.l1) + " L^" +
                       std::to_string(paper.l2) + " +step3",
                   Table::num(paper.queries), Table::num(paper.success, 5),
                   Table::num(partial::run_schedule_on_backend(
                                  db, log2_exact(k), paper_schedule,
                                  engine_backend),
                              5)});
    // The service path: one "interleave" request (3-segment budget),
    // executed and measured end to end.
    spec.n_blocks = k;
    spec.marked = {db.target()};
    const auto report = facade.run(spec);
    table.add_row({"facade (--algo interleave)", report.detail,
                   Table::num(report.queries),
                   Table::num(report.success_probability, 5),
                   report.correct ? "measured: correct block"
                                  : "measured: WRONG block"});
    std::cout << table.render() << "\n";
  }
  std::cout << "elapsed: " << timer.human() << "\n";
  return 0;
}

// Ablation / Appendix-A verification: exhaustive optimality of the classical
// partial-search expectation for tiny N. Every one of the N! deterministic
// probe orders is costed against a uniform random target; the minimum equals
// the Appendix-A bound N/2 (1 - 1/K^2) + (1 - 1/K)/2 exactly, and the
// optimal orders are precisely those that leave one whole block unprobed.
#include <iostream>

#include "classical/adversary.h"
#include "common/cli.h"
#include "common/table.h"
#include "common/timing.h"

int main(int argc, char** argv) {
  using namespace pqs;
  Cli cli(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }
  cli.finish();

  Stopwatch timer;
  std::cout << "A1b - exhaustive Appendix-A check: minimum expected probes "
               "over ALL deterministic probe orders\n\n";

  Table table({"N", "K", "orders checked", "min expected", "Appendix-A bound",
               "worst order", "optimal orders", "K*(N/K)!*(N-N/K)!"});
  for (const auto& [n, k] : {std::pair{4u, 2u}, std::pair{6u, 2u},
                             std::pair{6u, 3u}, std::pair{8u, 2u},
                             std::pair{8u, 4u}, std::pair{9u, 3u}}) {
    const auto result = classical::exhaustive_partial_search_bound(n, k);
    double predicted = static_cast<double>(k);
    for (std::uint64_t i = 2; i <= n / k; ++i) {
      predicted *= static_cast<double>(i);
    }
    for (std::uint64_t i = 2; i <= n - n / k; ++i) {
      predicted *= static_cast<double>(i);
    }
    table.add_row({Table::num(std::uint64_t{n}), Table::num(std::uint64_t{k}),
                   Table::num(result.orders_checked),
                   Table::num(result.min_expected, 4),
                   Table::num(classical::appendix_a_bound(n, k), 4),
                   Table::num(result.max_expected, 4),
                   Table::num(result.optimal_orders),
                   Table::num(predicted, 0)});
  }
  std::cout << table.render();
  std::cout << "\nthe min column equals the bound column in every row: "
               "Appendix A's distribution argument, verified exhaustively.\n"
            << "elapsed: " << timer.human() << "\n";
  return 0;
}

// Experiment S1: the sqrt(N) shape claim across every method (Section 1.2's
// motivation table, extended). For each N we report query counts of:
//   classical randomized partial      N/2 (1 - 1/K^2)       [Theta(N)]
//   naive quantum (block discard)     (pi/4) sqrt((K-1)N/K) [Theta(sqrt N)]
//   GRK partial search (this paper)   optimized, exact model
//   sure-success partial search
//   full Grover search                (pi/4) sqrt(N)
//   Theorem-2 lower bound             (pi/4)(1-1/sqrt(K)) sqrt(N)
// The crossover story: GRK < naive < full for every N, with the gap to the
// lower bound shrinking as K grows.
#include <cmath>
#include <iostream>

#include "api/api.h"
#include "common/cli.h"
#include "common/math.h"
#include "common/table.h"
#include "partial/bounds.h"
#include "partial/certainty.h"
#include "partial/optimizer.h"

int main(int argc, char** argv) {
  using namespace pqs;
  Cli cli(argc, argv);
  const auto k_bits = static_cast<unsigned>(
      cli.get_int("kbits", 2, "block bits (K = 2^k)"));
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }
  cli.finish();

  const std::uint64_t k_blocks = pow2(k_bits);
  std::cout << "S1 - queries vs N for every method (K = " << k_blocks
            << "); quantum rows are Theta(sqrt(N)), the classical row is "
               "Theta(N)\n\n";

  // GRK schedules come from Engine::plan — the second sweep below re-asks
  // every (N, K) key and is served entirely from the plan cache.
  Engine engine;
  const auto grk_plan = [&](std::uint64_t n_items) {
    SearchSpec spec = SearchSpec::single_target(n_items, k_blocks, 0);
    spec.min_success = 1.0 - 1.0 / std::sqrt(static_cast<double>(n_items));
    return engine.plan(spec);
  };

  Table table({"N", "classical rand.", "naive quantum", "GRK (1-1/sqrtN flr)",
               "sure-success", "full Grover", "lower bound"});
  for (unsigned n = 10; n <= 24; n += 2) {
    const std::uint64_t n_items = pow2(n);
    const double sqrt_n = std::sqrt(static_cast<double>(n_items));
    const auto opt = grk_plan(n_items).schedule;
    const auto certain = partial::certainty_schedule(n_items, k_blocks);
    table.add_row(
        {Table::num(n_items),
         Table::num(partial::classical_partial_randomized_paper(n_items,
                                                                k_blocks),
                    0),
         Table::num(partial::naive_block_discard_coefficient(k_blocks) *
                        sqrt_n,
                    0),
         Table::num(opt.queries), Table::num(certain.queries),
         Table::num(grover_optimal_iterations(n_items)),
         Table::num(partial::lower_bound_coefficient(k_blocks) * sqrt_n, 0)});
  }
  std::cout << table.render();

  Table coeff({"N", "GRK/sqrt(N)", "asymptotic optimum", "success", "plan"});
  coeff.set_title("\nconvergence of the finite-N integer optimum to the "
                  "asymptotic coefficient (schedules from the warm plan "
                  "cache)");
  const double asymptotic = partial::optimize_epsilon(k_blocks).coefficient;
  for (unsigned n = 10; n <= 24; n += 2) {
    const std::uint64_t n_items = pow2(n);
    const double sqrt_n = std::sqrt(static_cast<double>(n_items));
    const auto plan = grk_plan(n_items);
    coeff.add_row(
        {Table::num(n_items),
         Table::num(static_cast<double>(plan.schedule.queries) / sqrt_n, 4),
         Table::num(asymptotic, 4), Table::num(plan.schedule.success, 6),
         plan.cache_hit ? "cached" : "computed"});
  }
  std::cout << coeff.render();
  return 0;
}

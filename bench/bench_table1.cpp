// Experiment T1: regenerate the Section-3.1 table.
//
//   "For some small values of K, the following table lists the optimum
//    values obtained by using a computer program."
//
// Columns:
//   paper-upper     the paper's printed upper-bound coefficient
//   ours-upper      our optimizer's asymptotic coefficient (must match)
//   eps*            the optimizing epsilon
//   paper-lower     the paper's printed lower bound
//   ours-lower      (pi/4)(1 - 1/sqrt(K))
//   naive           the Section-1.2 block-discard algorithm
//   sim-q/sqrt(N)   measured queries / sqrt(N) of the full state-vector run
//                   at n = 16, integer-optimized with floor 1 - 1/sqrt(N)
//   sim-success     measured target-block probability of that run
#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/cli.h"
#include "common/math.h"
#include "common/table.h"
#include "common/timing.h"
#include "oracle/database.h"
#include "partial/bounds.h"
#include "partial/grk.h"
#include "partial/optimizer.h"
#include "qsim/flags.h"

namespace {

struct PaperRow {
  std::uint64_t k;
  double paper_upper;
  double paper_lower;
};

constexpr PaperRow kPaperRows[] = {
    {2, 0.555, 0.230}, {3, 0.592, 0.332},  {4, 0.615, 0.393},
    {5, 0.633, 0.434}, {8, 0.664, 0.508},  {32, 0.725, 0.647},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace pqs;
  Cli cli(argc, argv);
  const auto n = static_cast<unsigned>(
      cli.get_int("qubits", 16, "address qubits for the simulated column"));
  const auto engine = qsim::parse_engine_flags(cli);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }
  cli.finish();

  const std::uint64_t n_items = pow2(n);
  const double sqrt_n = std::sqrt(static_cast<double>(n_items));
  Rng rng(20050607);  // SPAA 2005 vintage
  Stopwatch timer;

  Table table({"K", "paper-upper", "ours-upper", "eps*", "paper-lower",
               "ours-lower", "naive", "sim-q/sqrt(N)", "sim-success"});
  table.set_title(
      "T1 - Section 3.1 table: partial-search query coefficients "
      "(multiply by sqrt(N));\nfull database search row: paper 0.785 = pi/4 "
      "= " +
      Table::num(kQuarterPi, 3) + "; simulated column at n = " +
      std::to_string(n) + " (N = " + std::to_string(n_items) + ")");

  for (const auto& row : kPaperRows) {
    const auto opt = partial::optimize_epsilon(row.k);

    std::string sim_q = "-";
    std::string sim_p = "-";
    if (is_pow2(row.k)) {  // power-of-two K runs on the qubit simulator
      const unsigned k_bits = log2_exact(row.k);
      const oracle::Database db =
          oracle::Database::with_qubits(n, n_items / 2 + 17);
      partial::GrkOptions options;
      options.backend = engine.backend;
      options.min_success = 1.0 - 1.0 / sqrt_n;
      const auto run = partial::run_partial_search(db, k_bits, rng, options);
      sim_q = Table::num(static_cast<double>(run.queries) / sqrt_n, 3);
      sim_p = Table::num(run.block_probability, 5);
    }

    table.add_row({Table::num(row.k), Table::num(row.paper_upper, 3),
                   Table::num(opt.coefficient, 3), Table::num(opt.epsilon, 3),
                   Table::num(row.paper_lower, 3),
                   Table::num(partial::lower_bound_coefficient(row.k), 3),
                   Table::num(partial::naive_block_discard_coefficient(row.k), 3),
                   sim_q, sim_p});
  }
  std::cout << table.render();

  // Large-K behaviour: c_K >= 0.42/sqrt(K) (Theorem 1).
  Table large({"K", "ours-upper", "eps*", "recipe eps=1/sqrt(K)",
               "c_K*sqrt(K)", "paper floor"});
  large.set_title("\nT1b - large-K savings constant: "
                  "c_K = (1 - coeff/(pi/4)) * sqrt(K) >= 0.42");
  for (std::uint64_t k = 16; k <= 4096; k *= 4) {
    const auto opt = partial::optimize_epsilon(k);
    const double c_k = (1.0 - opt.coefficient / kQuarterPi) *
                       std::sqrt(static_cast<double>(k));
    large.add_row({Table::num(k), Table::num(opt.coefficient, 4),
                   Table::num(opt.epsilon, 4),
                   Table::num(partial::recipe_coefficient(k), 4),
                   Table::num(c_k, 4), "0.42"});
  }
  std::cout << large.render();
  std::cout << "elapsed: " << timer.human() << "\n";
  return 0;
}

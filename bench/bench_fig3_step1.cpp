// Experiment F3: the Step-1 geometry of Figure 3.
//
// Standard amplification rotates the state vector toward the target by
// 2 theta per iteration; Step 1 runs (pi/4)(1 - eps) sqrt(N) iterations and
// deliberately stops at residual angle ~ (pi/2) eps short of the target.
// We print the trajectory (closed form vs state vector) and the stopping
// points for several eps.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "common/cli.h"
#include "common/math.h"
#include "common/stats.h"
#include "common/table.h"
#include "grover/grover.h"
#include "oracle/database.h"
#include "qsim/flags.h"

int main(int argc, char** argv) {
  using namespace pqs;
  Cli cli(argc, argv);
  const auto n = static_cast<unsigned>(
      cli.get_int("qubits", 12, "address qubits"));
  const auto engine = qsim::parse_engine_flags(cli);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }
  cli.finish();

  const std::uint64_t n_items = pow2(n);
  const double sqrt_n = std::sqrt(static_cast<double>(n_items));
  const oracle::Database db = oracle::Database::with_qubits(n, 1);

  std::cout << "F3 - Step 1 moves the state toward the target by 2*theta "
               "per iteration (N = "
            << n_items << ")\n\n";

  Table table({"iteration", "angle to |t> (closed form)",
               "angle to |t> (state vector)", "amplitude on |t>", "picture"});
  const auto m_star = grover::optimal_iterations(n_items);
  for (std::uint64_t m = 0; m <= m_star; m += m_star / 10) {
    const double closed = kHalfPi - grover::angle_after(n_items, m);
    db.reset_queries();
    const auto backend = grover::evolve_on_backend(db, m, engine.backend);
    const double a_t = backend->amplitudes_copy()[1].real();
    const double measured = std::acos(std::clamp(a_t, -1.0, 1.0));
    table.add_row({Table::num(m), Table::num(closed, 4),
                   Table::num(measured, 4), Table::num(a_t, 4),
                   signed_bar(a_t, 1.0, 16)});
  }
  std::cout << table.render();

  Table stops({"eps", "l1 = (pi/4)(1-eps)sqrt(N)", "residual angle",
               "paper: (pi/2) eps"});
  stops.set_title("\nStep-1 stopping points (the residual angle theta that "
                  "Step 2 consumes):");
  for (const double eps : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    const auto l1 = static_cast<std::uint64_t>(
        std::llround(kQuarterPi * (1.0 - eps) * sqrt_n));
    const double residual = kHalfPi - grover::angle_after(n_items, l1);
    stops.add_row({Table::num(eps, 2), Table::num(l1),
                   Table::num(residual, 4), Table::num(kHalfPi * eps, 4)});
  }
  std::cout << stops.render();
  return 0;
}

// Experiment R1: Theorem 2's reduction — full search via iterated partial
// search — with the geometric query accounting
//   total <= alpha (1 + 1/sqrt(K) + 1/K + ...) sqrt(N)
//          = alpha sqrt(K)/(sqrt(K)-1) sqrt(N),
// which, against Zalka's (pi/4) sqrt(N) floor, forces
//   alpha_K >= (pi/4)(1 - 1/sqrt(K)).
#include <cmath>
#include <iostream>

#include "api/api.h"
#include "common/cli.h"
#include "common/math.h"
#include "common/table.h"
#include "oracle/database.h"
#include "partial/bounds.h"
#include "partial/certainty.h"
#include "reduction/reduction.h"

int main(int argc, char** argv) {
  using namespace pqs;
  Cli cli(argc, argv);
  api::SpecFlagSet flags;
  flags.algo = false;
  flags.target = false;  // the demo target derives from the problem size
  flags.seed_default = 777;
  SearchSpec spec = api::parse_search_spec(cli, flags, "reduction",
                                           /*default_qubits=*/16,
                                           /*default_kbits=*/2,
                                           /*default_target=*/0);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }
  cli.finish();

  const std::uint64_t n_items = spec.n_items;
  const double sqrt_n = std::sqrt(static_cast<double>(n_items));
  spec.marked = {n_items / 3};

  Engine engine;
  std::cout << "R1 - Theorem 2: full search from iterated zero-error "
               "partial search (N = " << n_items << ")\n\n";

  Table table({"k/level", "measured total", "total/sqrt(N)",
               "geometric bound", "Zalka floor (pi/4)sqrt(N)", "correct"});
  for (const unsigned k : {1u, 2u, 3u, 4u}) {
    spec.n_blocks = pow2(k);
    const auto result = engine.run(spec);

    const auto top = partial::certainty_schedule(n_items, pow2(k));
    const double top_coeff = static_cast<double>(top.queries) / sqrt_n;
    table.add_row(
        {Table::num(std::uint64_t{k}), Table::num(result.queries),
         Table::num(static_cast<double>(result.queries) / sqrt_n, 3),
         Table::num(reduction::theorem2_query_bound(top_coeff, n_items,
                                                    pow2(k)),
                    0),
         Table::num(kQuarterPi * sqrt_n, 0),
         result.correct ? "yes" : "NO"});
  }
  std::cout << table.render();

  // Per-level breakdown for one run — the level structure is the low-level
  // driver's introspection surface (the facade report summarizes it in
  // `detail`).
  Rng rng2(778);
  const oracle::Database db =
      oracle::Database(n_items, 12345 % n_items);
  reduction::ReductionOptions level_options;
  level_options.backend = spec.backend;
  const auto run =
      reduction::search_full_via_partial(db, 2, rng2, level_options);
  Table levels({"level", "db size", "bits fixed", "queries", "method"});
  levels.set_title("\nper-level breakdown (k = 2): each level costs ~1/sqrt(K) "
                   "of the previous");
  for (const auto& level : run.levels) {
    levels.add_row({Table::num(level.level), Table::num(level.db_size),
                    Table::num(level.bits_fixed), Table::num(level.queries),
                    level.via_partial_search ? "sure-success partial search"
                                             : "classical brute force"});
  }
  std::cout << levels.render();

  std::cout << "\nlower-bound logic: measured total >= (pi/4) sqrt(N) "
               "(Zalka) while total <= alpha sqrt(K)/(sqrt(K)-1) sqrt(N); "
               "therefore alpha >= (pi/4)(1 - 1/sqrt(K)).\n";
  return 0;
}

// Experiment R1: Theorem 2's reduction — full search via iterated partial
// search — with the geometric query accounting
//   total <= alpha (1 + 1/sqrt(K) + 1/K + ...) sqrt(N)
//          = alpha sqrt(K)/(sqrt(K)-1) sqrt(N),
// which, against Zalka's (pi/4) sqrt(N) floor, forces
//   alpha_K >= (pi/4)(1 - 1/sqrt(K)).
#include <cmath>
#include <iostream>

#include "common/cli.h"
#include "common/math.h"
#include "common/table.h"
#include "oracle/database.h"
#include "partial/bounds.h"
#include "partial/certainty.h"
#include "qsim/flags.h"
#include "reduction/reduction.h"

int main(int argc, char** argv) {
  using namespace pqs;
  Cli cli(argc, argv);
  const auto n = static_cast<unsigned>(
      cli.get_int("qubits", 16, "address qubits"));
  const auto engine = qsim::parse_engine_flags(cli);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }
  cli.finish();
  reduction::ReductionOptions reduction_options;
  reduction_options.backend = engine.backend;

  const std::uint64_t n_items = pow2(n);
  const double sqrt_n = std::sqrt(static_cast<double>(n_items));
  Rng rng(777);

  std::cout << "R1 - Theorem 2: full search from iterated zero-error "
               "partial search (N = " << n_items << ")\n\n";

  Table table({"k/level", "measured total", "total/sqrt(N)",
               "geometric bound", "Zalka floor (pi/4)sqrt(N)", "levels",
               "correct"});
  for (const unsigned k : {1u, 2u, 3u, 4u}) {
    const oracle::Database db =
        oracle::Database::with_qubits(n, n_items / 3);
    const auto result =
        reduction::search_full_via_partial(db, k, rng, reduction_options);

    const auto top = partial::certainty_schedule(n_items, pow2(k));
    const double top_coeff = static_cast<double>(top.queries) / sqrt_n;
    table.add_row(
        {Table::num(std::uint64_t{k}), Table::num(result.total_queries),
         Table::num(static_cast<double>(result.total_queries) / sqrt_n, 3),
         Table::num(reduction::theorem2_query_bound(top_coeff, n_items,
                                                    pow2(k)),
                    0),
         Table::num(kQuarterPi * sqrt_n, 0),
         Table::num(static_cast<std::uint64_t>(result.levels.size())),
         result.correct ? "yes" : "NO"});
  }
  std::cout << table.render();

  // Per-level breakdown for one run.
  Rng rng2(778);
  const oracle::Database db = oracle::Database::with_qubits(n, 12345 % n_items);
  const auto run =
      reduction::search_full_via_partial(db, 2, rng2, reduction_options);
  Table levels({"level", "db size", "bits fixed", "queries", "method"});
  levels.set_title("\nper-level breakdown (k = 2): each level costs ~1/sqrt(K) "
                   "of the previous");
  for (const auto& level : run.levels) {
    levels.add_row({Table::num(level.level), Table::num(level.db_size),
                    Table::num(level.bits_fixed), Table::num(level.queries),
                    level.via_partial_search ? "sure-success partial search"
                                             : "classical brute force"});
  }
  std::cout << levels.render();

  std::cout << "\nlower-bound logic: measured total >= (pi/4) sqrt(N) "
               "(Zalka) while total <= alpha sqrt(K)/(sqrt(K)-1) sqrt(N); "
               "therefore alpha >= (pi/4)(1 - 1/sqrt(K)).\n";
  return 0;
}

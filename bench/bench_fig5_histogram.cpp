// Experiment F5: the amplitude histograms of Figure 5.
//
// Top histogram: after Step 1 (uniform inside each class, target spike).
// Bottom: after Step 2 — non-target blocks UNCHANGED, target-block rest
// NEGATIVE, overall non-target average (dotted line in the paper) equal to
// half the non-target-block amplitude. We render both from an actual
// state-vector run, then the post-Step-3 state where the non-target blocks
// vanish.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "common/cli.h"
#include "common/math.h"
#include "common/stats.h"
#include "common/table.h"
#include "oracle/database.h"
#include "partial/grk.h"
#include "partial/optimizer.h"
#include "qsim/flags.h"

namespace {

using pqs::qsim::Amplitude;

void render_stage(const std::vector<Amplitude>& amps, unsigned k,
                  pqs::qsim::Index target, const char* label) {
  const std::size_t block = amps.size() >> k;
  double max_abs = 1e-12;
  for (const auto& a : amps) {
    max_abs = std::max(max_abs, std::fabs(a.real()));
  }
  std::cout << label << "\n";
  // One representative state per class per block keeps the picture small.
  for (std::size_t b = 0; b < amps.size() / block; ++b) {
    const std::size_t lo = b * block;
    const bool is_target_block = target >= lo && target < lo + block;
    // Representative non-target state of this block.
    std::size_t rep = lo;
    if (rep == target) {
      ++rep;
    }
    std::cout << "  block " << b << (is_target_block ? " (target)" : "")
              << "  rest: " << pqs::signed_bar(amps[rep].real(), max_abs, 20)
              << " " << pqs::Table::num(amps[rep].real(), 5);
    if (is_target_block) {
      std::cout << "   |t>: "
                << pqs::signed_bar(amps[target].real(), max_abs, 20) << " "
                << pqs::Table::num(amps[target].real(), 5);
    }
    std::cout << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pqs;
  Cli cli(argc, argv);
  const auto n = static_cast<unsigned>(
      cli.get_int("qubits", 12, "address qubits"));
  const auto k = static_cast<unsigned>(
      cli.get_int("kbits", 2, "block bits (K = 2^k)"));
  // Snapshot capture needs full amplitude vectors: --backend symmetry is
  // rejected loudly by run_partial_search rather than silently ignored.
  const auto engine = qsim::parse_engine_flags(cli);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }
  cli.finish();

  const std::uint64_t n_items = pow2(n);
  const qsim::Index target = 3 * (n_items >> k) / 2;  // inside block 1
  const oracle::Database db(n_items, target);
  Rng rng(5);

  partial::GrkOptions options;
  options.backend = engine.backend;
  options.capture_snapshots = true;
  options.min_success = 1.0 - 1.0 / std::sqrt(static_cast<double>(n_items));
  const auto result = partial::run_partial_search(db, k, rng, options);

  std::cout << "F5 - amplitudes before/after Step 2 (N = " << n_items
            << ", K = " << pow2(k) << ", l1 = " << result.l1
            << ", l2 = " << result.l2 << ")\n\n";

  render_stage(result.snapshots.after_step1, k, target, "after Step 1:");
  render_stage(result.snapshots.after_step2, k, target,
               "after Step 2 (target-block rest now NEGATIVE; non-target "
               "blocks unchanged):");
  render_stage(result.snapshots.after_step3, k, target,
               "after Step 3 (non-target blocks ~ zero):");

  // The paper's dotted line: overall non-target average = half the
  // non-target-block amplitude.
  const auto& s2 = result.snapshots.after_step2;
  qsim::Amplitude sum{0.0, 0.0};
  for (std::size_t x = 0; x < s2.size(); ++x) {
    if (x != target) {
      sum += s2[x];
    }
  }
  const double mean = (sum / static_cast<double>(s2.size() - 1)).real();
  const double non_target = s2[0].real();
  Table check({"quantity", "value"});
  check.add_row({"mean non-target amplitude after Step 2", Table::num(mean, 6)});
  check.add_row({"half the non-target-block amplitude", Table::num(non_target / 2.0, 6)});
  check.add_row({"P(target block) after Step 3", Table::num(result.block_probability, 6)});
  check.add_row({"queries", Table::num(result.queries)});
  std::cout << check.render();
  return 0;
}

// Extension: multi-marked partial search — M marked items clustered in one
// block, each M one "multi" SearchSpec against a shared engine (the plan
// cache keys on (N, K, M, floor), so every M plans once). The Grover angle
// improves to arcsin(sqrt(M/N)), so queries shrink ~ 1/sqrt(M), mirroring
// multi-target full search (BBHT).
#include <cmath>
#include <iostream>

#include "api/api.h"
#include "common/cli.h"
#include "common/math.h"
#include "common/table.h"
#include "partial/optimizer.h"

int main(int argc, char** argv) {
  using namespace pqs;
  Cli cli(argc, argv);
  api::SpecFlagSet flags;
  flags.algo = false;
  flags.target = false;  // the marked set is the bench's sweep variable
  flags.seed_default = 31415;
  SearchSpec spec = api::parse_search_spec(cli, flags, "multi",
                                           /*default_qubits=*/12,
                                           /*default_kbits=*/2,
                                           /*default_target=*/0);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }
  cli.finish();

  const std::uint64_t n_items = spec.n_items;
  const unsigned n = log2_exact(n_items);
  const unsigned k = log2_exact(spec.n_blocks);
  Engine engine;
  std::cout << "extension - partial search with M marked items in one block "
               "(N = " << n_items << ", K = " << spec.n_blocks << ")\n\n";

  Table table({"M", "queries (measured)", "sqrt(M) * queries", "success",
               "exact-model optimum"});
  for (const std::uint64_t m : {1u, 2u, 4u, 9u, 16u, 64u}) {
    spec.marked.clear();
    for (std::uint64_t i = 0; i < m; ++i) {
      spec.marked.push_back((qsim::Index{1} << (n - k)) + 3 * i);  // block 1
    }
    const auto run = engine.run(spec);
    const auto opt = partial::optimize_integer(
        n_items, spec.n_blocks, partial::default_min_success(n_items), m);
    table.add_row(
        {Table::num(m), Table::num(run.queries),
         Table::num(std::sqrt(static_cast<double>(m)) *
                        static_cast<double>(run.queries),
                    1),
         Table::num(run.success_probability, 5), Table::num(opt.queries)});
  }
  std::cout << table.render();
  std::cout << "\nthe sqrt(M)*queries column is ~constant: the 1/sqrt(M) "
               "speedup of multi-target Grover carries over to partial "
               "search when the hits are clustered.\n";
  return 0;
}

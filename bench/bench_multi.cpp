// Extension: multi-marked partial search — M marked items clustered in one
// block. The Grover angle improves to arcsin(sqrt(M/N)), so queries shrink
// ~ 1/sqrt(M), mirroring multi-target full search (BBHT).
#include <cmath>
#include <iostream>

#include "common/cli.h"
#include "common/math.h"
#include "common/table.h"
#include "partial/multi.h"
#include "partial/optimizer.h"
#include "qsim/flags.h"

int main(int argc, char** argv) {
  using namespace pqs;
  Cli cli(argc, argv);
  const auto n = static_cast<unsigned>(
      cli.get_int("qubits", 12, "address qubits"));
  const auto k = static_cast<unsigned>(
      cli.get_int("kbits", 2, "block bits"));
  const auto engine = qsim::parse_engine_flags(cli);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }
  cli.finish();

  const std::uint64_t n_items = pow2(n);
  Rng rng(31415);
  std::cout << "extension - partial search with M marked items in one block "
               "(N = " << n_items << ", K = " << pow2(k) << ")\n\n";

  Table table({"M", "queries (measured)", "sqrt(M) * queries", "success",
               "exact-model optimum"});
  for (const std::uint64_t m : {1u, 2u, 4u, 9u, 16u, 64u}) {
    std::vector<qsim::Index> marked;
    for (std::uint64_t i = 0; i < m; ++i) {
      marked.push_back((qsim::Index{1} << (n - k)) + 3 * i);  // block 1
    }
    const oracle::MarkedDatabase db(n_items, marked);
    partial::MultiGrkOptions options;
    options.backend = engine.backend;
    const auto run = partial::run_partial_search_multi(db, k, rng, options);
    const auto opt = partial::optimize_integer(
        n_items, pow2(k), partial::default_min_success(n_items), m);
    table.add_row(
        {Table::num(m), Table::num(run.queries),
         Table::num(std::sqrt(static_cast<double>(m)) *
                        static_cast<double>(run.queries),
                    1),
         Table::num(run.block_probability, 5), Table::num(opt.queries)});
  }
  std::cout << table.render();
  std::cout << "\nthe sqrt(M)*queries column is ~constant: the 1/sqrt(M) "
               "speedup of multi-target Grover carries over to partial "
               "search when the hits are clustered.\n";
  return 0;
}

// Experiment P1 (engineering ablation): throughput of the simulation
// engines, machine-readable.
//
// Sections:
//   kernels     per-iteration cost of the dense O(N) kernels (the historical
//               numbers that justified the fused diffusion implementation)
//   dense_simd  the SoA/ISA kernel tiers (qsim/isa.h): the two reflection
//               work-horses at n >= 22 and an end-to-end n = 24 Grover
//               loop, once per tier this machine supports, with speedups
//               relative to the scalar tier
//   backends    dense vs symmetry cost of one full GRK run at growing n —
//               the O(N) -> O(K) gap the pluggable-backend refactor buys,
//               including symmetry-only rows far beyond dense reach (n=48)
//   multi_shot  serial (1 thread) vs batched (--batch threads) multi-shot
//               throughput through Simulator/BatchRunner
//   facade      pqs::Engine::run(SearchSpec) vs the direct module call
//               (dispatch + validation overhead of the service API) and the
//               plan cache: cold vs warm Engine::plan on the same key
//   obs         instrumentation overhead (obs/): the disabled span path
//               (RunControl with no SpanSink — one null-check per site) vs
//               no control at all, and the full traced-on vs traced-off
//               n=16 serve path
//
// Results print as a table and are written to BENCH_qsim.json (--json PATH)
// so CI and regression tooling can diff them.
//
//   ./build/bench/bench_simulator_perf --backend auto --batch 0 \
//       --shots 20000 --json BENCH_qsim.json
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "api/api.h"
#include "common/cli.h"
#include "common/math.h"
#include "common/table.h"
#include "common/timing.h"
#include "oracle/database.h"
#include "partial/grk.h"
#include "partial/optimizer.h"
#include "qsim/backend.h"
#include "qsim/batch.h"
#include "qsim/isa.h"
#include "qsim/simulator.h"
#include "service/service.h"

namespace {

using namespace pqs;

struct BackendRow {
  unsigned n = 0;
  unsigned k = 0;
  std::uint64_t iterations = 0;
  double dense_seconds = -1.0;     ///< < 0: not run (beyond dense reach)
  double symmetry_seconds = -1.0;
  double speedup = -1.0;
};

/// One full GRK evolution (l1 global + l2 local + Step 3) on `kind`.
double time_grk(unsigned n, unsigned k, std::uint64_t l1, std::uint64_t l2,
                qsim::BackendKind kind) {
  const oracle::Database db(pow2(n), pow2(n) / 3 + 1);
  Stopwatch watch;
  const auto backend =
      partial::evolve_partial_search_on_backend(db, k, l1, l2, kind);
  (void)backend->block_probability(backend->target_block());
  return watch.seconds();
}

std::string json_num(double v) {
  std::ostringstream os;
  os.precision(9);
  os << v;
  return os.str();
}

/// Best-of-`trials` mean seconds per call of `op` (reps calls per trial).
/// Best-of filters scheduler noise; the repetitions keep the fused
/// sum-cache warm, which is the steady state of the Grover loop.
template <typename Op>
double best_seconds_per_op(int trials, int reps, Op&& op) {
  double best = 1e100;
  for (int t = 0; t < trials; ++t) {
    Stopwatch watch;
    for (int r = 0; r < reps; ++r) {
      op();
    }
    best = std::min(best, watch.seconds() / reps);
  }
  return best;
}

struct TierRow {
  qsim::Isa isa = qsim::Isa::kScalar;
  double reflect_seconds = 0.0;
  double block_reflect_seconds = 0.0;
  double grover_seconds = -1.0;  ///< < 0: skipped (--quick)
};

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::string backend_flag = cli.get_string(
      "backend", "auto", "engine for the multi-shot section "
      "(auto | dense | symmetry)");
  const auto batch_threads = static_cast<unsigned>(cli.get_int(
      "batch", 0, "threads for the batched run (0 = all hardware threads)"));
  const auto shots = static_cast<std::uint64_t>(
      cli.get_int("shots", 20000, "shots for the multi-shot section"));
  const std::string json_path =
      cli.get_string("json", "BENCH_qsim.json", "output JSON path");
  const bool quick = cli.get_bool("quick", false, "smaller sizes only");
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }
  cli.finish();
  const qsim::BackendKind shot_backend =
      qsim::parse_backend_kind(backend_flag);

  std::cout << "P1 - simulation-engine throughput (JSON -> " << json_path
            << ")\n\n";

  // -- section 1: dense kernel baselines ------------------------------------
  Table kernel_table({"n", "op", "seconds/op"});
  std::ostringstream kernels_json;
  kernels_json << "[";
  bool first_kernel = true;
  std::vector<unsigned> kernel_sizes{14u, 18u};
  if (!quick) {
    kernel_sizes.push_back(20u);
  }
  for (unsigned n : kernel_sizes) {
    auto sv = qsim::StateVector::uniform(n);
    const int reps = 20;
    Stopwatch watch;
    for (int r = 0; r < reps; ++r) {
      sv.reflect_about_uniform();
    }
    const double diffusion = watch.seconds() / reps;
    watch.reset();
    for (int r = 0; r < reps; ++r) {
      sv.reflect_blocks_about_uniform(2);
    }
    const double block = watch.seconds() / reps;
    kernel_table.add_row({Table::num(std::uint64_t{n}), "global diffusion",
                          Table::num(diffusion, 8)});
    kernel_table.add_row({Table::num(std::uint64_t{n}), "block diffusion (K=4)",
                          Table::num(block, 8)});
    if (!first_kernel) {
      kernels_json << ",";
    }
    first_kernel = false;
    kernels_json << "{\"n\":" << n << ",\"global_diffusion_seconds\":"
                 << json_num(diffusion)
                 << ",\"block_diffusion_seconds\":" << json_num(block) << "}";
  }
  kernels_json << "]";
  std::cout << kernel_table.render() << "\n";

  // -- section 1b: SoA kernel tiers (dense_simd) ----------------------------
  // The same binary carries every compiled tier; force each supported one in
  // turn and measure the two reflection work-horses plus an end-to-end
  // Grover loop. Scalar goes first so the speedup baseline exists.
  const unsigned simd_n = quick ? 18u : 22u;
  const unsigned simd_grover_n = 24u;
  const int simd_grover_iters = 100;
  std::vector<TierRow> tier_rows;
  for (const qsim::Isa isa : qsim::supported_isas()) {
    qsim::force_isa(isa);
    TierRow row;
    row.isa = isa;
    {
      auto sv = qsim::StateVector::uniform(simd_n);
      sv.phase_flip(1);  // non-uniform, like the real loop
      row.reflect_seconds = best_seconds_per_op(
          5, 10, [&] { sv.reflect_about_uniform(); });
      row.block_reflect_seconds = best_seconds_per_op(
          5, 10, [&] { sv.reflect_blocks_about_uniform(2); });
    }
    if (!quick) {
      auto sv = qsim::StateVector::uniform(simd_grover_n);
      Stopwatch watch;
      for (int i = 0; i < simd_grover_iters; ++i) {
        sv.phase_flip(12345);
        sv.reflect_about_uniform();
      }
      row.grover_seconds = watch.seconds();
    }
    tier_rows.push_back(row);
  }
  qsim::force_isa(std::nullopt);

  const TierRow& scalar_row = tier_rows.front();
  Table simd_table({"tier", "reflect s/op", "speedup", "block reflect s/op",
                    "speedup", "grover n=24 s", "speedup"});
  std::ostringstream simd_json;
  simd_json << "{\"isa\": \"" << qsim::isa_name(qsim::active_isa())
            << "\", \"n\": " << simd_n << ", \"grover_n\": " << simd_grover_n
            << ", \"grover_iterations\": " << simd_grover_iters
            << ", \"tiers\": [";
  for (std::size_t i = 0; i < tier_rows.size(); ++i) {
    const TierRow& row = tier_rows[i];
    const double reflect_speedup =
        scalar_row.reflect_seconds / std::max(row.reflect_seconds, 1e-12);
    const double block_speedup = scalar_row.block_reflect_seconds /
                                 std::max(row.block_reflect_seconds, 1e-12);
    const double grover_speedup =
        row.grover_seconds < 0
            ? -1.0
            : scalar_row.grover_seconds / std::max(row.grover_seconds, 1e-12);
    simd_table.add_row(
        {std::string(qsim::isa_name(row.isa)),
         Table::num(row.reflect_seconds, 8), Table::num(reflect_speedup, 2),
         Table::num(row.block_reflect_seconds, 8),
         Table::num(block_speedup, 2),
         row.grover_seconds < 0 ? "-" : Table::num(row.grover_seconds, 4),
         grover_speedup < 0 ? "-" : Table::num(grover_speedup, 2)});
    if (i > 0) {
      simd_json << ",";
    }
    simd_json << "{\"isa\":\"" << qsim::isa_name(row.isa)
              << "\",\"reflect_seconds\":" << json_num(row.reflect_seconds)
              << ",\"reflect_speedup\":" << json_num(reflect_speedup)
              << ",\"block_reflect_seconds\":"
              << json_num(row.block_reflect_seconds)
              << ",\"block_reflect_speedup\":" << json_num(block_speedup)
              << ",\"grover_seconds\":" << json_num(row.grover_seconds)
              << ",\"grover_speedup\":" << json_num(grover_speedup) << "}";
  }
  simd_json << "]}";
  std::cout << "dense_simd (SoA kernels, n=" << simd_n
            << ", auto tier = " << qsim::isa_name(qsim::active_isa())
            << ")\n" << simd_table.render() << "\n";

  // -- section 2: dense vs symmetry full GRK runs ---------------------------
  std::vector<BackendRow> rows;
  std::vector<unsigned> grk_sizes{16u};
  if (!quick) {
    grk_sizes.push_back(20u);
  }
  for (unsigned n : grk_sizes) {
    const unsigned k = 2;
    const auto opt = partial::optimize_integer(
        pow2(n), pow2(k), partial::default_min_success(pow2(n)));
    BackendRow row{n, k, opt.l1 + opt.l2 + 1, 0.0, 0.0, 0.0};
    row.dense_seconds =
        time_grk(n, k, opt.l1, opt.l2, qsim::BackendKind::kDense);
    row.symmetry_seconds =
        time_grk(n, k, opt.l1, opt.l2, qsim::BackendKind::kSymmetry);
    row.speedup = row.dense_seconds / std::max(row.symmetry_seconds, 1e-12);
    rows.push_back(row);
  }
  {
    // Far beyond dense reach: the asymptotic schedule at n = 48.
    const unsigned n = 48, k = 3;
    const auto eps = partial::optimize_epsilon(pow2(k));
    const double sqrt_n = std::sqrt(static_cast<double>(pow2(n)));
    const double sqrt_block =
        std::sqrt(static_cast<double>(pow2(n - k)));
    const auto l1 = static_cast<std::uint64_t>(
        std::llround(kQuarterPi * (1.0 - eps.epsilon) * sqrt_n));
    const auto l2 = static_cast<std::uint64_t>(std::llround(
        (eps.angles.theta1 + eps.angles.theta2) / 2.0 * sqrt_block));
    BackendRow row{n, k, l1 + l2 + 1, -1.0, 0.0, -1.0};
    row.symmetry_seconds = time_grk(n, k, l1, l2,
                                    qsim::BackendKind::kSymmetry);
    rows.push_back(row);
  }

  Table backend_table({"n", "k", "queries", "dense s", "symmetry s",
                       "dense/symmetry"});
  std::ostringstream backends_json;
  backends_json << "[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    backend_table.add_row(
        {Table::num(std::uint64_t{row.n}), Table::num(std::uint64_t{row.k}),
         Table::num(row.iterations),
         row.dense_seconds < 0 ? "out of reach"
                               : Table::num(row.dense_seconds, 6),
         Table::num(row.symmetry_seconds, 6),
         row.speedup < 0 ? "-" : Table::num(row.speedup, 1)});
    if (i > 0) {
      backends_json << ",";
    }
    backends_json << "{\"n\":" << row.n << ",\"k\":" << row.k
                  << ",\"queries\":" << row.iterations
                  << ",\"dense_seconds\":" << json_num(row.dense_seconds)
                  << ",\"symmetry_seconds\":"
                  << json_num(row.symmetry_seconds)
                  << ",\"dense_over_symmetry\":" << json_num(row.speedup)
                  << "}";
  }
  backends_json << "]";
  std::cout << backend_table.render() << "\n";

  // -- section 3: serial vs batched multi-shot ------------------------------
  const unsigned shot_n = quick ? 12u : 16u;
  const oracle::Database db = oracle::Database::with_qubits(shot_n, 99);
  qsim::Circuit circuit(shot_n);
  for (int i = 0; i < 10; ++i) {
    circuit.grover_iteration();
  }
  for (int i = 0; i < 5; ++i) {
    circuit.partial_iteration(2);
  }
  circuit.non_target_mean_reflection();

  qsim::Simulator serial_sim(2005), batch_sim(2005);
  serial_sim.set_backend(shot_backend);
  batch_sim.set_backend(shot_backend);
  serial_sim.set_batch({.threads = 1});
  batch_sim.set_batch({.threads = batch_threads});

  Stopwatch watch;
  const auto serial_report =
      serial_sim.run_block_shots(circuit, db.view(), 2, shots);
  const double serial_seconds = watch.seconds();
  watch.reset();
  const auto batch_report =
      batch_sim.run_block_shots(circuit, db.view(), 2, shots);
  const double batch_seconds = watch.seconds();
  const qsim::BatchRunner probe({.threads = batch_threads});
  const double shot_speedup = serial_seconds / std::max(batch_seconds, 1e-12);

  std::cout << "multi-shot (" << to_string(shot_backend) << " engine, n="
            << shot_n << ", shots=" << shots << "): serial "
            << Table::num(serial_seconds, 4) << " s vs batched ("
            << probe.threads() << " threads) "
            << Table::num(batch_seconds, 4) << " s -> speedup "
            << Table::num(shot_speedup, 2) << "x\n";
  std::cout << "mode agreement: serial block " << serial_report.mode
            << " vs batched block " << batch_report.mode << "\n";

  // -- section 4: facade overhead + plan cache ------------------------------
  const unsigned fac_n = quick ? 12u : 16u;
  const unsigned fac_k = 2;
  const qsim::Index fac_target = pow2(fac_n) / 3 + 1;
  const Engine engine;
  SearchSpec fac_spec =
      SearchSpec::single_target(pow2(fac_n), pow2(fac_k), fac_target);
  fac_spec.algorithm = "grk";

  Stopwatch plan_watch;
  const auto plan_cold = engine.plan(fac_spec);
  const double plan_cold_seconds =
      plan_cold.cache_hit ? 0.0 : plan_watch.seconds();
  plan_watch.reset();
  const auto plan_warm = engine.plan(fac_spec);
  const double plan_warm_seconds = plan_watch.seconds();

  const int fac_reps = 30;
  // Warm both paths once (page in code, fill the plan cache), then time a
  // fresh oracle + RNG + run per request on each — the same per-request
  // work a module-level caller and a facade caller would actually do.
  {
    const oracle::Database db(pow2(fac_n), fac_target);
    Rng rng(fac_spec.seed);
    partial::GrkOptions options;
    options.l1 = plan_cold.schedule.l1;
    options.l2 = plan_cold.schedule.l2;
    (void)partial::run_partial_search(db, fac_k, rng, options);
    (void)engine.run(fac_spec);
  }
  watch.reset();
  for (int r = 0; r < fac_reps; ++r) {
    const oracle::Database db(pow2(fac_n), fac_target);
    Rng rng(fac_spec.seed);
    partial::GrkOptions options;
    options.l1 = plan_cold.schedule.l1;
    options.l2 = plan_cold.schedule.l2;
    (void)partial::run_partial_search(db, fac_k, rng, options);
  }
  const double direct_seconds = watch.seconds() / fac_reps;
  watch.reset();
  for (int r = 0; r < fac_reps; ++r) {
    (void)engine.run(fac_spec);
  }
  const double engine_seconds = watch.seconds() / fac_reps;
  const double overhead =
      engine_seconds / std::max(direct_seconds, 1e-12) - 1.0;

  // The SearchReport timing split (queue / plan / exec): one warm facade
  // request for the plan/exec shares, and the same request stream through a
  // single-worker Service — where queueing delay, the number a loaded
  // deployment actually suffers, becomes visible.
  const SearchReport split = engine.run(fac_spec);
  Service fac_service({.threads = 1});
  std::vector<JobHandle> fac_handles;
  fac_handles.reserve(fac_reps);
  for (int r = 0; r < fac_reps; ++r) {
    SearchSpec queued_spec = fac_spec;
    queued_spec.seed = 90000 + static_cast<std::uint64_t>(r);  // no coalescing
    fac_handles.push_back(fac_service.submit(queued_spec));
  }
  double mean_queue_ns = 0.0;
  for (auto& handle : fac_handles) {
    handle.wait();
    mean_queue_ns += static_cast<double>(handle.report().queue_ns);
  }
  mean_queue_ns /= fac_reps;

  std::cout << "\nfacade (grk, n=" << fac_n << ", " << fac_reps
            << " requests): direct " << Table::num(direct_seconds, 6)
            << " s/req vs engine " << Table::num(engine_seconds, 6)
            << " s/req -> overhead " << Table::num(overhead * 100.0, 2)
            << "%\nplan cache: cold " << Table::num(plan_cold_seconds, 6)
            << " s, warm " << Table::num(plan_warm_seconds, 9) << " s ("
            << engine.planner().hits() << " hit(s), "
            << engine.planner().misses() << " miss(es), "
            << engine.planner().evictions() << " eviction(s))\n"
            << "timing split: warm request plan " << split.plan_ns
            << " ns + exec " << split.exec_ns
            << " ns; mean queue delay through a 1-worker service "
            << Table::num(mean_queue_ns, 0) << " ns over " << fac_reps
            << " back-to-back jobs\n";

  // -- section 5: observability overhead ------------------------------------
  // Three rungs of the instrumentation ladder on the same warm grk workload:
  //   no control    Engine::run without a RunControl — span sites are not
  //                 even reachable (the pre-obs baseline);
  //   null sink     Engine::run with a RunControl but no SpanSink — every
  //                 span site costs exactly one pointer null-check (the
  //                 DISABLED path, what a --trace-ring=0 deployment pays);
  //   service off/on the full n=16 serve path with tracing disabled vs the
  //                 default-on TraceStore — the ENABLED cost of minting,
  //                 timestamping ~10 spans, and retiring each request.
  // The true per-request cost (~10 span events of a mutex push + clock read
  // each) is orders of magnitude below run-to-run scheduler noise on a 4 ms
  // workload, so the measurement leans on best-of-many INTERLEAVED trials:
  // alternating the configurations inside one loop decorrelates thermal and
  // frequency drift that best-of alone cannot filter.
  const int obs_trials = 7;
  double obs_no_control_seconds = 1e100;
  double obs_null_sink_seconds = 1e100;
  for (int trial = 0; trial < obs_trials; ++trial) {
    obs_no_control_seconds =
        std::min(obs_no_control_seconds, best_seconds_per_op(1, fac_reps, [&] {
                   (void)engine.run(fac_spec);
                 }));
    obs_null_sink_seconds =
        std::min(obs_null_sink_seconds, best_seconds_per_op(1, fac_reps, [&] {
                   qsim::RunControl control;
                   (void)engine.run(fac_spec, &control);
                 }));
  }
  const double disabled_overhead =
      obs_null_sink_seconds / std::max(obs_no_control_seconds, 1e-12) - 1.0;

  // The unambiguous pin on the disabled path: one span SITE with no sink is
  // a load + branch. Timed directly over 10M calls — the end-to-end diff
  // above sits inside scheduler noise precisely because this is sub-ns.
  double disabled_span_ns = 0.0;
  {
    qsim::RunControl control;
    // Launder the pointer each iteration so the compiler cannot hoist the
    // null check (or delete the loop) — the timed body is the real site.
    qsim::RunControl* volatile laundered = &control;
    constexpr int kSpanCalls = 10000000;
    Stopwatch span_watch;
    for (int i = 0; i < kSpanCalls; ++i) {
      laundered->span("bench.noop");
    }
    disabled_span_ns = span_watch.seconds() * 1e9 / kSpanCalls;
  }

  const auto service_trial_seconds = [&](std::size_t trace_capacity) {
    Service service({.threads = 1, .trace = {.capacity = trace_capacity}});
    std::vector<JobHandle> handles;
    handles.reserve(fac_reps);
    Stopwatch trial_watch;
    for (int r = 0; r < fac_reps; ++r) {
      SearchSpec spec = fac_spec;
      // Distinct seeds: no coalescing, no result-cache hits; a fresh
      // Service per trial keeps the caches cold across trials too.
      spec.seed = 70000 + static_cast<std::uint64_t>(r);
      handles.push_back(service.submit(spec));
    }
    for (auto& handle : handles) {
      handle.wait();
    }
    return trial_watch.seconds() / fac_reps;
  };
  double obs_service_off_seconds = 1e100;
  double obs_service_on_seconds = 1e100;
  for (int trial = 0; trial < obs_trials; ++trial) {
    obs_service_off_seconds =
        std::min(obs_service_off_seconds, service_trial_seconds(0));
    obs_service_on_seconds =
        std::min(obs_service_on_seconds, service_trial_seconds(256));
  }
  const double enabled_overhead =
      obs_service_on_seconds / std::max(obs_service_off_seconds, 1e-12) - 1.0;

  std::cout << "\nobs (grk, n=" << fac_n << ", " << fac_reps
            << " requests/trial): engine no-control "
            << Table::num(obs_no_control_seconds, 6) << " s/req vs null-sink "
            << Table::num(obs_null_sink_seconds, 6)
            << " s/req -> disabled-path overhead "
            << Table::num(disabled_overhead * 100.0, 3)
            << "% (one null-sink span site: "
            << Table::num(disabled_span_ns, 3)
            << " ns)\nservice traced-off " << Table::num(obs_service_off_seconds, 6)
            << " s/req vs traced-on " << Table::num(obs_service_on_seconds, 6)
            << " s/req -> enabled-path overhead "
            << Table::num(enabled_overhead * 100.0, 3) << "%\n";

  // -- JSON ----------------------------------------------------------------
  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"qsim\",\n"
       << "  \"isa\": \"" << qsim::isa_name(qsim::active_isa()) << "\",\n"
       << "  \"kernels\": " << kernels_json.str() << ",\n"
       << "  \"dense_simd\": " << simd_json.str() << ",\n"
       << "  \"grk_backends\": " << backends_json.str() << ",\n"
       << "  \"multi_shot\": {\"backend\": \"" << to_string(shot_backend)
       << "\", \"n\": " << shot_n << ", \"shots\": " << shots
       << ", \"queries_per_shot\": " << circuit.query_count()
       << ", \"serial_seconds\": " << json_num(serial_seconds)
       << ", \"batch_seconds\": " << json_num(batch_seconds)
       << ", \"batch_threads\": " << probe.threads()
       << ", \"speedup\": " << json_num(shot_speedup) << "},\n"
       << "  \"facade\": {\"n\": " << fac_n << ", \"k\": " << fac_k
       << ", \"requests\": " << fac_reps
       << ", \"direct_seconds_per_request\": " << json_num(direct_seconds)
       << ", \"engine_seconds_per_request\": " << json_num(engine_seconds)
       << ", \"overhead_fraction\": " << json_num(overhead)
       << ", \"plan_cold_seconds\": " << json_num(plan_cold_seconds)
       << ", \"plan_warm_seconds\": " << json_num(plan_warm_seconds)
       << ", \"warm_request_plan_ns\": " << split.plan_ns
       << ", \"warm_request_exec_ns\": " << split.exec_ns
       << ", \"service_mean_queue_ns\": " << json_num(mean_queue_ns)
       << "},\n"
       << "  \"obs\": {\"n\": " << fac_n << ", \"requests\": " << fac_reps
       << ", \"engine_no_control_seconds_per_request\": "
       << json_num(obs_no_control_seconds)
       << ", \"engine_null_sink_seconds_per_request\": "
       << json_num(obs_null_sink_seconds)
       << ", \"disabled_overhead_fraction\": " << json_num(disabled_overhead)
       << ", \"disabled_span_site_ns\": " << json_num(disabled_span_ns)
       << ", \"service_traced_off_seconds_per_request\": "
       << json_num(obs_service_off_seconds)
       << ", \"service_traced_on_seconds_per_request\": "
       << json_num(obs_service_on_seconds)
       << ", \"enabled_overhead_fraction\": " << json_num(enabled_overhead)
       << "}\n}\n";
  json.close();
  std::cout << "\nwrote " << json_path << "\n";
  return 0;
}

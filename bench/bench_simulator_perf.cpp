// Experiment P1 (engineering ablation): throughput of the state-vector
// kernels, including the fused-kernel vs gate-level-diffusion gap that
// justifies the fused implementation (DESIGN.md, "Design choices").
#include <benchmark/benchmark.h>

#include "common/math.h"
#include "oracle/database.h"
#include "partial/analytic.h"
#include "partial/optimizer.h"
#include "qsim/diffusion.h"
#include "qsim/kernels.h"
#include "qsim/state_vector.h"

namespace {

using namespace pqs;

void BM_SingleQubitGate(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  auto sv = qsim::StateVector::uniform(n);
  const auto h = qsim::gates::H();
  unsigned q = 0;
  for (auto _ : state) {
    sv.apply_gate1(q, h);
    q = (q + 1) % n;
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sv.dimension()));
}
BENCHMARK(BM_SingleQubitGate)->Arg(10)->Arg(14)->Arg(18)->Arg(20);

void BM_GlobalDiffusionFused(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  auto sv = qsim::StateVector::uniform(n);
  for (auto _ : state) {
    sv.reflect_about_uniform();
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sv.dimension()));
}
BENCHMARK(BM_GlobalDiffusionFused)->Arg(10)->Arg(14)->Arg(18)->Arg(20);

void BM_GlobalDiffusionGateLevel(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  auto sv = qsim::StateVector::uniform(n);
  for (auto _ : state) {
    qsim::apply_global_diffusion_gate_level(sv);
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sv.dimension()));
}
BENCHMARK(BM_GlobalDiffusionGateLevel)->Arg(10)->Arg(14)->Arg(18);

void BM_BlockDiffusionFused(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  auto sv = qsim::StateVector::uniform(n);
  for (auto _ : state) {
    sv.reflect_blocks_about_uniform(2);
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sv.dimension()));
}
BENCHMARK(BM_BlockDiffusionFused)->Arg(10)->Arg(14)->Arg(18)->Arg(20);

void BM_GroverIteration(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  const oracle::Database db = oracle::Database::with_qubits(n, 1);
  auto sv = qsim::StateVector::uniform(n);
  for (auto _ : state) {
    db.apply_phase_oracle(sv);
    sv.reflect_about_uniform();
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sv.dimension()));
}
BENCHMARK(BM_GroverIteration)->Arg(10)->Arg(14)->Arg(18)->Arg(20);

void BM_NonTargetMeanReflection(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  auto sv = qsim::StateVector::uniform(n);
  for (auto _ : state) {
    sv.reflect_non_target_about_their_mean(3);
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sv.dimension()));
}
BENCHMARK(BM_NonTargetMeanReflection)->Arg(10)->Arg(14)->Arg(18);

void BM_InnerProduct(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  const auto a = qsim::StateVector::uniform(n);
  const auto b = qsim::StateVector::uniform(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.inner(b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.dimension()));
}
BENCHMARK(BM_InnerProduct)->Arg(14)->Arg(18)->Arg(20);

void BM_SubspaceModelGrkStep(benchmark::State& state) {
  // The O(1) analytic model: the reason the finite-N optimizer is instant.
  const partial::SubspaceModel model(std::uint64_t{1} << 40, 64);
  auto s = model.uniform_start();
  for (auto _ : state) {
    s = model.apply_global(s);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_SubspaceModelGrkStep);

void BM_IntegerOptimizer(benchmark::State& state) {
  const auto n = static_cast<unsigned>(state.range(0));
  const std::uint64_t n_items = pow2(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(partial::optimize_integer(
        n_items, 4, partial::default_min_success(n_items)));
  }
}
BENCHMARK(BM_IntegerOptimizer)->Arg(12)->Arg(16)->Arg(20);

}  // namespace

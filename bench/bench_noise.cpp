// Ablation: robustness of partial search to oracle noise.
//
// Per-query noise hits the fewer-query algorithm less often: at equal
// physical error rates, partial search answers its (coarser) question more
// reliably than full search answers the same block question.
//
//   ./build/bench/bench_noise --qubits 10 --trials 400
//   ./build/bench/bench_noise --qubits 32 --backend symmetry --trials 2000
//   ./build/bench/bench_noise --noise dephasing --noise-p 0.01
//
// --backend symmetry runs the class-moment noise channel (qsim/backend.h),
// which is what makes n > 30 sweeps possible; --batch fans the Monte-Carlo
// trials across OpenMP threads with per-shot RNG streams (reproducible for
// any thread count). --noise-p, when nonzero, replaces the default sweep
// with that single error rate.
#include <iostream>
#include <vector>

#include <cmath>

#include "common/cli.h"
#include "common/table.h"
#include "oracle/database.h"
#include "partial/noisy.h"
#include "partial/optimizer.h"
#include "qsim/flags.h"

int main(int argc, char** argv) {
  using namespace pqs;
  Cli cli(argc, argv);
  const auto n = static_cast<unsigned>(
      cli.get_int("qubits", 10, "address qubits"));
  const auto k = static_cast<unsigned>(
      cli.get_int("kbits", 2, "block bits"));
  const auto trials = static_cast<std::uint64_t>(
      cli.get_int("trials", 200, "trajectories per point"));
  const auto engine = qsim::parse_engine_flags_with_noise(cli);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }
  cli.finish();

  const oracle::Database db =
      oracle::Database::with_qubits(n, (std::uint64_t{1} << n) / 2 + 5);
  Rng rng(1234);
  partial::NoisyOptions options;
  options.backend = engine.backend;
  options.batch = engine.batch;
  // One schedule for the whole sweep, size-aware (exact integer optimum at
  // small n, asymptotic geometry past 2^24 items), paid for once.
  const auto schedule = partial::optimize_schedule(
      db.size(), std::uint64_t{1} << k,
      1.0 - 1.0 / std::sqrt(static_cast<double>(db.size())));
  options.l1 = schedule.l1;
  options.l2 = schedule.l2;

  std::cout << "ablation - per-query " << qsim::noise_kind_name(engine.noise.kind)
            << " noise, block-question success (N = 2^" << n << ", K = 2^"
            << k << ", " << trials << " trajectories/point)\n\n";

  std::vector<double> rates{0.0, 0.001, 0.003, 0.01, 0.03, 0.1};
  if (engine.noise.probability > 0.0) {
    rates = {0.0, engine.noise.probability};
  } else if (engine.noise.kind == qsim::NoiseKind::kNone) {
    rates = {0.0};  // clean baseline only: no channel means no noisy rows
  }

  Table table({"per-qubit error rate", "partial success", "partial queries",
               "full-search success", "full queries",
               "mean injected (partial)", "engine"});
  for (const double p : rates) {
    const qsim::NoiseModel model{engine.noise.kind, p};
    const auto part =
        partial::run_noisy_partial_search(db, k, model, trials, rng, options);
    const auto full = partial::run_noisy_full_search_block(db, k, model,
                                                           trials, rng,
                                                           options);
    table.add_row({Table::num(p, 4), Table::num(part.success_rate, 3),
                   Table::num(part.queries_per_trial),
                   Table::num(full.success_rate, 3),
                   Table::num(full.queries_per_trial),
                   Table::num(part.mean_injected, 2),
                   qsim::to_string(part.backend_used)});
  }
  std::cout << table.render();
  std::cout << "\nreading: both decay toward the 1/K guess rate at "
               "comparable speed; partial search reaches comparable "
               "block accuracy with ~25-30% fewer queries, i.e. fewer "
               "noise exposure points per answer.\n";
  return 0;
}

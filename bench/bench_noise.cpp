// Ablation: robustness of partial search to oracle noise, served through
// the facade — each sweep point is one "noisy" SearchSpec against a shared
// pqs::Engine (the plan cache derives the schedule once for the whole
// sweep); the full-search comparison row uses the low-level driver, which
// answers the same block question.
//
// Per-query noise hits the fewer-query algorithm less often: at equal
// physical error rates, partial search answers its (coarser) question more
// reliably than full search answers the same block question.
//
//   ./build/bench/bench_noise --qubits 10 --shots 400
//   ./build/bench/bench_noise --qubits 32 --backend symmetry --shots 2000
//   ./build/bench/bench_noise --noise dephasing --noise-p 0.01
//
// --backend symmetry runs the class-moment noise channel (qsim/backend.h),
// which is what makes n > 30 sweeps possible; --batch fans the Monte-Carlo
// trials across OpenMP threads with per-shot RNG streams (reproducible for
// any thread count). --noise-p, when nonzero, replaces the default sweep
// with that single error rate.
#include <iostream>
#include <vector>

#include "api/api.h"
#include "common/cli.h"
#include "common/math.h"
#include "common/table.h"
#include "oracle/database.h"
#include "partial/noisy.h"

int main(int argc, char** argv) {
  using namespace pqs;
  Cli cli(argc, argv);
  api::SpecFlagSet flags;
  flags.algo = false;
  flags.target = false;  // the demo target derives from the problem size
  flags.shots = true;
  flags.shots_default = 200;  // trajectories per point
  flags.batch = true;
  flags.noise = true;
  flags.noise_default = "depolarizing";
  flags.seed_default = 1234;
  SearchSpec spec = api::parse_search_spec(cli, flags, "noisy",
                                           /*default_qubits=*/10,
                                           /*default_kbits=*/2,
                                           /*default_target=*/0);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }
  cli.finish();
  spec.marked = {spec.n_items / 2 + 5};

  Engine engine;
  std::cout << "ablation - per-query "
            << qsim::noise_kind_name(spec.noise.kind)
            << " noise, block-question success (N = " << spec.n_items
            << ", K = " << spec.n_blocks << ", " << spec.shots
            << " trajectories/point)\n\n";

  std::vector<double> rates{0.0, 0.001, 0.003, 0.01, 0.03, 0.1};
  if (spec.noise.probability > 0.0) {
    rates = {0.0, spec.noise.probability};
  } else if (spec.noise.kind == qsim::NoiseKind::kNone) {
    rates = {0.0};  // clean baseline only: no channel means no noisy rows
  }

  Table table({"per-qubit error rate", "partial success", "partial queries",
               "full-search success", "full queries", "plan", "engine"});
  for (const double p : rates) {
    spec.noise.probability = p;
    const auto part = engine.run(spec);

    const oracle::Database db(spec.n_items, spec.target());
    Rng rng(spec.seed);
    partial::NoisyOptions options;
    options.backend = spec.backend;
    options.batch = spec.batch;
    const auto full = partial::run_noisy_full_search_block(
        db, log2_exact(spec.n_blocks), spec.noise, spec.shots, rng, options);

    table.add_row({Table::num(p, 4),
                   Table::num(part.success_probability, 3),
                   Table::num(part.queries_per_trial),
                   Table::num(full.success_rate, 3),
                   Table::num(full.queries_per_trial),
                   part.plan_cache_hit ? "cached" : "computed",
                   qsim::to_string(part.backend_used)});
  }
  std::cout << table.render();
  std::cout << "\nreading: both decay toward the 1/K guess rate at "
               "comparable speed; partial search reaches comparable "
               "block accuracy with ~25-30% fewer queries, i.e. fewer "
               "noise exposure points per answer.\n";
  return 0;
}

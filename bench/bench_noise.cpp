// Ablation: robustness of partial search to oracle noise.
//
// Per-query depolarizing noise hits the fewer-query algorithm less often:
// at equal physical error rates, partial search answers its (coarser)
// question more reliably than full search answers the same block question.
#include <iostream>

#include "common/cli.h"
#include "common/table.h"
#include "oracle/database.h"
#include "partial/noisy.h"

int main(int argc, char** argv) {
  using namespace pqs;
  Cli cli(argc, argv);
  const auto n = static_cast<unsigned>(
      cli.get_int("qubits", 10, "address qubits"));
  const auto k = static_cast<unsigned>(
      cli.get_int("kbits", 2, "block bits"));
  const auto trials = static_cast<std::uint64_t>(
      cli.get_int("trials", 200, "trajectories per point"));
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }
  cli.finish();

  const oracle::Database db =
      oracle::Database::with_qubits(n, (std::uint64_t{1} << n) / 2 + 5);
  Rng rng(1234);

  std::cout << "ablation - per-query depolarizing noise, block-question "
               "success (N = 2^" << n << ", K = 2^" << k << ", " << trials
            << " trajectories/point)\n\n";

  Table table({"per-qubit error rate", "partial success", "partial queries",
               "full-search success", "full queries",
               "mean injected (partial)"});
  for (const double p : {0.0, 0.001, 0.003, 0.01, 0.03, 0.1}) {
    const qsim::NoiseModel model{qsim::NoiseKind::kDepolarizing, p};
    const auto part =
        partial::run_noisy_partial_search(db, k, model, trials, rng);
    const auto full =
        partial::run_noisy_full_search_block(db, k, model, trials, rng);
    table.add_row({Table::num(p, 4), Table::num(part.success_rate, 3),
                   Table::num(part.queries_per_trial),
                   Table::num(full.success_rate, 3),
                   Table::num(full.queries_per_trial),
                   Table::num(part.mean_injected, 2)});
  }
  std::cout << table.render();
  std::cout << "\nreading: both decay toward the 1/K guess rate at "
               "comparable speed; partial search reaches comparable "
               "block accuracy with ~25-30% fewer queries, i.e. fewer "
               "noise exposure points per answer.\n";
  return 0;
}

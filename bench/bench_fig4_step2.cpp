// Experiment F4: Step-2 geometry of Figure 4.
//
// Inside the target block, Step 2 rotates the in-block state vector from
// initial angle theta1 (from the target axis) PAST the target to -theta2:
// "in the target block the state vector moves past the target". We print
// the in-block angle per local iteration and compare theta1/theta2 against
// eq. (3)/(4).
#include <cmath>
#include <iostream>

#include "common/cli.h"
#include "common/math.h"
#include "common/table.h"
#include "partial/analytic.h"
#include "partial/optimizer.h"

int main(int argc, char** argv) {
  using namespace pqs;
  Cli cli(argc, argv);
  const auto n = static_cast<unsigned>(
      cli.get_int("qubits", 16, "address qubits"));
  const auto k = static_cast<unsigned>(
      cli.get_int("kbits", 2, "block bits (K = 2^k)"));
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }
  cli.finish();

  const std::uint64_t n_items = pow2(n);
  const std::uint64_t k_blocks = pow2(k);
  const double sqrt_n = std::sqrt(static_cast<double>(n_items));

  const auto opt = partial::optimize_epsilon(k_blocks);
  const auto l1 = static_cast<std::uint64_t>(
      std::llround(kQuarterPi * (1.0 - opt.epsilon) * sqrt_n));

  const partial::SubspaceModel model(n_items, k_blocks);
  auto s = model.uniform_start();
  for (std::uint64_t i = 0; i < l1; ++i) {
    s = model.apply_global(s);
  }

  std::cout << "F4 - Step 2: independent per-block searches; in the target "
               "block the state moves past the target\n(N = "
            << n_items << ", K = " << k_blocks << ", eps* = "
            << Table::num(opt.epsilon, 4) << ", l1 = " << l1 << ")\n\n";

  // eq. (3)/(4) predictions.
  std::cout << "eq. (3): theta1 = " << Table::num(opt.angles.theta1, 4)
            << "   eq. (4): theta2 = " << Table::num(opt.angles.theta2, 4)
            << "   l2 = sqrt(N/K)/2 (theta1+theta2) = "
            << Table::num(std::sqrt(static_cast<double>(model.block_size())) /
                              2.0 * (opt.angles.theta1 + opt.angles.theta2),
                          1)
            << " iterations\n\n";

  Table table({"local iter", "angle from |z_t> (rad)", "a_t (block-rel)",
               "a_b per state", "step-3 residual |a_o'|"});
  const auto l2_ideal = static_cast<std::uint64_t>(
      std::llround(std::sqrt(static_cast<double>(model.block_size())) / 2.0 *
                   (opt.angles.theta1 + opt.angles.theta2)));
  const std::uint64_t step =
      l2_ideal >= 12 ? l2_ideal / 12 : 1;
  for (std::uint64_t l2 = 0; l2 <= l2_ideal + 2 * step; ++l2) {
    if (l2 % step == 0 || l2 == l2_ideal) {
      const double alpha = std::sqrt(s.target_block_probability());
      const double in_block_angle =
          std::acos(std::min(1.0, std::abs(s.a_t) / alpha));
      table.add_row(
          {Table::num(l2) + (l2 == l2_ideal ? " <- l2*" : ""),
           Table::num(in_block_angle, 4),
           Table::num(std::abs(s.a_t) / alpha, 4),
           Table::num(model.per_state_target_rest(s).real(), 6),
           Table::num(model.step3_residual(s), 6)});
    }
    s = model.apply_local(s);
  }
  std::cout << table.render();
  std::cout << "\nNote the sign change of a_b (the state passes the target) "
               "and the minimum of the step-3 residual at l2*.\n";
  return 0;
}

// Experiment F1: the Figure-1 twelve-item example, rendered stage by stage.
//
// Paper, Section 1.3: two queries find the target block with probability
// one (and the target itself with probability 3/4) in a twelve-item list
// split into three blocks — while full search with certainty needs three.
#include <cstdio>
#include <iostream>

#include "common/cli.h"
#include "common/table.h"
#include "grover/exact.h"
#include "partial/twelve.h"
#include "qsim/flags.h"

int main(int argc, char** argv) {
  using namespace pqs;
  Cli cli(argc, argv);
  const auto target = static_cast<qsim::Index>(
      cli.get_int("target", 7, "marked address in [0, 12)"));
  const auto engine = qsim::parse_engine_flags(cli);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }
  cli.finish();

  const auto trace = partial::run_figure1(target, engine.backend);
  std::cout << "F1 - Figure 1: partial quantum search in a database of "
               "twelve items (target = "
            << target << ")\n\n"
            << trace.render();

  Table summary({"quantity", "paper", "measured"});
  summary.add_row({"queries", "2", Table::num(trace.queries)});
  summary.add_row({"P(target block)", "1", Table::num(trace.block_probability, 6)});
  summary.add_row({"P(target state)", "3/4", Table::num(trace.target_probability, 6)});
  summary.add_row({"full search with certainty (N=12)", ">= 3 queries",
                   Table::num(grover::exact_query_count(12)) + " queries"});
  std::cout << summary.render();

  // The generalization: for which (N, K) is the two-query pattern exact?
  std::cout << "\nTwo-query-exact instances with N <= 64 "
               "(condition N = 4K/(K-2)):\n";
  for (const auto& inst : partial::two_query_instances(64)) {
    std::cout << "  N = " << inst.n_items << ", K = " << inst.k_blocks
              << "  -> block probability "
              << Table::num(partial::two_query_block_probability(
                                inst.n_items, inst.k_blocks, 0,
                                engine.backend),
                            9)
              << "\n";
  }
  return 0;
}

// Experiment F1: the Figure-1 twelve-item example, rendered stage by stage.
//
// Paper, Section 1.3: two queries find the target block with probability
// one (and the target itself with probability 3/4) in a twelve-item list
// split into three blocks — while full search with certainty needs three.
#include <cstdio>
#include <iostream>

#include "api/api.h"
#include "common/cli.h"
#include "common/table.h"
#include "grover/exact.h"
#include "partial/twelve.h"

int main(int argc, char** argv) {
  using namespace pqs;
  Cli cli(argc, argv);
  const auto target = static_cast<qsim::Index>(
      cli.get_int("target", 7, "marked address in [0, 12)"));
  api::SpecFlagSet flags;
  flags.algo = false;
  flags.problem = false;
  SearchSpec spec = api::parse_search_spec(cli, flags);
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }
  cli.finish();

  // The per-stage amplitude pictures come from the low-level trace API.
  const auto trace = partial::run_figure1(target, spec.backend);
  std::cout << "F1 - Figure 1: partial quantum search in a database of "
               "twelve items (target = "
            << target << ")\n\n"
            << trace.render();

  // The run itself is one "twelve" request against the engine.
  Engine engine;
  spec.algorithm = "twelve";
  spec.n_items = 12;
  spec.n_blocks = 3;
  spec.marked = {target};
  const auto report = engine.run(spec);

  Table summary({"quantity", "paper", "measured"});
  summary.add_row({"queries", "2", Table::num(report.queries)});
  summary.add_row(
      {"P(target block)", "1", Table::num(report.success_probability, 6)});
  summary.add_row({"P(target state)", "3/4",
                   Table::num(trace.target_probability, 6)});
  summary.add_row({"full search with certainty (N=12)", ">= 3 queries",
                   Table::num(grover::exact_query_count(12)) + " queries"});
  std::cout << summary.render();

  // The generalization: for which (N, K) is the two-query pattern exact?
  std::cout << "\nTwo-query-exact instances with N <= 64 "
               "(condition N = 4K/(K-2)):\n";
  for (const auto& inst : partial::two_query_instances(64)) {
    spec.n_items = inst.n_items;
    spec.n_blocks = inst.k_blocks;
    spec.marked = {0};
    std::cout << "  N = " << inst.n_items << ", K = " << inst.k_blocks
              << "  -> block probability "
              << Table::num(engine.run(spec).success_probability, 9)
              << "\n";
  }
  return 0;
}

// Experiment Z1: numerical verification of Appendix B (Theorem 3 and
// Lemmas 1-3) on actual Grover circuits.
//
// For each n we run the full hybrid-argument machinery on the simulator:
//   Lemma 1:  sum_y theta(phi_T, phi^y_T) >= N (pi/2)(1 - sqrt(eps) - N^-1/4)
//   Lemma 2:  theta(phi^{y,i-1}_T, phi^{y,i}_T) <= 2 arcsin sqrt(p_{T-i,y})
//   Lemma 3:  sum_y arcsin sqrt(p_{i,y}) <= sqrt(N)(1 + O(1/N))
// and the implied floor T >= sum_y theta / (2 sqrt(N)(1+1/N)) — which for
// Grover itself is nearly tight, reproducing "Grover is optimal".
#include <cmath>
#include <iostream>

#include "api/api.h"
#include "common/cli.h"
#include "common/math.h"
#include "common/table.h"
#include "common/timing.h"
#include "grover/grover.h"
#include "zalka/zalka.h"

int main(int argc, char** argv) {
  using namespace pqs;
  Cli cli(argc, argv);
  const auto max_n = static_cast<unsigned>(
      cli.get_int("max-qubits", 9, "largest n to analyze"));
  // The hybrid argument manipulates full amplitude vectors; --backend
  // symmetry is rejected loudly by analyze_grover, never silently ignored.
  api::SpecFlagSet spec_flags;
  spec_flags.algo = false;
  spec_flags.problem = false;
  SearchSpec spec = api::parse_search_spec(cli, spec_flags, "zalka");
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }
  cli.finish();

  Stopwatch timer;
  std::cout << "Z1 - Appendix B (Zalka's bound revisited) verified on the "
               "simulator\n\n";

  Table table({"n", "T", "eps", "sum theta_y", "Lemma-1 floor",
               "max S_i", "Lemma-3 ceiling", "Lemma 2", "implied T floor",
               "T/floor"});
  for (unsigned n = 4; n <= max_n; ++n) {
    const auto t = grover::optimal_iterations(pow2(n));
    zalka::ZalkaOptions options;
    options.backend = spec.backend;
    options.lemma2_sample = 8;
    const auto report = zalka::analyze_grover(n, t, options);
    table.add_row(
        {Table::num(std::uint64_t{n}), Table::num(report.queries),
         Table::num(report.eps, 4), Table::num(report.sum_final_angles, 1),
         Table::num(report.lemma1_floor, 1),
         Table::num(report.max_per_query_sum, 4),
         Table::num(report.lemma3_ceiling, 4),
         report.lemma2_holds ? "holds" : "VIOLATED",
         Table::num(report.implied_query_floor, 2),
         Table::num(static_cast<double>(report.queries) /
                        report.implied_query_floor,
                    3)});
  }
  std::cout << table.render();

  Table floors({"N", "Theorem-3 floor, eps=0", "Theorem-3 floor, eps=N^-1/4",
                "(pi/4)sqrt(N)"});
  floors.set_title("\nTheorem-3 closed-form floors (unit constants): the "
                   "small-error refinement the partial-search lower bound "
                   "needs");
  for (unsigned n = 8; n <= 24; n += 4) {
    const std::uint64_t n_items = pow2(n);
    const double nd = static_cast<double>(n_items);
    floors.add_row({Table::num(n_items),
                    Table::num(zalka::theorem3_floor(n_items, 0.0), 1),
                    Table::num(zalka::theorem3_floor(
                                   n_items, std::pow(nd, -0.25)),
                               1),
                    Table::num(kQuarterPi * std::sqrt(nd), 1)});
  }
  std::cout << floors.render();

  // The facade view of the same analysis: one "zalka" request.
  Engine facade;
  spec.n_items = pow2(6);
  spec.n_blocks = 1;
  spec.marked = {3};
  const auto report = facade.run(spec);
  std::cout << "\nfacade (--algo zalka, n = 6): " << report.detail << "\n";
  std::cout << "elapsed: " << timer.human() << "\n";
  return 0;
}

// Experiment A1: the classical baselines of Section 1.1 / Appendix A.
//
//   randomized full search:        expected (N+1)/2 probes (paper: N/2)
//   deterministic partial search:  N (1 - 1/K) probes worst case
//   randomized partial search:     expected N/2 (1 - 1/K^2) + O(1), and
//                                  Appendix A proves this optimal.
#include <iostream>

#include "classical/montecarlo.h"
#include "classical/search.h"
#include "common/cli.h"
#include "common/table.h"
#include "partial/bounds.h"

int main(int argc, char** argv) {
  using namespace pqs;
  Cli cli(argc, argv);
  const auto n_items = static_cast<std::uint64_t>(
      cli.get_int("items", 960, "database size (divisible by 2,3,4,8)"));
  const auto trials = static_cast<std::uint64_t>(
      cli.get_int("trials", 4000, "Monte-Carlo trials per row"));
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }
  cli.finish();

  Rng rng(424242);
  std::cout << "A1 - classical search baselines (N = " << n_items << ", "
            << trials << " trials per row, zero-error algorithms)\n\n";

  Table full({"algorithm", "measured mean probes", "ci95", "closed form",
              "failures"});
  const auto det = classical::measure_full_deterministic(n_items, trials, rng);
  full.add_row({"full, deterministic scan", Table::num(det.probes.mean(), 2),
                Table::num(det.probes.ci95_halfwidth(), 2),
                Table::num(partial::classical_full_expected(n_items), 2) +
                    " ((N+1)/2)",
                Table::num(det.failures)});
  const auto rnd = classical::measure_full_randomized(n_items, trials, rng);
  full.add_row({"full, randomized order", Table::num(rnd.probes.mean(), 2),
                Table::num(rnd.probes.ci95_halfwidth(), 2),
                Table::num(partial::classical_full_expected(n_items), 2) +
                    " ((N+1)/2)",
                Table::num(rnd.failures)});
  std::cout << full.render();

  Table part({"K", "measured randomized mean", "ci95",
              "paper N/2(1-1/K^2)", "exact closed form",
              "deterministic worst case", "N(1-1/K)", "failures"});
  part.set_title("\npartial search (Appendix A: the randomized expectation "
                 "is optimal)");
  for (const std::uint64_t k : {2u, 3u, 4u, 8u}) {
    const auto stats =
        classical::measure_partial_randomized(n_items, k, trials, rng);
    const auto det_stats =
        classical::measure_partial_deterministic(n_items, k, trials, rng);
    part.add_row(
        {Table::num(k), Table::num(stats.probes.mean(), 2),
         Table::num(stats.probes.ci95_halfwidth(), 2),
         Table::num(partial::classical_partial_randomized_paper(n_items, k), 2),
         Table::num(partial::classical_partial_randomized_exact(n_items, k), 2),
         Table::num(det_stats.probes.max(), 0),
         Table::num(partial::classical_partial_deterministic(n_items, k)),
         Table::num(stats.failures + det_stats.failures)});
  }
  std::cout << part.render();

  std::cout << "\nAppendix-A reading: the classical savings over N/2 decay "
               "like 1/K^2, while the quantum savings (Theorem 1) decay "
               "like 1/sqrt(K) - a quadratically slower fade.\n";
  return 0;
}

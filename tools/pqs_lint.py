#!/usr/bin/env python3
"""pqs_lint — project-invariant linter for the pqs codebase.

Generic static analysis (clang-tidy, -Wthread-safety) catches generic bug
classes; this linter encodes the invariants that are specific to THIS
repository — each rule exists because the bug class it flags either
actually shipped here or is one design decision away from shipping:

  thread-local-omp   A `static thread_local` variable referenced inside an
                     `#pragma omp parallel` region. Worker threads each see
                     their own (empty) thread_local instance, so writes go
                     to buffers nobody reads — the exact PR 6
                     apply_dense_matrix bug. Hoist a raw pointer outside
                     the region instead (src/qsim/diffusion.cpp shows the
                     fixed shape).

  raw-plane-access   `.re(` / `.im(` SoA plane access outside the qsim
                     kernel/substrate layer. The planes carry a block-sum
                     cache (qsim/soa.h); code that touches them directly
                     bypasses the cache discipline and silently corrupts
                     the next reflection's skipped read pass.

  raw-random         `rand()` / `srand()` / a naked `std::mt19937` outside
                     common/random. Everything stochastic must draw from
                     pqs::Rng so runs are reproducible from the seed
                     printed in each report.

  bare-mutex         A `std::mutex` (or recursive/shared/timed variant)
                     declared outside common/thread_annotations.h. Bare
                     mutexes are invisible to the Clang thread-safety
                     analysis; use the capability-annotated pqs::Mutex so
                     lock discipline stays machine-checked.

  omp-pragma         `#pragma omp` in a file not on the approved list.
                     OpenMP regions interact with thread_locals, the
                     BatchRunner's own fan-out, and TSan's blind spot for
                     libgomp — new parallel regions are a reviewed
                     decision, not a drive-by.

  raw-socket         A raw POSIX socket call (`::socket`, `::accept`,
                     `::bind`, `::listen`, `::connect`, ...) outside
                     src/net/. The net layer decides partial writes, EINTR,
                     SIGPIPE suppression, and shutdown-to-unblock ONCE
                     (src/net/socket.h); a drive-by socket call elsewhere
                     reopens every one of those bug classes.

  journal-append     An append-mode file open (`O_APPEND`, `std::ios::app`)
                     outside src/service/journal.cpp. Append-mode writes
                     are the journal's durability contract — one write(2)
                     per record, torn-tail recovery, id continuation — and
                     a second writer appending to any journal file corrupts
                     exactly the records a crash is supposed to preserve.
                     All journal writes go through the Journal class.

  raw-clock          A direct `std::chrono::*_clock::now()` call outside
                     common/timing and src/obs/. Every instrumentation
                     timestamp flows through pqs::Stopwatch / steady_now()
                     or obs::trace_now_ns() — ONE clock per concern — so
                     trace and slow-request tests can fake time
                     (obs::set_fake_clock_ns_for_testing) instead of
                     sleeping, and a span timeline is always comparable to
                     the stage histograms recorded next to it.

Usage:
  tools/pqs_lint.py [--root DIR]      lint the tree (src/ tools/ examples/
                                      bench/); exit 1 on any violation
  tools/pqs_lint.py --self-test       run the golden fixtures under
                                      tests/lint_fixtures/ (each rule has
                                      one violating and one clean fixture)
  tools/pqs_lint.py FILE [FILE...]    lint specific files
"""

import argparse
import re
import sys
from pathlib import Path

# ---------------------------------------------------------------------------
# Approved-file lists (repo-relative, forward slashes). Growing one of these
# is an explicit, reviewed act — that is the point of the lint.

# The SoA substrate: the kernel tiers plus the three qsim internals that
# legitimately stream the raw planes (and own the invalidate_sums calls).
PLANE_ACCESS_ALLOWED = {
    "src/qsim/soa.h",
    "src/qsim/kernels.h",
    "src/qsim/kernels.cpp",
    "src/qsim/kernels_ops.h",
    "src/qsim/kernels_scalar.cpp",
    "src/qsim/kernels_avx2.cpp",
    "src/qsim/kernels_avx512.cpp",
    "src/qsim/kernels_soa.cpp",
    "src/qsim/state_vector.cpp",
    "src/qsim/backend.cpp",
    "src/qsim/diffusion.cpp",
}

RANDOM_ALLOWED = {
    "src/common/random.h",
    "src/common/random.cpp",
}

BARE_MUTEX_ALLOWED = {
    # The one place std::mutex may appear: wrapped into the annotated
    # capability type everyone else uses.
    "src/common/thread_annotations.h",
}

OMP_PRAGMA_ALLOWED = {
    "src/qsim/kernels.h",
    "src/qsim/kernels.cpp",
    "src/qsim/kernels_scalar.cpp",
    "src/qsim/kernels_soa.cpp",
    "src/qsim/gates2.cpp",
    "src/qsim/diffusion.cpp",
    "src/qsim/batch.cpp",
}

SCAN_DIRS = ("src", "tools", "examples", "bench")
SCAN_SUFFIXES = (".h", ".cpp")


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line  # 1-based
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving line layout.

    Every replaced character becomes a space (newlines survive), so line
    numbers and column positions in the result match the original. Keeps
    preprocessor lines intact — pragmas are code, not comments.
    """
    out = []
    i = 0
    n = len(text)
    state = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append(" ")
                i += 1
            elif c == "'":
                state = "char"
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


OMP_PARALLEL_RE = re.compile(r"^\s*#\s*pragma\s+omp\s+parallel\b")
OMP_ANY_RE = re.compile(r"^\s*#\s*pragma\s+omp\b")
PREPROC_RE = re.compile(r"^\s*#")


def omp_parallel_regions(stripped_lines):
    """(pragma_idx, first_idx, last_idx) 0-based line spans of the statement
    each `#pragma omp parallel ...` applies to.

    The structured block is the next non-preprocessor statement: a braced
    block (tracked to its matching close) or a single statement up to a
    top-level `;` (semicolons inside parens — a for-header — don't count).
    """
    regions = []
    n = len(stripped_lines)
    for idx, line in enumerate(stripped_lines):
        if not OMP_PARALLEL_RE.match(line):
            continue
        brace_depth = 0
        paren_depth = 0
        saw_brace = False
        first = None
        last = None
        k = idx + 1
        while k < n and last is None:
            text = stripped_lines[k]
            if PREPROC_RE.match(text):  # e.g. the #endif of an OpenMP guard
                k += 1
                continue
            if first is None and text.strip():
                first = k
            for ch in text:
                if ch == "(":
                    paren_depth += 1
                elif ch == ")":
                    paren_depth -= 1
                elif ch == "{":
                    brace_depth += 1
                    saw_brace = True
                elif ch == "}":
                    brace_depth -= 1
                    if saw_brace and brace_depth == 0:
                        last = k
                        break
                elif (ch == ";" and not saw_brace and paren_depth == 0
                      and first is not None):
                    last = k
                    break
            k += 1
        if first is not None:
            regions.append((idx, first, last if last is not None else n - 1))
    return regions


STATIC_THREAD_LOCAL_RE = re.compile(
    r"\b(?:static\s+thread_local|thread_local\s+static)\b"
    r"[\w:<>,\s*&]*?(\w+)\s*(?:;|=|\{|\()")


def check_thread_local_omp(rel, raw, stripped):
    del raw
    lines = stripped.split("\n")
    regions = omp_parallel_regions(lines)
    if not regions:
        return []
    violations = []
    for match in STATIC_THREAD_LOCAL_RE.finditer(stripped):
        name = match.group(1)
        decl_line = stripped.count("\n", 0, match.start()) + 1
        name_re = re.compile(r"\b" + re.escape(name) + r"\b")
        for pragma_idx, first, last in regions:
            if first <= decl_line - 1 <= last:
                violations.append(Violation(
                    rel, decl_line, "thread-local-omp",
                    f"`static thread_local` variable '{name}' declared "
                    f"inside the OpenMP parallel region starting at line "
                    f"{pragma_idx + 1}"))
                continue
            for k in range(first, last + 1):
                if name_re.search(lines[k]):
                    violations.append(Violation(
                        rel, k + 1, "thread-local-omp",
                        f"`static thread_local` variable '{name}' (declared "
                        f"at line {decl_line}) referenced inside the OpenMP "
                        f"parallel region starting at line {pragma_idx + 1}; "
                        f"each worker sees its own empty instance — hoist a "
                        f"raw pointer outside the region"))
                    break  # one report per (variable, region)
    return violations


PLANE_RE = re.compile(r"(?:\.|->)\s*(re|im)\s*\(")


def check_plane_access(rel, raw, stripped):
    del raw
    if rel in PLANE_ACCESS_ALLOWED:
        return []
    violations = []
    for match in PLANE_RE.finditer(stripped):
        line = stripped.count("\n", 0, match.start()) + 1
        violations.append(Violation(
            rel, line, "raw-plane-access",
            f"raw SoA plane access `.{match.group(1)}(` outside the qsim "
            f"kernel layer; go through StateVector/kernels (the planes "
            f"carry a block-sum cache that direct access corrupts)"))
    return violations


RANDOM_RE = re.compile(r"\b(?:std\s*::\s*)?(s?rand)\s*\(|\bstd\s*::\s*(mt19937(?:_64)?)\b")


def check_raw_random(rel, raw, stripped):
    del raw
    if rel in RANDOM_ALLOWED:
        return []
    violations = []
    for match in RANDOM_RE.finditer(stripped):
        line = stripped.count("\n", 0, match.start()) + 1
        what = match.group(1) or match.group(2)
        violations.append(Violation(
            rel, line, "raw-random",
            f"'{what}' bypasses pqs::Rng (common/random.h); every "
            f"stochastic path must be reproducible from the report's seed"))
    return violations


MUTEX_RE = re.compile(r"\bstd\s*::\s*((?:recursive_|shared_|timed_)?mutex)\b")


def check_bare_mutex(rel, raw, stripped):
    del raw
    if rel in BARE_MUTEX_ALLOWED:
        return []
    violations = []
    for match in MUTEX_RE.finditer(stripped):
        line = stripped.count("\n", 0, match.start()) + 1
        violations.append(Violation(
            rel, line, "bare-mutex",
            f"bare std::{match.group(1)} is invisible to the Clang "
            f"thread-safety analysis; use pqs::Mutex + PQS_GUARDED_BY "
            f"(common/thread_annotations.h)"))
    return violations


# The ::-qualified POSIX socket entry points. The lookbehind keeps
# namespace-qualified names (pqs::net::connect_to, asio::bind) out of it.
SOCKET_RE = re.compile(
    r"(?<![\w:])::\s*(socket|accept4?|bind|listen|connect|recv|recvfrom|"
    r"send|sendto|setsockopt|getsockopt|getsockname|getaddrinfo|shutdown)"
    r"\s*\(")


def check_raw_socket(rel, raw, stripped):
    del raw
    if rel.startswith("src/net/"):
        return []
    violations = []
    for match in SOCKET_RE.finditer(stripped):
        line = stripped.count("\n", 0, match.start()) + 1
        violations.append(Violation(
            rel, line, "raw-socket",
            f"raw POSIX socket call `::{match.group(1)}(` outside src/net/; "
            f"use the net layer (src/net/socket.h) so partial writes, "
            f"EINTR, SIGPIPE, and shutdown-to-unblock stay decided once"))
    return violations


# The one file allowed to open anything for appending: the journal layer
# itself (its two ::open calls ARE the durability contract).
JOURNAL_APPEND_ALLOWED = {
    "src/service/journal.cpp",
}

APPEND_OPEN_RE = re.compile(
    r"\bO_APPEND\b|\b(?:std\s*::\s*)?ios(?:_base)?\s*::\s*app\b")


def check_journal_append(rel, raw, stripped):
    del raw
    if rel in JOURNAL_APPEND_ALLOWED:
        return []
    violations = []
    for match in APPEND_OPEN_RE.finditer(stripped):
        line = stripped.count("\n", 0, match.start()) + 1
        violations.append(Violation(
            rel, line, "journal-append",
            "append-mode file open outside src/service/journal.cpp; all "
            "journal writes must go through the Journal class (one write(2) "
            "per record, torn-tail recovery, id continuation — a second "
            "appender corrupts what a crash is supposed to preserve)"))
    return violations


# The sanctioned clock homes: the Stopwatch/steady_now wrappers and the
# obs trace clock (which carries the fake-time test hook).
RAW_CLOCK_ALLOWED = {
    "src/common/timing.h",
    "src/common/timing.cpp",
}

RAW_CLOCK_RE = re.compile(
    r"\bstd\s*::\s*chrono\s*::\s*\w+_clock\s*::\s*now\s*\(")


def check_raw_clock(rel, raw, stripped):
    del raw
    if rel in RAW_CLOCK_ALLOWED or rel.startswith("src/obs/"):
        return []
    violations = []
    for match in RAW_CLOCK_RE.finditer(stripped):
        line = stripped.count("\n", 0, match.start()) + 1
        violations.append(Violation(
            rel, line, "raw-clock",
            "direct std::chrono clock read outside common/timing and "
            "src/obs/; use pqs::Stopwatch / pqs::steady_now() (or "
            "obs::trace_now_ns() for span timestamps) so tests can fake "
            "time through one hook"))
    return violations


def check_omp_pragma(rel, raw, stripped):
    del raw
    if rel in OMP_PRAGMA_ALLOWED:
        return []
    violations = []
    for idx, line in enumerate(stripped.split("\n")):
        if OMP_ANY_RE.match(line):
            violations.append(Violation(
                rel, idx + 1, "omp-pragma",
                "`#pragma omp` in a file not on the approved OpenMP list "
                "(tools/pqs_lint.py OMP_PRAGMA_ALLOWED); new parallel "
                "regions are a reviewed decision"))
    return violations


RULES = {
    "thread-local-omp": check_thread_local_omp,
    "raw-plane-access": check_plane_access,
    "raw-random": check_raw_random,
    "bare-mutex": check_bare_mutex,
    "omp-pragma": check_omp_pragma,
    "raw-socket": check_raw_socket,
    "journal-append": check_journal_append,
    "raw-clock": check_raw_clock,
}


def lint_file(path, rel, rules=None):
    try:
        raw = Path(path).read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as err:
        return [Violation(rel, 1, "io", f"unreadable: {err}")]
    stripped = strip_comments_and_strings(raw)
    violations = []
    for check in (rules or RULES).values():
        violations.extend(check(rel, raw, stripped))
    return violations


def tree_files(root):
    for subdir in SCAN_DIRS:
        base = root / subdir
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in SCAN_SUFFIXES and path.is_file():
                yield path


def lint_tree(root):
    violations = []
    count = 0
    for path in tree_files(root):
        count += 1
        violations.extend(lint_file(path, path.relative_to(root).as_posix()))
    return violations, count


def run_self_test(root):
    """Golden fixtures: tests/lint_fixtures/<rule>.violation.cpp must trip
    its rule; <rule>.clean.cpp must not. Each fixture is evaluated against
    its NAMED rule only (a thread-local-omp fixture necessarily contains an
    OpenMP pragma, which is the omp-pragma rule's business, not its own).
    Every rule must have both fixtures — a rule without fixtures can
    silently rot."""
    fixture_dir = root / "tests" / "lint_fixtures"
    if not fixture_dir.is_dir():
        print(f"self-test: fixture dir {fixture_dir} missing", file=sys.stderr)
        return 1
    failures = []
    seen = {rule: set() for rule in RULES}
    for path in sorted(fixture_dir.iterdir()):
        if path.suffix not in SCAN_SUFFIXES:
            continue
        parts = path.name.split(".")
        if len(parts) != 3 or parts[1] not in ("violation", "clean"):
            failures.append(f"{path.name}: fixture name must be "
                            f"<rule>.violation.<ext> or <rule>.clean.<ext>")
            continue
        rule, kind = parts[0], parts[1]
        if rule not in RULES:
            failures.append(f"{path.name}: unknown rule '{rule}'")
            continue
        seen[rule].add(kind)
        violations = lint_file(path, path.name, rules={rule: RULES[rule]})
        if kind == "violation" and not violations:
            failures.append(f"{path.name}: expected a '{rule}' violation, "
                            f"got none")
        elif kind == "clean" and violations:
            failures.append(
                f"{path.name}: expected clean under rule '{rule}', got: "
                + "; ".join(str(v) for v in violations))
    for rule, kinds in seen.items():
        for kind in ("violation", "clean"):
            if kind not in kinds:
                failures.append(f"rule '{rule}' has no .{kind}. fixture")
    if failures:
        for failure in failures:
            print(f"self-test FAIL: {failure}", file=sys.stderr)
        return 1
    total = sum(len(kinds) for kinds in seen.values())
    print(f"pqs_lint self-test: {total} fixtures across "
          f"{len(RULES)} rules — all behave as pinned")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="Project-invariant linter (see module docstring).")
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repository root (default: this script's repo)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the rules against the golden fixtures")
    parser.add_argument("files", nargs="*", type=Path,
                        help="specific files to lint (default: whole tree)")
    args = parser.parse_args(argv)

    root = args.root.resolve()
    if args.self_test:
        return run_self_test(root)

    if args.files:
        violations = []
        for path in args.files:
            resolved = path.resolve()
            try:
                rel = resolved.relative_to(root).as_posix()
            except ValueError:
                rel = path.as_posix()
            violations.extend(lint_file(resolved, rel))
        count = len(args.files)
    else:
        violations, count = lint_tree(root)

    for violation in violations:
        print(violation)
    if violations:
        print(f"pqs_lint: {len(violations)} violation(s) in {count} files",
              file=sys.stderr)
        return 1
    print(f"pqs_lint: {count} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

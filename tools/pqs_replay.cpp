// pqs_replay — deterministic re-execution of captured sessions and
// journals, with byte-level report diffing.
//
// The serve stack is byte-deterministic at fixed seeds (canonical JSON,
// submission-ordered results, timing zeroed), which makes any captured
// traffic a regression test for ALL algorithms at once: re-execute it and
// byte-diff what comes out against what was recorded. This tool does that
// for both capture formats:
//
//   * session mode (--input holds request lines, {"op":...}): replays the
//     lines through a real Service + net::Session — the exact production
//     path — printing the event stream to stdout. With --expected FILE the
//     streams are compared: the synchronous ack stream and the
//     submission-ordered result stream are each byte-diffed (their
//     interleaving is scheduling noise and deliberately not compared).
//   * journal mode (--input holds journal lines, {"journal":...}): every
//     accepted record is re-executed and its fresh report byte-diffed
//     against the report embedded in the recorded completion marker
//     (timing fields zeroed on both sides, exactly like the wire layer).
//
// --check exits nonzero on any divergence — the ctest entries pin the
// recorded fixtures this way. --speed N paces journal replay at N× the
// recorded inter-arrival gaps (0 = as fast as possible) for saturation
// probing; --json merges a `replay` section (throughput, divergences) into
// BENCH_qsim.json.
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/serialize.h"
#include "common/check.h"
#include "common/cli.h"
#include "common/json.h"
#include "common/timing.h"
#include "net/session.h"
#include "service/flags.h"
#include "service/journal.h"
#include "service/service.h"

namespace {

using namespace pqs;

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  PQS_CHECK_MSG(in.good(), "pqs_replay: cannot read \"" + path + "\"");
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    lines.push_back(line);
  }
  return lines;
}

void zero_timing(SearchReport& report) {
  // Same normalization the wire layer applies without --timing: the answer
  // fields are deterministic at fixed seed, these describe how the run
  // happened to execute.
  report.queue_ns = 0;
  report.plan_ns = 0;
  report.exec_ns = 0;
  report.plan_cache_hit = false;
}

/// Error events carry CheckFailure messages, which lead with the failed
/// expression and the COMPILE-TIME file:line ("PQS_CHECK failed: (...) at
/// src/...:58 — n_blocks must divide n_items") — bytes that change with
/// every checkout path and code motion. Strip down to the human message so
/// recorded fixtures survive both; all other events pass through verbatim.
std::string normalize_event_line(const std::string& line, bool& is_result) {
  is_result = false;
  try {
    Json event = Json::parse(line);
    const std::string& kind = event.at("event").as_string();
    is_result = kind == "result";
    if (kind != "error" && kind != "overloaded") {
      return line;
    }
    const char* field = kind == "error" ? "message" : "reason";
    if (!event.has(field)) {
      return line;
    }
    const std::string& message = event.at(field).as_string();
    const std::string marker = " \xE2\x80\x94 ";  // " — " (em dash)
    const std::size_t dash = message.rfind(marker);
    if (message.rfind("PQS_CHECK failed:", 0) == 0 &&
        dash != std::string::npos) {
      event[field] = message.substr(dash + marker.size());
      return event.dump();
    }
    return line;
  } catch (const std::exception&) {
    return line;  // not an event object; compare the raw bytes
  }
}

/// Split an event stream into the two independently-deterministic
/// subsequences: synchronous acks (everything but `result`) and
/// submission-ordered results. Their interleaving is scheduling noise.
std::pair<std::vector<std::string>, std::vector<std::string>> partition(
    const std::vector<std::string>& lines) {
  std::pair<std::vector<std::string>, std::vector<std::string>> streams;
  for (const std::string& line : lines) {
    if (line.empty()) {
      continue;
    }
    bool is_result = false;
    std::string normalized = normalize_event_line(line, is_result);
    (is_result ? streams.second : streams.first)
        .push_back(std::move(normalized));
  }
  return streams;
}

void diff_stream(const char* name, const std::vector<std::string>& got,
                 const std::vector<std::string>& want,
                 std::vector<std::string>& divergences) {
  const std::size_t n = std::max(got.size(), want.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::string* g = i < got.size() ? &got[i] : nullptr;
    const std::string* w = i < want.size() ? &want[i] : nullptr;
    if (g && w && *g == *w) {
      continue;
    }
    divergences.push_back(std::string(name) + " line " + std::to_string(i + 1) +
                          ":\n  expected: " + (w ? *w : "<missing>") +
                          "\n  got:      " + (g ? *g : "<missing>"));
  }
}

struct Summary {
  std::string mode;
  std::size_t records = 0;    ///< request lines / accepted records replayed
  std::size_t executed = 0;   ///< jobs the service actually settled
  std::size_t compared = 0;   ///< recorded outcomes diffed against fresh ones
  std::size_t skipped = 0;    ///< records that no longer submit
  std::vector<std::string> divergences;
  double wall_seconds = 0.0;
};

Summary run_session(const std::vector<std::string>& lines,
                    const ServiceOptions& options,
                    const std::string& expected_path) {
  Summary summary;
  summary.mode = "session";
  std::vector<std::string> captured;
  Stopwatch wall;
  {
    Service service(options);
    net::Session session(
        service,
        [&captured](const std::string& line) {
          captured.push_back(line);
          std::cout << line << "\n";
          return static_cast<bool>(std::cout);
        },
        net::SessionOptions{});
    for (const std::string& line : lines) {
      if (!line.empty()) {
        ++summary.records;
      }
      session.handle_line(line);
    }
    session.drain();
  }
  summary.wall_seconds = wall.seconds();
  summary.executed = captured.size();
  if (!expected_path.empty()) {
    const auto [got_acks, got_results] = partition(captured);
    const auto [want_acks, want_results] =
        partition(read_lines(expected_path));
    summary.compared = want_acks.size() + want_results.size();
    diff_stream("ack stream", got_acks, want_acks, summary.divergences);
    diff_stream("result stream", got_results, want_results,
                summary.divergences);
  }
  return summary;
}

Summary run_journal(const std::string& input, const ServiceOptions& options,
                    std::uint64_t speed) {
  Summary summary;
  summary.mode = "journal";
  const RecoveredJournal recovered = Journal::recover_file(input);
  for (const std::string& warning : recovered.warnings) {
    std::cerr << "pqs_replay: " << input << ": " << warning << "\n";
  }
  // Recorded outcome per id; a journal rotated through recovery can hold
  // the same id twice — the later marker is the one that settled last.
  std::map<std::uint64_t, const CompletedJournalRecord*> recorded;
  for (const CompletedJournalRecord& marker : recovered.completions) {
    recorded[marker.id] = &marker;
  }

  Service service(options);
  Stopwatch wall;
  std::vector<std::pair<const JournalRecord*, JobHandle>> jobs;
  std::uint64_t prev_t_ns = 0;
  bool first = true;
  for (const JournalRecord& record : recovered.accepted_records) {
    ++summary.records;
    if (speed > 0 && !first && record.t_ns > prev_t_ns) {
      std::this_thread::sleep_for(
          std::chrono::nanoseconds((record.t_ns - prev_t_ns) / speed));
    }
    prev_t_ns = record.t_ns;
    first = false;
    while (true) {
      try {
        jobs.emplace_back(&record,
                          service.submit(record.spec, record.priority));
        break;
      } catch (const OverloadedError&) {
        // Back-pressure, not a drop: wait out the oldest unfinished replay
        // and retry (mirrors service::replay_pending).
        bool waited = false;
        for (auto& [rec, handle] : jobs) {
          if (!handle.finished()) {
            handle.wait();
            waited = true;
            break;
          }
        }
        PQS_CHECK_MSG(waited, "pqs_replay: queue full with nothing running");
      } catch (const CheckFailure& e) {
        std::cerr << "pqs_replay: record " << record.id
                  << " no longer submits: " << e.what() << "\n";
        ++summary.skipped;
        break;
      }
    }
  }

  for (auto& [record, handle] : jobs) {
    const JobStatus status = handle.wait();
    ++summary.executed;
    const auto it = recorded.find(record->id);
    if (it == recorded.end()) {
      continue;  // crashed before completing: re-executed, nothing to diff
    }
    const CompletedJournalRecord& marker = *it->second;
    ++summary.compared;
    if (marker.status != status) {
      summary.divergences.push_back(
          "record " + std::to_string(record->id) + ": recorded status \"" +
          std::string(to_string(marker.status)) + "\", replay settled \"" +
          std::string(to_string(status)) + "\"");
      continue;
    }
    if (marker.status != JobStatus::kDone || !marker.has_report) {
      continue;
    }
    SearchReport want = marker.report;
    SearchReport got = handle.report();
    zero_timing(want);
    zero_timing(got);
    const std::string want_line = api::to_json(want).dump();
    const std::string got_line = api::to_json(got).dump();
    if (want_line != got_line) {
      summary.divergences.push_back("record " + std::to_string(record->id) +
                                    " report:\n  recorded: " + want_line +
                                    "\n  replayed: " + got_line);
    }
  }
  summary.wall_seconds = wall.seconds();
  return summary;
}

/// Merge a `replay` section into the bench JSON (preserving whatever other
/// sections are already there; the re-dump is canonical one-line JSON).
void write_bench_json(const std::string& path, const Summary& summary,
                      const ServiceOptions& options, std::uint64_t speed) {
  Json root = Json::make_object();
  {
    std::ifstream in(path, std::ios::binary);
    if (in.good()) {
      std::ostringstream text;
      text << in.rdbuf();
      try {
        Json existing = Json::parse(text.str());
        if (existing.is_object()) {
          root = std::move(existing);
        }
      } catch (const std::exception&) {
        // Not JSON (or torn): start the file over with just our section.
      }
    }
  }
  Json section = Json::make_object();
  section["mode"] = summary.mode;
  section["records"] = std::uint64_t{summary.records};
  section["executed"] = std::uint64_t{summary.executed};
  section["compared"] = std::uint64_t{summary.compared};
  section["divergences"] = std::uint64_t{summary.divergences.size()};
  section["skipped"] = std::uint64_t{summary.skipped};
  section["speed"] = speed;
  section["threads"] = std::uint64_t{options.threads};
  section["wall_seconds"] = summary.wall_seconds;
  section["jobs_per_second"] =
      summary.wall_seconds > 0.0
          ? static_cast<double>(summary.executed) / summary.wall_seconds
          : 0.0;
  root["replay"] = std::move(section);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << root.dump() << "\n";
  PQS_CHECK_MSG(static_cast<bool>(out),
                "pqs_replay: cannot write \"" + path + "\"");
}

int run(int argc, char** argv) {
  Cli cli(argc, argv);
  const ServiceOptions options = service::parse_service_flags(cli);
  const std::string input = cli.get_string(
      "input", "", "captured file to replay: journal lines or session "
                   "request lines (auto-detected)");
  const std::string expected = cli.get_string(
      "expected", "",
      "recorded event stream to diff a session replay against (journal "
      "replays diff against the reports embedded in the journal itself)");
  const bool check = cli.get_bool(
      "check", false, "exit nonzero on any divergence from the recording");
  const auto speed = cli.get_int(
      "speed", 0,
      "journal pacing: replay at N x the recorded inter-arrival gaps "
      "(0 = as fast as possible; session lines carry no timestamps and "
      "always replay flat-out)");
  const std::string json_path = cli.get_string(
      "json", "", "merge a `replay` throughput section into this bench "
                  "JSON (e.g. BENCH_qsim.json)");
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }
  cli.finish();
  PQS_CHECK_MSG(!input.empty(), "pqs_replay: --input is required");
  PQS_CHECK_MSG(speed >= 0, "--speed must be >= 0");

  // Auto-detect the capture format from the first parseable line.
  const std::vector<std::string> lines = read_lines(input);
  bool journal_mode = false;
  for (const std::string& line : lines) {
    if (line.empty()) {
      continue;
    }
    try {
      const Json first = Json::parse(line);
      journal_mode = first.has("journal");
      if (journal_mode || first.has("op")) {
        break;
      }
      throw CheckFailure("pqs_replay: \"" + input +
                         "\" is neither a journal nor a session capture "
                         "(first record has no \"journal\" or \"op\" key)");
    } catch (const CheckFailure&) {
      throw;
    } catch (const std::exception&) {
      continue;  // torn/foreign line; let the mode decide how to report it
    }
  }

  const Summary summary =
      journal_mode
          ? run_journal(input, options, static_cast<std::uint64_t>(speed))
          : run_session(lines, options, expected);

  for (std::size_t i = 0; i < summary.divergences.size(); ++i) {
    if (i == 10) {
      std::cerr << "pqs_replay: ... and " << (summary.divergences.size() - 10)
                << " more divergence(s)\n";
      break;
    }
    std::cerr << "pqs_replay: DIVERGENCE " << summary.divergences[i] << "\n";
  }
  std::cerr << "pqs_replay: " << summary.mode << " mode: " << summary.records
            << " record(s), " << summary.executed << " executed, "
            << summary.compared << " compared, "
            << summary.divergences.size() << " divergence(s), "
            << summary.skipped << " skipped, "
            << summary.wall_seconds << " s\n";
  if (!json_path.empty()) {
    write_bench_json(json_path, summary, options,
                     static_cast<std::uint64_t>(speed));
  }
  return check && !summary.divergences.empty() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "pqs_replay: " << e.what() << "\n";
    return 2;
  }
}

// pqs_loadgen — replay client and load generator for the JSONL-over-TCP
// protocol (pqs_serve --listen, or pqs_router fronting a worker fleet).
//
// Two modes:
//
//   * fixture replay (--fixture FILE): send every request line from the
//     file down one connection, read events until every request's ack and
//     every accepted submit's result have arrived, and print ONLY the
//     result event lines to stdout. That stream is the byte-determinism
//     probe: at fixed seeds it must be identical whether the endpoint is
//     one direct worker or a router sharding across N — CI diffs it.
//
//   * bench (--clients C --requests N): C client threads, each with its own
//     connection, each keeping up to --inflight-per-conn submits unanswered
//     (windowed pipelining). Submits draw from --unique-keys distinct specs
//     so the fleet's shard-local result caches can be exercised above and
//     below their aggregate capacity. Prints one JSON summary line —
//     throughput, rejection counts, client-side latency percentiles from
//     common/histogram.h — which scripts/bench_net_serve.sh collects into
//     BENCH_qsim.json's net_serve section.
#include <chrono>
#include <cstdint>
#include <deque>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/cli.h"
#include "common/histogram.h"
#include "common/json.h"
#include "common/random.h"
#include "common/timing.h"
#include "net/socket.h"
#include "service/flags.h"

namespace {

using namespace pqs;

int run_fixture(const net::Addr& endpoint, const std::string& fixture_path) {
  std::ifstream fixture(fixture_path);
  PQS_CHECK_MSG(fixture.good(), "cannot open fixture " + fixture_path);
  net::Socket socket =
      net::connect_with_retry(endpoint, std::chrono::milliseconds(5000));

  std::size_t requests = 0;
  std::string line;
  while (std::getline(fixture, line)) {
    if (line.empty()) {
      continue;
    }
    PQS_CHECK_MSG(socket.write_all(line + "\n"),
                  "server closed the connection mid-replay");
    ++requests;
  }

  // Every request line is answered by exactly one synchronous ack; every
  // `accepted` ack promises exactly one later `result`. Those two protocol
  // invariants make "done" a pure count, no sleeps or timeouts.
  std::size_t acks = 0;
  std::size_t accepted = 0;
  std::size_t results = 0;
  net::LineReader reader(socket);
  while ((acks < requests || results < accepted) && reader.next_line(line)) {
    const Json event = Json::parse(line);
    const std::string& kind = event.at("event").as_string();
    if (kind == "result") {
      std::cout << line << "\n";
      ++results;
    } else {
      if (kind == "accepted") {
        ++accepted;
      }
      ++acks;
    }
  }
  std::cout << std::flush;
  PQS_CHECK_MSG(acks == requests && results == accepted,
                "connection closed early: " + std::to_string(acks) + "/" +
                    std::to_string(requests) + " acks, " +
                    std::to_string(results) + "/" + std::to_string(accepted) +
                    " results");
  std::cerr << "pqs_loadgen: " << requests << " requests, " << accepted
            << " accepted, " << results << " results\n";
  return 0;
}

struct BenchConfig {
  net::Addr endpoint;
  std::size_t clients = 64;
  std::size_t requests = 100000;  ///< total across all clients
  std::size_t unique_keys = 1024;
  std::size_t window = 256;  ///< unanswered submits per connection
  std::uint64_t n_items = 1024;
  std::uint64_t shots = 1;
  std::uint64_t seed = 1;
};

struct ClientTally {
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  std::size_t errors = 0;
  std::size_t results = 0;
  LogHistogram latency_ns;
};

/// One bench connection: windowed pipelining, FIFO ack pairing, per-request
/// latency measured submit-to-result on the client side.
void run_client(const BenchConfig& config, std::size_t client_index,
                std::size_t n_requests, ClientTally& tally) {
  net::Socket socket = net::connect_with_retry(config.endpoint,
                                               std::chrono::milliseconds(5000));
  net::LineReader reader(socket);
  Rng rng(config.seed * 1000003 + client_index);
  Stopwatch clock;
  std::unordered_map<std::string, std::uint64_t> send_ns;
  std::deque<std::string> awaiting_ack;  // ids in send order (FIFO acks)

  std::size_t sent = 0;
  auto settled = [&] {
    return tally.results + tally.rejected + tally.errors;
  };
  std::string line;
  while (settled() < n_requests) {
    if (sent < n_requests && sent - settled() < config.window) {
      const std::string id =
          "c" + std::to_string(client_index) + "-" + std::to_string(sent);
      // unique_keys distinct (marked, seed) pairs: equal key -> equal
      // canonical key -> same shard, same coalescing bucket, same LRU slot.
      const std::uint64_t key = rng.uniform_below(config.unique_keys);
      Json spec = Json::make_object();
      spec["algorithm"] = std::string("grover");
      spec["n_items"] = config.n_items;
      spec["n_blocks"] = std::uint64_t{1};
      Json marked = Json::make_array();
      marked.push_back(key % config.n_items);
      spec["marked"] = std::move(marked);
      spec["seed"] = config.seed + key;
      spec["shots"] = config.shots;
      Json request = Json::make_object();
      request["op"] = std::string("submit");
      request["id"] = id;
      request["spec"] = std::move(spec);
      if (!socket.write_all(request.dump() + "\n")) {
        break;
      }
      send_ns.emplace(id, clock.nanos());
      awaiting_ack.push_back(id);
      ++sent;
      continue;
    }
    if (!reader.next_line(line)) {
      break;
    }
    const Json event = Json::parse(line);
    const std::string& kind = event.at("event").as_string();
    if (kind == "result") {
      const std::string& id = event.at("id").as_string();
      const auto it = send_ns.find(id);
      PQS_CHECK_MSG(it != send_ns.end(), "result for unknown id " + id);
      tally.latency_ns.record(clock.nanos() - it->second);
      send_ns.erase(it);
      ++tally.results;
    } else {
      PQS_CHECK_MSG(!awaiting_ack.empty(), "unpaired ack: " + line);
      const std::string acked = std::move(awaiting_ack.front());
      awaiting_ack.pop_front();
      if (kind == "accepted") {
        ++tally.accepted;
      } else if (kind == "overloaded") {
        send_ns.erase(acked);
        ++tally.rejected;
      } else {
        send_ns.erase(acked);
        ++tally.errors;
      }
    }
  }
  PQS_CHECK_MSG(settled() == n_requests,
                "client " + std::to_string(client_index) +
                    " lost its connection after " + std::to_string(settled()) +
                    "/" + std::to_string(n_requests) + " requests");
}

int run_bench(const BenchConfig& config) {
  std::vector<ClientTally> tallies(config.clients);
  std::vector<std::thread> threads;
  threads.reserve(config.clients);
  Stopwatch clock;
  for (std::size_t c = 0; c < config.clients; ++c) {
    // Spread the remainder so the totals add up to exactly `requests`.
    const std::size_t share = config.requests / config.clients +
                              (c < config.requests % config.clients ? 1 : 0);
    threads.emplace_back(
        [&config, c, share, &tallies] { run_client(config, c, share, tallies[c]); });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  const double elapsed = clock.seconds();

  ClientTally total;
  for (const ClientTally& tally : tallies) {
    total.accepted += tally.accepted;
    total.rejected += tally.rejected;
    total.errors += tally.errors;
    total.results += tally.results;
    total.latency_ns.merge(tally.latency_ns);
  }
  Json summary = Json::make_object();
  summary["clients"] = std::uint64_t{config.clients};
  summary["requests"] = std::uint64_t{config.requests};
  summary["unique_keys"] = std::uint64_t{config.unique_keys};
  summary["window"] = std::uint64_t{config.window};
  summary["n_items"] = config.n_items;
  summary["accepted"] = std::uint64_t{total.accepted};
  summary["rejected"] = std::uint64_t{total.rejected};
  summary["errors"] = std::uint64_t{total.errors};
  summary["results"] = std::uint64_t{total.results};
  summary["elapsed_seconds"] = elapsed;
  summary["throughput_rps"] =
      elapsed > 0 ? static_cast<double>(total.results) / elapsed : 0.0;
  Json latency = Json::make_object();
  latency["p50"] = total.latency_ns.percentile(0.50) / 1e6;
  latency["p90"] = total.latency_ns.percentile(0.90) / 1e6;
  latency["p99"] = total.latency_ns.percentile(0.99) / 1e6;
  latency["max"] = static_cast<double>(total.latency_ns.max()) / 1e6;
  summary["latency_ms"] = std::move(latency);
  std::cout << summary.dump() << "\n" << std::flush;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  // The shared connection-shape knobs: --inflight-per-conn is the
  // pipelining window here — the client-side mirror of the server cap.
  const service::NetOptions net_options = service::parse_net_flags(cli);
  const std::string connect = cli.get_string(
      "connect", "", "endpoint to drive, host:port (pqs_serve or pqs_router)");
  const std::string fixture = cli.get_string(
      "fixture", "",
      "JSONL request file to replay verbatim; prints result lines to stdout");
  BenchConfig config;
  config.clients = static_cast<std::size_t>(
      cli.get_int("clients", 64, "bench: concurrent client connections"));
  config.requests = static_cast<std::size_t>(cli.get_int(
      "requests", 100000, "bench: total submits across all clients"));
  config.unique_keys = static_cast<std::size_t>(cli.get_int(
      "unique-keys", 1024,
      "bench: distinct canonical keys the submits draw from (cache working "
      "set)"));
  config.n_items = static_cast<std::uint64_t>(
      cli.get_int("n-items", 1024, "bench: search-space size per submit"));
  config.shots = static_cast<std::uint64_t>(
      cli.get_int("shots", 1, "bench: measurement shots per submit"));
  config.seed = static_cast<std::uint64_t>(
      cli.get_int("seed", 1, "bench: base RNG seed (keys and spec seeds)"));
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }
  cli.finish();
  PQS_CHECK_MSG(!connect.empty(), "pqs_loadgen needs --connect host:port");
  config.endpoint = net::parse_hostport(connect);
  config.window = net_options.inflight_per_conn == 0
                      ? 256
                      : net_options.inflight_per_conn;
  PQS_CHECK_MSG(config.clients >= 1, "--clients must be >= 1");
  PQS_CHECK_MSG(config.unique_keys >= 1, "--unique-keys must be >= 1");

  if (!fixture.empty()) {
    return run_fixture(config.endpoint, fixture);
  }
  return run_bench(config);
}

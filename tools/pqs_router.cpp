// pqs_router — canonical-key sharding across a fleet of pqs_serve workers.
//
//   clients ──TCP──▶ pqs_router ──TCP──▶ pqs_serve --listen (worker 0)
//                              ├──TCP──▶ pqs_serve --listen (worker 1)
//                              └──TCP──▶ ...
//
// Every submit is hashed on api::canonical_key(spec) and forwarded to the
// owning worker (net/shard.h), so requests that would coalesce — and result
// LRU entries — stay shard-local: the fleet's aggregate cache capacity
// grows linearly with worker count, with no cross-node cache protocol.
//
// The router keeps the session protocol contract intact from the client's
// point of view:
//
//   * each request is answered by exactly one synchronous ack (the router
//     forwards the owning worker's ack verbatim, or answers locally for
//     requests it rejects itself: duplicate ids, its own inflight cap,
//     stats, malformed lines);
//   * result events are released in SUBMISSION order across workers — the
//     router holds a worker's result line until every earlier submit's
//     result is out, so at fixed seeds the client-visible result stream is
//     byte-identical to a single direct worker (CI diffs exactly that);
//   * a dropped client tears down its per-client worker connections, so the
//     workers' sessions abort and cancel exactly that client's jobs;
//   * the router is the fleet's telemetry scope: a `metrics` op fans out to
//     every worker and answers ONE merged registry snapshot — counters sum
//     exactly, histograms merge bucket-wise (obs::merge_snapshots) — and a
//     `trace` op routes to the worker that owns the job's timeline.
//
// Per client connection the router dials every worker once (per-client
// links, not shared multiplexing) — that is what makes the abort semantics
// and ack pairing trivial: on one link, acks answer forwarded requests in
// FIFO order, depth at most one because the client loop waits for each ack
// before reading its next request line.
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdint>
#include <deque>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/serialize.h"
#include "common/check.h"
#include "common/cli.h"
#include "common/json.h"
#include "common/thread_annotations.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "net/shard.h"
#include "net/socket.h"
#include "service/flags.h"

namespace {

using namespace pqs;

Json error_event(const std::string& message) {
  Json event = Json::make_object();
  event["event"] = "error";
  event["message"] = message;
  return event;
}

/// One client connection's view of the fleet: a link per worker, submission
/// ordering, and the ack pairing state. Single mutex; client writes happen
/// under it so result release order is exactly flush order.
class ClientRoute {
 public:
  ClientRoute(net::Socket& client, const std::vector<net::Addr>& workers,
              std::size_t inflight_limit)
      : client_(client), inflight_limit_(inflight_limit) {
    links_.reserve(workers.size());
    for (const net::Addr& addr : workers) {
      links_.push_back(std::make_unique<Link>());
      links_.back()->socket =
          net::connect_with_retry(addr, std::chrono::milliseconds(2000));
    }
    for (std::size_t w = 0; w < links_.size(); ++w) {
      links_[w]->reader = std::thread([this, w] { reader_loop(w); });
    }
  }

  ~ClientRoute() {
    for (auto& link : links_) {
      link->socket.shutdown_both();  // workers see EOF -> abort our jobs
    }
    for (auto& link : links_) {
      if (link->reader.joinable()) {
        link->reader.join();
      }
    }
  }

  /// The client loop: one request line in, one ack out, until EOF.
  void run() {
    net::LineReader reader(client_);
    std::string line;
    while (reader.next_line(line)) {
      handle_line(line);
    }
  }

 private:
  struct Link {
    net::Socket socket;
    std::thread reader;
    /// Non-result worker events, FIFO — acks for our forwarded requests.
    std::deque<std::string> acks;
    bool dead = false;
  };

  void handle_line(const std::string& line) {
    if (line.empty()) {
      return;
    }
    try {
      const Json request = Json::parse(line);
      const std::string& op = request.at("op").as_string();
      // Mirrors Session::handle_line: stats is connection-level, its id is
      // optional and echoed only when given; submit/cancel must name a job.
      const std::string id =
          request.has("id") ? request.at("id").as_string() : std::string();
      if (op == "submit" || op == "cancel") {
        PQS_CHECK_MSG(!id.empty(),
                      "\"" + op + "\" requires a non-empty \"id\"");
      }
      if (op == "submit") {
        handle_submit(line, request, id);
      } else if (op == "cancel") {
        handle_cancel(line, id);
      } else if (op == "stats") {
        Json event = Json::make_object();
        event["event"] = "stats";
        if (!id.empty()) {
          event["id"] = id;
        }
        event["role"] = "router";
        event["workers"] = std::uint64_t{links_.size()};
        LockGuard lock(mutex_);
        write_locked(event.dump());
      } else if (op == "metrics") {
        handle_metrics(id);
      } else if (op == "trace") {
        handle_trace(line, id);
      } else {
        LockGuard lock(mutex_);
        write_locked(error_event("unknown op \"" + op +
                                 "\" (expected submit | cancel | stats | "
                                 "metrics | trace)")
                         .dump());
      }
    } catch (const std::exception& e) {
      LockGuard lock(mutex_);
      write_locked(error_event(e.what()).dump());
    }
  }

  void handle_submit(const std::string& line, const Json& request,
                     const std::string& id) {
    // Hash BEFORE touching shared state: a malformed spec answers with a
    // local error event, same as a worker would.
    const std::string key =
        api::canonical_key(api::spec_from_json(request.at("spec")));
    const std::size_t w = net::shard_for_key(key, links_.size());
    UniqueLock lock(mutex_);
    if (owner_.contains(id)) {
      write_locked(
          error_event("duplicate in-flight job id \"" + id + "\"").dump());
      return;
    }
    if (inflight_limit_ != 0 && owner_.size() >= inflight_limit_) {
      Json event = Json::make_object();
      event["event"] = "overloaded";
      event["id"] = id;
      event["reason"] = "inflight cap (" + std::to_string(inflight_limit_) +
                        " unanswered submits on this connection)";
      write_locked(event.dump());
      return;
    }
    if (links_[w]->dead) {
      write_locked(worker_down_event(w).dump());
      return;
    }
    owner_[id] = w;
    // Remembered PAST completion (owner_ forgets at flush): a `trace` op
    // arrives after the result, and must still find the owning worker.
    remember_trace_owner_locked(id, w);
    order_.push_back(id);
    forward_and_ack(lock, w, line, id);
  }

  /// Fleet scope: forward `{"op":"metrics"}` to EVERY live worker, wait
  /// for each one's synchronous ack (the client loop is serial, so link
  /// FIFO depth stays <= 1), and answer one merged snapshot. A dead or
  /// garbled worker contributes nothing; `workers_answering` says how many
  /// did.
  void handle_metrics(const std::string& id) {
    Json probe = Json::make_object();
    probe["op"] = "metrics";
    const std::string probe_line = probe.dump();
    std::vector<Json> snapshots;
    UniqueLock lock(mutex_);
    for (std::size_t w = 0; w < links_.size(); ++w) {
      std::string ack;
      if (!forward_and_collect(lock, w, probe_line, ack)) {
        continue;
      }
      try {
        const Json event = Json::parse(ack);
        if (event.at("event").as_string() == "metrics") {
          snapshots.push_back(event.at("metrics"));
        }
      } catch (const std::exception&) {
        // A worker answering garbage merges as silence.
      }
    }
    Json event = Json::make_object();
    event["event"] = "metrics";
    if (!id.empty()) {
      event["id"] = id;
    }
    event["role"] = "router";
    event["workers"] = std::uint64_t{links_.size()};
    event["workers_answering"] = std::uint64_t{snapshots.size()};
    event["metrics"] = obs::merge_snapshots(snapshots);
    write_locked(event.dump());
  }

  /// Route a `trace` op to the worker that ran the job and relay its
  /// answer (the trace event, or the worker's own not-found error).
  void handle_trace(const std::string& line, const std::string& id) {
    UniqueLock lock(mutex_);
    const auto it = trace_owner_.find(id);
    if (it == trace_owner_.end()) {
      write_locked(error_event("no trace for job id \"" + id +
                               "\" (unknown, or forgotten — the router "
                               "remembers the last " +
                               std::to_string(kTraceOwnerCapacity) +
                               " submitted ids)")
                       .dump());
      return;
    }
    const std::size_t w = it->second;
    if (links_[w]->dead) {
      write_locked(worker_down_event(w).dump());
      return;
    }
    std::string ack;
    if (!forward_and_collect(lock, w, line, ack)) {
      write_locked(worker_down_event(w).dump());
      return;
    }
    write_locked(ack);
  }

  void handle_cancel(const std::string& line, const std::string& id) {
    UniqueLock lock(mutex_);
    const auto it = owner_.find(id);
    if (it == owner_.end()) {
      write_locked(
          error_event("unknown or already-finished job id \"" + id + "\"")
              .dump());
      return;
    }
    const std::size_t w = it->second;
    if (links_[w]->dead) {
      write_locked(worker_down_event(w).dump());
      return;
    }
    forward_and_ack(lock, w, line, "");
  }

  /// Forward `line` to worker `w`, wait for its one synchronous ack, relay
  /// it to the client. `submit_id` non-empty marks this as a submit whose
  /// rejection (overloaded / error ack) must un-reserve the id.
  void forward_and_ack(UniqueLock& lock, std::size_t w, const std::string& line,
                       const std::string& submit_id) {
    Link& link = *links_[w];
    lock.unlock();  // the blocking worker write happens unlocked
    const bool sent = link.socket.write_all(line + "\n");
    lock.lock();
    if (!sent) {
      // reader_loop will mark the link dead; answer this request now.
      drop_submit_locked(submit_id);
      write_locked(worker_down_event(w).dump());
      return;
    }
    while (link.acks.empty() && !link.dead) {
      cv_.wait(lock);
    }
    if (link.acks.empty()) {
      drop_submit_locked(submit_id);
      write_locked(worker_down_event(w).dump());
      return;
    }
    const std::string ack = std::move(link.acks.front());
    link.acks.pop_front();
    bool promised = false;
    if (!submit_id.empty()) {
      // Only an `accepted` ack promises a future result event.
      const Json event = Json::parse(ack);
      promised = event.at("event").as_string() == "accepted";
      if (!promised) {
        drop_submit_locked(submit_id);
      }
    }
    write_locked(ack);
    if (promised) {
      // Its result may already be parked (a cache-served submit finishes
      // before this thread wakes): only now that the ack is out may it —
      // and anything queued behind it — be released.
      acked_.insert(submit_id);
      flush_locked();
    }
  }

  /// Forward one connection-level request to worker `w` and collect its
  /// synchronous ack. Returns false (no ack) when the link is or goes
  /// dead. Same unlock-around-the-blocking-write discipline as
  /// forward_and_ack, without the submit bookkeeping.
  bool forward_and_collect(UniqueLock& lock, std::size_t w,
                           const std::string& line, std::string& ack) {
    Link& link = *links_[w];
    if (link.dead) {
      return false;
    }
    lock.unlock();
    const bool sent = link.socket.write_all(line + "\n");
    lock.lock();
    if (!sent) {
      return false;
    }
    while (link.acks.empty() && !link.dead) {
      cv_.wait(lock);
    }
    if (link.acks.empty()) {
      return false;
    }
    ack = std::move(link.acks.front());
    link.acks.pop_front();
    return true;
  }

  void remember_trace_owner_locked(const std::string& id, std::size_t w)
      PQS_REQUIRES(mutex_) {
    if (const auto it = trace_owner_.find(id); it != trace_owner_.end()) {
      it->second = w;  // id reuse: replace, keep FIFO position
      return;
    }
    trace_owner_.emplace(id, w);
    trace_owner_order_.push_back(id);
    while (trace_owner_order_.size() > kTraceOwnerCapacity) {
      trace_owner_.erase(trace_owner_order_.front());
      trace_owner_order_.pop_front();
    }
  }

  /// Un-reserve a submit that will never produce a result.
  void drop_submit_locked(const std::string& submit_id) PQS_REQUIRES(mutex_) {
    if (submit_id.empty()) {
      return;
    }
    owner_.erase(submit_id);
    dropped_.insert(submit_id);
    flush_locked();
  }

  Json worker_down_event(std::size_t w) const {
    return error_event("worker " + std::to_string(w) + " disconnected");
  }

  void reader_loop(std::size_t w) {
    Link& link = *links_[w];
    net::LineReader reader(link.socket);
    std::string line;
    while (reader.next_line(line)) {
      std::string id;
      bool is_result = false;
      try {
        const Json event = Json::parse(line);
        is_result = event.at("event").as_string() == "result";
        if (is_result) {
          id = event.at("id").as_string();
        }
      } catch (const std::exception&) {
        // A worker speaking garbage is as gone as a dead one.
        break;
      }
      LockGuard lock(mutex_);
      if (is_result) {
        ready_[id] = line;
        flush_locked();
      } else {
        link.acks.push_back(line);
        cv_.notify_all();
      }
    }
    LockGuard lock(mutex_);
    link.dead = true;
    // Every unanswered job this worker owned will never resolve; skip them
    // so later submits' results are not held hostage.
    for (const auto& [id, owner] : owner_) {
      if (owner == w && !ready_.contains(id)) {
        dropped_.insert(id);
      }
    }
    flush_locked();
    cv_.notify_all();
  }

  /// Release result lines in submission order: the front of order_ goes out
  /// the moment its line is ready; dropped ids are skipped.
  void flush_locked() PQS_REQUIRES(mutex_) {
    while (!order_.empty()) {
      const std::string& id = order_.front();
      if (dropped_.contains(id)) {
        dropped_.erase(id);
        acked_.erase(id);  // accepted-then-worker-died leaves a stale entry
        owner_.erase(id);
        order_.pop_front();
        continue;
      }
      const auto it = ready_.find(id);
      if (it == ready_.end() || !acked_.contains(id)) {
        // Not finished yet, or its accepted ack has not been relayed: a
        // result must never overtake its own ack on the client's wire.
        return;
      }
      write_locked(it->second);
      ready_.erase(it);
      acked_.erase(id);
      owner_.erase(id);
      order_.pop_front();
    }
  }

  void write_locked(const std::string& line) PQS_REQUIRES(mutex_) {
    if (client_gone_) {
      return;
    }
    if (!client_.write_all(line + "\n")) {
      client_gone_ = true;  // run()'s reader will see the close shortly
    }
  }

  net::Socket& client_;
  const std::size_t inflight_limit_;
  std::vector<std::unique_ptr<Link>> links_;

  mutable Mutex mutex_;
  std::condition_variable_any cv_;
  /// Submit ids in submission order — the release schedule for results.
  std::deque<std::string> order_ PQS_GUARDED_BY(mutex_);
  /// id -> owning worker for every unresolved submit.
  std::map<std::string, std::size_t> owner_ PQS_GUARDED_BY(mutex_);
  /// id -> verbatim result line, parked until its turn in order_.
  std::map<std::string, std::string> ready_ PQS_GUARDED_BY(mutex_);
  /// Submits whose `accepted` ack has been relayed to the client — only
  /// these may have their result released (ack-before-result ordering).
  std::set<std::string> acked_ PQS_GUARDED_BY(mutex_);
  /// Submits that will never produce a result (rejected, worker died).
  std::set<std::string> dropped_ PQS_GUARDED_BY(mutex_);
  /// id -> owning worker, kept past completion for `trace` routing
  /// (bounded FIFO — the oldest remembered id is forgotten at the cap).
  static constexpr std::size_t kTraceOwnerCapacity = 4096;
  std::map<std::string, std::size_t> trace_owner_ PQS_GUARDED_BY(mutex_);
  std::deque<std::string> trace_owner_order_ PQS_GUARDED_BY(mutex_);
  bool client_gone_ PQS_GUARDED_BY(mutex_) = false;
};

std::vector<net::Addr> parse_worker_list(const std::string& text) {
  std::vector<net::Addr> workers;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string part =
        text.substr(start, comma == std::string::npos ? comma : comma - start);
    if (!part.empty()) {
      workers.push_back(net::parse_hostport(part));
    }
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  PQS_CHECK_MSG(!workers.empty(),
                "--workers needs at least one host:port (comma-separated)");
  return workers;
}

volatile std::sig_atomic_t g_stop = 0;

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const service::NetOptions net_options =
      service::parse_net_flags(cli, "127.0.0.1:0");
  const std::string workers_flag = cli.get_string(
      "workers", "",
      "comma-separated pqs_serve worker endpoints, e.g. "
      "127.0.0.1:7401,127.0.0.1:7402 (submits shard on canonical key)");
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }
  cli.finish();
  PQS_CHECK_MSG(!net_options.listen.empty(),
                "pqs_router needs --listen host:port");
  const std::vector<net::Addr> workers = parse_worker_list(workers_flag);

  net::AcceptorOptions acceptor_options;
  acceptor_options.listen = net::parse_hostport(net_options.listen);
  acceptor_options.max_connections = net_options.max_connections;
  net::Acceptor acceptor(
      acceptor_options,
      [&workers, &net_options](net::Socket& client) {
        try {
          ClientRoute route(client, workers, net_options.inflight_per_conn);
          route.run();
        } catch (const std::exception& e) {
          client.write_all(error_event(e.what()).dump() + "\n");
        }
      });
  acceptor.start();
  std::cerr << "pqs_router: listening on " << acceptor_options.listen.host
            << ":" << acceptor.port() << ", sharding across " << workers.size()
            << " worker(s)\n";

  std::signal(SIGINT, [](int) { g_stop = 1; });
  std::signal(SIGTERM, [](int) { g_stop = 1; });
  sigset_t mask;
  sigemptyset(&mask);
  while (g_stop == 0) {
    sigsuspend(&mask);
  }
  std::cerr << "pqs_router: shutting down\n";
  acceptor.stop();
  return 0;
}

// pqs_serve — the JSONL process front-end of pqs::Service.
//
// Reads one request object per stdin line, streams one event object per
// stdout line. This is the process shape a fleet deployment fronts with
// any RPC framework (or a shell pipe — see the README transcript):
//
//   requests (stdin)
//     {"op":"submit","id":"a","spec":{"algorithm":"grk","n_items":4096,...}}
//     {"op":"submit","id":"b","spec":{...},"priority":5}
//     {"op":"cancel","id":"a"}
//     {"op":"stats","id":"s"}
//
//   events (stdout)
//     {"event":"accepted","id":"a"}                        immediate ack
//     {"event":"cancelling","id":"a"}                      cancel ack
//     {"event":"result","id":"a","status":"done","report":{...}}
//     {"event":"result","id":"a","status":"cancelled"}
//     {"event":"result","id":"a","status":"failed","error":"..."}
//     {"event":"stats","id":"s","isa":...,"workers":...}   deployment info
//     {"event":"error","message":"..."}                    bad request line
//
// Result events are emitted in SUBMISSION order by a dedicated emitter
// thread (completion order may differ under a multi-worker pool), and the
// report payload zeroes the wall-clock timing fields unless --timing is
// passed — together that makes the stream of result lines a deterministic
// function of the request file at fixed seeds, which CI diffs byte-for-byte.
#include <cmath>
#include <condition_variable>
#include <deque>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <utility>

#include "api/serialize.h"
#include "common/check.h"
#include "common/cli.h"
#include "common/json.h"
#include "common/thread_annotations.h"
#include "qsim/isa.h"
#include "service/flags.h"
#include "service/service.h"

namespace {

using namespace pqs;

Mutex g_out_mutex;  // serializes whole event lines onto stdout

void emit(const Json& event) {
  const std::string line = event.dump();
  LockGuard lock(g_out_mutex);
  std::cout << line << "\n" << std::flush;
}

void emit_error(const std::string& message) {
  Json event = Json::make_object();
  event["event"] = "error";
  event["message"] = message;
  emit(event);
}

Json result_event(const std::string& id, const JobHandle& handle,
                  bool with_timing) {
  const JobStatus status = handle.status();
  Json event = Json::make_object();
  event["event"] = "result";
  event["id"] = id;
  event["status"] = std::string(to_string(status));
  if (status == JobStatus::kDone) {
    SearchReport report = handle.report();
    if (!with_timing) {
      // The answer fields are deterministic at fixed seed; these four
      // describe how the run happened to execute (wall clock, cache
      // warmth under racing workers) and would break byte-for-byte diffs.
      report.queue_ns = 0;
      report.plan_ns = 0;
      report.exec_ns = 0;
      report.plan_cache_hit = false;
    }
    event["report"] = api::to_json(report);
  } else if (status == JobStatus::kFailed) {
    event["error"] = handle.error();
  }
  return event;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const ServiceOptions options = service::parse_service_flags(cli);
  const bool with_timing = cli.get_bool(
      "timing", false,
      "emit real queue/plan/exec timing in result payloads (off keeps the "
      "output byte-deterministic at fixed seeds)");
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }
  cli.finish();

  Service service(options);
  std::cerr << "pqs_serve: " << options.threads << " worker(s), queue depth "
            << options.queue_capacity << ", kernel ISA "
            << qsim::isa_name(qsim::active_isa())
            << "; reading JSONL from stdin\n";

  // Finished jobs are announced in submission order: the emitter walks the
  // pending list front to back and blocks on each handle in turn. `jobs`
  // (the cancel index) is shared with the emitter, which prunes each entry
  // after announcing it — ids are reusable once their result is out, and a
  // long-lived server does not accumulate one handle per request forever.
  Mutex pending_mutex;
  std::condition_variable_any pending_cv;
  std::deque<std::pair<std::string, JobHandle>> pending;
  bool input_done = false;
  std::map<std::string, JobHandle> jobs;

  std::thread emitter([&] {
    while (true) {
      UniqueLock lock(pending_mutex);
      while (!input_done && pending.empty()) {
        pending_cv.wait(lock);
      }
      if (pending.empty()) {
        return;  // input finished and everything announced
      }
      const auto next = std::move(pending.front());
      pending.pop_front();
      lock.unlock();
      next.second.wait();
      const Json event = result_event(next.first, next.second, with_timing);
      // Free the id BEFORE the result line goes out: a client that reacts
      // to the result by reusing the id must never race the erase.
      lock.lock();
      jobs.erase(next.first);
      lock.unlock();
      emit(event);
    }
  });
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) {
      continue;
    }
    try {
      const Json request = Json::parse(line);
      const std::string& op = request.at("op").as_string();
      const std::string& id = request.at("id").as_string();
      if (op == "submit") {
        {
          LockGuard lock(pending_mutex);
          PQS_CHECK_MSG(!jobs.contains(id),
                        "duplicate in-flight job id \"" + id + "\"");
        }
        // as_double accepts both wire number kinds; negative priorities
        // (below-default urgency) are valid ints but parse as doubles.
        const int priority =
            request.has("priority")
                ? static_cast<int>(
                      std::llround(request.at("priority").as_double()))
                : 0;
        JobHandle handle =
            service.submit(api::spec_from_json(request.at("spec")), priority);
        {
          LockGuard lock(pending_mutex);
          jobs.emplace(id, handle);
        }
        // Ack BEFORE the emitter can see the handle: a cache-served job is
        // already done, and its result must not precede the accepted event.
        Json event = Json::make_object();
        event["event"] = "accepted";
        event["id"] = id;
        emit(event);
        {
          LockGuard lock(pending_mutex);
          pending.emplace_back(id, std::move(handle));
        }
        pending_cv.notify_one();
      } else if (op == "cancel") {
        JobHandle target = [&] {
          LockGuard lock(pending_mutex);
          const auto it = jobs.find(id);
          PQS_CHECK_MSG(it != jobs.end(),
                        "unknown or already-finished job id \"" + id + "\"");
          return it->second;
        }();
        target.cancel();
        Json event = Json::make_object();
        event["event"] = "cancelling";
        event["id"] = id;
        emit(event);
      } else if (op == "stats") {
        // Deployment metadata, answered inline (it is not a job): which
        // kernel tier this node dispatches to, and the pool shape. The CI
        // fixture does not use it — the isa value is machine-dependent.
        Json event = Json::make_object();
        event["event"] = "stats";
        event["id"] = id;
        event["isa"] = std::string(qsim::isa_name(qsim::active_isa()));
        event["workers"] = std::uint64_t{options.threads};
        event["queue_capacity"] = std::uint64_t{options.queue_capacity};
        emit(event);
      } else {
        emit_error("unknown op \"" + op +
                   "\" (expected submit | cancel | stats)");
      }
    } catch (const std::exception& e) {
      emit_error(e.what());
    }
  }

  {
    LockGuard lock(pending_mutex);
    input_done = true;
  }
  pending_cv.notify_all();
  emitter.join();  // drains every submitted job before the service stops
  return 0;
}

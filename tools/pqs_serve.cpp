// pqs_serve — the JSONL front-end of pqs::Service, over stdin or TCP.
//
// Reads one request object per line, streams one event object per line.
// Without --listen it speaks on stdin/stdout (the original process shape,
// byte-identical to the PR 5 transport); with --listen host:port it becomes
// a network worker: every admitted connection runs its own protocol session
// over the one shared Service, so coalescing and the result LRU span
// clients. See src/net/session.h for the full protocol contract.
//
//   requests
//     {"op":"submit","id":"a","spec":{"algorithm":"grk","n_items":4096,...}}
//     {"op":"submit","id":"b","spec":{...},"priority":5}
//     {"op":"cancel","id":"a"}
//     {"op":"stats","id":"s"}
//
//   events
//     {"event":"accepted","id":"a"}                        immediate ack
//     {"event":"overloaded","id":"a","reason":"..."}       admission reject
//     {"event":"cancelling","id":"a"}                      cancel ack
//     {"event":"result","id":"a","status":"done","report":{...}}
//     {"event":"result","id":"a","status":"cancelled"}
//     {"event":"result","id":"a","status":"failed","error":"..."}
//     {"event":"stats","id":"s","isa":...,"counters":{...},"latency_ns":...}
//     {"event":"error","message":"..."}                    bad request line
//
// Result events are emitted in SUBMISSION order, and the report payload
// zeroes the wall-clock timing fields unless --timing is passed — together
// that makes the stream of result lines a deterministic function of the
// request file at fixed seeds, which CI diffs byte-for-byte (including
// across shard fleets: see tools/pqs_router.cpp).
#include <csignal>
#include <iostream>
#include <string>

#include "common/cli.h"
#include "net/server.h"
#include "net/session.h"
#include "net/socket.h"
#include "qsim/isa.h"
#include "service/flags.h"
#include "service/service.h"

namespace {

using namespace pqs;

/// stdin/stdout mode: one session, drain on EOF (the pipe is done but the
/// reader still wants every result it was promised).
int run_stdio(Service& service, const net::SessionOptions& session_options) {
  net::Session session(
      service,
      [](const std::string& line) {
        std::cout << line << "\n" << std::flush;
        return static_cast<bool>(std::cout);
      },
      session_options);
  std::string line;
  while (std::getline(std::cin, line)) {
    session.handle_line(line);
  }
  session.drain();
  return 0;
}

/// TCP mode: serve until SIGINT/SIGTERM.
volatile std::sig_atomic_t g_stop = 0;

int run_listen(Service& service, const service::NetOptions& net_options,
               const net::SessionOptions& session_options) {
  net::NetServerOptions options;
  options.listen = net::parse_hostport(net_options.listen);
  options.max_connections = net_options.max_connections;
  options.session = session_options;
  net::NetServer server(service, options);
  server.start();
  std::cerr << "pqs_serve: listening on " << options.listen.host << ":"
            << server.port() << "\n";

  std::signal(SIGINT, [](int) { g_stop = 1; });
  std::signal(SIGTERM, [](int) { g_stop = 1; });
  sigset_t mask;
  sigemptyset(&mask);
  while (g_stop == 0) {
    sigsuspend(&mask);  // sleep until any signal delivers
  }
  std::cerr << "pqs_serve: shutting down\n";
  server.stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const ServiceOptions options = service::parse_service_flags(cli);
  const service::NetOptions net_options = service::parse_net_flags(cli);
  net::SessionOptions session_options;
  session_options.with_timing = cli.get_bool(
      "timing", false,
      "emit real queue/plan/exec timing in result payloads (off keeps the "
      "output byte-deterministic at fixed seeds)");
  session_options.inflight_limit = net_options.inflight_per_conn;
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }
  cli.finish();

  Service service(options);
  std::cerr << "pqs_serve: " << options.threads << " worker(s), queue depth "
            << options.queue_capacity << ", kernel ISA "
            << qsim::isa_name(qsim::active_isa()) << "; "
            << (net_options.listen.empty() ? "reading JSONL from stdin"
                                           : "JSONL over TCP")
            << "\n";
  if (net_options.listen.empty()) {
    return run_stdio(service, session_options);
  }
  return run_listen(service, net_options, session_options);
}

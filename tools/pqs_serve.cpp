// pqs_serve — the JSONL front-end of pqs::Service, over stdin or TCP.
//
// Reads one request object per line, streams one event object per line.
// Without --listen it speaks on stdin/stdout (the original process shape,
// byte-identical to the PR 5 transport); with --listen host:port it becomes
// a network worker: every admitted connection runs its own protocol session
// over the one shared Service, so coalescing and the result LRU span
// clients. See src/net/session.h for the full protocol contract.
//
//   requests
//     {"op":"submit","id":"a","spec":{"algorithm":"grk","n_items":4096,...}}
//     {"op":"submit","id":"b","spec":{...},"priority":5}
//     {"op":"cancel","id":"a"}
//     {"op":"stats","id":"s"}
//     {"op":"metrics","id":"m"}
//     {"op":"trace","id":"a"}
//
//   events
//     {"event":"accepted","id":"a"}                        immediate ack
//     {"event":"overloaded","id":"a","reason":"..."}       admission reject
//     {"event":"cancelling","id":"a"}                      cancel ack
//     {"event":"result","id":"a","status":"done","report":{...}}
//     {"event":"result","id":"a","status":"cancelled"}
//     {"event":"result","id":"a","status":"failed","error":"..."}
//     {"event":"stats","id":"s","isa":...,"counters":{...},"latency_ns":...}
//     {"event":"metrics","id":"m","isa":...,"metrics":{...}}  full registry
//     {"event":"trace","id":"a","trace":{"spans":[...],...}}  span timeline
//     {"event":"error","message":"..."}                    bad request line
//
// Result events are emitted in SUBMISSION order, and the report payload
// zeroes the wall-clock timing fields unless --timing is passed — together
// that makes the stream of result lines a deterministic function of the
// request file at fixed seeds, which CI diffs byte-for-byte (including
// across shard fleets: see tools/pqs_router.cpp).
//
// With --journal <path> the service becomes restart-safe: every accepted
// job is durable on disk before its ack, and a start replays the jobs a
// previous process left unfinished — through the ordinary coalescing
// submit path — before accepting new traffic. --journal-sync picks the
// fsync policy (see src/service/journal.h for the durability contract).
#include <csignal>
#include <iostream>
#include <string>
#include <vector>

#include "common/cli.h"
#include "net/server.h"
#include "net/session.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "qsim/isa.h"
#include "service/flags.h"
#include "service/journal.h"
#include "service/service.h"

namespace {

using namespace pqs;

/// stdin/stdout mode: one session, drain on EOF (the pipe is done but the
/// reader still wants every result it was promised).
int run_stdio(Service& service, const net::SessionOptions& session_options) {
  net::Session session(
      service,
      [](const std::string& line) {
        std::cout << line << "\n" << std::flush;
        return static_cast<bool>(std::cout);
      },
      session_options);
  std::string line;
  while (std::getline(std::cin, line)) {
    session.handle_line(line);
  }
  session.drain();
  return 0;
}

/// TCP mode: serve until SIGINT/SIGTERM.
volatile std::sig_atomic_t g_stop = 0;

int run_listen(Service& service, const service::NetOptions& net_options,
               const net::SessionOptions& session_options) {
  net::NetServerOptions options;
  options.listen = net::parse_hostport(net_options.listen);
  options.max_connections = net_options.max_connections;
  options.session = session_options;
  options.metrics = &obs::MetricsRegistry::global();
  net::NetServer server(service, options);
  server.start();
  std::cerr << "pqs_serve: listening on " << options.listen.host << ":"
            << server.port() << "\n";

  std::signal(SIGINT, [](int) { g_stop = 1; });
  std::signal(SIGTERM, [](int) { g_stop = 1; });
  sigset_t mask;
  sigemptyset(&mask);
  while (g_stop == 0) {
    sigsuspend(&mask);  // sleep until any signal delivers
  }
  std::cerr << "pqs_serve: shutting down\n";
  server.stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  ServiceOptions options = service::parse_service_flags(cli);
  const service::NetOptions net_options = service::parse_net_flags(cli);
  const service::JournalOptions journal_options =
      service::parse_journal_flags(cli);
  net::SessionOptions session_options;
  session_options.with_timing = cli.get_bool(
      "timing", false,
      "emit real queue/plan/exec timing in result payloads (off keeps the "
      "output byte-deterministic at fixed seeds)");
  session_options.inflight_limit = net_options.inflight_per_conn;
  if (cli.help_requested()) {
    std::cout << cli.help();
    return 0;
  }
  cli.finish();

  // One process, one registry: service, planner, journal, and the TCP
  // front door all register here, so a single `metrics` op answers for
  // the whole worker (and the router can merge workers fleet-wide).
  options.metrics = &obs::MetricsRegistry::global();

  // Restart protocol step 1: merge + rotate any pre-crash journal history
  // and open the fresh journal BEFORE the Service exists, so the very
  // first accepted job already lands in it.
  RecoveredJournal recovered;
  if (!journal_options.path.empty()) {
    Journal::Opened opened =
        Journal::recover_and_open(journal_options.path, journal_options.sync);
    options.journal = std::move(opened.journal);
    recovered = std::move(opened.recovered);
    options.journal->bind_metrics(obs::MetricsRegistry::global());
    for (const std::string& warning : recovered.warnings) {
      std::cerr << "pqs_serve: journal: " << warning << "\n";
    }
  }

  Service service(options);
  // Slow requests hit stderr with their full span timeline — the
  // threshold is --slow-ms (off by default; the counter still exists).
  service.trace_store().set_slow_sink(
      &obs::MetricsRegistry::global(), [](const obs::Trace& trace) {
        std::cerr << "pqs_serve: slow request " << trace.to_json().dump()
                  << "\n";
      });
  std::cerr << "pqs_serve: " << options.threads << " worker(s), queue depth "
            << options.queue_capacity << ", kernel ISA "
            << qsim::isa_name(qsim::active_isa()) << "; "
            << (net_options.listen.empty() ? "reading JSONL from stdin"
                                           : "JSONL over TCP")
            << "\n";

  // Steps 2–3: resubmit everything the previous process left unfinished
  // (before any traffic — new submits of equal specs coalesce onto the
  // replays), make the fresh accepted records durable, drop the history.
  std::vector<JobHandle> replay_handles;
  if (options.journal) {
    service::ReplayOutcome outcome = service::replay_pending(
        service, recovered.pending, &obs::MetricsRegistry::global());
    options.journal->sync();
    Journal::finish_recovery(journal_options.path);
    for (const std::string& warning : outcome.warnings) {
      std::cerr << "pqs_serve: journal: " << warning << "\n";
    }
    std::cerr << "pqs_serve: journal \"" << journal_options.path << "\" (sync="
              << to_string(journal_options.sync) << "): " << recovered.completed
              << " completed record(s), " << outcome.resubmitted
              << " unfinished job(s) replayed, " << outcome.skipped
              << " skipped\n";
    replay_handles = std::move(outcome.handles);
  }

  int rc;
  if (net_options.listen.empty()) {
    rc = run_stdio(service, session_options);
    // One-shot pipe mode finishes what the journal promised: replayed jobs
    // complete (and land their markers) before exit. TCP mode skips this —
    // SIGTERM means stop NOW; interrupted replays stay pending on disk and
    // simply replay again next start.
    for (const JobHandle& handle : replay_handles) {
      handle.wait();
    }
  } else {
    rc = run_listen(service, net_options, session_options);
  }
  return rc;
}

file(REMOVE_RECURSE
  "CMakeFiles/bench_reduction.dir/bench/bench_reduction.cpp.o"
  "CMakeFiles/bench_reduction.dir/bench/bench_reduction.cpp.o.d"
  "bench/bench_reduction"
  "bench/bench_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

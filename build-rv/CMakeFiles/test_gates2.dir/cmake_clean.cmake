file(REMOVE_RECURSE
  "CMakeFiles/test_gates2.dir/tests/test_gates2.cpp.o"
  "CMakeFiles/test_gates2.dir/tests/test_gates2.cpp.o.d"
  "test_gates2"
  "test_gates2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gates2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

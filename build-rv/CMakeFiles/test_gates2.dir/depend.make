# Empty dependencies file for test_gates2.
# This may be replaced when dependencies are built.

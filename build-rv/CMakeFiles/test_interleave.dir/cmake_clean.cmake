file(REMOVE_RECURSE
  "CMakeFiles/test_interleave.dir/tests/test_interleave.cpp.o"
  "CMakeFiles/test_interleave.dir/tests/test_interleave.cpp.o.d"
  "test_interleave"
  "test_interleave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interleave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

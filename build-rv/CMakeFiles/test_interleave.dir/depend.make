# Empty dependencies file for test_interleave.
# This may be replaced when dependencies are built.

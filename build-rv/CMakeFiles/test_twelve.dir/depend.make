# Empty dependencies file for test_twelve.
# This may be replaced when dependencies are built.

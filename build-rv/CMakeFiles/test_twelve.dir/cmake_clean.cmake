file(REMOVE_RECURSE
  "CMakeFiles/test_twelve.dir/tests/test_twelve.cpp.o"
  "CMakeFiles/test_twelve.dir/tests/test_twelve.cpp.o.d"
  "test_twelve"
  "test_twelve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_twelve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_state_vector.dir/tests/test_state_vector.cpp.o"
  "CMakeFiles/test_state_vector.dir/tests/test_state_vector.cpp.o.d"
  "test_state_vector"
  "test_state_vector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_state_vector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

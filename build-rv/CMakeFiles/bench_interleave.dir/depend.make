# Empty dependencies file for bench_interleave.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_interleave.dir/bench/bench_interleave.cpp.o"
  "CMakeFiles/bench_interleave.dir/bench/bench_interleave.cpp.o.d"
  "bench/bench_interleave"
  "bench/bench_interleave.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_interleave.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_zalka.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_zalka.dir/bench/bench_zalka.cpp.o"
  "CMakeFiles/bench_zalka.dir/bench/bench_zalka.cpp.o.d"
  "bench/bench_zalka"
  "bench/bench_zalka.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_zalka.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_lru.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_lru.dir/tests/test_lru.cpp.o"
  "CMakeFiles/test_lru.dir/tests/test_lru.cpp.o.d"
  "test_lru"
  "test_lru.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lru.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for search_service.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/search_service.dir/examples/search_service.cpp.o"
  "CMakeFiles/search_service.dir/examples/search_service.cpp.o.d"
  "examples/search_service"
  "examples/search_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

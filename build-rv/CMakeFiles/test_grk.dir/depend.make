# Empty dependencies file for test_grk.
# This may be replaced when dependencies are built.

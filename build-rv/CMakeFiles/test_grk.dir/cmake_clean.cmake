file(REMOVE_RECURSE
  "CMakeFiles/test_grk.dir/tests/test_grk.cpp.o"
  "CMakeFiles/test_grk.dir/tests/test_grk.cpp.o.d"
  "test_grk"
  "test_grk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_multi.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_multi.dir/bench/bench_multi.cpp.o"
  "CMakeFiles/bench_multi.dir/bench/bench_multi.cpp.o.d"
  "bench/bench_multi"
  "bench/bench_multi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_api_concurrency.
# This may be replaced when dependencies are built.

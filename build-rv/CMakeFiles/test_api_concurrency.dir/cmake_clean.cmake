file(REMOVE_RECURSE
  "CMakeFiles/test_api_concurrency.dir/tests/test_api_concurrency.cpp.o"
  "CMakeFiles/test_api_concurrency.dir/tests/test_api_concurrency.cpp.o.d"
  "test_api_concurrency"
  "test_api_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_api_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

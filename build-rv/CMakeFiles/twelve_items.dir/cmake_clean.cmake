file(REMOVE_RECURSE
  "CMakeFiles/twelve_items.dir/examples/twelve_items.cpp.o"
  "CMakeFiles/twelve_items.dir/examples/twelve_items.cpp.o.d"
  "examples/twelve_items"
  "examples/twelve_items.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twelve_items.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for twelve_items.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_grover.dir/tests/test_grover.cpp.o"
  "CMakeFiles/test_grover.dir/tests/test_grover.cpp.o.d"
  "test_grover"
  "test_grover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

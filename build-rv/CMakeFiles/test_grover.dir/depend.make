# Empty dependencies file for test_grover.
# This may be replaced when dependencies are built.

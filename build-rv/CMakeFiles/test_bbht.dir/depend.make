# Empty dependencies file for test_bbht.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_bbht.dir/tests/test_bbht.cpp.o"
  "CMakeFiles/test_bbht.dir/tests/test_bbht.cpp.o.d"
  "test_bbht"
  "test_bbht.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bbht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_phase_match.dir/tests/test_phase_match.cpp.o"
  "CMakeFiles/test_phase_match.dir/tests/test_phase_match.cpp.o.d"
  "test_phase_match"
  "test_phase_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phase_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_phase_match.
# This may be replaced when dependencies are built.

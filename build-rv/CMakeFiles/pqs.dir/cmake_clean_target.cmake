file(REMOVE_RECURSE
  "libpqs.a"
)

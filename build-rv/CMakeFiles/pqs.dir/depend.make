# Empty dependencies file for pqs.
# This may be replaced when dependencies are built.

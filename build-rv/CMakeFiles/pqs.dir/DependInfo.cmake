
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/api/algorithms/ampamp.cpp" "CMakeFiles/pqs.dir/src/api/algorithms/ampamp.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/api/algorithms/ampamp.cpp.o.d"
  "/root/repo/src/api/algorithms/bbht.cpp" "CMakeFiles/pqs.dir/src/api/algorithms/bbht.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/api/algorithms/bbht.cpp.o.d"
  "/root/repo/src/api/algorithms/certainty.cpp" "CMakeFiles/pqs.dir/src/api/algorithms/certainty.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/api/algorithms/certainty.cpp.o.d"
  "/root/repo/src/api/algorithms/classical.cpp" "CMakeFiles/pqs.dir/src/api/algorithms/classical.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/api/algorithms/classical.cpp.o.d"
  "/root/repo/src/api/algorithms/exact.cpp" "CMakeFiles/pqs.dir/src/api/algorithms/exact.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/api/algorithms/exact.cpp.o.d"
  "/root/repo/src/api/algorithms/grk.cpp" "CMakeFiles/pqs.dir/src/api/algorithms/grk.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/api/algorithms/grk.cpp.o.d"
  "/root/repo/src/api/algorithms/grover.cpp" "CMakeFiles/pqs.dir/src/api/algorithms/grover.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/api/algorithms/grover.cpp.o.d"
  "/root/repo/src/api/algorithms/interleave.cpp" "CMakeFiles/pqs.dir/src/api/algorithms/interleave.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/api/algorithms/interleave.cpp.o.d"
  "/root/repo/src/api/algorithms/multi.cpp" "CMakeFiles/pqs.dir/src/api/algorithms/multi.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/api/algorithms/multi.cpp.o.d"
  "/root/repo/src/api/algorithms/noisy.cpp" "CMakeFiles/pqs.dir/src/api/algorithms/noisy.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/api/algorithms/noisy.cpp.o.d"
  "/root/repo/src/api/algorithms/reduction.cpp" "CMakeFiles/pqs.dir/src/api/algorithms/reduction.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/api/algorithms/reduction.cpp.o.d"
  "/root/repo/src/api/algorithms/twelve.cpp" "CMakeFiles/pqs.dir/src/api/algorithms/twelve.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/api/algorithms/twelve.cpp.o.d"
  "/root/repo/src/api/algorithms/zalka.cpp" "CMakeFiles/pqs.dir/src/api/algorithms/zalka.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/api/algorithms/zalka.cpp.o.d"
  "/root/repo/src/api/engine.cpp" "CMakeFiles/pqs.dir/src/api/engine.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/api/engine.cpp.o.d"
  "/root/repo/src/api/flags.cpp" "CMakeFiles/pqs.dir/src/api/flags.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/api/flags.cpp.o.d"
  "/root/repo/src/api/planner.cpp" "CMakeFiles/pqs.dir/src/api/planner.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/api/planner.cpp.o.d"
  "/root/repo/src/api/registry.cpp" "CMakeFiles/pqs.dir/src/api/registry.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/api/registry.cpp.o.d"
  "/root/repo/src/api/search_spec.cpp" "CMakeFiles/pqs.dir/src/api/search_spec.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/api/search_spec.cpp.o.d"
  "/root/repo/src/api/serialize.cpp" "CMakeFiles/pqs.dir/src/api/serialize.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/api/serialize.cpp.o.d"
  "/root/repo/src/classical/adversary.cpp" "CMakeFiles/pqs.dir/src/classical/adversary.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/classical/adversary.cpp.o.d"
  "/root/repo/src/classical/montecarlo.cpp" "CMakeFiles/pqs.dir/src/classical/montecarlo.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/classical/montecarlo.cpp.o.d"
  "/root/repo/src/classical/search.cpp" "CMakeFiles/pqs.dir/src/classical/search.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/classical/search.cpp.o.d"
  "/root/repo/src/common/check.cpp" "CMakeFiles/pqs.dir/src/common/check.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/common/check.cpp.o.d"
  "/root/repo/src/common/cli.cpp" "CMakeFiles/pqs.dir/src/common/cli.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/common/cli.cpp.o.d"
  "/root/repo/src/common/json.cpp" "CMakeFiles/pqs.dir/src/common/json.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/common/json.cpp.o.d"
  "/root/repo/src/common/math.cpp" "CMakeFiles/pqs.dir/src/common/math.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/common/math.cpp.o.d"
  "/root/repo/src/common/random.cpp" "CMakeFiles/pqs.dir/src/common/random.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/common/random.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "CMakeFiles/pqs.dir/src/common/stats.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/common/stats.cpp.o.d"
  "/root/repo/src/common/table.cpp" "CMakeFiles/pqs.dir/src/common/table.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/common/table.cpp.o.d"
  "/root/repo/src/common/timing.cpp" "CMakeFiles/pqs.dir/src/common/timing.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/common/timing.cpp.o.d"
  "/root/repo/src/grover/amplitude_amplification.cpp" "CMakeFiles/pqs.dir/src/grover/amplitude_amplification.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/grover/amplitude_amplification.cpp.o.d"
  "/root/repo/src/grover/bbht.cpp" "CMakeFiles/pqs.dir/src/grover/bbht.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/grover/bbht.cpp.o.d"
  "/root/repo/src/grover/exact.cpp" "CMakeFiles/pqs.dir/src/grover/exact.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/grover/exact.cpp.o.d"
  "/root/repo/src/grover/grover.cpp" "CMakeFiles/pqs.dir/src/grover/grover.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/grover/grover.cpp.o.d"
  "/root/repo/src/oracle/blocks.cpp" "CMakeFiles/pqs.dir/src/oracle/blocks.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/oracle/blocks.cpp.o.d"
  "/root/repo/src/oracle/database.cpp" "CMakeFiles/pqs.dir/src/oracle/database.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/oracle/database.cpp.o.d"
  "/root/repo/src/oracle/marked_set.cpp" "CMakeFiles/pqs.dir/src/oracle/marked_set.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/oracle/marked_set.cpp.o.d"
  "/root/repo/src/oracle/merit_list.cpp" "CMakeFiles/pqs.dir/src/oracle/merit_list.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/oracle/merit_list.cpp.o.d"
  "/root/repo/src/partial/analytic.cpp" "CMakeFiles/pqs.dir/src/partial/analytic.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/partial/analytic.cpp.o.d"
  "/root/repo/src/partial/bounds.cpp" "CMakeFiles/pqs.dir/src/partial/bounds.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/partial/bounds.cpp.o.d"
  "/root/repo/src/partial/certainty.cpp" "CMakeFiles/pqs.dir/src/partial/certainty.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/partial/certainty.cpp.o.d"
  "/root/repo/src/partial/grk.cpp" "CMakeFiles/pqs.dir/src/partial/grk.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/partial/grk.cpp.o.d"
  "/root/repo/src/partial/interleave.cpp" "CMakeFiles/pqs.dir/src/partial/interleave.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/partial/interleave.cpp.o.d"
  "/root/repo/src/partial/multi.cpp" "CMakeFiles/pqs.dir/src/partial/multi.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/partial/multi.cpp.o.d"
  "/root/repo/src/partial/noisy.cpp" "CMakeFiles/pqs.dir/src/partial/noisy.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/partial/noisy.cpp.o.d"
  "/root/repo/src/partial/optimizer.cpp" "CMakeFiles/pqs.dir/src/partial/optimizer.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/partial/optimizer.cpp.o.d"
  "/root/repo/src/partial/phase_match.cpp" "CMakeFiles/pqs.dir/src/partial/phase_match.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/partial/phase_match.cpp.o.d"
  "/root/repo/src/partial/twelve.cpp" "CMakeFiles/pqs.dir/src/partial/twelve.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/partial/twelve.cpp.o.d"
  "/root/repo/src/qsim/backend.cpp" "CMakeFiles/pqs.dir/src/qsim/backend.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/qsim/backend.cpp.o.d"
  "/root/repo/src/qsim/batch.cpp" "CMakeFiles/pqs.dir/src/qsim/batch.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/qsim/batch.cpp.o.d"
  "/root/repo/src/qsim/circuit.cpp" "CMakeFiles/pqs.dir/src/qsim/circuit.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/qsim/circuit.cpp.o.d"
  "/root/repo/src/qsim/diffusion.cpp" "CMakeFiles/pqs.dir/src/qsim/diffusion.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/qsim/diffusion.cpp.o.d"
  "/root/repo/src/qsim/flags.cpp" "CMakeFiles/pqs.dir/src/qsim/flags.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/qsim/flags.cpp.o.d"
  "/root/repo/src/qsim/gates.cpp" "CMakeFiles/pqs.dir/src/qsim/gates.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/qsim/gates.cpp.o.d"
  "/root/repo/src/qsim/gates2.cpp" "CMakeFiles/pqs.dir/src/qsim/gates2.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/qsim/gates2.cpp.o.d"
  "/root/repo/src/qsim/kernels.cpp" "CMakeFiles/pqs.dir/src/qsim/kernels.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/qsim/kernels.cpp.o.d"
  "/root/repo/src/qsim/measurement.cpp" "CMakeFiles/pqs.dir/src/qsim/measurement.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/qsim/measurement.cpp.o.d"
  "/root/repo/src/qsim/noise.cpp" "CMakeFiles/pqs.dir/src/qsim/noise.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/qsim/noise.cpp.o.d"
  "/root/repo/src/qsim/simulator.cpp" "CMakeFiles/pqs.dir/src/qsim/simulator.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/qsim/simulator.cpp.o.d"
  "/root/repo/src/qsim/state_vector.cpp" "CMakeFiles/pqs.dir/src/qsim/state_vector.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/qsim/state_vector.cpp.o.d"
  "/root/repo/src/reduction/reduction.cpp" "CMakeFiles/pqs.dir/src/reduction/reduction.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/reduction/reduction.cpp.o.d"
  "/root/repo/src/service/flags.cpp" "CMakeFiles/pqs.dir/src/service/flags.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/service/flags.cpp.o.d"
  "/root/repo/src/service/service.cpp" "CMakeFiles/pqs.dir/src/service/service.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/service/service.cpp.o.d"
  "/root/repo/src/zalka/zalka.cpp" "CMakeFiles/pqs.dir/src/zalka/zalka.cpp.o" "gcc" "CMakeFiles/pqs.dir/src/zalka/zalka.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

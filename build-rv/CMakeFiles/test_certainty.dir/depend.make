# Empty dependencies file for test_certainty.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_certainty.dir/tests/test_certainty.cpp.o"
  "CMakeFiles/test_certainty.dir/tests/test_certainty.cpp.o.d"
  "test_certainty"
  "test_certainty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_certainty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

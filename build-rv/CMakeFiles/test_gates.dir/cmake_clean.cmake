file(REMOVE_RECURSE
  "CMakeFiles/test_gates.dir/tests/test_gates.cpp.o"
  "CMakeFiles/test_gates.dir/tests/test_gates.cpp.o.d"
  "test_gates"
  "test_gates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

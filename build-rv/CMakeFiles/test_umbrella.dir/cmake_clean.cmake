file(REMOVE_RECURSE
  "CMakeFiles/test_umbrella.dir/tests/test_umbrella.cpp.o"
  "CMakeFiles/test_umbrella.dir/tests/test_umbrella.cpp.o.d"
  "test_umbrella"
  "test_umbrella.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_umbrella.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_adversary.dir/bench/bench_adversary.cpp.o"
  "CMakeFiles/bench_adversary.dir/bench/bench_adversary.cpp.o.d"
  "bench/bench_adversary"
  "bench/bench_adversary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adversary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_adversary.
# This may be replaced when dependencies are built.

# Empty dependencies file for pqs_serve.
# This may be replaced when dependencies are built.

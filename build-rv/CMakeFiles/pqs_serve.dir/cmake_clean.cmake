file(REMOVE_RECURSE
  "CMakeFiles/pqs_serve.dir/tools/pqs_serve.cpp.o"
  "CMakeFiles/pqs_serve.dir/tools/pqs_serve.cpp.o.d"
  "tools/pqs_serve"
  "tools/pqs_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pqs_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

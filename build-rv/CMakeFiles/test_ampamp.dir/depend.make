# Empty dependencies file for test_ampamp.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_ampamp.dir/tests/test_ampamp.cpp.o"
  "CMakeFiles/test_ampamp.dir/tests/test_ampamp.cpp.o.d"
  "test_ampamp"
  "test_ampamp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ampamp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

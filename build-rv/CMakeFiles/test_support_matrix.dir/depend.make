# Empty dependencies file for test_support_matrix.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_support_matrix.dir/tests/test_support_matrix.cpp.o"
  "CMakeFiles/test_support_matrix.dir/tests/test_support_matrix.cpp.o.d"
  "test_support_matrix"
  "test_support_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_support_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_histogram.dir/bench/bench_fig5_histogram.cpp.o"
  "CMakeFiles/bench_fig5_histogram.dir/bench/bench_fig5_histogram.cpp.o.d"
  "bench/bench_fig5_histogram"
  "bench/bench_fig5_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig5_histogram.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig1_twelve.
# This may be replaced when dependencies are built.

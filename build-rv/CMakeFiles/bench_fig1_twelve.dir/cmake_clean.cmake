file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_twelve.dir/bench/bench_fig1_twelve.cpp.o"
  "CMakeFiles/bench_fig1_twelve.dir/bench/bench_fig1_twelve.cpp.o.d"
  "bench/bench_fig1_twelve"
  "bench/bench_fig1_twelve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_twelve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig4_step2.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/huge_partial_search.dir/examples/huge_partial_search.cpp.o"
  "CMakeFiles/huge_partial_search.dir/examples/huge_partial_search.cpp.o.d"
  "examples/huge_partial_search"
  "examples/huge_partial_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/huge_partial_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for huge_partial_search.
# This may be replaced when dependencies are built.

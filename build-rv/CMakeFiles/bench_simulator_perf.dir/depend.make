# Empty dependencies file for bench_simulator_perf.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_simulator_perf.dir/bench/bench_simulator_perf.cpp.o"
  "CMakeFiles/bench_simulator_perf.dir/bench/bench_simulator_perf.cpp.o.d"
  "bench/bench_simulator_perf"
  "bench/bench_simulator_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simulator_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

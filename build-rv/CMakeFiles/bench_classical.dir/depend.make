# Empty dependencies file for bench_classical.
# This may be replaced when dependencies are built.

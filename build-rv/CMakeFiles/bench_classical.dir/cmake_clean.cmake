file(REMOVE_RECURSE
  "CMakeFiles/bench_classical.dir/bench/bench_classical.cpp.o"
  "CMakeFiles/bench_classical.dir/bench/bench_classical.cpp.o.d"
  "bench/bench_classical"
  "bench/bench_classical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_classical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

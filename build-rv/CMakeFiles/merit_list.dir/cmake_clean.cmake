file(REMOVE_RECURSE
  "CMakeFiles/merit_list.dir/examples/merit_list.cpp.o"
  "CMakeFiles/merit_list.dir/examples/merit_list.cpp.o.d"
  "examples/merit_list"
  "examples/merit_list.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merit_list.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

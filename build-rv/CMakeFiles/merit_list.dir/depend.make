# Empty dependencies file for merit_list.
# This may be replaced when dependencies are built.

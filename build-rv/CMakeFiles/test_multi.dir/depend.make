# Empty dependencies file for test_multi.
# This may be replaced when dependencies are built.

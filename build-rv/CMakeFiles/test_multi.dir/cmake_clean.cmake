file(REMOVE_RECURSE
  "CMakeFiles/test_multi.dir/tests/test_multi.cpp.o"
  "CMakeFiles/test_multi.dir/tests/test_multi.cpp.o.d"
  "test_multi"
  "test_multi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

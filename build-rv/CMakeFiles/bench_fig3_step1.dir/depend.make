# Empty dependencies file for bench_fig3_step1.
# This may be replaced when dependencies are built.

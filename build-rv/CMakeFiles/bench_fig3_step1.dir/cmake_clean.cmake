file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_step1.dir/bench/bench_fig3_step1.cpp.o"
  "CMakeFiles/bench_fig3_step1.dir/bench/bench_fig3_step1.cpp.o.d"
  "bench/bench_fig3_step1"
  "bench/bench_fig3_step1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_step1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/noisy_search.dir/examples/noisy_search.cpp.o"
  "CMakeFiles/noisy_search.dir/examples/noisy_search.cpp.o.d"
  "examples/noisy_search"
  "examples/noisy_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noisy_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for noisy_search.
# This may be replaced when dependencies are built.

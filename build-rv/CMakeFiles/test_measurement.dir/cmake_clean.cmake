file(REMOVE_RECURSE
  "CMakeFiles/test_measurement.dir/tests/test_measurement.cpp.o"
  "CMakeFiles/test_measurement.dir/tests/test_measurement.cpp.o.d"
  "test_measurement"
  "test_measurement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_measurement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_oracle.dir/tests/test_oracle.cpp.o"
  "CMakeFiles/test_oracle.dir/tests/test_oracle.cpp.o.d"
  "test_oracle"
  "test_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

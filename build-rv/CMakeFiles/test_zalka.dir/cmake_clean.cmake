file(REMOVE_RECURSE
  "CMakeFiles/test_zalka.dir/tests/test_zalka.cpp.o"
  "CMakeFiles/test_zalka.dir/tests/test_zalka.cpp.o.d"
  "test_zalka"
  "test_zalka.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zalka.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_zalka.
# This may be replaced when dependencies are built.

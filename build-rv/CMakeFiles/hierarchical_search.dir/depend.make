# Empty dependencies file for hierarchical_search.
# This may be replaced when dependencies are built.

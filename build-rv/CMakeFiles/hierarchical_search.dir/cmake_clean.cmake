file(REMOVE_RECURSE
  "CMakeFiles/hierarchical_search.dir/examples/hierarchical_search.cpp.o"
  "CMakeFiles/hierarchical_search.dir/examples/hierarchical_search.cpp.o.d"
  "examples/hierarchical_search"
  "examples/hierarchical_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hierarchical_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

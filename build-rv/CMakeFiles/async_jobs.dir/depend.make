# Empty dependencies file for async_jobs.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/async_jobs.dir/examples/async_jobs.cpp.o"
  "CMakeFiles/async_jobs.dir/examples/async_jobs.cpp.o.d"
  "examples/async_jobs"
  "examples/async_jobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_jobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

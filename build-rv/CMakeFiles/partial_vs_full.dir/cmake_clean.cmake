file(REMOVE_RECURSE
  "CMakeFiles/partial_vs_full.dir/examples/partial_vs_full.cpp.o"
  "CMakeFiles/partial_vs_full.dir/examples/partial_vs_full.cpp.o.d"
  "examples/partial_vs_full"
  "examples/partial_vs_full.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partial_vs_full.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

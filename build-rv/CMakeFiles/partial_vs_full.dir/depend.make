# Empty dependencies file for partial_vs_full.
# This may be replaced when dependencies are built.

// Fuzz target: the api serialization edge (api/serialize.h).
//
// Every byte that reaches spec_from_json / report_from_json came off a
// socket, a journal, or a replay file — hostile by definition. The target
// enforces the layer's two contracts on arbitrary input:
//   1. the ONLY failure mode is a thrown CheckFailure (no other exception
//      type, no crash, no sanitizer finding);
//   2. canonical round-trip: a value that parses serializes back to bytes
//      that re-parse to the same canonical dump (what coalescing keys and
//      journal replay both rely on).
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "api/serialize.h"
#include "common/check.h"
#include "common/json.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  std::optional<pqs::Json> value;
  try {
    value = pqs::Json::parse(text);
  } catch (const pqs::CheckFailure&) {
    return 0;  // malformed JSON: the sanctioned rejection
  }

  std::optional<pqs::SearchSpec> spec;
  try {
    spec = pqs::api::spec_from_json(*value);
  } catch (const pqs::CheckFailure&) {
  }
  if (spec) {
    // NOTE: no resolve_marked()/canonical_key here — a fuzzed spec may
    // name 2^62 items, and materializing marked sets is the Service's
    // (validated, bounded) job, not the parser's.
    std::string first;
    try {
      first = pqs::api::to_json(*spec).dump();
    } catch (const pqs::CheckFailure&) {
      first.clear();  // non-finite double (e.g. noise_p:1e999): dump refuses
    }
    if (!first.empty()) {
      const pqs::SearchSpec again =
          pqs::api::spec_from_json(pqs::Json::parse(first));
      if (pqs::api::to_json(again).dump() != first) {
        __builtin_trap();  // round-trip broke: a real serialization bug
      }
    }
  }

  try {
    const pqs::SearchReport report = pqs::api::report_from_json(*value);
    std::string first;
    try {
      first = pqs::api::to_json(report).dump();
    } catch (const pqs::CheckFailure&) {
      first.clear();
    }
    if (!first.empty()) {
      const pqs::SearchReport again =
          pqs::api::report_from_json(pqs::Json::parse(first));
      if (pqs::api::to_json(again).dump() != first) {
        __builtin_trap();
      }
    }
  } catch (const pqs::CheckFailure&) {
  }
  return 0;
}

#ifdef PQS_FUZZ_STANDALONE
#include "standalone_main.inc"
#endif

// Fuzz target: the two line-oriented parse edges a deployment exposes.
//
//   * net::parse_request — every request line a TCP peer or stdin pipe
//     sends (src/net/session.h). Contract: the ONLY failure mode is a
//     thrown CheckFailure.
//   * Journal::recover_text — every byte a crash may have left in a
//     write-ahead journal, including torn final lines and foreign files.
//     Contract: recovery NEVER throws; damage becomes warnings.
//
// The input is treated as one journal text (recover_text consumes multiple
// lines, so embedded newlines exercise the torn-tail scanner) and its
// first line as one wire request.
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/check.h"
#include "net/session.h"
#include "service/journal.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);

  const std::string line = text.substr(0, text.find('\n'));
  try {
    (void)pqs::net::parse_request(line);
  } catch (const pqs::CheckFailure&) {
    // malformed request: the sanctioned rejection
  }

  // No try: anything recover_text lets escape is a durability bug (a
  // journal that cannot be read back is a journal that lost the jobs).
  const pqs::RecoveredJournal recovered = pqs::Journal::recover_text(text);
  if (recovered.pending.size() > recovered.accepted) {
    __builtin_trap();  // more unfinished jobs than accepted records
  }
  return 0;
}

#ifdef PQS_FUZZ_STANDALONE
#include "standalone_main.inc"
#endif

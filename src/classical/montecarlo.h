// Monte-Carlo measurement harness for the classical baselines: run many
// trials with uniformly random targets and accumulate probe-count statistics
// for comparison against the Appendix-A closed forms.
#pragma once

#include <cstdint>

#include "common/random.h"
#include "common/stats.h"

namespace pqs::classical {

struct TrialStats {
  RunningStats probes;       ///< probe counts across trials
  std::uint64_t failures = 0;  ///< runs that returned the wrong answer (0!)
  std::uint64_t trials = 0;
};

TrialStats measure_full_deterministic(std::uint64_t n_items,
                                      std::uint64_t trials, Rng& rng);
TrialStats measure_full_randomized(std::uint64_t n_items, std::uint64_t trials,
                                   Rng& rng);
TrialStats measure_partial_deterministic(std::uint64_t n_items,
                                         std::uint64_t k_blocks,
                                         std::uint64_t trials, Rng& rng);
TrialStats measure_partial_randomized(std::uint64_t n_items,
                                      std::uint64_t k_blocks,
                                      std::uint64_t trials, Rng& rng);

}  // namespace pqs::classical

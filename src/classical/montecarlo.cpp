#include "classical/montecarlo.h"

#include "classical/search.h"
#include "oracle/blocks.h"
#include "oracle/database.h"

namespace pqs::classical {

namespace {

template <typename RunFn>
TrialStats measure(std::uint64_t n_items, std::uint64_t trials, Rng& rng,
                   RunFn&& run) {
  TrialStats stats;
  stats.trials = trials;
  for (std::uint64_t t = 0; t < trials; ++t) {
    const oracle::Database db(n_items, rng.uniform_below(n_items));
    const ClassicalResult result = run(db, rng);
    stats.probes.add(static_cast<double>(result.probes));
    if (!result.correct) {
      ++stats.failures;
    }
  }
  return stats;
}

}  // namespace

TrialStats measure_full_deterministic(std::uint64_t n_items,
                                      std::uint64_t trials, Rng& rng) {
  return measure(n_items, trials, rng,
                 [](const oracle::Database& db, Rng&) {
                   return full_search_deterministic(db);
                 });
}

TrialStats measure_full_randomized(std::uint64_t n_items, std::uint64_t trials,
                                   Rng& rng) {
  return measure(n_items, trials, rng,
                 [](const oracle::Database& db, Rng& r) {
                   return full_search_randomized(db, r);
                 });
}

TrialStats measure_partial_deterministic(std::uint64_t n_items,
                                         std::uint64_t k_blocks,
                                         std::uint64_t trials, Rng& rng) {
  const oracle::BlockLayout layout(n_items, k_blocks);
  return measure(n_items, trials, rng,
                 [&layout](const oracle::Database& db, Rng&) {
                   return partial_search_deterministic(db, layout);
                 });
}

TrialStats measure_partial_randomized(std::uint64_t n_items,
                                      std::uint64_t k_blocks,
                                      std::uint64_t trials, Rng& rng) {
  const oracle::BlockLayout layout(n_items, k_blocks);
  return measure(n_items, trials, rng,
                 [&layout](const oracle::Database& db, Rng& r) {
                   return partial_search_randomized(db, layout, r);
                 });
}

}  // namespace pqs::classical

#include "classical/adversary.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "partial/bounds.h"

namespace pqs::classical {

double expected_probes_for_order(const std::vector<oracle::Index>& order,
                                 const oracle::BlockLayout& layout) {
  const std::uint64_t n = layout.num_items();
  PQS_CHECK_MSG(order.size() == n, "order must probe every address once");

  // Find the stopping point s: the first prefix length after which every
  // unprobed address lies in one block. Scanning backward: the suffix
  // order[s..] must be within a single block.
  std::uint64_t s = n;
  {
    std::uint64_t suffix_block = layout.block_of(order[n - 1]);
    std::uint64_t i = n - 1;
    while (i > 0 && layout.block_of(order[i - 1]) == suffix_block) {
      --i;
    }
    s = i;  // probing positions 0..s-1 suffices for zero error
  }

  // Cost for target at probe position j: j+1 if j < s (found), else s
  // (elimination answers without finding).
  double total = 0.0;
  for (std::uint64_t j = 0; j < n; ++j) {
    total += static_cast<double>(j < s ? j + 1 : s);
  }
  return total / static_cast<double>(n);
}

AdversaryResult exhaustive_partial_search_bound(std::uint64_t n_items,
                                                std::uint64_t k_blocks) {
  PQS_CHECK_MSG(n_items <= 9, "N! brute force is for N <= 9");
  const oracle::BlockLayout layout(n_items, k_blocks);

  std::vector<oracle::Index> order(n_items);
  std::iota(order.begin(), order.end(), oracle::Index{0});

  AdversaryResult result;
  result.min_expected = 1e300;
  result.max_expected = -1e300;
  do {
    ++result.orders_checked;
    const double e = expected_probes_for_order(order, layout);
    if (e < result.min_expected - 1e-12) {
      result.min_expected = e;
      result.optimal_orders = 1;
    } else if (e < result.min_expected + 1e-12) {
      ++result.optimal_orders;
    }
    result.max_expected = std::max(result.max_expected, e);
  } while (std::next_permutation(order.begin(), order.end()));
  return result;
}

double appendix_a_bound(std::uint64_t n_items, std::uint64_t k_blocks) {
  return partial::classical_partial_randomized_exact(n_items, k_blocks);
}

}  // namespace pqs::classical

#include "classical/search.h"

#include "common/check.h"

namespace pqs::classical {

ClassicalResult full_search_deterministic(const oracle::Database& db) {
  const std::uint64_t before = db.queries();
  ClassicalResult result;
  const std::uint64_t n = db.size();
  for (Index x = 0; x < n - 1; ++x) {
    if (db.probe(x)) {
      result.answer = x;
      result.correct = x == db.target();
      result.probes = db.queries() - before;
      return result;
    }
  }
  // Not in the first N-1 cells: it must be the last one (zero-error
  // elimination, no probe spent).
  result.answer = n - 1;
  result.correct = result.answer == db.target();
  result.probes = db.queries() - before;
  return result;
}

ClassicalResult full_search_randomized(const oracle::Database& db, Rng& rng,
                                       qsim::RunControl* control) {
  const std::uint64_t before = db.queries();
  ClassicalResult result;
  if (control != nullptr) {
    control->set_work_total(db.size());
  }
  const auto order = rng.permutation(db.size());
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    if (control != nullptr && i % kScanCheckpointInterval == 0) {
      control->throw_if_cancelled();
      if (i > 0) {  // credit the COMPLETED interval, not the upcoming one
        control->add_work_done(kScanCheckpointInterval);
      }
    }
    if (db.probe(order[i])) {
      result.answer = order[i];
      result.correct = result.answer == db.target();
      result.probes = db.queries() - before;
      return result;
    }
  }
  result.answer = order.back();  // elimination
  result.correct = result.answer == db.target();
  result.probes = db.queries() - before;
  return result;
}

ClassicalResult partial_search_deterministic(
    const oracle::Database& db, const oracle::BlockLayout& layout) {
  PQS_CHECK_MSG(layout.num_items() == db.size(), "layout/database mismatch");
  const std::uint64_t before = db.queries();
  ClassicalResult result;
  const std::uint64_t k = layout.num_blocks();
  for (std::uint64_t b = 0; b + 1 < k; ++b) {
    for (Index x = layout.block_begin(b); x < layout.block_end(b); ++x) {
      if (db.probe(x)) {
        result.answer = b;
        result.correct = b == layout.block_of(db.target());
        result.probes = db.queries() - before;
        return result;
      }
    }
  }
  // Probed K-1 full blocks without a hit: the target is in the last block.
  result.answer = k - 1;
  result.correct = result.answer == layout.block_of(db.target());
  result.probes = db.queries() - before;
  return result;
}

ClassicalResult partial_search_randomized(const oracle::Database& db,
                                          const oracle::BlockLayout& layout,
                                          Rng& rng,
                                          qsim::RunControl* control) {
  PQS_CHECK_MSG(layout.num_items() == db.size(), "layout/database mismatch");
  const std::uint64_t before = db.queries();
  ClassicalResult result;
  const std::uint64_t k = layout.num_blocks();
  const std::uint64_t excluded = rng.uniform_below(k);

  // Random probe order over the K-1 kept blocks.
  std::vector<Index> kept;
  kept.reserve(layout.num_items() - layout.block_size());
  for (std::uint64_t b = 0; b < k; ++b) {
    if (b == excluded) {
      continue;
    }
    for (Index x = layout.block_begin(b); x < layout.block_end(b); ++x) {
      kept.push_back(x);
    }
  }
  if (control != nullptr) {
    control->set_work_total(kept.size());
  }
  const auto order = rng.permutation(kept.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (control != nullptr && i % kScanCheckpointInterval == 0) {
      control->throw_if_cancelled();
      if (i > 0) {  // credit the COMPLETED interval, not the upcoming one
        control->add_work_done(kScanCheckpointInterval);
      }
    }
    const Index x = kept[order[i]];
    if (db.probe(x)) {
      result.answer = layout.block_of(x);
      result.correct = result.answer == layout.block_of(db.target());
      result.probes = db.queries() - before;
      return result;
    }
  }
  // Every kept location missed: the target is in the excluded block.
  result.answer = excluded;
  result.correct = result.answer == layout.block_of(db.target());
  result.probes = db.queries() - before;
  return result;
}

double expected_probes_fixed_order(std::uint64_t n_items,
                                   std::uint64_t k_blocks) {
  PQS_CHECK(k_blocks >= 2 && n_items % k_blocks == 0);
  const auto n = static_cast<double>(n_items);
  const auto k = static_cast<double>(k_blocks);
  const double probed = n * (1.0 - 1.0 / k);  // locations the algorithm scans
  // Target among the probed cells (prob 1 - 1/K): uniform over them, so the
  // expected hit position is (probed + 1)/2. Otherwise all `probed` cells are
  // scanned before elimination answers.
  return (1.0 - 1.0 / k) * (probed + 1.0) / 2.0 + (1.0 / k) * probed;
}

}  // namespace pqs::classical

// Classical baselines (Section 1.1 and Appendix A).
//
// All algorithms are zero-error: they either find the target or prove by
// elimination where it is. Costs are measured through the Database query
// counter, the same meter the quantum algorithms use.
#pragma once

#include <cstdint>

#include "common/random.h"
#include "oracle/blocks.h"
#include "oracle/database.h"
#include "qsim/run_control.h"

namespace pqs::classical {

using oracle::Index;

struct ClassicalResult {
  Index answer = 0;           ///< address (full search) or block (partial)
  bool correct = false;       ///< verified against ground truth
  std::uint64_t probes = 0;   ///< queries consumed by this run
};

/// Deterministic full search: scan addresses 0, 1, ... until found.
/// Worst case N probes (N-1 if the last cell is inferred by elimination).
ClassicalResult full_search_deterministic(const oracle::Database& db);

/// Zero-error randomized full search: probe in a uniformly random order.
/// Expected (N+1)/2 probes; the paper quotes N/2. With `control` attached
/// the scan checkpoints every kScanCheckpointInterval probes (a cancelled
/// 2^30-item scan stops within one interval, throwing CancelledError).
ClassicalResult full_search_randomized(const oracle::Database& db, Rng& rng,
                                       qsim::RunControl* control = nullptr);

/// How many probes a classical scan runs between cancellation checkpoints.
inline constexpr std::uint64_t kScanCheckpointInterval = 8192;

/// Deterministic partial search (Section 1.1): probe the first K-1 blocks;
/// if the target is not there it must be in the last block. Worst case
/// N (1 - 1/K) probes.
ClassicalResult partial_search_deterministic(const oracle::Database& db,
                                             const oracle::BlockLayout& layout);

/// Zero-error randomized partial search (Section 1.1 / Appendix A): pick a
/// random block to exclude, probe the other K-1 blocks in random order; on
/// miss the excluded block is the answer. Expected
/// N/2 (1 - 1/K^2) + (1 - 1/K)/2 probes — tight by Appendix A.
ClassicalResult partial_search_randomized(const oracle::Database& db,
                                          const oracle::BlockLayout& layout,
                                          Rng& rng,
                                          qsim::RunControl* control = nullptr);

/// Appendix A's bound specialized to a deterministic probe sequence: under a
/// uniform random target, the expected probes of ANY zero-error
/// deterministic partial-search algorithm are at least N/2 (1 - 1/K^2).
/// This evaluates the expectation for the algorithm probing in the given
/// fixed order (used by the lower-bound demonstration in the bench).
double expected_probes_fixed_order(std::uint64_t n_items,
                                   std::uint64_t k_blocks);

}  // namespace pqs::classical

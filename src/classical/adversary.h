// Exhaustive verification of the Appendix-A lower bound for tiny databases.
//
// Against a uniformly random target, any zero-error deterministic
// partial-search algorithm is (w.l.o.g.) a fixed probe order plus the
// elimination stopping rule: it may stop as soon as every unprobed address
// lies in a single block (that block must then hold the target). Appendix A
// proves no such algorithm beats expected N/2 (1 - 1/K^2) probes (+O(1)).
// Here we simply try ALL N! probe orders for small N and confirm the
// minimum, turning the paper's distribution argument into a checkable fact.
#pragma once

#include <cstdint>
#include <vector>

#include "oracle/blocks.h"

namespace pqs::classical {

/// Expected probes (uniform random target) of the zero-error algorithm that
/// probes in the given order and stops as soon as the unprobed remainder
/// fits in one block.
double expected_probes_for_order(const std::vector<oracle::Index>& order,
                                 const oracle::BlockLayout& layout);

struct AdversaryResult {
  double min_expected = 0.0;   ///< best over all N! probe orders
  double max_expected = 0.0;   ///< worst order (for scale)
  std::uint64_t optimal_orders = 0;  ///< how many orders achieve the min
  std::uint64_t orders_checked = 0;  ///< N!
};

/// Brute-force over every probe order. N! growth: N <= 9 is enforced.
AdversaryResult exhaustive_partial_search_bound(std::uint64_t n_items,
                                                std::uint64_t k_blocks);

/// The Appendix-A closed form this must equal:
/// N/2 (1 - 1/K^2) + (1 - 1/K)/2.
double appendix_a_bound(std::uint64_t n_items, std::uint64_t k_blocks);

}  // namespace pqs::classical

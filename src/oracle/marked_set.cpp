#include "oracle/marked_set.h"

#include <algorithm>

#include "common/check.h"

namespace pqs::oracle {

MarkedDatabase::MarkedDatabase(std::uint64_t size, std::vector<Index> marked)
    : size_(size), marked_(std::move(marked)) {
  PQS_CHECK_MSG(size >= 1, "database must contain at least one item");
  std::sort(marked_.begin(), marked_.end());
  marked_.erase(std::unique(marked_.begin(), marked_.end()), marked_.end());
  for (const Index m : marked_) {
    PQS_CHECK_MSG(m < size_, "marked address out of range");
  }
}

bool MarkedDatabase::probe(Index x) const {
  PQS_CHECK_MSG(x < size_, "probe address out of range");
  ++queries_;
  return peek(x);
}

bool MarkedDatabase::peek(Index x) const {
  return std::binary_search(marked_.begin(), marked_.end(), x);
}

void MarkedDatabase::apply_phase_oracle(qsim::StateVector& state) const {
  PQS_CHECK_MSG(state.dimension() == size_,
                "state dimension does not match database size");
  ++queries_;
  for (const Index m : marked_) {
    state.phase_flip(m);
  }
}

qsim::OracleView MarkedDatabase::view() const {
  return qsim::OracleView{
      .marked = [this](Index x) { return peek(x); },
      .target = marked_.empty() ? 0 : marked_.front(),
      .marked_list = marked_,
  };
}

}  // namespace pqs::oracle

#include "oracle/database.h"

#include "common/check.h"
#include "common/math.h"

namespace pqs::oracle {

Database::Database(std::uint64_t size, Index target)
    : size_(size), target_(target) {
  PQS_CHECK_MSG(size >= 1, "database must contain at least one item");
  PQS_CHECK_MSG(target < size, "target address out of range");
}

Database Database::with_qubits(unsigned n_qubits, Index target) {
  return Database(pow2(n_qubits), target);
}

bool Database::probe(Index x) const {
  PQS_CHECK_MSG(x < size_, "probe address out of range");
  ++queries_;
  return x == target_;
}

void Database::apply_phase_oracle(qsim::StateVector& state) const {
  PQS_CHECK_MSG(state.dimension() == size_,
                "state dimension does not match database size");
  ++queries_;
  state.phase_flip(target_);
}

void Database::apply_phase_oracle(qsim::StateVector& state, double phi) const {
  PQS_CHECK_MSG(state.dimension() == size_,
                "state dimension does not match database size");
  ++queries_;
  state.phase_rotate(target_, phi);
}

void Database::apply_bit_oracle(qsim::StateVector& state_with_ancilla) const {
  PQS_CHECK_MSG(state_with_ancilla.dimension() == 2 * size_,
                "state must have one ancilla qubit above the address bits");
  ++queries_;
  // T_f swaps |t>|0> <-> |t>|1>. The ancilla is the top qubit, so the two
  // components of the target address sit at t and t + N.
  const qsim::Amplitude a0 = state_with_ancilla.amplitude(target_);
  const qsim::Amplitude a1 = state_with_ancilla.amplitude(target_ + size_);
  state_with_ancilla.set_amplitude(target_, a1);
  state_with_ancilla.set_amplitude(target_ + size_, a0);
}

qsim::OracleView Database::view() const {
  return qsim::OracleView{
      .marked = [t = target_](Index x) { return x == t; },
      .target = target_,
      .marked_list = {target_},
  };
}

}  // namespace pqs::oracle

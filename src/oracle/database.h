// The database oracle of the paper: f : [N] -> {0,1} with a unique marked
// address t (Section 2.1). Wraps query counting so every algorithm's cost is
// measured by the same meter, classical and quantum alike.
#pragma once

#include <cstdint>
#include <functional>

#include "qsim/circuit.h"
#include "qsim/state_vector.h"
#include "qsim/types.h"

namespace pqs::oracle {

using qsim::Index;

/// A database of size N (any N >= 1, not necessarily a power of two) with a
/// unique marked target address. Query counting is built in: every evaluation
/// of f and every quantum oracle application increments the counter.
class Database {
 public:
  Database(std::uint64_t size, Index target);

  /// Convenience for the 2^n-address quantum setting.
  static Database with_qubits(unsigned n_qubits, Index target);

  std::uint64_t size() const { return size_; }
  Index target() const { return target_; }

  /// Classical probe: f(x). Counts one query.
  bool probe(Index x) const;
  /// f(x) without counting (for assertions / verification only).
  bool peek(Index x) const { return x == target_; }

  /// Apply the phase oracle I_t = I - 2|t><t| to a state vector. One query.
  void apply_phase_oracle(qsim::StateVector& state) const;
  /// Generalized phase oracle: |t> <- e^{i phi}|t>. One query.
  void apply_phase_oracle(qsim::StateVector& state, double phi) const;
  /// The bit-oracle form T_f |x>|b> = |x>|b xor f(x)> on an (n+1)-qubit
  /// state whose top qubit is the ancilla b. One query.
  void apply_bit_oracle(qsim::StateVector& state_with_ancilla) const;

  /// View for executing qsim::Circuit against this database. Circuit
  /// execution reports its own query count; callers add it via
  /// `add_queries`.
  qsim::OracleView view() const;

  std::uint64_t queries() const { return queries_; }
  void reset_queries() const { queries_ = 0; }
  void add_queries(std::uint64_t q) const { queries_ += q; }

 private:
  std::uint64_t size_;
  Index target_;
  mutable std::uint64_t queries_ = 0;
};

}  // namespace pqs::oracle

// The paper's motivating example (Section 1): a merit list — students sorted
// by rank — where we only care which quartile (or other fraction) a student
// falls in, i.e. the first k bits of the student's position.
//
// This is a thin domain wrapper over Database/BlockLayout used by the
// merit_list example and tests; it also demonstrates how a user binds their
// own data to the oracle abstraction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "oracle/blocks.h"
#include "oracle/database.h"

namespace pqs::oracle {

/// A ranked list of named students. Position i in the list = rank i (0-based,
/// rank 0 is the top student). The searchable "database" maps positions to
/// the predicate "is this position occupied by the student we are asking
/// about?" — exactly the unique-marked-item oracle of the paper.
class MeritList {
 public:
  /// Builds a list of `size` synthetic student names, deterministically
  /// shuffled by `seed` so that name -> rank is not computable without
  /// probing (that is the whole point of the search problem).
  MeritList(std::uint64_t size, std::uint64_t seed);

  std::uint64_t size() const { return names_by_rank_.size(); }
  const std::string& name_at_rank(std::uint64_t rank) const;

  /// The (counted-query) database whose target is `student`'s rank.
  /// Throws if the student is not on the list.
  Database database_for(const std::string& student) const;

  /// Ground-truth rank (test/verification use; does not count queries).
  std::uint64_t true_rank(const std::string& student) const;

  /// Human label for a block under a K-way split, e.g. "top 25%".
  static std::string fraction_label(std::uint64_t block,
                                    std::uint64_t n_blocks);

 private:
  std::vector<std::string> names_by_rank_;
};

}  // namespace pqs::oracle

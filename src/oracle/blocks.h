// Block layout of the partial-search problem (Section 2.2): the address
// space [N] is partitioned into K equal blocks; address x = (y, z) with
// y in [K] the block index ("first k bits") and z in [N/K] the offset.
#pragma once

#include <cstdint>

#include "qsim/types.h"

namespace pqs::oracle {

using qsim::Index;

/// Partition of [N] into K equal contiguous blocks. N and K need not be
/// powers of two (the Figure-1 example uses N = 12, K = 3), but K | N.
class BlockLayout {
 public:
  BlockLayout(std::uint64_t n_items, std::uint64_t n_blocks);

  /// Power-of-two convenience: N = 2^n, K = 2^k.
  static BlockLayout with_bits(unsigned n_bits, unsigned k_bits);

  std::uint64_t num_items() const { return n_; }
  std::uint64_t num_blocks() const { return k_; }
  std::uint64_t block_size() const { return n_ / k_; }

  /// y: which block does address x belong to?
  std::uint64_t block_of(Index x) const;
  /// z: offset of x within its block.
  std::uint64_t offset_of(Index x) const;
  /// Inverse of (block_of, offset_of).
  Index address(std::uint64_t block, std::uint64_t offset) const;

  /// First / one-past-last address of a block.
  Index block_begin(std::uint64_t block) const;
  Index block_end(std::uint64_t block) const;

 private:
  std::uint64_t n_;
  std::uint64_t k_;
};

}  // namespace pqs::oracle

// A database with an arbitrary set of marked addresses.
//
// The paper's partial-search problem has a unique target, but two of the
// algorithms it builds on need the general form: BBHT search for an unknown
// number of marked items (paper ref [2]) and multi-target amplitude
// amplification (ref [3]). Query counting matches Database.
#pragma once

#include <cstdint>
#include <vector>

#include "qsim/circuit.h"
#include "qsim/state_vector.h"

namespace pqs::oracle {

using qsim::Index;

/// f : [N] -> {0,1} with an arbitrary (possibly empty) marked set.
class MarkedDatabase {
 public:
  MarkedDatabase(std::uint64_t size, std::vector<Index> marked);

  std::uint64_t size() const { return size_; }
  std::uint64_t num_marked() const { return marked_.size(); }
  const std::vector<Index>& marked() const { return marked_; }

  /// Classical probe; counts one query.
  bool probe(Index x) const;
  /// Uncounted membership test (verification only).
  bool peek(Index x) const;

  /// Phase oracle: flip the sign of every marked state. One query.
  void apply_phase_oracle(qsim::StateVector& state) const;

  qsim::OracleView view() const;

  std::uint64_t queries() const { return queries_; }
  void reset_queries() const { queries_ = 0; }
  void add_queries(std::uint64_t q) const { queries_ += q; }

 private:
  std::uint64_t size_;
  std::vector<Index> marked_;  // sorted, unique
  mutable std::uint64_t queries_ = 0;
};

}  // namespace pqs::oracle

#include "oracle/blocks.h"

#include "common/check.h"
#include "common/math.h"

namespace pqs::oracle {

BlockLayout::BlockLayout(std::uint64_t n_items, std::uint64_t n_blocks)
    : n_(n_items), k_(n_blocks) {
  PQS_CHECK_MSG(n_items >= 1, "empty address space");
  PQS_CHECK_MSG(n_blocks >= 1 && n_blocks <= n_items,
                "block count out of range");
  PQS_CHECK_MSG(n_items % n_blocks == 0,
                "blocks must partition the address space evenly");
}

BlockLayout BlockLayout::with_bits(unsigned n_bits, unsigned k_bits) {
  PQS_CHECK_MSG(k_bits <= n_bits, "k exceeds n");
  return BlockLayout(pow2(n_bits), pow2(k_bits));
}

std::uint64_t BlockLayout::block_of(Index x) const {
  PQS_CHECK_MSG(x < n_, "address out of range");
  return x / block_size();
}

std::uint64_t BlockLayout::offset_of(Index x) const {
  PQS_CHECK_MSG(x < n_, "address out of range");
  return x % block_size();
}

Index BlockLayout::address(std::uint64_t block, std::uint64_t offset) const {
  PQS_CHECK_MSG(block < k_, "block index out of range");
  PQS_CHECK_MSG(offset < block_size(), "offset out of range");
  return block * block_size() + offset;
}

Index BlockLayout::block_begin(std::uint64_t block) const {
  PQS_CHECK_MSG(block < k_, "block index out of range");
  return block * block_size();
}

Index BlockLayout::block_end(std::uint64_t block) const {
  return block_begin(block) + block_size();
}

}  // namespace pqs::oracle

#include "oracle/merit_list.h"

#include <sstream>

#include "common/check.h"
#include "common/random.h"

namespace pqs::oracle {

MeritList::MeritList(std::uint64_t size, std::uint64_t seed) {
  PQS_CHECK_MSG(size >= 1, "empty merit list");
  Rng rng(seed);
  const auto perm = rng.permutation(size);
  names_by_rank_.resize(size);
  for (std::uint64_t rank = 0; rank < size; ++rank) {
    // Student identity is the permuted id, so sorted-by-rank order reveals
    // nothing about ids.
    names_by_rank_[rank] = "student-" + std::to_string(perm[rank]);
  }
}

const std::string& MeritList::name_at_rank(std::uint64_t rank) const {
  PQS_CHECK_MSG(rank < names_by_rank_.size(), "rank out of range");
  return names_by_rank_[rank];
}

std::uint64_t MeritList::true_rank(const std::string& student) const {
  for (std::uint64_t rank = 0; rank < names_by_rank_.size(); ++rank) {
    if (names_by_rank_[rank] == student) {
      return rank;
    }
  }
  throw CheckFailure("student not on the merit list: " + student);
}

Database MeritList::database_for(const std::string& student) const {
  return Database(names_by_rank_.size(), true_rank(student));
}

std::string MeritList::fraction_label(std::uint64_t block,
                                      std::uint64_t n_blocks) {
  PQS_CHECK(n_blocks >= 1 && block < n_blocks);
  const double lo = 100.0 * static_cast<double>(block) /
                    static_cast<double>(n_blocks);
  const double hi = 100.0 * static_cast<double>(block + 1) /
                    static_cast<double>(n_blocks);
  std::ostringstream os;
  os.precision(0);
  os.setf(std::ios::fixed);
  if (block == 0) {
    os << "top " << hi << "%";
  } else if (block + 1 == n_blocks) {
    os << "bottom " << (hi - lo) << "%";
  } else {
    os << lo << "%-" << hi << "% band";
  }
  return os.str();
}

}  // namespace pqs::oracle

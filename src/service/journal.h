// Write-ahead journal — the durability layer of pqs::Service.
//
// A fleet worker that answers millions of queries dies mid-job: SIGKILL
// from the scheduler, an OOM, a power cut. Everything the Service holds is
// in memory, so without a journal every accepted-but-unfinished job simply
// vanishes — work a client was promised (its submit was acked) and nobody
// will ever run. The Journal closes that hole with two record kinds, one
// canonical-JSON line each (the PR 5 serialization layer, reused verbatim,
// is what makes the format byte-deterministic and replayable):
//
//   {"id":1,"journal":"accepted","priority":0,"spec":{...},"t_ns":...}
//   {"id":1,"journal":"completed","report":{...},"status":"done"}
//
// An `accepted` record is appended BEFORE Service::submit returns (the ack
// a front-end sends therefore implies the job is durable); a `completed`
// record is appended when the job settles — done, cancelled (including
// aborted-by-disconnect: a vanished TCP client's jobs are cancelled and
// marked completed, so a restart does not resurrect work nobody will
// read), or failed. Recovery is the set difference: accepted records with
// no completion marker are the jobs a crash interrupted, and replaying
// them through the ordinary Service::submit path makes equal-canonical-key
// duplicates coalesce for free.
//
// Durability levels. Each record is written with ONE write(2) call on an
// O_APPEND descriptor — no userspace buffering — so process death (the
// SIGKILL case) never loses an acked record regardless of sync policy.
// JournalSync chooses what a KERNEL/power failure may cost:
//   * kNone   — no fsync; the tail since the last kernel flush may be lost
//               or torn (recovery skips a torn final line with a warning);
//   * kAlways — fsync(2) after every record; survives power loss at the
//               price of a disk flush per accepted job.
//
// Restart protocol (what pqs_serve --journal runs at startup):
//   1. recover_and_open(path): read `path` AND `path + ".recovering"` (the
//      latter exists only if a previous recovery itself crashed), merge
//      their unfinished records, rotate all history into the .recovering
//      file, and open a fresh journal at `path`;
//   2. replay_pending(service, ...): resubmit every unfinished record —
//      each lands a fresh `accepted` line in the new journal (equal keys
//      coalesce; a full queue is waited out, never dropped);
//   3. Journal::sync() then finish_recovery(path): the resubmissions are
//      durable, so the old history is deleted.
// A crash inside the window degrades exactly-once to at-least-once for the
// jobs caught in it — harmless here, because reports are deterministic
// functions of the spec (the property pqs_replay --check pins).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/search_spec.h"
#include "common/thread_annotations.h"
#include "common/timing.h"
#include "obs/metrics.h"
#include "service/service.h"

namespace pqs {

/// What a kernel/power failure may cost (process death never loses an
/// acked record under either policy; see the header comment).
enum class JournalSync {
  kNone,    ///< no fsync — fastest, tail-at-risk on power loss
  kAlways,  ///< fsync per record — durable against power loss
};

std::string_view to_string(JournalSync sync);
JournalSync parse_journal_sync(const std::string& name);

/// One `accepted` record as recovered from disk.
struct JournalRecord {
  std::uint64_t id = 0;  ///< journal-assigned, monotonic within one file
  int priority = 0;
  std::uint64_t t_ns = 0;  ///< ns since the journal opened (replay pacing)
  SearchSpec spec;         ///< canonical: marked materialized, no predicate
};

/// One completion marker as recovered from disk.
struct CompletedJournalRecord {
  std::uint64_t id = 0;
  JobStatus status = JobStatus::kDone;
  bool has_report = false;  ///< done markers embed their report
  SearchReport report;      ///< valid when has_report
};

/// What recovery read from one (or a merged pair of) journal file(s).
struct RecoveredJournal {
  /// Accepted records with no completion marker, in acceptance order —
  /// the jobs a crash interrupted.
  std::vector<JournalRecord> pending;
  /// EVERY accepted record in order, finished or not (pqs_replay
  /// re-executes these and diffs against `completions`).
  std::vector<JournalRecord> accepted_records;
  /// Every completion marker in order.
  std::vector<CompletedJournalRecord> completions;
  std::size_t accepted = 0;   ///< accepted records parsed
  std::size_t completed = 0;  ///< completion markers parsed
  std::uint64_t max_id = 0;   ///< largest record id seen (id continuation)
  /// Torn/malformed lines, each skipped with one entry here — recovery
  /// NEVER throws on journal content (the fuzz target pins this).
  std::vector<std::string> warnings;
};

/// The append side. Thread-safe; Service calls it with Service::mutex_
/// held, so the lock order is Service::mutex_ -> Journal::mutex_ (never
/// the reverse — recovery is static and lock-free).
class Journal {
 public:
  /// Opens (creating if needed) `path` for appending. Record ids start at
  /// max(largest id already in the file + 1, first_id), so accepted/
  /// completed pairs never collide across reopens — recover_and_open
  /// passes the merged history's max_id + 1 as `first_id`, keeping ids
  /// unique even across the rotated-away generation (a double crash
  /// concatenates generations into one file, and recovery parses them in
  /// one id-space).
  Journal(std::string path, JournalSync sync, std::uint64_t first_id = 1);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Append one `accepted` record; returns its journal record id. The spec
  /// must be canonical (marked materialized, no predicate) — Service
  /// journals the same canonical copy it keys and executes.
  std::uint64_t append_accepted(const SearchSpec& canonical_spec,
                                int priority) PQS_EXCLUDES(mutex_);

  /// Append the completion marker of record `id`. `report` is embedded for
  /// kDone (that is what pqs_replay --check diffs against) and must be
  /// non-null then; it is ignored for kCancelled / kFailed.
  void append_completed(std::uint64_t id, JobStatus status,
                        const SearchReport* report) PQS_EXCLUDES(mutex_);

  /// fsync now, regardless of policy (the replay path calls this once
  /// after resubmitting, before deleting the old history).
  void sync() PQS_EXCLUDES(mutex_);

  /// Count appends on `registry` (`journal.accepted_appends` /
  /// `journal.completed_appends`). Pre-traffic wiring, like every other
  /// bind_metrics in the tree; pqs_serve binds the global registry here so
  /// the `metrics` op covers durability too.
  void bind_metrics(obs::MetricsRegistry& registry);

  const std::string& path() const { return path_; }

  // ---- recovery (static: reads files, touches no Journal instance) ----

  /// Parse one journal text. Malformed or torn lines — including every
  /// possible truncation of the final record — are skipped with a warning,
  /// never an exception.
  static RecoveredJournal recover_text(std::string_view text);

  /// recover_text over a file's bytes; a missing file recovers empty.
  static RecoveredJournal recover_file(const std::string& path);

  /// The restart protocol's steps 1: merge `path` + `path.recovering`,
  /// rotate all history into `path.recovering`, return the merged recovery
  /// and a fresh journal opened at `path`.
  struct Opened {
    std::shared_ptr<Journal> journal;
    RecoveredJournal recovered;
  };
  static Opened recover_and_open(const std::string& path, JournalSync sync);

  /// The restart protocol's step 3: delete `path.recovering`. Call only
  /// after the resubmitted records are durable (journal->sync()).
  static void finish_recovery(const std::string& path);

  /// Where rotation parks pre-crash history during recovery.
  static std::string recovering_path(const std::string& path);

 private:
  void append_line(const std::string& line) PQS_REQUIRES(mutex_);

  const std::string path_;
  const JournalSync sync_;
  obs::Counter* accepted_appends_ = nullptr;   ///< set by bind_metrics
  obs::Counter* completed_appends_ = nullptr;  ///< set by bind_metrics
  mutable Mutex mutex_;
  int fd_ PQS_GUARDED_BY(mutex_) = -1;
  std::uint64_t next_id_ PQS_GUARDED_BY(mutex_) = 1;
  Stopwatch opened_at_;  ///< t_ns origin; written once at construction
};

namespace service {

/// Resubmit every unfinished record through Service::submit — the ordinary
/// admission path, so equal canonical keys coalesce onto one execution and
/// each replayed job lands a fresh `accepted` record in the service's own
/// journal. A full queue is waited out (oldest replay first), never
/// dropped; a record whose spec no longer validates is skipped with a
/// warning. Call before accepting new traffic.
struct ReplayOutcome {
  std::vector<JobHandle> handles;  ///< one per unique replayed execution
  std::size_t resubmitted = 0;
  std::size_t skipped = 0;  ///< specs that no longer validate
  std::vector<std::string> warnings;
};
/// `metrics`, when given, counts the outcome as `journal.replayed_jobs` /
/// `journal.replay_skipped`.
ReplayOutcome replay_pending(Service& service,
                             const std::vector<JournalRecord>& pending,
                             obs::MetricsRegistry* metrics = nullptr);

}  // namespace service

}  // namespace pqs

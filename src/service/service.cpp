#include "service/service.h"

#include "api/serialize.h"
#include "common/check.h"
#include "common/timing.h"
#include "service/journal.h"

namespace pqs {

using detail::Job;

std::string_view to_string(JobStatus status) {
  switch (status) {
    case JobStatus::kQueued: return "queued";
    case JobStatus::kRunning: return "running";
    case JobStatus::kDone: return "done";
    case JobStatus::kCancelled: return "cancelled";
    case JobStatus::kFailed: return "failed";
  }
  return "?";
}

// ---- JobHandle -------------------------------------------------------------

JobStatus JobHandle::status_locked() const {
  // A cancelled attachment is cancelled for good — even if the coalesced
  // execution completes for the other callers, THIS caller asked out, and
  // a cancelled handle must never flip to kDone.
  if (cancelled_->load()) {
    return JobStatus::kCancelled;
  }
  return job_->status;
}

JobStatus JobHandle::status() const {
  LockGuard lock(job_->mutex);
  return status_locked();
}

bool JobHandle::finished() const {
  const JobStatus s = status();
  return s == JobStatus::kDone || s == JobStatus::kCancelled ||
         s == JobStatus::kFailed;
}

double JobHandle::progress() const {
  {
    LockGuard lock(job_->mutex);
    if (job_->status == JobStatus::kDone) {
      return 1.0;  // single-shot runs report no intermediate units
    }
  }
  return job_->control.progress();
}

// The waits spell their predicate as an inline loop instead of the
// cv.wait(lock, pred) lambda form: the thread-safety analysis checks a
// lambda body as a separate function that does not hold job_->mutex, while
// the inline loop provably runs with the lock held (see
// common/thread_annotations.h).

JobStatus JobHandle::wait() const {
  UniqueLock lock(job_->mutex);
  while (true) {
    const JobStatus s = status_locked();
    if (s != JobStatus::kQueued && s != JobStatus::kRunning) {
      return s;
    }
    job_->cv.wait(lock);
  }
}

JobStatus JobHandle::wait_for(std::chrono::milliseconds timeout) const {
  const auto deadline = steady_now() + timeout;
  UniqueLock lock(job_->mutex);
  while (true) {
    const JobStatus s = status_locked();
    if (s != JobStatus::kQueued && s != JobStatus::kRunning) {
      return s;
    }
    if (job_->cv.wait_until(lock, deadline) == std::cv_status::timeout) {
      return status_locked();  // (possibly still running) status at timeout
    }
  }
}

void JobHandle::cancel() {
  {
    // The flag flips under the waiters' mutex: a wait() that just read the
    // predicate cannot park between this store and the notify (the classic
    // lost-wakeup window).
    LockGuard lock(job_->mutex);
    if (cancelled_->exchange(true)) {
      return;  // this attachment already cancelled
    }
    // Last attached caller out stops the execution itself; otherwise the
    // job keeps running for the still-attached callers.
    if (job_->attached.fetch_sub(1) == 1) {
      job_->control.cancel();
    }
  }
  job_->cv.notify_all();  // waiters on this handle see kCancelled now
}

const SearchReport& JobHandle::report() const {
  LockGuard lock(job_->mutex);
  const JobStatus s = status_locked();
  PQS_CHECK_MSG(s == JobStatus::kDone,
                std::string("JobHandle::report: job is ") +
                    std::string(to_string(s)) + ", not done");
  return job_->report;
}

const std::string& JobHandle::error() const {
  LockGuard lock(job_->mutex);
  const JobStatus s = status_locked();
  PQS_CHECK_MSG(s == JobStatus::kFailed,
                std::string("JobHandle::error: job is ") +
                    std::string(to_string(s)) + ", not failed");
  return job_->error;
}

const SearchSpec& JobHandle::spec() const { return job_->spec; }
const std::string& JobHandle::key() const { return job_->key; }

std::uint64_t JobHandle::trace_id() const {
  return job_->trace == nullptr ? 0 : job_->trace->id();
}

std::shared_ptr<const obs::Trace> JobHandle::trace() const {
  return job_->trace;
}

// ---- Service ---------------------------------------------------------------

Service::Service(ServiceOptions options)
    : Service(options, Registry::with_builtin_algorithms()) {}

Service::Instruments Service::Instruments::bind(obs::MetricsRegistry& r) {
  return Instruments{
      r.counter("service.submitted"),
      r.counter("service.coalesced_submits"),
      r.counter("service.cache_hits"),
      r.counter("service.rejected"),
      r.counter("service.executed"),
      r.counter("service.done"),
      r.counter("service.cancelled"),
      r.counter("service.failed"),
      r.histogram("latency.queue_ns"),
      r.histogram("latency.plan_ns"),
      r.histogram("latency.exec_ns"),
      r.gauge("service.queue_depth"),
      r.gauge("plan.cache_size"),
      r.gauge("plan.cache_evictions"),
      r.gauge("result_cache.size"),
      r.gauge("result_cache.evictions"),
  };
}

Service::Service(ServiceOptions options, Registry registry)
    : options_(options),
      engine_(std::move(registry), options.plan_cache_capacity),
      metrics_(options.metrics != nullptr ? options.metrics : &own_metrics_),
      inst_(Instruments::bind(*metrics_)),
      trace_store_(options.trace),
      results_(options.result_cache_capacity) {
  PQS_CHECK_MSG(options_.threads >= 1, "Service needs at least one worker");
  PQS_CHECK_MSG(options_.queue_capacity >= 1,
                "Service needs queue_capacity >= 1");
  // The shared Engine's plan cache reports into the same registry
  // (plan.cache_hits / plan.cache_misses), replacing the Planner's
  // private counters.
  engine_.bind_metrics(*metrics_);
  // Count slow requests even before pqs_serve installs its stderr
  // callback; set_slow_sink is pre-traffic wiring by contract.
  trace_store_.set_slow_sink(metrics_, nullptr);
  workers_.reserve(options_.threads);
  for (unsigned t = 0; t < options_.threads; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Service::~Service() {
  std::vector<std::shared_ptr<Job>> queued;
  {
    LockGuard lock(mutex_);
    stopping_ = true;
    queued.reserve(queue_.size());
    for (const auto& [order, job] : queue_) {
      queued.push_back(job);
    }
    queue_.clear();
    // Running jobs stop at their next checkpoint.
    for (const auto& [key, job] : inflight_) {
      job->control.cancel();
    }
  }
  // Settle the never-started jobs so their waiters wake.
  for (const auto& job : queued) {
    finish(job, JobStatus::kCancelled, {}, "service shut down");
  }
  queue_cv_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

JobHandle Service::attach(const std::shared_ptr<Job>& job) {
  job->attached.fetch_add(1);
  return JobHandle(job, std::make_shared<std::atomic<bool>>(false));
}

JobHandle Service::submit(const SearchSpec& spec, int priority) {
  // Validate and canonicalize HERE, synchronously: a malformed spec throws
  // at the submission site, and a predicate is scanned exactly once.
  spec.validate_knobs();
  SearchSpec canonical = spec;
  canonical.marked = spec.resolve_marked();
  canonical.predicate = nullptr;
  std::string key = api::canonical_key_canonicalized(canonical);

  LockGuard lock(mutex_);
  PQS_CHECK_MSG(!stopping_, "Service is shutting down");

  // Coalesce: attach to the queued-or-running execution of the same spec —
  // unless every previous caller already cancelled it: that execution is
  // doomed to settle kCancelled, and a fresh caller expects a result, so
  // it gets a fresh job (which replaces the doomed one in the index). The
  // doomed-check and the attach happen under the job mutex, the same lock
  // cancel() holds for its last-one-out decision, so a racing cancel
  // either beats us (we see cancelled and go fresh) or sees our
  // attachment (and leaves the execution running for us).
  if (const auto it = inflight_.find(key); it != inflight_.end()) {
    const std::shared_ptr<Job>& job = it->second;
    LockGuard job_lock(job->mutex);
    if (!job->control.cancelled()) {
      inst_.submitted.add();
      inst_.coalesced_submits.add();
      job->attached.fetch_add(1);
      // An urgent caller must not inherit a lazy caller's queue position:
      // if the shared job is still waiting, promote it to the higher
      // priority (re-key the queue entry).
      if (priority > job->priority) {
        const auto queued =
            queue_.find(std::make_pair(-job->priority, job->seq));
        if (queued != queue_.end()) {
          queue_.erase(queued);
          job->priority = priority;
          queue_.emplace(std::make_pair(-priority, job->seq), job);
        }
      }
      return JobHandle(job, std::make_shared<std::atomic<bool>>(false));
    }
  }

  // Repeat of a completed spec: serve the cached report, run nothing.
  if (const SearchReport* cached = results_.find(key)) {
    inst_.submitted.add();
    inst_.cache_hits.add();
    auto job = std::make_shared<Job>();
    job->spec = std::move(canonical);
    job->key = std::move(key);
    {
      // The job is not shared yet, but status/report are guarded members
      // and the analysis (rightly) has no notion of "not shared yet".
      LockGuard job_lock(job->mutex);
      job->status = JobStatus::kDone;
      job->report = *cached;
      job->report.queue_ns = 0;  // THIS request never queued; don't replay
                                 // the original execution's queueing delay
    }
    return attach(job);
  }

  if (queue_.size() >= options_.queue_capacity) {
    reap_cancelled_locked();  // cancelled waiters must not hold slots
  }
  if (queue_.size() >= options_.queue_capacity) {
    // Admission control: overload is rejected HERE, explicitly and
    // immediately — never absorbed as silent queueing latency. Front-ends
    // (src/net/session.cpp) map this exact type to an `overloaded` event.
    inst_.rejected.add();
    throw OverloadedError("Service queue is full (" +
                          std::to_string(options_.queue_capacity) +
                          " jobs waiting); retry later or raise "
                          "queue_capacity");
  }
  auto job = std::make_shared<Job>();
  job->spec = std::move(canonical);
  job->key = key;
  job->priority = priority;
  job->seq = next_seq_++;
  // Durability before visibility: the accepted record must be on disk
  // before any caller can observe the job, so the ack a front-end sends
  // implies the work survives a crash. A failed append throws out of
  // submit — the job was never accepted, and no counter moved.
  //
  // The append runs under mutex_ DELIBERATELY: released first, a same-key
  // submit could coalesce onto (and be acked against) a job that is not
  // yet durable. The cost is that every append — a single write(2), plus
  // one fsync per record under --journal-sync always — stalls all
  // submits, completions, and stats behind it; kAlways therefore bounds
  // service-wide submit throughput by disk-flush latency (the documented
  // trade-off; see README "Durability & replay").
  if (options_.journal) {
    job->journal_id = options_.journal->append_accepted(job->spec, priority);
  }
  inst_.submitted.add();  // after capacity + journal: rejects are not accepts
  // Mint the trace last, pre-publication (same once-before-sharing
  // contract as journal_id); from here every layer the job crosses can
  // emit spans through the control's sink.
  job->trace = trace_store_.mint();
  if (job->trace != nullptr) {
    job->control.set_span_sink(job->trace.get());
    job->trace->span("submit");
    job->trace->span("queue.enqueued");
  }
  job->queued_at.reset();
  inflight_[std::move(key)] = job;  // may replace a fully-cancelled job
  queue_.emplace(std::make_pair(-priority, job->seq), job);
  queue_cv_.notify_one();
  return attach(job);
}

std::size_t Service::queue_depth() const {
  LockGuard lock(mutex_);
  return queue_.size();
}

ServiceStats Service::stats() const {
  // The counters are registry-backed atomics now; only the result-cache
  // numbers still live under mutex_. The view stays field-identical to
  // the pre-registry ServiceStats (the `stats` op's compatibility pin).
  ServiceStats stats;
  stats.submitted = inst_.submitted.value();
  stats.coalesced_submits = inst_.coalesced_submits.value();
  stats.cache_hits = inst_.cache_hits.value();
  stats.rejected = inst_.rejected.value();
  stats.executed = inst_.executed.value();
  stats.done = inst_.done.value();
  stats.cancelled = inst_.cancelled.value();
  stats.failed = inst_.failed.value();
  {
    LockGuard lock(mutex_);
    stats.result_cache_evictions = results_.evictions();
    stats.result_cache_size = results_.size();
  }
  // The Planner synchronizes itself; read it outside mutex_ so the two
  // locks never nest (there is no invariant tying the snapshots together).
  const Planner& planner = engine_.planner();
  stats.plan_cache_hits = planner.hits();
  stats.plan_cache_misses = planner.misses();
  stats.plan_cache_evictions = planner.evictions();
  stats.plan_cache_size = planner.size();
  return stats;
}

StageHistograms Service::latency_histograms() const {
  StageHistograms stage;
  stage.queue = inst_.queue_ns.snapshot();
  stage.plan = inst_.plan_ns.snapshot();
  stage.exec = inst_.exec_ns.snapshot();
  return stage;
}

Json Service::metrics_snapshot() const {
  // Counters and histograms update themselves; the sampled levels are
  // refreshed here so a snapshot is never staler than its own dump.
  {
    LockGuard lock(mutex_);
    inst_.queue_depth.set(static_cast<std::int64_t>(queue_.size()));
    inst_.result_cache_size.set(static_cast<std::int64_t>(results_.size()));
    inst_.result_cache_evictions.set(
        static_cast<std::int64_t>(results_.evictions()));
  }
  const Planner& planner = engine_.planner();
  inst_.plan_cache_size.set(static_cast<std::int64_t>(planner.size()));
  inst_.plan_cache_evictions.set(
      static_cast<std::int64_t>(planner.evictions()));
  return metrics_->snapshot();
}

void Service::reap_cancelled_locked() {
  for (auto it = queue_.begin(); it != queue_.end();) {
    const std::shared_ptr<Job>& job = it->second;
    if (!job->control.cancelled()) {
      ++it;
      continue;
    }
    // Inline finish() for a job that never ran, under the already-held
    // mutex_ (mutex_ -> job->mutex is the sanctioned lock order).
    if (const auto inflight = inflight_.find(job->key);
        inflight != inflight_.end() && inflight->second == job) {
      inflight_.erase(inflight);
    }
    inst_.cancelled.add();
    if (options_.journal && job->journal_id != 0 && !stopping_) {
      try {
        options_.journal->append_completed(job->journal_id,
                                           JobStatus::kCancelled, nullptr);
      } catch (const std::exception&) {
      }
    }
    if (job->trace != nullptr) {
      job->trace->span("finish.cancelled");
      trace_store_.retire(job->trace);
    }
    {
      LockGuard job_lock(job->mutex);
      job->status = JobStatus::kCancelled;
      job->error = "cancelled while queued";
    }
    job->cv.notify_all();
    it = queue_.erase(it);
  }
}

void Service::worker_loop() {
  while (true) {
    std::shared_ptr<Job> job;
    {
      UniqueLock lock(mutex_);
      while (!stopping_ && queue_.empty()) {
        queue_cv_.wait(lock);  // inline predicate loop: see wait() above
      }
      if (queue_.empty()) {
        return;  // stopping, nothing left to run
      }
      job = queue_.begin()->second;
      queue_.erase(queue_.begin());
    }
    execute(job);
  }
}

void Service::execute(const std::shared_ptr<Job>& job) {
  const std::uint64_t queue_ns = job->queued_at.nanos();
  // Cancelled while queued (every attachment gone): never start.
  if (job->control.cancelled()) {
    finish(job, JobStatus::kCancelled, {}, "cancelled while queued");
    return;
  }
  {
    LockGuard lock(job->mutex);
    job->status = JobStatus::kRunning;
  }
  inst_.executed.add();
  job->control.span("exec.begin");

  try {
    SearchReport report = engine_.run(job->spec, &job->control);
    // A fully cancelled job settles as cancelled even when the driver won
    // the race and completed: every caller asked out, so publishing kDone
    // (and caching the result) would misreport what the service did.
    if (job->control.cancelled()) {
      finish(job, JobStatus::kCancelled, {}, "cancelled while running");
      return;
    }
    report.queue_ns = queue_ns;
    finish(job, JobStatus::kDone, std::move(report), {});
  } catch (const qsim::CancelledError&) {
    finish(job, JobStatus::kCancelled, {}, "cancelled while running");
  } catch (const std::exception& e) {
    finish(job, JobStatus::kFailed, {}, e.what());
  }
}

void Service::finish(const std::shared_ptr<Job>& job, JobStatus status,
                     SearchReport report, std::string error) {
  // Service-level bookkeeping FIRST: a waiter woken by the notify below
  // must observe the final counters and the cached result, not a stale
  // in-between state.
  {
    LockGuard lock(mutex_);
    // Erase only OUR index entry: a fully-cancelled job's key may already
    // have been taken over by a fresh submission.
    if (const auto it = inflight_.find(job->key);
        it != inflight_.end() && it->second == job) {
      inflight_.erase(it);
    }
    switch (status) {
      case JobStatus::kDone:
        inst_.done.add();
        results_.put(job->key, report);
        inst_.queue_ns.record(report.queue_ns);
        inst_.plan_ns.record(report.plan_ns);
        inst_.exec_ns.record(report.exec_ns);
        break;
      case JobStatus::kCancelled:
        inst_.cancelled.add();
        break;
      case JobStatus::kFailed:
        inst_.failed.add();
        break;
      default:
        break;
    }
    // Completion marker — deliberately suppressed while stopping_, so jobs
    // a shutdown (or crash) interrupted stay pending in the journal and are
    // replayed at the next start. Explicit cancels while the service is
    // live DO land a marker: cancelled work must not resurrect. A marker
    // write failure only degrades exactly-once to at-least-once (the job
    // replays; reports are deterministic), so it never takes down a worker.
    if (options_.journal && job->journal_id != 0 && !stopping_) {
      try {
        options_.journal->append_completed(
            job->journal_id, status,
            status == JobStatus::kDone ? &report : nullptr);
      } catch (const std::exception&) {
      }
    }
  }
  if (job->trace != nullptr) {
    switch (status) {
      case JobStatus::kDone: job->trace->span("finish.done"); break;
      case JobStatus::kCancelled: job->trace->span("finish.cancelled"); break;
      default: job->trace->span("finish.failed"); break;
    }
    trace_store_.retire(job->trace);  // outside mutex_: the slow-request
                                      // callback may write to stderr
  }
  {
    LockGuard lock(job->mutex);
    job->status = status;
    job->report = std::move(report);
    job->error = std::move(error);
  }
  job->cv.notify_all();
}

}  // namespace pqs

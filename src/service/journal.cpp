#include "service/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

#include "api/serialize.h"
#include "common/check.h"
#include "common/json.h"

namespace pqs {

std::string_view to_string(JournalSync sync) {
  switch (sync) {
    case JournalSync::kNone: return "none";
    case JournalSync::kAlways: return "always";
  }
  return "?";
}

JournalSync parse_journal_sync(const std::string& name) {
  if (name == "none") {
    return JournalSync::kNone;
  }
  if (name == "always") {
    return JournalSync::kAlways;
  }
  throw CheckFailure("unknown journal sync policy \"" + name +
                     "\" (expected none | always)");
}

// ---- append side -----------------------------------------------------------

Journal::Journal(std::string path, JournalSync sync, std::uint64_t first_id)
    : path_(std::move(path)), sync_(sync) {
  // Continue record ids after any history already in the file AND after
  // `first_id - 1`, so an accepted/completed pair never collides with a
  // pair from before a reopen. The restart protocol rotates history away
  // first, so in the pqs_serve path the file is always fresh and the scan
  // reads nothing — there, `first_id` (the rotated generation's max_id +
  // 1) is what keeps ids unique across generations.
  const RecoveredJournal existing = recover_file(path_);
  LockGuard lock(mutex_);
  next_id_ = std::max(existing.max_id + 1, first_id);
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  PQS_CHECK_MSG(fd_ >= 0, "Journal: cannot open \"" + path_ +
                              "\" for appending: " + std::strerror(errno));
}

Journal::~Journal() {
  LockGuard lock(mutex_);
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

void Journal::append_line(const std::string& line) {
  // One write(2) per record: O_APPEND makes the append atomic with respect
  // to position, and a single syscall means process death either lands the
  // whole record or (on a kernel/power failure mid-flush) leaves a torn
  // tail that recovery skips. No userspace buffering, ever.
  std::string framed = line;
  framed.push_back('\n');
  std::size_t written = 0;
  while (written < framed.size()) {
    const ssize_t n =
        ::write(fd_, framed.data() + written, framed.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw CheckFailure("Journal: write to \"" + path_ +
                         "\" failed: " + std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  if (sync_ == JournalSync::kAlways) {
    PQS_CHECK_MSG(::fsync(fd_) == 0, "Journal: fsync of \"" + path_ +
                                         "\" failed: " + std::strerror(errno));
  }
}

std::uint64_t Journal::append_accepted(const SearchSpec& canonical_spec,
                                       int priority) {
  Json record = Json::make_object();
  record["journal"] = "accepted";
  record["priority"] =
      priority >= 0 ? Json(std::uint64_t(priority))
                    : Json(static_cast<double>(priority));  // ints < 0: double
  record["spec"] = api::to_json(canonical_spec);
  record["t_ns"] = opened_at_.nanos();
  LockGuard lock(mutex_);
  const std::uint64_t id = next_id_++;
  record["id"] = id;
  append_line(record.dump());
  if (accepted_appends_ != nullptr) {
    accepted_appends_->add();
  }
  return id;
}

void Journal::append_completed(std::uint64_t id, JobStatus status,
                               const SearchReport* report) {
  PQS_CHECK_MSG(status == JobStatus::kDone || status == JobStatus::kCancelled ||
                    status == JobStatus::kFailed,
                "Journal: completion marker needs a terminal status");
  Json record = Json::make_object();
  record["journal"] = "completed";
  record["id"] = id;
  record["status"] = std::string(to_string(status));
  if (status == JobStatus::kDone) {
    PQS_CHECK_MSG(report != nullptr,
                  "Journal: a done marker must embed its report");
    record["report"] = api::to_json(*report);
  }
  LockGuard lock(mutex_);
  append_line(record.dump());
  if (completed_appends_ != nullptr) {
    completed_appends_->add();
  }
}

void Journal::sync() {
  LockGuard lock(mutex_);
  PQS_CHECK_MSG(::fsync(fd_) == 0, "Journal: fsync of \"" + path_ +
                                       "\" failed: " + std::strerror(errno));
}

void Journal::bind_metrics(obs::MetricsRegistry& registry) {
  accepted_appends_ = &registry.counter("journal.accepted_appends");
  completed_appends_ = &registry.counter("journal.completed_appends");
}

// ---- recovery --------------------------------------------------------------

namespace {

int parse_priority(const Json& value) {
  // Mirrors the wire convention (net/session.cpp): non-negative priorities
  // are uints, below-default urgency travels as a (double) number.
  if (value.is_uint()) {
    return static_cast<int>(value.as_uint());
  }
  return static_cast<int>(value.as_double());
}

JobStatus parse_terminal_status(const std::string& name) {
  if (name == "done") {
    return JobStatus::kDone;
  }
  if (name == "cancelled") {
    return JobStatus::kCancelled;
  }
  if (name == "failed") {
    return JobStatus::kFailed;
  }
  throw CheckFailure("unknown terminal status \"" + name + "\"");
}

}  // namespace

RecoveredJournal Journal::recover_text(std::string_view text) {
  RecoveredJournal out;
  // id -> record, insertion-ordered by id (ids are monotonic per file and
  // the merged pair is read oldest-history-first), so `pending` comes out
  // in acceptance order.
  std::map<std::uint64_t, JournalRecord> pending;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    if (line.empty()) {
      continue;
    }
    // A journal must recover from ANYTHING on disk — a torn final write, a
    // disk-corruption line, a file that is not a journal at all. Every
    // failure mode becomes a warning + skip, never an exception (the
    // fuzz_wire_line target feeds arbitrary bytes through here).
    try {
      const Json record = Json::parse(line);
      const std::string& kind = record.at("journal").as_string();
      const std::uint64_t id = record.at("id").as_uint();
      out.max_id = std::max(out.max_id, id);
      if (kind == "accepted") {
        JournalRecord entry;
        entry.id = id;
        entry.priority = record.has("priority")
                             ? parse_priority(record.at("priority"))
                             : 0;
        entry.t_ns = record.has("t_ns") ? record.at("t_ns").as_uint() : 0;
        entry.spec = api::spec_from_json(record.at("spec"));
        ++out.accepted;
        out.accepted_records.push_back(entry);
        pending.emplace(id, std::move(entry));
      } else if (kind == "completed") {
        CompletedJournalRecord marker;
        marker.id = id;
        marker.status = parse_terminal_status(record.at("status").as_string());
        if (record.has("report")) {
          marker.report = api::report_from_json(record.at("report"));
          marker.has_report = true;
        }
        ++out.completed;
        out.completions.push_back(std::move(marker));
        pending.erase(id);
      } else {
        out.warnings.push_back("line " + std::to_string(line_no) +
                               ": unknown journal record kind \"" + kind +
                               "\" — skipped");
      }
    } catch (const std::exception& e) {
      out.warnings.push_back("line " + std::to_string(line_no) +
                             ": unreadable journal record (" + e.what() +
                             ") — skipped" +
                             (pos > text.size() ? " [torn final line]" : ""));
    }
  }
  out.pending.reserve(pending.size());
  for (auto& [id, entry] : pending) {
    out.pending.push_back(std::move(entry));
  }
  return out;
}

RecoveredJournal Journal::recover_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    return {};  // no file, nothing journaled: a fresh deployment
  }
  std::ostringstream text;
  text << in.rdbuf();
  return recover_text(text.str());
}

std::string Journal::recovering_path(const std::string& path) {
  return path + ".recovering";
}

Journal::Opened Journal::recover_and_open(const std::string& path,
                                          JournalSync sync) {
  const std::string parked = recovering_path(path);
  // Oldest history first: the .recovering file exists only when a previous
  // recovery crashed mid-replay, and its records predate everything in
  // `path`. Reading it first keeps `pending` in acceptance order; a job
  // resubmitted by that crashed recovery and since completed appears
  // pending in the old file but completed in the new one — replaying it
  // again is the documented at-least-once degradation (reports are
  // deterministic, so the re-execution is harmless).
  RecoveredJournal merged = recover_file(parked);
  RecoveredJournal current = recover_file(path);
  merged.accepted += current.accepted;
  merged.completed += current.completed;
  merged.max_id = std::max(merged.max_id, current.max_id);
  for (auto& record : current.pending) {
    merged.pending.push_back(std::move(record));
  }
  for (auto& record : current.accepted_records) {
    merged.accepted_records.push_back(std::move(record));
  }
  for (auto& marker : current.completions) {
    merged.completions.push_back(std::move(marker));
  }
  for (auto& warning : current.warnings) {
    merged.warnings.push_back(std::move(warning));
  }

  // Rotate: park ALL history under .recovering before opening the fresh
  // journal, so no byte is deleted until the resubmissions are durable
  // (finish_recovery is the only delete, and callers run it after sync()).
  std::ifstream exists(path, std::ios::binary);
  if (exists.good()) {
    exists.close();
    std::ifstream parked_exists(parked, std::ios::binary);
    if (!parked_exists.good()) {
      PQS_CHECK_MSG(std::rename(path.c_str(), parked.c_str()) == 0,
                    "Journal: cannot rotate \"" + path + "\" to \"" + parked +
                        "\": " + std::strerror(errno));
    } else {
      // Double-crash shape: both files exist. Append `path`'s bytes onto
      // the parked history (ordinary POSIX append — this file IS the
      // journal layer, the one place allowed to do this), then remove it.
      parked_exists.close();
      std::ifstream src(path, std::ios::binary);
      std::ostringstream bytes;
      bytes << src.rdbuf();
      src.close();
      const std::string payload = bytes.str();
      const int fd =
          ::open(parked.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC, 0644);
      PQS_CHECK_MSG(fd >= 0, "Journal: cannot append history onto \"" +
                                 parked + "\": " + std::strerror(errno));
      std::size_t written = 0;
      while (written < payload.size()) {
        const ssize_t n =
            ::write(fd, payload.data() + written, payload.size() - written);
        if (n < 0 && errno == EINTR) {
          continue;
        }
        PQS_CHECK_MSG(n >= 0, "Journal: history append failed: " +
                                  std::string(std::strerror(errno)));
        written += static_cast<std::size_t>(n);
      }
      ::fsync(fd);
      ::close(fd);
      PQS_CHECK_MSG(std::remove(path.c_str()) == 0,
                    "Journal: cannot remove rotated \"" + path +
                        "\": " + std::strerror(errno));
    }
  }

  Opened opened;
  // The fresh journal's ids must continue after EVERYTHING parked, not
  // just after `path`'s (now rotated-away, so empty) contents. If this
  // recovery itself crashes, the next one concatenates the fresh file's
  // bytes onto the parked history and parses both generations in ONE
  // id-space — restarting at 1 would let a new generation's completion
  // marker erase a different, still-pending old-generation record, losing
  // an acked job (pinned by ReplayTest.DoubleCrashIdsNeverCollide...).
  opened.journal = std::make_shared<Journal>(path, sync, merged.max_id + 1);
  opened.recovered = std::move(merged);
  return opened;
}

void Journal::finish_recovery(const std::string& path) {
  const std::string parked = recovering_path(path);
  std::ifstream exists(parked, std::ios::binary);
  if (!exists.good()) {
    return;  // nothing parked (fresh start, or already finished)
  }
  exists.close();
  PQS_CHECK_MSG(std::remove(parked.c_str()) == 0,
                "Journal: cannot remove \"" + parked +
                    "\": " + std::strerror(errno));
}

// ---- replay ----------------------------------------------------------------

namespace service {

ReplayOutcome replay_pending(Service& service,
                             const std::vector<JournalRecord>& pending,
                             obs::MetricsRegistry* metrics) {
  ReplayOutcome outcome;
  for (const JournalRecord& record : pending) {
    while (true) {
      try {
        outcome.handles.push_back(
            service.submit(record.spec, record.priority));
        ++outcome.resubmitted;
        break;
      } catch (const OverloadedError&) {
        // The queue is full of earlier replays. Wait for the OLDEST still
        // outstanding to settle — replay must re-execute every record, so
        // overload here is back-pressure, never a drop.
        bool waited = false;
        for (const JobHandle& handle : outcome.handles) {
          if (!handle.finished()) {
            handle.wait();
            waited = true;
            break;
          }
        }
        PQS_CHECK_MSG(waited,
                      "Journal replay: queue full with no replay in flight "
                      "(queue_capacity too small for external traffic "
                      "during replay?)");
      } catch (const CheckFailure& e) {
        // A record from an older build whose spec no longer validates:
        // surface it, skip it, keep replaying the rest.
        outcome.warnings.push_back("journal record " +
                                   std::to_string(record.id) +
                                   " no longer submits: " + e.what());
        ++outcome.skipped;
        break;
      }
    }
  }
  if (metrics != nullptr) {
    metrics->counter("journal.replayed_jobs").add(outcome.resubmitted);
    metrics->counter("journal.replay_skipped").add(outcome.skipped);
  }
  return outcome;
}

}  // namespace service

}  // namespace pqs

// CLI -> ServiceOptions: the shared service-layer knobs. Every binary that
// embeds a pqs::Service spells --threads / --queue-depth identically, the
// same way api/flags.h collapses the request flags — and lives here, not in
// the api layer, so facade-only binaries never pull in the service stack.
#pragma once

#include "common/cli.h"
#include "service/service.h"

namespace pqs::service {

/// Declare and parse --threads (worker pool size) and --queue-depth
/// (bounded queue capacity) into a ServiceOptions. Call before
/// cli.finish().
ServiceOptions parse_service_flags(Cli& cli, unsigned default_threads = 2,
                                   std::size_t default_queue_depth = 256);

}  // namespace pqs::service

// CLI -> ServiceOptions / NetOptions: the shared service-layer knobs. Every
// binary that embeds a pqs::Service spells --threads / --queue-depth /
// --result-cache identically, and every binary that opens a TCP front door
// (pqs_serve, pqs_router; pqs_loadgen shares the connection-shape knobs)
// spells --listen / --max-connections / --inflight-per-conn identically —
// the same way api/flags.h collapses the request flags. Lives here, not in
// the api layer, so facade-only binaries never pull in the service stack.
#pragma once

#include <cstddef>
#include <string>

#include "common/cli.h"
#include "service/journal.h"
#include "service/service.h"

namespace pqs::service {

/// Declare and parse --threads (worker pool size), --queue-depth (bounded
/// queue capacity), and --result-cache (completed reports kept in the
/// result LRU) into a ServiceOptions. Call before cli.finish().
ServiceOptions parse_service_flags(Cli& cli, unsigned default_threads = 2,
                                   std::size_t default_queue_depth = 256);

/// The TCP front-door knobs shared by pqs_serve and pqs_router.
struct NetOptions {
  /// "host:port" to listen on; empty means no TCP listener (pqs_serve then
  /// speaks JSONL on stdin/stdout, its original process shape).
  std::string listen;
  /// Most concurrent connections admitted; one past the bound receives a
  /// single `overloaded` event and is closed — never a silent accept-queue.
  std::size_t max_connections = 64;
  /// Most unanswered submits per connection (0 = unbounded); one past the
  /// bound is rejected with an `overloaded` event naming the cap.
  std::size_t inflight_per_conn = 256;
};

/// Declare and parse --listen / --max-connections / --inflight-per-conn.
/// Call before cli.finish() (unknown flags keep Cli's did-you-mean errors).
NetOptions parse_net_flags(Cli& cli, std::string default_listen = "",
                           std::size_t default_max_connections = 64,
                           std::size_t default_inflight_per_conn = 256);

/// The durability knobs (service/journal.h) shared by pqs_serve and any
/// future journalling binary.
struct JournalOptions {
  /// Write-ahead journal path; empty disables journalling entirely.
  std::string path;
  JournalSync sync = JournalSync::kNone;
};

/// Declare and parse --journal / --journal-sync. Call before cli.finish().
JournalOptions parse_journal_flags(Cli& cli);

}  // namespace pqs::service

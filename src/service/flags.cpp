#include "service/flags.h"

#include <cstdint>

#include "common/check.h"

namespace pqs::service {

ServiceOptions parse_service_flags(Cli& cli, unsigned default_threads,
                                   std::size_t default_queue_depth) {
  ServiceOptions options;
  const auto threads = cli.get_int(
      "threads", static_cast<std::int64_t>(default_threads),
      "service worker threads executing jobs");
  PQS_CHECK_MSG(threads >= 1, "--threads must be >= 1");
  options.threads = static_cast<unsigned>(threads);
  const auto depth = cli.get_int(
      "queue-depth", static_cast<std::int64_t>(default_queue_depth),
      "bounded job-queue capacity (submits beyond it are rejected)");
  PQS_CHECK_MSG(depth >= 1, "--queue-depth must be >= 1");
  options.queue_capacity = static_cast<std::size_t>(depth);
  const auto result_cache = cli.get_int(
      "result-cache",
      static_cast<std::int64_t>(options.result_cache_capacity),
      "completed reports kept in the result LRU (per process — sharding "
      "multiplies the fleet's aggregate cache)");
  PQS_CHECK_MSG(result_cache >= 1, "--result-cache must be >= 1");
  options.result_cache_capacity = static_cast<std::size_t>(result_cache);
  const auto trace_ring = cli.get_int(
      "trace-ring", static_cast<std::int64_t>(options.trace.capacity),
      "completed request traces kept for the `trace` op (0 disables "
      "tracing entirely)");
  PQS_CHECK_MSG(trace_ring >= 0, "--trace-ring must be >= 0");
  options.trace.capacity = static_cast<std::size_t>(trace_ring);
  const auto slow_ms = cli.get_int(
      "slow-ms", 0,
      "slow-request threshold in milliseconds: traced jobs at or over it "
      "are counted, kept, and logged to stderr (0 = off)");
  PQS_CHECK_MSG(slow_ms >= 0, "--slow-ms must be >= 0");
  options.trace.slow_request_ns =
      static_cast<std::uint64_t>(slow_ms) * 1000000ULL;
  return options;
}

NetOptions parse_net_flags(Cli& cli, std::string default_listen,
                           std::size_t default_max_connections,
                           std::size_t default_inflight_per_conn) {
  NetOptions options;
  options.listen = cli.get_string(
      "listen", default_listen,
      "TCP listen address host:port (port 0 picks an ephemeral port; empty "
      "keeps the JSONL-on-stdin process shape)");
  const auto max_connections = cli.get_int(
      "max-connections", static_cast<std::int64_t>(default_max_connections),
      "most concurrent TCP connections admitted; beyond it a connection "
      "gets one `overloaded` event and is closed");
  PQS_CHECK_MSG(max_connections >= 1, "--max-connections must be >= 1");
  options.max_connections = static_cast<std::size_t>(max_connections);
  const auto inflight = cli.get_int(
      "inflight-per-conn",
      static_cast<std::int64_t>(default_inflight_per_conn),
      "most unanswered submits per connection, rejected with an "
      "`overloaded` event beyond it (0 = unbounded)");
  PQS_CHECK_MSG(inflight >= 0, "--inflight-per-conn must be >= 0");
  options.inflight_per_conn = static_cast<std::size_t>(inflight);
  return options;
}

JournalOptions parse_journal_flags(Cli& cli) {
  JournalOptions options;
  options.path = cli.get_string(
      "journal", "",
      "write-ahead journal path: accepted jobs are durable before they are "
      "acked, and unfinished ones replay at the next start (empty = no "
      "journal)");
  const std::string sync = cli.get_string(
      "journal-sync", std::string(to_string(options.sync)),
      "journal fsync policy: none (process-death safe; power loss may lose "
      "the tail) | always (fsync per record)");
  options.sync = parse_journal_sync(sync);
  return options;
}

}  // namespace pqs::service

#include "service/flags.h"

#include "common/check.h"

namespace pqs::service {

ServiceOptions parse_service_flags(Cli& cli, unsigned default_threads,
                                   std::size_t default_queue_depth) {
  ServiceOptions options;
  const auto threads = cli.get_int(
      "threads", static_cast<std::int64_t>(default_threads),
      "service worker threads executing jobs");
  PQS_CHECK_MSG(threads >= 1, "--threads must be >= 1");
  options.threads = static_cast<unsigned>(threads);
  const auto depth = cli.get_int(
      "queue-depth", static_cast<std::int64_t>(default_queue_depth),
      "bounded job-queue capacity (submits beyond it are rejected)");
  PQS_CHECK_MSG(depth >= 1, "--queue-depth must be >= 1");
  options.queue_capacity = static_cast<std::size_t>(depth);
  return options;
}

}  // namespace pqs::service

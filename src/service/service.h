// pqs::Service — the asynchronous, cancellable job layer over pqs::Engine.
//
// Engine::run answers one request on the caller's thread; a production
// deployment has ten thousand requests in flight and cannot burn a thread
// per call. Service is the missing piece: submit(spec) enqueues a job on a
// bounded FIFO+priority queue served by a fixed worker pool and returns a
// JobHandle immediately — status / wait / cancel / progress, the full job
// lifecycle:
//
//     queued ── worker picks up ──> running ──> done
//        │                            │   └───> failed   (adapter threw)
//        └────────── cancel ──────────┴───────> cancelled
//
// Two request-deduplication layers sit in front of the queue:
//   * request coalescing — concurrent submits whose canonical specs match
//     (api::canonical_key: every result-relevant field, marked sets
//     materialized, thread counts ignored) ATTACH to the one in-flight
//     execution; the driver runs once and every attached handle receives
//     the same SearchReport.
//   * a result LRU — a spec resubmitted after completion is served from
//     the cache without executing anything.
//
// Cancellation is real, not advisory: every job owns a qsim::RunControl
// that Engine::run threads through the adapters into the shot loops, so
// cancel() stops a running 2^30-item sweep within one shot-batch.
// Coalescing-aware: cancelling ONE of several attached handles only
// detaches that caller (its handle reads kCancelled); the underlying
// execution stops when the LAST attached handle cancels. A cancelled
// handle never reports kDone.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "api/engine.h"
#include "common/check.h"
#include "common/histogram.h"
#include "common/lru.h"
#include "common/thread_annotations.h"
#include "common/timing.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "qsim/run_control.h"

namespace pqs {

class Journal;  // service/journal.h — the optional write-ahead journal

enum class JobStatus { kQueued, kRunning, kDone, kCancelled, kFailed };

std::string_view to_string(JobStatus status);

/// Thrown by submit() when the bounded queue is at capacity. A distinct type
/// (not a generic CheckFailure) because overload is the one submit failure a
/// front-end must map to an explicit `overloaded` rejection event instead of
/// a request error — admission control is load signaling, not a bug report.
class OverloadedError : public CheckFailure {
 public:
  explicit OverloadedError(const std::string& what) : CheckFailure(what) {}
};

struct ServiceOptions {
  /// Worker threads executing jobs (>= 1).
  unsigned threads = 2;
  /// Most jobs allowed to WAIT in the queue; a submit beyond this throws
  /// (bounded queues surface overload at the edge instead of growing RSS).
  std::size_t queue_capacity = 256;
  /// Completed SearchReports kept for repeat submits (LRU).
  std::size_t result_cache_capacity = 128;
  /// Bound of the shared Engine's plan cache.
  std::size_t plan_cache_capacity = Planner::kDefaultCapacity;
  /// Optional write-ahead journal (service/journal.h). When set, every
  /// fresh execution appends an `accepted` record BEFORE submit returns
  /// (coalesced attachments and cache hits ride the original record) and a
  /// completion marker when it settles — except during shutdown, where
  /// markers are deliberately suppressed so a restart replays the
  /// interrupted jobs.
  std::shared_ptr<Journal> journal;
  /// Where this Service registers its instruments (obs/metrics.h). Null —
  /// the default — means a PRIVATE registry owned by the Service: unit
  /// tests build many Services per process and assert exact per-instance
  /// counts, which a shared registry would cross-contaminate. pqs_serve
  /// passes &obs::MetricsRegistry::global() so service, net, and journal
  /// telemetry land in one fleet-scrapable catalog.
  obs::MetricsRegistry* metrics = nullptr;
  /// Request tracing (obs/trace.h): ring capacity, slow threshold. The
  /// default keeps tracing ON (capacity 256, slow log off) — the bench
  /// pins the enabled-path cost under 1%; set trace.capacity = 0 to
  /// reduce a job to the bare null-check path.
  obs::TraceStoreOptions trace;
};

/// Monotonic counters of one Service (a deployment's dashboard numbers).
/// stats() also fills in the cache-layer counters that live inside the
/// Planner and the result LRU, so one snapshot answers the whole `stats` op.
struct ServiceStats {
  std::uint64_t submitted = 0;          ///< submit() calls accepted
  std::uint64_t coalesced_submits = 0;  ///< submits attached to an in-flight job
  std::uint64_t cache_hits = 0;   ///< submits served from the result cache
  std::uint64_t rejected = 0;     ///< submits refused by the bounded queue
  std::uint64_t executed = 0;     ///< jobs a worker actually ran
  std::uint64_t done = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t failed = 0;
  // -- surfaced cache counters (origin: api/planner.h and common/lru.h) --
  std::uint64_t plan_cache_hits = 0;
  std::uint64_t plan_cache_misses = 0;
  std::uint64_t plan_cache_evictions = 0;
  std::uint64_t plan_cache_size = 0;
  std::uint64_t result_cache_evictions = 0;
  std::uint64_t result_cache_size = 0;

  /// Fraction of accepted submits that attached to an in-flight execution.
  double coalescing_hit_rate() const {
    return submitted == 0 ? 0.0
                          : static_cast<double>(coalesced_submits) /
                                static_cast<double>(submitted);
  }
};

/// Per-stage latency distributions of the jobs this Service executed,
/// recorded from the SearchReport timing split at completion (cache-served
/// repeats execute nothing and are deliberately not recorded).
struct StageHistograms {
  LogHistogram queue;  ///< queue_ns: time waiting for a worker
  LogHistogram plan;   ///< plan_ns: schedule search (~0 on plan-cache hits)
  LogHistogram exec;   ///< exec_ns: the algorithm itself
};

namespace detail {

/// The shared state of one job. Lifecycle fields are guarded by `mutex`
/// (machine-checked: common/thread_annotations.h); the RunControl and the
/// attachment counter are lock-free so the shot loops and cancel() never
/// contend with waiters. Lock order where both are held: Service::mutex_
/// before Job::mutex, never the reverse.
struct Job {
  SearchSpec spec;   ///< canonicalized: marked materialized, no predicate
  std::string key;   ///< api::canonical_key(spec)
  /// Queue position; written only by Service with Service::mutex_ held.
  int priority = 0;
  std::uint64_t seq = 0;
  /// Journal record id of this execution's `accepted` line (0 = the
  /// Service has no journal, or the job was served from the result cache
  /// and executed nothing). Written once in submit() before the job is
  /// shared; immutable afterwards.
  std::uint64_t journal_id = 0;

  qsim::RunControl control;
  std::atomic<std::uint64_t> attached{0};  ///< live uncancelled handles
  Stopwatch queued_at;                     ///< started at submit
  /// This execution's span timeline, or null (tracing disabled, or the
  /// job was served from the result cache and executed nothing). Written
  /// once in submit() before the job is shared — same contract as
  /// journal_id — and also reachable through control's SpanSink.
  std::shared_ptr<obs::Trace> trace;

  mutable Mutex mutex;
  std::condition_variable_any cv;
  JobStatus status PQS_GUARDED_BY(mutex) = JobStatus::kQueued;
  SearchReport report PQS_GUARDED_BY(mutex);  // valid once kDone
  std::string error PQS_GUARDED_BY(mutex);    // valid once kFailed
};

}  // namespace detail

/// One caller's attachment to a job. Handles are cheap to copy (copies
/// share the attachment); independent submits of the same spec get
/// independent attachments to the same underlying job.
class JobHandle {
 public:
  /// Lifecycle state as seen by THIS handle: a cancelled handle reads
  /// kCancelled even if the coalesced execution later completes for the
  /// other attached callers.
  JobStatus status() const;
  /// True once status() is kDone / kCancelled / kFailed.
  bool finished() const;
  /// Completed fraction of the underlying execution in [0, 1].
  double progress() const;

  /// Block until finished; returns the final status.
  JobStatus wait() const;
  /// Block up to `timeout`; returns the (possibly still running) status.
  JobStatus wait_for(std::chrono::milliseconds timeout) const;

  /// Cancel this attachment. Queued jobs never start; a running job stops
  /// at its next checkpoint — unless other callers are still attached, in
  /// which case only this handle detaches and the execution continues for
  /// them. Idempotent.
  void cancel();

  /// The report. Requires status() == kDone (throws otherwise).
  const SearchReport& report() const;
  /// The failure message. Requires status() == kFailed (throws otherwise).
  const std::string& error() const;

  /// The canonicalized spec this job executes and its coalescing key.
  const SearchSpec& spec() const;
  const std::string& key() const;

  /// The trace id of the underlying execution (0 = untraced: tracing
  /// disabled, or served from the result cache). Coalesced handles share
  /// the execution's id.
  std::uint64_t trace_id() const;
  /// The live span timeline (null when untraced). Spans keep arriving
  /// while the job runs; obs::Trace reads are internally synchronized.
  std::shared_ptr<const obs::Trace> trace() const;

 private:
  friend class Service;
  JobHandle(std::shared_ptr<detail::Job> job,
            std::shared_ptr<std::atomic<bool>> cancelled)
      : job_(std::move(job)), cancelled_(std::move(cancelled)) {}

  JobStatus status_locked() const PQS_REQUIRES(job_->mutex);

  std::shared_ptr<detail::Job> job_;
  std::shared_ptr<std::atomic<bool>> cancelled_;  ///< this attachment only
};

class Service {
 public:
  /// A service over the built-in registry (all 13 drivers).
  explicit Service(ServiceOptions options = {});
  /// A service over a caller-assembled registry (custom algorithms — the
  /// hook the coalescing tests use to count driver executions).
  Service(ServiceOptions options, Registry registry);

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Cancels everything still queued or running, then joins the workers.
  ~Service();

  /// Enqueue one request (validated here, synchronously — a malformed spec
  /// throws at the submission site, not inside a worker). Higher priority
  /// runs first; FIFO within a priority level; a coalesced submit promotes
  /// the shared queued job to the highest attached priority. Throws when
  /// the queue is at capacity. Predicate specs are materialized here, once.
  JobHandle submit(const SearchSpec& spec, int priority = 0);

  /// Jobs waiting in the queue right now.
  std::size_t queue_depth() const;
  ServiceStats stats() const;
  /// Snapshot of the per-stage latency histograms (copies; the live ones
  /// keep accumulating).
  StageHistograms latency_histograms() const;
  const Engine& engine() const { return engine_; }
  const ServiceOptions& options() const { return options_; }

  /// The registry this Service's instruments live in: the options-supplied
  /// one, or the private per-instance fallback.
  obs::MetricsRegistry& metrics() const { return *metrics_; }
  /// Refresh the sampled gauges (queue depth, cache sizes and evictions)
  /// and return a full registry snapshot — what the `metrics` wire op
  /// dumps and pqs_router merges fleet-wide.
  Json metrics_snapshot() const;
  /// The ring of completed request traces (obs/trace.h); the `trace` wire
  /// op reads timelines out of here.
  obs::TraceStore& trace_store() const { return trace_store_; }

 private:
  void worker_loop() PQS_EXCLUDES(mutex_);
  void execute(const std::shared_ptr<detail::Job>& job) PQS_EXCLUDES(mutex_);
  /// Move a job to a terminal state, publish the result, wake waiters.
  void finish(const std::shared_ptr<detail::Job>& job, JobStatus status,
              SearchReport report, std::string error) PQS_EXCLUDES(mutex_);
  /// Settle every fully-cancelled job still waiting in the queue (called
  /// with mutex_ held when the queue hits capacity): cancellation must be
  /// able to shed load, not just mark jobs a worker will discard later.
  void reap_cancelled_locked() PQS_REQUIRES(mutex_);
  JobHandle attach(const std::shared_ptr<detail::Job>& job);

  ServiceOptions options_;
  Engine engine_;

  /// The private fallback registry; referenced by metrics_ iff
  /// options.metrics was null. Declared before the instruments (they bind
  /// into it at construction).
  mutable obs::MetricsRegistry own_metrics_;
  obs::MetricsRegistry* metrics_;  ///< never null after construction

  /// Hot-path instrument handles, resolved once at construction: name
  /// lookups take the registry mutex, these references never do. The
  /// counters replace the old ServiceStats member — ServiceStats is now a
  /// snapshot VIEW assembled by stats(), served from the registry.
  struct Instruments {
    obs::Counter& submitted;
    obs::Counter& coalesced_submits;
    obs::Counter& cache_hits;
    obs::Counter& rejected;
    obs::Counter& executed;
    obs::Counter& done;
    obs::Counter& cancelled;
    obs::Counter& failed;
    obs::AtomicHistogram& queue_ns;
    obs::AtomicHistogram& plan_ns;
    obs::AtomicHistogram& exec_ns;
    obs::Gauge& queue_depth;
    obs::Gauge& plan_cache_size;
    obs::Gauge& plan_cache_evictions;
    obs::Gauge& result_cache_size;
    obs::Gauge& result_cache_evictions;
    static Instruments bind(obs::MetricsRegistry& registry);
  };
  Instruments inst_;

  mutable obs::TraceStore trace_store_;

  /// Guards the queue, the coalescing index, and the result cache
  /// (annotated below — the analysis rejects unlocked access). The event
  /// counters moved into the registry's lock-free instruments above.
  mutable Mutex mutex_;
  std::condition_variable_any queue_cv_;
  /// (-priority, sequence) -> job: begin() is the next job to run.
  std::map<std::pair<int, std::uint64_t>, std::shared_ptr<detail::Job>>
      queue_ PQS_GUARDED_BY(mutex_);
  /// canonical key -> queued-or-running job (the coalescing index).
  std::map<std::string, std::shared_ptr<detail::Job>> inflight_
      PQS_GUARDED_BY(mutex_);
  LruMap<std::string, SearchReport> results_ PQS_GUARDED_BY(mutex_);
  std::uint64_t next_seq_ PQS_GUARDED_BY(mutex_) = 0;
  bool stopping_ PQS_GUARDED_BY(mutex_) = false;

  std::vector<std::thread> workers_;  ///< constructed last, joined first
};

}  // namespace pqs

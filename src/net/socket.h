// The POSIX socket substrate of the network subsystem — and the ONLY file
// whose implementation may issue raw ::socket / ::bind / ::listen /
// ::accept / ::connect calls (tools/pqs_lint.py, rule `raw-socket`,
// enforces this). Everything above (session, server, router, loadgen)
// speaks in these types, so the fiddly parts — partial writes, EINTR,
// SIGPIPE suppression, shutdown-to-unblock, ephemeral-port discovery —
// are decided once.
//
// Dependency-free by design: plain blocking sockets and a thread per
// connection. At the fleet sizes this repository benches (tens of clients
// per node, a router fanning across worker processes) that is the simple
// shape that saturates the Service's worker pool; an event loop would add
// machinery without moving the bottleneck, which is the search itself.
//
// Threading contract (what keeps TSan and the capability analysis quiet
// without a lock in this layer): at most one thread reads a Socket while at
// most one other thread writes it; shutdown_both() may be called from any
// thread to unblock both (it does not invalidate the descriptor — only the
// owner, single-threaded by then, closes it via RAII).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

namespace pqs::net {

/// A parsed "host:port" endpoint.
struct Addr {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  std::string to_string() const;
};

/// Parse "host:port" ("127.0.0.1:7401", "localhost:0", "[::1]:7401").
/// Throws CheckFailure naming the defect.
Addr parse_hostport(const std::string& text);

/// One connected TCP stream. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  /// Adopt an already-connected descriptor (accept / connect paths).
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }

  /// Write the whole buffer (looping over partial sends, EINTR-safe,
  /// SIGPIPE suppressed). false once the peer is gone — the caller's signal
  /// to cancel that peer's in-flight work, not a crash.
  bool write_all(std::string_view data);

  /// Read whatever is available: >0 bytes read, 0 orderly EOF, -1 error
  /// (including shutdown_both() from another thread).
  long read_some(char* buffer, std::size_t capacity);

  /// Unblock any reader/writer parked on this socket (both directions).
  /// Safe from any thread; the descriptor stays valid until destruction.
  void shutdown_both();

 private:
  int fd_ = -1;
};

/// Buffered newline framing over a Socket — the JSONL wire unit. Carriage
/// returns before the newline are stripped so `nc`-style clients work.
class LineReader {
 public:
  explicit LineReader(Socket& socket) : socket_(socket) {}

  /// Next complete line (without its terminator). false on EOF/error; a
  /// trailing unterminated fragment is surfaced as a final line so a peer
  /// that forgot the last '\n' still gets its request answered.
  bool next_line(std::string& line);

 private:
  Socket& socket_;
  std::string buffer_;
  std::size_t scanned_ = 0;  ///< prefix of buffer_ known to lack '\n'
};

/// A bound, listening TCP endpoint.
class Listener {
 public:
  Listener() = default;
  ~Listener();

  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Bind + listen on `addr` (SO_REUSEADDR; addr.port 0 asks the kernel for
  /// an ephemeral port — read the assignment back from port()). Throws
  /// CheckFailure on failure (address in use, bad host, ...).
  static Listener bind_and_listen(const Addr& addr, int backlog = 128);

  /// Block for the next connection (TCP_NODELAY preset). An invalid Socket
  /// means shut_down() was called — the accept loop's exit signal.
  Socket accept_conn();

  /// The actually-bound port (resolves port 0).
  std::uint16_t port() const { return port_; }
  bool valid() const { return fd_ >= 0; }

  /// Unblock accept_conn() from any thread; further accepts return invalid.
  void shut_down();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Connect to a TCP endpoint (TCP_NODELAY preset). Throws CheckFailure.
Socket connect_to(const Addr& addr);

/// connect_to with retry until `deadline` elapses — for clients racing a
/// server that is still binding (CI smoke scripts, tests).
Socket connect_with_retry(const Addr& addr, std::chrono::milliseconds deadline);

}  // namespace pqs::net

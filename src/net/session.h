// One JSONL protocol session over a pqs::Service — the piece pqs_serve's
// stdin loop and every TCP connection share.
//
// A session consumes request lines (submit / cancel / stats / metrics /
// trace) and produces event lines (accepted / overloaded / cancelling /
// stats / metrics / trace / result / error).
// Protocol contract, identical on every transport:
//
//   * every request line is answered SYNCHRONOUSLY by exactly one ack event
//     (`accepted`, `overloaded`, `cancelling`, `stats`, or `error`) before
//     the next line is processed — clients and the router pair acks to
//     requests by order, no ids needed on errors;
//   * `result` events are asynchronous and arrive in SUBMISSION order (a
//     dedicated emitter thread walks the pending jobs front to back), so at
//     fixed seeds — with timing zeroed unless with_timing — the result
//     stream is a byte-deterministic function of the request stream;
//   * overload is explicit, never silent latency: a submit past the
//     Service's bounded queue or past this session's inflight cap gets an
//     immediate `overloaded` event naming the reason.
//
// End-of-input has two shapes because transports differ: drain() (stdin
// EOF: the pipe is done but the reader still wants its results) blocks
// until every accepted job is announced; abort() (TCP peer gone) cancels
// every unannounced job through its RunControl — a dropped connection must
// shed its load, not finish work nobody will read.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "common/thread_annotations.h"
#include "service/service.h"

namespace pqs::net {

struct SessionOptions {
  /// Emit real queue/plan/exec timing in result payloads (off keeps the
  /// output byte-deterministic at fixed seeds).
  bool with_timing = false;
  /// Most unanswered submits in flight on this session (0 = unbounded).
  std::size_t inflight_limit = 0;
};

/// One request line, parsed and validated. Parsing is PURE — no Service,
/// no I/O, no session state — which is what lets the fuzz target
/// (fuzz/fuzz_wire_line.cpp) and pqs_replay drive the exact code every
/// transport runs, without standing a service up.
struct Request {
  enum class Op { kSubmit, kCancel, kStats, kMetrics, kTrace };
  Op op = Op::kStats;
  /// Required (non-empty) for submit/cancel/trace; optional echo token for
  /// stats/metrics.
  std::string id;
  int priority = 0;  ///< submit only
  SearchSpec spec;   ///< submit only; validated by api::spec_from_json
};

/// Parse one request line. Throws CheckFailure (never anything else, never
/// UB — fuzz-enforced) on malformed JSON, an unknown op, a missing id, or
/// an invalid spec.
Request parse_request(const std::string& line);

class Session {
 public:
  /// Sink for one complete event line (no terminator). Returns false when
  /// the peer is unreachable — the session then aborts itself. Called from
  /// both the session's thread and its emitter thread, but never
  /// concurrently (the session serializes).
  using WriteLine = std::function<bool(const std::string&)>;

  Session(Service& service, WriteLine write_line, SessionOptions options = {});
  /// Aborts (cancelling any still-unannounced jobs) unless drained first.
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Process one request line (empty lines are ignored). Call from one
  /// thread only.
  void handle_line(const std::string& line);

  /// Input exhausted cleanly: block until every accepted job's result is
  /// announced, then stop the emitter.
  void drain();

  /// Peer gone: cancel every unannounced job via its RunControl, emit
  /// nothing more. Idempotent; safe after drain().
  void abort();

  /// Unanswered submits right now (the inflight cap's measure).
  std::size_t inflight() const;

 private:
  void emitter_loop();
  /// Serialize + write one event; on a dead sink, aborts the session.
  void emit(const Json& event);
  void emit_error(const std::string& message);
  /// The extended `stats` event: deployment shape, queue depth, counters,
  /// coalescing hit-rate, cache counters, per-stage latency histograms.
  Json stats_event(const std::string& id) const;
  /// The `metrics` event: the Service registry's full snapshot (gauges
  /// refreshed), under a "metrics" key so the router can lift and merge it.
  Json metrics_event(const std::string& id) const;
  /// The `trace` event for a previously submitted job id: its span
  /// timeline, or an error event when the id is unknown / evicted.
  Json trace_event(const std::string& id) const PQS_EXCLUDES(mutex_);
  void remember_trace(const std::string& id,
                      std::shared_ptr<const obs::Trace> trace)
      PQS_EXCLUDES(mutex_);

  Service& service_;
  SessionOptions options_;

  /// Serializes event lines onto the sink (conn thread acks vs emitter
  /// results) and guards the peer-gone latch.
  mutable Mutex out_mutex_;
  WriteLine write_line_ PQS_GUARDED_BY(out_mutex_);
  bool peer_gone_ PQS_GUARDED_BY(out_mutex_) = false;

  /// Guards the submission-order queue and the cancel index. Never held
  /// together with out_mutex_ (emit() runs outside mutex_, and a failed
  /// write releases out_mutex_ before abort() takes mutex_).
  mutable Mutex mutex_;
  std::condition_variable_any cv_;
  /// (id, handle) in submission order; the emitter announces front first.
  std::deque<std::pair<std::string, JobHandle>> pending_ PQS_GUARDED_BY(mutex_);
  /// id -> handle for every unannounced job (cancel ops, abort, the cap).
  std::map<std::string, JobHandle> jobs_ PQS_GUARDED_BY(mutex_);
  bool input_done_ PQS_GUARDED_BY(mutex_) = false;
  bool aborted_ PQS_GUARDED_BY(mutex_) = false;

  /// request id -> span timeline, kept PAST completion (the `trace` op
  /// arrives after the result) in a bounded FIFO — at the cap the oldest
  /// remembered id is forgotten. Re-submitting a finished id replaces its
  /// timeline in place.
  static constexpr std::size_t kTraceIndexCapacity = 4096;
  std::map<std::string, std::shared_ptr<const obs::Trace>> traces_
      PQS_GUARDED_BY(mutex_);
  std::deque<std::string> trace_order_ PQS_GUARDED_BY(mutex_);

  std::thread emitter_;  ///< constructed last, joined by drain()/~Session
};

}  // namespace pqs::net

#include "net/socket.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/timing.h"

namespace pqs::net {

namespace {

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

void set_nodelay(int fd) {
  // Every payload here is a complete JSONL line that the peer acts on
  // immediately; Nagle would serialize the request/ack ping-pong into
  // 40 ms stalls. Best-effort: a socket without TCP_NODELAY still works.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// getaddrinfo for one numeric-port TCP endpoint. Throws on failure.
struct ResolvedAddr {
  explicit ResolvedAddr(const Addr& addr) {
    ::addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_NUMERICSERV;
    const std::string port = std::to_string(addr.port);
    const int rc = ::getaddrinfo(addr.host.c_str(), port.c_str(), &hints,
                                 &info);
    PQS_CHECK_MSG(rc == 0, "cannot resolve \"" + addr.to_string() +
                               "\": " + ::gai_strerror(rc));
  }
  ~ResolvedAddr() { ::freeaddrinfo(info); }
  ResolvedAddr(const ResolvedAddr&) = delete;
  ResolvedAddr& operator=(const ResolvedAddr&) = delete;

  ::addrinfo* info = nullptr;
};

}  // namespace

std::string Addr::to_string() const {
  if (host.find(':') != std::string::npos) {  // IPv6 literal
    return "[" + host + "]:" + std::to_string(port);
  }
  return host + ":" + std::to_string(port);
}

Addr parse_hostport(const std::string& text) {
  Addr addr;
  std::string port_text;
  if (!text.empty() && text.front() == '[') {  // "[v6literal]:port"
    const auto close = text.find(']');
    PQS_CHECK_MSG(close != std::string::npos,
                  "bad listen address \"" + text + "\": unclosed '['");
    addr.host = text.substr(1, close - 1);
    PQS_CHECK_MSG(close + 1 < text.size() && text[close + 1] == ':',
                  "bad listen address \"" + text + "\": expected ]:port");
    port_text = text.substr(close + 2);
  } else {
    const auto colon = text.rfind(':');
    PQS_CHECK_MSG(colon != std::string::npos,
                  "bad listen address \"" + text + "\": expected host:port");
    addr.host = text.substr(0, colon);
    port_text = text.substr(colon + 1);
  }
  PQS_CHECK_MSG(!addr.host.empty(),
                "bad listen address \"" + text + "\": empty host");
  PQS_CHECK_MSG(!port_text.empty() &&
                    port_text.find_first_not_of("0123456789") ==
                        std::string::npos,
                "bad listen address \"" + text + "\": port must be numeric");
  const unsigned long port = std::stoul(port_text);
  PQS_CHECK_MSG(port <= 65535,
                "bad listen address \"" + text + "\": port > 65535");
  addr.port = static_cast<std::uint16_t>(port);
  return addr;
}

// ---- Socket ----------------------------------------------------------------

Socket::~Socket() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Socket::Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      ::close(fd_);
    }
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

bool Socket::write_all(std::string_view data) {
  if (fd_ < 0) {
    return false;
  }
  while (!data.empty()) {
    // MSG_NOSIGNAL: a vanished peer must surface as `false` (cancel their
    // jobs), not as a process-killing SIGPIPE.
    const ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

long Socket::read_some(char* buffer, std::size_t capacity) {
  if (fd_ < 0) {
    return -1;
  }
  while (true) {
    const ssize_t n = ::recv(fd_, buffer, capacity, 0);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    return static_cast<long>(n);
  }
}

void Socket::shutdown_both() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
  }
}

// ---- LineReader ------------------------------------------------------------

bool LineReader::next_line(std::string& line) {
  while (true) {
    const auto newline = buffer_.find('\n', scanned_);
    if (newline != std::string::npos) {
      line.assign(buffer_, 0, newline);
      if (!line.empty() && line.back() == '\r') {
        line.pop_back();
      }
      buffer_.erase(0, newline + 1);
      scanned_ = 0;
      return true;
    }
    scanned_ = buffer_.size();
    char chunk[4096];
    const long n = socket_.read_some(chunk, sizeof(chunk));
    if (n <= 0) {
      if (buffer_.empty()) {
        return false;
      }
      line = std::move(buffer_);  // unterminated final fragment
      buffer_.clear();
      scanned_ = 0;
      return true;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

// ---- Listener --------------------------------------------------------------

Listener::~Listener() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Listener::Listener(Listener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      port_(std::exchange(other.port_, 0)) {}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      ::close(fd_);
    }
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
  }
  return *this;
}

Listener Listener::bind_and_listen(const Addr& addr, int backlog) {
  const ResolvedAddr resolved(addr);
  Listener listener;
  std::string last_error = "no usable address";
  for (::addrinfo* ai = resolved.info; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_error = errno_text("socket");
      continue;
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) != 0 ||
        ::listen(fd, backlog) != 0) {
      last_error = errno_text("bind/listen");
      ::close(fd);
      continue;
    }
    ::sockaddr_storage bound{};
    ::socklen_t bound_len = sizeof(bound);
    PQS_CHECK_MSG(::getsockname(fd, reinterpret_cast<::sockaddr*>(&bound),
                                &bound_len) == 0,
                  errno_text("getsockname"));
    listener.fd_ = fd;
    listener.port_ =
        bound.ss_family == AF_INET6
            ? ntohs(reinterpret_cast<::sockaddr_in6*>(&bound)->sin6_port)
            : ntohs(reinterpret_cast<::sockaddr_in*>(&bound)->sin_port);
    return listener;
  }
  PQS_CHECK_MSG(false, "cannot listen on \"" + addr.to_string() +
                           "\": " + last_error);
  return listener;  // unreachable
}

Socket Listener::accept_conn() {
  while (fd_ >= 0) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      set_nodelay(fd);
      return Socket(fd);
    }
    if (errno == EINTR || errno == ECONNABORTED) {
      continue;
    }
    break;  // EINVAL after shut_down(), or a real accept failure
  }
  return Socket();
}

void Listener::shut_down() {
  if (fd_ >= 0) {
    // On a listening socket, shutdown() makes blocked and future accepts
    // fail immediately — the portable way to stop an accept loop without
    // closing a descriptor another thread still holds.
    ::shutdown(fd_, SHUT_RDWR);
  }
}

// ---- connect ---------------------------------------------------------------

Socket connect_to(const Addr& addr) {
  const ResolvedAddr resolved(addr);
  std::string last_error = "no usable address";
  for (::addrinfo* ai = resolved.info; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_error = errno_text("socket");
      continue;
    }
    int rc;
    do {
      rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
      last_error = errno_text("connect");
      ::close(fd);
      continue;
    }
    set_nodelay(fd);
    return Socket(fd);
  }
  PQS_CHECK_MSG(false, "cannot connect to \"" + addr.to_string() +
                           "\": " + last_error);
  return Socket();  // unreachable
}

Socket connect_with_retry(const Addr& addr,
                          std::chrono::milliseconds deadline) {
  const Stopwatch watch;
  while (true) {
    try {
      return connect_to(addr);
    } catch (const CheckFailure&) {
      if (watch.millis() >= static_cast<double>(deadline.count())) {
        throw;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
}

}  // namespace pqs::net

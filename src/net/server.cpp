#include "net/server.h"

#include <string>
#include <utility>

#include "common/check.h"
#include "common/json.h"

namespace pqs::net {

Acceptor::Acceptor(AcceptorOptions options, Handler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {
  PQS_CHECK_MSG(options_.max_connections >= 1,
                "Acceptor needs max_connections >= 1");
  PQS_CHECK_MSG(handler_ != nullptr, "Acceptor needs a connection handler");
}

Acceptor::~Acceptor() { stop(); }

void Acceptor::start() {
  PQS_CHECK_MSG(!listener_.has_value(), "Acceptor already started");
  listener_ = Listener::bind_and_listen(options_.listen);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

std::uint16_t Acceptor::port() const {
  PQS_CHECK_MSG(listener_.has_value(), "Acceptor not started");
  return listener_->port();
}

std::size_t Acceptor::live_connections() const {
  LockGuard lock(mutex_);
  std::size_t live = 0;
  for (const auto& conn : conns_) {
    if (!conn->done.load()) {
      ++live;
    }
  }
  return live;
}

void Acceptor::reap_finished_locked() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->done.load()) {
      (*it)->thread.join();  // finished: the join returns immediately
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void Acceptor::accept_loop() {
  while (true) {
    Socket socket = listener_->accept_conn();
    if (!socket.valid()) {
      return;  // shut_down() — the stop signal
    }
    LockGuard lock(mutex_);
    if (stopping_) {
      return;
    }
    reap_finished_locked();
    if (conns_.size() >= options_.max_connections) {
      // Admission control at the door: the rejected peer learns WHY,
      // immediately, instead of queueing into silent latency.
      Json event = Json::make_object();
      event["event"] = "overloaded";
      event["reason"] = "max connections (" +
                        std::to_string(options_.max_connections) + ") reached";
      socket.write_all(event.dump() + "\n");
      if (options_.metrics != nullptr) {
        options_.metrics->counter("net.rejected_connections").add();
      }
      continue;  // socket closes here (RAII)
    }
    if (options_.metrics != nullptr) {
      options_.metrics->counter("net.accepted_connections").add();
    }
    auto conn = std::make_shared<Conn>();
    conn->socket = std::move(socket);
    conns_.push_back(conn);
    conn->thread = std::thread([this, conn] {
      handler_(conn->socket);
      // One disconnect per admitted connection, counted when the handler
      // returns — EOF, error, and server-stop all end here.
      if (options_.metrics != nullptr) {
        options_.metrics->counter("net.disconnects").add();
      }
      conn->done.store(true);
    });
  }
}

void Acceptor::stop() {
  {
    LockGuard lock(mutex_);
    if (stopping_) {
      return;
    }
    stopping_ = true;
  }
  if (listener_.has_value()) {
    listener_->shut_down();
  }
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  std::vector<std::shared_ptr<Conn>> conns;
  {
    LockGuard lock(mutex_);
    conns.swap(conns_);
  }
  for (const auto& conn : conns) {
    conn->socket.shutdown_both();  // unblocks the connection's reader
  }
  for (const auto& conn : conns) {
    if (conn->thread.joinable()) {
      conn->thread.join();
    }
  }
}

NetServer::NetServer(Service& service, NetServerOptions options)
    : acceptor_(
          AcceptorOptions{options.listen, options.max_connections,
                          options.metrics},
          [&service, session_options = options.session](Socket& socket) {
            Session session(
                service,
                [&socket](const std::string& line) {
                  return socket.write_all(line + "\n");
                },
                session_options);
            LineReader reader(socket);
            std::string line;
            while (reader.next_line(line)) {
              session.handle_line(line);
            }
            // EOF or error: the peer is gone. Cancel its in-flight jobs —
            // a dropped connection sheds load (clients keep the connection
            // open until they have read every result they want).
            session.abort();
          }) {}

}  // namespace pqs::net

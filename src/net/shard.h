// Canonical-key sharding: which worker process owns a request.
//
// The router's entire correctness story is that requests with equal
// api::canonical_key always land on the same worker — then the Service-layer
// request coalescing and the result LRU, both keyed on that exact string,
// stay shard-local for free: no cross-node cache protocol, and the fleet's
// aggregate cache capacity grows linearly with worker count.
//
// The hash must therefore be STABLE — across processes, runs, platforms,
// and standard libraries (std::hash promises none of that) — or a restarted
// router would silently re-home every key and cold its whole fleet's
// caches. FNV-1a 64-bit is the boring, dependency-free choice; the golden
// values in tests/test_net.cpp pin it forever.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "common/check.h"

namespace pqs::net {

/// FNV-1a 64-bit over the bytes of `text`.
constexpr std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// The worker index in [0, n_workers) that owns `canonical_key`.
inline std::size_t shard_for_key(std::string_view canonical_key,
                                 std::size_t n_workers) {
  PQS_CHECK_MSG(n_workers >= 1, "shard_for_key needs n_workers >= 1");
  return static_cast<std::size_t>(fnv1a(canonical_key) %
                                  static_cast<std::uint64_t>(n_workers));
}

}  // namespace pqs::net

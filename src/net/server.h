// The TCP front door: accept loop, connection admission, per-connection
// session threads.
//
// Acceptor is the transport half, reusable by anything that answers
// connections (pqs_serve's NetServer below, pqs_router's fleet front):
// it binds, accepts, enforces the max-connections bound — a connection past
// the bound receives one explicit `overloaded` event and is closed, never a
// silently growing backlog — and runs one handler thread per admitted
// connection. stop() shuts the listener down, unblocks every connection's
// reader via Socket::shutdown_both, and joins all threads.
//
// NetServer is the policy half for a search worker: each admitted
// connection runs a net::Session over the shared pqs::Service, so the
// JSONL protocol, admission events, priority lanes, and submission-order
// result streaming are byte-identical to the stdin transport. When a
// connection drops (read EOF or a failed write), its session aborts —
// every job only that connection was attached to is cancelled through its
// RunControl, so a vanished client sheds its load instead of finishing
// work nobody will read. Clients therefore keep the connection open until
// they have read all their results (the loadgen contract).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "net/session.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "service/service.h"

namespace pqs::net {

struct AcceptorOptions {
  Addr listen;  ///< port 0 picks an ephemeral port; see Acceptor::port()
  /// Most concurrent connections admitted (the bounded-accept knob).
  std::size_t max_connections = 64;
  /// When set, the accept loop counts `net.accepted_connections`,
  /// `net.rejected_connections`, and `net.disconnects` here (pqs_serve
  /// passes the global registry; null keeps the transport metrics-free).
  obs::MetricsRegistry* metrics = nullptr;
};

class Acceptor {
 public:
  /// Runs on the connection's own thread; the socket stays valid for the
  /// duration of the call. Return = connection over (socket closes).
  using Handler = std::function<void(Socket&)>;

  Acceptor(AcceptorOptions options, Handler handler);
  ~Acceptor();  // stop()

  Acceptor(const Acceptor&) = delete;
  Acceptor& operator=(const Acceptor&) = delete;

  /// Bind + listen + start accepting. Throws CheckFailure if the address
  /// is unusable; after it returns, port() is connectable.
  void start();
  /// Stop accepting, unblock and join every connection. Idempotent.
  void stop();

  /// The bound port (resolves a port-0 request).
  std::uint16_t port() const;
  /// Admitted connections still running (finished ones are reaped lazily).
  std::size_t live_connections() const;

 private:
  struct Conn {
    Socket socket;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void reap_finished_locked() PQS_REQUIRES(mutex_);

  AcceptorOptions options_;
  Handler handler_;
  std::optional<Listener> listener_;
  std::thread accept_thread_;

  mutable Mutex mutex_;
  std::vector<std::shared_ptr<Conn>> conns_ PQS_GUARDED_BY(mutex_);
  bool stopping_ PQS_GUARDED_BY(mutex_) = false;
};

struct NetServerOptions {
  Addr listen;
  std::size_t max_connections = 64;
  SessionOptions session;
  /// Forwarded to AcceptorOptions::metrics.
  obs::MetricsRegistry* metrics = nullptr;
};

/// A pqs::Service behind a TCP listener: one net::Session per connection.
class NetServer {
 public:
  NetServer(Service& service, NetServerOptions options);

  void start() { acceptor_.start(); }
  void stop() { acceptor_.stop(); }
  std::uint16_t port() const { return acceptor_.port(); }
  std::size_t live_connections() const { return acceptor_.live_connections(); }

 private:
  Acceptor acceptor_;
};

}  // namespace pqs::net

#include "net/session.h"

#include <cmath>
#include <optional>

#include "api/serialize.h"
#include "common/check.h"
#include "common/json.h"
#include "qsim/isa.h"

namespace pqs::net {

namespace {

Json result_event(const std::string& id, const JobHandle& handle,
                  bool with_timing) {
  const JobStatus status = handle.status();
  Json event = Json::make_object();
  event["event"] = "result";
  event["id"] = id;
  event["status"] = std::string(to_string(status));
  if (status == JobStatus::kDone) {
    SearchReport report = handle.report();
    if (!with_timing) {
      // The answer fields are deterministic at fixed seed; these four
      // describe how the run happened to execute (wall clock, cache
      // warmth under racing workers) and would break byte-for-byte diffs.
      report.queue_ns = 0;
      report.plan_ns = 0;
      report.exec_ns = 0;
      report.plan_cache_hit = false;
    }
    event["report"] = api::to_json(report);
  } else if (status == JobStatus::kFailed) {
    event["error"] = handle.error();
  }
  return event;
}

Json overloaded_event(const std::string& id, const std::string& reason) {
  Json event = Json::make_object();
  event["event"] = "overloaded";
  event["id"] = id;
  event["reason"] = reason;
  return event;
}

}  // namespace

namespace {

// Everything except the spec: op, id, priority. Split from parse_request
// so handle_line can admit (or refuse) a submit BEFORE paying for spec
// validation — an over-cap submit must cost its peer no more than the cap
// check, and must answer `overloaded`, not `error`, even when its spec is
// malformed.
Request parse_request_header(const Json& request) {
  Request parsed;
  const std::string& op = request.at("op").as_string();
  if (op == "submit") {
    parsed.op = Request::Op::kSubmit;
  } else if (op == "cancel") {
    parsed.op = Request::Op::kCancel;
  } else if (op == "stats") {
    parsed.op = Request::Op::kStats;
  } else if (op == "metrics") {
    parsed.op = Request::Op::kMetrics;
  } else if (op == "trace") {
    parsed.op = Request::Op::kTrace;
  } else {
    throw CheckFailure("unknown op \"" + op +
                       "\" (expected submit | cancel | stats | metrics | "
                       "trace)");
  }
  // stats/metrics are connection-level: an id is optional there (echoed
  // back when given, so a multiplexing client can pair the reply).
  // submit/cancel/trace address jobs and must name one.
  parsed.id =
      request.has("id") ? request.at("id").as_string() : std::string();
  if (parsed.op != Request::Op::kStats && parsed.op != Request::Op::kMetrics &&
      parsed.id.empty()) {
    throw CheckFailure("\"" + op + "\" requires a non-empty \"id\"");
  }
  if (parsed.op == Request::Op::kSubmit) {
    // as_double accepts both wire number kinds; negative priorities
    // (below-default urgency) are valid ints but parse as doubles.
    parsed.priority =
        request.has("priority")
            ? static_cast<int>(std::llround(request.at("priority").as_double()))
            : 0;
  }
  return parsed;
}

}  // namespace

Request parse_request(const std::string& line) {
  const Json request = Json::parse(line);
  Request parsed = parse_request_header(request);
  if (parsed.op == Request::Op::kSubmit) {
    parsed.spec = api::spec_from_json(request.at("spec"));
  }
  return parsed;
}

Session::Session(Service& service, WriteLine write_line,
                 SessionOptions options)
    : service_(service), options_(options) {
  {
    // The session is not shared yet, but write_line_ is a guarded member
    // and the analysis (rightly) has no notion of "not shared yet".
    LockGuard lock(out_mutex_);
    write_line_ = std::move(write_line);
  }
  emitter_ = std::thread([this] { emitter_loop(); });
}

Session::~Session() {
  abort();
  if (emitter_.joinable()) {
    emitter_.join();
  }
}

void Session::emit(const Json& event) {
  const std::string line = event.dump();
  bool gone = false;
  {
    LockGuard lock(out_mutex_);
    if (peer_gone_) {
      return;
    }
    if (!write_line_(line)) {
      peer_gone_ = true;
      gone = true;
    }
  }
  if (gone) {
    abort();  // a dead sink sheds its load like a dropped connection
  }
}

void Session::emit_error(const std::string& message) {
  Json event = Json::make_object();
  event["event"] = "error";
  event["message"] = message;
  emit(event);
}

Json Session::stats_event(const std::string& id) const {
  const ServiceStats stats = service_.stats();
  const StageHistograms latency = service_.latency_histograms();
  const ServiceOptions& options = service_.options();

  Json event = Json::make_object();
  event["event"] = "stats";
  if (!id.empty()) {
    event["id"] = id;
  }
  // Deployment shape: which kernel tier this node dispatches to, and the
  // pool bounds (the isa value is machine-dependent — CI fixtures must not
  // diff this event).
  event["isa"] = std::string(qsim::isa_name(qsim::active_isa()));
  event["workers"] = std::uint64_t{options.threads};
  event["queue_capacity"] = std::uint64_t{options.queue_capacity};
  event["queue_depth"] = std::uint64_t{service_.queue_depth()};

  Json counters = Json::make_object();
  counters["submitted"] = stats.submitted;
  counters["coalesced_submits"] = stats.coalesced_submits;
  counters["cache_hits"] = stats.cache_hits;
  counters["rejected"] = stats.rejected;
  counters["executed"] = stats.executed;
  counters["done"] = stats.done;
  counters["cancelled"] = stats.cancelled;
  counters["failed"] = stats.failed;
  event["counters"] = std::move(counters);
  event["coalescing_hit_rate"] = stats.coalescing_hit_rate();

  Json plan_cache = Json::make_object();
  plan_cache["hits"] = stats.plan_cache_hits;
  plan_cache["misses"] = stats.plan_cache_misses;
  plan_cache["evictions"] = stats.plan_cache_evictions;
  plan_cache["size"] = stats.plan_cache_size;
  event["plan_cache"] = std::move(plan_cache);

  Json result_cache = Json::make_object();
  result_cache["hits"] = stats.cache_hits;
  result_cache["evictions"] = stats.result_cache_evictions;
  result_cache["size"] = stats.result_cache_size;
  result_cache["capacity"] = std::uint64_t{options.result_cache_capacity};
  event["result_cache"] = std::move(result_cache);

  Json latency_ns = Json::make_object();
  latency_ns["queue"] = latency.queue.to_json();
  latency_ns["plan"] = latency.plan.to_json();
  latency_ns["exec"] = latency.exec.to_json();
  event["latency_ns"] = std::move(latency_ns);
  return event;
}

Json Session::metrics_event(const std::string& id) const {
  Json event = Json::make_object();
  event["event"] = "metrics";
  if (!id.empty()) {
    event["id"] = id;
  }
  // Like `isa` in stats: which node answered (machine/deployment shape).
  event["isa"] = std::string(qsim::isa_name(qsim::active_isa()));
  event["metrics"] = service_.metrics_snapshot();
  return event;
}

Json Session::trace_event(const std::string& id) const {
  std::shared_ptr<const obs::Trace> trace;
  {
    LockGuard lock(mutex_);
    if (const auto it = traces_.find(id); it != traces_.end()) {
      trace = it->second;
    }
  }
  if (trace == nullptr) {
    Json event = Json::make_object();
    event["event"] = "error";
    event["message"] = "no trace for job id \"" + id +
                       "\" (unknown, untraced, or forgotten — the session "
                       "remembers the last " +
                       std::to_string(kTraceIndexCapacity) + " traced jobs)";
    return event;
  }
  Json event = Json::make_object();
  event["event"] = "trace";
  event["id"] = id;
  event["trace"] = trace->to_json();
  return event;
}

void Session::remember_trace(const std::string& id,
                             std::shared_ptr<const obs::Trace> trace) {
  if (trace == nullptr) {
    return;  // untraced (tracing disabled, or a cache-served repeat)
  }
  LockGuard lock(mutex_);
  if (const auto it = traces_.find(id); it != traces_.end()) {
    it->second = std::move(trace);  // id reuse: replace, keep FIFO position
    return;
  }
  traces_.emplace(id, std::move(trace));
  trace_order_.push_back(id);
  while (trace_order_.size() > kTraceIndexCapacity) {
    traces_.erase(trace_order_.front());
    trace_order_.pop_front();
  }
}

std::size_t Session::inflight() const {
  LockGuard lock(mutex_);
  return jobs_.size();
}

void Session::handle_line(const std::string& line) {
  if (line.empty()) {
    return;
  }
  try {
    const Json json = Json::parse(line);
    Request request = parse_request_header(json);
    const std::string& id = request.id;
    if (request.op == Request::Op::kSubmit) {
      bool over_cap = false;
      {
        LockGuard lock(mutex_);
        PQS_CHECK_MSG(!jobs_.contains(id),
                      "duplicate in-flight job id \"" + id + "\"");
        over_cap = options_.inflight_limit != 0 &&
                   jobs_.size() >= options_.inflight_limit;
      }
      if (over_cap) {
        emit(overloaded_event(
            id, "inflight cap (" + std::to_string(options_.inflight_limit) +
                    " unanswered submits on this connection)"));
        return;
      }
      // Spec validation only AFTER admission: a peer at its cap cannot
      // force per-line spec-parse CPU, and its malformed specs still
      // answer `overloaded` (the cap is the reason it was refused).
      request.spec = api::spec_from_json(json.at("spec"));
      std::optional<JobHandle> handle;
      try {
        handle = service_.submit(request.spec, request.priority);
      } catch (const OverloadedError& e) {
        emit(overloaded_event(id, e.what()));
        return;
      }
      {
        LockGuard lock(mutex_);
        jobs_.emplace(id, *handle);
      }
      remember_trace(id, handle->trace());
      // Ack BEFORE the emitter can see the handle: a cache-served job is
      // already done, and its result must not precede the accepted event.
      Json event = Json::make_object();
      event["event"] = "accepted";
      event["id"] = id;
      emit(event);
      {
        LockGuard lock(mutex_);
        pending_.emplace_back(id, std::move(*handle));
      }
      cv_.notify_one();
    } else if (request.op == Request::Op::kCancel) {
      JobHandle target = [&] {
        LockGuard lock(mutex_);
        const auto it = jobs_.find(id);
        PQS_CHECK_MSG(it != jobs_.end(),
                      "unknown or already-finished job id \"" + id + "\"");
        return it->second;
      }();
      target.cancel();
      Json event = Json::make_object();
      event["event"] = "cancelling";
      event["id"] = id;
      emit(event);
    } else if (request.op == Request::Op::kMetrics) {
      emit(metrics_event(id));
    } else if (request.op == Request::Op::kTrace) {
      emit(trace_event(id));
    } else {
      emit(stats_event(id));
    }
  } catch (const std::exception& e) {
    emit_error(e.what());
  }
}

void Session::drain() {
  {
    LockGuard lock(mutex_);
    input_done_ = true;
  }
  cv_.notify_all();
  if (emitter_.joinable()) {
    emitter_.join();
  }
}

void Session::abort() {
  std::vector<JobHandle> outstanding;
  {
    LockGuard lock(mutex_);
    if (aborted_) {
      return;
    }
    aborted_ = true;
    input_done_ = true;
    // jobs_ holds every unannounced handle, including the one the emitter
    // popped from pending_ and is currently waiting on.
    outstanding.reserve(jobs_.size());
    for (const auto& [id, handle] : jobs_) {
      outstanding.push_back(handle);
    }
    jobs_.clear();
    pending_.clear();
  }
  cv_.notify_all();
  for (JobHandle& handle : outstanding) {
    handle.cancel();  // detaches this session; coalesced peers keep running
  }
}

void Session::emitter_loop() {
  while (true) {
    UniqueLock lock(mutex_);
    while (!input_done_ && !aborted_ && pending_.empty()) {
      cv_.wait(lock);  // inline predicate loop: see thread_annotations.h
    }
    if (aborted_ || pending_.empty()) {
      return;  // aborted, or input finished and everything announced
    }
    auto next = std::move(pending_.front());
    pending_.pop_front();
    lock.unlock();
    next.second.wait();  // abort()'s cancel also wakes this
    // Free the id BEFORE the result line goes out: a client that reacts
    // to the result by reusing the id must never race the erase.
    lock.lock();
    if (aborted_) {
      return;  // peer gone while we waited: announce nothing
    }
    jobs_.erase(next.first);
    lock.unlock();
    emit(result_event(next.first, next.second, options_.with_timing));
  }
}

}  // namespace pqs::net

#include "zalka/zalka.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math.h"

namespace pqs::zalka {

double state_angle(const qsim::StateVector& a, const qsim::StateVector& b) {
  return clamped_acos(std::abs(a.inner(b)));
}

namespace {

/// Run the circuit from |psi0> with the first `identity_until` queries
/// replaced by the identity; optionally record the state just before each
/// query (identity or not).
qsim::StateVector run_with_snapshots(
    const qsim::Circuit& circuit, const qsim::OracleView& oracle,
    std::uint64_t identity_until,
    std::vector<qsim::StateVector>* before_each_query) {
  auto state = qsim::uniform_state(circuit.num_qubits());
  std::uint64_t queries_seen = 0;
  for (const auto& op : circuit.ops()) {
    const std::uint64_t cost = qsim::op_query_cost(op);
    if (cost > 0 && before_each_query != nullptr) {
      before_each_query->push_back(state);
    }
    // Apply one op: reuse the circuit executor by slicing is wasteful, so
    // replicate its dispatch through a single-op circuit application.
    qsim::Circuit single(circuit.num_qubits());
    single.add(op);
    if (cost > 0 && queries_seen < identity_until) {
      single.apply_hybrid(state, oracle, /*identity_until_query=*/cost);
    } else {
      single.apply(state, oracle);
    }
    queries_seen += cost;
  }
  return state;
}

}  // namespace

ZalkaReport analyze_circuit(const qsim::Circuit& circuit,
                            const ZalkaOptions& options) {
  qsim::require_dense(options.backend, "the Zalka hybrid argument");
  ZalkaReport report;
  report.n_qubits = circuit.num_qubits();
  report.n_items = pow2(report.n_qubits);
  report.queries = circuit.query_count();
  PQS_CHECK_MSG(report.queries >= 1, "circuit makes no queries");

  const auto n = report.n_items;
  const auto nd = static_cast<double>(n);
  const std::uint64_t t_queries = report.queries;

  // All-identity run with snapshots before every query: |phi_i>.
  const qsim::OracleView dummy{[](qsim::Index) { return false; }, 0};
  std::vector<qsim::StateVector> phi_before;
  phi_before.reserve(t_queries);
  const qsim::StateVector phi_final = run_with_snapshots(
      circuit, dummy, /*identity_until=*/t_queries, &phi_before);
  PQS_CHECK(phi_before.size() == t_queries);

  // Lemma 3 quantities: S_i = sum_y arcsin sqrt(p_{i,y}).
  report.per_query_sums.resize(t_queries, 0.0);
  for (std::uint64_t i = 0; i < t_queries; ++i) {
    double sum = 0.0;
    for (qsim::Index y = 0; y < n; ++y) {
      sum += clamped_asin(std::sqrt(phi_before[i].probability(y)));
    }
    report.per_query_sums[i] = sum;
    report.max_per_query_sum = std::max(report.max_per_query_sum, sum);
  }
  report.lemma3_ceiling = std::sqrt(nd) * (1.0 + 1.0 / nd);

  // Per-oracle runs: |phi^y_T>, final angles, success probabilities.
  report.min_success = 1.0;
  for (qsim::Index y = 0; y < n; ++y) {
    const oracle::Database db(n, y);
    const auto view = db.view();
    const qsim::StateVector phi_y =
        run_with_snapshots(circuit, view, /*identity_until=*/0, nullptr);
    report.sum_final_angles += state_angle(phi_final, phi_y);
    report.min_success = std::min(report.min_success, phi_y.probability(y));
  }
  report.eps = 1.0 - report.min_success;
  report.lemma1_floor =
      nd * kHalfPi *
      (1.0 - std::sqrt(std::max(report.eps, 0.0)) - std::pow(nd, -0.25));
  report.implied_query_floor =
      report.sum_final_angles / (2.0 * report.lemma3_ceiling);

  // Lemma 2: hybrid angle steps, on a sample of y values.
  const std::uint64_t sample = options.lemma2_sample == 0
                                   ? n
                                   : std::min<std::uint64_t>(
                                         options.lemma2_sample, n);
  const std::uint64_t stride = n / sample;
  for (std::uint64_t s = 0; s < sample; ++s) {
    const qsim::Index y = s * stride;
    const oracle::Database db(n, y);
    const auto view = db.view();
    qsim::StateVector prev =
        run_with_snapshots(circuit, view, /*identity_until=*/t_queries,
                           nullptr);  // i = 0: all identity
    for (std::uint64_t i = 1; i <= t_queries; ++i) {
      const qsim::StateVector cur = run_with_snapshots(
          circuit, view, /*identity_until=*/t_queries - i, nullptr);
      const double lhs = state_angle(prev, cur);
      const double rhs =
          2.0 * clamped_asin(
                    std::sqrt(phi_before[t_queries - i].probability(y)));
      const double slack = lhs - rhs;
      report.lemma2_worst_slack =
          std::max(report.lemma2_worst_slack, slack);
      if (slack > 1e-9) {
        report.lemma2_holds = false;
      }
      prev = cur;
    }
  }
  return report;
}

ZalkaReport analyze_grover(unsigned n_qubits, std::uint64_t iterations,
                           const ZalkaOptions& options) {
  return analyze_circuit(qsim::make_grover_circuit(n_qubits, iterations),
                         options);
}

double theorem3_floor(std::uint64_t n_items, double eps) {
  const auto nd = static_cast<double>(n_items);
  return kQuarterPi * std::sqrt(nd) *
         (1.0 - (std::sqrt(std::max(eps, 0.0)) + std::pow(nd, -0.25)));
}

}  // namespace pqs::zalka

// Numerical machinery for Theorem 3 (Appendix B): the small-error refinement
// of Zalka's optimality bound for quantum search.
//
// For a T-query algorithm given as a qsim::Circuit we compute, on the
// simulator, every quantity in the appendix:
//
//   |phi_t>      states of the all-identity-oracle run,
//   |phi^y_t>    states of the O_y run,
//   |phi^{y,i}_t> hybrids (first T-i queries identity, last i real),
//   p_{i,y}      probability that the address register of |phi_i> reads y,
//   theta(a, b) = arccos |<a|b>|,
//
// and verify Lemmas 1-3 plus the final chain
//   sum_i sum_y 2 arcsin sqrt(p_{i,y}) >= sum_y theta(phi_T, phi^y_T)
//                                       >= N (pi/2) (1 - O(sqrt(eps)+N^-1/4)).
#pragma once

#include <cstdint>
#include <vector>

#include "oracle/database.h"
#include "qsim/backend.h"
#include "qsim/circuit.h"

namespace pqs::zalka {

/// arccos |<a|b>| in [0, pi/2]; the angle metric of the appendix.
double state_angle(const qsim::StateVector& a, const qsim::StateVector& b);

/// All Appendix-B quantities for one algorithm (circuit) on n qubits.
struct ZalkaReport {
  unsigned n_qubits = 0;
  std::uint64_t n_items = 0;
  std::uint64_t queries = 0;  ///< T

  /// min over y of the success probability |<y|phi^y_T>|^2; eps = 1 - this.
  double min_success = 0.0;
  double eps = 0.0;

  /// sum_y theta(phi_T, phi^y_T) — the Lemma-1 quantity.
  double sum_final_angles = 0.0;
  /// Lemma 1's floor: N (pi/2) (1 - sqrt(eps) - N^{-1/4}) (constant 1 for
  /// the O(.)).
  double lemma1_floor = 0.0;

  /// Per-query sums S_i = sum_y arcsin sqrt(p_{i,y}) for i = 0..T-1.
  std::vector<double> per_query_sums;
  /// Lemma 3's ceiling: sqrt(N) (1 + 1/N).
  double lemma3_ceiling = 0.0;
  /// max_i S_i actually observed.
  double max_per_query_sum = 0.0;

  /// The implied lower bound on T from the chain:
  /// T >= (sum_y theta) / (2 max_i S_i is too loose; we use the exact chain
  /// T * 2 * lemma3_ceiling >= sum_final_angles), i.e.
  /// T >= sum_final_angles / (2 sqrt(N)(1 + 1/N)).
  double implied_query_floor = 0.0;

  /// Lemma 2 verified: for every sampled y and every i,
  /// theta(phi^{y,i-1}_T, phi^{y,i}_T) <= 2 arcsin sqrt(p_{T-i,y}).
  bool lemma2_holds = true;
  /// Largest violation margin found (<= 0 when lemma2_holds).
  double lemma2_worst_slack = 0.0;
};

struct ZalkaOptions {
  /// Verify Lemma 2's hybrid inequality for at most this many y values
  /// (the full check is O(N T) simulator runs). 0 = all y.
  std::uint64_t lemma2_sample = 0;
  /// Engine selection, for symmetry with the other layers' options. The
  /// hybrid argument takes inner products between runs against DIFFERENT
  /// oracles — states that are not block-symmetric relative to each other —
  /// so only the dense engine applies: kAuto resolves to dense and an
  /// explicit kSymmetry request throws CheckFailure.
  qsim::BackendKind backend = qsim::BackendKind::kAuto;
};

/// Analyze an arbitrary search circuit. The circuit must prepare nothing
/// itself: it is run from the uniform superposition (as Grover does); oracle
/// calls are the symbolic ops, so the identity/hybrid substitutions are well
/// defined.
ZalkaReport analyze_circuit(const qsim::Circuit& circuit,
                            const ZalkaOptions& options = {});

/// Convenience: analyze the standard Grover circuit with `iterations`
/// iterations on n qubits.
ZalkaReport analyze_grover(unsigned n_qubits, std::uint64_t iterations,
                           const ZalkaOptions& options = {});

/// Theorem 3's closed form with unit constants:
/// (pi/4) sqrt(N) (1 - (sqrt(eps) + N^{-1/4})).
double theorem3_floor(std::uint64_t n_items, double eps);

}  // namespace pqs::zalka

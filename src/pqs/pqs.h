// Umbrella header: the whole public API of the partial-quantum-search
// library. Include this (and link pqs::pqs) to get everything; individual
// subsystem headers remain the fine-grained option.
#pragma once

// The facade: declarative SearchSpec/SearchReport served by pqs::Engine
// over the algorithm registry and the plan cache.
#include "api/api.h"

// The service layer: asynchronous cancellable jobs, request coalescing,
// and the JSONL wire format (pqs_serve).
#include "service/flags.h"
#include "service/service.h"

// Observability: the unified metrics registry and request tracing.
#include "obs/metrics.h"
#include "obs/trace.h"

// Infrastructure.
#include "common/check.h"
#include "common/cli.h"
#include "common/math.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/timing.h"

// The quantum simulator substrate.
#include "qsim/backend.h"
#include "qsim/batch.h"
#include "qsim/circuit.h"
#include "qsim/diffusion.h"
#include "qsim/gates.h"
#include "qsim/gates2.h"
#include "qsim/kernels.h"
#include "qsim/measurement.h"
#include "qsim/noise.h"
#include "qsim/simulator.h"
#include "qsim/state_vector.h"
#include "qsim/types.h"

// The database-oracle model.
#include "oracle/blocks.h"
#include "oracle/database.h"
#include "oracle/marked_set.h"
#include "oracle/merit_list.h"

// Standard quantum search and its relatives.
#include "grover/amplitude_amplification.h"
#include "grover/bbht.h"
#include "grover/exact.h"
#include "grover/grover.h"

// Partial search: the paper's contribution and its extensions.
#include "partial/analytic.h"
#include "partial/bounds.h"
#include "partial/certainty.h"
#include "partial/grk.h"
#include "partial/interleave.h"
#include "partial/multi.h"
#include "partial/noisy.h"
#include "partial/optimizer.h"
#include "partial/phase_match.h"
#include "partial/twelve.h"

// Baselines and lower-bound machinery.
#include "classical/adversary.h"
#include "classical/montecarlo.h"
#include "classical/search.h"
#include "reduction/reduction.h"
#include "zalka/zalka.h"

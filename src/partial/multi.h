// Multi-marked partial search (extension beyond the paper).
//
// The paper assumes a unique marked address. When M >= 1 marked items all
// lie in the SAME block — e.g. "the top-M students share the first k bits
// by construction" or any clustered-hit database — the three-step algorithm
// still works verbatim: the invariant subspace stays 3-dimensional with
// e_t = uniform over the marked set, the Grover angle improves to
// arcsin(sqrt(M/N)), and Step 3 moves the whole marked set out with one
// query. Costs shrink by ~ sqrt(M), mirroring multi-target Grover.
//
// (Marked items spread across blocks leave the 3-D subspace; that genuinely
// different problem is out of scope and rejected by the checks here.)
#pragma once

#include <cstdint>
#include <optional>

#include "common/random.h"
#include "oracle/marked_set.h"
#include "partial/analytic.h"
#include "qsim/backend.h"

namespace pqs::partial {

struct MultiGrkResult {
  std::uint64_t l1 = 0;
  std::uint64_t l2 = 0;
  std::uint64_t queries = 0;
  double block_probability = 0.0;   ///< pre-measurement mass of the block
  double marked_probability = 0.0;  ///< mass on the marked set itself
  qsim::Index measured_block = 0;
  bool correct = false;
  qsim::BackendKind backend_used = qsim::BackendKind::kDense;
};

struct MultiGrkOptions {
  std::optional<std::uint64_t> l1;
  std::optional<std::uint64_t> l2;
  /// <= 0 means the default 1 - 4/sqrt(N).
  double min_success = 0.0;
  /// Simulation engine. The clustered marked set keeps the state
  /// block-symmetric (three amplitude classes with |class t| = M), so the
  /// symmetry engine applies verbatim; kAuto picks dense up to
  /// qsim::auto_backend_cutoff() items.
  qsim::BackendKind backend = qsim::BackendKind::kAuto;
};

/// Run partial search for the first k bits of a multi-marked database.
/// All marked items must lie in one block (checked); db.size() = 2^n.
MultiGrkResult run_partial_search_multi(const oracle::MarkedDatabase& db,
                                        unsigned k, Rng& rng,
                                        const MultiGrkOptions& options = {});

/// The block shared by all marked items; throws if they span blocks or the
/// marked set is empty.
qsim::Index common_block(const oracle::MarkedDatabase& db, unsigned k);

}  // namespace pqs::partial

// Sure-success partial search.
//
// The paper (Theorem 1) notes the algorithm "can be modified to return the
// correct answer with certainty while increasing the number of queries by at
// most a constant". This module realizes that remark: the LAST Step-2
// iteration is replaced by a generalized iteration D_block(chi) . O(phi)
// whose phases are chosen — in closed form, via
// solve_phase_match_affine — so that Step 3 zeroes the non-target blocks
// EXACTLY. Everything before it is the plain algorithm.
//
// Step-3 exact-cancellation condition (from SubspaceModel::apply_step3):
//     a_b = lambda * a_o,   lambda = (N - 1 - 2 w_o^2) / (2 w_b w_o),
// where w_b = sqrt(N/K - 1), w_o = sqrt((K-1) N/K). After the generalized
// iteration a_o carries the rotation phase e^{i chi}, so the requirement is
// a_b' = lambda * a_o * e^{i chi} — precisely the affine phase-match form.
#pragma once

#include <cstdint>
#include <optional>

#include "common/random.h"
#include "oracle/database.h"
#include "partial/analytic.h"
#include "partial/phase_match.h"
#include "qsim/backend.h"

namespace pqs::partial {

/// The schedule of the sure-success run.
struct CertaintySchedule {
  std::uint64_t l1 = 0;          ///< plain global iterations
  std::uint64_t l2_plain = 0;    ///< plain local iterations
  bool generalized_needed = true;  ///< final D(chi) . O(phi) present?
  PhaseMatch phases;             ///< phases of the final local iteration
  std::uint64_t queries = 0;     ///< l1 + l2_plain + (1 if generalized) + 1
  /// Exact target-block probability predicted by the subspace model
  /// (should be 1 up to roundoff).
  double predicted_block_probability = 0.0;
};

/// Find the schedule: uses l1 (explicit or the integer optimum's l1), then
/// scans l2 upward for the first count where one generalized iteration can
/// land the state exactly on the cancellation manifold.
CertaintySchedule certainty_schedule(std::uint64_t n_items,
                                     std::uint64_t k_blocks,
                                     std::optional<std::uint64_t> l1 = {});

/// Result of a sure-success simulation run.
struct CertainResult {
  CertaintySchedule schedule;
  double block_probability = 0.0;  ///< measured on the engine's state; ~1
  qsim::Index measured_block = 0;
  bool correct = false;  ///< always true (probability-1 measurement)
  qsim::BackendKind backend_used = qsim::BackendKind::kDense;
};

/// Run on the simulator: db.size() = 2^n, K = 2^k blocks. The generalized
/// iteration only needs the oracle-phase and block-rotation operators, so
/// both engines apply; kAuto picks dense up to qsim::auto_backend_cutoff()
/// items, symmetry beyond.
CertainResult run_partial_search_certain(
    const oracle::Database& db, unsigned k, Rng& rng,
    qsim::BackendKind backend = qsim::BackendKind::kAuto);

/// lambda(N, K): the Step-3 exact-cancellation ratio a_b / a_o.
double cancellation_ratio(std::uint64_t n_items, std::uint64_t k_blocks);

}  // namespace pqs::partial

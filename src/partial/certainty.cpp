#include "partial/certainty.h"

#include <cmath>

#include "common/check.h"
#include "common/math.h"
#include "partial/optimizer.h"

namespace pqs::partial {

double cancellation_ratio(std::uint64_t n_items, std::uint64_t k_blocks) {
  const SubspaceModel model(n_items, k_blocks);
  const double w_b = model.weight_target_rest();
  const double w_o = model.weight_non_target();
  return (static_cast<double>(n_items) - 1.0 - 2.0 * w_o * w_o) /
         (2.0 * w_b * w_o);
}

namespace {

/// Try to complete the schedule for a fixed l1, scanning l2 upward for the
/// first point where the cancellation manifold is exactly reachable.
/// `s_after_l1` is the state after l1 global iterations. Returns true and
/// fills `sched` on success.
bool try_l2_scan(const SubspaceModel& model, std::uint64_t l1,
                 SubspaceState s, CertaintySchedule& sched) {
  const double lambda =
      cancellation_ratio(model.num_items(), model.num_blocks());
  const double v_t = model.block_axis_target();
  const double v_b = model.block_axis_rest();
  const auto l2_max = static_cast<std::uint64_t>(std::ceil(
                          kHalfPi * std::sqrt(static_cast<double>(
                                        model.block_size())))) +
                      4;

  for (std::uint64_t l2 = 0; l2 <= l2_max; ++l2) {
    // All amplitudes are real before the generalized step.
    const double a_t = s.a_t.real();
    const double a_b = s.a_b.real();
    const double a_o = s.a_o.real();

    if (std::fabs(a_b - lambda * a_o) < 1e-13) {
      // Already on the cancellation manifold: no generalized step needed.
      sched.l1 = l1;
      sched.l2_plain = l2;
      sched.generalized_needed = false;
      sched.queries = l1 + l2 + 1;
      sched.predicted_block_probability =
          model.apply_step3(s).target_block_probability();
      return true;
    }

    const PhaseMatch pm = solve_phase_match_affine(
        v_t * v_b * a_t, v_b * v_b * a_b, a_b, lambda * a_o);
    if (pm.feasible) {
      const SubspaceState after = model.apply_step3(
          model.apply_local_generalized(s, pm.oracle_phase,
                                        pm.diffusion_phase));
      if (std::abs(after.a_o) < 1e-8) {
        sched.l1 = l1;
        sched.l2_plain = l2;
        sched.generalized_needed = true;
        sched.phases = pm;
        sched.queries = l1 + l2 + 1 + 1;
        sched.predicted_block_probability =
            after.target_block_probability();
        return true;
      }
    }
    s = model.apply_local(s);
  }
  return false;
}

}  // namespace

CertaintySchedule certainty_schedule(std::uint64_t n_items,
                                     std::uint64_t k_blocks,
                                     std::optional<std::uint64_t> l1) {
  const SubspaceModel model(n_items, k_blocks);
  CertaintySchedule sched;

  if (l1.has_value()) {
    SubspaceState s = model.uniform_start();
    for (std::uint64_t i = 0; i < *l1; ++i) {
      s = model.apply_global(s);
    }
    PQS_CHECK_MSG(try_l2_scan(model, *l1, s, sched),
                  "certainty_schedule: the requested l1 leaves too much "
                  "amplitude outside the target block for a single "
                  "generalized step to cancel; increase l1");
    return sched;
  }

  // Auto mode: start from the asymptotically optimal l1 and scan upward.
  // Feasibility needs |lambda * a_o| to fit inside the target-block radius;
  // more global iterations shrink a_o, so the scan terminates.
  const double eps_star = optimize_epsilon(k_blocks).epsilon;
  const double sqrt_n = std::sqrt(static_cast<double>(n_items));
  const auto l1_start = static_cast<std::uint64_t>(
      std::llround(kQuarterPi * (1.0 - eps_star) * sqrt_n));
  const auto l1_max =
      static_cast<std::uint64_t>(std::ceil(kQuarterPi * sqrt_n)) + 2;

  SubspaceState s = model.uniform_start();
  for (std::uint64_t i = 0; i < l1_start; ++i) {
    s = model.apply_global(s);
  }
  for (std::uint64_t l1_cand = l1_start; l1_cand <= l1_max; ++l1_cand) {
    if (try_l2_scan(model, l1_cand, s, sched)) {
      return sched;
    }
    s = model.apply_global(s);
  }
  throw CheckFailure(
      "certainty_schedule: no feasible (l1, l2) found; "
      "this should be unreachable for N/K >= 2");
}

CertainResult run_partial_search_certain(const oracle::Database& db,
                                         unsigned k, Rng& rng,
                                         qsim::BackendKind backend_kind) {
  PQS_CHECK_MSG(is_pow2(db.size()), "partial search needs N = 2^n");
  const unsigned n = log2_exact(db.size());
  PQS_CHECK_MSG(k >= 1 && k < n, "need 1 <= k < n");

  CertainResult result;
  result.schedule = certainty_schedule(db.size(), pow2(k));
  const auto& sched = result.schedule;

  auto backend = qsim::make_backend(
      backend_kind,
      qsim::BackendSpec::single_target(db.size(), pow2(k), db.target()));
  result.backend_used = backend->kind();
  for (std::uint64_t i = 0; i < sched.l1; ++i) {
    db.add_queries(1);
    backend->apply_oracle();
    backend->apply_global_diffusion();
  }
  for (std::uint64_t i = 0; i < sched.l2_plain; ++i) {
    db.add_queries(1);
    backend->apply_oracle();
    backend->apply_block_diffusion();
  }
  if (sched.generalized_needed) {
    db.add_queries(1);
    backend->apply_oracle_phase(sched.phases.oracle_phase);
    backend->apply_block_rotation(sched.phases.diffusion_phase);
  }
  db.add_queries(1);
  backend->apply_step3();

  const qsim::Index target_block = backend->target_block();
  result.block_probability = backend->block_probability(target_block);
  result.measured_block = backend->sample_block(rng);
  result.correct = result.measured_block == target_block;
  return result;
}

}  // namespace pqs::partial

// Optimizing the iteration split of the partial-search algorithm.
//
// Two regimes:
//
//   * Asymptotic (N -> infinity): minimize the query coefficient
//       c(eps, K) = (pi/4)(1 - eps) + (theta1 + theta2) / (2 sqrt(K))
//     with theta = (pi/2) eps and eq. (3)/(4) of the paper giving
//     theta1/theta2. This regenerates the "Upper bound" column of the
//     Section-3.1 table (0.555 / 0.592 / 0.615 / 0.633 / 0.664 / 0.725).
//
//   * Finite N: exact integer search over (l1, l2) on the SubspaceModel,
//     minimizing l1 + l2 + 1 subject to a success-probability floor. This is
//     what an implementation would actually run, and what the state-vector
//     benches execute.
#pragma once

#include <cstdint>

#include "partial/analytic.h"

namespace pqs::partial {

/// The eq. (3)/(4) geometry for a given eps, in the N -> infinity limit.
struct StepAngles {
  double theta = 0.0;   ///< residual angle after Step 1: (pi/2) eps
  double alpha = 0.0;   ///< alpha_yt = sqrt(1 - (K-1)/K sin^2 theta)
  double theta1 = 0.0;  ///< arcsin( sin(theta) / (alpha sqrt(K)) )
  double theta2 = 0.0;  ///< arcsin( (K-2) sin(theta) / (2 alpha sqrt(K)) )
  bool feasible = false;  ///< theta2's arcsin argument was within [0, 1]
};

/// Compute the step angles; feasible == false when eps is too large for the
/// half-average condition to be reachable (arcsin argument > 1; happens for
/// K > 4 as eps -> 1).
StepAngles step_angles(double eps, std::uint64_t k_blocks);

/// The asymptotic query coefficient c(eps, K); +infinity when infeasible.
double query_coefficient(double eps, std::uint64_t k_blocks);

struct EpsilonOptimum {
  double epsilon = 0.0;
  double coefficient = 0.0;  ///< c(eps*, K): multiply by sqrt(N) for queries
  StepAngles angles;
};

/// Minimize c(eps, K) over the feasible eps in [0, 1]:
/// dense grid + golden-section refinement.
EpsilonOptimum optimize_epsilon(std::uint64_t k_blocks);

struct IntegerOptimum {
  std::uint64_t l1 = 0;
  std::uint64_t l2 = 0;
  std::uint64_t queries = 0;  ///< l1 + l2 + 1
  double success = 0.0;       ///< target-block probability achieved
};

/// Exact finite-N optimum: smallest l1 + l2 + 1 whose Step-3 output has
/// target-block probability >= min_success. O(sqrt(N) * sqrt(N/K)) time,
/// O(1) memory. `n_marked > 1` optimizes the multi-marked generalization
/// (all marked items in one block; see SubspaceModel).
IntegerOptimum optimize_integer(std::uint64_t n_items, std::uint64_t k_blocks,
                                double min_success,
                                std::uint64_t n_marked = 1);

/// Largest N for which optimize_schedule runs the exact integer scan by
/// default (the scan is O(sqrt(N) * sqrt(N/K))).
inline constexpr std::uint64_t kDefaultExactLimit = std::uint64_t{1} << 24;

/// Size-aware schedule choice: the exact integer optimum while its
/// O(sqrt(N) * sqrt(N/K)) scan stays affordable (n_items <= exact_limit),
/// the asymptotic optimize_epsilon geometry beyond —
///   l1 = round((pi/4)(1 - eps*) sqrt(N / M)),
///   l2 = round(sqrt((N/K) / M)/2 (theta1 + theta2)),
/// accurate to O(1) queries at those sizes (the sqrt(M) shrink is the
/// multi-marked generalization; success is evaluated on the exact subspace
/// model either way; the min_success floor is enforced only on the exact
/// branch — beyond it the asymptotic schedule's success is reported as-is,
/// ~1 - O(1/sqrt(N))). This is what the noisy Monte-Carlo drivers and the
/// pqs::Engine plan cache use by default: without it, a single n = 32
/// sweep point would spend ~20 s inside the integer scan before simulating
/// anything.
IntegerOptimum optimize_schedule(std::uint64_t n_items,
                                 std::uint64_t k_blocks, double min_success,
                                 std::uint64_t n_marked = 1,
                                 std::uint64_t exact_limit =
                                     kDefaultExactLimit);

/// The success floor used throughout the reproduction when none is given:
/// 1 - 4/sqrt(N) (the paper's guarantee is 1 - O(1/sqrt(N))).
double default_min_success(std::uint64_t n_items);

/// The paper's concrete large-K recipe: eps = 1/sqrt(K). Returns its
/// asymptotic coefficient (upper-bounded by (pi/4)(1 - 0.42/sqrt(K))).
double recipe_coefficient(std::uint64_t k_blocks);

}  // namespace pqs::partial

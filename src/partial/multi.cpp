#include "partial/multi.h"

#include <cmath>

#include "common/check.h"
#include "common/math.h"
#include "partial/optimizer.h"

namespace pqs::partial {

qsim::Index common_block(const oracle::MarkedDatabase& db, unsigned k) {
  PQS_CHECK_MSG(db.num_marked() >= 1, "marked set is empty");
  PQS_CHECK_MSG(is_pow2(db.size()), "need N = 2^n");
  const unsigned n = log2_exact(db.size());
  PQS_CHECK_MSG(k >= 1 && k < n, "need 1 <= k < n");
  const qsim::Index block = db.marked().front() >> (n - k);
  for (const auto m : db.marked()) {
    PQS_CHECK_MSG((m >> (n - k)) == block,
                  "multi-marked partial search requires all marked items "
                  "in one block");
  }
  return block;
}

MultiGrkResult run_partial_search_multi(const oracle::MarkedDatabase& db,
                                        unsigned k, Rng& rng,
                                        const MultiGrkOptions& options) {
  const qsim::Index target_block = common_block(db, k);

  MultiGrkResult result;
  if (options.l1.has_value() && options.l2.has_value()) {
    result.l1 = *options.l1;
    result.l2 = *options.l2;
  } else {
    const double floor_p = options.min_success > 0.0
                               ? options.min_success
                               : default_min_success(db.size());
    const auto opt =
        optimize_integer(db.size(), pow2(k), floor_p, db.num_marked());
    result.l1 = options.l1.value_or(opt.l1);
    result.l2 = options.l2.value_or(opt.l2);
  }

  const std::uint64_t before = db.queries();
  auto backend = qsim::make_backend(
      options.backend,
      qsim::BackendSpec{db.size(), pow2(k), db.marked()});
  result.backend_used = backend->kind();
  for (std::uint64_t i = 0; i < result.l1; ++i) {
    db.add_queries(1);  // one query flips the whole marked set
    backend->apply_oracle();
    backend->apply_global_diffusion();
  }
  for (std::uint64_t i = 0; i < result.l2; ++i) {
    db.add_queries(1);
    backend->apply_oracle();
    backend->apply_block_diffusion();
  }
  db.add_queries(1);  // Step 3 marks the set out with one query
  backend->apply_step3();
  result.queries = db.queries() - before;

  result.block_probability = backend->block_probability(target_block);
  result.marked_probability = backend->marked_probability();
  result.measured_block = backend->sample_block(rng);
  result.correct = result.measured_block == target_block;
  return result;
}

}  // namespace pqs::partial

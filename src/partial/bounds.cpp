#include "partial/bounds.h"

#include <cmath>

#include "common/check.h"
#include "common/math.h"

namespace pqs::partial {

double full_search_coefficient() { return kQuarterPi; }

double lower_bound_coefficient(std::uint64_t k_blocks) {
  PQS_CHECK(k_blocks >= 2);
  return kQuarterPi * (1.0 - 1.0 / std::sqrt(static_cast<double>(k_blocks)));
}

double naive_block_discard_coefficient(std::uint64_t k_blocks) {
  PQS_CHECK(k_blocks >= 2);
  const auto k = static_cast<double>(k_blocks);
  return kQuarterPi * std::sqrt((k - 1.0) / k);
}

double large_k_constant() { return 1.0 - (2.0 / kPi) * std::asin(kQuarterPi); }

double large_k_upper_coefficient(std::uint64_t k_blocks) {
  PQS_CHECK(k_blocks >= 2);
  return kQuarterPi *
         (1.0 - large_k_constant() / std::sqrt(static_cast<double>(k_blocks)));
}

double reduction_total_coefficient(double partial_coefficient,
                                   std::uint64_t k_blocks) {
  PQS_CHECK(k_blocks >= 2);
  const double rk = std::sqrt(static_cast<double>(k_blocks));
  return partial_coefficient * rk / (rk - 1.0);
}

double classical_full_expected(std::uint64_t n_items) {
  PQS_CHECK(n_items >= 1);
  return (static_cast<double>(n_items) + 1.0) / 2.0;
}

std::uint64_t classical_partial_deterministic(std::uint64_t n_items,
                                              std::uint64_t k_blocks) {
  PQS_CHECK(k_blocks >= 2 && n_items % k_blocks == 0);
  return n_items - n_items / k_blocks;
}

double classical_partial_randomized_paper(std::uint64_t n_items,
                                          std::uint64_t k_blocks) {
  PQS_CHECK(k_blocks >= 2 && n_items % k_blocks == 0);
  const auto n = static_cast<double>(n_items);
  const auto k = static_cast<double>(k_blocks);
  return n / 2.0 * (1.0 - 1.0 / (k * k));
}

double classical_partial_randomized_exact(std::uint64_t n_items,
                                          std::uint64_t k_blocks) {
  const auto k = static_cast<double>(k_blocks);
  return classical_partial_randomized_paper(n_items, k_blocks) +
         (1.0 - 1.0 / k) / 2.0;
}

double classical_partial_lower_bound(std::uint64_t n_items,
                                     std::uint64_t k_blocks) {
  return classical_partial_randomized_paper(n_items, k_blocks);
}

}  // namespace pqs::partial

#include "partial/grk.h"

#include <cmath>

#include "common/check.h"
#include "common/math.h"
#include "partial/optimizer.h"

namespace pqs::partial {

namespace {

void copy_amplitudes(const qsim::StateVector& state,
                     std::vector<qsim::Amplitude>& out) {
  const auto amps = state.amplitudes();
  out.assign(amps.begin(), amps.end());
}

}  // namespace

qsim::StateVector evolve_partial_search(const oracle::Database& db, unsigned k,
                                        std::uint64_t l1, std::uint64_t l2) {
  PQS_CHECK_MSG(is_pow2(db.size()), "state-vector run needs N = 2^n");
  const unsigned n = log2_exact(db.size());
  PQS_CHECK_MSG(k >= 1 && k < n, "need 1 <= k < n");

  auto state = qsim::StateVector::uniform(n);
  for (std::uint64_t i = 0; i < l1; ++i) {
    db.apply_phase_oracle(state);   // It
    state.reflect_about_uniform();  // I0
  }
  for (std::uint64_t i = 0; i < l2; ++i) {
    db.apply_phase_oracle(state);          // It
    state.reflect_blocks_about_uniform(k);  // I_[K] (x) I0,[N/K]
  }
  // Step 3: one oracle query marks the target out; inversion about the mean
  // of the remaining amplitudes.
  db.add_queries(1);
  state.reflect_non_target_about_their_mean(db.target());
  return state;
}

GrkResult run_partial_search(const oracle::Database& db, unsigned k, Rng& rng,
                             const GrkOptions& options) {
  PQS_CHECK_MSG(is_pow2(db.size()), "state-vector run needs N = 2^n");
  const unsigned n = log2_exact(db.size());
  PQS_CHECK_MSG(k >= 1 && k < n, "need 1 <= k < n");

  GrkResult result;
  if (options.l1.has_value() && options.l2.has_value()) {
    result.l1 = *options.l1;
    result.l2 = *options.l2;
  } else {
    const double floor_p = options.min_success > 0.0
                               ? options.min_success
                               : default_min_success(db.size());
    const auto opt = optimize_integer(db.size(), pow2(k), floor_p);
    result.l1 = options.l1.value_or(opt.l1);
    result.l2 = options.l2.value_or(opt.l2);
  }

  const std::uint64_t before = db.queries();
  auto state = qsim::StateVector::uniform(n);
  for (std::uint64_t i = 0; i < result.l1; ++i) {
    db.apply_phase_oracle(state);
    state.reflect_about_uniform();
  }
  if (options.capture_snapshots) {
    copy_amplitudes(state, result.snapshots.after_step1);
  }
  for (std::uint64_t i = 0; i < result.l2; ++i) {
    db.apply_phase_oracle(state);
    state.reflect_blocks_about_uniform(k);
  }
  if (options.capture_snapshots) {
    copy_amplitudes(state, result.snapshots.after_step2);
  }
  db.add_queries(1);
  state.reflect_non_target_about_their_mean(db.target());
  if (options.capture_snapshots) {
    copy_amplitudes(state, result.snapshots.after_step3);
  }

  result.queries = db.queries() - before;
  PQS_CHECK(result.queries == result.l1 + result.l2 + 1);

  const qsim::Index target_block = db.target() >> (n - k);
  result.block_probability = state.block_probability(k, target_block);
  result.state_probability = state.probability(db.target());
  result.measured_block = state.sample_block(k, rng);
  result.correct = result.measured_block == target_block;
  return result;
}

}  // namespace pqs::partial

#include "partial/grk.h"

#include <cmath>

#include "common/check.h"
#include "common/math.h"
#include "partial/optimizer.h"

namespace pqs::partial {

namespace {

/// The GRK spec: 2^n items, 2^k contiguous blocks, a unique target.
qsim::BackendSpec grk_spec(const oracle::Database& db, unsigned k) {
  PQS_CHECK_MSG(is_pow2(db.size()), "partial search needs N = 2^n");
  const unsigned n = log2_exact(db.size());
  PQS_CHECK_MSG(k >= 1 && k < n, "need 1 <= k < n");
  return qsim::BackendSpec::single_target(db.size(), pow2(k), db.target());
}

}  // namespace

std::unique_ptr<qsim::Backend> evolve_partial_search_on_backend(
    const oracle::Database& db, unsigned k, std::uint64_t l1,
    std::uint64_t l2, qsim::BackendKind kind) {
  auto backend = qsim::make_backend(kind, grk_spec(db, k));
  for (std::uint64_t i = 0; i < l1; ++i) {
    db.add_queries(1);
    backend->apply_oracle();            // It
    backend->apply_global_diffusion();  // I0
  }
  for (std::uint64_t i = 0; i < l2; ++i) {
    db.add_queries(1);
    backend->apply_oracle();           // It
    backend->apply_block_diffusion();  // I_[K] (x) I0,[N/K]
  }
  // Step 3: one oracle query marks the target out; inversion about the mean
  // of the remaining amplitudes.
  db.add_queries(1);
  backend->apply_step3();
  return backend;
}

qsim::StateVector evolve_partial_search(const oracle::Database& db, unsigned k,
                                        std::uint64_t l1, std::uint64_t l2) {
  const auto backend = evolve_partial_search_on_backend(
      db, k, l1, l2, qsim::BackendKind::kDense);
  return qsim::StateVector::from_amplitudes(backend->amplitudes_copy());
}

GrkResult run_partial_search(const oracle::Database& db, unsigned k, Rng& rng,
                             const GrkOptions& options) {
  const auto spec = grk_spec(db, k);
  if (options.capture_snapshots) {
    qsim::require_dense(options.backend, "snapshot capture");
  }

  GrkResult result;
  if (options.l1.has_value() && options.l2.has_value()) {
    result.l1 = *options.l1;
    result.l2 = *options.l2;
  } else {
    const double floor_p = options.min_success > 0.0
                               ? options.min_success
                               : default_min_success(db.size());
    const auto opt = optimize_integer(db.size(), pow2(k), floor_p);
    result.l1 = options.l1.value_or(opt.l1);
    result.l2 = options.l2.value_or(opt.l2);
  }

  const std::uint64_t before = db.queries();
  auto backend = qsim::make_backend(options.backend, spec);
  result.backend_used = backend->kind();
  for (std::uint64_t i = 0; i < result.l1; ++i) {
    db.add_queries(1);
    backend->apply_oracle();
    backend->apply_global_diffusion();
  }
  if (options.capture_snapshots) {
    result.snapshots.after_step1 = backend->amplitudes_copy();
  }
  for (std::uint64_t i = 0; i < result.l2; ++i) {
    db.add_queries(1);
    backend->apply_oracle();
    backend->apply_block_diffusion();
  }
  if (options.capture_snapshots) {
    result.snapshots.after_step2 = backend->amplitudes_copy();
  }
  db.add_queries(1);
  backend->apply_step3();
  if (options.capture_snapshots) {
    result.snapshots.after_step3 = backend->amplitudes_copy();
  }

  result.queries = db.queries() - before;
  PQS_CHECK(result.queries == result.l1 + result.l2 + 1);

  result.block_probability = backend->block_probability(backend->target_block());
  result.state_probability = backend->marked_probability();
  result.measured_block = backend->sample_block(rng);
  result.correct = result.measured_block == backend->target_block();
  return result;
}

}  // namespace pqs::partial

// Exact 3-dimensional invariant-subspace model of the partial-search
// algorithm.
//
// Every operator the GRK algorithm uses — the global iteration A = I0 . It,
// the per-block iteration A_[N/K] = (I_[K] (x) I0,[N/K]) . It, and the Step-3
// "move the target out and invert the rest about their mean" — preserves the
// real 3-dimensional subspace spanned by
//
//   e_t = |t>                                            (the target)
//   e_b = uniform over the other N/K - 1 target-block states
//   e_o = uniform over the (K-1) N/K non-target states
//
// so the entire algorithm can be evolved exactly in O(1) per step for ANY
// N, K with K | N and N/K >= 2 — including sizes far beyond what a state
// vector can hold. This model is the backbone of the finite-N optimizer and
// of every Figure-3/4/5 trajectory; it is cross-validated against the full
// simulator in tests/test_integration.cpp to ~1e-10.
#pragma once

#include <complex>
#include <cstdint>
#include <string>

#include "partial/phase_match.h"

namespace pqs::partial {

/// State in the invariant subspace. Amplitudes are complex because the
/// sure-success variant introduces phases; the plain algorithm keeps them
/// real.
struct SubspaceState {
  std::complex<double> a_t{0.0, 0.0};  ///< amplitude of e_t
  std::complex<double> a_b{0.0, 0.0};  ///< amplitude of e_b
  std::complex<double> a_o{0.0, 0.0};  ///< amplitude of e_o

  double norm_squared() const;
  /// Probability that measuring the first k bits returns the target block.
  double target_block_probability() const;
  /// Probability of measuring the target state itself.
  double target_state_probability() const { return std::norm(a_t); }

  std::string to_string() const;
};

/// The model for a database of `n_items` split into `n_blocks` equal blocks.
///
/// Generalization beyond the paper: `n_marked >= 1` marked items, all lying
/// in the same (target) block. The subspace stays 3-dimensional with
/// e_t = uniform over the marked set; the paper's setting is n_marked = 1.
class SubspaceModel {
 public:
  SubspaceModel(std::uint64_t n_items, std::uint64_t n_blocks,
                std::uint64_t n_marked = 1);

  std::uint64_t num_items() const { return n_; }
  std::uint64_t num_blocks() const { return k_; }
  std::uint64_t block_size() const { return n_ / k_; }
  std::uint64_t num_marked() const { return m_; }

  /// |psi0>: the uniform superposition.
  SubspaceState uniform_start() const;

  /// One global Grover iteration A = I0 . It. One query.
  SubspaceState apply_global(const SubspaceState& s) const;

  /// One per-block iteration A_[N/K]. One query.
  SubspaceState apply_local(const SubspaceState& s) const;

  /// Generalized per-block iteration: oracle phase phi on the target, then
  /// the rotation I + (e^{i chi}-1)|u_block><u_block| inside each block.
  /// At phi = chi = pi this equals -apply_local (an unobservable global
  /// phase; the rotation convention is I - 2|u><u| rather than 2|u><u| - I).
  /// One query.
  SubspaceState apply_local_generalized(const SubspaceState& s, double phi,
                                        double chi) const;

  /// Step 3: one query marks the target out; the other amplitudes are
  /// inverted about their common mean.
  SubspaceState apply_step3(const SubspaceState& s) const;

  /// Run the full three-step algorithm with explicit iteration counts.
  /// Queries consumed: l1 + l2 + 1.
  SubspaceState run_grk(std::uint64_t l1, std::uint64_t l2) const;

  /// Per-basis-state amplitude of non-target-block states (they all share
  /// one value: a_o / sqrt((K-1) N/K)). For Figure-5 style reports.
  std::complex<double> per_state_non_target(const SubspaceState& s) const;
  /// Per-basis-state amplitude of the non-target states inside the target
  /// block: a_b / sqrt(N/K - 1).
  std::complex<double> per_state_target_rest(const SubspaceState& s) const;

  /// The paper's Step-2 stopping condition: the mean amplitude of ALL
  /// non-target states must equal half the per-state amplitude in non-target
  /// blocks; equivalently Step 3 sends a_o to exactly 0. Returns the residual
  /// a_o after a hypothetical Step 3 (0 when the condition holds).
  double step3_residual(const SubspaceState& s) const;

  /// Angle geometry inside the target block (Figure 4): the angle of
  /// (a_t, a_b) from the e_b axis, in radians.
  double target_block_angle(const SubspaceState& s) const;

  /// Components of the block-uniform axis v inside the target block:
  /// v = (1, sqrt(N/K - 1)) / sqrt(N/K) over (e_t, e_b). Used by the
  /// sure-success phase matching.
  double block_axis_target() const { return v_t_; }
  double block_axis_rest() const { return v_b_; }
  /// sqrt(N/K - 1) and sqrt((K-1) N/K): the basis-change weights.
  double weight_target_rest() const { return w_b_; }
  double weight_non_target() const { return w_o_; }

 private:
  std::uint64_t n_;
  std::uint64_t k_;
  std::uint64_t m_;
  // Cached geometry.
  double u_t_, u_b_, u_o_;  // |psi0> components in the subspace basis
  double v_t_, v_b_;        // block-uniform axis inside the target block
  double w_b_, w_o_;        // sqrt(N/K - 1), sqrt((K-1) N/K)
};

}  // namespace pqs::partial

#include "partial/interleave.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "common/math.h"

namespace pqs::partial {

std::uint64_t Schedule::iteration_count() const {
  std::uint64_t total = 0;
  for (const auto& seg : segments) {
    total += seg.count;
  }
  return total;
}

std::string Schedule::to_string() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& seg : segments) {
    if (seg.count == 0) {
      continue;
    }
    if (!first) {
      os << ' ';
    }
    os << (seg.global ? 'G' : 'L') << '^' << seg.count;
    first = false;
  }
  if (first) {
    os << "(empty)";
  }
  return os.str();
}

SubspaceState run_schedule(const SubspaceModel& model,
                           const Schedule& schedule) {
  SubspaceState s = model.uniform_start();
  for (const auto& seg : schedule.segments) {
    for (std::uint64_t i = 0; i < seg.count; ++i) {
      s = seg.global ? model.apply_global(s) : model.apply_local(s);
    }
  }
  return model.apply_step3(s);
}

double run_schedule_on_backend(const oracle::Database& db, unsigned k,
                               const Schedule& schedule,
                               qsim::BackendKind backend_kind) {
  PQS_CHECK_MSG(is_pow2(db.size()), "backend schedules need N = 2^n");
  const unsigned n = log2_exact(db.size());
  PQS_CHECK_MSG(k >= 1 && k < n, "need 1 <= k < n");
  auto backend = qsim::make_backend(
      backend_kind,
      qsim::BackendSpec::single_target(db.size(), pow2(k), db.target()));
  for (const auto& seg : schedule.segments) {
    for (std::uint64_t i = 0; i < seg.count; ++i) {
      db.add_queries(1);
      backend->apply_oracle();
      if (seg.global) {
        backend->apply_global_diffusion();
      } else {
        backend->apply_block_diffusion();
      }
    }
  }
  db.add_queries(1);  // Step 3
  backend->apply_step3();
  return backend->block_probability(backend->target_block());
}

namespace {

struct SearchContext {
  const SubspaceModel& model;
  double min_success;
  std::uint64_t global_cap;  ///< max useful length of one global segment
  std::uint64_t local_cap;   ///< max useful length of one local segment
  InterleaveOptimum best;
};

/// Depth-first over alternating segments. `s` is the state before this
/// segment; `spent` the iterations so far; `segments_left` how many more
/// segments (including this one) may be opened; `next_global` the type this
/// segment must have (alternation).
void search(SearchContext& ctx, const SubspaceState& s, std::uint64_t spent,
            unsigned segments_left, bool next_global,
            std::vector<ScheduleSegment>& stack) {
  // Option: stop here (empty remaining schedule) — evaluate Step 3.
  {
    const std::uint64_t queries = spent + 1;
    if (queries < ctx.best.queries) {
      const double p =
          ctx.model.apply_step3(s).target_block_probability();
      if (p >= ctx.min_success) {
        ctx.best.queries = queries;
        ctx.best.success = p;
        ctx.best.schedule.segments = stack;
      }
    }
  }
  if (segments_left == 0) {
    return;
  }

  const std::uint64_t cap = next_global ? ctx.global_cap : ctx.local_cap;
  SubspaceState cur = s;
  for (std::uint64_t len = 1; len <= cap; ++len) {
    cur = next_global ? ctx.model.apply_global(cur)
                      : ctx.model.apply_local(cur);
    const std::uint64_t spent_now = spent + len;
    if (spent_now + 1 >= ctx.best.queries) {
      break;  // this branch can no longer beat the incumbent
    }
    stack.push_back(ScheduleSegment{next_global, len});
    search(ctx, cur, spent_now, segments_left - 1, !next_global, stack);
    stack.pop_back();
  }
}

}  // namespace

InterleaveOptimum optimize_interleaved(std::uint64_t n_items,
                                       std::uint64_t k_blocks,
                                       double min_success,
                                       unsigned max_segments) {
  PQS_CHECK_MSG(max_segments >= 1 && max_segments <= 4,
                "max_segments must be in [1, 4] (search is exponential)");
  const SubspaceModel model(n_items, k_blocks);
  const double sqrt_n = std::sqrt(static_cast<double>(n_items));
  const double sqrt_block =
      std::sqrt(static_cast<double>(model.block_size()));

  SearchContext ctx{
      .model = model,
      .min_success = min_success,
      // One global (local) segment longer than a half rotation is wasteful.
      .global_cap =
          static_cast<std::uint64_t>(std::ceil(kHalfPi * sqrt_n / 2.0)) + 2,
      .local_cap =
          static_cast<std::uint64_t>(std::ceil(kHalfPi * sqrt_block)) + 2,
      .best = {},
  };
  ctx.best.queries = std::numeric_limits<std::uint64_t>::max();

  std::vector<ScheduleSegment> stack;
  // Try schedules starting with a global segment and with a local one.
  search(ctx, model.uniform_start(), 0, max_segments, /*next_global=*/true,
         stack);
  search(ctx, model.uniform_start(), 0, max_segments, /*next_global=*/false,
         stack);
  PQS_CHECK_MSG(ctx.best.queries !=
                    std::numeric_limits<std::uint64_t>::max(),
                "no schedule met the success floor");
  return ctx.best;
}

}  // namespace pqs::partial

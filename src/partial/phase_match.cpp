#include "partial/phase_match.h"

#include <algorithm>
#include <cmath>
#include <complex>

#include "common/check.h"
#include "common/math.h"

namespace pqs::partial {

PhaseMatch solve_phase_match(double A, double B, double R) {
  PhaseMatch out;
  if (std::fabs(R) < 1e-14) {
    // No displacement needed: identity (chi = 0, phi arbitrary).
    out.feasible = true;
    return out;
  }
  if (std::fabs(A) < 1e-14) {
    return out;  // no cross coupling; cannot move the complement amplitude
  }
  const double denom = A * A - B * B - R * B;
  if (denom <= 0.0) {
    return out;
  }
  const double u_norm2 = R * R / denom;
  if (u_norm2 > 4.0 + 1e-12) {
    return out;
  }
  const double cos_chi = 1.0 - std::min(u_norm2, 4.0) / 2.0;
  const double sin_chi = clamped_sqrt(1.0 - cos_chi * cos_chi);
  const std::complex<double> u{cos_chi - 1.0, sin_chi};
  // u A e^{i phi} = R - u B.
  const std::complex<double> x = (R - u * B) / (u * A);
  PQS_CHECK_MSG(approx_eq(std::abs(x), 1.0, 1e-6),
                "phase match solution is not a pure phase");
  out.feasible = true;
  out.oracle_phase = std::arg(x);
  out.diffusion_phase = std::atan2(sin_chi, cos_chi);
  return out;
}

PhaseMatch solve_phase_match_affine(double A, double B, double a0, double C) {
  PhaseMatch out;
  if (std::fabs(A) < 1e-14) {
    return out;
  }
  const double P = C - B;
  const double Q = a0 - B;
  const double denom = 2.0 * P * Q - 2.0 * A * A;
  if (std::fabs(denom) < 1e-300) {
    return out;
  }
  const double cos_chi = (P * P + Q * Q - 2.0 * A * A) / denom;
  if (std::fabs(cos_chi) > 1.0 + 1e-12) {
    return out;
  }
  const double c = std::clamp(cos_chi, -1.0, 1.0);
  // chi = 0 would make the step the identity; reject the degenerate root.
  if (c > 1.0 - 1e-14 && std::fabs(a0 - C) > 1e-12) {
    return out;
  }
  const double sin_chi = clamped_sqrt(1.0 - c * c);
  const std::complex<double> zeta{c, sin_chi};
  const std::complex<double> u = zeta - 1.0;
  // e^{i phi} = (zeta P - Q) / (u A).
  const std::complex<double> x = (zeta * P - Q) / (u * A);
  if (!approx_eq(std::abs(x), 1.0, 1e-6)) {
    return out;
  }
  out.feasible = true;
  out.oracle_phase = std::arg(x);
  out.diffusion_phase = std::atan2(sin_chi, c);
  return out;
}

}  // namespace pqs::partial

#include "partial/optimizer.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/math.h"

namespace pqs::partial {

StepAngles step_angles(double eps, std::uint64_t k_blocks) {
  PQS_CHECK(k_blocks >= 2);
  PQS_CHECK_MSG(eps >= 0.0 && eps <= 1.0, "eps must lie in [0, 1]");
  const auto k = static_cast<double>(k_blocks);
  StepAngles a;
  a.theta = kHalfPi * eps;
  const double s = std::sin(a.theta);
  a.alpha = clamped_sqrt(1.0 - (k - 1.0) / k * s * s);
  const double arg1 = s / (a.alpha * std::sqrt(k));
  const double arg2 = (k - 2.0) * s / (2.0 * a.alpha * std::sqrt(k));
  if (arg1 > 1.0 + 1e-12 || arg2 > 1.0 + 1e-12) {
    a.feasible = false;
    return a;
  }
  a.theta1 = clamped_asin(arg1);
  a.theta2 = clamped_asin(arg2);
  a.feasible = true;
  return a;
}

double query_coefficient(double eps, std::uint64_t k_blocks) {
  const StepAngles a = step_angles(eps, k_blocks);
  if (!a.feasible) {
    return std::numeric_limits<double>::infinity();
  }
  const auto k = static_cast<double>(k_blocks);
  return kQuarterPi * (1.0 - eps) +
         (a.theta1 + a.theta2) / (2.0 * std::sqrt(k));
}

EpsilonOptimum optimize_epsilon(std::uint64_t k_blocks) {
  // Dense grid to localize the optimum (the function is smooth and unimodal
  // on the feasible region, but the feasible region can end before eps = 1).
  constexpr int kGrid = 4000;
  double best_eps = 0.0;
  double best_c = query_coefficient(0.0, k_blocks);
  for (int i = 1; i <= kGrid; ++i) {
    const double eps = static_cast<double>(i) / kGrid;
    const double c = query_coefficient(eps, k_blocks);
    if (c < best_c) {
      best_c = c;
      best_eps = eps;
    }
  }
  // Golden-section refinement on [best - h, best + h].
  const double h = 1.0 / kGrid;
  double lo = std::max(0.0, best_eps - h);
  double hi = std::min(1.0, best_eps + h);
  const double gr = (std::sqrt(5.0) - 1.0) / 2.0;
  double x1 = hi - gr * (hi - lo);
  double x2 = lo + gr * (hi - lo);
  double f1 = query_coefficient(x1, k_blocks);
  double f2 = query_coefficient(x2, k_blocks);
  for (int iter = 0; iter < 200 && hi - lo > 1e-12; ++iter) {
    if (f1 < f2) {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - gr * (hi - lo);
      f1 = query_coefficient(x1, k_blocks);
    } else {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + gr * (hi - lo);
      f2 = query_coefficient(x2, k_blocks);
    }
  }
  EpsilonOptimum opt;
  opt.epsilon = (lo + hi) / 2.0;
  opt.coefficient = query_coefficient(opt.epsilon, k_blocks);
  if (best_c < opt.coefficient) {  // grid point beat the refinement bracket
    opt.epsilon = best_eps;
    opt.coefficient = best_c;
  }
  opt.angles = step_angles(opt.epsilon, k_blocks);
  return opt;
}

IntegerOptimum optimize_integer(std::uint64_t n_items, std::uint64_t k_blocks,
                                double min_success, std::uint64_t n_marked) {
  const SubspaceModel model(n_items, k_blocks, n_marked);
  const double sqrt_n = std::sqrt(static_cast<double>(n_items));
  const double sqrt_block = std::sqrt(static_cast<double>(model.block_size()));
  const auto l1_max =
      static_cast<std::uint64_t>(std::ceil(kQuarterPi * sqrt_n)) + 2;
  const auto l2_max =
      static_cast<std::uint64_t>(std::ceil(kHalfPi * sqrt_block)) + 2;

  IntegerOptimum best;
  best.queries = std::numeric_limits<std::uint64_t>::max();

  SubspaceState after_l1 = model.uniform_start();
  for (std::uint64_t l1 = 0; l1 <= l1_max; ++l1) {
    if (l1 + 1 >= best.queries) {
      break;  // even l2 = 0 cannot beat the incumbent
    }
    SubspaceState s = after_l1;
    for (std::uint64_t l2 = 0; l2 <= l2_max; ++l2) {
      const std::uint64_t queries = l1 + l2 + 1;
      if (queries >= best.queries) {
        break;
      }
      const double p = model.apply_step3(s).target_block_probability();
      if (p >= min_success) {
        best = IntegerOptimum{l1, l2, queries, p};
        break;
      }
      s = model.apply_local(s);
    }
    after_l1 = model.apply_global(after_l1);
  }
  PQS_CHECK_MSG(best.queries != std::numeric_limits<std::uint64_t>::max(),
                "no (l1, l2) met the success floor; floor too high?");
  return best;
}

IntegerOptimum optimize_schedule(std::uint64_t n_items,
                                 std::uint64_t k_blocks, double min_success,
                                 std::uint64_t n_marked,
                                 std::uint64_t exact_limit) {
  if (n_items <= exact_limit) {
    return optimize_integer(n_items, k_blocks, min_success, n_marked);
  }
  // Asymptotic geometry; M marked items shrink both angles by sqrt(M)
  // (sin(theta) = sqrt(M/N), the multi-target Grover angle).
  const EpsilonOptimum eps = optimize_epsilon(k_blocks);
  const double m = static_cast<double>(n_marked);
  const double sqrt_n = std::sqrt(static_cast<double>(n_items) / m);
  const double sqrt_block =
      std::sqrt(static_cast<double>(n_items / k_blocks) / m);
  IntegerOptimum out;
  out.l1 = static_cast<std::uint64_t>(
      std::llround(kQuarterPi * (1.0 - eps.epsilon) * sqrt_n));
  out.l2 = static_cast<std::uint64_t>(std::llround(
      (eps.angles.theta1 + eps.angles.theta2) / 2.0 * sqrt_block));
  out.queries = out.l1 + out.l2 + 1;
  const SubspaceModel model(n_items, k_blocks, n_marked);
  out.success = model.run_grk(out.l1, out.l2).target_block_probability();
  return out;
}

double default_min_success(std::uint64_t n_items) {
  return 1.0 - 4.0 / std::sqrt(static_cast<double>(n_items));
}

double recipe_coefficient(std::uint64_t k_blocks) {
  return query_coefficient(1.0 / std::sqrt(static_cast<double>(k_blocks)),
                           k_blocks);
}

}  // namespace pqs::partial

// Closed-form phase matching for generalized Grover iterations.
//
// Both sure-success constructions in this library (full search in
// grover/exact.*, partial search in partial/certainty.*) end with one
// generalized iteration D(chi) . O(phi): the oracle multiplies the target
// amplitude by e^{i phi}, and the diffusion is replaced by the rotation
// I + (e^{i chi} - 1)|u><u| about the relevant uniform axis u.
//
// In the 2-D invariant plane spanned by the target direction and its
// complement, the effect on the complement amplitude is
//
//     a' = a + u (A e^{i phi} + B),   u = e^{i chi} - 1,
//
// with real constants A (cross term), B (self term) determined by the
// geometry. Requiring a' = a + R for a chosen real displacement R and
// |e^{i phi}| = 1 gives |u|^2 = R^2 / (A^2 - B^2 - R B) in closed form; this
// header solves that equation.
#pragma once

namespace pqs::partial {

struct PhaseMatch {
  bool feasible = false;  ///< false when one iteration cannot reach R
  double oracle_phase = 0.0;     ///< phi
  double diffusion_phase = 0.0;  ///< chi
};

/// Solve u (A e^{i phi} + B) = R for (phi, chi). `A` must be nonzero.
/// Infeasible when R^2 / (A^2 - B^2 - R B) is not in (0, 4] (the single
/// generalized iteration cannot produce that displacement).
PhaseMatch solve_phase_match(double A, double B, double R);

/// The affine form needed when the *other* amplitudes also pick up the
/// rotation phase: solve
///
///     a0 + (e^{i chi} - 1)(A e^{i phi} + B) = C e^{i chi}
///
/// for (phi, chi), with A, B, a0, C all real. This is the sure-success
/// partial-search condition: after the generalized local iteration the
/// non-target amplitude carries e^{i chi}, so the target-block rest
/// amplitude must land on C e^{i chi} for Step 3 to cancel exactly.
/// Closed form: cos(chi) = (P^2 + Q^2 - 2 A^2) / (2 P Q - 2 A^2) with
/// P = C - B, Q = a0 - B.
PhaseMatch solve_phase_match_affine(double A, double B, double a0, double C);

}  // namespace pqs::partial

// The Grover–Radhakrishnan partial-search algorithm (Section 3, Figure 2),
// engine-agnostic.
//
//   Step 1: l1 global iterations A = I0 . It on |psi0>.
//   Step 2: l2 per-block iterations A_[N/K] = (I_[K] (x) I0,[N/K]) . It.
//   Step 3: one query moves the target out (ancilla flag); controlled on the
//           flag being clear, invert the remaining amplitudes about their
//           mean. All non-target-block amplitudes become (nearly) zero.
//
// Measuring the first k bits then yields the target block. Iteration counts
// default to the exact finite-N integer optimum from partial/optimizer.h.
//
// The run dispatches over qsim::Backend (GrkOptions::backend): the dense
// engine reproduces the historical O(N)-per-step state-vector run bit for
// bit; the symmetry engine evolves the same dynamics in O(K) per step,
// exact to machine precision, which is what makes n = 48..62-qubit partial
// search instantaneous. kAuto picks dense up to qsim::auto_backend_cutoff()
// items and symmetry beyond. Snapshot capture needs full amplitude vectors
// and therefore the dense engine.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/random.h"
#include "oracle/database.h"
#include "partial/analytic.h"
#include "qsim/backend.h"
#include "qsim/state_vector.h"

namespace pqs::partial {

struct GrkOptions {
  /// Explicit iteration counts; when absent the finite-N integer optimum
  /// (success floor `min_success`) is used.
  std::optional<std::uint64_t> l1;
  std::optional<std::uint64_t> l2;
  /// Success floor for the automatic choice; <= 0 means the default
  /// 1 - 4/sqrt(N).
  double min_success = 0.0;
  /// Record the full amplitude vector after each step (small N only;
  /// requires the dense engine).
  bool capture_snapshots = false;
  /// Simulation engine (see header comment).
  qsim::BackendKind backend = qsim::BackendKind::kAuto;
};

/// Amplitude snapshots for the Figure-5 pictures.
struct GrkSnapshots {
  std::vector<qsim::Amplitude> after_step1;
  std::vector<qsim::Amplitude> after_step2;
  std::vector<qsim::Amplitude> after_step3;
};

struct GrkResult {
  std::uint64_t l1 = 0;
  std::uint64_t l2 = 0;
  std::uint64_t queries = 0;  ///< l1 + l2 + 1, also metered by the Database
  /// Pre-measurement probability of the target block / the target state.
  double block_probability = 0.0;
  double state_probability = 0.0;
  qsim::Index measured_block = 0;
  bool correct = false;
  qsim::BackendKind backend_used = qsim::BackendKind::kDense;
  GrkSnapshots snapshots;  ///< populated only when capture_snapshots
};

/// Run partial search for the first `k` bits of db's target (K = 2^k blocks).
/// db.size() must be a power of two with n > k >= 1 and N/K >= 2. With the
/// symmetry engine n may exceed the dense 30-qubit ceiling (up to 62).
GrkResult run_partial_search(const oracle::Database& db, unsigned k, Rng& rng,
                             const GrkOptions& options = {});

/// Evolve the pre-measurement state on the chosen engine (no sampling); the
/// returned backend exposes probabilities, block distributions, and
/// amplitude materialization.
std::unique_ptr<qsim::Backend> evolve_partial_search_on_backend(
    const oracle::Database& db, unsigned k, std::uint64_t l1,
    std::uint64_t l2, qsim::BackendKind kind);

/// Evolve the pre-measurement state only (no sampling); exposes the state
/// for analyses that need more than the block distribution. Dense by
/// definition.
qsim::StateVector evolve_partial_search(const oracle::Database& db, unsigned k,
                                        std::uint64_t l1, std::uint64_t l2);

}  // namespace pqs::partial

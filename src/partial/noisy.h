// Partial search under oracle noise (robustness extension, DESIGN.md §6).
//
// Noise is injected after every oracle call — the physically dominant noise
// point in query algorithms — via trajectory sampling. The interesting
// output is the measured block-success probability as a function of the
// per-qubit error rate, for both partial search and full Grover search:
// partial search makes FEWER queries, so for equal per-query noise it
// retains its answer quality longer, compounding its advantage.
#pragma once

#include <cstdint>

#include "common/random.h"
#include "common/stats.h"
#include "oracle/database.h"
#include "qsim/noise.h"

namespace pqs::partial {

struct NoisyRunResult {
  std::uint64_t trials = 0;
  std::uint64_t queries_per_trial = 0;
  double success_rate = 0.0;     ///< fraction of trials answering correctly
  double mean_injected = 0.0;    ///< average Pauli errors injected per trial
};

/// Partial search (auto-optimized l1/l2, default floor) with `model` noise
/// after every oracle call; `trials` trajectory samples.
NoisyRunResult run_noisy_partial_search(const oracle::Database& db, unsigned k,
                                        const qsim::NoiseModel& model,
                                        std::uint64_t trials, Rng& rng);

/// Full Grover search under the same noise, measuring the probability that
/// the measured address lies in the correct block (the same question the
/// partial searcher answers, for a fair comparison).
NoisyRunResult run_noisy_full_search_block(const oracle::Database& db,
                                           unsigned k,
                                           const qsim::NoiseModel& model,
                                           std::uint64_t trials, Rng& rng);

}  // namespace pqs::partial

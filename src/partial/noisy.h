// Partial search under oracle noise (robustness extension, DESIGN.md §6).
//
// Noise is injected after every oracle call — the physically dominant noise
// point in query algorithms — via trajectory sampling. The interesting
// output is the measured block-success probability as a function of the
// per-qubit error rate, for both partial search and full Grover search:
// partial search makes FEWER queries, so for equal per-query noise it
// retains its answer quality longer, compounding its advantage.
//
// Trajectories run on qsim::Backend (NoisyOptions::backend): the dense
// engine samples exact Pauli trajectories, the symmetry engine evolves
// per-class noise moments (see qsim/backend.h), which pushes noise sweeps
// past the 30-qubit dense ceiling. Trials fan across OpenMP threads via
// qsim::BatchRunner with per-shot RNG streams, so results are reproducible
// for any thread count; each trial counts its queries locally and the
// database meter advances by exactly trials * queries_per_trial.
#pragma once

#include <cstdint>
#include <optional>

#include "common/random.h"
#include "common/stats.h"
#include "oracle/database.h"
#include "qsim/backend.h"
#include "qsim/batch.h"
#include "qsim/noise.h"

namespace pqs::partial {

struct NoisyOptions {
  /// Simulation engine for the trajectories (kAuto: dense while the state
  /// fits in memory, symmetry beyond). Unsupported combinations fail
  /// loudly before any trial runs.
  qsim::BackendKind backend = qsim::BackendKind::kAuto;
  /// Shot fan-out (thread count). The seed field is ignored: per-shot
  /// streams derive from the caller's Rng so one seed controls the run.
  qsim::BatchOptions batch;
  /// Explicit Step-1/Step-2 iteration counts for the partial searcher.
  /// When absent, the finite-N integer optimum with floor 1 - 1/sqrt(N) is
  /// computed — itself an O(sqrt(N) * sqrt(N/K)) model search, so sweeps
  /// over huge databases should compute a schedule once (optimizer.h) and
  /// pass it here rather than re-deriving it per point.
  std::optional<std::uint64_t> l1;
  std::optional<std::uint64_t> l2;
};

struct NoisyRunResult {
  std::uint64_t trials = 0;
  /// Oracle queries of one trial, counted by the trial loop itself; the
  /// database meter advances by exactly trials * queries_per_trial
  /// (regression-pinned in tests/test_noise).
  std::uint64_t queries_per_trial = 0;
  double success_rate = 0.0;     ///< fraction of trials answering correctly
  /// The block measured most often across the trials (ties resolve to the
  /// smallest index) — the aggregate's actual answer, which equals the
  /// target block iff the majority of trajectories got it right.
  qsim::Index modal_block = 0;
  double mean_injected = 0.0;    ///< average Pauli errors injected per trial
  qsim::BackendKind backend_used = qsim::BackendKind::kDense;
};

/// Partial search (auto-optimized l1/l2, default floor) with `model` noise
/// after every oracle call; `trials` trajectory samples.
NoisyRunResult run_noisy_partial_search(const oracle::Database& db, unsigned k,
                                        const qsim::NoiseModel& model,
                                        std::uint64_t trials, Rng& rng,
                                        const NoisyOptions& options = {});

/// Full Grover search under the same noise, measuring the probability that
/// the measured address lies in the correct block (the same question the
/// partial searcher answers, for a fair comparison).
NoisyRunResult run_noisy_full_search_block(const oracle::Database& db,
                                           unsigned k,
                                           const qsim::NoiseModel& model,
                                           std::uint64_t trials, Rng& rng,
                                           const NoisyOptions& options = {});

}  // namespace pqs::partial

#include "partial/twelve.h"

#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/stats.h"
#include "qsim/kernels.h"

namespace pqs::partial {

namespace {

using qsim::Amplitude;
using qsim::Index;

std::vector<double> real_parts(const std::vector<Amplitude>& amps) {
  std::vector<double> out(amps.size());
  for (std::size_t i = 0; i < amps.size(); ++i) {
    out[i] = amps[i].real();
  }
  return out;
}

/// The five-stage pattern on an arbitrary (N, K) database; returns the
/// per-stage amplitudes.
std::array<std::vector<double>, Figure1Trace::kStages> run_pattern(
    std::uint64_t n_items, std::uint64_t k_blocks, Index target) {
  PQS_CHECK(k_blocks >= 2 && n_items % k_blocks == 0);
  PQS_CHECK(n_items / k_blocks >= 2);
  PQS_CHECK(target < n_items);
  const std::size_t block = n_items / k_blocks;

  std::vector<Amplitude> amps(
      n_items,
      Amplitude{1.0 / std::sqrt(static_cast<double>(n_items)), 0.0});
  std::array<std::vector<double>, Figure1Trace::kStages> stages;
  stages[0] = real_parts(amps);  // (A)

  qsim::kernels::phase_flip_index(amps, target);  // (B), query 1
  stages[1] = real_parts(amps);

  qsim::kernels::reflect_blocks_about_uniform(amps, block);  // (C)
  stages[2] = real_parts(amps);

  qsim::kernels::phase_flip_index(amps, target);  // (D), query 2
  stages[3] = real_parts(amps);

  qsim::kernels::reflect_about_uniform(amps);  // (E)
  stages[4] = real_parts(amps);
  return stages;
}

}  // namespace

std::string Figure1Trace::render() const {
  static constexpr const char* kLabels[kStages] = {
      "(A) uniform superposition",
      "(B) invert target amplitude          [query 1]",
      "(C) invert about block averages",
      "(D) invert target amplitude again    [query 2]",
      "(E) invert about global average"};
  double max_abs = 1e-12;
  for (const auto& stage : stages) {
    for (const double a : stage) {
      max_abs = std::max(max_abs, std::fabs(a));
    }
  }
  std::ostringstream os;
  for (std::size_t s = 0; s < kStages; ++s) {
    os << kLabels[s] << '\n';
    for (std::size_t i = 0; i < stages[s].size(); ++i) {
      os.setf(std::ios::fixed);
      os.precision(4);
      os << "  " << (i < 10 ? " " : "") << i << "  "
         << signed_bar(stages[s][i], max_abs, 18) << "  ";
      os.width(8);
      os << stages[s][i] << '\n';
    }
    os << '\n';
  }
  return os.str();
}

Figure1Trace run_figure1(Index target) {
  constexpr std::uint64_t kItems = 12;
  constexpr std::uint64_t kBlocks = 3;
  PQS_CHECK_MSG(target < kItems, "target must be one of the twelve items");

  Figure1Trace trace;
  trace.stages = run_pattern(kItems, kBlocks, target);
  trace.queries = 2;

  const auto& final_stage = trace.stages[Figure1Trace::kStages - 1];
  const std::size_t block = kItems / kBlocks;
  const std::size_t target_block = target / block;
  double block_p = 0.0;
  for (std::size_t i = target_block * block; i < (target_block + 1) * block;
       ++i) {
    block_p += final_stage[i] * final_stage[i];
  }
  trace.block_probability = block_p;
  trace.target_probability = final_stage[target] * final_stage[target];
  return trace;
}

double two_query_block_probability(std::uint64_t n_items,
                                   std::uint64_t k_blocks, Index target) {
  const auto stages = run_pattern(n_items, k_blocks, target);
  const auto& final_stage = stages[Figure1Trace::kStages - 1];
  const std::size_t block = n_items / k_blocks;
  const std::size_t target_block = target / block;
  double block_p = 0.0;
  for (std::size_t i = target_block * block; i < (target_block + 1) * block;
       ++i) {
    block_p += final_stage[i] * final_stage[i];
  }
  return block_p;
}

std::vector<TwoQueryInstance> two_query_instances(std::uint64_t max_items) {
  // Exactness condition (derived by requiring the global mean at stage (E)
  // to be half the non-target amplitude): 2 (N - N/K - 2) = N, i.e.
  // N (K - 2) = 4 K, i.e. N = 4K / (K - 2).
  std::vector<TwoQueryInstance> out;
  for (std::uint64_t k = 3; k <= max_items; ++k) {
    if ((4 * k) % (k - 2) != 0) {
      continue;
    }
    const std::uint64_t n = 4 * k / (k - 2);
    if (n <= max_items && n % k == 0 && n / k >= 2) {
      out.push_back(TwoQueryInstance{n, k});
    }
  }
  return out;
}

}  // namespace pqs::partial

#include "partial/twelve.h"

#include <cmath>
#include <memory>
#include <sstream>

#include "common/check.h"
#include "common/stats.h"

namespace pqs::partial {

namespace {

using qsim::Amplitude;
using qsim::Index;

std::vector<double> real_parts(const std::vector<Amplitude>& amps) {
  std::vector<double> out(amps.size());
  for (std::size_t i = 0; i < amps.size(); ++i) {
    out[i] = amps[i].real();
  }
  return out;
}

/// The five-stage pattern on an arbitrary (N, K) database, run on the
/// chosen engine. When `stages` is non-null each stage's amplitudes are
/// materialized into it (both engines can, for N this small). Returns the
/// evolved backend for the final observables.
std::unique_ptr<qsim::Backend> run_pattern(
    std::uint64_t n_items, std::uint64_t k_blocks, Index target,
    qsim::BackendKind kind,
    std::array<std::vector<double>, Figure1Trace::kStages>* stages) {
  PQS_CHECK(k_blocks >= 2 && n_items % k_blocks == 0);
  PQS_CHECK(n_items / k_blocks >= 2);
  PQS_CHECK(target < n_items);

  auto backend = qsim::make_backend(
      kind, qsim::BackendSpec::single_target(n_items, k_blocks, target));
  const auto record = [&](std::size_t stage) {
    if (stages != nullptr) {
      (*stages)[stage] = real_parts(backend->amplitudes_copy());
    }
  };
  record(0);                         // (A) uniform superposition

  backend->apply_oracle();           // (B), query 1
  record(1);

  backend->apply_block_diffusion();  // (C)
  record(2);

  backend->apply_oracle();           // (D), query 2
  record(3);

  backend->apply_global_diffusion(); // (E)
  record(4);
  return backend;
}

}  // namespace

std::string Figure1Trace::render() const {
  static constexpr const char* kLabels[kStages] = {
      "(A) uniform superposition",
      "(B) invert target amplitude          [query 1]",
      "(C) invert about block averages",
      "(D) invert target amplitude again    [query 2]",
      "(E) invert about global average"};
  double max_abs = 1e-12;
  for (const auto& stage : stages) {
    for (const double a : stage) {
      max_abs = std::max(max_abs, std::fabs(a));
    }
  }
  std::ostringstream os;
  for (std::size_t s = 0; s < kStages; ++s) {
    os << kLabels[s] << '\n';
    for (std::size_t i = 0; i < stages[s].size(); ++i) {
      os.setf(std::ios::fixed);
      os.precision(4);
      os << "  " << (i < 10 ? " " : "") << i << "  "
         << signed_bar(stages[s][i], max_abs, 18) << "  ";
      os.width(8);
      os << stages[s][i] << '\n';
    }
    os << '\n';
  }
  return os.str();
}

Figure1Trace run_figure1(Index target, qsim::BackendKind backend) {
  constexpr std::uint64_t kItems = 12;
  constexpr std::uint64_t kBlocks = 3;
  PQS_CHECK_MSG(target < kItems, "target must be one of the twelve items");

  Figure1Trace trace;
  const auto engine =
      run_pattern(kItems, kBlocks, target, backend, &trace.stages);
  trace.queries = 2;
  trace.block_probability = engine->block_probability(engine->target_block());
  trace.target_probability = engine->marked_probability();
  return trace;
}

double two_query_block_probability(std::uint64_t n_items,
                                   std::uint64_t k_blocks, Index target,
                                   qsim::BackendKind backend) {
  const auto engine =
      run_pattern(n_items, k_blocks, target, backend, nullptr);
  return engine->block_probability(engine->target_block());
}

std::vector<TwoQueryInstance> two_query_instances(std::uint64_t max_items) {
  // Exactness condition (derived by requiring the global mean at stage (E)
  // to be half the non-target amplitude): 2 (N - N/K - 2) = N, i.e.
  // N (K - 2) = 4 K, i.e. N = 4K / (K - 2).
  std::vector<TwoQueryInstance> out;
  for (std::uint64_t k = 3; k <= max_items; ++k) {
    if ((4 * k) % (k - 2) != 0) {
      continue;
    }
    const std::uint64_t n = 4 * k / (k - 2);
    if (n <= max_items && n % k == 0 && n / k >= 2) {
      out.push_back(TwoQueryInstance{n, k});
    }
  }
  return out;
}

}  // namespace pqs::partial

// Schedule ablation: arbitrary interleavings of global and local iterations.
//
// The paper's algorithm is the two-segment schedule G^l1 L^l2 (+ the Step-3
// query). Nothing in the framework forbids richer interleavings such as
// G^a L^b G^c — indeed the follow-up literature (Korepin-Grover 2005)
// optimizes exactly such sequences. This module searches, on the exact
// subspace model, over all alternating schedules with up to `max_segments`
// segments, and reports the cheapest one meeting a success floor. The
// bench (bench_interleave) compares it against the paper's two-segment
// optimum: at practical sizes a third segment buys a small but real
// improvement, and the gain saturates quickly with more segments.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "oracle/database.h"
#include "partial/analytic.h"
#include "qsim/backend.h"

namespace pqs::partial {

/// One maximal run of identical iterations.
struct ScheduleSegment {
  bool global = true;        ///< true: A = I0.It; false: A_[N/K]
  std::uint64_t count = 0;
};

/// An alternating schedule; total queries = sum of counts + 1 (Step 3).
struct Schedule {
  std::vector<ScheduleSegment> segments;

  std::uint64_t iteration_count() const;
  std::uint64_t query_count() const { return iteration_count() + 1; }
  /// e.g. "G^12 L^5 G^3".
  std::string to_string() const;
};

/// Evolve the model through a schedule and Step 3; returns the final state.
SubspaceState run_schedule(const SubspaceModel& model,
                           const Schedule& schedule);

/// Evolve the same schedule (plus Step 3) on a simulation backend bound to
/// `db`, metering queries on the database. Returns the final target-block
/// probability — the quantity the optimizer scores — so optimized schedules
/// can be validated or executed on either engine at any size.
double run_schedule_on_backend(const oracle::Database& db, unsigned k,
                               const Schedule& schedule,
                               qsim::BackendKind backend);

struct InterleaveOptimum {
  Schedule schedule;
  std::uint64_t queries = 0;
  double success = 0.0;
};

/// Cheapest alternating schedule with at most `max_segments` segments whose
/// post-Step-3 target-block probability is >= min_success. Exhaustive with
/// branch-and-bound pruning on the exact O(1)-per-step model. max_segments
/// is capped at 4 (the search is exponential in the segment count).
InterleaveOptimum optimize_interleaved(std::uint64_t n_items,
                                       std::uint64_t k_blocks,
                                       double min_success,
                                       unsigned max_segments);

}  // namespace pqs::partial

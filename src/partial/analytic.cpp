#include "partial/analytic.h"

#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/math.h"

namespace pqs::partial {

namespace {
using Cplx = std::complex<double>;
}

double SubspaceState::norm_squared() const {
  return std::norm(a_t) + std::norm(a_b) + std::norm(a_o);
}

double SubspaceState::target_block_probability() const {
  return std::norm(a_t) + std::norm(a_b);
}

std::string SubspaceState::to_string() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(6);
  os << "(a_t=" << a_t.real();
  if (std::fabs(a_t.imag()) > 1e-12) {
    os << (a_t.imag() < 0 ? "" : "+") << a_t.imag() << "i";
  }
  os << ", a_b=" << a_b.real() << ", a_o=" << a_o.real() << ")";
  return os.str();
}

SubspaceModel::SubspaceModel(std::uint64_t n_items, std::uint64_t n_blocks,
                             std::uint64_t n_marked)
    : n_(n_items), k_(n_blocks), m_(n_marked) {
  PQS_CHECK_MSG(k_ >= 2, "partial search needs at least two blocks");
  PQS_CHECK_MSG(n_ % k_ == 0, "blocks must partition the database evenly");
  PQS_CHECK_MSG(m_ >= 1, "need at least one marked item");
  PQS_CHECK_MSG(m_ < n_ / k_,
                "marked set must leave room in its block (M < N/K)");

  const auto nd = static_cast<double>(n_);
  const auto kd = static_cast<double>(k_);
  const auto md = static_cast<double>(m_);
  const double block = nd / kd;

  w_b_ = std::sqrt(block - md);
  w_o_ = std::sqrt((kd - 1.0) * block);

  const double inv_sqrt_n = 1.0 / std::sqrt(nd);
  u_t_ = std::sqrt(md) * inv_sqrt_n;
  u_b_ = w_b_ * inv_sqrt_n;
  u_o_ = w_o_ * inv_sqrt_n;

  const double inv_sqrt_block = 1.0 / std::sqrt(block);
  v_t_ = std::sqrt(md) * inv_sqrt_block;
  v_b_ = w_b_ * inv_sqrt_block;
}

SubspaceState SubspaceModel::uniform_start() const {
  return SubspaceState{Cplx{u_t_, 0.0}, Cplx{u_b_, 0.0}, Cplx{u_o_, 0.0}};
}

SubspaceState SubspaceModel::apply_global(const SubspaceState& s) const {
  // It: flip the target amplitude.
  const Cplx t = -s.a_t;
  // I0 = 2|u><u| - I with u = (u_t, u_b, u_o).
  const Cplx overlap = u_t_ * t + u_b_ * s.a_b + u_o_ * s.a_o;
  return SubspaceState{
      2.0 * overlap * u_t_ - t,
      2.0 * overlap * u_b_ - s.a_b,
      2.0 * overlap * u_o_ - s.a_o,
  };
}

SubspaceState SubspaceModel::apply_local(const SubspaceState& s) const {
  // It: flip the target amplitude.
  const Cplx t = -s.a_t;
  // I0,[N/K] = 2|v><v| - I inside the target block; non-target blocks hold
  // block-uniform states, which the reflection fixes.
  const Cplx overlap = v_t_ * t + v_b_ * s.a_b;
  return SubspaceState{
      2.0 * overlap * v_t_ - t,
      2.0 * overlap * v_b_ - s.a_b,
      s.a_o,
  };
}

SubspaceState SubspaceModel::apply_local_generalized(const SubspaceState& s,
                                                     double phi,
                                                     double chi) const {
  // Oracle phase on the target.
  const Cplx t = std::polar(1.0, phi) * s.a_t;
  // Inside the target block: I + (e^{i chi} - 1)|v><v| on (a_t, a_b).
  // In non-target blocks the state is block-uniform, so the rotation
  // multiplies it by the full phase factor... no: I + (e^{i chi}-1)|u><u|
  // acts on the block-uniform component as multiplication by e^{i chi}.
  const Cplx u_factor = std::polar(1.0, chi) - 1.0;
  const Cplx overlap = v_t_ * t + v_b_ * s.a_b;
  return SubspaceState{
      t + u_factor * overlap * v_t_,
      s.a_b + u_factor * overlap * v_b_,
      std::polar(1.0, chi) * s.a_o,
  };
}

SubspaceState SubspaceModel::apply_step3(const SubspaceState& s) const {
  // One query marks the target set on an ancilla; controlled on the ancilla
  // being clear, all other amplitudes are inverted about their common mean.
  const Cplx sum = s.a_b * w_b_ + s.a_o * w_o_;
  const Cplx twice_mean = 2.0 * sum / static_cast<double>(n_ - m_);
  return SubspaceState{
      s.a_t,
      twice_mean * w_b_ - s.a_b,
      twice_mean * w_o_ - s.a_o,
  };
}

SubspaceState SubspaceModel::run_grk(std::uint64_t l1, std::uint64_t l2) const {
  SubspaceState s = uniform_start();
  for (std::uint64_t i = 0; i < l1; ++i) {
    s = apply_global(s);
  }
  for (std::uint64_t i = 0; i < l2; ++i) {
    s = apply_local(s);
  }
  return apply_step3(s);
}

Cplx SubspaceModel::per_state_non_target(const SubspaceState& s) const {
  return s.a_o / w_o_;
}

Cplx SubspaceModel::per_state_target_rest(const SubspaceState& s) const {
  return s.a_b / w_b_;
}

double SubspaceModel::step3_residual(const SubspaceState& s) const {
  const SubspaceState after = apply_step3(s);
  return std::abs(after.a_o);
}

double SubspaceModel::target_block_angle(const SubspaceState& s) const {
  return std::atan2(std::abs(s.a_t), s.a_b.real());
}

}  // namespace pqs::partial

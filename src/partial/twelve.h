// The paper's worked example (Section 1.3, Figure 1): a twelve-item database
// split into three blocks, searched with just TWO queries, after which all
// amplitude sits in the target block (and the target itself holds 3/4 of it).
//
// The stage sequence of Figure 1:
//   (A) uniform superposition of the twelve states
//   (B) invert the amplitude of the target state            [query 1]
//   (C) invert about the average in each of the three blocks
//   (D) invert the amplitude of the target state again      [query 2]
//   (E) invert about the global average
//
// N = 12 is not a power of two; the stage pattern runs on qsim::Backend,
// whose engines are dimension-agnostic (blocks are contiguous address
// ranges) even though the qubit-based StateVector is not. Both engines
// apply: the dense engine replays the raw O(N) kernels, the symmetry
// engine evolves the three class amplitudes in O(1) per stage, and the
// per-stage pictures come from Backend::amplitudes_copy.
//
// The module also answers "when does the 2-query trick work in general?":
// exactly when N = 4K/(K - 2) (derived in two_query_instances), which yields
// the paper's (N=12, K=3) and the additional (N=8, K=4).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "qsim/backend.h"
#include "qsim/types.h"

namespace pqs::partial {

/// Amplitudes at each of the five stages (A)-(E) of Figure 1.
struct Figure1Trace {
  static constexpr std::size_t kStages = 5;
  std::array<std::vector<double>, kStages> stages;  ///< real amplitudes
  std::uint64_t queries = 0;                        ///< always 2
  double block_probability = 0.0;   ///< mass of the target block at (E); 1
  double target_probability = 0.0;  ///< |a_t|^2 at (E); 3/4

  /// Multi-line picture in the style of Figure 1 (signed bars per state).
  std::string render() const;
};

/// Run the Figure-1 example. `target` is the marked address in [0, 12).
/// Either engine works (the trace materializes per-stage amplitudes, which
/// both engines expose for N this small).
Figure1Trace run_figure1(qsim::Index target = 7,
                         qsim::BackendKind backend = qsim::BackendKind::kAuto);

/// Run the same 5-stage pattern on a general (N, K) database. Returns the
/// final target-block probability (1.0 exactly iff N = 4K/(K-2)).
double two_query_block_probability(
    std::uint64_t n_items, std::uint64_t k_blocks, qsim::Index target,
    qsim::BackendKind backend = qsim::BackendKind::kAuto);

/// All (N, K) with K | N, N/K >= 2 for which the two-query pattern is exact.
struct TwoQueryInstance {
  std::uint64_t n_items;
  std::uint64_t k_blocks;
};
std::vector<TwoQueryInstance> two_query_instances(std::uint64_t max_items);

}  // namespace pqs::partial

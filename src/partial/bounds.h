// Closed-form bounds from the paper, classical and quantum.
//
// All quantum bounds are stated as the coefficient of sqrt(N); the paper's
// Section 3.1 table lists them to three decimals. The classical bounds are
// absolute query counts.
#pragma once

#include <cstdint>

namespace pqs::partial {

/// Full database search: (pi/4) ~ 0.785, optimal by Zalka.
double full_search_coefficient();

/// Theorem 2 lower bound for partial search: (pi/4)(1 - 1/sqrt(K)).
/// The paper's table: K=2 -> 0.23, K=3 -> 0.332, K=4 -> 0.393, K=5 -> 0.434,
/// K=8 -> 0.508, K=32 -> 0.647.
double lower_bound_coefficient(std::uint64_t k_blocks);

/// The naive Section-1.2 algorithm (discard one random block, Grover over the
/// rest): (pi/4) sqrt((K-1)/K) ~ (pi/4)(1 - 1/(2K)).
double naive_block_discard_coefficient(std::uint64_t k_blocks);

/// Large-K estimate of the Section-3 algorithm with eps = 1/sqrt(K):
/// (pi/4)(1 - c/sqrt(K)) with c = 1 - (2/pi) arcsin(pi/4) ~ 0.4251 >= 0.42.
double large_k_upper_coefficient(std::uint64_t k_blocks);
/// The constant c = 1 - (2/pi) arcsin(pi/4) itself.
double large_k_constant();

/// Theorem 2 accounting: a partial-search coefficient c run at every level of
/// the reduction gives full search at c * sqrt(K)/(sqrt(K)-1) * sqrt(N).
double reduction_total_coefficient(double partial_coefficient,
                                   std::uint64_t k_blocks);

// --- Classical (Section 1.1 / Appendix A) ---

/// Zero-error randomized full search, expected probes: exactly (N+1)/2
/// (the paper quotes the leading term N/2).
double classical_full_expected(std::uint64_t n_items);

/// Deterministic partial search, worst case: N (1 - 1/K).
std::uint64_t classical_partial_deterministic(std::uint64_t n_items,
                                              std::uint64_t k_blocks);

/// Zero-error randomized partial search, expected probes, paper's leading
/// form: N/2 (1 - 1/K^2).
double classical_partial_randomized_paper(std::uint64_t n_items,
                                          std::uint64_t k_blocks);

/// The same quantity with the exact O(1) term:
/// N/2 (1 - 1/K^2) + (1 - 1/K)/2; the Monte-Carlo baseline matches this.
double classical_partial_randomized_exact(std::uint64_t n_items,
                                          std::uint64_t k_blocks);

/// Appendix A lower-bound value for the uniform-target distribution:
/// (1 - 1/K) N/2 (1 - 1/K) + (1/K) N (1 - 1/K) = N/2 (1 - 1/K^2).
double classical_partial_lower_bound(std::uint64_t n_items,
                                     std::uint64_t k_blocks);

}  // namespace pqs::partial

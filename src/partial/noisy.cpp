#include "partial/noisy.h"

#include <cmath>
#include <functional>
#include <map>
#include <vector>

#include "common/check.h"
#include "common/math.h"
#include "partial/optimizer.h"

namespace pqs::partial {

namespace {

/// Shared trial harness: validate everything ONCE (model bounds, engine
/// support — a throw inside the OpenMP region would terminate the process),
/// fan the trials across threads with per-shot RNG streams, and settle the
/// database meter with the exact per-trial query count afterwards.
///
/// `trial` runs one trajectory on a fresh backend with this shot's rng,
/// tallies injected errors and oracle queries into its out-params, and
/// returns the measured block.
NoisyRunResult run_trials(
    const oracle::Database& db, const qsim::BackendSpec& spec,
    const qsim::NoiseModel& model, std::uint64_t trials, Rng& rng,
    const NoisyOptions& options, std::string_view what,
    const std::function<qsim::Index(qsim::Backend&, Rng&, std::uint64_t&,
                                    std::uint64_t&)>& trial) {
  PQS_CHECK_MSG(trials > 0, "need at least one trial");
  model.validate();  // once at entry; the per-trial hot loop is check-free
  const qsim::BackendKind resolved =
      qsim::resolve_backend(options.backend, spec);
  if (model.enabled()) {
    qsim::require_noise_support(resolved, spec, what);
  }

  qsim::BatchOptions batch = options.batch;
  batch.seed = rng.next();  // one draw per run: the caller's seed rules
  const qsim::BatchRunner runner(batch);

  const qsim::Index target_block =
      spec.marked.front() / (spec.n_items / spec.n_blocks);
  std::vector<std::uint64_t> injected(trials);
  std::vector<std::uint64_t> queries(trials);
  const auto outcomes = runner.map_shots(
      trials, [&](std::uint64_t shot, Rng& shot_rng) -> qsim::Index {
        auto backend = qsim::make_backend(resolved, spec);
        return trial(*backend, shot_rng, injected[shot], queries[shot]);
      });

  NoisyRunResult result;
  result.trials = trials;
  result.backend_used = resolved;
  result.queries_per_trial = queries.front();
  std::uint64_t correct = 0;
  std::uint64_t injected_total = 0;
  std::map<qsim::Index, std::uint64_t> counts;
  for (std::uint64_t t = 0; t < trials; ++t) {
    // Every trial runs the same schedule; the meter below is exact only
    // because this holds.
    PQS_CHECK(queries[t] == result.queries_per_trial);
    correct += outcomes[t] == target_block ? 1 : 0;
    injected_total += injected[t];
    ++counts[outcomes[t]];
  }
  std::uint64_t modal_count = 0;
  for (const auto& [block, count] : counts) {  // ascending: ties -> smallest
    if (count > modal_count) {
      modal_count = count;
      result.modal_block = block;
    }
  }
  db.add_queries(trials * result.queries_per_trial);
  result.success_rate =
      static_cast<double>(correct) / static_cast<double>(trials);
  result.mean_injected =
      static_cast<double>(injected_total) / static_cast<double>(trials);
  return result;
}

}  // namespace

NoisyRunResult run_noisy_partial_search(const oracle::Database& db, unsigned k,
                                        const qsim::NoiseModel& model,
                                        std::uint64_t trials, Rng& rng,
                                        const NoisyOptions& options) {
  PQS_CHECK_MSG(is_pow2(db.size()), "noisy partial search needs N = 2^n");
  const unsigned n = log2_exact(db.size());
  PQS_CHECK_MSG(k >= 1 && k < n, "need 1 <= k < n");
  const auto spec =
      qsim::BackendSpec::single_target(db.size(), pow2(k), db.target());
  // Reject unsupported engine/model combinations BEFORE paying for the
  // schedule optimizer (which is expensive at large N).
  model.validate();
  if (model.enabled()) {
    qsim::require_noise_support(qsim::resolve_backend(options.backend, spec),
                                spec, "noisy partial search");
  }

  struct Schedule {
    std::uint64_t l1, l2;
  } opt{};
  if (options.l1.has_value() && options.l2.has_value()) {
    opt = {*options.l1, *options.l2};
  } else {
    // Tight floor (error 1/sqrt N): the comparison against full search is
    // only meaningful when both start from a near-1 clean baseline.
    // optimize_schedule keeps this affordable past the exact integer
    // scan's range (the asymptotic geometry takes over above 2^24 items).
    const auto schedule = optimize_schedule(
        db.size(), pow2(k),
        1.0 - 1.0 / std::sqrt(static_cast<double>(db.size())));
    opt = {options.l1.value_or(schedule.l1),
           options.l2.value_or(schedule.l2)};
  }

  return run_trials(
      db, spec, model, trials, rng, options, "noisy partial search",
      [&](qsim::Backend& backend, Rng& shot_rng, std::uint64_t& injected,
          std::uint64_t& queries) {
        for (std::uint64_t i = 0; i < opt.l1; ++i) {
          ++queries;
          backend.apply_oracle();
          injected += backend.apply_noise(model, shot_rng);
          backend.apply_global_diffusion();
        }
        for (std::uint64_t i = 0; i < opt.l2; ++i) {
          ++queries;
          backend.apply_oracle();
          injected += backend.apply_noise(model, shot_rng);
          backend.apply_block_diffusion();
        }
        ++queries;  // Step 3's single oracle query
        injected += backend.apply_noise(model, shot_rng);
        backend.apply_step3();
        return backend.sample_block(shot_rng);
      });
}

NoisyRunResult run_noisy_full_search_block(const oracle::Database& db,
                                           unsigned k,
                                           const qsim::NoiseModel& model,
                                           std::uint64_t trials, Rng& rng,
                                           const NoisyOptions& options) {
  PQS_CHECK_MSG(is_pow2(db.size()), "noisy full search needs N = 2^n");
  const unsigned n = log2_exact(db.size());
  PQS_CHECK_MSG(k >= 1 && k < n, "need 1 <= k < n");
  const auto iterations = grover_optimal_iterations(db.size());
  // The block structure only shapes the final measurement (and the noise
  // channel's block/address bit split); the dynamics are plain Grover.
  const auto spec =
      qsim::BackendSpec::single_target(db.size(), pow2(k), db.target());

  return run_trials(
      db, spec, model, trials, rng, options, "noisy full search",
      [&](qsim::Backend& backend, Rng& shot_rng, std::uint64_t& injected,
          std::uint64_t& queries) {
        for (std::uint64_t i = 0; i < iterations; ++i) {
          ++queries;
          backend.apply_oracle();
          injected += backend.apply_noise(model, shot_rng);
          backend.apply_global_diffusion();
        }
        return backend.sample_block(shot_rng);
      });
}

}  // namespace pqs::partial

#include "partial/noisy.h"

#include <cmath>

#include "common/check.h"
#include "common/math.h"
#include "partial/optimizer.h"

namespace pqs::partial {

NoisyRunResult run_noisy_partial_search(const oracle::Database& db, unsigned k,
                                        const qsim::NoiseModel& model,
                                        std::uint64_t trials, Rng& rng) {
  PQS_CHECK_MSG(is_pow2(db.size()), "state-vector run needs N = 2^n");
  PQS_CHECK(trials > 0);
  const unsigned n = log2_exact(db.size());
  PQS_CHECK_MSG(k >= 1 && k < n, "need 1 <= k < n");

  // Tight floor (error 1/sqrt N): the comparison against full search is
  // only meaningful when both start from a near-1 clean baseline.
  const auto opt = optimize_integer(
      db.size(), pow2(k),
      1.0 - 1.0 / std::sqrt(static_cast<double>(db.size())));
  const qsim::Index target_block = db.target() >> (n - k);

  NoisyRunResult result;
  result.trials = trials;
  result.queries_per_trial = opt.queries;
  std::uint64_t correct = 0;
  std::uint64_t injected_total = 0;
  for (std::uint64_t t = 0; t < trials; ++t) {
    auto state = qsim::StateVector::uniform(n);
    for (std::uint64_t i = 0; i < opt.l1; ++i) {
      db.apply_phase_oracle(state);
      injected_total += qsim::apply_noise(state, model, rng);
      state.reflect_about_uniform();
    }
    for (std::uint64_t i = 0; i < opt.l2; ++i) {
      db.apply_phase_oracle(state);
      injected_total += qsim::apply_noise(state, model, rng);
      state.reflect_blocks_about_uniform(k);
    }
    db.add_queries(1);
    injected_total += qsim::apply_noise(state, model, rng);
    state.reflect_non_target_about_their_mean(db.target());
    correct += state.sample_block(k, rng) == target_block ? 1 : 0;
  }
  result.success_rate =
      static_cast<double>(correct) / static_cast<double>(trials);
  result.mean_injected =
      static_cast<double>(injected_total) / static_cast<double>(trials);
  return result;
}

NoisyRunResult run_noisy_full_search_block(const oracle::Database& db,
                                           unsigned k,
                                           const qsim::NoiseModel& model,
                                           std::uint64_t trials, Rng& rng) {
  PQS_CHECK_MSG(is_pow2(db.size()), "state-vector run needs N = 2^n");
  PQS_CHECK(trials > 0);
  const unsigned n = log2_exact(db.size());
  const auto iterations = grover_optimal_iterations(db.size());
  const qsim::Index target_block = db.target() >> (n - k);

  NoisyRunResult result;
  result.trials = trials;
  result.queries_per_trial = iterations;
  std::uint64_t correct = 0;
  std::uint64_t injected_total = 0;
  for (std::uint64_t t = 0; t < trials; ++t) {
    auto state = qsim::StateVector::uniform(n);
    for (std::uint64_t i = 0; i < iterations; ++i) {
      db.apply_phase_oracle(state);
      injected_total += qsim::apply_noise(state, model, rng);
      state.reflect_about_uniform();
    }
    correct += (state.sample(rng) >> (n - k)) == target_block ? 1 : 0;
  }
  result.success_rate =
      static_cast<double>(correct) / static_cast<double>(trials);
  result.mean_injected =
      static_cast<double>(injected_total) / static_cast<double>(trials);
  return result;
}

}  // namespace pqs::partial

// Quantum search with an unknown number of marked items
// (Boyer, Brassard, Hoyer, Tapp, Fortschr. Phys. 46 (1998) — paper ref [2]).
//
// The partial-search paper cites BBHT as part of the optimality background
// for standard search; the reduction in Theorem 2 also ends with a search
// over a small residual set, for which the unknown-M algorithm is the
// textbook tool. Expected cost O(sqrt(N/M)) queries when M items are marked.
//
// The generate-and-test rounds run on a qsim::Backend (BbhtOptions::backend):
// K = 1 with the database's marked set, so the symmetry engine applies to
// ANY marked set — the whole database is one block — and huge-N runs are
// exact and cheap. Independent restarts (the Monte-Carlo estimator of the
// expected query count) fan across OpenMP threads via search_unknown_batch.
#pragma once

#include <cstdint>
#include <optional>

#include "common/random.h"
#include "oracle/marked_set.h"
#include "qsim/backend.h"
#include "qsim/batch.h"

namespace pqs::grover {

struct BbhtResult {
  std::optional<qsim::Index> found;  ///< a marked address, if one was found
  std::uint64_t queries = 0;         ///< total oracle queries (quantum + the
                                     ///< classical verification probes)
  std::uint64_t rounds = 0;          ///< number of generate-and-test rounds
};

struct BbhtOptions {
  /// Growth factor for the iteration-count cap m; BBHT prove any
  /// lambda in (1, 4/3) works, and recommend 6/5.
  double lambda = 1.2;
  /// Give up after this many oracle queries (the algorithm cannot detect
  /// M = 0 on its own). 0 means use the BBHT default of 9 sqrt(N).
  std::uint64_t max_queries = 0;
  /// Simulation engine for the Grover rounds (kAuto: dense while the state
  /// fits in memory, symmetry beyond).
  qsim::BackendKind backend = qsim::BackendKind::kAuto;
  /// Optional cancel handle: the generate-and-test loop checks it per round
  /// and a cancelled search throws CancelledError (in the batched form the
  /// remaining restarts are skipped too, via BatchOptions::control).
  qsim::RunControl* control = nullptr;
};

/// Run the BBHT loop: pick j uniform in [0, ceil(m)), apply j Grover
/// iterations, measure, verify with one classical probe; on failure grow m by
/// lambda (capped at sqrt(N)) and repeat.
BbhtResult search_unknown(const oracle::MarkedDatabase& db, Rng& rng,
                          const BbhtOptions& options = {});

/// Aggregate of many independent BBHT runs (the Monte-Carlo estimator of
/// the expected query count).
struct BbhtBatchReport {
  std::uint64_t shots = 0;
  std::uint64_t found = 0;       ///< shots that returned a marked address
  double mean_queries = 0.0;     ///< average queries per shot
  double mean_rounds = 0.0;      ///< average generate-and-test rounds
};

/// Fan `shots` independent search_unknown runs across OpenMP threads with
/// per-shot RNG streams (deterministic in batch.seed for any thread count).
/// Each shot owns its backend and query counter; the database meter advances
/// by the batch total once the fan-out completes.
BbhtBatchReport search_unknown_batch(const oracle::MarkedDatabase& db,
                                     std::uint64_t shots,
                                     const BbhtOptions& options = {},
                                     const qsim::BatchOptions& batch = {});

/// Expected query count ~ (per BBHT Theorem 3) at most 9/2 sqrt(N/M) for
/// M >= 1 marked items; exposed for the tests that check the measured mean.
double bbht_expected_queries_bound(std::uint64_t n_items,
                                   std::uint64_t n_marked);

}  // namespace pqs::grover

#include "grover/exact.h"

#include <cmath>
#include <complex>

#include "common/check.h"
#include "common/math.h"

namespace pqs::grover {

namespace {
using Cplx = std::complex<double>;
}

ExactSchedule exact_schedule(std::uint64_t n_items) {
  PQS_CHECK(n_items >= 2);
  const double theta = grover_angle(n_items);
  // Largest m with (2m+1) theta <= pi/2: stop short of the target, never
  // overshoot. The 1e-9 guard keeps exact solutions (e.g. N = 4, where
  // (2*1+1) theta = pi/2 precisely) from being rounded down by one.
  const auto m = static_cast<std::uint64_t>(
      std::max(0.0, std::floor((kHalfPi / theta - 1.0) / 2.0 + 1e-9)));
  const double beta = kHalfPi - (2.0 * static_cast<double>(m) + 1.0) * theta;

  ExactSchedule sched;
  sched.plain_iterations = m;
  if (beta < 1e-12) {
    sched.final_step_needed = false;  // landed exactly on the target
    return sched;
  }

  const double s = std::sin(theta);
  const double c = std::cos(theta);
  const double a_t = std::sin((2.0 * static_cast<double>(m) + 1.0) * theta);
  const double a_r = std::cos((2.0 * static_cast<double>(m) + 1.0) * theta);

  // Solve a_r + u (A e^{i phi} + B) = 0 with u = e^{i chi} - 1,
  // A = a_t s c, B = a_r c^2. Eliminating phi (|e^{i phi}| = 1) yields
  // |u|^2 = a_r^2 / (A^2 - B^2 + a_r^2 c^2) = a_r^2 / (s^2 c^2).
  const double u_norm2 = (a_r * a_r) / (s * s * c * c);
  PQS_CHECK_MSG(u_norm2 <= 4.0 + 1e-9,
                "residual angle too large for a single matched iteration");
  const double cos_chi = 1.0 - u_norm2 / 2.0;
  const double sin_chi = clamped_sqrt(1.0 - cos_chi * cos_chi);
  const Cplx u{cos_chi - 1.0, sin_chi};

  const double big_a = a_t * s * c;
  const double big_b = a_r * c * c;
  const Cplx x = (-a_r - u * big_b) / (u * big_a);
  PQS_CHECK_MSG(approx_eq(std::abs(x), 1.0, 1e-6),
                "phase-matching solution is not a pure phase");

  sched.oracle_phase = std::arg(x);
  sched.diffusion_phase = std::atan2(sin_chi, cos_chi);
  return sched;
}

std::uint64_t exact_query_count(std::uint64_t n_items) {
  const auto sched = exact_schedule(n_items);
  return sched.plain_iterations + (sched.final_step_needed ? 1 : 0);
}

std::unique_ptr<qsim::Backend> evolve_exact_on_backend(
    const oracle::Database& db, qsim::BackendKind kind) {
  const auto sched = exact_schedule(db.size());
  // Full search is the K = 1 case of the block structure.
  auto backend = qsim::make_backend(
      kind, qsim::BackendSpec::single_target(db.size(), 1, db.target()));
  for (std::uint64_t i = 0; i < sched.plain_iterations; ++i) {
    db.add_queries(1);
    backend->apply_oracle();            // It
    backend->apply_global_diffusion();  // I0
  }
  if (sched.final_step_needed) {
    db.add_queries(1);
    backend->apply_oracle_phase(sched.oracle_phase);       // O(phi)
    backend->apply_global_rotation(sched.diffusion_phase); // D(chi)
  }
  return backend;
}

qsim::StateVector evolve_exact(const oracle::Database& db) {
  PQS_CHECK_MSG(is_pow2(db.size()),
                "state-vector evolution needs a power-of-two database");
  const auto backend =
      evolve_exact_on_backend(db, qsim::BackendKind::kDense);
  return qsim::StateVector::from_amplitudes(backend->amplitudes_copy());
}

SearchResult search_exact(const oracle::Database& db, Rng& rng,
                          const SearchOptions& options) {
  const std::uint64_t before = db.queries();
  const auto backend = evolve_exact_on_backend(db, options.backend);
  SearchResult result;
  result.backend_used = backend->kind();
  result.success_probability = backend->marked_probability();
  result.measured = backend->sample(rng);
  result.correct = result.measured == db.target();
  result.queries = db.queries() - before;
  return result;
}

}  // namespace pqs::grover

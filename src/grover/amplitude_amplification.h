// Generic amplitude amplification (Brassard, Hoyer, Mosca, Tapp,
// quant-ph/0005055 — paper ref [3]).
//
// Q = -A S0 A^{-1} S_t, where A is any state-preparation unitary, S0 flips
// the sign of |0...0>, and S_t flips the sign of marked states. With A = the
// Walsh-Hadamard transform, Q reduces to the standard Grover iteration
// I0 . I_t (verified in tests). The paper's Step 1 and Step 2 are both
// instances: A = H^(x)n globally, A = I (x) H^(x)(n-k) per block.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "oracle/marked_set.h"
#include "qsim/backend.h"
#include "qsim/state_vector.h"

namespace pqs::grover {

/// A unitary given by its action and its inverse's action on a state vector.
struct Preparation {
  std::function<void(qsim::StateVector&)> apply;
  std::function<void(qsim::StateVector&)> apply_inverse;
};

/// The Walsh-Hadamard preparation (self-inverse).
Preparation hadamard_preparation();

/// Apply one amplification step Q = -A S0 A^{-1} S_t in place. One query.
void amplification_step(qsim::StateVector& state, const Preparation& prep,
                        const oracle::MarkedDatabase& db);

/// Prepare A|0> and run `iterations` amplification steps. Gate-level and
/// therefore dense by definition: `prep` is an arbitrary unitary on the
/// amplitude array. For the Walsh-Hadamard preparation use
/// amplify_uniform_on_backend, which dispatches over engines.
qsim::StateVector amplify(unsigned n_qubits, const Preparation& prep,
                          const oracle::MarkedDatabase& db,
                          std::uint64_t iterations);

/// Engine-agnostic amplification for A = H^(x)n, where Q = -A S0 A^{-1} S_t
/// collapses to I0 . S_t exactly (verified against the gate-level form in
/// tests). Supports ARBITRARY marked sets on both engines: the spec uses
/// K = 1, so the whole database is one block and the symmetry invariant
/// holds for any marked set — multi-target amplification at n = 60+ qubits
/// is exact and O(1) per step. Meters `iterations` queries on db. Checked:
/// the marked set must be non-empty (a = 0 cannot be amplified).
std::unique_ptr<qsim::Backend> amplify_uniform_on_backend(
    const oracle::MarkedDatabase& db, std::uint64_t iterations,
    qsim::BackendKind kind = qsim::BackendKind::kAuto);

/// Initial success probability a = sum over marked |<x|A|0>|^2.
double initial_success_probability(unsigned n_qubits, const Preparation& prep,
                                   const oracle::MarkedDatabase& db);

/// BHMT closed form: after j steps the success probability is
/// sin^2((2j+1) theta_a) with theta_a = arcsin(sqrt(a)).
double amplified_success_probability(double initial_probability,
                                     std::uint64_t iterations);

}  // namespace pqs::grover

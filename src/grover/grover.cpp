#include "grover/grover.h"

#include "common/check.h"
#include "common/math.h"

namespace pqs::grover {

qsim::StateVector evolve(const oracle::Database& db,
                         std::uint64_t iterations) {
  PQS_CHECK_MSG(is_pow2(db.size()),
                "state-vector evolution needs a power-of-two database");
  const unsigned n = log2_exact(db.size());
  auto state = qsim::StateVector::uniform(n);
  for (std::uint64_t i = 0; i < iterations; ++i) {
    db.apply_phase_oracle(state);   // It  (1 query)
    state.reflect_about_uniform();  // I0  (no queries)
  }
  return state;
}

double success_probability_after(const oracle::Database& db,
                                 std::uint64_t iterations) {
  const auto state = evolve(db, iterations);
  return state.probability(db.target());
}

SearchResult search(const oracle::Database& db, Rng& rng) {
  return search_with_iterations(db, optimal_iterations(db.size()), rng);
}

SearchResult search_with_iterations(const oracle::Database& db,
                                    std::uint64_t iterations, Rng& rng) {
  const std::uint64_t before = db.queries();
  const auto state = evolve(db, iterations);
  SearchResult result;
  result.success_probability = state.probability(db.target());
  result.measured = state.sample(rng);
  result.correct = result.measured == db.target();
  result.queries = db.queries() - before;
  return result;
}

std::uint64_t optimal_iterations(std::uint64_t n_items) {
  return grover_optimal_iterations(n_items);
}

double angle_after(std::uint64_t n_items, std::uint64_t iterations) {
  const double theta = grover_angle(n_items);
  return (2.0 * static_cast<double>(iterations) + 1.0) * theta;
}

}  // namespace pqs::grover

#include "grover/grover.h"

#include "common/check.h"
#include "common/math.h"

namespace pqs::grover {

qsim::StateVector evolve(const oracle::Database& db,
                         std::uint64_t iterations) {
  PQS_CHECK_MSG(is_pow2(db.size()),
                "state-vector evolution needs a power-of-two database");
  const auto backend =
      evolve_on_backend(db, iterations, qsim::BackendKind::kDense);
  return qsim::StateVector::from_amplitudes(backend->amplitudes_copy());
}

std::unique_ptr<qsim::Backend> evolve_on_backend(const oracle::Database& db,
                                                 std::uint64_t iterations,
                                                 qsim::BackendKind kind) {
  // Full search is the K = 1 case of the block structure.
  auto backend = qsim::make_backend(
      kind, qsim::BackendSpec::single_target(db.size(), 1, db.target()));
  for (std::uint64_t i = 0; i < iterations; ++i) {
    db.add_queries(1);
    backend->apply_oracle();            // It
    backend->apply_global_diffusion();  // I0
  }
  return backend;
}

double success_probability_after(const oracle::Database& db,
                                 std::uint64_t iterations,
                                 const SearchOptions& options) {
  const auto backend = evolve_on_backend(db, iterations, options.backend);
  return backend->marked_probability();
}

SearchResult search(const oracle::Database& db, Rng& rng,
                    const SearchOptions& options) {
  return search_with_iterations(db, optimal_iterations(db.size()), rng,
                                options);
}

SearchResult search_with_iterations(const oracle::Database& db,
                                    std::uint64_t iterations, Rng& rng,
                                    const SearchOptions& options) {
  const std::uint64_t before = db.queries();
  const auto backend = evolve_on_backend(db, iterations, options.backend);
  SearchResult result;
  result.backend_used = backend->kind();
  result.success_probability = backend->marked_probability();
  result.measured = backend->sample(rng);
  result.correct = result.measured == db.target();
  result.queries = db.queries() - before;
  return result;
}

std::uint64_t optimal_iterations(std::uint64_t n_items) {
  return grover_optimal_iterations(n_items);
}

double angle_after(std::uint64_t n_items, std::uint64_t iterations) {
  const double theta = grover_angle(n_items);
  return (2.0 * static_cast<double>(iterations) + 1.0) * theta;
}

}  // namespace pqs::grover

// Standard quantum database search (Grover, STOC 1996), in the exact form the
// paper builds on: repeated application of A = I0 . It to the uniform start
// state (Section 2.1). Includes the closed-form rotation-angle theory used by
// every analysis in the reproduction.
#pragma once

#include <cstdint>
#include <memory>

#include "common/random.h"
#include "oracle/database.h"
#include "qsim/backend.h"
#include "qsim/state_vector.h"

namespace pqs::grover {

/// Engine selection for the search pipelines. kAuto keeps the historical
/// dense path whenever the state fits in memory and switches to the O(1)
/// symmetry engine beyond qsim::auto_backend_cutoff() items — Grover's
/// state is the K = 1 special case of the block symmetry: one amplitude on
/// the target, one on everything else.
struct SearchOptions {
  qsim::BackendKind backend = qsim::BackendKind::kAuto;
};

/// Outcome of a full search run.
struct SearchResult {
  qsim::Index measured = 0;   ///< address returned by the final measurement
  bool correct = false;       ///< measured == target (ground truth)
  std::uint64_t queries = 0;  ///< oracle queries consumed
  double success_probability = 0.0;  ///< |<t|state before measurement>|^2
  qsim::BackendKind backend_used = qsim::BackendKind::kDense;
};

/// Prepare |psi0> and apply `iterations` Grover iterations A = I0 . It.
/// Returns the pre-measurement state; `db.queries()` advances by
/// `iterations`. (Dense by definition; see evolve_on_backend for the
/// engine-agnostic form.)
qsim::StateVector evolve(const oracle::Database& db, std::uint64_t iterations);

/// Engine-agnostic evolution: the returned backend holds the
/// pre-measurement state. Works for any db.size() (not only powers of two)
/// and, with the symmetry engine, for sizes far beyond dense reach.
std::unique_ptr<qsim::Backend> evolve_on_backend(const oracle::Database& db,
                                                 std::uint64_t iterations,
                                                 qsim::BackendKind kind);

/// Success probability after m iterations, from the simulation (equals the
/// closed form sin^2((2m+1) theta); tested against it).
double success_probability_after(const oracle::Database& db,
                                 std::uint64_t iterations,
                                 const SearchOptions& options = {});

/// Full pipeline with the optimal iteration count: evolve, measure, report.
SearchResult search(const oracle::Database& db, Rng& rng,
                    const SearchOptions& options = {});

/// Full pipeline with an explicit iteration count.
SearchResult search_with_iterations(const oracle::Database& db,
                                    std::uint64_t iterations, Rng& rng,
                                    const SearchOptions& options = {});

/// The paper's headline number: (pi/4) sqrt(N) rounded to the optimal
/// integer iteration count for a unique target among `n_items`.
std::uint64_t optimal_iterations(std::uint64_t n_items);

/// Angle of the state to the non-target axis after m iterations:
/// (2m+1) * theta with sin(theta) = 1/sqrt(N). The Figure-3 trajectory.
double angle_after(std::uint64_t n_items, std::uint64_t iterations);

}  // namespace pqs::grover

// Standard quantum database search (Grover, STOC 1996), in the exact form the
// paper builds on: repeated application of A = I0 . It to the uniform start
// state (Section 2.1). Includes the closed-form rotation-angle theory used by
// every analysis in the reproduction.
#pragma once

#include <cstdint>

#include "common/random.h"
#include "oracle/database.h"
#include "qsim/state_vector.h"

namespace pqs::grover {

/// Outcome of a full search run.
struct SearchResult {
  qsim::Index measured = 0;   ///< address returned by the final measurement
  bool correct = false;       ///< measured == target (ground truth)
  std::uint64_t queries = 0;  ///< oracle queries consumed
  double success_probability = 0.0;  ///< |<t|state before measurement>|^2
};

/// Prepare |psi0> and apply `iterations` Grover iterations A = I0 . It.
/// Returns the pre-measurement state; `db.queries()` advances by
/// `iterations`.
qsim::StateVector evolve(const oracle::Database& db, std::uint64_t iterations);

/// Success probability after m iterations, from the state vector (equals the
/// closed form sin^2((2m+1) theta); tested against it).
double success_probability_after(const oracle::Database& db,
                                 std::uint64_t iterations);

/// Full pipeline with the optimal iteration count: evolve, measure, report.
SearchResult search(const oracle::Database& db, Rng& rng);

/// Full pipeline with an explicit iteration count.
SearchResult search_with_iterations(const oracle::Database& db,
                                    std::uint64_t iterations, Rng& rng);

/// The paper's headline number: (pi/4) sqrt(N) rounded to the optimal
/// integer iteration count for a unique target among `n_items`.
std::uint64_t optimal_iterations(std::uint64_t n_items);

/// Angle of the state to the non-target axis after m iterations:
/// (2m+1) * theta with sin(theta) = 1/sqrt(N). The Figure-3 trajectory.
double angle_after(std::uint64_t n_items, std::uint64_t iterations);

}  // namespace pqs::grover

// Sure-success ("zero failure rate") database search.
//
// The paper notes (Section 2.1, refs [3,5,6,9]) that Grover's algorithm "can
// be modified so that the correct answer is returned with certainty (for
// example, one can modify the last iteration slightly so that the state
// vector does not overshoot its target)". This module implements that
// modification exactly:
//
//   * run m standard iterations, m the largest count with (2m+1) theta <=
//     pi/2 (no overshoot);
//   * finish with ONE generalized iteration D(chi) . O(phi), where O(phi)
//     multiplies the target amplitude by e^{i phi} (one oracle query) and
//     D(chi) = I + (e^{i chi} - 1)|psi0><psi0| is the phase-generalized
//     diffusion.
//
// The matching condition |<r|D(chi) O(phi)|psi_m>| = 0 (r = the non-target
// component) has the closed-form solution
//
//   |e^{i chi} - 1|^2 = sin^2(beta) / (sin^2 theta cos^2 theta),
//   e^{i phi} = (-cos beta' - (e^{i chi}-1) c^2 cos beta') / ((e^{i chi}-1) s c sin...)
//
// derived in the implementation (beta = pi/2 - (2m+1) theta is the residual
// angle). Total cost: m + 1 queries, success probability exactly 1.
#pragma once

#include <cstdint>
#include <memory>

#include "common/random.h"
#include "grover/grover.h"
#include "oracle/database.h"
#include "qsim/backend.h"
#include "qsim/state_vector.h"

namespace pqs::grover {

/// The phases of the final generalized iteration, plus the plain iteration
/// count that precedes it.
struct ExactSchedule {
  std::uint64_t plain_iterations = 0;  ///< standard A = I0 . It applications
  double oracle_phase = 0.0;           ///< phi of the final O(phi)
  double diffusion_phase = 0.0;        ///< chi of the final D(chi)
  bool final_step_needed = true;  ///< false when m iterations already exact
};

/// Compute the schedule for a database of `n_items` (closed form).
ExactSchedule exact_schedule(std::uint64_t n_items);

/// Total queries of the sure-success search: plain_iterations (+1 if the
/// final generalized step is needed).
std::uint64_t exact_query_count(std::uint64_t n_items);

/// Engine-agnostic evolution through the sure-success schedule: the final
/// generalized iteration D(chi) . O(phi) maps onto the backend's
/// oracle-phase and global-rotation hooks, so both engines apply (the
/// symmetry engine runs it as the K = 1 block case at any n up to 62).
std::unique_ptr<qsim::Backend> evolve_exact_on_backend(
    const oracle::Database& db, qsim::BackendKind kind);

/// Evolve |psi0> through the sure-success schedule. The returned state has
/// |<t|state>| = 1 up to numerical error. (Dense by definition; see
/// evolve_exact_on_backend for the engine-agnostic form.)
qsim::StateVector evolve_exact(const oracle::Database& db);

/// Full pipeline: evolve + measurement on the chosen engine. `correct` is
/// always true (up to the ~1e-12 simulation roundoff).
SearchResult search_exact(const oracle::Database& db, Rng& rng,
                          const SearchOptions& options = {});

}  // namespace pqs::grover

#include "grover/amplitude_amplification.h"

#include <cmath>

#include "common/check.h"
#include "common/math.h"
#include "qsim/kernels.h"

namespace pqs::grover {

Preparation hadamard_preparation() {
  const auto apply = [](qsim::StateVector& state) {
    state.apply_hadamard_all();
  };
  return Preparation{apply, apply};
}

void amplification_step(qsim::StateVector& state, const Preparation& prep,
                        const oracle::MarkedDatabase& db) {
  PQS_CHECK_MSG(state.dimension() == db.size(), "dimension mismatch");
  db.apply_phase_oracle(state);             // S_t   (1 query)
  prep.apply_inverse(state);                // A^{-1}
  state.phase_flip(0);                      // S0 = I - 2|0><0|
  prep.apply(state);                        // A
  state.scale(qsim::Amplitude{-1.0, 0.0});  // overall -1 of Q
}

qsim::StateVector amplify(unsigned n_qubits, const Preparation& prep,
                          const oracle::MarkedDatabase& db,
                          std::uint64_t iterations) {
  auto state = qsim::StateVector::zero_state(n_qubits);
  prep.apply(state);
  for (std::uint64_t i = 0; i < iterations; ++i) {
    amplification_step(state, prep, db);
  }
  return state;
}

std::unique_ptr<qsim::Backend> amplify_uniform_on_backend(
    const oracle::MarkedDatabase& db, std::uint64_t iterations,
    qsim::BackendKind kind) {
  PQS_CHECK_MSG(db.num_marked() > 0,
                "amplitude amplification needs a non-empty marked set "
                "(initial success probability a = 0 cannot be amplified)");
  // A|0> = |psi0> and -A S0 A^{-1} = 2|psi0><psi0| - I = I0, so each step
  // is exactly one oracle followed by the global diffusion.
  auto backend =
      qsim::make_backend(kind, qsim::BackendSpec{db.size(), 1, db.marked()});
  for (std::uint64_t i = 0; i < iterations; ++i) {
    db.add_queries(1);
    backend->apply_oracle();            // S_t
    backend->apply_global_diffusion();  // -A S0 A^{-1}
  }
  return backend;
}

double initial_success_probability(unsigned n_qubits, const Preparation& prep,
                                   const oracle::MarkedDatabase& db) {
  auto state = qsim::StateVector::zero_state(n_qubits);
  prep.apply(state);
  double a = 0.0;
  for (const auto m : db.marked()) {
    a += state.probability(m);
  }
  return a;
}

double amplified_success_probability(double initial_probability,
                                     std::uint64_t iterations) {
  PQS_CHECK(initial_probability >= 0.0 && initial_probability <= 1.0);
  const double theta_a = clamped_asin(std::sqrt(initial_probability));
  const double s =
      std::sin((2.0 * static_cast<double>(iterations) + 1.0) * theta_a);
  return s * s;
}

}  // namespace pqs::grover

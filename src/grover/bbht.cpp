#include "grover/bbht.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math.h"

namespace pqs::grover {

BbhtResult search_unknown(const oracle::MarkedDatabase& db, Rng& rng,
                          const BbhtOptions& options) {
  PQS_CHECK_MSG(is_pow2(db.size()), "BBHT runs on power-of-two databases");
  PQS_CHECK_MSG(options.lambda > 1.0 && options.lambda < 4.0 / 3.0 + 1e-9,
                "lambda must lie in (1, 4/3]");
  const unsigned n = log2_exact(db.size());
  const double sqrt_n = std::sqrt(static_cast<double>(db.size()));
  const std::uint64_t max_queries =
      options.max_queries != 0
          ? options.max_queries
          : static_cast<std::uint64_t>(std::ceil(9.0 * sqrt_n));

  BbhtResult result;
  const std::uint64_t start_queries = db.queries();
  double m = 1.0;
  while (db.queries() - start_queries < max_queries) {
    ++result.rounds;
    const auto cap = static_cast<std::uint64_t>(std::ceil(m));
    const std::uint64_t j = rng.uniform_below(cap);

    auto state = qsim::StateVector::uniform(n);
    for (std::uint64_t i = 0; i < j; ++i) {
      db.apply_phase_oracle(state);
      state.reflect_about_uniform();
    }
    const qsim::Index y = state.sample(rng);
    if (db.probe(y)) {
      result.found = y;
      break;
    }
    m = std::min(options.lambda * m, sqrt_n);
  }
  result.queries = db.queries() - start_queries;
  return result;
}

double bbht_expected_queries_bound(std::uint64_t n_items,
                                   std::uint64_t n_marked) {
  PQS_CHECK(n_marked >= 1 && n_marked <= n_items);
  return 4.5 * std::sqrt(static_cast<double>(n_items) /
                         static_cast<double>(n_marked));
}

}  // namespace pqs::grover

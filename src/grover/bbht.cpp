#include "grover/bbht.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/math.h"

namespace pqs::grover {

namespace {

/// The BBHT spec: the whole database is one block, so the symmetry engine
/// supports ANY marked set (it always lies inside the single block).
qsim::BackendSpec bbht_spec(const oracle::MarkedDatabase& db) {
  return qsim::BackendSpec{db.size(), 1, db.marked()};
}

void check_options(const oracle::MarkedDatabase& db,
                   const BbhtOptions& options) {
  PQS_CHECK_MSG(is_pow2(db.size()), "BBHT runs on power-of-two databases");
  PQS_CHECK_MSG(options.lambda > 1.0 && options.lambda < 4.0 / 3.0 + 1e-9,
                "lambda must lie in (1, 4/3]");
}

/// One full BBHT search against a private query counter, so independent
/// restarts can run concurrently without racing on the database meter.
/// `backend` is this run's engine, or nullptr when the marked set is empty
/// (then every Grover iteration is the identity on |psi0> and measuring is
/// a uniform draw — no engine needed, but each iteration still costs its
/// oracle query). Classical verification goes through db.peek() and is
/// tallied here; the caller settles the meter afterwards.
BbhtResult run_rounds(const oracle::MarkedDatabase& db, qsim::Backend* backend,
                      Rng& rng, const BbhtOptions& options) {
  const double sqrt_n = std::sqrt(static_cast<double>(db.size()));
  const std::uint64_t max_queries =
      options.max_queries != 0
          ? options.max_queries
          : static_cast<std::uint64_t>(std::ceil(9.0 * sqrt_n));

  BbhtResult result;
  std::uint64_t queries = 0;
  double m = 1.0;
  while (queries < max_queries) {
    // Cooperative cancel per round; break instead of throw so this body
    // stays safe inside the batched OpenMP fan-out (the caller's
    // checkpoint converts the flag into CancelledError).
    if (options.control != nullptr && options.control->cancelled()) {
      break;
    }
    ++result.rounds;
    const auto cap = static_cast<std::uint64_t>(std::ceil(m));
    const std::uint64_t j = rng.uniform_below(cap);

    qsim::Index y;
    if (backend != nullptr) {
      backend->reset_uniform();
      for (std::uint64_t i = 0; i < j; ++i) {
        backend->apply_oracle();            // It
        backend->apply_global_diffusion();  // I0
      }
      y = backend->sample(rng);
    } else {
      y = rng.uniform_below(db.size());
    }
    queries += j;  // the quantum iterations
    queries += 1;  // the classical verification probe
    if (db.peek(y)) {
      result.found = y;
      break;
    }
    m = std::min(options.lambda * m, sqrt_n);
  }
  result.queries = queries;
  return result;
}

}  // namespace

BbhtResult search_unknown(const oracle::MarkedDatabase& db, Rng& rng,
                          const BbhtOptions& options) {
  check_options(db, options);
  std::unique_ptr<qsim::Backend> backend;
  if (db.num_marked() > 0) {
    backend = qsim::make_backend(options.backend, bbht_spec(db));
  }
  const BbhtResult result = run_rounds(db, backend.get(), rng, options);
  db.add_queries(result.queries);
  qsim::checkpoint(options.control);
  return result;
}

BbhtBatchReport search_unknown_batch(const oracle::MarkedDatabase& db,
                                     std::uint64_t shots,
                                     const BbhtOptions& options,
                                     const qsim::BatchOptions& batch) {
  check_options(db, options);
  PQS_CHECK_MSG(shots > 0, "need at least one shot");
  // Resolve the engine BEFORE the fan-out: a CheckFailure thrown inside an
  // OpenMP region would terminate the process instead of reporting.
  std::optional<qsim::BackendKind> resolved;
  if (db.num_marked() > 0) {
    resolved = qsim::resolve_backend(options.backend, bbht_spec(db));
  }

  const qsim::BatchRunner runner(batch);
  std::vector<std::uint64_t> queries(shots);
  std::vector<std::uint64_t> rounds(shots);
  std::vector<char> found(shots);
  runner.map_shots(shots, [&](std::uint64_t shot, Rng& rng) -> qsim::Index {
    std::unique_ptr<qsim::Backend> backend;
    if (resolved.has_value()) {
      backend = qsim::make_backend(*resolved, bbht_spec(db));
    }
    const BbhtResult r = run_rounds(db, backend.get(), rng, options);
    queries[shot] = r.queries;
    rounds[shot] = r.rounds;
    found[shot] = r.found.has_value() ? 1 : 0;
    return r.found.value_or(0);
  });

  BbhtBatchReport report;
  report.shots = shots;
  std::uint64_t total_queries = 0;
  std::uint64_t total_rounds = 0;
  for (std::uint64_t s = 0; s < shots; ++s) {
    report.found += found[s];
    total_queries += queries[s];
    total_rounds += rounds[s];
  }
  report.mean_queries =
      static_cast<double>(total_queries) / static_cast<double>(shots);
  report.mean_rounds =
      static_cast<double>(total_rounds) / static_cast<double>(shots);
  db.add_queries(total_queries);
  return report;
}

double bbht_expected_queries_bound(std::uint64_t n_items,
                                   std::uint64_t n_marked) {
  PQS_CHECK(n_marked >= 1 && n_marked <= n_items);
  return 4.5 * std::sqrt(static_cast<double>(n_items) /
                         static_cast<double>(n_marked));
}

}  // namespace pqs::grover

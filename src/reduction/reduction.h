// Theorem 2's reduction: full database search from iterated partial search.
//
// "We start by applying the algorithm for partial search for databases of
//  size N. This yields the first log K bits of the target state. Next, we
//  restrict ourselves to those addresses x that have the correct first k
//  bits and determine the next k bits ... Continuing in this way, we
//  converge on the target state after making a total of at most
//  alpha (1 + 1/sqrt(K) + 1/K + ...) <= alpha sqrt(K)/(sqrt(K)-1) sqrt(N)
//  queries."
//
// Each level uses the sure-success partial search (zero error), so the whole
// reduction is zero-error, exactly as in the first half of the proof. The
// level databases are the suffix restrictions of the parent oracle: fixing
// the known prefix costs nothing, and each child query is one parent query.
//
// Combined with Zalka's (pi/4) sqrt(N) lower bound for full search, the
// measured totals demonstrate the inequality chain that forces
// alpha_K >= (pi/4)(1 - 1/sqrt(K)).
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "oracle/database.h"
#include "qsim/backend.h"

namespace pqs::reduction {

/// One level of the cascade.
struct LevelReport {
  std::uint64_t level = 0;
  std::uint64_t db_size = 0;        ///< size of the restricted database
  std::uint64_t bits_fixed = 0;     ///< bits determined at this level
  std::uint64_t queries = 0;        ///< queries spent at this level
  bool via_partial_search = true;   ///< false for the brute-force tail
};

struct ReductionResult {
  qsim::Index found = 0;
  bool correct = false;
  std::uint64_t total_queries = 0;
  std::vector<LevelReport> levels;
};

struct ReductionOptions {
  /// Stop the cascade and brute-force classically once the restricted
  /// database has at most this many items (the proof's N^{1/3} cut-off;
  /// any small constant demonstrates the same accounting).
  std::uint64_t brute_force_below = 16;
  /// Engine for the per-level sure-success partial searches. Every level's
  /// restricted database is block-symmetric, so either engine works; with
  /// the symmetry engine the cascade reaches databases far beyond dense
  /// memory limits.
  qsim::BackendKind backend = qsim::BackendKind::kAuto;
};

/// Find db's full target address by fixing k bits per level with the
/// sure-success partial-search algorithm. db.size() must be 2^n.
ReductionResult search_full_via_partial(const oracle::Database& db, unsigned k,
                                        Rng& rng,
                                        const ReductionOptions& options = {});

/// The geometric-series query bound of Theorem 2:
/// coefficient * (1 + 1/sqrt(K) + 1/K + ...) * sqrt(N), truncated at the
/// brute-force level and with the tail added. Used by benches to compare
/// measured totals against the proof's accounting.
double theorem2_query_bound(double partial_coefficient, std::uint64_t n_items,
                            std::uint64_t k_blocks);

}  // namespace pqs::reduction

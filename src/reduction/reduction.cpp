#include "reduction/reduction.h"

#include <cmath>

#include "common/check.h"
#include "common/math.h"
#include "partial/certainty.h"

namespace pqs::reduction {

ReductionResult search_full_via_partial(const oracle::Database& db, unsigned k,
                                        Rng& rng,
                                        const ReductionOptions& options) {
  PQS_CHECK_MSG(is_pow2(db.size()), "reduction runs on N = 2^n databases");
  PQS_CHECK_MSG(k >= 1, "need at least one bit per level");
  const unsigned n = log2_exact(db.size());

  ReductionResult result;
  qsim::Index prefix = 0;     // bits of the target determined so far
  unsigned bits_known = 0;    // how many
  std::uint64_t level_id = 0;

  while (bits_known < n) {
    const unsigned remaining = n - bits_known;
    const std::uint64_t sub_size = pow2(remaining);

    // The restricted database: addresses sharing the known prefix, re-keyed
    // by their low `remaining` bits. One child query = one parent query.
    const qsim::Index sub_target =
        db.target() & (sub_size - 1);  // low bits of the true target

    LevelReport report;
    report.level = level_id++;
    report.db_size = sub_size;

    if (sub_size <= options.brute_force_below || remaining <= k) {
      // Brute-force tail: classical scan of the restricted database.
      const oracle::Database sub(sub_size, sub_target);
      qsim::Index found = sub_size - 1;
      for (qsim::Index x = 0; x + 1 < sub_size; ++x) {
        if (sub.probe(x)) {
          found = x;
          break;
        }
      }
      report.bits_fixed = remaining;
      report.queries = sub.queries();
      report.via_partial_search = false;
      result.levels.push_back(report);
      db.add_queries(report.queries);
      prefix = (prefix << remaining) | found;
      bits_known = n;
      break;
    }

    // Sure-success partial search for the next k bits.
    const oracle::Database sub(sub_size, sub_target);
    const auto run =
        partial::run_partial_search_certain(sub, k, rng, options.backend);
    PQS_CHECK_MSG(run.correct, "sure-success partial search failed");
    report.bits_fixed = k;
    report.queries = sub.queries();
    result.levels.push_back(report);
    db.add_queries(report.queries);
    prefix = (prefix << k) | run.measured_block;
    bits_known += k;
  }

  result.found = prefix;
  result.correct = prefix == db.target();
  for (const auto& level : result.levels) {
    result.total_queries += level.queries;
  }
  return result;
}

double theorem2_query_bound(double partial_coefficient, std::uint64_t n_items,
                            std::uint64_t k_blocks) {
  PQS_CHECK(k_blocks >= 2);
  const double sqrt_k = std::sqrt(static_cast<double>(k_blocks));
  // alpha sqrt(N) (1 + 1/sqrt(K) + 1/K + ...) = alpha sqrt(N) sqrt(K)/(sqrt(K)-1).
  return partial_coefficient * std::sqrt(static_cast<double>(n_items)) *
         sqrt_k / (sqrt_k - 1.0);
}

}  // namespace pqs::reduction

// The algorithm registry: every search driver in the repository, invocable
// by name through one interface.
//
// Each module under src/grover, src/partial, src/reduction, src/zalka and
// src/classical keeps its typed low-level API; a thin adapter (one file per
// driver under src/api/algorithms/) maps SearchSpec onto that API and the
// module's result struct onto SearchReport. The registry owns the adapters
// and resolves names; pqs::Engine consults it on every run. Registration is
// open — downstream code can register custom algorithms next to the
// built-ins and invoke them through the same Engine.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/planner.h"
#include "api/search_spec.h"
#include "common/random.h"
#include "qsim/run_control.h"

namespace pqs {

/// Everything an adapter may use while running one request: the validated
/// spec, its marked set (materialized ONCE by the Engine — a predicate
/// spec's scan happens here, never again downstream), the engine's shared
/// plan cache, the request's RNG (seeded from spec.seed by the Engine, so a
/// run is reproducible from the spec alone), and the optional cancel /
/// progress handle of the request.
struct RunContext {
  const SearchSpec& spec;
  const std::vector<qsim::Index>& marked;  ///< sorted, unique, validated
  const Planner& planner;
  Rng& rng;
  /// Cancel + progress handle, or nullptr for an untracked run. Adapters
  /// checkpoint() between stages and hand it to their shot loops
  /// (BatchOptions::control), so cancellation lands mid-sweep, not after.
  qsim::RunControl* control = nullptr;

  /// Throws CancelledError iff the request was cancelled. Call between
  /// expensive stages (after planning, before evolution, before sampling).
  void checkpoint() const { qsim::checkpoint(control); }
  /// spec.batch with this run's control + a seed drawn from the run RNG —
  /// the BatchOptions every adapter shot fan-out should use.
  qsim::BatchOptions batch_options() const {
    qsim::BatchOptions batch = spec.batch;
    batch.seed = rng.next();
    batch.control = control;
    return batch;
  }
};

/// One registered algorithm. Adapters are stateless (all run state lives in
/// the context), which is what makes Engine::run safe to call concurrently.
class Algorithm {
 public:
  virtual ~Algorithm() = default;

  /// The registry name ("grover", "grk", ...).
  virtual std::string_view name() const = 0;
  /// One-line description for CLIs and --help listings.
  virtual std::string_view summary() const = 0;
  /// Whether the algorithm can honor spec.noise (only "noisy" does; the
  /// Engine rejects noisy specs routed anywhere else, loudly).
  virtual bool supports_noise() const { return false; }

  /// Execute the request. The Engine has already validated the spec and
  /// fills the timing / resolved-name fields of the report afterwards.
  virtual SearchReport run(RunContext& ctx) const = 0;
};

using AlgorithmFactory = std::function<std::unique_ptr<Algorithm>()>;

/// Name -> algorithm map. Mutate-then-share: register everything up front,
/// then hand the registry to an Engine; lookups are const and lock-free.
/// That immutability is the concurrency invariant — there is deliberately
/// no mutex here to annotate (common/thread_annotations.h), and the
/// thread-safety build verifies no locking sneaks in: an Engine's registry
/// is only reachable const, so concurrent Engine::run calls cannot race.
class Registry {
 public:
  /// Register `factory`'s algorithm under `name` (the factory runs once,
  /// here). Checked: names are unique and non-empty, and "auto" is
  /// reserved for the Engine's planner.
  void register_algorithm(const std::string& name, AlgorithmFactory factory);

  bool contains(std::string_view name) const;
  /// Lookup; throws CheckFailure listing the known names on a miss.
  const Algorithm& find(std::string_view name) const;
  /// All registered names, sorted.
  std::vector<std::string> names() const;
  std::size_t size() const { return algorithms_.size(); }

  /// A registry pre-loaded with every built-in driver: grover, bbht, exact,
  /// ampamp, grk, multi, certainty, interleave, twelve, noisy, reduction,
  /// zalka, classical.
  static Registry with_builtin_algorithms();

 private:
  std::map<std::string, std::unique_ptr<Algorithm>, std::less<>> algorithms_;
};

}  // namespace pqs

// The wire format of the search service: SearchSpec and SearchReport as
// JSON, both directions, every field.
//
// Two consumers:
//   * pqs_serve — the JSONL process front-end: requests arrive as one spec
//     object per line, results leave as one report object per line, so any
//     RPC framework (or a shell pipe) can front a fleet deployment;
//   * request coalescing — canonical_key() reduces a spec to the canonical
//     dump of its result-relevant fields, so concurrent jobs that would
//     compute the same answer attach to one execution (pqs::Service).
//
// Round-trip contract (pinned by tests/test_serialize.cpp): for every spec
// s without a predicate, spec_from_json(to_json(s)) compares equal field by
// field, and likewise for reports. Predicate specs cannot cross the wire —
// serialize the materialized marked set instead (SearchSpec::resolve_marked).
// Unknown object keys are rejected BY NAME, so a typo in a client request
// fails loudly instead of silently running with defaults.
#pragma once

#include <string>

#include "api/search_spec.h"
#include "common/json.h"

namespace pqs::api {

/// Spec -> JSON object. Throws CheckFailure for predicate specs (the
/// predicate is code; materialize it into `marked` first).
Json to_json(const SearchSpec& spec);

/// JSON object -> spec. Missing keys take SearchSpec's defaults; unknown
/// keys throw, naming the key.
SearchSpec spec_from_json(const Json& json);

/// Report -> JSON object (every field, including the timing split).
Json to_json(const SearchReport& report);

/// JSON object -> report. Unknown keys throw, naming the key.
SearchReport report_from_json(const Json& json);

/// The coalescing identity of a spec: a 128-bit digest (32 hex chars) of
/// the canonical dump of every field that determines the result — which
/// excludes batch threads (shot streams derive from (seed, shot), so any
/// thread count yields identical reports) and materializes a predicate
/// into its marked set. Two specs with equal keys produce byte-identical
/// SearchReports (modulo timing), which is what lets the Service hand one
/// execution's report to every attached caller.
std::string canonical_key(const SearchSpec& spec);

/// canonical_key for a spec ALREADY in canonical form (marked materialized,
/// sorted-unique; predicate cleared) — skips the re-materialization. The
/// Service canonicalizes once at submit and keys off the same copy.
std::string canonical_key_canonicalized(const SearchSpec& spec);

}  // namespace pqs::api

#include "api/engine.h"

#include <cmath>

#include "common/check.h"
#include "common/math.h"
#include "common/timing.h"
#include "partial/optimizer.h"

namespace pqs {

namespace {

/// Quantum cost of answering the spec's question, per the paper's closed
/// forms: (pi/4) sqrt(N/M) for the full address, c_K sqrt(N/M) for the
/// block (c_K the Section-3.1 coefficient).
double quantum_query_estimate(std::uint64_t n_items, std::uint64_t n_blocks,
                              std::uint64_t n_marked) {
  const double root =
      std::sqrt(static_cast<double>(n_items) / static_cast<double>(n_marked));
  if (n_blocks <= 1) {
    return kQuarterPi * root;
  }
  return partial::recipe_coefficient(n_blocks) * root;
}

/// Classical cost of the same question: N/2 probes for the full address,
/// Appendix A's N/2 (1 - 1/K^2) for the block (unique target).
double classical_query_estimate(std::uint64_t n_items,
                                std::uint64_t n_blocks) {
  const auto n = static_cast<double>(n_items);
  if (n_blocks <= 1) {
    return (n + 1.0) / 2.0;
  }
  const auto k = static_cast<double>(n_blocks);
  return n / 2.0 * (1.0 - 1.0 / (k * k));
}

}  // namespace

std::string Engine::resolve_algorithm(const SearchSpec& spec) const {
  return resolve_algorithm(spec, spec.resolve_marked().size());
}

std::string Engine::resolve_algorithm(const SearchSpec& spec,
                                      std::uint64_t m) const {
  // Noise only has a Monte-Carlo driver, and it answers the block question.
  if (spec.noise.enabled()) {
    PQS_CHECK_MSG(spec.n_blocks >= 2,
                  "auto: noisy runs answer the block question; set "
                  "n_blocks >= 2 (or name an algorithm explicitly)");
    return "noisy";
  }

  // The paper's Section-1 comparison: when the classical zero-error scan
  // is at least as cheap as the quantum estimate (tiny N), serve it.
  if (classical_query_estimate(spec.n_items, spec.n_blocks) <=
      quantum_query_estimate(spec.n_items, spec.n_blocks, m)) {
    return "classical";
  }

  if (spec.n_blocks <= 1) {
    // Full address wanted.
    if (m > 1) {
      return "ampamp";
    }
    return spec.min_success >= 1.0 ? "exact" : "grover";
  }
  // Block wanted.
  if (m > 1) {
    return "multi";
  }
  // The Figure-1 shape: two queries answer the block question exactly.
  if (spec.n_blocks > 2 &&
      spec.n_items * (spec.n_blocks - 2) == 4 * spec.n_blocks) {
    return "twelve";
  }
  return spec.min_success >= 1.0 ? "certainty" : "grk";
}

Plan Engine::plan(const SearchSpec& spec) const {
  spec.validate_knobs();
  const auto marked = spec.resolve_marked();  // the one predicate scan
  const double floor =
      spec.min_success > 0.0 ? spec.min_success
                             : partial::default_min_success(spec.n_items);
  return planner_.schedule(spec.n_items, spec.n_blocks, floor,
                           marked.size());
}

SearchReport Engine::run(const SearchSpec& spec,
                         qsim::RunControl* control) const {
  spec.validate_knobs();
  qsim::checkpoint(control);  // a job cancelled while queued runs nothing
  const auto marked = spec.resolve_marked();  // the one predicate scan
  const std::string resolved = spec.algorithm == "auto"
                                   ? resolve_algorithm(spec, marked.size())
                                   : spec.algorithm;
  const Algorithm& algorithm = registry_.find(resolved);
  PQS_CHECK_MSG(!spec.noise.enabled() || algorithm.supports_noise(),
                "algorithm \"" + resolved + "\" cannot honor spec.noise; "
                "use \"noisy\" (or clear the noise model)");

  Rng rng(spec.seed);
  RunContext ctx{spec, marked, planner_, rng, control};
  if (control != nullptr) {
    control->span("engine.run.begin");
  }
  Stopwatch watch;
  SearchReport report = algorithm.run(ctx);
  const std::uint64_t total_ns = watch.nanos();
  if (control != nullptr) {
    control->span("engine.run.end");
  }
  report.exec_ns = total_ns > report.plan_ns ? total_ns - report.plan_ns : 0;
  report.algorithm = resolved;
  if (report.trials == 0) {
    report.trials = 1;
  }
  return report;
}

}  // namespace pqs

// The declarative request/response pair of the search service.
//
// Every algorithm in this repository answers one parameterized question —
// "where is the marked item (or its block)?" — yet each module historically
// exposed its own Options/Result structs re-declaring the same backend /
// batch / noise / seed knobs. SearchSpec is the single request type that
// subsumes them: describe the database, what you want to know, and how to
// run, then hand it to pqs::Engine. SearchReport is the unified response.
//
// A spec is pure data (no oracle callbacks into user code except the
// optional merit predicate, which the engine materializes into a marked set
// up front), so specs can be logged, hashed, replayed, and compared — the
// properties a production service needs for caching and capacity planning.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "qsim/backend.h"
#include "qsim/batch.h"
#include "qsim/noise.h"
#include "qsim/types.h"

namespace pqs {

/// One declarative search request.
struct SearchSpec {
  /// Registry name ("grover", "grk", "certainty", ...) or "auto" to let the
  /// engine pick per the paper's cost model (Engine::resolve_algorithm).
  std::string algorithm = "auto";

  /// Database size N (any N >= 2 for the algorithms that allow it; the
  /// power-of-two requirements of individual algorithms still apply and
  /// fail loudly).
  std::uint64_t n_items = 0;

  /// Block granularity K (contiguous N/K-item blocks, the paper's "first k
  /// bits"). K = 1 asks for the full address; K >= 2 asks which block.
  std::uint64_t n_blocks = 1;

  /// The marked set (ground truth the simulated oracle answers from).
  /// Sorted-unique is enforced at validation. Most algorithms need exactly
  /// one entry; bbht / ampamp / multi accept several.
  std::vector<qsim::Index> marked;

  /// Alternative to `marked`: a merit predicate f(x) -> bool, scanned once
  /// (uncounted) by the engine to materialize the marked set. Exactly one
  /// of {marked, predicate} must be set. Bounded to kMaxPredicateItems.
  std::function<bool(qsim::Index)> predicate;

  // -- the shared engine knobs (PR 2's flags, now spec fields) --
  qsim::BackendKind backend = qsim::BackendKind::kAuto;
  qsim::BatchOptions batch;  ///< thread fan-out; seed derives from `seed`
  qsim::NoiseModel noise;    ///< per-query channel (only "noisy" accepts it)
  std::uint64_t seed = 2005; ///< the ONE seed: all randomness derives here

  /// Success floor for planned schedules; <= 0 means the per-algorithm
  /// default (1 - 4/sqrt(N) for grk/multi, 1 - 1/sqrt(N) for noisy).
  /// >= 1 steers "auto" to the sure-success variants.
  double min_success = 0.0;

  /// Explicit iteration overrides. For the partial searchers these are the
  /// Step-1/Step-2 counts; for full searchers l1 alone is the iteration
  /// count. When absent the engine plans (and caches) a schedule.
  std::optional<std::uint64_t> l1;
  std::optional<std::uint64_t> l2;

  /// Measurement shots / Monte-Carlo trials. 1 = a single measured run
  /// (bit-identical to the direct module call); > 1 fans shots or trials
  /// across threads per `batch` where the algorithm supports it.
  std::uint64_t shots = 1;

  /// Largest N a predicate spec may scan.
  static constexpr std::uint64_t kMaxPredicateItems = std::uint64_t{1} << 24;

  /// The paper's setting: a unique marked address.
  static SearchSpec single_target(std::uint64_t n_items,
                                  std::uint64_t n_blocks, qsim::Index target);

  /// The unique target of a single-marked spec. Checked.
  qsim::Index target() const;

  /// The marked set, materializing `predicate` if that is how the spec was
  /// phrased. Checked: exactly one source, non-empty, sorted-unique, in
  /// range.
  std::vector<qsim::Index> resolve_marked() const;

  /// Knob validation (sizes, blocks, shots, noise bounds) WITHOUT touching
  /// the marked set — the engine pairs this with ONE resolve_marked() call
  /// so a predicate spec is scanned exactly once per request.
  void validate_knobs() const;

  /// Full structural validation: validate_knobs plus the marked-set checks
  /// (resolves the predicate; convenience for spec authors). Every
  /// Engine::run performs the same checks before any work.
  void validate() const;

  /// One-line human rendering ("grk N=4096 K=4 backend=auto seed=7 ...").
  std::string describe() const;
};

/// The unified response: every per-module result struct maps onto these
/// fields (module-specific extras land in `detail`).
struct SearchReport {
  std::string algorithm;      ///< resolved name (after "auto" planning)
  qsim::Index measured = 0;   ///< measured address, or block when block_answer
  bool block_answer = false;  ///< `measured` is a block index, not an address
  bool correct = false;       ///< verified against ground truth; for
                              ///< Monte-Carlo runs, majority-correct
  std::uint64_t queries = 0;  ///< total oracle queries consumed
  std::uint64_t queries_per_trial = 0;  ///< == queries when trials == 1
  std::uint64_t trials = 1;   ///< shots / trajectories actually run
  /// Pre-measurement success probability (single runs) or the empirical
  /// success rate (Monte-Carlo runs).
  double success_probability = 0.0;
  std::uint64_t l1 = 0;       ///< schedule actually run (0 where n/a)
  std::uint64_t l2 = 0;
  qsim::BackendKind backend_used = qsim::BackendKind::kDense;
  bool plan_cache_hit = false;  ///< the schedule came from the plan cache
  // -- the timing split: one wall-clock number would hide queueing delay,
  //    the dominant latency term of a loaded service --
  std::uint64_t queue_ns = 0;  ///< time waiting in the service queue
                               ///< (0 for a direct Engine::run)
  std::uint64_t plan_ns = 0;   ///< schedule search time (~0 on a cache hit)
  std::uint64_t exec_ns = 0;   ///< wall time of the algorithm itself
  std::string detail;          ///< one-line algorithm-specific extras

  /// Multi-line human rendering for CLIs.
  std::string to_string() const;
};

}  // namespace pqs

#include "api/flags.h"

#include "common/check.h"
#include "common/math.h"

namespace pqs::api {

SearchSpec parse_search_spec(Cli& cli, const SpecFlagSet& flags,
                             const std::string& default_algo,
                             unsigned default_qubits, unsigned default_kbits,
                             std::uint64_t default_target) {
  SearchSpec spec;
  if (flags.algo) {
    spec.algorithm = cli.get_string(
        "algo", default_algo,
        "algorithm name (grover | grk | certainty | ... ) or auto");
  } else {
    spec.algorithm = default_algo;
  }
  if (flags.problem) {
    const auto n = static_cast<unsigned>(cli.get_int(
        "qubits", default_qubits, "address bits (N = 2^qubits items)"));
    const auto k = static_cast<unsigned>(cli.get_int(
        "kbits", default_kbits, "wanted bits (K = 2^kbits blocks)"));
    PQS_CHECK_MSG(n >= 1 && n <= 62, "need 1 <= qubits <= 62");
    PQS_CHECK_MSG(k <= n, "need kbits <= qubits");
    spec.n_items = pow2(n);
    spec.n_blocks = pow2(k);
    std::uint64_t target = default_target;
    if (flags.target) {
      target = static_cast<std::uint64_t>(cli.get_int(
          "target", static_cast<std::int64_t>(default_target),
          "marked address (reduced mod N)"));
    }
    spec.marked = {target % spec.n_items};
  } else {
    spec.n_items = pow2(default_qubits);
    spec.n_blocks = pow2(default_kbits);
    spec.marked = {default_target % spec.n_items};
  }
  spec.backend = qsim::parse_backend_kind(cli.get_string(
      "backend", "auto", "simulation engine: auto | dense | symmetry"));
  spec.seed = static_cast<std::uint64_t>(cli.get_int(
      "seed", static_cast<std::int64_t>(flags.seed_default),
      "seed of the run's RNG stream"));
  if (flags.shots) {
    spec.shots = static_cast<std::uint64_t>(cli.get_int(
        "shots", static_cast<std::int64_t>(flags.shots_default),
        "measurement shots / Monte-Carlo trials"));
  }
  if (flags.batch) {
    spec.batch.threads = static_cast<unsigned>(cli.get_int(
        "batch", 0, "shot fan-out threads (0 = all hardware threads)"));
  }
  if (flags.noise) {
    spec.noise.kind = qsim::parse_noise_kind(cli.get_string(
        "noise", flags.noise_default,
        "noise channel: none | depolarizing | dephasing | bitflip"));
    spec.noise.probability = cli.get_double(
        "noise-p", 0.0, "per-qubit error rate after each oracle call");
    spec.noise.validate();
    PQS_CHECK_MSG(spec.noise.kind != qsim::NoiseKind::kNone ||
                      spec.noise.probability == 0.0,
                  "--noise none contradicts a nonzero --noise-p (pick a "
                  "channel, or drop --noise-p)");
  }
  if (flags.schedule) {
    const auto l1 = cli.get_int("l1", -1, "Step-1 iteration override");
    const auto l2 = cli.get_int("l2", -1, "Step-2 iteration override");
    if (l1 >= 0) {
      spec.l1 = static_cast<std::uint64_t>(l1);
    }
    if (l2 >= 0) {
      spec.l2 = static_cast<std::uint64_t>(l2);
    }
    spec.min_success = cli.get_double(
        "min-success", 0.0,
        "success floor for planned schedules (0 = per-algorithm default)");
  }
  return spec;
}

}  // namespace pqs::api

// Adapter: "grover" — standard full quantum search (grover/grover.h).
#include <memory>

#include "api/algorithms/adapter_util.h"
#include "api/algorithms/adapters.h"
#include "grover/grover.h"

namespace pqs::api {
namespace {

class GroverAlgorithm final : public Algorithm {
 public:
  std::string_view name() const override { return "grover"; }
  std::string_view summary() const override {
    return "standard full search: ~(pi/4) sqrt(N) queries, error ~1/N";
  }

  SearchReport run(RunContext& ctx) const override {
    ctx.checkpoint();
    const auto db = database_for(ctx);
    const std::uint64_t iterations =
        ctx.spec.l1.value_or(grover::optimal_iterations(db.size()));
    SearchReport report;
    report.l1 = iterations;
    if (ctx.spec.shots == 1) {
      const auto r = grover::search_with_iterations(
          db, iterations, ctx.rng, {.backend = ctx.spec.backend});
      report.measured = r.measured;
      report.correct = r.correct;
      report.queries = r.queries;
      report.queries_per_trial = r.queries;
      report.success_probability = r.success_probability;
      report.backend_used = r.backend_used;
      return report;
    }
    const auto backend =
        grover::evolve_on_backend(db, iterations, ctx.spec.backend);
    report.queries = db.queries();
    report.queries_per_trial = report.queries;
    report.success_probability = backend->marked_probability();
    report.backend_used = backend->kind();
    measure_shots(report, *backend, ctx, /*block_answer=*/false, db.target());
    return report;
  }
};

}  // namespace

void register_grover(Registry& registry) {
  registry.register_algorithm(
      "grover", [] { return std::make_unique<GroverAlgorithm>(); });
}

}  // namespace pqs::api

// Adapter: "bbht" — search with an unknown number of marked items
// (grover/bbht.h). shots > 1 fans independent restarts across threads.
#include <memory>
#include <sstream>

#include "api/algorithms/adapter_util.h"
#include "api/algorithms/adapters.h"
#include "grover/bbht.h"

namespace pqs::api {
namespace {

class BbhtAlgorithm final : public Algorithm {
 public:
  std::string_view name() const override { return "bbht"; }
  std::string_view summary() const override {
    return "BBHT search for an unknown number of marked items, expected "
           "O(sqrt(N/M)) queries";
  }

  SearchReport run(RunContext& ctx) const override {
    ctx.checkpoint();
    const auto db = marked_database_for(ctx);
    const grover::BbhtOptions options{.backend = ctx.spec.backend,
                                      .control = ctx.control};
    SearchReport report;
    report.backend_used = qsim::resolve_backend(
        ctx.spec.backend, qsim::BackendSpec{db.size(), 1, db.marked()});
    if (ctx.spec.shots == 1) {
      const auto r = grover::search_unknown(db, ctx.rng, options);
      report.measured = r.found.value_or(0);
      report.correct = r.found.has_value() && db.peek(*r.found);
      report.queries = r.queries;
      report.queries_per_trial = r.queries;
      report.success_probability = r.found.has_value() ? 1.0 : 0.0;
      report.detail =
          std::to_string(r.rounds) + " generate-and-test round(s)";
      return report;
    }
    if (ctx.control != nullptr) {
      ctx.control->set_work_total(ctx.spec.shots);
    }
    const auto r = grover::search_unknown_batch(db, ctx.spec.shots, options,
                                                ctx.batch_options());
    report.trials = r.shots;
    report.queries = db.queries();
    report.queries_per_trial =
        static_cast<std::uint64_t>(r.mean_queries + 0.5);
    report.success_probability =
        static_cast<double>(r.found) / static_cast<double>(r.shots);
    report.correct = 2 * r.found > r.shots;  // majority of restarts found
    std::ostringstream detail;
    detail << "mean " << r.mean_queries << " queries / " << r.mean_rounds
           << " rounds per restart (bound "
           << grover::bbht_expected_queries_bound(db.size(),
                                                  db.num_marked())
           << ")";
    report.detail = detail.str();
    return report;
  }
};

}  // namespace

void register_bbht(Registry& registry) {
  registry.register_algorithm(
      "bbht", [] { return std::make_unique<BbhtAlgorithm>(); });
}

}  // namespace pqs::api

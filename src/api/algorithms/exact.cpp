// Adapter: "exact" — sure-success full search (grover/exact.h).
#include <memory>

#include "api/algorithms/adapter_util.h"
#include "api/algorithms/adapters.h"
#include "grover/exact.h"

namespace pqs::api {
namespace {

class ExactAlgorithm final : public Algorithm {
 public:
  std::string_view name() const override { return "exact"; }
  std::string_view summary() const override {
    return "sure-success full search: one phase-matched final iteration, "
           "probability exactly 1";
  }

  SearchReport run(RunContext& ctx) const override {
    ctx.checkpoint();
    const auto db = database_for(ctx);
    const auto schedule = grover::exact_schedule(db.size());
    SearchReport report;
    report.l1 = schedule.plain_iterations;
    if (ctx.spec.shots == 1) {
      const auto r =
          grover::search_exact(db, ctx.rng, {.backend = ctx.spec.backend});
      report.measured = r.measured;
      report.correct = r.correct;
      report.queries = r.queries;
      report.queries_per_trial = r.queries;
      report.success_probability = r.success_probability;
      report.backend_used = r.backend_used;
      return report;
    }
    const auto backend = grover::evolve_exact_on_backend(db, ctx.spec.backend);
    report.queries = db.queries();
    report.queries_per_trial = report.queries;
    report.success_probability = backend->marked_probability();
    report.backend_used = backend->kind();
    measure_shots(report, *backend, ctx, /*block_answer=*/false, db.target());
    return report;
  }
};

}  // namespace

void register_exact(Registry& registry) {
  registry.register_algorithm(
      "exact", [] { return std::make_unique<ExactAlgorithm>(); });
}

}  // namespace pqs::api

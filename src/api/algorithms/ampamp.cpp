// Adapter: "ampamp" — multi-target amplitude amplification with the
// Walsh-Hadamard preparation (grover/amplitude_amplification.h).
#include <memory>

#include "api/algorithms/adapter_util.h"
#include "api/algorithms/adapters.h"
#include "grover/amplitude_amplification.h"

namespace pqs::api {
namespace {

class AmpampAlgorithm final : public Algorithm {
 public:
  std::string_view name() const override { return "ampamp"; }
  std::string_view summary() const override {
    return "amplitude amplification of an arbitrary marked set (uniform "
           "preparation)";
  }

  SearchReport run(RunContext& ctx) const override {
    ctx.checkpoint();
    const auto db = marked_database_for(ctx);
    const std::uint64_t iterations = ctx.spec.l1.value_or(
        grover_optimal_iterations(db.size(), db.num_marked()));
    const auto backend =
        grover::amplify_uniform_on_backend(db, iterations, ctx.spec.backend);
    SearchReport report;
    report.l1 = iterations;
    report.queries = db.queries();
    report.queries_per_trial = report.queries;
    report.success_probability = backend->marked_probability();
    report.backend_used = backend->kind();
    if (ctx.spec.shots == 1) {
      report.measured = backend->sample(ctx.rng);
      report.correct = db.peek(report.measured);
      return report;
    }
    measure_shots(report, *backend, ctx, /*block_answer=*/false,
                  /*truth=*/0);
    report.correct = db.peek(report.measured);  // any marked mode counts
    return report;
  }
};

}  // namespace

void register_ampamp(Registry& registry) {
  registry.register_algorithm(
      "ampamp", [] { return std::make_unique<AmpampAlgorithm>(); });
}

}  // namespace pqs::api

// Adapter: "twelve" — the paper's Figure-1 two-query pattern
// (partial/twelve.h), runnable on any (N, K) with K | N (exact success
// iff N = 4K/(K-2), e.g. the paper's N=12, K=3).
#include <memory>

#include "api/algorithms/adapter_util.h"
#include "api/algorithms/adapters.h"
#include "partial/twelve.h"

namespace pqs::api {
namespace {

class TwelveAlgorithm final : public Algorithm {
 public:
  std::string_view name() const override { return "twelve"; }
  std::string_view summary() const override {
    return "Figure-1 two-query pattern (exact when N = 4K/(K-2), as for "
           "N=12, K=3)";
  }

  SearchReport run(RunContext& ctx) const override {
    ctx.checkpoint();
    PQS_CHECK_MSG(ctx.spec.n_blocks >= 3,
                  "the two-query pattern needs K >= 3 blocks (N = "
                  "4K/(K-2) has no K <= 2 solution)");
    const auto db = database_for(ctx);

    // The five-stage pattern of Figure 1 (B and D are the two queries).
    auto backend = qsim::make_backend(
        ctx.spec.backend, qsim::BackendSpec::single_target(
                              db.size(), ctx.spec.n_blocks, db.target()));
    db.add_queries(1);
    backend->apply_oracle();            // (B)
    backend->apply_block_diffusion();   // (C)
    db.add_queries(1);
    backend->apply_oracle();            // (D)
    backend->apply_global_diffusion();  // (E)

    SearchReport report;
    report.queries = 2;
    report.queries_per_trial = 2;
    report.success_probability =
        backend->block_probability(backend->target_block());
    report.backend_used = backend->kind();
    if (4 * ctx.spec.n_blocks != ctx.spec.n_items * (ctx.spec.n_blocks - 2)) {
      report.detail = "shape is not N = 4K/(K-2): two queries are not "
                      "exact here (see partial/grk.h for the general "
                      "algorithm)";
    }
    if (ctx.spec.shots == 1) {
      report.measured = backend->sample_block(ctx.rng);
      report.block_answer = true;
      report.correct = report.measured == backend->target_block();
      return report;
    }
    measure_shots(report, *backend, ctx, /*block_answer=*/true,
                  backend->target_block());
    return report;
  }
};

}  // namespace

void register_twelve(Registry& registry) {
  registry.register_algorithm(
      "twelve", [] { return std::make_unique<TwelveAlgorithm>(); });
}

}  // namespace pqs::api

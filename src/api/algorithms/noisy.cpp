// Adapter: "noisy" — Monte-Carlo partial search under per-query Pauli
// noise (partial/noisy.h). spec.shots is the trajectory count; the
// schedule comes from the plan cache (noisy sweeps repeat one (N, K,
// floor) key per point, exactly the case the cache exists for).
#include <cmath>
#include <memory>
#include <sstream>

#include "api/algorithms/adapter_util.h"
#include "api/algorithms/adapters.h"
#include "partial/noisy.h"
#include "partial/optimizer.h"

namespace pqs::api {
namespace {

class NoisyAlgorithm final : public Algorithm {
 public:
  std::string_view name() const override { return "noisy"; }
  std::string_view summary() const override {
    return "partial search under per-query Pauli noise; success rate over "
           "spec.shots trajectories";
  }
  bool supports_noise() const override { return true; }

  SearchReport run(RunContext& ctx) const override {
    ctx.checkpoint();
    const unsigned k = block_bits(ctx.spec);
    const auto db = database_for(ctx);

    SearchReport report;
    partial::NoisyOptions options;
    options.backend = ctx.spec.backend;
    options.batch = ctx.spec.batch;
    options.batch.control = ctx.control;  // cancel lands within one trial
    if (ctx.spec.l1.has_value() && ctx.spec.l2.has_value()) {
      options.l1 = ctx.spec.l1;
      options.l2 = ctx.spec.l2;
    } else {
      // The noisy drivers' tight floor (error ~1/sqrt(N)): the comparison
      // against full search needs a near-1 clean baseline.
      const double floor = effective_floor(
          ctx.spec,
          1.0 - 1.0 / std::sqrt(static_cast<double>(db.size())));
      const Plan plan =
          ctx.planner.schedule(db.size(), ctx.spec.n_blocks, floor,
                               /*n_marked=*/1, ctx.control);
      options.l1 = ctx.spec.l1.value_or(plan.schedule.l1);
      options.l2 = ctx.spec.l2.value_or(plan.schedule.l2);
      report.plan_cache_hit = plan.cache_hit;
      report.plan_ns = plan.plan_ns;
    }
    report.l1 = *options.l1;
    report.l2 = *options.l2;
    ctx.checkpoint();  // planning may have taken seconds
    if (ctx.control != nullptr) {
      ctx.control->set_work_total(ctx.spec.shots);
    }

    const auto r = partial::run_noisy_partial_search(
        db, k, ctx.spec.noise, ctx.spec.shots, ctx.rng, options);
    report.trials = r.trials;
    report.queries = r.trials * r.queries_per_trial;
    report.queries_per_trial = r.queries_per_trial;
    report.success_probability = r.success_rate;
    report.backend_used = r.backend_used;
    // Aggregate answer: the block measured most often over the trajectories.
    report.block_answer = true;
    report.measured = r.modal_block;
    report.correct =
        r.modal_block == db.target() >> (log2_exact(db.size()) - k);
    std::ostringstream detail;
    detail << "Monte-Carlo aggregate: success rate " << r.success_rate
           << " over " << r.trials << " trajectories, mean "
           << r.mean_injected << " Pauli error(s) injected per trial";
    report.detail = detail.str();
    return report;
  }
};

}  // namespace

void register_noisy(Registry& registry) {
  registry.register_algorithm(
      "noisy", [] { return std::make_unique<NoisyAlgorithm>(); });
}

}  // namespace pqs::api

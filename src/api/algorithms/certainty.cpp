// Adapter: "certainty" — sure-success partial search (partial/certainty.h).
#include <memory>

#include "api/algorithms/adapter_util.h"
#include "api/algorithms/adapters.h"
#include "partial/certainty.h"

namespace pqs::api {
namespace {

class CertaintyAlgorithm final : public Algorithm {
 public:
  std::string_view name() const override { return "certainty"; }
  std::string_view summary() const override {
    return "sure-success partial search: the block with probability "
           "exactly 1, +O(1) queries over grk";
  }

  SearchReport run(RunContext& ctx) const override {
    ctx.checkpoint();
    PQS_CHECK_MSG(ctx.spec.shots == 1,
                  "\"certainty\" is sure-success; repeated shots add "
                  "nothing (drop shots)");
    const unsigned k = block_bits(ctx.spec);
    const auto db = database_for(ctx);
    const auto r =
        partial::run_partial_search_certain(db, k, ctx.rng, ctx.spec.backend);
    SearchReport report;
    report.l1 = r.schedule.l1;
    report.l2 = r.schedule.l2_plain + (r.schedule.generalized_needed ? 1 : 0);
    report.measured = r.measured_block;
    report.block_answer = true;
    report.correct = r.correct;
    report.queries = r.schedule.queries;
    report.queries_per_trial = r.schedule.queries;
    report.success_probability = r.block_probability;
    report.backend_used = r.backend_used;
    if (r.schedule.generalized_needed) {
      report.detail = "final generalized iteration: oracle phase " +
                      std::to_string(r.schedule.phases.oracle_phase) +
                      ", diffusion phase " +
                      std::to_string(r.schedule.phases.diffusion_phase);
    }
    return report;
  }
};

}  // namespace

void register_certainty(Registry& registry) {
  registry.register_algorithm(
      "certainty", [] { return std::make_unique<CertaintyAlgorithm>(); });
}

}  // namespace pqs::api

// Adapter: "zalka" — the Theorem-3 optimality analysis (zalka/zalka.h):
// runs the hybrid argument against the standard Grover circuit and reports
// the implied query floor. An analysis, not a search — `measured` stays 0.
#include <memory>
#include <sstream>

#include "api/algorithms/adapter_util.h"
#include "api/algorithms/adapters.h"
#include "zalka/zalka.h"

namespace pqs::api {
namespace {

/// Lemma 2's hybrid check is O(N T) simulator runs per sampled y; a fixed
/// small sample keeps the service-path cost bounded (the dedicated bench
/// sweeps the full set).
constexpr std::uint64_t kLemma2Sample = 8;

class ZalkaAlgorithm final : public Algorithm {
 public:
  std::string_view name() const override { return "zalka"; }
  std::string_view summary() const override {
    return "Zalka/Theorem-3 lower-bound analysis of the Grover circuit "
           "(lemma checks + implied query floor)";
  }

  SearchReport run(RunContext& ctx) const override {
    ctx.checkpoint();
    PQS_CHECK_MSG(ctx.spec.shots == 1,
                  "\"zalka\" is a deterministic analysis; drop shots");
    const auto db = database_for(ctx);
    PQS_CHECK_MSG(is_pow2(db.size()),
                  "the Zalka analysis runs on N = 2^n circuits");
    const unsigned n = log2_exact(db.size());
    const std::uint64_t iterations =
        ctx.spec.l1.value_or(grover_optimal_iterations(db.size()));
    zalka::ZalkaOptions options;
    options.lemma2_sample = kLemma2Sample;
    options.backend = ctx.spec.backend;
    const auto r = zalka::analyze_grover(n, iterations, options);

    SearchReport report;
    report.l1 = iterations;
    report.queries = r.queries;
    report.queries_per_trial = r.queries;
    report.success_probability = r.min_success;
    report.correct = r.lemma2_holds;  // the bound's hypotheses verified
    report.backend_used = qsim::BackendKind::kDense;
    std::ostringstream detail;
    detail << "implied query floor " << r.implied_query_floor
           << " (Theorem-3 closed form "
           << zalka::theorem3_floor(db.size(), r.eps) << "), eps = " << r.eps;
    report.detail = detail.str();
    return report;
  }
};

}  // namespace

void register_zalka(Registry& registry) {
  registry.register_algorithm(
      "zalka", [] { return std::make_unique<ZalkaAlgorithm>(); });
}

}  // namespace pqs::api

// Registration hooks of the built-in algorithm adapters (one thin adapter
// file per driver module under src/api/algorithms/). Internal to the api
// layer; user code reaches the adapters through
// Registry::with_builtin_algorithms().
#pragma once

namespace pqs {

class Registry;

namespace api {

void register_grover(Registry& registry);      // grover/grover.h
void register_exact(Registry& registry);       // grover/exact.h
void register_bbht(Registry& registry);        // grover/bbht.h
void register_ampamp(Registry& registry);      // grover/amplitude_amplification.h
void register_grk(Registry& registry);         // partial/grk.h
void register_multi(Registry& registry);       // partial/multi.h
void register_certainty(Registry& registry);   // partial/certainty.h
void register_interleave(Registry& registry);  // partial/interleave.h
void register_twelve(Registry& registry);      // partial/twelve.h
void register_noisy(Registry& registry);       // partial/noisy.h
void register_reduction(Registry& registry);   // reduction/reduction.h
void register_zalka(Registry& registry);       // zalka/zalka.h
void register_classical(Registry& registry);   // classical/search.h

}  // namespace api
}  // namespace pqs

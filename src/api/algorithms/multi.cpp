// Adapter: "multi" — partial search with a clustered multi-marked set
// (partial/multi.h); the plan cache key carries M.
#include <memory>

#include "api/algorithms/adapter_util.h"
#include "api/algorithms/adapters.h"
#include "partial/multi.h"
#include "partial/optimizer.h"

namespace pqs::api {
namespace {

class MultiAlgorithm final : public Algorithm {
 public:
  std::string_view name() const override { return "multi"; }
  std::string_view summary() const override {
    return "multi-marked partial search (all marked items in one block); "
           "costs shrink ~sqrt(M)";
  }

  SearchReport run(RunContext& ctx) const override {
    ctx.checkpoint();
    PQS_CHECK_MSG(ctx.spec.shots == 1,
                  "\"multi\" runs a single measured trial; drop shots");
    const unsigned k = block_bits(ctx.spec);
    const auto db = marked_database_for(ctx);

    SearchReport report;
    partial::MultiGrkOptions options;
    options.backend = ctx.spec.backend;
    if (ctx.spec.l1.has_value() && ctx.spec.l2.has_value()) {
      options.l1 = ctx.spec.l1;
      options.l2 = ctx.spec.l2;
    } else {
      const double floor = effective_floor(
          ctx.spec, partial::default_min_success(db.size()));
      const Plan plan = ctx.planner.schedule(
          db.size(), ctx.spec.n_blocks, floor, db.num_marked(), ctx.control);
      options.l1 = ctx.spec.l1.value_or(plan.schedule.l1);
      options.l2 = ctx.spec.l2.value_or(plan.schedule.l2);
      report.plan_cache_hit = plan.cache_hit;
      report.plan_ns = plan.plan_ns;
    }
    report.l1 = *options.l1;
    report.l2 = *options.l2;
    ctx.checkpoint();  // planning may have taken seconds

    const auto r = partial::run_partial_search_multi(db, k, ctx.rng, options);
    report.measured = r.measured_block;
    report.block_answer = true;
    report.correct = r.correct;
    report.queries = r.queries;
    report.queries_per_trial = r.queries;
    report.success_probability = r.block_probability;
    report.backend_used = r.backend_used;
    report.detail = "marked-set probability " +
                    std::to_string(r.marked_probability) + " over M=" +
                    std::to_string(db.num_marked());
    return report;
  }
};

}  // namespace

void register_multi(Registry& registry) {
  registry.register_algorithm(
      "multi", [] { return std::make_unique<MultiAlgorithm>(); });
}

}  // namespace pqs::api

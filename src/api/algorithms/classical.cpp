// Adapter: "classical" — the zero-error randomized baselines (Section 1.1
// / Appendix A, classical/search.h): full search for K = 1, partial search
// for K >= 2.
#include <memory>

#include "api/algorithms/adapter_util.h"
#include "api/algorithms/adapters.h"
#include "classical/search.h"
#include "oracle/blocks.h"

namespace pqs::api {
namespace {

class ClassicalAlgorithm final : public Algorithm {
 public:
  std::string_view name() const override { return "classical"; }
  std::string_view summary() const override {
    return "zero-error randomized classical baseline: ~N/2 probes (full) "
           "or ~N/2 (1 - 1/K^2) (partial)";
  }

  SearchReport run(RunContext& ctx) const override {
    ctx.checkpoint();
    PQS_CHECK_MSG(ctx.spec.shots == 1,
                  "\"classical\" runs a single zero-error scan; use the "
                  "classical/montecarlo.h harness for trial statistics");
    const auto db = database_for(ctx);
    SearchReport report;
    report.success_probability = 1.0;  // zero-error by construction
    if (ctx.spec.n_blocks == 1) {
      const auto r =
          classical::full_search_randomized(db, ctx.rng, ctx.control);
      report.measured = r.answer;
      report.correct = r.correct;
      report.queries = r.probes;
    } else {
      const oracle::BlockLayout layout(db.size(), ctx.spec.n_blocks);
      const auto r = classical::partial_search_randomized(db, layout, ctx.rng,
                                                          ctx.control);
      report.measured = r.answer;
      report.block_answer = true;
      report.correct = r.correct;
      report.queries = r.probes;
    }
    report.queries_per_trial = report.queries;
    return report;
  }
};

}  // namespace

void register_classical(Registry& registry) {
  registry.register_algorithm(
      "classical", [] { return std::make_unique<ClassicalAlgorithm>(); });
}

}  // namespace pqs::api

// Shared plumbing of the algorithm adapters: spec -> oracle construction,
// success-floor resolution, and multi-shot measurement of an evolved
// backend. Internal to src/api/algorithms/.
#pragma once

#include <string>

#include "api/registry.h"
#include "common/check.h"
#include "common/math.h"
#include "oracle/database.h"
#include "oracle/marked_set.h"
#include "qsim/backend.h"
#include "qsim/batch.h"

namespace pqs::api {

/// The spec's success floor, or `fallback` when the spec leaves it default.
inline double effective_floor(const SearchSpec& spec, double fallback) {
  return spec.min_success > 0.0 ? spec.min_success : fallback;
}

/// The unique-target oracle of a request (the marked set was materialized
/// once by the Engine). Checked: exactly one marked address.
inline oracle::Database database_for(const RunContext& ctx) {
  PQS_CHECK_MSG(ctx.marked.size() == 1,
                "this algorithm needs a unique marked address (got " +
                    std::to_string(ctx.marked.size()) + ")");
  return oracle::Database(ctx.spec.n_items, ctx.marked.front());
}

/// The arbitrary-marked-set oracle of a request.
inline oracle::MarkedDatabase marked_database_for(const RunContext& ctx) {
  return oracle::MarkedDatabase(ctx.spec.n_items, ctx.marked);
}

/// k with K = 2^k. Checked: the partial searchers need power-of-two blocks.
inline unsigned block_bits(const SearchSpec& spec) {
  PQS_CHECK_MSG(is_pow2(spec.n_blocks) && spec.n_blocks >= 2,
                "this algorithm needs K = 2^k >= 2 blocks");
  return log2_exact(spec.n_blocks);
}

/// Measure an evolved backend spec.shots times (fanned over spec.batch
/// threads, streams derived from ctx.rng so the spec seed rules) and fill
/// the measurement fields of `report`: `measured` becomes the modal
/// outcome, `correct` compares it against `truth`. Used by adapters for
/// shots > 1; a single shot stays on the module's own sampling path so it
/// is bit-identical to the direct call.
inline void measure_shots(SearchReport& report, const qsim::Backend& backend,
                          RunContext& ctx, bool block_answer,
                          qsim::Index truth) {
  ctx.checkpoint();  // the state is evolved; bail before the shot sweep
  if (ctx.control != nullptr) {
    ctx.control->set_work_total(ctx.spec.shots);
  }
  const qsim::BatchRunner runner(ctx.batch_options());
  const auto shot_report =
      block_answer
          ? runner.sample_block_shots(backend, ctx.spec.shots, 0)
          : runner.sample_shots(backend, ctx.spec.shots, 0);
  report.measured = shot_report.mode;
  report.block_answer = block_answer;
  report.correct = shot_report.mode == truth;
  report.trials = ctx.spec.shots;
  report.detail = "mode frequency " +
                  std::to_string(shot_report.mode_frequency) + " over " +
                  std::to_string(ctx.spec.shots) + " shots";
}

}  // namespace pqs::api

// Adapter: "reduction" — the Theorem-2 cascade: the FULL address, k bits
// per level via sure-success partial search (reduction/reduction.h).
#include <memory>
#include <sstream>

#include "api/algorithms/adapter_util.h"
#include "api/algorithms/adapters.h"
#include "reduction/reduction.h"

namespace pqs::api {
namespace {

class ReductionAlgorithm final : public Algorithm {
 public:
  std::string_view name() const override { return "reduction"; }
  std::string_view summary() const override {
    return "full search via iterated partial search (Theorem 2), "
           "log2(K) bits per level";
  }

  SearchReport run(RunContext& ctx) const override {
    ctx.checkpoint();
    PQS_CHECK_MSG(ctx.spec.shots == 1,
                  "\"reduction\" runs a single cascade; drop shots");
    const unsigned k = block_bits(ctx.spec);
    const auto db = database_for(ctx);
    reduction::ReductionOptions options;
    options.backend = ctx.spec.backend;
    const auto r = reduction::search_full_via_partial(db, k, ctx.rng, options);

    SearchReport report;
    report.measured = r.found;
    report.correct = r.correct;
    report.queries = r.total_queries;
    report.queries_per_trial = r.total_queries;
    report.success_probability = r.correct ? 1.0 : 0.0;  // zero-error cascade
    report.backend_used =
        qsim::resolve_backend(ctx.spec.backend,
                              qsim::BackendSpec::single_target(
                                  db.size(), ctx.spec.n_blocks, db.target()));
    std::ostringstream detail;
    detail << r.levels.size() << " level(s):";
    for (const auto& level : r.levels) {
      detail << ' ' << level.queries
             << (level.via_partial_search ? "q" : "q(scan)");
    }
    report.detail = detail.str();
    return report;
  }
};

}  // namespace

void register_reduction(Registry& registry) {
  registry.register_algorithm(
      "reduction", [] { return std::make_unique<ReductionAlgorithm>(); });
}

}  // namespace pqs::api

// Adapter: "grk" — the paper's three-step partial search (partial/grk.h),
// with the schedule served from the Engine's plan cache.
#include <memory>

#include "api/algorithms/adapter_util.h"
#include "api/algorithms/adapters.h"
#include "partial/grk.h"
#include "partial/optimizer.h"

namespace pqs::api {
namespace {

class GrkAlgorithm final : public Algorithm {
 public:
  std::string_view name() const override { return "grk"; }
  std::string_view summary() const override {
    return "Grover-Radhakrishnan partial search: the target's block in "
           "~(pi/4)(1 - c/sqrt(K)) sqrt(N) queries";
  }

  SearchReport run(RunContext& ctx) const override {
    ctx.checkpoint();
    const unsigned k = block_bits(ctx.spec);
    const auto db = database_for(ctx);

    SearchReport report;
    partial::GrkOptions options;
    options.backend = ctx.spec.backend;
    if (ctx.spec.l1.has_value() && ctx.spec.l2.has_value()) {
      options.l1 = ctx.spec.l1;
      options.l2 = ctx.spec.l2;
    } else {
      const double floor = effective_floor(
          ctx.spec, partial::default_min_success(db.size()));
      const Plan plan =
          ctx.planner.schedule(db.size(), ctx.spec.n_blocks, floor,
                               /*n_marked=*/1, ctx.control);
      options.l1 = ctx.spec.l1.value_or(plan.schedule.l1);
      options.l2 = ctx.spec.l2.value_or(plan.schedule.l2);
      report.plan_cache_hit = plan.cache_hit;
      report.plan_ns = plan.plan_ns;
    }
    report.l1 = *options.l1;
    report.l2 = *options.l2;
    ctx.checkpoint();  // planning may have taken seconds

    if (ctx.spec.shots == 1) {
      const auto r = partial::run_partial_search(db, k, ctx.rng, options);
      report.measured = r.measured_block;
      report.block_answer = true;
      report.correct = r.correct;
      report.queries = r.queries;
      report.queries_per_trial = r.queries;
      report.success_probability = r.block_probability;
      report.backend_used = r.backend_used;
      return report;
    }
    const auto backend = partial::evolve_partial_search_on_backend(
        db, k, *options.l1, *options.l2, ctx.spec.backend);
    report.queries = db.queries();
    report.queries_per_trial = report.queries;
    report.success_probability =
        backend->block_probability(backend->target_block());
    report.backend_used = backend->kind();
    measure_shots(report, *backend, ctx, /*block_answer=*/true,
                  backend->target_block());
    return report;
  }
};

}  // namespace

void register_grk(Registry& registry) {
  registry.register_algorithm(
      "grk", [] { return std::make_unique<GrkAlgorithm>(); });
}

}  // namespace pqs::api

// Adapter: "interleave" — cheapest alternating G/L schedule beyond the
// paper's two-segment form (partial/interleave.h), executed on the chosen
// engine.
#include <memory>

#include "api/algorithms/adapter_util.h"
#include "api/algorithms/adapters.h"
#include "partial/interleave.h"
#include "partial/optimizer.h"

namespace pqs::api {
namespace {

/// Segment budget of the schedule search (the search is exponential in the
/// segment count; 3 is where the follow-up literature's gains live).
constexpr unsigned kMaxSegments = 3;

class InterleaveAlgorithm final : public Algorithm {
 public:
  std::string_view name() const override { return "interleave"; }
  std::string_view summary() const override {
    return "optimized alternating global/local schedule (up to 3 "
           "segments), executed and measured";
  }

  SearchReport run(RunContext& ctx) const override {
    ctx.checkpoint();
    PQS_CHECK_MSG(ctx.spec.shots == 1,
                  "\"interleave\" runs a single measured trial; drop shots");
    const unsigned k = block_bits(ctx.spec);
    const auto db = database_for(ctx);
    const double floor =
        effective_floor(ctx.spec, partial::default_min_success(db.size()));
    const auto opt = partial::optimize_interleaved(
        db.size(), ctx.spec.n_blocks, floor, kMaxSegments);

    // Execute the optimized schedule and measure (the loop mirrors
    // run_schedule_on_backend, which only reports the probability).
    auto backend = qsim::make_backend(
        ctx.spec.backend, qsim::BackendSpec::single_target(
                              db.size(), ctx.spec.n_blocks, db.target()));
    for (const auto& segment : opt.schedule.segments) {
      for (std::uint64_t i = 0; i < segment.count; ++i) {
        db.add_queries(1);
        backend->apply_oracle();
        if (segment.global) {
          backend->apply_global_diffusion();
        } else {
          backend->apply_block_diffusion();
        }
      }
    }
    db.add_queries(1);  // Step 3
    backend->apply_step3();

    SearchReport report;
    report.measured = backend->sample_block(ctx.rng);
    report.block_answer = true;
    report.correct = report.measured == backend->target_block();
    report.queries = opt.queries;
    report.queries_per_trial = opt.queries;
    report.success_probability =
        backend->block_probability(backend->target_block());
    report.backend_used = backend->kind();
    report.detail = "schedule " + opt.schedule.to_string() +
                    " (model success " + std::to_string(opt.success) + ")";
    return report;
  }
};

}  // namespace

void register_interleave(Registry& registry) {
  registry.register_algorithm(
      "interleave", [] { return std::make_unique<InterleaveAlgorithm>(); });
}

}  // namespace pqs::api

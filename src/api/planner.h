// The cached schedule planner.
//
// Planning a partial-search schedule is an O(sqrt(N) * sqrt(N/K)) model
// search (partial/optimizer.h) — seconds of CPU at n = 32 — while running
// the planned schedule on the symmetry engine is microseconds. A service
// answering repeated requests must therefore never re-derive a schedule it
// has already derived: Planner memoizes optimize_schedule results keyed by
// (N, K, M, min_success) behind a mutex, so concurrent Engine::run calls
// share one deterministic plan and repeated specs skip the search entirely
// (the second request's planning time is ~0).
//
// The cache is a bounded LRU (default 1024 plans): a long-lived service
// sweeping many problem shapes keeps its hottest schedules and evicts the
// coldest instead of growing without limit. hits() / misses() / evictions()
// expose the counters a deployment watches to size the bound.
#pragma once

#include <cstdint>

#include "common/lru.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "partial/optimizer.h"
#include "qsim/run_control.h"

namespace pqs {

/// The cache key: everything optimize_schedule's answer depends on.
struct PlanKey {
  std::uint64_t n_items = 0;
  std::uint64_t n_blocks = 0;
  std::uint64_t n_marked = 1;
  double min_success = 0.0;

  friend bool operator<(const PlanKey& a, const PlanKey& b) {
    if (a.n_items != b.n_items) return a.n_items < b.n_items;
    if (a.n_blocks != b.n_blocks) return a.n_blocks < b.n_blocks;
    if (a.n_marked != b.n_marked) return a.n_marked < b.n_marked;
    return a.min_success < b.min_success;
  }
};

/// One planning answer plus how this lookup got it.
struct Plan {
  partial::IntegerOptimum schedule;
  bool cache_hit = false;      ///< this lookup was served from the cache
  std::uint64_t plan_ns = 0;   ///< time spent searching (~0 on a hit)
};

/// Thread-safe memoized schedule planner. const methods are safe to call
/// concurrently; the cache is internally synchronized.
class Planner {
 public:
  static constexpr std::size_t kDefaultCapacity = 1024;

  explicit Planner(std::size_t capacity = kDefaultCapacity)
      : cache_(capacity) {}

  /// The (possibly cached) schedule for (N, K, M, min_success). On a miss
  /// the optimize_schedule search runs OUTSIDE any lock (concurrent misses
  /// on the same key may race to compute; the result is deterministic, so
  /// last-writer-wins is safe and every caller returns the same plan).
  /// `control`, when given, lands a span event on the request's timeline —
  /// `plan.cache_hit` or `plan.computed` — so a trace shows where the
  /// schedule came from.
  Plan schedule(std::uint64_t n_items, std::uint64_t n_blocks,
                double min_success, std::uint64_t n_marked = 1,
                const qsim::RunControl* control = nullptr) const;

  /// Re-home the hit/miss counters in `registry` (as `plan.cache_hits` /
  /// `plan.cache_misses`), replacing the private fallback counters. Call
  /// before traffic (Service does, at construction); counts accumulated
  /// so far stay behind in the fallback.
  void bind_metrics(obs::MetricsRegistry& registry);

  std::uint64_t hits() const { return hits_->value(); }
  std::uint64_t misses() const { return misses_->value(); }
  /// Plans dropped by the LRU bound since construction / last clear().
  std::uint64_t evictions() const;
  std::uint64_t size() const;
  std::size_t capacity() const;
  /// Re-bound the cache (shrinking evicts cold plans immediately).
  void set_capacity(std::size_t capacity);
  void clear();

 private:
  /// Guards the LruMap (which is deliberately lock-free itself — see
  /// common/lru.h); the hit/miss counters are obs::Counters (relaxed
  /// atomics) so a hot cache path can bump them outside the critical
  /// section. They default to the private fallback pair and re-home into
  /// a shared registry via bind_metrics.
  mutable Mutex mutex_;
  mutable LruMap<PlanKey, partial::IntegerOptimum> cache_
      PQS_GUARDED_BY(mutex_);
  mutable obs::Counter own_hits_;
  mutable obs::Counter own_misses_;
  obs::Counter* hits_ = &own_hits_;
  obs::Counter* misses_ = &own_misses_;
};

}  // namespace pqs

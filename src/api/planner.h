// The cached schedule planner.
//
// Planning a partial-search schedule is an O(sqrt(N) * sqrt(N/K)) model
// search (partial/optimizer.h) — seconds of CPU at n = 32 — while running
// the planned schedule on the symmetry engine is microseconds. A service
// answering repeated requests must therefore never re-derive a schedule it
// has already derived: Planner memoizes optimize_schedule results keyed by
// (N, K, M, min_success) behind a shared mutex, so concurrent Engine::run
// calls share one deterministic plan and repeated specs skip the search
// entirely (the second request's planning time is ~0).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <shared_mutex>

#include "partial/optimizer.h"

namespace pqs {

/// The cache key: everything optimize_schedule's answer depends on.
struct PlanKey {
  std::uint64_t n_items = 0;
  std::uint64_t n_blocks = 0;
  std::uint64_t n_marked = 1;
  double min_success = 0.0;

  friend bool operator<(const PlanKey& a, const PlanKey& b) {
    if (a.n_items != b.n_items) return a.n_items < b.n_items;
    if (a.n_blocks != b.n_blocks) return a.n_blocks < b.n_blocks;
    if (a.n_marked != b.n_marked) return a.n_marked < b.n_marked;
    return a.min_success < b.min_success;
  }
};

/// One planning answer plus how this lookup got it.
struct Plan {
  partial::IntegerOptimum schedule;
  bool cache_hit = false;         ///< this lookup was served from the cache
  double planning_seconds = 0.0;  ///< time spent searching (~0 on a hit)
};

/// Thread-safe memoized schedule planner. const methods are safe to call
/// concurrently; the cache is internally synchronized.
class Planner {
 public:
  /// The (possibly cached) schedule for (N, K, M, min_success). On a miss
  /// the optimize_schedule search runs OUTSIDE any lock (concurrent misses
  /// on the same key may race to compute; the result is deterministic, so
  /// first-writer-wins is safe and every caller returns the same plan).
  Plan schedule(std::uint64_t n_items, std::uint64_t n_blocks,
                double min_success, std::uint64_t n_marked = 1) const;

  std::uint64_t hits() const { return hits_.load(); }
  std::uint64_t misses() const { return misses_.load(); }
  std::uint64_t size() const;
  void clear();

 private:
  mutable std::shared_mutex mutex_;
  mutable std::map<PlanKey, partial::IntegerOptimum> cache_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
};

}  // namespace pqs

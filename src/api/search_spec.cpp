#include "api/search_spec.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace pqs {

SearchSpec SearchSpec::single_target(std::uint64_t n_items,
                                     std::uint64_t n_blocks,
                                     qsim::Index target) {
  SearchSpec spec;
  spec.n_items = n_items;
  spec.n_blocks = n_blocks;
  spec.marked = {target};
  return spec;
}

qsim::Index SearchSpec::target() const {
  PQS_CHECK_MSG(marked.size() == 1,
                "SearchSpec::target: the spec does not have a unique marked "
                "address");
  return marked.front();
}

std::vector<qsim::Index> SearchSpec::resolve_marked() const {
  PQS_CHECK_MSG(marked.empty() != !predicate,
                "set exactly one of SearchSpec::marked and "
                "SearchSpec::predicate");
  if (!marked.empty()) {
    for (const auto m : marked) {
      PQS_CHECK_MSG(m < n_items, "marked address out of range");
    }
    auto sorted = marked;
    std::sort(sorted.begin(), sorted.end());
    PQS_CHECK_MSG(std::adjacent_find(sorted.begin(), sorted.end()) ==
                      sorted.end(),
                  "marked set has duplicates");
    return sorted;
  }
  PQS_CHECK_MSG(n_items <= kMaxPredicateItems,
                "predicate specs scan the whole address space; N is too "
                "large (pass an explicit marked set instead)");
  std::vector<qsim::Index> out;
  for (qsim::Index x = 0; x < n_items; ++x) {
    if (predicate(x)) {
      out.push_back(x);
    }
  }
  PQS_CHECK_MSG(!out.empty(), "the merit predicate marked no address");
  return out;
}

void SearchSpec::validate_knobs() const {
  PQS_CHECK_MSG(!algorithm.empty(), "algorithm name is empty");
  PQS_CHECK_MSG(n_items >= 2, "need at least two items");
  PQS_CHECK_MSG(n_blocks >= 1 && n_items % n_blocks == 0,
                "n_blocks must divide n_items");
  PQS_CHECK_MSG(shots >= 1, "need at least one shot");
  PQS_CHECK_MSG(min_success <= 1.0, "min_success above 1 is unsatisfiable");
  PQS_CHECK_MSG(batch.control == nullptr,
                "a RunControl attaches at run time (Engine::run / "
                "Service::submit), never inside a SearchSpec — specs stay "
                "pure data so they can be hashed, cached, and serialized");
  noise.validate();
}

void SearchSpec::validate() const {
  validate_knobs();
  (void)resolve_marked();  // exactly-one-source + range checks
}

std::string SearchSpec::describe() const {
  std::ostringstream os;
  os << algorithm << " N=" << n_items << " K=" << n_blocks;
  if (!marked.empty()) {
    os << " M=" << marked.size();
  } else {
    os << " M=predicate";
  }
  os << " backend=" << qsim::to_string(backend) << " seed=" << seed;
  if (l1.has_value() || l2.has_value()) {
    os << " l1=" << (l1 ? std::to_string(*l1) : std::string("auto"))
       << " l2=" << (l2 ? std::to_string(*l2) : std::string("auto"));
  }
  if (min_success > 0.0) {
    os << " min_success=" << min_success;
  }
  if (shots > 1) {
    os << " shots=" << shots;
  }
  if (noise.enabled()) {
    os << " noise=" << qsim::noise_kind_name(noise.kind) << "@"
       << noise.probability;
  }
  return os.str();
}

std::string SearchReport::to_string() const {
  std::ostringstream os;
  os << algorithm << ": measured " << (block_answer ? "block " : "address ")
     << measured << (correct ? " (correct)" : " (WRONG)") << " in "
     << queries << " queries";
  if (trials > 1) {
    os << " (" << trials << " trials x " << queries_per_trial
       << " queries)";
  }
  os << "\n  success " << success_probability << ", engine "
     << qsim::to_string(backend_used);
  if (l1 != 0 || l2 != 0) {
    os << ", schedule l1=" << l1 << " l2=" << l2
       << (plan_cache_hit ? " (cached plan)" : "");
  }
  os << "\n  timing queue " << queue_ns << " ns, plan " << plan_ns
     << " ns, exec " << exec_ns << " ns";
  if (!detail.empty()) {
    os << "\n  " << detail;
  }
  return os.str();
}

}  // namespace pqs

// pqs::Engine — the long-lived search service.
//
// One Engine serves every algorithm in the repository through a single
// declarative call:
//
//   pqs::Engine engine;                       // built-in registry
//   auto spec = pqs::SearchSpec::single_target(4096, 4, 2731);
//   spec.algorithm = "grk";                   // or "auto"
//   const pqs::SearchReport report = engine.run(spec);
//
// The Engine owns the algorithm registry (every driver invocable by name)
// and the plan cache (memoized optimizer schedules behind a shared mutex),
// and is safe to share across threads: run() is const, every request gets
// its own oracle and RNG (seeded from spec.seed), and the only shared
// mutable state is the internally synchronized cache. That is the shape a
// production deployment needs — one warm engine per process, requests from
// many sessions, repeated specs skipping the seconds-long schedule search.
//
// The claim is machine-checked, not a comment: the Planner's cache is
// capability-annotated (common/thread_annotations.h) and the registry is
// const-immutable after construction, so the Clang thread-safety build
// (cmake -DPQS_THREAD_SAFETY=ON) proves Engine has no unguarded shared
// mutable state.
#pragma once

#include <string>
#include <vector>

#include "api/planner.h"
#include "api/registry.h"
#include "api/search_spec.h"

namespace pqs {

class Engine {
 public:
  /// An engine over the built-in registry (all 13 drivers).
  Engine() : Engine(Registry::with_builtin_algorithms()) {}
  /// An engine over a caller-assembled registry (custom algorithms), with
  /// an optional bound on the plan cache (plans kept before LRU eviction).
  explicit Engine(Registry registry,
                  std::size_t plan_cache_capacity = Planner::kDefaultCapacity)
      : registry_(std::move(registry)), planner_(plan_cache_capacity) {}

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Execute one request. Validates the spec, resolves "auto", runs the
  /// adapter, and stamps the timing / resolved-name fields. Thread-safe.
  ///
  /// `control`, when given, makes the run cancellable and observable:
  /// adapters checkpoint between stages and the shot loops check per shot,
  /// so cancel() surfaces as qsim::CancelledError from this call within one
  /// shot-batch; progress accumulates on the same handle. pqs::Service
  /// threads one RunControl per job through here.
  SearchReport run(const SearchSpec& spec,
                   qsim::RunControl* control = nullptr) const;

  /// The algorithm "auto" resolves to for this spec, per the paper's cost
  /// model (Section 1's classical-vs-quantum comparison, the sure-success
  /// and multi-marked variants where they apply). Deterministic pure
  /// function of the spec.
  std::string resolve_algorithm(const SearchSpec& spec) const;

  /// The same decision given an already-materialized marked set (run()
  /// uses this so a predicate spec is scanned exactly once per request).
  std::string resolve_algorithm(const SearchSpec& spec,
                                std::uint64_t n_marked) const;

  /// The (cached) schedule the partial searchers would run for this spec,
  /// without executing anything — for cost previews and capacity planning.
  Plan plan(const SearchSpec& spec) const;

  const Registry& registry() const { return registry_; }
  const Planner& planner() const { return planner_; }
  /// Re-home the plan cache's hit/miss counters in `registry` (forwarded
  /// to Planner::bind_metrics). Pre-traffic wiring; pqs::Service calls it
  /// at construction.
  void bind_metrics(obs::MetricsRegistry& registry) {
    planner_.bind_metrics(registry);
  }
  std::vector<std::string> algorithm_names() const {
    return registry_.names();
  }

 private:
  Registry registry_;
  mutable Planner planner_;
};

}  // namespace pqs

#include "api/registry.h"

#include <sstream>

#include "api/algorithms/adapters.h"
#include "common/check.h"

namespace pqs {

void Registry::register_algorithm(const std::string& name,
                                  AlgorithmFactory factory) {
  PQS_CHECK_MSG(!name.empty(), "algorithm name is empty");
  PQS_CHECK_MSG(name != "auto",
                "\"auto\" is reserved for the Engine's algorithm planner");
  PQS_CHECK_MSG(factory != nullptr, "algorithm factory is null");
  auto algorithm = factory();
  PQS_CHECK_MSG(algorithm != nullptr, "algorithm factory returned null");
  PQS_CHECK_MSG(algorithm->name() == name,
                "algorithm self-reports a different name than it is "
                "registered under");
  const auto [it, inserted] = algorithms_.emplace(name, std::move(algorithm));
  (void)it;
  PQS_CHECK_MSG(inserted, "algorithm \"" + name + "\" already registered");
}

bool Registry::contains(std::string_view name) const {
  return algorithms_.find(name) != algorithms_.end();
}

const Algorithm& Registry::find(std::string_view name) const {
  const auto it = algorithms_.find(name);
  if (it == algorithms_.end()) {
    std::ostringstream os;
    os << "unknown algorithm \"" << name << "\"; registered:";
    for (const auto& entry : algorithms_) {
      os << ' ' << entry.first;
    }
    throw CheckFailure(os.str());
  }
  return *it->second;
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(algorithms_.size());
  for (const auto& entry : algorithms_) {
    out.push_back(entry.first);
  }
  return out;  // std::map iterates sorted
}

Registry Registry::with_builtin_algorithms() {
  Registry registry;
  api::register_grover(registry);
  api::register_exact(registry);
  api::register_bbht(registry);
  api::register_ampamp(registry);
  api::register_grk(registry);
  api::register_multi(registry);
  api::register_certainty(registry);
  api::register_interleave(registry);
  api::register_twelve(registry);
  api::register_noisy(registry);
  api::register_reduction(registry);
  api::register_zalka(registry);
  api::register_classical(registry);
  return registry;
}

}  // namespace pqs

// CLI -> SearchSpec: the facade-era flag set. Where PR 2's qsim/flags.h
// collapsed the engine knobs (--backend/--batch/--noise) across binaries,
// this collapses the WHOLE request: --algo plus the shared knobs parse
// straight into a SearchSpec, so every facade-ported bench and example
// spells the full request identically and typos fail loudly through
// Cli::finish().
#pragma once

#include "api/search_spec.h"
#include "common/cli.h"

namespace pqs::api {

/// Which flags to declare (only declared flags are accepted — passing
/// --noise to a binary that never runs noisy specs stays an unknown-flag
/// error, the bug class this layer exists to prevent).
struct SpecFlagSet {
  bool algo = true;     ///< --algo
  bool problem = true;  ///< --qubits / --kbits
  /// --target (only with `problem`). Binaries that derive the target from
  /// the problem size turn this off rather than silently overwriting a
  /// user-passed flag.
  bool target = true;
  bool shots = false;   ///< --shots
  bool batch = false;   ///< --batch
  bool noise = false;   ///< --noise / --noise-p
  bool schedule = false;  ///< --l1 / --l2 / --min-success
  /// Default channel when --noise is declared ("none", or "depolarizing"
  /// for the Monte-Carlo sweep drivers).
  const char* noise_default = "none";
  /// Per-binary defaults for the declared flags — a binary pins its
  /// historical seed / trial count HERE so the flag still works (never by
  /// overwriting the parsed spec afterwards).
  std::uint64_t seed_default = 2005;
  std::uint64_t shots_default = 1;
};

/// Declare and parse the selected flags into a SearchSpec (defaults:
/// `default_algo`, N = 2^default_qubits, K = 2^default_kbits, target
/// default_target, --backend auto, --seed 2005). Call before cli.finish().
SearchSpec parse_search_spec(Cli& cli, const SpecFlagSet& flags = {},
                             const std::string& default_algo = "auto",
                             unsigned default_qubits = 12,
                             unsigned default_kbits = 2,
                             std::uint64_t default_target = 2731);

}  // namespace pqs::api

#include "api/serialize.h"

#include <cstdio>
#include <set>
#include <string_view>

#include "common/check.h"
#include "qsim/noise.h"

namespace pqs::api {

namespace {

/// Reject keys outside `known`, naming the offender — a misspelled field in
/// a client request must fail loudly, not silently run with defaults.
void check_known_keys(const Json& json, const std::set<std::string_view>& known,
                      std::string_view what) {
  for (const auto& [key, value] : json.as_object()) {
    PQS_CHECK_MSG(known.contains(key),
                  std::string(what) + ": unknown field \"" + key + "\"");
  }
}

}  // namespace

Json to_json(const SearchSpec& spec) {
  PQS_CHECK_MSG(!spec.predicate,
                "a predicate spec cannot be serialized (the predicate is "
                "code); materialize it via resolve_marked() first");
  Json json = Json::make_object();
  json["algorithm"] = spec.algorithm;
  json["n_items"] = spec.n_items;
  json["n_blocks"] = spec.n_blocks;
  Json marked = Json::make_array();
  for (const auto m : spec.marked) {
    marked.push_back(std::uint64_t{m});
  }
  json["marked"] = std::move(marked);
  json["backend"] = qsim::to_string(spec.backend);
  json["threads"] = std::uint64_t{spec.batch.threads};
  json["noise"] = std::string(qsim::noise_kind_name(spec.noise.kind));
  json["noise_p"] = spec.noise.probability;
  json["seed"] = spec.seed;
  json["min_success"] = spec.min_success;
  if (spec.l1.has_value()) {
    json["l1"] = *spec.l1;
  }
  if (spec.l2.has_value()) {
    json["l2"] = *spec.l2;
  }
  json["shots"] = spec.shots;
  return json;
}

SearchSpec spec_from_json(const Json& json) {
  check_known_keys(json,
                   {"algorithm", "n_items", "n_blocks", "marked", "backend",
                    "threads", "noise", "noise_p", "seed", "min_success",
                    "l1", "l2", "shots"},
                   "SearchSpec");
  SearchSpec spec;
  if (json.has("algorithm")) spec.algorithm = json.at("algorithm").as_string();
  if (json.has("n_items")) spec.n_items = json.at("n_items").as_uint();
  if (json.has("n_blocks")) spec.n_blocks = json.at("n_blocks").as_uint();
  if (json.has("marked")) {
    spec.marked.clear();
    for (const auto& m : json.at("marked").as_array()) {
      spec.marked.push_back(m.as_uint());
    }
  }
  if (json.has("backend")) {
    spec.backend = qsim::parse_backend_kind(json.at("backend").as_string());
  }
  if (json.has("threads")) {
    spec.batch.threads = static_cast<unsigned>(json.at("threads").as_uint());
  }
  if (json.has("noise")) {
    spec.noise.kind = qsim::parse_noise_kind(json.at("noise").as_string());
  }
  if (json.has("noise_p")) {
    spec.noise.probability = json.at("noise_p").as_double();
  }
  if (json.has("seed")) spec.seed = json.at("seed").as_uint();
  if (json.has("min_success")) {
    spec.min_success = json.at("min_success").as_double();
  }
  if (json.has("l1")) spec.l1 = json.at("l1").as_uint();
  if (json.has("l2")) spec.l2 = json.at("l2").as_uint();
  if (json.has("shots")) spec.shots = json.at("shots").as_uint();
  return spec;
}

Json to_json(const SearchReport& report) {
  Json json = Json::make_object();
  json["algorithm"] = report.algorithm;
  json["measured"] = std::uint64_t{report.measured};
  json["block_answer"] = report.block_answer;
  json["correct"] = report.correct;
  json["queries"] = report.queries;
  json["queries_per_trial"] = report.queries_per_trial;
  json["trials"] = report.trials;
  json["success_probability"] = report.success_probability;
  json["l1"] = report.l1;
  json["l2"] = report.l2;
  json["backend_used"] = qsim::to_string(report.backend_used);
  json["plan_cache_hit"] = report.plan_cache_hit;
  json["queue_ns"] = report.queue_ns;
  json["plan_ns"] = report.plan_ns;
  json["exec_ns"] = report.exec_ns;
  json["detail"] = report.detail;
  return json;
}

SearchReport report_from_json(const Json& json) {
  check_known_keys(json,
                   {"algorithm", "measured", "block_answer", "correct",
                    "queries", "queries_per_trial", "trials",
                    "success_probability", "l1", "l2", "backend_used",
                    "plan_cache_hit", "queue_ns", "plan_ns", "exec_ns",
                    "detail"},
                   "SearchReport");
  SearchReport report;
  if (json.has("algorithm")) report.algorithm = json.at("algorithm").as_string();
  if (json.has("measured")) report.measured = json.at("measured").as_uint();
  if (json.has("block_answer")) {
    report.block_answer = json.at("block_answer").as_bool();
  }
  if (json.has("correct")) report.correct = json.at("correct").as_bool();
  if (json.has("queries")) report.queries = json.at("queries").as_uint();
  if (json.has("queries_per_trial")) {
    report.queries_per_trial = json.at("queries_per_trial").as_uint();
  }
  if (json.has("trials")) report.trials = json.at("trials").as_uint();
  if (json.has("success_probability")) {
    report.success_probability = json.at("success_probability").as_double();
  }
  if (json.has("l1")) report.l1 = json.at("l1").as_uint();
  if (json.has("l2")) report.l2 = json.at("l2").as_uint();
  if (json.has("backend_used")) {
    report.backend_used =
        qsim::parse_backend_kind(json.at("backend_used").as_string());
  }
  if (json.has("plan_cache_hit")) {
    report.plan_cache_hit = json.at("plan_cache_hit").as_bool();
  }
  if (json.has("queue_ns")) report.queue_ns = json.at("queue_ns").as_uint();
  if (json.has("plan_ns")) report.plan_ns = json.at("plan_ns").as_uint();
  if (json.has("exec_ns")) report.exec_ns = json.at("exec_ns").as_uint();
  if (json.has("detail")) report.detail = json.at("detail").as_string();
  return report;
}

std::string canonical_key(const SearchSpec& spec) {
  SearchSpec canonical = spec;
  canonical.marked = spec.resolve_marked();  // sorted-unique; scans predicates
  canonical.predicate = nullptr;
  return canonical_key_canonicalized(canonical);
}

namespace {

/// FNV-1a over `bytes` from a caller-chosen basis (two bases give the two
/// independent halves of the 128-bit digest below).
std::uint64_t fnv1a(std::string_view bytes, std::uint64_t basis) {
  std::uint64_t hash = basis;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace

std::string canonical_key_canonicalized(const SearchSpec& spec) {
  Json json = to_json(spec);
  // Thread fan-out does not change the answer: per-shot RNG streams derive
  // from (seed, shot index) alone, so any thread count yields the identical
  // report and specs differing only there should coalesce.
  json.as_object().erase("threads");
  const std::string canonical = json.dump();
  // Digest rather than the dump itself: a materialized marked set can be
  // huge, and the key is stored per job / per cache entry and compared on
  // every submit. 128 bits keeps accidental collisions out of reach.
  char digest[34];
  std::snprintf(digest, sizeof(digest), "%016llx%016llx",
                static_cast<unsigned long long>(
                    fnv1a(canonical, 0xcbf29ce484222325ULL)),
                static_cast<unsigned long long>(
                    fnv1a(canonical, 0x9e3779b97f4a7c15ULL)));
  return std::string(digest, 32);
}

}  // namespace pqs::api

#include "api/planner.h"

#include <mutex>

#include "common/timing.h"

namespace pqs {

Plan Planner::schedule(std::uint64_t n_items, std::uint64_t n_blocks,
                       double min_success, std::uint64_t n_marked) const {
  const PlanKey key{n_items, n_blocks, n_marked, min_success};
  {
    std::shared_lock lock(mutex_);
    if (const auto it = cache_.find(key); it != cache_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return Plan{it->second, /*cache_hit=*/true, 0.0};
    }
  }

  // Miss: search outside the lock so one slow plan does not serialize every
  // other request. optimize_schedule is deterministic, so racing computers
  // agree and first-writer-wins below is safe.
  Stopwatch watch;
  const auto schedule =
      partial::optimize_schedule(n_items, n_blocks, min_success, n_marked);
  const double seconds = watch.seconds();
  misses_.fetch_add(1, std::memory_order_relaxed);

  std::unique_lock lock(mutex_);
  const auto [it, inserted] = cache_.emplace(key, schedule);
  (void)inserted;  // a concurrent miss may have landed first; same value
  return Plan{it->second, /*cache_hit=*/false, seconds};
}

std::uint64_t Planner::size() const {
  std::shared_lock lock(mutex_);
  return cache_.size();
}

void Planner::clear() {
  std::unique_lock lock(mutex_);
  cache_.clear();
  hits_.store(0);
  misses_.store(0);
}

}  // namespace pqs

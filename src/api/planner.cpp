#include "api/planner.h"

#include "common/timing.h"

namespace pqs {

Plan Planner::schedule(std::uint64_t n_items, std::uint64_t n_blocks,
                       double min_success, std::uint64_t n_marked,
                       const qsim::RunControl* control) const {
  const PlanKey key{n_items, n_blocks, n_marked, min_success};
  {
    LockGuard lock(mutex_);
    if (const auto* found = cache_.find(key)) {
      hits_->add();
      if (control != nullptr) {
        control->span("plan.cache_hit");
      }
      return Plan{*found, /*cache_hit=*/true, 0};
    }
  }

  // Miss: search outside the lock so one slow plan does not serialize every
  // other request. optimize_schedule is deterministic, so racing computers
  // agree and last-writer-wins below is safe.
  Stopwatch watch;
  const auto schedule =
      partial::optimize_schedule(n_items, n_blocks, min_success, n_marked);
  const std::uint64_t plan_ns = watch.nanos();
  misses_->add();
  if (control != nullptr) {
    control->span("plan.computed");
  }

  LockGuard lock(mutex_);
  const auto& stored = cache_.put(key, schedule);
  return Plan{stored, /*cache_hit=*/false, plan_ns};
}

std::uint64_t Planner::evictions() const {
  LockGuard lock(mutex_);
  return cache_.evictions();
}

std::uint64_t Planner::size() const {
  LockGuard lock(mutex_);
  return cache_.size();
}

std::size_t Planner::capacity() const {
  LockGuard lock(mutex_);
  return cache_.capacity();
}

void Planner::set_capacity(std::size_t capacity) {
  LockGuard lock(mutex_);
  cache_.set_capacity(capacity);
}

void Planner::bind_metrics(obs::MetricsRegistry& registry) {
  hits_ = &registry.counter("plan.cache_hits");
  misses_ = &registry.counter("plan.cache_misses");
}

void Planner::clear() {
  LockGuard lock(mutex_);
  cache_.clear();
  hits_->reset();
  misses_->reset();
}

}  // namespace pqs

// Umbrella header of the facade layer: the declarative request/response
// types, the engine, and the registry. This is the API a downstream user
// reaches for first; the per-module headers (grover/, partial/, ...) stay
// the documented low-level layer underneath, and src/qsim/ the simulation
// substrate below that.
#pragma once

#include "api/engine.h"
#include "api/flags.h"
#include "api/planner.h"
#include "api/registry.h"
#include "api/search_spec.h"
#include "api/serialize.h"

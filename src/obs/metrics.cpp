#include "obs/metrics.h"

#include <utility>

#include "common/check.h"

namespace pqs::obs {

namespace {

template <typename Map>
auto& find_or_create(Map& map, const std::string& name) {
  auto it = map.find(name);
  if (it == map.end()) {
    using Instrument = typename Map::mapped_type::element_type;
    it = map.emplace(name, std::make_unique<Instrument>()).first;
  }
  return *it->second;
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name) {
  LockGuard lock(mutex_);
  return find_or_create(counters_, name);
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  LockGuard lock(mutex_);
  return find_or_create(gauges_, name);
}

AtomicHistogram& MetricsRegistry::histogram(const std::string& name) {
  LockGuard lock(mutex_);
  return find_or_create(histograms_, name);
}

Json MetricsRegistry::snapshot() const {
  LockGuard lock(mutex_);
  Json counters = Json::make_object();
  for (const auto& [name, counter] : counters_) {
    counters[name] = counter->value();
  }
  Json gauges = Json::make_object();
  for (const auto& [name, gauge] : gauges_) {
    const std::int64_t value = gauge->value();
    // Gauges are levels (sizes, depths) and never meaningfully negative;
    // clamping keeps the wire type uniform uint64 like everything else.
    gauges[name] = value < 0 ? std::uint64_t{0}
                             : static_cast<std::uint64_t>(value);
  }
  Json histograms = Json::make_object();
  for (const auto& [name, histogram] : histograms_) {
    histograms[name] = histogram->snapshot().to_json();
  }
  Json snapshot = Json::make_object();
  snapshot["counters"] = std::move(counters);
  snapshot["gauges"] = std::move(gauges);
  snapshot["histograms"] = std::move(histograms);
  return snapshot;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Json merge_snapshots(const std::vector<Json>& snapshots) {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::uint64_t> gauges;
  std::map<std::string, LogHistogram> histograms;
  for (const Json& snapshot : snapshots) {
    for (const auto& [name, value] : snapshot.at("counters").as_object()) {
      counters[name] += value.as_uint();
    }
    for (const auto& [name, value] : snapshot.at("gauges").as_object()) {
      gauges[name] += value.as_uint();
    }
    for (const auto& [name, dump] : snapshot.at("histograms").as_object()) {
      LogHistogram shard = LogHistogram::from_json(dump);
      auto [it, fresh] = histograms.try_emplace(name, std::move(shard));
      if (!fresh) {
        it->second.merge(shard);
      }
    }
  }
  Json merged_counters = Json::make_object();
  for (const auto& [name, value] : counters) {
    merged_counters[name] = value;
  }
  Json merged_gauges = Json::make_object();
  for (const auto& [name, value] : gauges) {
    merged_gauges[name] = value;
  }
  Json merged_histograms = Json::make_object();
  for (const auto& [name, histogram] : histograms) {
    merged_histograms[name] = histogram.to_json();
  }
  Json merged = Json::make_object();
  merged["counters"] = std::move(merged_counters);
  merged["gauges"] = std::move(merged_gauges);
  merged["histograms"] = std::move(merged_histograms);
  return merged;
}

}  // namespace pqs::obs

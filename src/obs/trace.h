// pqs::obs — request-scoped tracing and the slow-request log.
//
// Metrics answer "how is the service doing"; traces answer "what happened
// to THIS request". A Trace is minted per fresh execution at
// Service::submit (coalesced attachments and cache hits share or skip it,
// same as journal records), carried by the job's RunControl as a
// qsim::SpanSink, and fed named instants by every layer the request
// crosses:
//
//   submit -> queue.enqueued -> exec.begin -> plan.cache_hit|plan.computed
//          -> shots.begin -> shots.end -> exec.end -> finish.done
//
// Span timestamps come from trace_now_ns(), a monotonic clock with a
// test-only fake hook (set_fake_clock_ns_for_testing) — the reason
// pqs_lint's raw-clock rule funnels every clock read through here or
// common/timing: a slow-request test must be able to MAKE a request slow
// without sleeping.
//
// Completed traces land in a TraceStore — a bounded ring (oldest evicted
// first) keyed by trace id — which the `trace` wire op queries to return a
// job's span timeline after the fact. Jobs whose total latency crosses the
// store's slow threshold are additionally copied to a slow-request ring
// and counted in `trace.slow_requests`; pqs_serve wires a callback that
// logs them to stderr.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/thread_annotations.h"
#include "qsim/run_control.h"

namespace pqs::obs {

class Counter;
class MetricsRegistry;

/// Monotonic nanoseconds for span timestamps. Reads the fake clock when a
/// test installed one, the steady clock otherwise.
std::uint64_t trace_now_ns();

/// Install (value >= 0) or remove (nullopt) the fake trace clock. Tests
/// only — NOT thread-safe against concurrent trace_now_ns callers in other
/// threads; install before the traced work starts.
void set_fake_clock_ns_for_testing(std::optional<std::uint64_t> now_ns);

/// One named instant in a request's timeline.
struct SpanEvent {
  const char* name;      ///< static-storage string (literals in practice)
  std::uint64_t t_ns;    ///< trace_now_ns() at the instant
};

/// The span timeline of one request. Implements qsim::SpanSink so the
/// execution layers (Engine, Planner, BatchRunner) emit into it through
/// RunControl::span without knowing obs exists. Appends lock under a
/// per-trace mutex — spans are rare (tens per request) next to the
/// million-probe shot loops, so contention is nil; what matters is that
/// the OpenMP fan-out can emit safely.
class Trace final : public qsim::SpanSink {
 public:
  explicit Trace(std::uint64_t id) : id_(id) {}

  void span(const char* name) noexcept override;

  std::uint64_t id() const { return id_; }
  std::vector<SpanEvent> events() const PQS_EXCLUDES(mutex_);

  /// {"trace_id":N,"spans":[{"name":...,"t_ns":...},...],
  ///  "total_ns": last span t - first span t}
  Json to_json() const PQS_EXCLUDES(mutex_);

  /// Elapsed ns between the first and last span (0 with < 2 spans).
  std::uint64_t total_ns() const PQS_EXCLUDES(mutex_);

 private:
  const std::uint64_t id_;
  mutable Mutex mutex_;
  std::vector<SpanEvent> events_ PQS_GUARDED_BY(mutex_);
};

struct TraceStoreOptions {
  /// Completed traces retained (ring; oldest evicted). 0 disables tracing
  /// entirely: mint() returns null and every hot path stays a null check.
  std::size_t capacity = 256;
  /// Requests whose total span ns meet or exceed this are slow. 0 = off.
  std::uint64_t slow_request_ns = 0;
  /// Slow traces additionally retained in their own ring.
  std::size_t slow_capacity = 32;
};

/// The per-process (or per-Service) home of completed traces. Thread-safe.
class TraceStore {
 public:
  using SlowCallback = std::function<void(const Trace&)>;

  explicit TraceStore(TraceStoreOptions options = {});

  /// Mint a new trace with the next id, or null when tracing is disabled
  /// (capacity 0). The trace is NOT yet in the store — it is live, owned
  /// by the job — retire() files it on completion.
  std::shared_ptr<Trace> mint() PQS_EXCLUDES(mutex_);

  /// File a completed trace in the ring; evaluates the slow threshold,
  /// bumps `trace.slow_requests` (when a registry watches), copies to the
  /// slow ring, and fires the callback — which runs OUTSIDE the store lock
  /// (it writes to stderr in pqs_serve; never let I/O serialize finish()).
  void retire(std::shared_ptr<Trace> trace) PQS_EXCLUDES(mutex_);

  /// The retired trace with this id, or null (evicted / never existed /
  /// still live).
  std::shared_ptr<Trace> find(std::uint64_t id) const PQS_EXCLUDES(mutex_);

  /// Retired slow traces, oldest first.
  std::vector<std::shared_ptr<Trace>> slow_requests() const
      PQS_EXCLUDES(mutex_);

  /// Count slow requests on `registry` (as `trace.slow_requests`) and run
  /// `callback` for each (e.g. a stderr line). Call before traffic.
  void set_slow_sink(MetricsRegistry* registry, SlowCallback callback);

  bool enabled() const { return options_.capacity != 0; }
  const TraceStoreOptions& options() const { return options_; }

 private:
  TraceStoreOptions options_;
  SlowCallback slow_callback_;       ///< written once by set_slow_sink
  Counter* slow_counter_ = nullptr;  ///< same (pre-traffic wiring)
  mutable Mutex mutex_;
  std::uint64_t next_id_ PQS_GUARDED_BY(mutex_) = 1;
  std::deque<std::shared_ptr<Trace>> ring_ PQS_GUARDED_BY(mutex_);
  std::deque<std::shared_ptr<Trace>> slow_ PQS_GUARDED_BY(mutex_);
};

}  // namespace pqs::obs

#include "obs/trace.h"

#include <chrono>
#include <utility>

#include "obs/metrics.h"

namespace pqs::obs {

namespace {

// nullopt = real clock. Plain (non-atomic) by contract: tests install the
// fake before the traced work starts and remove it after it drains.
std::optional<std::uint64_t>& fake_clock_ns() {
  static std::optional<std::uint64_t> fake;
  return fake;
}

}  // namespace

std::uint64_t trace_now_ns() {
  if (const auto& fake = fake_clock_ns()) {
    return *fake;
  }
  // The one sanctioned raw clock read besides common/timing (pqs_lint rule
  // `raw-clock` allows exactly these two homes).
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void set_fake_clock_ns_for_testing(std::optional<std::uint64_t> now_ns) {
  fake_clock_ns() = now_ns;
}

void Trace::span(const char* name) noexcept {
  const std::uint64_t now = trace_now_ns();
  LockGuard lock(mutex_);
  events_.push_back(SpanEvent{name, now});
}

std::vector<SpanEvent> Trace::events() const {
  LockGuard lock(mutex_);
  return events_;
}

std::uint64_t Trace::total_ns() const {
  LockGuard lock(mutex_);
  if (events_.size() < 2) {
    return 0;
  }
  return events_.back().t_ns - events_.front().t_ns;
}

Json Trace::to_json() const {
  std::vector<SpanEvent> events;
  {
    LockGuard lock(mutex_);
    events = events_;
  }
  Json spans = Json::make_array();
  // Span times go out RELATIVE to the first span: absolute steady-clock
  // ns are meaningless across processes and would make serve transcripts
  // nondeterministic for no information gained.
  const std::uint64_t origin = events.empty() ? 0 : events.front().t_ns;
  for (const SpanEvent& event : events) {
    Json span = Json::make_object();
    span["name"] = std::string(event.name);
    span["t_ns"] = event.t_ns - origin;
    spans.push_back(std::move(span));
  }
  Json json = Json::make_object();
  json["trace_id"] = id_;
  json["spans"] = std::move(spans);
  json["total_ns"] =
      events.size() < 2
          ? std::uint64_t{0}
          : events.back().t_ns - events.front().t_ns;
  return json;
}

TraceStore::TraceStore(TraceStoreOptions options) : options_(options) {}

std::shared_ptr<Trace> TraceStore::mint() {
  if (!enabled()) {
    return nullptr;
  }
  LockGuard lock(mutex_);
  return std::make_shared<Trace>(next_id_++);
}

void TraceStore::retire(std::shared_ptr<Trace> trace) {
  if (trace == nullptr) {
    return;
  }
  const bool slow = options_.slow_request_ns != 0 &&
                    trace->total_ns() >= options_.slow_request_ns;
  {
    LockGuard lock(mutex_);
    ring_.push_back(trace);
    while (ring_.size() > options_.capacity) {
      ring_.pop_front();
    }
    if (slow) {
      slow_.push_back(trace);
      while (slow_.size() > options_.slow_capacity) {
        slow_.pop_front();
      }
    }
  }
  if (slow) {
    if (slow_counter_ != nullptr) {
      slow_counter_->add();
    }
    if (slow_callback_) {
      slow_callback_(*trace);  // outside the lock: callbacks may do I/O
    }
  }
}

std::shared_ptr<Trace> TraceStore::find(std::uint64_t id) const {
  LockGuard lock(mutex_);
  for (const auto& trace : ring_) {
    if (trace->id() == id) {
      return trace;
    }
  }
  return nullptr;
}

std::vector<std::shared_ptr<Trace>> TraceStore::slow_requests() const {
  LockGuard lock(mutex_);
  return {slow_.begin(), slow_.end()};
}

void TraceStore::set_slow_sink(MetricsRegistry* registry,
                               SlowCallback callback) {
  slow_counter_ =
      registry == nullptr ? nullptr : &registry->counter("trace.slow_requests");
  slow_callback_ = std::move(callback);
}

}  // namespace pqs::obs

// pqs::obs — the unified metrics registry.
//
// Before this subsystem, "how is the fleet doing?" had four partial
// answers: ServiceStats counters hand-copied under Service::mutex_, the
// Planner's private atomic hit/miss pair, net-layer counts living in
// Acceptor locals, and journal append totals nobody exported at all. Each
// new subsystem re-invented its own telemetry plumbing and the `stats` op
// stitched the pieces together by hand. MetricsRegistry replaces all of
// that with one process-visible catalog of named instruments:
//
//   * Counter   — a monotonic uint64 (events since birth): relaxed
//                 fetch_add on the hot path, no lock, no allocation.
//   * Gauge     — a point-in-time int64 (queue depth, cache size): relaxed
//                 store; writers own the value, the registry just exposes it.
//   * AtomicHistogram — the lock-free twin of common/histogram.h's
//                 LogHistogram: same 252 log buckets, atomic per-bucket
//                 adds, snapshot() reconstructs a plain LogHistogram for
//                 serialization and merging.
//
// Naming scheme: dotted lowercase paths, `<subsystem>.<event>` —
// `service.submitted`, `plan.cache_hits`, `net.accepted_connections`,
// `journal.accepted_appends`, `latency.queue_ns`. Names are registered once
// (first use) and the instrument pointer is then stable for the registry's
// lifetime, so hot paths hold the pointer and never touch the name map
// again.
//
// Ownership: a Service (and Planner, Journal, Acceptor...) takes an
// optional `MetricsRegistry*`; null means "own a private registry" — unit
// tests build many Services per process and assert exact per-instance
// counts, which a mandatory process-global would cross-contaminate.
// pqs_serve passes MetricsRegistry::global() everywhere so one snapshot
// covers service + net + journal, which is what the `metrics` wire op
// dumps and pqs_router merges fleet-wide.
//
// snapshot() emits canonical JSON shaped for exact merging:
//   {"counters":{name:N,...},"gauges":{name:G,...},
//    "histograms":{name:{count,max,p50,p90,p99,buckets},...}}
// merge_snapshots sums counters and gauges by name and folds histograms
// through LogHistogram::from_json + merge, so merged bucket counts are
// EXACT sums and recomputed percentiles are within one bucket of any
// shard's own estimate (pinned by tests/test_obs.cpp).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/json.h"
#include "common/thread_annotations.h"

namespace pqs::obs {

/// Monotonic event counter. Copy-proof (registry-owned); increments are
/// relaxed atomics — counters are statistics, not synchronization.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  /// Back to zero — for Planner::clear()-style cache resets and tests;
  /// production counters are monotonic and never call this.
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time level (queue depth, cache size). Writers own the value;
/// set() overwrites, add() nudges (both relaxed).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Lock-free LogHistogram twin: identical bucket layout, atomic per-bucket
/// counts so the service's finish() path records without taking the
/// registry's mutex. max is maintained with a CAS loop (rare retries — only
/// when a new global max lands). snapshot() is NOT an atomic cut across
/// buckets; concurrent recorders may leave a snapshot one event ahead in
/// one bucket vs the total — harmless for dashboards, and quiescent
/// snapshots (every test, every bench) are exact.
class AtomicHistogram {
 public:
  static constexpr std::size_t kBuckets = LogHistogram::kBuckets;

  void record(std::uint64_t value) noexcept {
    counts_[LogHistogram::bucket_index(value)].fetch_add(
        1, std::memory_order_relaxed);
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }

  /// Reconstruct a plain LogHistogram (serializable, mergeable) from the
  /// live buckets.
  LogHistogram snapshot() const {
    LogHistogram histogram;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      const std::uint64_t n = counts_[i].load(std::memory_order_relaxed);
      if (n != 0) {
        histogram.add_to_bucket(i, n);
      }
    }
    histogram.note_max(max_.load(std::memory_order_relaxed));
    return histogram;
  }

  std::uint64_t count() const noexcept {
    std::uint64_t total = 0;
    for (const auto& bucket : counts_) {
      total += bucket.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
  std::atomic<std::uint64_t> max_{0};
};

/// The catalog. Registration (name -> instrument) takes a mutex once per
/// name; the returned reference is stable for the registry's lifetime, so
/// every hot path caches the pointer at construction and thereafter only
/// touches lock-free instrument state.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create by name. Two callers registering the same name get the
  /// SAME instrument (that is the point: the journal and a test harness
  /// can both watch `journal.accepted_appends`).
  Counter& counter(const std::string& name) PQS_EXCLUDES(mutex_);
  Gauge& gauge(const std::string& name) PQS_EXCLUDES(mutex_);
  AtomicHistogram& histogram(const std::string& name) PQS_EXCLUDES(mutex_);

  /// Canonical snapshot of every registered instrument (shape above).
  /// Gauges are whatever their writers last stored — callers wanting fresh
  /// levels (queue depth, cache sizes) refresh them first
  /// (Service::refresh_metrics_gauges does exactly that).
  Json snapshot() const PQS_EXCLUDES(mutex_);

  /// The process-wide registry pqs_serve wires through service, net, and
  /// journal so one `metrics` op answers for the whole process. Library
  /// code NEVER reaches for this implicitly — tests depend on private
  /// per-instance registries staying isolated.
  static MetricsRegistry& global();

 private:
  mutable Mutex mutex_;
  // std::map: snapshot() iterates sorted, keeping the dump canonical
  // without a per-snapshot sort. unique_ptr: instrument addresses survive
  // rehashing-free forever (atomics are not movable anyway).
  std::map<std::string, std::unique_ptr<Counter>> counters_
      PQS_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      PQS_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<AtomicHistogram>> histograms_
      PQS_GUARDED_BY(mutex_);
};

/// Fold fleet-member snapshots into one aggregate view: counters and
/// gauges sum by name, histograms rebuild via LogHistogram::from_json and
/// merge element-wise (exact bucket counts), percentiles recomputed from
/// the merged buckets. Instruments missing from some shards contribute
/// only where present. This is the router's `metrics` fan-out reducer and
/// the fleet-merge test's subject.
Json merge_snapshots(const std::vector<Json>& snapshots);

}  // namespace pqs::obs

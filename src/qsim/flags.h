// Shared --backend / --batch / --noise flag handling for bench and example
// binaries, so every CLI spells the engine knobs identically and typos fail
// loudly through Cli::finish().
//
// Only declare the flags a binary actually consumes: parse_engine_flags
// declares --backend alone, so passing --batch to a binary with no shot
// fan-out is an unknown-flag error instead of a silently ignored knob
// (the bug class this layer exists to prevent).
#pragma once

#include "common/cli.h"
#include "qsim/backend.h"
#include "qsim/batch.h"
#include "qsim/noise.h"

namespace pqs::qsim {

/// The parsed engine knobs of one binary.
struct EngineFlags {
  BackendKind backend = BackendKind::kAuto;
  BatchOptions batch;  ///< threads from --batch (0 = all hardware threads)
  NoiseModel noise;    ///< channel from --noise, rate from --noise-p
};

/// Declare and parse --backend only (binaries whose runs are single-shot).
/// Call before cli.finish().
EngineFlags parse_engine_flags(Cli& cli);

/// parse_engine_flags plus --batch, for binaries that fan shots or trials
/// across threads.
EngineFlags parse_engine_flags_batched(Cli& cli);

/// parse_engine_flags_batched plus the --noise / --noise-p pair (validated
/// once here: a negative or >1 rate throws instead of silently running
/// clean). For the Monte-Carlo noise drivers.
EngineFlags parse_engine_flags_with_noise(Cli& cli);

}  // namespace pqs::qsim

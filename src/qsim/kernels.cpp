#include "qsim/kernels.h"

#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/math.h"

#ifdef PQS_HAVE_OPENMP
// std::complex is not a built-in OpenMP reduction type in C++; declare one.
#pragma omp declare reduction(+ : std::complex<double> : omp_out += omp_in) \
    initializer(omp_priv = std::complex<double>{0.0, 0.0})
#endif

namespace pqs::qsim::kernels {

namespace {

/// Signed loop counter type for OpenMP-compatible canonical loops.
using SIdx = std::int64_t;

void check_state_size(std::span<const Amplitude> state, unsigned n_qubits) {
  PQS_CHECK_MSG(state.size() == pow2(n_qubits),
                "state size does not match qubit count");
}

}  // namespace

Amplitude sum_pairwise(std::span<const Amplitude> state) {
  if (state.size() <= 64) {
    Amplitude sum{0.0, 0.0};
    for (const Amplitude& a : state) {
      sum += a;
    }
    return sum;
  }
  const std::size_t mid = state.size() / 2;
  return sum_pairwise(state.first(mid)) + sum_pairwise(state.subspan(mid));
}

double norm_squared_pairwise(std::span<const Amplitude> state) {
  if (state.size() <= 64) {
    double sum = 0.0;
    for (const Amplitude& a : state) {
      sum += std::norm(a);
    }
    return sum;
  }
  const std::size_t mid = state.size() / 2;
  return norm_squared_pairwise(state.first(mid)) +
         norm_squared_pairwise(state.subspan(mid));
}

void apply_gate1(std::span<Amplitude> state, unsigned n_qubits, unsigned q,
                 const Gate2& g) {
  check_state_size(state, n_qubits);
  PQS_CHECK_MSG(q < n_qubits, "qubit index out of range");
  const std::uint64_t stride = std::uint64_t{1} << q;
  const auto n = static_cast<SIdx>(state.size());
  const Amplitude m00 = g.m[0][0], m01 = g.m[0][1], m10 = g.m[1][0],
                  m11 = g.m[1][1];
  // Iterate over every index with bit q == 0; its partner has bit q == 1.
#ifdef PQS_HAVE_OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (SIdx base = 0; base < n; base += static_cast<SIdx>(stride) * 2) {
    for (SIdx off = 0; off < static_cast<SIdx>(stride); ++off) {
      const auto i0 = static_cast<std::size_t>(base + off);
      const auto i1 = i0 + stride;
      const Amplitude a0 = state[i0];
      const Amplitude a1 = state[i1];
      state[i0] = m00 * a0 + m01 * a1;
      state[i1] = m10 * a0 + m11 * a1;
    }
  }
}

void apply_controlled_gate1(std::span<Amplitude> state, unsigned n_qubits,
                            std::uint64_t control_mask, unsigned q,
                            const Gate2& g) {
  check_state_size(state, n_qubits);
  PQS_CHECK_MSG(q < n_qubits, "qubit index out of range");
  PQS_CHECK_MSG((control_mask & (std::uint64_t{1} << q)) == 0,
                "target qubit cannot be its own control");
  PQS_CHECK_MSG(control_mask < state.size(), "control mask out of range");
  const std::uint64_t stride = std::uint64_t{1} << q;
  const auto n = static_cast<SIdx>(state.size());
  const Amplitude m00 = g.m[0][0], m01 = g.m[0][1], m10 = g.m[1][0],
                  m11 = g.m[1][1];
#ifdef PQS_HAVE_OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (SIdx base = 0; base < n; base += static_cast<SIdx>(stride) * 2) {
    for (SIdx off = 0; off < static_cast<SIdx>(stride); ++off) {
      const auto i0 = static_cast<std::uint64_t>(base + off);
      if ((i0 & control_mask) != control_mask) {
        continue;
      }
      const auto i1 = i0 + stride;
      const Amplitude a0 = state[i0];
      const Amplitude a1 = state[i1];
      state[i0] = m00 * a0 + m01 * a1;
      state[i1] = m10 * a0 + m11 * a1;
    }
  }
}

void phase_flip_index(std::span<Amplitude> state, Index t) {
  PQS_CHECK_MSG(t < state.size(), "target index out of range");
  state[t] = -state[t];
}

void phase_rotate_index(std::span<Amplitude> state, Index t, double phi) {
  PQS_CHECK_MSG(t < state.size(), "target index out of range");
  state[t] *= std::polar(1.0, phi);
}

void phase_flip_indices(std::span<Amplitude> state,
                        std::span<const Index> marked_sorted) {
  for (std::size_t j = 0; j < marked_sorted.size(); ++j) {
    const Index m = marked_sorted[j];
    PQS_CHECK_MSG(m < state.size(), "marked index out of range");
    PQS_DCHECK(j == 0 || marked_sorted[j - 1] < m);
    state[m] = -state[m];
  }
}

void phase_rotate_indices(std::span<Amplitude> state,
                          std::span<const Index> marked_sorted, double phi) {
  const Amplitude factor = std::polar(1.0, phi);
  for (std::size_t j = 0; j < marked_sorted.size(); ++j) {
    const Index m = marked_sorted[j];
    PQS_CHECK_MSG(m < state.size(), "marked index out of range");
    PQS_DCHECK(j == 0 || marked_sorted[j - 1] < m);
    state[m] *= factor;
  }
}

void phase_flip_mask_all_ones(std::span<Amplitude> state, std::uint64_t mask) {
  PQS_CHECK_MSG(mask < state.size(), "mask out of range");
  const auto n = static_cast<SIdx>(state.size());
#ifdef PQS_HAVE_OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (SIdx i = 0; i < n; ++i) {
    const auto u = static_cast<std::uint64_t>(i);
    if ((u & mask) == mask) {
      state[static_cast<std::size_t>(i)] = -state[static_cast<std::size_t>(i)];
    }
  }
}

void reflect_about_uniform(std::span<Amplitude> state) {
  reflect_blocks_about_uniform(state, state.size());
}

void reflect_blocks_about_uniform(std::span<Amplitude> state,
                                  std::size_t block_size) {
  PQS_CHECK(block_size > 0);
  PQS_CHECK_MSG(state.size() % block_size == 0,
                "block size must divide the state size");
  const auto n_blocks = static_cast<SIdx>(state.size() / block_size);
#ifdef PQS_HAVE_OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (SIdx b = 0; b < n_blocks; ++b) {
    const std::size_t lo = static_cast<std::size_t>(b) * block_size;
    const Amplitude sum = sum_pairwise(state.subspan(lo, block_size));
    const Amplitude twice_mean =
        2.0 * sum / static_cast<double>(block_size);
    for (std::size_t i = lo; i < lo + block_size; ++i) {
      state[i] = twice_mean - state[i];
    }
  }
}

void rotate_blocks_about_uniform(std::span<Amplitude> state,
                                 std::size_t block_size, double phi) {
  PQS_CHECK(block_size > 0);
  PQS_CHECK_MSG(state.size() % block_size == 0,
                "block size must divide the state size");
  const Amplitude factor = std::polar(1.0, phi) - 1.0;
  const auto n_blocks = static_cast<SIdx>(state.size() / block_size);
#ifdef PQS_HAVE_OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (SIdx b = 0; b < n_blocks; ++b) {
    const std::size_t lo = static_cast<std::size_t>(b) * block_size;
    const Amplitude sum = sum_pairwise(state.subspan(lo, block_size));
    const Amplitude add = factor * sum / static_cast<double>(block_size);
    for (std::size_t i = lo; i < lo + block_size; ++i) {
      state[i] += add;
    }
  }
}

void reflect_about_state(std::span<Amplitude> state,
                         std::span<const Amplitude> axis) {
  PQS_CHECK_MSG(state.size() == axis.size(), "dimension mismatch");
  PQS_CHECK_MSG(approx_eq(norm_squared(axis), 1.0, 1e-9),
                "reflection axis must be a unit vector");
  const Amplitude overlap = inner_product(axis, state);
  const auto n = static_cast<SIdx>(state.size());
#ifdef PQS_HAVE_OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (SIdx i = 0; i < n; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    state[idx] = 2.0 * overlap * axis[idx] - state[idx];
  }
}

void reflect_non_target_about_their_mean(std::span<Amplitude> state, Index t) {
  PQS_CHECK_MSG(t < state.size(), "target index out of range");
  PQS_CHECK_MSG(state.size() >= 2, "need at least two basis states");
  const auto n = static_cast<SIdx>(state.size());
  Amplitude sum = sum_pairwise(state);
  sum -= state[t];
  const Amplitude twice_mean =
      2.0 * sum / static_cast<double>(state.size() - 1);
  const Amplitude saved_target = state[t];
#ifdef PQS_HAVE_OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (SIdx i = 0; i < n; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    state[idx] = twice_mean - state[idx];
  }
  state[t] = saved_target;
}

void reflect_unmarked_about_their_mean(std::span<Amplitude> state,
                                       std::span<const Index> marked_sorted) {
  PQS_CHECK_MSG(!marked_sorted.empty(), "need at least one marked index");
  PQS_CHECK_MSG(marked_sorted.size() < state.size() - 1,
                "need at least two unmarked states");
  const auto n = static_cast<SIdx>(state.size());
  Amplitude sum = sum_pairwise(state);
  std::vector<Amplitude> saved(marked_sorted.size());
  for (std::size_t j = 0; j < marked_sorted.size(); ++j) {
    const Index m = marked_sorted[j];
    PQS_CHECK_MSG(m < state.size(), "marked index out of range");
    if (j > 0) {
      PQS_CHECK_MSG(marked_sorted[j - 1] < m,
                    "marked indices must be sorted and unique");
    }
    sum -= state[m];
    saved[j] = state[m];
  }
  const Amplitude twice_mean =
      2.0 * sum / static_cast<double>(state.size() - marked_sorted.size());
#ifdef PQS_HAVE_OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (SIdx i = 0; i < n; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    state[idx] = twice_mean - state[idx];
  }
  for (std::size_t j = 0; j < marked_sorted.size(); ++j) {
    state[marked_sorted[j]] = saved[j];
  }
}

Amplitude inner_product(std::span<const Amplitude> a,
                        std::span<const Amplitude> b) {
  PQS_CHECK_MSG(a.size() == b.size(), "dimension mismatch");
  Amplitude sum{0.0, 0.0};
  const auto n = static_cast<SIdx>(a.size());
#ifdef PQS_HAVE_OPENMP
#pragma omp parallel for schedule(static) reduction(+ : sum)
#endif
  for (SIdx i = 0; i < n; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    sum += std::conj(a[idx]) * b[idx];
  }
  return sum;
}

double norm_squared(std::span<const Amplitude> state) {
  double sum = 0.0;
  const auto n = static_cast<SIdx>(state.size());
#ifdef PQS_HAVE_OPENMP
#pragma omp parallel for schedule(static) reduction(+ : sum)
#endif
  for (SIdx i = 0; i < n; ++i) {
    sum += std::norm(state[static_cast<std::size_t>(i)]);
  }
  return sum;
}

void scale(std::span<Amplitude> state, Amplitude s) {
  const auto n = static_cast<SIdx>(state.size());
#ifdef PQS_HAVE_OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (SIdx i = 0; i < n; ++i) {
    state[static_cast<std::size_t>(i)] *= s;
  }
}

}  // namespace pqs::qsim::kernels

#include "qsim/backend.h"

#include <algorithm>
#include <cmath>
#include <complex>

#include "common/check.h"
#include "common/math.h"
#include "qsim/kernels.h"

namespace pqs::qsim {

BackendKind parse_backend_kind(std::string_view name) {
  if (name == "auto") {
    return BackendKind::kAuto;
  }
  if (name == "dense") {
    return BackendKind::kDense;
  }
  if (name == "symmetry") {
    return BackendKind::kSymmetry;
  }
  throw CheckFailure("unknown backend '" + std::string(name) +
                     "' (expected auto, dense, or symmetry)");
}

std::string to_string(BackendKind kind) {
  switch (kind) {
    case BackendKind::kAuto:
      return "auto";
    case BackendKind::kDense:
      return "dense";
    case BackendKind::kSymmetry:
      return "symmetry";
  }
  return "unknown";
}

BackendSpec BackendSpec::single_target(std::uint64_t n_items,
                                       std::uint64_t n_blocks, Index target) {
  return BackendSpec{n_items, n_blocks, {target}};
}

Backend::Backend(BackendSpec spec) : spec_(std::move(spec)) {
  PQS_CHECK_MSG(spec_.n_items >= 2, "need at least two database items");
  PQS_CHECK_MSG(spec_.n_blocks >= 1, "need at least one block");
  PQS_CHECK_MSG(spec_.n_items % spec_.n_blocks == 0,
                "block count must divide the database size");
  PQS_CHECK_MSG(!spec_.marked.empty(), "marked set must be non-empty");
  for (std::size_t j = 0; j < spec_.marked.size(); ++j) {
    PQS_CHECK_MSG(spec_.marked[j] < spec_.n_items,
                  "marked address out of range");
    PQS_CHECK_MSG(j == 0 || spec_.marked[j - 1] < spec_.marked[j],
                  "marked set must be sorted and unique");
  }
}

void Backend::apply_gate1(unsigned, const Gate2&) {
  PQS_CHECK_MSG(false, "single-qubit gates need the dense backend");
}
void Backend::apply_controlled_gate1(std::uint64_t, unsigned, const Gate2&) {
  PQS_CHECK_MSG(false, "controlled gates need the dense backend");
}
void Backend::apply_phase_flip_known(Index) {
  PQS_CHECK_MSG(false, "single-state phase flips need the dense backend");
}
void Backend::apply_mcz(std::uint64_t) {
  PQS_CHECK_MSG(false, "multi-controlled Z needs the dense backend");
}

bool symmetry_supports(const BackendSpec& spec) {
  if (spec.marked.empty() || spec.n_blocks < 1 || spec.n_items < 2 ||
      spec.n_items % spec.n_blocks != 0) {
    return false;
  }
  const std::uint64_t block_size = spec.n_items / spec.n_blocks;
  const Index block = spec.marked.front() / block_size;
  for (const Index m : spec.marked) {
    if (m / block_size != block) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// DenseBackend
// ---------------------------------------------------------------------------

/// The exact engine: a flat amplitude array driven by qsim/kernels. This is
/// byte-for-byte the arithmetic the pre-backend code paths performed through
/// StateVector, so seeded runs reproduce historical results exactly.
class DenseBackend final : public Backend {
 public:
  explicit DenseBackend(BackendSpec spec) : Backend(std::move(spec)) {
    PQS_CHECK_MSG(spec_.n_items <= kMaxDenseItems,
                  "database too large for the dense backend; use the "
                  "symmetry backend");
    amps_.resize(spec_.n_items);
    reset_uniform();
  }

  BackendKind kind() const override { return BackendKind::kDense; }

  void reset_uniform() override {
    const double amp =
        1.0 / std::sqrt(static_cast<double>(spec_.n_items));
    std::fill(amps_.begin(), amps_.end(), Amplitude{amp, 0.0});
  }

  void apply_oracle() override {
    kernels::phase_flip_indices(amps_, spec_.marked);
  }
  void apply_oracle_phase(double phi) override {
    kernels::phase_rotate_indices(amps_, spec_.marked, phi);
  }
  void apply_global_diffusion() override {
    kernels::reflect_about_uniform(amps_);
  }
  void apply_global_rotation(double phi) override {
    kernels::rotate_blocks_about_uniform(amps_, amps_.size(), phi);
  }
  void apply_block_diffusion() override {
    kernels::reflect_blocks_about_uniform(amps_, block_size());
  }
  void apply_block_rotation(double phi) override {
    kernels::rotate_blocks_about_uniform(amps_, block_size(), phi);
  }
  void apply_step3() override {
    if (spec_.marked.size() == 1) {
      kernels::reflect_non_target_about_their_mean(amps_,
                                                   spec_.marked.front());
    } else {
      kernels::reflect_unmarked_about_their_mean(amps_, spec_.marked);
    }
  }
  void apply_global_phase(Amplitude phase) override {
    kernels::scale(amps_, phase);
  }

  void apply_gate1(unsigned q, const Gate2& g) override {
    kernels::apply_gate1(amps_, qubits(), q, g);
  }
  void apply_controlled_gate1(std::uint64_t control_mask, unsigned q,
                              const Gate2& g) override {
    kernels::apply_controlled_gate1(amps_, qubits(), control_mask, q, g);
  }
  void apply_phase_flip_known(Index x) override {
    kernels::phase_flip_index(amps_, x);
  }
  void apply_mcz(std::uint64_t mask) override {
    kernels::phase_flip_mask_all_ones(amps_, mask);
  }

  double probability(Index x) const override {
    PQS_CHECK_MSG(x < amps_.size(), "index out of range");
    return std::norm(amps_[x]);
  }
  double marked_probability() const override {
    double p = 0.0;
    for (const Index m : spec_.marked) {
      p += std::norm(amps_[m]);
    }
    return p;
  }
  double block_probability(Index block) const override {
    PQS_CHECK_MSG(block < num_blocks(), "block index out of range");
    const std::size_t lo = static_cast<std::size_t>(block) * block_size();
    return kernels::norm_squared_pairwise(
        std::span<const Amplitude>(amps_).subspan(lo, block_size()));
  }
  std::vector<double> block_distribution() const override {
    std::vector<double> dist(num_blocks());
    for (std::size_t b = 0; b < dist.size(); ++b) {
      dist[b] = block_probability(static_cast<Index>(b));
    }
    return dist;
  }
  double norm_squared() const override {
    return kernels::norm_squared_pairwise(amps_);
  }

  Index sample(Rng& rng) const override {
    // The same CDF walk as StateVector::sample, for seeded reproducibility.
    double u = rng.uniform01() * norm_squared();
    for (std::size_t i = 0; i < amps_.size(); ++i) {
      u -= std::norm(amps_[i]);
      if (u <= 0.0) {
        return static_cast<Index>(i);
      }
    }
    return static_cast<Index>(amps_.size() - 1);
  }
  Index sample_block(Rng& rng) const override {
    return block_of(sample(rng));
  }

  std::vector<Amplitude> amplitudes_copy() const override { return amps_; }

  std::span<const Amplitude> amplitudes() const { return amps_; }

 private:
  unsigned qubits() const {
    PQS_CHECK_MSG(is_pow2(spec_.n_items),
                  "gate-level ops need a power-of-two database");
    return log2_exact(spec_.n_items);
  }

  std::vector<Amplitude> amps_;
};

// ---------------------------------------------------------------------------
// SymmetryBackend
// ---------------------------------------------------------------------------

/// The O(K) engine. Tracks the three per-state amplitudes the block-symmetric
/// evolution can produce:
///   a_t  on each of the m marked states,
///   a_b  on each of the block_size - m unmarked states of the target block,
///   a_o  on each state of the other K - 1 blocks.
/// Each operator updates the triple with the same arithmetic the dense
/// kernels perform on the repeated values, so observables agree with
/// DenseBackend to machine precision (cross-checked in tests/test_backend).
class SymmetryBackend final : public Backend {
 public:
  explicit SymmetryBackend(BackendSpec spec) : Backend(std::move(spec)) {
    PQS_CHECK_MSG(symmetry_supports(spec_),
                  "symmetry backend needs the marked set inside one block");
    m_ = spec_.marked.size();
    rest_ = block_size() - m_;
    others_ = spec_.n_items - block_size();
    marked_offsets_.reserve(m_);
    const Index lo = target_block() * block_size();
    for (const Index m : spec_.marked) {
      marked_offsets_.push_back(m - lo);
    }
    reset_uniform();
  }

  BackendKind kind() const override { return BackendKind::kSymmetry; }

  void reset_uniform() override {
    const Amplitude amp{1.0 / std::sqrt(static_cast<double>(spec_.n_items)),
                        0.0};
    a_t_ = a_b_ = a_o_ = amp;
  }

  void apply_oracle() override { a_t_ = -a_t_; }
  void apply_oracle_phase(double phi) override {
    a_t_ *= std::polar(1.0, phi);
  }

  void apply_global_diffusion() override {
    const Amplitude twice_mean = 2.0 * global_mean();
    a_t_ = twice_mean - a_t_;
    a_b_ = twice_mean - a_b_;
    a_o_ = twice_mean - a_o_;
  }
  void apply_global_rotation(double phi) override {
    const Amplitude add = (std::polar(1.0, phi) - 1.0) * global_mean();
    a_t_ += add;
    a_b_ += add;
    a_o_ += add;
  }

  void apply_block_diffusion() override {
    // Target block: inversion about its own mean. Every other block holds a
    // single repeated value, and inversion about the average fixes it.
    const Amplitude twice_mean = 2.0 * target_block_mean();
    a_t_ = twice_mean - a_t_;
    a_b_ = twice_mean - a_b_;
  }
  void apply_block_rotation(double phi) override {
    const Amplitude factor = std::polar(1.0, phi) - 1.0;
    const Amplitude add = factor * target_block_mean();
    a_t_ += add;
    a_b_ += add;
    // A uniform block's mean is its value: a <- a + (e^{i phi} - 1) a.
    a_o_ += factor * a_o_;
  }

  void apply_step3() override {
    PQS_CHECK_MSG(rest_ + others_ >= 2, "need at least two unmarked states");
    const Amplitude mean =
        (static_cast<double>(rest_) * a_b_ +
         static_cast<double>(others_) * a_o_) /
        static_cast<double>(rest_ + others_);
    const Amplitude twice_mean = 2.0 * mean;
    a_b_ = twice_mean - a_b_;
    a_o_ = twice_mean - a_o_;
  }

  void apply_global_phase(Amplitude phase) override {
    a_t_ *= phase;
    a_b_ *= phase;
    a_o_ *= phase;
  }

  double probability(Index x) const override {
    PQS_CHECK_MSG(x < spec_.n_items, "index out of range");
    if (block_of(x) != target_block()) {
      return std::norm(a_o_);
    }
    return std::binary_search(spec_.marked.begin(), spec_.marked.end(), x)
               ? std::norm(a_t_)
               : std::norm(a_b_);
  }
  double marked_probability() const override {
    return static_cast<double>(m_) * std::norm(a_t_);
  }
  double block_probability(Index block) const override {
    PQS_CHECK_MSG(block < num_blocks(), "block index out of range");
    if (block != target_block()) {
      return static_cast<double>(block_size()) * std::norm(a_o_);
    }
    return static_cast<double>(m_) * std::norm(a_t_) +
           static_cast<double>(rest_) * std::norm(a_b_);
  }
  std::vector<double> block_distribution() const override {
    std::vector<double> dist(num_blocks(),
                             static_cast<double>(block_size()) *
                                 std::norm(a_o_));
    dist[target_block()] = block_probability(target_block());
    return dist;
  }
  double norm_squared() const override {
    return static_cast<double>(m_) * std::norm(a_t_) +
           static_cast<double>(rest_) * std::norm(a_b_) +
           static_cast<double>(others_) * std::norm(a_o_);
  }

  Index sample(Rng& rng) const override {
    switch (sample_class(rng)) {
      case Class::kMarked:
        return spec_.marked[m_ == 1 ? 0 : rng.uniform_below(m_)];
      case Class::kBlockRest: {
        // The j-th unmarked offset of the target block: skip past marked
        // offsets in ascending order.
        std::uint64_t off = rest_ == 1 ? 0 : rng.uniform_below(rest_);
        for (const Index mo : marked_offsets_) {
          if (off >= mo) {
            ++off;
          }
        }
        return target_block() * block_size() + off;
      }
      case Class::kOthers: {
        Index b = static_cast<Index>(rng.uniform_below(num_blocks() - 1));
        if (b >= target_block()) {
          ++b;
        }
        return b * block_size() + rng.uniform_below(block_size());
      }
    }
    return spec_.marked.front();  // unreachable
  }
  Index sample_block(Rng& rng) const override {
    switch (sample_class(rng)) {
      case Class::kMarked:
      case Class::kBlockRest:
        return target_block();
      case Class::kOthers: {
        Index b = static_cast<Index>(rng.uniform_below(num_blocks() - 1));
        return b >= target_block() ? b + 1 : b;
      }
    }
    return target_block();  // unreachable
  }

  std::vector<Amplitude> amplitudes_copy() const override {
    PQS_CHECK_MSG(spec_.n_items <= kMaxDenseItems,
                  "state too large to materialize");
    std::vector<Amplitude> amps(spec_.n_items, a_o_);
    const std::size_t lo =
        static_cast<std::size_t>(target_block()) * block_size();
    std::fill(amps.begin() + lo, amps.begin() + lo + block_size(), a_b_);
    for (const Index m : spec_.marked) {
      amps[m] = a_t_;
    }
    return amps;
  }

 private:
  enum class Class { kMarked, kBlockRest, kOthers };

  Amplitude global_mean() const {
    return (static_cast<double>(m_) * a_t_ +
            static_cast<double>(rest_) * a_b_ +
            static_cast<double>(others_) * a_o_) /
           static_cast<double>(spec_.n_items);
  }
  Amplitude target_block_mean() const {
    return (static_cast<double>(m_) * a_t_ +
            static_cast<double>(rest_) * a_b_) /
           static_cast<double>(block_size());
  }

  Class sample_class(Rng& rng) const {
    const double w_t = static_cast<double>(m_) * std::norm(a_t_);
    const double w_b = static_cast<double>(rest_) * std::norm(a_b_);
    const double w_o = static_cast<double>(others_) * std::norm(a_o_);
    double u = rng.uniform01() * (w_t + w_b + w_o);
    u -= w_t;
    if (u <= 0.0) {
      return Class::kMarked;
    }
    u -= w_b;
    if (u <= 0.0 || others_ == 0) {
      return Class::kBlockRest;
    }
    return Class::kOthers;
  }

  std::uint64_t m_ = 0;       ///< marked states
  std::uint64_t rest_ = 0;    ///< unmarked states of the target block
  std::uint64_t others_ = 0;  ///< states outside the target block
  std::vector<Index> marked_offsets_;  ///< marked addresses within the block
  Amplitude a_t_, a_b_, a_o_;
};

// ---------------------------------------------------------------------------
// Factory and circuit execution
// ---------------------------------------------------------------------------

BackendKind resolve_backend(BackendKind kind, const BackendSpec& spec) {
  if (kind == BackendKind::kAuto) {
    kind = spec.n_items <= kMaxDenseItems ? BackendKind::kDense
                                          : BackendKind::kSymmetry;
  }
  if (kind == BackendKind::kDense) {
    PQS_CHECK_MSG(spec.n_items <= kMaxDenseItems,
                  "database too large for the dense backend; pass "
                  "--backend symmetry (or kAuto)");
  } else {
    PQS_CHECK_MSG(symmetry_supports(spec),
                  "symmetry backend needs a non-empty marked set inside a "
                  "single block");
  }
  return kind;
}

std::unique_ptr<Backend> make_backend(BackendKind kind,
                                      const BackendSpec& spec) {
  switch (resolve_backend(kind, spec)) {
    case BackendKind::kDense:
      return std::make_unique<DenseBackend>(spec);
    case BackendKind::kSymmetry:
      return std::make_unique<SymmetryBackend>(spec);
    case BackendKind::kAuto:
      break;  // unreachable: resolve_backend never returns kAuto
  }
  throw CheckFailure("unresolved backend kind");
}

void require_dense(BackendKind kind, std::string_view what) {
  PQS_CHECK_MSG(kind == BackendKind::kAuto || kind == BackendKind::kDense,
                std::string(what) + " needs full amplitude vectors and "
                "therefore the dense backend");
}

namespace {

/// Visitor deciding whether one op preserves the block symmetry, collecting
/// the block-op granularity on the way.
struct SymmetryScan {
  const OracleView& oracle;
  std::optional<unsigned> block_bits;  ///< k of block ops seen so far
  bool ok = true;

  void fail() { ok = false; }
  void note_block_bits(unsigned k) {
    if (block_bits.has_value() && *block_bits != k) {
      fail();  // two distinct block granularities break the 3-class split
    } else {
      block_bits = k;
    }
  }

  void operator()(const Gate1Op&) { fail(); }
  void operator()(const CGate1Op&) { fail(); }
  void operator()(const LayerOp&) { fail(); }
  void operator()(const OracleOp&) {}
  void operator()(const OraclePhaseOp&) {}
  void operator()(const GlobalDiffusionOp&) {}
  void operator()(const BlockDiffusionOp& op) { note_block_bits(op.k); }
  void operator()(const BlockRotationOp& op) { note_block_bits(op.k); }
  void operator()(const PhaseFlipKnownOp&) { fail(); }
  void operator()(const MczOp&) { fail(); }
  void operator()(const GlobalPhaseOp&) {}
  void operator()(const NonTargetMeanOp&) {
    if (oracle.marked_list.size() != 1 ||
        oracle.marked_list.front() != oracle.target) {
      fail();  // Step 3 keeps exactly the unique target fixed
    }
  }
};

struct BackendApplyVisitor {
  Backend& backend;

  void operator()(const Gate1Op& op) const { backend.apply_gate1(op.q, op.g); }
  void operator()(const CGate1Op& op) const {
    backend.apply_controlled_gate1(op.control_mask, op.q, op.g);
  }
  void operator()(const LayerOp& op) const {
    const unsigned n = log2_exact(backend.num_items());
    for (unsigned q = 0; q < n; ++q) {
      backend.apply_gate1(q, op.g);
    }
  }
  void operator()(const OracleOp&) const { backend.apply_oracle(); }
  void operator()(const OraclePhaseOp& op) const {
    backend.apply_oracle_phase(op.phi);
  }
  void operator()(const GlobalDiffusionOp&) const {
    backend.apply_global_diffusion();
  }
  void operator()(const BlockDiffusionOp& op) const {
    check_blocks(op.k);
    backend.apply_block_diffusion();
  }
  void operator()(const BlockRotationOp& op) const {
    check_blocks(op.k);
    backend.apply_block_rotation(op.phi);
  }
  void operator()(const PhaseFlipKnownOp& op) const {
    backend.apply_phase_flip_known(op.x);
  }
  void operator()(const MczOp& op) const { backend.apply_mcz(op.mask); }
  void operator()(const GlobalPhaseOp& op) const {
    backend.apply_global_phase(op.phase);
  }
  void operator()(const NonTargetMeanOp&) const { backend.apply_step3(); }

 private:
  void check_blocks(unsigned k) const {
    PQS_CHECK_MSG(backend.num_blocks() == pow2(k),
                  "circuit block granularity does not match the backend's "
                  "block structure");
  }
};

}  // namespace

std::optional<BackendSpec> symmetric_spec(const Circuit& circuit,
                                          const OracleView& oracle) {
  if (oracle.marked_list.empty()) {
    return std::nullopt;
  }
  SymmetryScan scan{.oracle = oracle};
  for (const auto& op : circuit.ops()) {
    std::visit(scan, op);
    if (!scan.ok) {
      return std::nullopt;
    }
  }
  BackendSpec spec{pow2(circuit.num_qubits()),
                   scan.block_bits.has_value() ? pow2(*scan.block_bits)
                                               : std::uint64_t{1},
                   oracle.marked_list};
  if (!symmetry_supports(spec)) {
    return std::nullopt;
  }
  return spec;
}

std::uint64_t apply_circuit(Backend& backend, const Circuit& circuit) {
  PQS_CHECK_MSG(backend.num_items() == pow2(circuit.num_qubits()),
                "circuit dimension does not match the backend");
  BackendApplyVisitor visitor{backend};
  std::uint64_t queries = 0;
  for (const auto& op : circuit.ops()) {
    std::visit(visitor, op);
    queries += op_query_cost(op);
  }
  return queries;
}

}  // namespace pqs::qsim

#include "qsim/backend.h"

#include <algorithm>
#include <cmath>
#include <complex>

#include "common/check.h"
#include "common/math.h"
#include "qsim/kernels.h"

namespace pqs::qsim {

BackendKind parse_backend_kind(std::string_view name) {
  if (name == "auto") {
    return BackendKind::kAuto;
  }
  if (name == "dense") {
    return BackendKind::kDense;
  }
  if (name == "symmetry") {
    return BackendKind::kSymmetry;
  }
  throw CheckFailure("unknown backend '" + std::string(name) +
                     "' (expected auto, dense, or symmetry)");
}

std::string to_string(BackendKind kind) {
  switch (kind) {
    case BackendKind::kAuto:
      return "auto";
    case BackendKind::kDense:
      return "dense";
    case BackendKind::kSymmetry:
      return "symmetry";
  }
  return "unknown";
}

BackendSpec BackendSpec::single_target(std::uint64_t n_items,
                                       std::uint64_t n_blocks, Index target) {
  return BackendSpec{n_items, n_blocks, {target}};
}

Backend::Backend(BackendSpec spec) : spec_(std::move(spec)) {
  PQS_CHECK_MSG(spec_.n_items >= 2, "need at least two database items");
  PQS_CHECK_MSG(spec_.n_blocks >= 1, "need at least one block");
  PQS_CHECK_MSG(spec_.n_items % spec_.n_blocks == 0,
                "block count must divide the database size");
  PQS_CHECK_MSG(!spec_.marked.empty(), "marked set must be non-empty");
  for (std::size_t j = 0; j < spec_.marked.size(); ++j) {
    PQS_CHECK_MSG(spec_.marked[j] < spec_.n_items,
                  "marked address out of range");
    PQS_CHECK_MSG(j == 0 || spec_.marked[j - 1] < spec_.marked[j],
                  "marked set must be sorted and unique");
  }
}

void Backend::apply_gate1(unsigned, const Gate2&) {
  PQS_CHECK_MSG(false, "single-qubit gates need the dense backend");
}
void Backend::apply_controlled_gate1(std::uint64_t, unsigned, const Gate2&) {
  PQS_CHECK_MSG(false, "controlled gates need the dense backend");
}
void Backend::apply_phase_flip_known(Index) {
  PQS_CHECK_MSG(false, "single-state phase flips need the dense backend");
}
void Backend::apply_mcz(std::uint64_t) {
  PQS_CHECK_MSG(false, "multi-controlled Z needs the dense backend");
}
std::uint64_t Backend::apply_noise(const NoiseModel&, Rng&) {
  throw CheckFailure("this backend implements no noise channel");
}

bool symmetry_supports(const BackendSpec& spec) {
  if (spec.marked.empty() || spec.n_blocks < 1 || spec.n_items < 2 ||
      spec.n_items % spec.n_blocks != 0) {
    return false;
  }
  const std::uint64_t block_size = spec.n_items / spec.n_blocks;
  const Index block = spec.marked.front() / block_size;
  for (const Index m : spec.marked) {
    if (m / block_size != block) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// DenseBackend
// ---------------------------------------------------------------------------

/// The exact engine: SoA amplitude planes (qsim/soa.h) driven by the
/// ISA-dispatched SoA kernels. The arithmetic per element matches what the
/// pre-backend code paths performed through StateVector, so seeded runs
/// reproduce historical results to the dense≡symmetry agreement bar.
class DenseBackend final : public Backend {
 public:
  explicit DenseBackend(BackendSpec spec) : Backend(std::move(spec)) {
    PQS_CHECK_MSG(spec_.n_items <= kMaxDenseItems,
                  "database too large for the dense backend; use the "
                  "symmetry backend");
    amps_ = SoaVector(spec_.n_items);
    reset_uniform();
  }

  BackendKind kind() const override { return BackendKind::kDense; }

  void reset_uniform() override {
    const double amp =
        1.0 / std::sqrt(static_cast<double>(spec_.n_items));
    amps_.fill(Amplitude{amp, 0.0});
  }

  void apply_oracle() override {
    kernels::phase_flip_indices(amps_, spec_.marked);
  }
  void apply_oracle_phase(double phi) override {
    kernels::phase_rotate_indices(amps_, spec_.marked, phi);
  }
  void apply_global_diffusion() override {
    kernels::reflect_about_uniform(amps_);
  }
  void apply_global_rotation(double phi) override {
    kernels::rotate_blocks_about_uniform(amps_, amps_.size(), phi);
  }
  void apply_block_diffusion() override {
    kernels::reflect_blocks_about_uniform(amps_, block_size());
  }
  void apply_block_rotation(double phi) override {
    kernels::rotate_blocks_about_uniform(amps_, block_size(), phi);
  }
  void apply_step3() override {
    if (spec_.marked.size() == 1) {
      kernels::reflect_non_target_about_their_mean(amps_,
                                                   spec_.marked.front());
    } else {
      kernels::reflect_unmarked_about_their_mean(amps_, spec_.marked);
    }
  }
  void apply_global_phase(Amplitude phase) override {
    kernels::scale(amps_, phase);
  }

  std::uint64_t apply_noise(const NoiseModel& model, Rng& rng) override {
    model.validate();  // an out-of-range rate must throw, never read clean
    if (!model.enabled()) {
      return 0;
    }
    const unsigned n = qubits();  // checks the power-of-two requirement
    return for_each_error_qubit(n, model.probability, rng, [&](unsigned q) {
      kernels::apply_gate1(amps_, n, q, sample_pauli(model.kind, rng));
    });
  }

  void apply_gate1(unsigned q, const Gate2& g) override {
    kernels::apply_gate1(amps_, qubits(), q, g);
  }
  void apply_controlled_gate1(std::uint64_t control_mask, unsigned q,
                              const Gate2& g) override {
    kernels::apply_controlled_gate1(amps_, qubits(), control_mask, q, g);
  }
  void apply_phase_flip_known(Index x) override {
    kernels::phase_flip_index(amps_, x);
  }
  void apply_mcz(std::uint64_t mask) override {
    kernels::phase_flip_mask_all_ones(amps_, mask);
  }

  double probability(Index x) const override {
    PQS_CHECK_MSG(x < amps_.size(), "index out of range");
    return std::norm(amps_.get(x));
  }
  double marked_probability() const override {
    double p = 0.0;
    for (const Index m : spec_.marked) {
      p += std::norm(amps_.get(m));
    }
    return p;
  }
  double block_probability(Index block) const override {
    PQS_CHECK_MSG(block < num_blocks(), "block index out of range");
    const std::size_t lo = static_cast<std::size_t>(block) * block_size();
    return kernels::norm_squared_range(amps_, lo, block_size());
  }
  std::vector<double> block_distribution() const override {
    std::vector<double> dist(num_blocks());
    for (std::size_t b = 0; b < dist.size(); ++b) {
      dist[b] = block_probability(static_cast<Index>(b));
    }
    return dist;
  }
  double norm_squared() const override {
    return kernels::norm_squared(amps_);
  }

  Index sample(Rng& rng) const override {
    // The same CDF walk (and the same re^2 + im^2 per-element arithmetic as
    // std::norm) as StateVector::sample, for seeded reproducibility.
    const double* re = amps_.re();
    const double* im = amps_.im();
    double u = rng.uniform01() * norm_squared();
    for (std::size_t i = 0; i < amps_.size(); ++i) {
      u -= re[i] * re[i] + im[i] * im[i];
      if (u <= 0.0) {
        return static_cast<Index>(i);
      }
    }
    return static_cast<Index>(amps_.size() - 1);
  }
  Index sample_block(Rng& rng) const override {
    return block_of(sample(rng));
  }

  std::vector<Amplitude> amplitudes_copy() const override {
    return amps_.to_amplitudes();
  }

 private:
  unsigned qubits() const {
    PQS_CHECK_MSG(is_pow2(spec_.n_items),
                  "gate-level ops need a power-of-two database");
    return log2_exact(spec_.n_items);
  }

  SoaVector amps_;
};

// ---------------------------------------------------------------------------
// SymmetryBackend
// ---------------------------------------------------------------------------

/// The O(K) engine. Tracks the three per-state amplitudes the block-symmetric
/// evolution can produce:
///   a_t  on each of the m marked states,
///   a_b  on each of the block_size - m unmarked states of the target block,
///   a_o  on each state of the other K - 1 blocks.
/// Each operator updates the triple with the same arithmetic the dense
/// kernels perform on the repeated values, so observables agree with
/// DenseBackend to machine precision (cross-checked in tests/test_backend).
///
/// Noise (the block-class density argument): a Pauli error breaks the exact
/// three-value symmetry, so each class additionally carries an incoherent
/// residual mass r_c >= 0; the class's total probability mass is
/// size * |a_c|^2 + r_c. Every coherent operator above is an affine map
/// a -> alpha a + beta with |alpha| = 1 applied uniformly to a class, which
/// transforms the coherent mean exactly and leaves the residue invariant —
/// so the noiseless path is bit-identical to the residue-free engine. Each
/// Pauli updates the moments the way it permutes/re-signs the underlying
/// amplitudes: exact while the class is fully coherent (the first error),
/// an exchangeable-residue mean-field approximation afterwards. Success
/// statistics match dense trajectory averages to statistical tolerance
/// (tests/test_support_matrix); amplitude materialization is refused once
/// residue exists, because a class mean plus a mass has no faithful
/// amplitude vector.
class SymmetryBackend final : public Backend {
 public:
  explicit SymmetryBackend(BackendSpec spec) : Backend(std::move(spec)) {
    PQS_CHECK_MSG(symmetry_supports(spec_),
                  "symmetry backend needs the marked set inside one block");
    m_ = spec_.marked.size();
    rest_ = block_size() - m_;
    others_ = spec_.n_items - block_size();
    marked_offsets_.reserve(m_);
    const Index lo = target_block() * block_size();
    for (const Index m : spec_.marked) {
      marked_offsets_.push_back(m - lo);
    }
    reset_uniform();
  }

  BackendKind kind() const override { return BackendKind::kSymmetry; }

  void reset_uniform() override {
    const Amplitude amp{1.0 / std::sqrt(static_cast<double>(spec_.n_items)),
                        0.0};
    a_t_ = a_b_ = a_o_ = amp;
    r_t_ = r_b_ = r_o_ = 0.0;
  }

  void apply_oracle() override { a_t_ = -a_t_; }
  void apply_oracle_phase(double phi) override {
    a_t_ *= std::polar(1.0, phi);
  }

  void apply_global_diffusion() override {
    const Amplitude twice_mean = 2.0 * global_mean();
    a_t_ = twice_mean - a_t_;
    a_b_ = twice_mean - a_b_;
    a_o_ = twice_mean - a_o_;
  }
  void apply_global_rotation(double phi) override {
    const Amplitude add = (std::polar(1.0, phi) - 1.0) * global_mean();
    a_t_ += add;
    a_b_ += add;
    a_o_ += add;
  }

  void apply_block_diffusion() override {
    // Target block: inversion about its own mean. Every other block holds a
    // single repeated value, and inversion about the average fixes it.
    const Amplitude twice_mean = 2.0 * target_block_mean();
    a_t_ = twice_mean - a_t_;
    a_b_ = twice_mean - a_b_;
  }
  void apply_block_rotation(double phi) override {
    const Amplitude factor = std::polar(1.0, phi) - 1.0;
    const Amplitude add = factor * target_block_mean();
    a_t_ += add;
    a_b_ += add;
    // A uniform block's mean is its value: a <- a + (e^{i phi} - 1) a.
    a_o_ += factor * a_o_;
  }

  void apply_step3() override {
    PQS_CHECK_MSG(rest_ + others_ >= 2, "need at least two unmarked states");
    const Amplitude mean =
        (static_cast<double>(rest_) * a_b_ +
         static_cast<double>(others_) * a_o_) /
        static_cast<double>(rest_ + others_);
    const Amplitude twice_mean = 2.0 * mean;
    a_b_ = twice_mean - a_b_;
    a_o_ = twice_mean - a_o_;
  }

  void apply_global_phase(Amplitude phase) override {
    a_t_ *= phase;
    a_b_ *= phase;
    a_o_ *= phase;
  }

  std::uint64_t apply_noise(const NoiseModel& model, Rng& rng) override {
    model.validate();  // an out-of-range rate must throw, never read clean
    if (!model.enabled()) {
      return 0;
    }
    PQS_CHECK_MSG(m_ == 1,
                  "symmetry-backend noise needs a unique marked address");
    PQS_CHECK_MSG(is_pow2(spec_.n_items) && is_pow2(spec_.n_blocks),
                  "symmetry-backend noise needs power-of-two N and K "
                  "(per-qubit Pauli channels act on address bits)");
    const unsigned n = log2_exact(spec_.n_items);
    const unsigned split = n - log2_exact(spec_.n_blocks);
    return for_each_error_qubit(n, model.probability, rng, [&](unsigned q) {
      switch (sample_pauli_kind(model.kind, rng)) {
        case Pauli::kX:
          noise_x(q, split);
          break;
        case Pauli::kY:  // Y = i X Z: dephase, permute, global i
          noise_z(q, split);
          noise_x(q, split);
          apply_global_phase(Amplitude{0.0, 1.0});
          break;
        case Pauli::kZ:
          noise_z(q, split);
          break;
      }
    });
  }

  double probability(Index x) const override {
    PQS_CHECK_MSG(x < spec_.n_items, "index out of range");
    if (block_of(x) != target_block()) {
      return mass_others() / static_cast<double>(others_);
    }
    return std::binary_search(spec_.marked.begin(), spec_.marked.end(), x)
               ? mass_marked() / static_cast<double>(m_)
               : mass_rest() / static_cast<double>(rest_);
  }
  double marked_probability() const override { return mass_marked(); }
  double block_probability(Index block) const override {
    PQS_CHECK_MSG(block < num_blocks(), "block index out of range");
    if (block != target_block()) {
      return mass_others() * static_cast<double>(block_size()) /
             static_cast<double>(others_);
    }
    return mass_marked() + mass_rest();
  }
  std::vector<double> block_distribution() const override {
    std::vector<double> dist(
        num_blocks(),
        num_blocks() > 1 ? mass_others() * static_cast<double>(block_size()) /
                               static_cast<double>(others_)
                         : 0.0);
    dist[target_block()] = mass_marked() + mass_rest();
    return dist;
  }
  double norm_squared() const override {
    return mass_marked() + mass_rest() + mass_others();
  }

  Index sample(Rng& rng) const override {
    switch (sample_class(rng)) {
      case Class::kMarked:
        return spec_.marked[m_ == 1 ? 0 : rng.uniform_below(m_)];
      case Class::kBlockRest: {
        // The j-th unmarked offset of the target block: skip past marked
        // offsets in ascending order.
        std::uint64_t off = rest_ == 1 ? 0 : rng.uniform_below(rest_);
        for (const Index mo : marked_offsets_) {
          if (off >= mo) {
            ++off;
          }
        }
        return target_block() * block_size() + off;
      }
      case Class::kOthers: {
        Index b = static_cast<Index>(rng.uniform_below(num_blocks() - 1));
        if (b >= target_block()) {
          ++b;
        }
        return b * block_size() + rng.uniform_below(block_size());
      }
    }
    return spec_.marked.front();  // unreachable
  }
  Index sample_block(Rng& rng) const override {
    switch (sample_class(rng)) {
      case Class::kMarked:
      case Class::kBlockRest:
        return target_block();
      case Class::kOthers: {
        Index b = static_cast<Index>(rng.uniform_below(num_blocks() - 1));
        return b >= target_block() ? b + 1 : b;
      }
    }
    return target_block();  // unreachable
  }

  std::vector<Amplitude> amplitudes_copy() const override {
    PQS_CHECK_MSG(spec_.n_items <= kMaxDenseItems,
                  "state too large to materialize");
    PQS_CHECK_MSG(r_t_ + r_b_ + r_o_ < 1e-12,
                  "a noisy symmetry-backend state holds incoherent residual "
                  "mass and cannot be materialized as amplitudes; use the "
                  "dense backend for amplitude-level noise studies");
    std::vector<Amplitude> amps(spec_.n_items, a_o_);
    const std::size_t lo =
        static_cast<std::size_t>(target_block()) * block_size();
    std::fill(amps.begin() + lo, amps.begin() + lo + block_size(), a_b_);
    for (const Index m : spec_.marked) {
      amps[m] = a_t_;
    }
    return amps;
  }

 private:
  enum class Class { kMarked, kBlockRest, kOthers };

  Amplitude global_mean() const {
    return (static_cast<double>(m_) * a_t_ +
            static_cast<double>(rest_) * a_b_ +
            static_cast<double>(others_) * a_o_) /
           static_cast<double>(spec_.n_items);
  }
  Amplitude target_block_mean() const {
    return (static_cast<double>(m_) * a_t_ +
            static_cast<double>(rest_) * a_b_) /
           static_cast<double>(block_size());
  }

  /// Total probability mass of each class: coherent part + noise residue.
  double mass_marked() const {
    return static_cast<double>(m_) * std::norm(a_t_) + r_t_;
  }
  double mass_rest() const {
    return static_cast<double>(rest_) * std::norm(a_b_) + r_b_;
  }
  double mass_others() const {
    return static_cast<double>(others_) * std::norm(a_o_) + r_o_;
  }

  Class sample_class(Rng& rng) const {
    const double w_t = mass_marked();
    const double w_b = mass_rest();
    const double w_o = mass_others();
    double u = rng.uniform01() * (w_t + w_b + w_o);
    u -= w_t;
    if (u <= 0.0) {
      return Class::kMarked;
    }
    u -= w_b;
    if (u <= 0.0 || others_ == 0) {
      return Class::kBlockRest;
    }
    return Class::kOthers;
  }

  /// Pauli X on address bit q. Bits below `split` index within a block,
  /// bits at/above it index the block: a within-block X swaps the target
  /// with its partner inside the target block (every other class is a
  /// permutation of itself), a block-bit X swaps the whole target block
  /// with another block. Updates are exact for fully coherent classes and
  /// use the exchangeable-residue expectation otherwise.
  void noise_x(unsigned q, unsigned split) {
    if (q < split) {
      const double b1 = static_cast<double>(rest_);  // B - 1 >= 1 here
      const double mt = mass_marked();
      const double mb = mass_rest();
      const Amplitude mu_t = a_t_;
      const Amplitude mu_b = a_b_;
      // The target now holds a class-typical member of the block rest...
      a_t_ = mu_b;
      r_t_ = std::max(0.0, mb / b1 - std::norm(a_t_));
      // ...and the block rest absorbed the old target amplitude.
      a_b_ = ((b1 - 1.0) * mu_b + mu_t) / b1;
      const double mb_new = mb - mb / b1 + mt;
      r_b_ = std::max(0.0, mb_new - b1 * std::norm(a_b_));
    } else {
      if (others_ == 0) {
        return;  // K = 1: no block bits to flip
      }
      const double b1 = static_cast<double>(rest_);
      const double oo = static_cast<double>(others_);
      const double bs = static_cast<double>(block_size());
      const double mt = mass_marked();
      const double mb = mass_rest();
      const double mo = mass_others();
      const double per_o = mo / oo;  // expected mass of one C_o state
      const Amplitude mu_t = a_t_;
      const Amplitude mu_b = a_b_;
      const Amplitude mu_o = a_o_;
      // The target block becomes a copy of a typical other block...
      a_t_ = mu_o;
      r_t_ = std::max(0.0, per_o - std::norm(a_t_));
      a_b_ = mu_o;
      r_b_ = std::max(0.0, b1 * (per_o - std::norm(a_b_)));
      // ...and the other blocks absorb the old target block.
      a_o_ = ((oo - bs) * mu_o + mu_t + b1 * mu_b) / oo;
      const double mo_new = mo - bs * per_o + mt + mb;
      r_o_ = std::max(0.0, mo_new - oo * std::norm(a_o_));
    }
  }

  /// Pauli Z on address bit q: flips the sign of every state with that bit
  /// set. The target's sign is exact; for the other classes the coherent
  /// mean scales by the exact (unset - set) member imbalance while the
  /// class mass is unchanged — dephasing converts coherent mass into
  /// residue.
  void noise_z(unsigned q, unsigned split) {
    if (q < split) {
      // Within-block bit: exactly half of every block has the bit set.
      const bool t_bit = ((spec_.marked.front() >> q) & 1) != 0;
      if (t_bit) {
        a_t_ = -a_t_;
      }
      if (rest_ > 0) {
        const double mb = mass_rest();
        const double n1 =
            static_cast<double>(block_size() / 2) - (t_bit ? 1.0 : 0.0);
        const double n0 = static_cast<double>(rest_) - n1;
        a_b_ *= (n0 - n1) / static_cast<double>(rest_);
        r_b_ = std::max(0.0, mb - static_cast<double>(rest_) *
                                      std::norm(a_b_));
      }
      if (others_ > 0) {
        // Equal halves in every other block: the coherent mean vanishes.
        r_o_ = mass_others();
        a_o_ = Amplitude{0.0, 0.0};
      }
    } else {
      // Block bit: every state of a block shares the block index's sign.
      const bool tb_bit = ((target_block() >> (q - split)) & 1) != 0;
      if (tb_bit) {
        a_t_ = -a_t_;
        a_b_ = -a_b_;
      }
      if (others_ > 0) {
        const double mo = mass_others();
        const double k_others = static_cast<double>(num_blocks() - 1);
        const double n1 = static_cast<double>(num_blocks() / 2) -
                          (tb_bit ? 1.0 : 0.0);
        const double n0 = k_others - n1;
        a_o_ *= (n0 - n1) / k_others;
        r_o_ = std::max(0.0, mo - static_cast<double>(others_) *
                                      std::norm(a_o_));
      }
    }
  }

  std::uint64_t m_ = 0;       ///< marked states
  std::uint64_t rest_ = 0;    ///< unmarked states of the target block
  std::uint64_t others_ = 0;  ///< states outside the target block
  std::vector<Index> marked_offsets_;  ///< marked addresses within the block
  Amplitude a_t_, a_b_, a_o_;
  /// Incoherent residual mass per class (zero until noise fires).
  double r_t_ = 0.0, r_b_ = 0.0, r_o_ = 0.0;
};

// ---------------------------------------------------------------------------
// Factory and circuit execution
// ---------------------------------------------------------------------------

BackendKind resolve_backend(BackendKind kind, const BackendSpec& spec) {
  if (kind == BackendKind::kAuto) {
    kind = spec.n_items <= auto_backend_cutoff() ? BackendKind::kDense
                                                 : BackendKind::kSymmetry;
  }
  if (kind == BackendKind::kDense) {
    PQS_CHECK_MSG(spec.n_items <= kMaxDenseItems,
                  "database too large for the dense backend; pass "
                  "--backend symmetry (or kAuto)");
  } else {
    PQS_CHECK_MSG(symmetry_supports(spec),
                  "symmetry backend needs a non-empty marked set inside a "
                  "single block");
  }
  return kind;
}

std::unique_ptr<Backend> make_backend(BackendKind kind,
                                      const BackendSpec& spec) {
  switch (resolve_backend(kind, spec)) {
    case BackendKind::kDense:
      return std::make_unique<DenseBackend>(spec);
    case BackendKind::kSymmetry:
      return std::make_unique<SymmetryBackend>(spec);
    case BackendKind::kAuto:
      break;  // unreachable: resolve_backend never returns kAuto
  }
  throw CheckFailure("unresolved backend kind");
}

bool backend_supports_noise(BackendKind kind, const BackendSpec& spec) {
  switch (resolve_backend(kind, spec)) {
    case BackendKind::kDense:
      return is_pow2(spec.n_items);
    case BackendKind::kSymmetry:
      return is_pow2(spec.n_items) && is_pow2(spec.n_blocks) &&
             spec.marked.size() == 1;
    case BackendKind::kAuto:
      break;  // unreachable: resolve_backend never returns kAuto
  }
  return false;
}

void require_noise_support(BackendKind kind, const BackendSpec& spec,
                           std::string_view what) {
  PQS_CHECK_MSG(backend_supports_noise(kind, spec),
                std::string(what) + ": the " +
                    to_string(resolve_backend(kind, spec)) +
                    " backend cannot run Pauli noise on this problem shape "
                    "(dense needs N = 2^n; symmetry additionally needs "
                    "K = 2^k and a unique marked address)");
}

void require_dense(BackendKind kind, std::string_view what) {
  PQS_CHECK_MSG(kind == BackendKind::kAuto || kind == BackendKind::kDense,
                std::string(what) + " needs full amplitude vectors and "
                "therefore the dense backend");
}

namespace {

/// Visitor deciding whether one op preserves the block symmetry, collecting
/// the block-op granularity on the way.
struct SymmetryScan {
  const OracleView& oracle;
  std::optional<unsigned> block_bits;  ///< k of block ops seen so far
  bool ok = true;

  void fail() { ok = false; }
  void note_block_bits(unsigned k) {
    if (block_bits.has_value() && *block_bits != k) {
      fail();  // two distinct block granularities break the 3-class split
    } else {
      block_bits = k;
    }
  }

  void operator()(const Gate1Op&) { fail(); }
  void operator()(const CGate1Op&) { fail(); }
  void operator()(const LayerOp&) { fail(); }
  void operator()(const OracleOp&) {}
  void operator()(const OraclePhaseOp&) {}
  void operator()(const GlobalDiffusionOp&) {}
  void operator()(const BlockDiffusionOp& op) { note_block_bits(op.k); }
  void operator()(const BlockRotationOp& op) { note_block_bits(op.k); }
  void operator()(const PhaseFlipKnownOp&) { fail(); }
  void operator()(const MczOp&) { fail(); }
  void operator()(const GlobalPhaseOp&) {}
  void operator()(const NonTargetMeanOp&) {
    if (oracle.marked_list.size() != 1 ||
        oracle.marked_list.front() != oracle.target) {
      fail();  // Step 3 keeps exactly the unique target fixed
    }
  }
};

struct BackendApplyVisitor {
  Backend& backend;

  void operator()(const Gate1Op& op) const { backend.apply_gate1(op.q, op.g); }
  void operator()(const CGate1Op& op) const {
    backend.apply_controlled_gate1(op.control_mask, op.q, op.g);
  }
  void operator()(const LayerOp& op) const {
    const unsigned n = log2_exact(backend.num_items());
    for (unsigned q = 0; q < n; ++q) {
      backend.apply_gate1(q, op.g);
    }
  }
  void operator()(const OracleOp&) const { backend.apply_oracle(); }
  void operator()(const OraclePhaseOp& op) const {
    backend.apply_oracle_phase(op.phi);
  }
  void operator()(const GlobalDiffusionOp&) const {
    backend.apply_global_diffusion();
  }
  void operator()(const BlockDiffusionOp& op) const {
    check_blocks(op.k);
    backend.apply_block_diffusion();
  }
  void operator()(const BlockRotationOp& op) const {
    check_blocks(op.k);
    backend.apply_block_rotation(op.phi);
  }
  void operator()(const PhaseFlipKnownOp& op) const {
    backend.apply_phase_flip_known(op.x);
  }
  void operator()(const MczOp& op) const { backend.apply_mcz(op.mask); }
  void operator()(const GlobalPhaseOp& op) const {
    backend.apply_global_phase(op.phase);
  }
  void operator()(const NonTargetMeanOp&) const { backend.apply_step3(); }

 private:
  void check_blocks(unsigned k) const {
    PQS_CHECK_MSG(backend.num_blocks() == pow2(k),
                  "circuit block granularity does not match the backend's "
                  "block structure");
  }
};

}  // namespace

std::optional<BackendSpec> symmetric_spec(const Circuit& circuit,
                                          const OracleView& oracle) {
  if (oracle.marked_list.empty()) {
    return std::nullopt;
  }
  SymmetryScan scan{.oracle = oracle};
  for (const auto& op : circuit.ops()) {
    std::visit(scan, op);
    if (!scan.ok) {
      return std::nullopt;
    }
  }
  BackendSpec spec{pow2(circuit.num_qubits()),
                   scan.block_bits.has_value() ? pow2(*scan.block_bits)
                                               : std::uint64_t{1},
                   oracle.marked_list};
  if (!symmetry_supports(spec)) {
    return std::nullopt;
  }
  return spec;
}

std::uint64_t apply_circuit(Backend& backend, const Circuit& circuit) {
  PQS_CHECK_MSG(backend.num_items() == pow2(circuit.num_qubits()),
                "circuit dimension does not match the backend");
  BackendApplyVisitor visitor{backend};
  std::uint64_t queries = 0;
  for (const auto& op : circuit.ops()) {
    std::visit(visitor, op);
    queries += op_query_cost(op);
  }
  return queries;
}

}  // namespace pqs::qsim

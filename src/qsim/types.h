// Fundamental types of the state-vector simulator.
#pragma once

#include <complex>
#include <cstdint>

namespace pqs::qsim {

/// One complex amplitude. Double precision throughout: the reproduction checks
/// identities to ~1e-10, which float32 cannot hold over ~1000 Grover steps.
using Amplitude = std::complex<double>;

/// Basis-state index into the 2^n-dimensional state vector.
///
/// Bit convention: bit q of an Index is qubit q, with qubit 0 the least
/// significant. The paper's "first k bits of the address" are the *most*
/// significant k bits, i.e. the block index of x is `x >> (n - k)`.
using Index = std::uint64_t;

/// Number of qubits; the simulator supports n <= 30 (8 GiB of amplitudes
/// would be needed beyond that).
inline constexpr unsigned kMaxQubits = 30;

}  // namespace pqs::qsim

// Diffusion ("inversion about the average") operators in explicit form.
//
// The fused kernels in kernels.h implement these in O(N); this header adds
// the dense-matrix and gate-level views used by tests and the kernel-vs-gate
// ablation bench. Everything here is expressed on a StateVector so the two
// realizations can be compared operator-by-operator.
#pragma once

#include <vector>

#include "qsim/state_vector.h"

namespace pqs::qsim {

/// Apply I0 = 2|psi0><psi0| - I via the gate decomposition
/// H^(x)n . X^(x)n . MCZ . X^(x)n . H^(x)n . (global phase -1).
/// Exactly equal (including phase) to StateVector::reflect_about_uniform.
void apply_global_diffusion_gate_level(StateVector& state);

/// Apply I_[K] (x) I0,[N/K] via gates: the H / X / controlled-Z sandwich acts
/// only on the low n-k qubits; the block (first k) qubits are idle, which is
/// precisely "in parallel in each block" from Section 2.2 of the paper.
void apply_block_diffusion_gate_level(StateVector& state, unsigned k);

/// Dense matrix of I0 for n qubits (N x N, row-major). Test-only sizes.
std::vector<Amplitude> global_diffusion_matrix(unsigned n_qubits);

/// Dense matrix of I_[K] (x) I0,[N/K]. Test-only sizes.
std::vector<Amplitude> block_diffusion_matrix(unsigned n_qubits, unsigned k);

/// Multiply a dense row-major matrix into a state (test helper).
void apply_dense_matrix(StateVector& state,
                        const std::vector<Amplitude>& matrix);

}  // namespace pqs::qsim

// Dense n-qubit state vector.
//
// The StateVector owns the amplitude array and exposes the operations the
// algorithms need; the O(N) loops live in qsim/kernels.*. Block structure
// follows the paper: for K = 2^k blocks, the block index of address x is its
// first k bits, i.e. `x >> (n - k)`.
//
// Algorithm layers should usually not drive this class directly any more:
// qsim/backend.h abstracts the operator set behind pqs::qsim::Backend, with
// this dense representation as one engine (DenseBackend) and the O(K)
// block-symmetric engine (SymmetryBackend) as the other. StateVector remains
// the right type for gate-level circuit work and analyses that manipulate
// arbitrary amplitude vectors (noise, Zalka hybrids, figures).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/random.h"
#include "qsim/gates.h"
#include "qsim/types.h"

namespace pqs::qsim {

class StateVector {
 public:
  /// |0...0> on n qubits.
  explicit StateVector(unsigned n_qubits);

  /// Named constructors.
  static StateVector zero_state(unsigned n_qubits);
  /// |psi0> = (1/sqrt(N)) sum_x |x> — the Grover starting state.
  static StateVector uniform(unsigned n_qubits);
  /// Basis state |x>.
  static StateVector basis(unsigned n_qubits, Index x);
  /// From explicit amplitudes (size must be a power of two). Not normalized.
  static StateVector from_amplitudes(std::vector<Amplitude> amps);

  unsigned num_qubits() const { return n_qubits_; }
  std::size_t dimension() const { return amps_.size(); }

  std::span<Amplitude> amplitudes() { return amps_; }
  std::span<const Amplitude> amplitudes() const { return amps_; }
  Amplitude amplitude(Index x) const;

  /// sum |a_x|^2 and friends.
  double norm_squared() const;
  double norm() const;
  /// Rescale to unit norm. Checked: the norm must be positive.
  void normalize();
  /// Max |a_x - b_x| over all basis states.
  double linf_distance(const StateVector& other) const;
  /// <this|other>.
  Amplitude inner(const StateVector& other) const;
  /// |<this|other>|^2.
  double fidelity(const StateVector& other) const;

  /// Probability of observing basis state x.
  double probability(Index x) const;
  /// Probability that a measurement of the first k (most significant) bits
  /// yields `block`, i.e. the mass of amplitudes with x >> (n-k) == block.
  double block_probability(unsigned k, Index block) const;
  /// All K = 2^k block probabilities.
  std::vector<double> block_distribution(unsigned k) const;

  // -- Gate application (delegates to kernels) --
  void apply_gate1(unsigned q, const Gate2& g);
  void apply_controlled_gate1(std::uint64_t control_mask, unsigned q,
                              const Gate2& g);
  /// Apply H to every qubit (the Walsh-Hadamard transform W = H^{(x)n}).
  void apply_hadamard_all();
  void phase_flip(Index t);
  void phase_rotate(Index t, double phi);
  /// I0 = 2|psi0><psi0| - I.
  void reflect_about_uniform();
  /// I_[K] (x) I0,[N/K] with K = 2^k blocks keyed by the first k bits.
  void reflect_blocks_about_uniform(unsigned k);
  /// Generalized block rotation (phi = pi reproduces the reflection).
  void rotate_blocks_about_uniform(unsigned k, double phi);
  /// Step-3 operation: inversion about the average of all non-target states.
  void reflect_non_target_about_their_mean(Index t);

  // -- Measurement --
  /// Sample a full basis state according to |a_x|^2 (state not collapsed).
  Index sample(Rng& rng) const;
  /// Sample only the first k bits (the block index).
  Index sample_block(unsigned k, Rng& rng) const;

  /// Render amplitudes as a signed bar chart (real parts), for the
  /// Figure-1 / Figure-5 style pictures. Only sensible for small N.
  std::string render_real_amplitudes(unsigned k_blocks = 0,
                                     std::size_t half_width = 24) const;

 private:
  unsigned n_qubits_;
  std::vector<Amplitude> amps_;
};

/// The canonical |psi0> constructor for dense code paths that live outside
/// the engine layer (e.g. the Zalka hybrid argument, which manipulates full
/// amplitude vectors by design). Algorithm drivers should go through
/// qsim::Backend instead; this helper marks the deliberate exceptions.
StateVector uniform_state(unsigned n_qubits);

}  // namespace pqs::qsim

// Dense n-qubit state vector.
//
// Storage is structure-of-arrays (qsim/soa.h): separate 64-byte-aligned
// re[]/im[] planes driven by the ISA-dispatched SoA kernels in
// qsim/kernels.* (scalar / AVX2 / AVX-512, see qsim/isa.h). Block structure
// follows the paper: for K = 2^k blocks, the block index of address x is its
// first k bits, i.e. `x >> (n - k)`.
//
// Algorithm layers should usually not drive this class directly any more:
// qsim/backend.h abstracts the operator set behind pqs::qsim::Backend, with
// this dense representation as one engine (DenseBackend) and the O(K)
// block-symmetric engine (SymmetryBackend) as the other. StateVector remains
// the right type for gate-level circuit work and analyses that manipulate
// arbitrary amplitude vectors (noise, Zalka hybrids, figures); code that
// needs raw amplitudes reads the re()/im() planes or amplitudes_copy().
#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "qsim/gates.h"
#include "qsim/kernels.h"
#include "qsim/soa.h"
#include "qsim/types.h"

namespace pqs::qsim {

struct Gate4;  // qsim/gates2.h

class StateVector {
 public:
  /// |0...0> on n qubits.
  explicit StateVector(unsigned n_qubits);

  /// Named constructors.
  static StateVector zero_state(unsigned n_qubits);
  /// |psi0> = (1/sqrt(N)) sum_x |x> — the Grover starting state.
  static StateVector uniform(unsigned n_qubits);
  /// Basis state |x>.
  static StateVector basis(unsigned n_qubits, Index x);
  /// From explicit amplitudes (size must be a power of two). Not normalized.
  static StateVector from_amplitudes(std::vector<Amplitude> amps);

  unsigned num_qubits() const { return n_qubits_; }
  std::size_t dimension() const { return soa_.size(); }

  /// Read-only views of the SoA planes.
  std::span<const double> re() const { return soa_.re_span(); }
  std::span<const double> im() const { return soa_.im_span(); }
  /// Interleaved copy, for analysis code that wants std::complex values.
  std::vector<Amplitude> amplitudes_copy() const {
    return soa_.to_amplitudes();
  }
  Amplitude amplitude(Index x) const;
  /// Overwrite one amplitude (invalidates the kernels' sum cache).
  void set_amplitude(Index x, Amplitude a);

  /// The underlying SoA storage, for the engine/kernel layer.
  SoaVector& soa() { return soa_; }
  const SoaVector& soa() const { return soa_; }

  /// sum |a_x|^2 and friends.
  double norm_squared() const;
  double norm() const;
  /// Rescale to unit norm. Checked: the norm must be positive.
  void normalize();
  /// Max |a_x - b_x| over all basis states.
  double linf_distance(const StateVector& other) const;
  /// <this|other>.
  Amplitude inner(const StateVector& other) const;
  /// |<this|other>|^2.
  double fidelity(const StateVector& other) const;

  /// Probability of observing basis state x.
  double probability(Index x) const;
  /// Probability that a measurement of the first k (most significant) bits
  /// yields `block`, i.e. the mass of amplitudes with x >> (n-k) == block.
  double block_probability(unsigned k, Index block) const;
  /// All K = 2^k block probabilities.
  std::vector<double> block_distribution(unsigned k) const;

  // -- Gate application (delegates to the SoA kernels) --
  void apply_gate1(unsigned q, const Gate2& g);
  void apply_controlled_gate1(std::uint64_t control_mask, unsigned q,
                              const Gate2& g);
  /// Apply a 4x4 unitary to the ordered qubit pair (q_high, q_low).
  void apply_gate2(unsigned q_high, unsigned q_low, const Gate4& g);
  /// Apply H to every qubit (the Walsh-Hadamard transform W = H^{(x)n}).
  void apply_hadamard_all();
  void phase_flip(Index t);
  void phase_rotate(Index t, double phi);
  /// Oracle fast paths: sign-flip / phase-rotate a sorted marked set. O(m).
  void phase_flip_indices(std::span<const Index> marked_sorted);
  void phase_rotate_indices(std::span<const Index> marked_sorted, double phi);
  /// Sign-flip every index satisfying the predicate (inlined O(N) loop).
  template <typename Pred>
  void phase_flip_if(Pred&& predicate) {
    kernels::phase_flip_if(soa_, std::forward<Pred>(predicate));
  }
  /// Multi-controlled Z: -1 on every index with all bits of `mask` set.
  void phase_flip_mask_all_ones(std::uint64_t mask);
  /// Multiply every amplitude by s.
  void scale(Amplitude s);
  /// I0 = 2|psi0><psi0| - I.
  void reflect_about_uniform();
  /// I_[K] (x) I0,[N/K] with K = 2^k blocks keyed by the first k bits.
  void reflect_blocks_about_uniform(unsigned k);
  /// Generalized block rotation (phi = pi reproduces the reflection).
  void rotate_blocks_about_uniform(unsigned k, double phi);
  /// Step-3 operation: inversion about the average of all non-target states.
  void reflect_non_target_about_their_mean(Index t);
  /// Multi-marked Step-3: every listed index keeps its amplitude.
  void reflect_unmarked_about_their_mean(std::span<const Index> marked_sorted);

  // -- Measurement --
  /// Sample a full basis state according to |a_x|^2 (state not collapsed).
  Index sample(Rng& rng) const;
  /// Sample only the first k bits (the block index).
  Index sample_block(unsigned k, Rng& rng) const;

  /// Render amplitudes as a signed bar chart (real parts), for the
  /// Figure-1 / Figure-5 style pictures. Only sensible for small N.
  std::string render_real_amplitudes(unsigned k_blocks = 0,
                                     std::size_t half_width = 24) const;

 private:
  unsigned n_qubits_;
  SoaVector soa_;
};

/// The canonical |psi0> constructor for dense code paths that live outside
/// the engine layer (e.g. the Zalka hybrid argument, which manipulates full
/// amplitude vectors by design). Algorithm drivers should go through
/// qsim::Backend instead; this helper marks the deliberate exceptions.
StateVector uniform_state(unsigned n_qubits);

}  // namespace pqs::qsim

// Runtime ISA dispatch for the dense SoA kernels.
//
// One binary carries scalar, AVX2+FMA and AVX-512F builds of the hot
// segment primitives (qsim/kernels_ops.h). The dispatcher probes the CPU
// once and picks the widest tier that is both compiled into the binary and
// supported by the hardware, so the same artifact runs on any fleet node.
// `PQS_ISA=scalar|avx2|avx512` overrides the choice from the environment
// (the kernel equivalence tests sweep it); force_isa() is the in-process
// hook the test suite uses.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

namespace pqs::qsim {

/// Kernel instruction-set tiers, narrowest first.
enum class Isa {
  kScalar = 0,  ///< portable C++ (auto-vectorized where the compiler can)
  kAvx2 = 1,    ///< 256-bit AVX2 + FMA intrinsics
  kAvx512 = 2,  ///< 512-bit AVX-512F intrinsics
};

/// "scalar" / "avx2" / "avx512".
std::string_view isa_name(Isa isa);

/// Inverse of isa_name. Checked: unknown names throw CheckFailure.
Isa parse_isa(std::string_view name);

/// True iff the tier's translation unit was built with its target flags
/// (the build degrades tier-by-tier when the compiler lacks them).
bool isa_compiled(Isa isa);

/// True iff the tier is compiled in AND this CPU can execute it.
bool isa_supported(Isa isa);

/// The widest supported tier (kScalar is always supported).
Isa best_supported_isa();

/// Every supported tier, narrowest first. This is what the equivalence
/// tests and the bench sweep; on non-AVX hardware it is just {kScalar}.
std::vector<Isa> supported_isas();

/// The tier the SoA kernels dispatch to right now:
/// force_isa() override > PQS_ISA environment variable > best_supported.
/// Checked: a PQS_ISA naming an unsupported tier throws on first use.
Isa active_isa();

/// In-process override for tests/benches; std::nullopt restores the
/// PQS_ISA/auto behaviour. Checked: the tier must be supported. Do not
/// flip this while kernels are running on another thread.
void force_isa(std::optional<Isa> isa);

}  // namespace pqs::qsim

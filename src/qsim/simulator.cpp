#include "qsim/simulator.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace pqs::qsim {

std::string ShotReport::to_string(std::size_t max_rows) const {
  // Sort outcomes by count, descending.
  std::vector<std::pair<Index, std::uint64_t>> rows(counts.begin(),
                                                    counts.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second > b.second || (a.second == b.second && a.first < b.first);
  });
  std::ostringstream os;
  os << "shots=" << shots << " queries/shot=" << queries_per_shot << "\n";
  for (std::size_t i = 0; i < rows.size() && i < max_rows; ++i) {
    os << "  " << rows[i].first << ": " << rows[i].second << " ("
       << (100.0 * static_cast<double>(rows[i].second) /
           static_cast<double>(shots))
       << "%)\n";
  }
  if (rows.size() > max_rows) {
    os << "  ... " << rows.size() - max_rows << " more outcomes\n";
  }
  return os.str();
}

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {}

void Simulator::reseed(std::uint64_t seed) { rng_ = Rng(seed); }

StateVector Simulator::execute(const Circuit& circuit,
                               const OracleView& oracle) {
  auto state = StateVector::uniform(circuit.num_qubits());
  if (!noise_.enabled()) {
    circuit.apply(state, oracle);
    return state;
  }
  // Trajectory execution: noise after every query-consuming op.
  for (const auto& op : circuit.ops()) {
    Circuit single(circuit.num_qubits());
    single.add(op);
    single.apply(state, oracle);
    if (op_query_cost(op) > 0) {
      apply_noise(state, noise_, rng_);
    }
  }
  return state;
}

StateVector Simulator::run_state(const Circuit& circuit,
                                 const OracleView& oracle) {
  return execute(circuit, oracle);
}

ShotReport Simulator::run_shots(const Circuit& circuit,
                                const OracleView& oracle,
                                std::uint64_t shots) {
  PQS_CHECK(shots > 0);
  ShotReport report;
  report.shots = shots;
  report.queries_per_shot = circuit.query_count();
  if (!noise_.enabled()) {
    // One execution, many samples.
    const auto state = execute(circuit, oracle);
    for (std::uint64_t s = 0; s < shots; ++s) {
      ++report.counts[state.sample(rng_)];
    }
  } else {
    // Fresh trajectory per shot.
    for (std::uint64_t s = 0; s < shots; ++s) {
      const auto state = execute(circuit, oracle);
      ++report.counts[state.sample(rng_)];
    }
  }
  for (const auto& [outcome, count] : report.counts) {
    if (count > static_cast<std::uint64_t>(report.mode_frequency *
                                           static_cast<double>(shots))) {
      report.mode = outcome;
      report.mode_frequency =
          static_cast<double>(count) / static_cast<double>(shots);
    }
  }
  return report;
}

ShotReport Simulator::run_block_shots(const Circuit& circuit,
                                      const OracleView& oracle, unsigned k,
                                      std::uint64_t shots) {
  PQS_CHECK(shots > 0);
  PQS_CHECK(k >= 1 && k <= circuit.num_qubits());
  ShotReport report;
  report.shots = shots;
  report.queries_per_shot = circuit.query_count();
  if (!noise_.enabled()) {
    const auto state = execute(circuit, oracle);
    for (std::uint64_t s = 0; s < shots; ++s) {
      ++report.counts[state.sample_block(k, rng_)];
    }
  } else {
    for (std::uint64_t s = 0; s < shots; ++s) {
      const auto state = execute(circuit, oracle);
      ++report.counts[state.sample_block(k, rng_)];
    }
  }
  for (const auto& [outcome, count] : report.counts) {
    const double freq =
        static_cast<double>(count) / static_cast<double>(shots);
    if (freq > report.mode_frequency) {
      report.mode = outcome;
      report.mode_frequency = freq;
    }
  }
  return report;
}

}  // namespace pqs::qsim

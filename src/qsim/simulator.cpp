#include "qsim/simulator.h"

#include "common/check.h"
#include "common/math.h"

namespace pqs::qsim {

namespace {

/// One noise trajectory of `circuit` on an engine-agnostic backend: every
/// op applies through the backend dispatch, with a noise sample after each
/// query-consuming op (the same noise points the dense path uses).
void execute_with_noise(Backend& backend, const Circuit& circuit,
                        const NoiseModel& model, Rng& rng) {
  for (const auto& op : circuit.ops()) {
    Circuit single(circuit.num_qubits());
    single.add(op);
    apply_circuit(backend, single);
    if (op_query_cost(op) > 0) {
      backend.apply_noise(model, rng);
    }
  }
}

}  // namespace

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {}

void Simulator::reseed(std::uint64_t seed) { rng_ = Rng(seed); }

StateVector Simulator::execute(const Circuit& circuit,
                               const OracleView& oracle, Rng& rng) {
  auto state = StateVector::uniform(circuit.num_qubits());
  if (!noise_.enabled()) {
    circuit.apply(state, oracle);
    return state;
  }
  // Trajectory execution: noise after every query-consuming op.
  for (const auto& op : circuit.ops()) {
    Circuit single(circuit.num_qubits());
    single.add(op);
    single.apply(state, oracle);
    if (op_query_cost(op) > 0) {
      apply_noise(state, noise_, rng);
    }
  }
  return state;
}

std::optional<BackendSpec> Simulator::symmetry_spec_for(
    const Circuit& circuit, const OracleView& oracle,
    std::optional<unsigned> measure_k) const {
  if (backend_kind_ != BackendKind::kSymmetry) {
    return std::nullopt;
  }
  auto spec = symmetric_spec(circuit, oracle);
  PQS_CHECK_MSG(spec.has_value(),
                "circuit/oracle pair is not block-symmetric; use the dense "
                "backend");
  if (measure_k.has_value()) {
    if (spec->n_blocks == 1) {
      // The circuit fixed no block granularity; adopt the measurement's.
      spec->n_blocks = pow2(*measure_k);
    }
    PQS_CHECK_MSG(spec->n_blocks == pow2(*measure_k),
                  "block measurement granularity does not match the "
                  "circuit's block structure");
  }
  if (noise_.enabled()) {
    // The class-moment channel needs the single-target power-of-two split;
    // reject unsupported shapes before any shot runs (and before the
    // fan-out: a throw inside an OpenMP region terminates the process).
    require_noise_support(BackendKind::kSymmetry, *spec,
                          "Simulator noise on the symmetry engine");
  }
  return spec;
}

BatchRunner Simulator::make_runner() {
  BatchOptions options = batch_;
  options.seed = rng_.next();  // one draw per run* call: reseed() resets it
  return BatchRunner(options);
}

StateVector Simulator::run_state(const Circuit& circuit,
                                 const OracleView& oracle) {
  require_dense(backend_kind_, "run_state");
  return execute(circuit, oracle, rng_);
}

ShotReport Simulator::run_shots(const Circuit& circuit,
                                const OracleView& oracle,
                                std::uint64_t shots) {
  PQS_CHECK(shots > 0);
  const BatchRunner runner = make_runner();
  const std::uint64_t queries = circuit.query_count();
  if (const auto spec = symmetry_spec_for(circuit, oracle, {})) {
    if (!noise_.enabled()) {
      // One execution, many parallel samples.
      const auto backend = make_backend(BackendKind::kSymmetry, *spec);
      apply_circuit(*backend, circuit);
      return runner.sample_shots(*backend, shots, queries);
    }
    // Fresh class-moment trajectory per shot, each on its own RNG stream.
    const auto outcomes =
        runner.map_shots(shots, [&](std::uint64_t, Rng& rng) {
          const auto backend = make_backend(BackendKind::kSymmetry, *spec);
          execute_with_noise(*backend, circuit, noise_, rng);
          return backend->sample(rng);
        });
    return BatchRunner::tally(outcomes, queries);
  }
  if (!noise_.enabled()) {
    // One execution, many parallel samples.
    const auto state = execute(circuit, oracle, rng_);
    return runner.sample_shots(state, shots, queries);
  }
  // Fresh trajectory per shot, each on its own RNG stream.
  const auto outcomes = runner.map_shots(
      shots, [&](std::uint64_t, Rng& rng) {
        return execute(circuit, oracle, rng).sample(rng);
      });
  return BatchRunner::tally(outcomes, queries);
}

ShotReport Simulator::run_block_shots(const Circuit& circuit,
                                      const OracleView& oracle, unsigned k,
                                      std::uint64_t shots) {
  PQS_CHECK(shots > 0);
  PQS_CHECK(k >= 1 && k <= circuit.num_qubits());
  const BatchRunner runner = make_runner();
  const std::uint64_t queries = circuit.query_count();
  if (const auto spec = symmetry_spec_for(circuit, oracle, k)) {
    if (!noise_.enabled()) {
      const auto backend = make_backend(BackendKind::kSymmetry, *spec);
      apply_circuit(*backend, circuit);
      return runner.sample_block_shots(*backend, shots, queries);
    }
    const auto outcomes =
        runner.map_shots(shots, [&](std::uint64_t, Rng& rng) {
          const auto backend = make_backend(BackendKind::kSymmetry, *spec);
          execute_with_noise(*backend, circuit, noise_, rng);
          return backend->sample_block(rng);
        });
    return BatchRunner::tally(outcomes, queries);
  }
  if (!noise_.enabled()) {
    const auto state = execute(circuit, oracle, rng_);
    return runner.sample_block_shots(state, k, shots, queries);
  }
  const auto outcomes = runner.map_shots(
      shots, [&](std::uint64_t, Rng& rng) {
        return execute(circuit, oracle, rng).sample_block(k, rng);
      });
  return BatchRunner::tally(outcomes, queries);
}

}  // namespace pqs::qsim

#include "qsim/simulator.h"

#include "common/check.h"
#include "common/math.h"

namespace pqs::qsim {

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {}

void Simulator::reseed(std::uint64_t seed) { rng_ = Rng(seed); }

StateVector Simulator::execute(const Circuit& circuit,
                               const OracleView& oracle, Rng& rng) {
  auto state = StateVector::uniform(circuit.num_qubits());
  if (!noise_.enabled()) {
    circuit.apply(state, oracle);
    return state;
  }
  // Trajectory execution: noise after every query-consuming op.
  for (const auto& op : circuit.ops()) {
    Circuit single(circuit.num_qubits());
    single.add(op);
    single.apply(state, oracle);
    if (op_query_cost(op) > 0) {
      apply_noise(state, noise_, rng);
    }
  }
  return state;
}

std::unique_ptr<Backend> Simulator::symmetry_engine(
    const Circuit& circuit, const OracleView& oracle,
    std::optional<unsigned> measure_k) const {
  if (backend_kind_ != BackendKind::kSymmetry) {
    return nullptr;
  }
  PQS_CHECK_MSG(!noise_.enabled(),
                "Simulator noise trajectories run per-shot on the dense "
                "engine; use the dense backend here, or the algorithm-level "
                "noisy drivers (partial/noisy.h) for symmetry-engine noise");
  auto spec = symmetric_spec(circuit, oracle);
  PQS_CHECK_MSG(spec.has_value(),
                "circuit/oracle pair is not block-symmetric; use the dense "
                "backend");
  if (measure_k.has_value()) {
    if (spec->n_blocks == 1) {
      // The circuit fixed no block granularity; adopt the measurement's.
      spec->n_blocks = pow2(*measure_k);
    }
    PQS_CHECK_MSG(spec->n_blocks == pow2(*measure_k),
                  "block measurement granularity does not match the "
                  "circuit's block structure");
  }
  auto backend = make_backend(BackendKind::kSymmetry, *spec);
  apply_circuit(*backend, circuit);
  return backend;
}

BatchRunner Simulator::make_runner() {
  BatchOptions options = batch_;
  options.seed = rng_.next();  // one draw per run* call: reseed() resets it
  return BatchRunner(options);
}

StateVector Simulator::run_state(const Circuit& circuit,
                                 const OracleView& oracle) {
  require_dense(backend_kind_, "run_state");
  return execute(circuit, oracle, rng_);
}

ShotReport Simulator::run_shots(const Circuit& circuit,
                                const OracleView& oracle,
                                std::uint64_t shots) {
  PQS_CHECK(shots > 0);
  const BatchRunner runner = make_runner();
  const std::uint64_t queries = circuit.query_count();
  if (const auto backend = symmetry_engine(circuit, oracle, {})) {
    return runner.sample_shots(*backend, shots, queries);
  }
  if (!noise_.enabled()) {
    // One execution, many parallel samples.
    const auto state = execute(circuit, oracle, rng_);
    return runner.sample_shots(state, shots, queries);
  }
  // Fresh trajectory per shot, each on its own RNG stream.
  const auto outcomes = runner.map_shots(
      shots, [&](std::uint64_t, Rng& rng) {
        return execute(circuit, oracle, rng).sample(rng);
      });
  return BatchRunner::tally(outcomes, queries);
}

ShotReport Simulator::run_block_shots(const Circuit& circuit,
                                      const OracleView& oracle, unsigned k,
                                      std::uint64_t shots) {
  PQS_CHECK(shots > 0);
  PQS_CHECK(k >= 1 && k <= circuit.num_qubits());
  const BatchRunner runner = make_runner();
  const std::uint64_t queries = circuit.query_count();
  if (const auto backend = symmetry_engine(circuit, oracle, k)) {
    return runner.sample_block_shots(*backend, shots, queries);
  }
  if (!noise_.enabled()) {
    const auto state = execute(circuit, oracle, rng_);
    return runner.sample_block_shots(state, k, shots, queries);
  }
  const auto outcomes = runner.map_shots(
      shots, [&](std::uint64_t, Rng& rng) {
        return execute(circuit, oracle, rng).sample_block(k, rng);
      });
  return BatchRunner::tally(outcomes, queries);
}

}  // namespace pqs::qsim

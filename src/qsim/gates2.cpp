#include "qsim/gates2.h"

#include <cmath>

#include "common/check.h"
#include "common/math.h"

namespace pqs::qsim {

Gate4 Gate4::compose(const Gate4& first) const {
  Gate4 out;
  out.name = name + "*" + first.name;
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      Amplitude sum{0.0, 0.0};
      for (std::size_t t = 0; t < 4; ++t) {
        sum += m[r][t] * first.m[t][c];
      }
      out.m[r][c] = sum;
    }
  }
  return out;
}

Gate4 Gate4::adjoint() const {
  Gate4 out;
  out.name = name + "^dag";
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      out.m[r][c] = std::conj(m[c][r]);
    }
  }
  return out;
}

double Gate4::distance(const Gate4& other) const {
  double d2 = 0.0;
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      d2 += std::norm(m[r][c] - other.m[r][c]);
    }
  }
  return std::sqrt(d2);
}

double Gate4::unitarity_defect() const {
  return compose(adjoint()).distance(gates::II());
}

namespace gates {

Gate4 II() {
  Gate4 g{};
  g.name = "II";
  for (std::size_t i = 0; i < 4; ++i) {
    g.m[i][i] = 1.0;
  }
  return g;
}

Gate4 tensor(const Gate2& a, const Gate2& b) {
  Gate4 g{};
  g.name = a.name + "(x)" + b.name;
  for (std::size_t ra = 0; ra < 2; ++ra) {
    for (std::size_t ca = 0; ca < 2; ++ca) {
      for (std::size_t rb = 0; rb < 2; ++rb) {
        for (std::size_t cb = 0; cb < 2; ++cb) {
          g.m[2 * ra + rb][2 * ca + cb] = a.m[ra][ca] * b.m[rb][cb];
        }
      }
    }
  }
  return g;
}

Gate4 CNOT() {
  Gate4 g = II();
  g.name = "CNOT";
  g.m[2][2] = 0.0;
  g.m[3][3] = 0.0;
  g.m[2][3] = 1.0;
  g.m[3][2] = 1.0;
  return g;
}

Gate4 CZ() {
  Gate4 g = II();
  g.name = "CZ";
  g.m[3][3] = -1.0;
  return g;
}

Gate4 CPhase(double phi) {
  Gate4 g = II();
  g.name = "CP";
  g.m[3][3] = std::polar(1.0, phi);
  return g;
}

Gate4 SWAP() {
  Gate4 g{};
  g.name = "SWAP";
  g.m[0][0] = 1.0;
  g.m[1][2] = 1.0;
  g.m[2][1] = 1.0;
  g.m[3][3] = 1.0;
  return g;
}

Gate4 ISWAP() {
  Gate4 g{};
  g.name = "iSWAP";
  g.m[0][0] = 1.0;
  g.m[1][2] = Amplitude{0.0, 1.0};
  g.m[2][1] = Amplitude{0.0, 1.0};
  g.m[3][3] = 1.0;
  return g;
}

}  // namespace gates

namespace kernels {

void apply_gate2(std::span<Amplitude> state, unsigned n_qubits,
                 unsigned q_high, unsigned q_low, const Gate4& g) {
  PQS_CHECK_MSG(state.size() == pow2(n_qubits), "state size mismatch");
  PQS_CHECK_MSG(q_high < n_qubits && q_low < n_qubits,
                "qubit index out of range");
  PQS_CHECK_MSG(q_high != q_low, "two-qubit gate needs distinct qubits");
  const std::uint64_t bit_h = std::uint64_t{1} << q_high;
  const std::uint64_t bit_l = std::uint64_t{1} << q_low;
  const auto n = static_cast<std::int64_t>(state.size());

#ifdef PQS_HAVE_OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (std::int64_t i = 0; i < n; ++i) {
    const auto x = static_cast<std::uint64_t>(i);
    if ((x & bit_h) != 0 || (x & bit_l) != 0) {
      continue;  // handle each 4-tuple once, from its 00 member
    }
    const std::size_t i00 = x;
    const std::size_t i01 = x | bit_l;
    const std::size_t i10 = x | bit_h;
    const std::size_t i11 = x | bit_h | bit_l;
    const Amplitude a00 = state[i00], a01 = state[i01], a10 = state[i10],
                    a11 = state[i11];
    state[i00] = g.m[0][0] * a00 + g.m[0][1] * a01 + g.m[0][2] * a10 +
                 g.m[0][3] * a11;
    state[i01] = g.m[1][0] * a00 + g.m[1][1] * a01 + g.m[1][2] * a10 +
                 g.m[1][3] * a11;
    state[i10] = g.m[2][0] * a00 + g.m[2][1] * a01 + g.m[2][2] * a10 +
                 g.m[2][3] * a11;
    state[i11] = g.m[3][0] * a00 + g.m[3][1] * a01 + g.m[3][2] * a10 +
                 g.m[3][3] * a11;
  }
}

}  // namespace kernels

}  // namespace pqs::qsim

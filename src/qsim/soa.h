// Structure-of-arrays amplitude storage for the dense engine.
//
// The real and imaginary parts live in two separate contiguous double
// planes, 64-byte aligned, so the SIMD kernel tiers (qsim/kernels_ops.h)
// stream homogeneous lanes instead of shuffling interleaved re/im pairs.
// SoaVector is a dumb container plus a block-sum cache; all arithmetic and
// all cache POLICY lives in qsim::kernels — code that mutates the planes
// without going through those kernels must call invalidate_sums().
//
// The sum cache is what makes the SoA engine faster than memory bandwidth
// naively allows: reflect/rotate kernels accumulate the sums of the values
// they store, so the next same-partition reflection skips its read pass
// entirely (see qsim/kernels.h, "SoA kernels").
#pragma once

#include <algorithm>
#include <cstddef>
#include <new>
#include <span>
#include <vector>

#include "qsim/types.h"

namespace pqs::qsim {

/// Minimal 64-byte-aligned allocator: plane starts land on cache-line (and
/// AVX-512 register) boundaries regardless of libc malloc behaviour.
template <typename T>
struct AlignedAlloc64 {
  using value_type = T;
  static constexpr std::align_val_t kAlign{64};

  AlignedAlloc64() = default;
  template <typename U>
  AlignedAlloc64(const AlignedAlloc64<U>&) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), kAlign));
  }
  void deallocate(T* p, std::size_t) { ::operator delete(p, kAlign); }

  template <typename U>
  bool operator==(const AlignedAlloc64<U>&) const {
    return true;
  }
};

class SoaVector {
 public:
  using Plane = std::vector<double, AlignedAlloc64<double>>;

  SoaVector() = default;
  /// Zero-filled planes of the given length.
  explicit SoaVector(std::size_t size) : re_(size, 0.0), im_(size, 0.0) {}

  static SoaVector from_amplitudes(std::span<const Amplitude> amps) {
    SoaVector v(amps.size());
    for (std::size_t i = 0; i < amps.size(); ++i) {
      v.re_[i] = amps[i].real();
      v.im_[i] = amps[i].imag();
    }
    return v;
  }

  std::size_t size() const { return re_.size(); }

  double* re() { return re_.data(); }
  double* im() { return im_.data(); }
  const double* re() const { return re_.data(); }
  const double* im() const { return im_.data(); }
  std::span<const double> re_span() const { return re_; }
  std::span<const double> im_span() const { return im_; }

  Amplitude get(std::size_t i) const { return Amplitude{re_[i], im_[i]}; }
  /// Plain store. Does NOT touch the sum cache — callers mutating
  /// amplitudes outside qsim::kernels must invalidate_sums() afterwards.
  void set(std::size_t i, Amplitude a) {
    re_[i] = a.real();
    im_[i] = a.imag();
  }

  /// Every element <- a. Invalidates the sum cache.
  void fill(Amplitude a) {
    std::fill(re_.begin(), re_.end(), a.real());
    std::fill(im_.begin(), im_.end(), a.imag());
    invalidate_sums();
  }

  std::vector<Amplitude> to_amplitudes() const {
    std::vector<Amplitude> out(size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = get(i);
    }
    return out;
  }

  // -- Block-sum cache (maintained by the qsim::kernels SoA layer) --
  // When valid for partition `block_size`, sum_re()[b] + i*sum_im()[b] is
  // the amplitude sum of block b (indices [b*bs, (b+1)*bs)).

  bool sums_valid(std::size_t block_size) const {
    return sum_block_size_ == block_size && block_size != 0;
  }
  std::size_t sum_block_size() const { return sum_block_size_; }
  void invalidate_sums() { sum_block_size_ = 0; }
  /// Declare the cache valid for `block_size`, resizing the sum arrays to
  /// size()/block_size (the kernel that calls this fills them).
  void mark_sums(std::size_t block_size) {
    sum_block_size_ = block_size;
    sum_re_.assign(block_size == 0 ? 0 : size() / block_size, 0.0);
    sum_im_.assign(block_size == 0 ? 0 : size() / block_size, 0.0);
  }
  std::vector<double>& sum_re() { return sum_re_; }
  std::vector<double>& sum_im() { return sum_im_; }
  const std::vector<double>& sum_re() const { return sum_re_; }
  const std::vector<double>& sum_im() const { return sum_im_; }

 private:
  Plane re_, im_;
  std::size_t sum_block_size_ = 0;  ///< 0 = cache invalid
  std::vector<double> sum_re_, sum_im_;
};

}  // namespace pqs::qsim

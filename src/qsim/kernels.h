// O(N) state-vector kernels. These are the hot loops; everything else in the
// simulator is bookkeeping around them. All kernels are OpenMP-parallel when
// built with PQS_HAVE_OPENMP.
//
// The two reflection kernels are the work-horses of the paper:
//   reflect_about_uniform      = I0        = 2|psi0><psi0| - I
//   reflect_blocks_about_uniform = I_[K] (x) I0,[N/K]   (Section 2.2)
#pragma once

#include <functional>
#include <span>

#include "qsim/gates.h"
#include "qsim/types.h"

namespace pqs::qsim::kernels {

/// Apply a 2x2 unitary to qubit `q` (bit q of the index) of an n-qubit state.
void apply_gate1(std::span<Amplitude> state, unsigned n_qubits, unsigned q,
                 const Gate2& g);

/// Apply the gate to qubit `q` only on basis states where every control bit in
/// `control_mask` is 1. `control_mask` must not contain bit q.
void apply_controlled_gate1(std::span<Amplitude> state, unsigned n_qubits,
                            std::uint64_t control_mask, unsigned q,
                            const Gate2& g);

/// Multiply the amplitude of the single basis state `t` by -1.
/// This is the selective inversion I_t = I - 2|t><t| of the paper.
void phase_flip_index(std::span<Amplitude> state, Index t);

/// Multiply by e^{i phi} the amplitude of basis state `t` (generalized
/// selective phase, used by the sure-success variants).
void phase_rotate_index(std::span<Amplitude> state, Index t, double phi);

/// Multiply by -1 every amplitude whose index satisfies the predicate.
/// Used for multi-target oracles and the gate-level |0><0| phase.
void phase_flip_if(std::span<Amplitude> state,
                   const std::function<bool(Index)>& predicate);

/// Multiply by -1 every amplitude whose index has all bits of `mask` set
/// (a multi-controlled Z on the qubits in `mask`).
void phase_flip_mask_all_ones(std::span<Amplitude> state, std::uint64_t mask);

/// In-place I0 = 2|psi0><psi0| - I where |psi0> is the uniform superposition:
/// a_x <- 2*mean(a) - a_x. ("Inversion about the average".)
void reflect_about_uniform(std::span<Amplitude> state);

/// In-place I_[K] (x) I0,[N/K]: inversion about the average within each
/// contiguous block of `block_size` amplitudes. `block_size` must divide the
/// state size. With block_size == state.size() this is reflect_about_uniform.
void reflect_blocks_about_uniform(std::span<Amplitude> state,
                                  std::size_t block_size);

/// Generalized per-block operator used by the sure-success variants:
/// within each block, a <- a + (e^{i phi} - 1) * mean(a) * ones, i.e. the
/// phase-rotation 2|u><u| pattern  I + (e^{i phi} - 1)|u><u| with u the
/// block-uniform state. phi = pi reproduces reflect_blocks_about_uniform.
void rotate_blocks_about_uniform(std::span<Amplitude> state,
                                 std::size_t block_size, double phi);

/// Reflection about an arbitrary axis state: 2|axis><axis| - I.
/// `axis` must be a unit vector of the same dimension as `state`.
void reflect_about_state(std::span<Amplitude> state,
                         std::span<const Amplitude> axis);

/// Inversion about the average of the amplitudes at indices != t, leaving
/// index t untouched. This is the Step-3 operation of the partial-search
/// algorithm ("controlled on b = 0, invert about the average").
void reflect_non_target_about_their_mean(std::span<Amplitude> state, Index t);

/// Multi-marked generalization of the Step-3 reflection: every index in
/// `marked_sorted` (sorted, unique) keeps its amplitude; the rest are
/// inverted about their common mean. One oracle query marks the whole set.
void reflect_unmarked_about_their_mean(std::span<Amplitude> state,
                                       std::span<const Index> marked_sorted);

/// <a|b>.
Amplitude inner_product(std::span<const Amplitude> a,
                        std::span<const Amplitude> b);

/// sum |a_x|^2.
double norm_squared(std::span<const Amplitude> state);

/// Multiply every amplitude by s.
void scale(std::span<Amplitude> state, Amplitude s);

}  // namespace pqs::qsim::kernels

// O(N) state-vector kernels. These are the hot loops; everything else in the
// simulator is bookkeeping around them. All kernels are OpenMP-parallel when
// built with PQS_HAVE_OPENMP.
//
// The two reflection kernels are the work-horses of the paper:
//   reflect_about_uniform      = I0        = 2|psi0><psi0| - I
//   reflect_blocks_about_uniform = I_[K] (x) I0,[N/K]   (Section 2.2)
#pragma once

#include <cstdint>
#include <span>

#include "qsim/gates.h"
#include "qsim/soa.h"
#include "qsim/types.h"

namespace pqs::qsim::kernels {

/// Apply a 2x2 unitary to qubit `q` (bit q of the index) of an n-qubit state.
void apply_gate1(std::span<Amplitude> state, unsigned n_qubits, unsigned q,
                 const Gate2& g);

/// Apply the gate to qubit `q` only on basis states where every control bit in
/// `control_mask` is 1. `control_mask` must not contain bit q.
void apply_controlled_gate1(std::span<Amplitude> state, unsigned n_qubits,
                            std::uint64_t control_mask, unsigned q,
                            const Gate2& g);

/// Multiply the amplitude of the single basis state `t` by -1.
/// This is the selective inversion I_t = I - 2|t><t| of the paper.
void phase_flip_index(std::span<Amplitude> state, Index t);

/// Multiply by e^{i phi} the amplitude of basis state `t` (generalized
/// selective phase, used by the sure-success variants).
void phase_rotate_index(std::span<Amplitude> state, Index t, double phi);

/// Multiply by -1 every amplitude whose index satisfies the predicate.
/// Templated so the predicate inlines into the O(N) loop: the previous
/// std::function form paid a virtual dispatch per basis state, once per
/// Grover iteration. Prefer phase_flip_indices when the marked set is known
/// explicitly — that path is O(m), not O(N).
template <typename Pred>
void phase_flip_if(std::span<Amplitude> state, Pred&& predicate) {
  const auto n = static_cast<std::int64_t>(state.size());
#ifdef PQS_HAVE_OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (std::int64_t i = 0; i < n; ++i) {
    if (predicate(static_cast<Index>(i))) {
      state[static_cast<std::size_t>(i)] = -state[static_cast<std::size_t>(i)];
    }
  }
}

/// Oracle fast path: flip the sign of exactly the listed basis states.
/// `marked_sorted` must be sorted and unique. O(m) instead of O(N).
void phase_flip_indices(std::span<Amplitude> state,
                        std::span<const Index> marked_sorted);

/// Generalized oracle fast path: multiply the listed basis states by
/// e^{i phi}. `marked_sorted` must be sorted and unique. O(m).
void phase_rotate_indices(std::span<Amplitude> state,
                          std::span<const Index> marked_sorted, double phi);

/// Multiply by -1 every amplitude whose index has all bits of `mask` set
/// (a multi-controlled Z on the qubits in `mask`).
void phase_flip_mask_all_ones(std::span<Amplitude> state, std::uint64_t mask);

/// In-place I0 = 2|psi0><psi0| - I where |psi0> is the uniform superposition:
/// a_x <- 2*mean(a) - a_x. ("Inversion about the average".)
void reflect_about_uniform(std::span<Amplitude> state);

/// In-place I_[K] (x) I0,[N/K]: inversion about the average within each
/// contiguous block of `block_size` amplitudes. `block_size` must divide the
/// state size. With block_size == state.size() this is reflect_about_uniform.
void reflect_blocks_about_uniform(std::span<Amplitude> state,
                                  std::size_t block_size);

/// Generalized per-block operator used by the sure-success variants:
/// within each block, a <- a + (e^{i phi} - 1) * mean(a) * ones, i.e. the
/// phase-rotation 2|u><u| pattern  I + (e^{i phi} - 1)|u><u| with u the
/// block-uniform state. phi = pi reproduces reflect_blocks_about_uniform.
void rotate_blocks_about_uniform(std::span<Amplitude> state,
                                 std::size_t block_size, double phi);

/// Reflection about an arbitrary axis state: 2|axis><axis| - I.
/// `axis` must be a unit vector of the same dimension as `state`.
void reflect_about_state(std::span<Amplitude> state,
                         std::span<const Amplitude> axis);

/// Inversion about the average of the amplitudes at indices != t, leaving
/// index t untouched. This is the Step-3 operation of the partial-search
/// algorithm ("controlled on b = 0, invert about the average").
void reflect_non_target_about_their_mean(std::span<Amplitude> state, Index t);

/// Multi-marked generalization of the Step-3 reflection: every index in
/// `marked_sorted` (sorted, unique) keeps its amplitude; the rest are
/// inverted about their common mean. One oracle query marks the whole set.
void reflect_unmarked_about_their_mean(std::span<Amplitude> state,
                                       std::span<const Index> marked_sorted);

/// Pairwise (cascade) summation of amplitudes / of probability mass:
/// rounding error O(log N) ulps instead of the O(N) of a sequential loop.
/// The reflection kernels' means go through these so that thousands of
/// iterations at N = 2^20+ still match the O(K) symmetry backend to 1e-10.
Amplitude sum_pairwise(std::span<const Amplitude> state);
double norm_squared_pairwise(std::span<const Amplitude> state);

/// <a|b>.
Amplitude inner_product(std::span<const Amplitude> a,
                        std::span<const Amplitude> b);

/// sum |a_x|^2.
double norm_squared(std::span<const Amplitude> state);

/// Multiply every amplitude by s.
void scale(std::span<Amplitude> state, Amplitude s);

// ---------------------------------------------------------------------------
// SoA kernels (ISA-dispatched) — the production path.
//
// These mirror the span kernels above on SoaVector's separated re/im planes
// and are what StateVector and DenseBackend actually run. Each O(N) loop
// dispatches through the active ISA tier (qsim/isa.h: scalar, AVX2+FMA,
// AVX-512F) and the reflection/rotation kernels maintain SoaVector's
// block-sum cache so back-to-back same-partition reflections skip their sum
// pass (one memory sweep per kernel instead of two). The span kernels above
// remain the scalar reference implementations the equivalence tests compare
// against — keep both in sync when changing semantics.
//
// All block means and reductions use deterministic fixed-chunk pairwise
// summation (chunk partials combined pairwise), so results are independent
// of the OpenMP thread count and match the span kernels' recursive pairwise
// sums to well under the 1e-10 dense≡symmetry agreement bar.
// ---------------------------------------------------------------------------

void apply_gate1(SoaVector& v, unsigned n_qubits, unsigned q, const Gate2& g);
void apply_controlled_gate1(SoaVector& v, unsigned n_qubits,
                            std::uint64_t control_mask, unsigned q,
                            const Gate2& g);
void phase_flip_index(SoaVector& v, Index t);
void phase_rotate_index(SoaVector& v, Index t, double phi);
void phase_flip_indices(SoaVector& v, std::span<const Index> marked_sorted);
void phase_rotate_indices(SoaVector& v, std::span<const Index> marked_sorted,
                          double phi);
void phase_flip_mask_all_ones(SoaVector& v, std::uint64_t mask);

/// Predicate-driven sign flip; the predicate inlines into the O(N) loop.
template <typename Pred>
void phase_flip_if(SoaVector& v, Pred&& predicate) {
  double* re = v.re();
  double* im = v.im();
  const auto n = static_cast<std::int64_t>(v.size());
#ifdef PQS_HAVE_OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (std::int64_t i = 0; i < n; ++i) {
    if (predicate(static_cast<Index>(i))) {
      const auto idx = static_cast<std::size_t>(i);
      re[idx] = -re[idx];
      im[idx] = -im[idx];
    }
  }
  v.invalidate_sums();
}

void reflect_about_uniform(SoaVector& v);
void reflect_blocks_about_uniform(SoaVector& v, std::size_t block_size);
void rotate_blocks_about_uniform(SoaVector& v, std::size_t block_size,
                                 double phi);
void reflect_non_target_about_their_mean(SoaVector& v, Index t);
void reflect_unmarked_about_their_mean(SoaVector& v,
                                       std::span<const Index> marked_sorted);

/// Deterministic chunked-pairwise sum of all amplitudes. Uses the block-sum
/// cache when it is valid (summing K cached block sums instead of N values).
Amplitude sum_all(const SoaVector& v);
/// sum |a_x|^2 over [lo, lo + len) / over the whole vector.
double norm_squared_range(const SoaVector& v, std::size_t lo,
                          std::size_t len);
double norm_squared(const SoaVector& v);
Amplitude inner_product(const SoaVector& a, const SoaVector& b);
void scale(SoaVector& v, Amplitude s);

}  // namespace pqs::qsim::kernels

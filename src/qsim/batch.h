// Batched shot execution.
//
// Multi-shot workloads — repeated measurement of one pre-computed state,
// independent noise trajectories, or sweeps over many targets — are
// embarrassingly parallel, but a naive parallel loop over a shared RNG is
// neither reproducible nor correct. BatchRunner fans shots across OpenMP
// threads (serial without PQS_HAVE_OPENMP) while giving every shot its own
// deterministic RNG stream derived from (seed, shot index), so results are
// identical for any thread count, including 1.
//
// The Simulator front-end routes its run_shots / run_block_shots through
// this layer; algorithm-level sweeps (benches, examples) use map_shots
// directly with their own shot body.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "qsim/backend.h"
#include "qsim/run_control.h"
#include "qsim/state_vector.h"
#include "qsim/types.h"

namespace pqs::qsim {

/// Aggregated result of a multi-shot execution.
struct ShotReport {
  std::map<Index, std::uint64_t> counts;  ///< outcome -> occurrences
  std::uint64_t shots = 0;
  std::uint64_t queries_per_shot = 0;
  /// Most frequent outcome and its empirical probability.
  Index mode = 0;
  double mode_frequency = 0.0;

  std::string to_string(std::size_t max_rows = 8) const;
};

struct BatchOptions {
  /// Worker threads for the shot fan-out; 0 = one per hardware thread.
  /// Ignored (always 1) when built without OpenMP.
  unsigned threads = 0;
  /// Base seed of the per-shot RNG streams.
  std::uint64_t seed = 2005;
  /// Optional cancel/progress handle: map_shots checks it per shot (a
  /// cancelled fan-out skips its remaining shots and throws CancelledError
  /// after the loop joins) and advances work_done once per completed shot.
  /// Never part of a SearchSpec — the Engine/Service attach it at run time
  /// (SearchSpec::validate_knobs enforces null).
  RunControl* control = nullptr;
};

/// Deterministic parallel shot executor.
class BatchRunner {
 public:
  explicit BatchRunner(BatchOptions options = {});

  const BatchOptions& options() const { return options_; }
  /// The resolved worker count (>= 1).
  unsigned threads() const { return threads_; }

  /// The RNG stream of one shot: seeded from (options.seed, shot) only, so
  /// any scheduling of the shots reproduces the same outcomes.
  Rng shot_rng(std::uint64_t shot) const;

  /// outcomes[i] = body(i, rng_i), fanned across threads. The body must be
  /// safe to call concurrently for distinct shots (shared inputs read-only).
  /// With options.control attached, every shot first checks the cancel flag
  /// (a cancelled run skips the remaining shot bodies, then throws
  /// CancelledError once the fan-out joins — so cancellation lands within
  /// one in-flight shot per thread) and reports one unit of progress.
  std::vector<Index> map_shots(
      std::uint64_t shots,
      const std::function<Index(std::uint64_t shot, Rng& rng)>& body) const;

  /// Aggregate raw outcomes into a report.
  static ShotReport tally(const std::vector<Index>& outcomes,
                          std::uint64_t queries_per_shot);

  // -- convenience wrappers --
  /// Repeated full measurement of a fixed state.
  ShotReport sample_shots(const StateVector& state, std::uint64_t shots,
                          std::uint64_t queries_per_shot) const;
  ShotReport sample_shots(const Backend& backend, std::uint64_t shots,
                          std::uint64_t queries_per_shot) const;
  /// Repeated measurement of the first k bits / the block index.
  ShotReport sample_block_shots(const StateVector& state, unsigned k,
                                std::uint64_t shots,
                                std::uint64_t queries_per_shot) const;
  ShotReport sample_block_shots(const Backend& backend, std::uint64_t shots,
                                std::uint64_t queries_per_shot) const;

 private:
  BatchOptions options_;
  unsigned threads_ = 1;
};

}  // namespace pqs::qsim

#include "qsim/diffusion.h"

#include "common/check.h"
#include "common/math.h"
#include "qsim/kernels.h"

namespace pqs::qsim {

void apply_global_diffusion_gate_level(StateVector& state) {
  const unsigned n = state.num_qubits();
  const Gate2 h = gates::H();
  const Gate2 x = gates::X();
  for (unsigned q = 0; q < n; ++q) {
    state.apply_gate1(q, h);
  }
  for (unsigned q = 0; q < n; ++q) {
    state.apply_gate1(q, x);
  }
  state.phase_flip_mask_all_ones(pow2(n) - 1);
  for (unsigned q = 0; q < n; ++q) {
    state.apply_gate1(q, x);
  }
  for (unsigned q = 0; q < n; ++q) {
    state.apply_gate1(q, h);
  }
  state.scale(Amplitude{-1.0, 0.0});
}

void apply_block_diffusion_gate_level(StateVector& state, unsigned k) {
  const unsigned n = state.num_qubits();
  PQS_CHECK_MSG(k >= 1 && k < n, "block bits out of range");
  const unsigned low = n - k;  // qubits 0..low-1 are the within-block address
  const Gate2 h = gates::H();
  const Gate2 x = gates::X();
  for (unsigned q = 0; q < low; ++q) {
    state.apply_gate1(q, h);
  }
  for (unsigned q = 0; q < low; ++q) {
    state.apply_gate1(q, x);
  }
  state.phase_flip_mask_all_ones(pow2(low) - 1);
  for (unsigned q = 0; q < low; ++q) {
    state.apply_gate1(q, x);
  }
  for (unsigned q = 0; q < low; ++q) {
    state.apply_gate1(q, h);
  }
  state.scale(Amplitude{-1.0, 0.0});
}

std::vector<Amplitude> global_diffusion_matrix(unsigned n_qubits) {
  const std::size_t dim = pow2(n_qubits);
  PQS_CHECK_MSG(dim <= 4096, "dense matrices are for test-sized states");
  std::vector<Amplitude> m(dim * dim, Amplitude{0.0, 0.0});
  const double two_over_n = 2.0 / static_cast<double>(dim);
  for (std::size_t r = 0; r < dim; ++r) {
    for (std::size_t c = 0; c < dim; ++c) {
      m[r * dim + c] = Amplitude{two_over_n - (r == c ? 1.0 : 0.0), 0.0};
    }
  }
  return m;
}

std::vector<Amplitude> block_diffusion_matrix(unsigned n_qubits, unsigned k) {
  const std::size_t dim = pow2(n_qubits);
  PQS_CHECK_MSG(dim <= 4096, "dense matrices are for test-sized states");
  PQS_CHECK_MSG(k >= 1 && k < n_qubits, "block bits out of range");
  const std::size_t block = dim >> k;
  std::vector<Amplitude> m(dim * dim, Amplitude{0.0, 0.0});
  const double two_over_b = 2.0 / static_cast<double>(block);
  for (std::size_t r = 0; r < dim; ++r) {
    for (std::size_t c = 0; c < dim; ++c) {
      const bool same_block = (r / block) == (c / block);
      m[r * dim + c] = Amplitude{
          (same_block ? two_over_b : 0.0) - (r == c ? 1.0 : 0.0), 0.0};
    }
  }
  return m;
}

void apply_dense_matrix(StateVector& state,
                        const std::vector<Amplitude>& matrix) {
  const std::size_t dim = state.dimension();
  PQS_CHECK_MSG(matrix.size() == dim * dim, "matrix size mismatch");
  // This is the reference path the kernel-equivalence tests lean on, and
  // they apply thousands of test-sized matrices: reuse one scratch buffer
  // across calls instead of allocating per call, and let the O(dim^2) row
  // loop fan out over threads (rows are independent).
  static thread_local std::vector<Amplitude> scratch;
  scratch.resize(dim);
  // scratch is thread_local, so inside the parallel region each worker would
  // see its own (empty) instance; share the caller's buffer via a raw pointer.
  Amplitude* const out = scratch.data();
  const std::span<const double> re = state.re();
  const std::span<const double> im = state.im();
  const auto rows = static_cast<std::int64_t>(dim);
#ifdef PQS_HAVE_OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (std::int64_t r = 0; r < rows; ++r) {
    const Amplitude* row = matrix.data() + static_cast<std::size_t>(r) * dim;
    Amplitude sum{0.0, 0.0};
    for (std::size_t c = 0; c < dim; ++c) {
      sum += row[c] * Amplitude{re[c], im[c]};
    }
    out[static_cast<std::size_t>(r)] = sum;
  }
  SoaVector& soa = state.soa();
  for (std::size_t i = 0; i < dim; ++i) {
    soa.set(i, scratch[i]);
  }
  soa.invalidate_sums();
}

}  // namespace pqs::qsim

// SoA kernel composition layer: chunking, OpenMP, the block-sum cache, and
// ISA dispatch. The arithmetic itself lives in the per-tier segment
// primitives (qsim/kernels_scalar.cpp / kernels_avx2.cpp / kernels_avx512.cpp).
//
// Determinism contract: every mean/reduction is a fixed-chunk pairwise sum —
// segments of kChunk elements are reduced by the tier primitive and the
// per-chunk partials are combined pairwise — so results do not depend on the
// OpenMP thread count and stay within ulps of the span kernels' recursive
// pairwise sums.
//
// Cache contract: the reflect/rotate update passes accumulate the sums of
// the values they store and refresh SoaVector's block-sum cache from them,
// so the cache is always recomputed from stored data once per kernel call
// (incremental oracle deltas never survive more than one iteration — no
// drift accumulation). The scalar tier maintains the cache but never READS
// it: it stays the two-pass reference the equivalence tests trust.
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/math.h"
#include "qsim/kernels.h"
#include "qsim/kernels_ops.h"

namespace pqs::qsim::kernels {

const KernelOps& kernel_ops(Isa isa) {
  PQS_CHECK_MSG(isa_supported(isa), "requested ISA tier is not supported");
  switch (isa) {
    case Isa::kScalar:
      return scalar_kernel_ops();
    case Isa::kAvx2:
      return avx2_kernel_ops();
    case Isa::kAvx512:
      return avx512_kernel_ops();
  }
  return scalar_kernel_ops();
}

const KernelOps& active_kernel_ops() { return kernel_ops(active_isa()); }

namespace {

using SIdx = std::int64_t;

/// Fixed reduction chunk: large enough that the per-chunk bookkeeping is
/// noise, small enough that in-order accumulation inside a chunk stays at
/// ulp-scale error. MUST stay a compile-time constant — determinism of every
/// mean in the engine depends on the chunk partition being fixed.
constexpr std::size_t kChunk = 4096;

std::size_t chunks_for(std::size_t len) {
  return (len + kChunk - 1) / kChunk;
}

/// Pairwise combine of chunk partials (the second reduction level).
double combine_pairwise(const double* p, std::size_t n) {
  if (n <= 8) {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      s += p[i];
    }
    return s;
  }
  const std::size_t mid = n / 2;
  return combine_pairwise(p, mid) + combine_pairwise(p + mid, n - mid);
}

/// Deterministic chunked sum of planes over [lo, lo + len).
void sum_range(const double* re, const double* im, std::size_t lo,
               std::size_t len, const KernelOps& ops, double* out_re,
               double* out_im) {
  const std::size_t nc = chunks_for(len);
  if (nc <= 1) {
    ops.sum(re + lo, im + lo, len, out_re, out_im);
    return;
  }
  std::vector<double> pr(nc), pi(nc);
  const auto n = static_cast<SIdx>(nc);
#ifdef PQS_HAVE_OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (SIdx c = 0; c < n; ++c) {
    const std::size_t off = lo + static_cast<std::size_t>(c) * kChunk;
    const std::size_t clen = std::min(kChunk, lo + len - off);
    ops.sum(re + off, im + off, clen, &pr[static_cast<std::size_t>(c)],
            &pi[static_cast<std::size_t>(c)]);
  }
  *out_re = combine_pairwise(pr.data(), nc);
  *out_im = combine_pairwise(pi.data(), nc);
}

/// Per-block sums for partition `bs`, from the cache when the active tier
/// may use it, recomputed otherwise. Writes size()/bs entries.
void block_sums(const SoaVector& v, std::size_t bs, const KernelOps& ops,
                bool may_use_cache, std::vector<double>& sr,
                std::vector<double>& si) {
  const std::size_t nb = v.size() / bs;
  sr.resize(nb);
  si.resize(nb);
  if (may_use_cache && v.sums_valid(bs)) {
    sr = v.sum_re();
    si = v.sum_im();
    return;
  }
  const std::size_t cpb = chunks_for(bs);
  if (cpb == 1) {
    const auto n = static_cast<SIdx>(nb);
#ifdef PQS_HAVE_OPENMP
#pragma omp parallel for schedule(static)
#endif
    for (SIdx b = 0; b < n; ++b) {
      const auto ub = static_cast<std::size_t>(b);
      ops.sum(v.re() + ub * bs, v.im() + ub * bs, bs, &sr[ub], &si[ub]);
    }
    return;
  }
  std::vector<double> pr(nb * cpb), pi(nb * cpb);
  const auto tasks = static_cast<SIdx>(nb * cpb);
#ifdef PQS_HAVE_OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (SIdx t = 0; t < tasks; ++t) {
    const auto ut = static_cast<std::size_t>(t);
    const std::size_t b = ut / cpb;
    const std::size_t off = b * bs + (ut % cpb) * kChunk;
    const std::size_t clen = std::min(kChunk, (b + 1) * bs - off);
    ops.sum(v.re() + off, v.im() + off, clen, &pr[ut], &pi[ut]);
  }
  for (std::size_t b = 0; b < nb; ++b) {
    sr[b] = combine_pairwise(pr.data() + b * cpb, cpb);
    si[b] = combine_pairwise(pi.data() + b * cpb, cpb);
  }
}

/// Shared update pass of the two block kernels: per block apply either
/// a <- t_b - a (reflect) or a <- a + t_b (rotate add), accumulating the
/// stored values, then refresh the sum cache from the accumulation.
void block_update(SoaVector& v, std::size_t bs, const KernelOps& ops,
                  bool is_reflect, const std::vector<double>& tr,
                  const std::vector<double>& ti) {
  const std::size_t nb = v.size() / bs;
  const std::size_t cpb = chunks_for(bs);
  std::vector<double> pr(nb * cpb), pi(nb * cpb);
  const auto tasks = static_cast<SIdx>(nb * cpb);
#ifdef PQS_HAVE_OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (SIdx t = 0; t < tasks; ++t) {
    const auto ut = static_cast<std::size_t>(t);
    const std::size_t b = ut / cpb;
    const std::size_t off = b * bs + (ut % cpb) * kChunk;
    const std::size_t clen = std::min(kChunk, (b + 1) * bs - off);
    if (is_reflect) {
      ops.reflect(v.re() + off, v.im() + off, clen, tr[b], ti[b], &pr[ut],
                  &pi[ut]);
    } else {
      ops.add(v.re() + off, v.im() + off, clen, tr[b], ti[b], &pr[ut],
              &pi[ut]);
    }
  }
  v.mark_sums(bs);
  for (std::size_t b = 0; b < nb; ++b) {
    v.sum_re()[b] = combine_pairwise(pr.data() + b * cpb, cpb);
    v.sum_im()[b] = combine_pairwise(pi.data() + b * cpb, cpb);
  }
}

void pack_gate(const Gate2& g, double m[8]) {
  m[0] = g.m[0][0].real();
  m[1] = g.m[0][0].imag();
  m[2] = g.m[0][1].real();
  m[3] = g.m[0][1].imag();
  m[4] = g.m[1][0].real();
  m[5] = g.m[1][0].imag();
  m[6] = g.m[1][1].real();
  m[7] = g.m[1][1].imag();
}

}  // namespace

void apply_gate1(SoaVector& v, unsigned n_qubits, unsigned q, const Gate2& g) {
  PQS_CHECK_MSG(v.size() == pow2(n_qubits),
                "state size does not match qubit count");
  PQS_CHECK_MSG(q < n_qubits, "qubit index out of range");
  const KernelOps& ops = active_kernel_ops();
  double m[8];
  pack_gate(g, m);
  const std::size_t stride = std::size_t{1} << q;
  const auto n = static_cast<SIdx>(v.size());
#ifdef PQS_HAVE_OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (SIdx base = 0; base < n; base += static_cast<SIdx>(stride) * 2) {
    const auto lo = static_cast<std::size_t>(base);
    ops.gate1(v.re() + lo, v.im() + lo, v.re() + lo + stride,
              v.im() + lo + stride, stride, m);
  }
  v.invalidate_sums();
}

void apply_controlled_gate1(SoaVector& v, unsigned n_qubits,
                            std::uint64_t control_mask, unsigned q,
                            const Gate2& g) {
  PQS_CHECK_MSG(v.size() == pow2(n_qubits),
                "state size does not match qubit count");
  PQS_CHECK_MSG(q < n_qubits, "qubit index out of range");
  PQS_CHECK_MSG((control_mask & (std::uint64_t{1} << q)) == 0,
                "target qubit cannot be its own control");
  PQS_CHECK_MSG(control_mask < v.size(), "control mask out of range");
  const std::uint64_t stride = std::uint64_t{1} << q;
  const auto n = static_cast<SIdx>(v.size());
  const Amplitude m00 = g.m[0][0], m01 = g.m[0][1], m10 = g.m[1][0],
                  m11 = g.m[1][1];
  double* re = v.re();
  double* im = v.im();
#ifdef PQS_HAVE_OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (SIdx base = 0; base < n; base += static_cast<SIdx>(stride) * 2) {
    for (SIdx off = 0; off < static_cast<SIdx>(stride); ++off) {
      const auto i0 = static_cast<std::uint64_t>(base + off);
      if ((i0 & control_mask) != control_mask) {
        continue;
      }
      const auto i1 = i0 + stride;
      const Amplitude a0{re[i0], im[i0]};
      const Amplitude a1{re[i1], im[i1]};
      const Amplitude b0 = m00 * a0 + m01 * a1;
      const Amplitude b1 = m10 * a0 + m11 * a1;
      re[i0] = b0.real();
      im[i0] = b0.imag();
      re[i1] = b1.real();
      im[i1] = b1.imag();
    }
  }
  v.invalidate_sums();
}

void phase_flip_index(SoaVector& v, Index t) {
  const Index marked[1] = {t};
  phase_flip_indices(v, marked);
}

void phase_rotate_index(SoaVector& v, Index t, double phi) {
  const Index marked[1] = {t};
  phase_rotate_indices(v, marked, phi);
}

void phase_flip_indices(SoaVector& v, std::span<const Index> marked_sorted) {
  double* re = v.re();
  double* im = v.im();
  const std::size_t bs = v.sum_block_size();
  for (std::size_t j = 0; j < marked_sorted.size(); ++j) {
    const Index m = marked_sorted[j];
    PQS_CHECK_MSG(m < v.size(), "marked index out of range");
    PQS_DCHECK(j == 0 || marked_sorted[j - 1] < m);
    // O(1) incremental cache update: flipping a costs the block sum 2a.
    if (bs != 0) {
      v.sum_re()[m / bs] -= 2.0 * re[m];
      v.sum_im()[m / bs] -= 2.0 * im[m];
    }
    re[m] = -re[m];
    im[m] = -im[m];
  }
}

void phase_rotate_indices(SoaVector& v, std::span<const Index> marked_sorted,
                          double phi) {
  const Amplitude factor = std::polar(1.0, phi);
  double* re = v.re();
  double* im = v.im();
  const std::size_t bs = v.sum_block_size();
  for (std::size_t j = 0; j < marked_sorted.size(); ++j) {
    const Index m = marked_sorted[j];
    PQS_CHECK_MSG(m < v.size(), "marked index out of range");
    PQS_DCHECK(j == 0 || marked_sorted[j - 1] < m);
    const Amplitude old{re[m], im[m]};
    const Amplitude next = factor * old;
    if (bs != 0) {
      v.sum_re()[m / bs] += next.real() - old.real();
      v.sum_im()[m / bs] += next.imag() - old.imag();
    }
    re[m] = next.real();
    im[m] = next.imag();
  }
}

void phase_flip_mask_all_ones(SoaVector& v, std::uint64_t mask) {
  PQS_CHECK_MSG(mask < v.size(), "mask out of range");
  double* re = v.re();
  double* im = v.im();
  const auto n = static_cast<SIdx>(v.size());
#ifdef PQS_HAVE_OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (SIdx i = 0; i < n; ++i) {
    const auto u = static_cast<std::uint64_t>(i);
    if ((u & mask) == mask) {
      re[u] = -re[u];
      im[u] = -im[u];
    }
  }
  v.invalidate_sums();
}

void reflect_about_uniform(SoaVector& v) {
  reflect_blocks_about_uniform(v, v.size());
}

void reflect_blocks_about_uniform(SoaVector& v, std::size_t block_size) {
  PQS_CHECK(block_size > 0);
  PQS_CHECK_MSG(v.size() % block_size == 0,
                "block size must divide the state size");
  const Isa isa = active_isa();
  const KernelOps& ops = kernel_ops(isa);
  std::vector<double> sr, si;
  block_sums(v, block_size, ops, /*may_use_cache=*/isa != Isa::kScalar, sr,
             si);
  const double inv = 2.0 / static_cast<double>(block_size);
  for (double& s : sr) {
    s *= inv;  // twice the block mean
  }
  for (double& s : si) {
    s *= inv;
  }
  block_update(v, block_size, ops, /*is_reflect=*/true, sr, si);
}

void rotate_blocks_about_uniform(SoaVector& v, std::size_t block_size,
                                 double phi) {
  PQS_CHECK(block_size > 0);
  PQS_CHECK_MSG(v.size() % block_size == 0,
                "block size must divide the state size");
  const Isa isa = active_isa();
  const KernelOps& ops = kernel_ops(isa);
  std::vector<double> sr, si;
  block_sums(v, block_size, ops, /*may_use_cache=*/isa != Isa::kScalar, sr,
             si);
  const Amplitude factor =
      (std::polar(1.0, phi) - 1.0) / static_cast<double>(block_size);
  for (std::size_t b = 0; b < sr.size(); ++b) {
    const Amplitude add = factor * Amplitude{sr[b], si[b]};
    sr[b] = add.real();
    si[b] = add.imag();
  }
  block_update(v, block_size, ops, /*is_reflect=*/false, sr, si);
}

void reflect_non_target_about_their_mean(SoaVector& v, Index t) {
  PQS_CHECK_MSG(t < v.size(), "target index out of range");
  PQS_CHECK_MSG(v.size() >= 2, "need at least two basis states");
  const Index marked[1] = {t};
  reflect_unmarked_about_their_mean(v, marked);
}

void reflect_unmarked_about_their_mean(SoaVector& v,
                                       std::span<const Index> marked_sorted) {
  PQS_CHECK_MSG(!marked_sorted.empty(), "need at least one marked index");
  PQS_CHECK_MSG(marked_sorted.size() < v.size() - 1,
                "need at least two unmarked states");
  const KernelOps& ops = active_kernel_ops();
  Amplitude sum = sum_all(v);
  std::vector<Amplitude> saved(marked_sorted.size());
  for (std::size_t j = 0; j < marked_sorted.size(); ++j) {
    const Index m = marked_sorted[j];
    PQS_CHECK_MSG(m < v.size(), "marked index out of range");
    if (j > 0) {
      PQS_CHECK_MSG(marked_sorted[j - 1] < m,
                    "marked indices must be sorted and unique");
    }
    saved[j] = v.get(m);
    sum -= saved[j];
  }
  const Amplitude twice_mean =
      2.0 * sum / static_cast<double>(v.size() - marked_sorted.size());
  const std::size_t nc = chunks_for(v.size());
  std::vector<double> pr(nc), pi(nc);
  const auto n = static_cast<SIdx>(nc);
#ifdef PQS_HAVE_OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (SIdx c = 0; c < n; ++c) {
    const std::size_t off = static_cast<std::size_t>(c) * kChunk;
    const std::size_t clen = std::min(kChunk, v.size() - off);
    ops.reflect(v.re() + off, v.im() + off, clen, twice_mean.real(),
                twice_mean.imag(), &pr[static_cast<std::size_t>(c)],
                &pi[static_cast<std::size_t>(c)]);
  }
  for (std::size_t j = 0; j < marked_sorted.size(); ++j) {
    v.set(marked_sorted[j], saved[j]);
  }
  // The restored marked values broke the uniform a <- t - a treatment the
  // accumulation assumed; a once-per-run Step-3 is not worth a fix-up.
  v.invalidate_sums();
}

Amplitude sum_all(const SoaVector& v) {
  const Isa isa = active_isa();
  if (isa != Isa::kScalar && v.sum_block_size() != 0) {
    const std::size_t nb = v.sum_re().size();
    return Amplitude{combine_pairwise(v.sum_re().data(), nb),
                     combine_pairwise(v.sum_im().data(), nb)};
  }
  double sr = 0.0, si = 0.0;
  sum_range(v.re(), v.im(), 0, v.size(), kernel_ops(isa), &sr, &si);
  return Amplitude{sr, si};
}

double norm_squared_range(const SoaVector& v, std::size_t lo,
                          std::size_t len) {
  PQS_CHECK_MSG(lo + len <= v.size(), "range out of bounds");
  const KernelOps& ops = active_kernel_ops();
  const std::size_t nc = chunks_for(len);
  if (nc <= 1) {
    return ops.norm_sq(v.re() + lo, v.im() + lo, len);
  }
  std::vector<double> p(nc);
  const auto n = static_cast<SIdx>(nc);
#ifdef PQS_HAVE_OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (SIdx c = 0; c < n; ++c) {
    const std::size_t off = lo + static_cast<std::size_t>(c) * kChunk;
    const std::size_t clen = std::min(kChunk, lo + len - off);
    p[static_cast<std::size_t>(c)] =
        ops.norm_sq(v.re() + off, v.im() + off, clen);
  }
  return combine_pairwise(p.data(), nc);
}

double norm_squared(const SoaVector& v) {
  return norm_squared_range(v, 0, v.size());
}

Amplitude inner_product(const SoaVector& a, const SoaVector& b) {
  PQS_CHECK_MSG(a.size() == b.size(), "dimension mismatch");
  const KernelOps& ops = active_kernel_ops();
  const std::size_t nc = chunks_for(a.size());
  if (nc <= 1) {
    double sr = 0.0, si = 0.0;
    ops.inner(a.re(), a.im(), b.re(), b.im(), a.size(), &sr, &si);
    return Amplitude{sr, si};
  }
  std::vector<double> pr(nc), pi(nc);
  const auto n = static_cast<SIdx>(nc);
#ifdef PQS_HAVE_OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (SIdx c = 0; c < n; ++c) {
    const auto uc = static_cast<std::size_t>(c);
    const std::size_t off = uc * kChunk;
    const std::size_t clen = std::min(kChunk, a.size() - off);
    ops.inner(a.re() + off, a.im() + off, b.re() + off, b.im() + off, clen,
              &pr[uc], &pi[uc]);
  }
  return Amplitude{combine_pairwise(pr.data(), nc),
                   combine_pairwise(pi.data(), nc)};
}

void scale(SoaVector& v, Amplitude s) {
  const KernelOps& ops = active_kernel_ops();
  const std::size_t nc = chunks_for(v.size());
  const auto n = static_cast<SIdx>(nc);
#ifdef PQS_HAVE_OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (SIdx c = 0; c < n; ++c) {
    const std::size_t off = static_cast<std::size_t>(c) * kChunk;
    const std::size_t clen = std::min(kChunk, v.size() - off);
    ops.scale(v.re() + off, v.im() + off, clen, s.real(), s.imag());
  }
  // A global scale maps every block sum linearly, so keep the cache alive by
  // rescaling it. In floating point s*sum(a) and sum(s*a) can differ by a few
  // ulps, far below the 1e-10 agreement bar; reflect() refreshes the sums from
  // stored data when exact refresh semantics matter.
  if (v.sum_block_size() != 0) {
    for (std::size_t b = 0; b < v.sum_re().size(); ++b) {
      const Amplitude next = s * Amplitude{v.sum_re()[b], v.sum_im()[b]};
      v.sum_re()[b] = next.real();
      v.sum_im()[b] = next.imag();
    }
  }
}

}  // namespace pqs::qsim::kernels

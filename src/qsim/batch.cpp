#include "qsim/batch.h"

#include <algorithm>
#include <sstream>
#include <thread>

#ifdef PQS_HAVE_OPENMP
#include <omp.h>
#endif

#include "common/check.h"

namespace pqs::qsim {

std::string ShotReport::to_string(std::size_t max_rows) const {
  // Sort outcomes by count, descending.
  std::vector<std::pair<Index, std::uint64_t>> rows(counts.begin(),
                                                    counts.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second > b.second || (a.second == b.second && a.first < b.first);
  });
  std::ostringstream os;
  os << "shots=" << shots << " queries/shot=" << queries_per_shot << "\n";
  for (std::size_t i = 0; i < rows.size() && i < max_rows; ++i) {
    os << "  " << rows[i].first << ": " << rows[i].second << " ("
       << (100.0 * static_cast<double>(rows[i].second) /
           static_cast<double>(shots))
       << "%)\n";
  }
  if (rows.size() > max_rows) {
    os << "  ... " << rows.size() - max_rows << " more outcomes\n";
  }
  return os.str();
}

BatchRunner::BatchRunner(BatchOptions options) : options_(options) {
#ifdef PQS_HAVE_OPENMP
  threads_ = options_.threads != 0
                 ? options_.threads
                 : static_cast<unsigned>(omp_get_max_threads());
#else
  threads_ = 1;
#endif
  threads_ = std::max(threads_, 1u);
}

Rng BatchRunner::shot_rng(std::uint64_t shot) const {
  // A splitmix64 step decorrelates (seed, shot) pairs; Rng's own
  // splitmix-based state expansion adds the second mixing layer before the
  // bits become xoshiro output.
  std::uint64_t state = options_.seed ^ (shot * 0x9e3779b97f4a7c15ULL);
  const std::uint64_t mixed = splitmix64(state);
  return Rng(mixed);
}

std::vector<Index> BatchRunner::map_shots(
    std::uint64_t shots,
    const std::function<Index(std::uint64_t, Rng&)>& body) const {
  PQS_CHECK_MSG(shots > 0, "need at least one shot");
  std::vector<Index> outcomes(shots);
  const auto n = static_cast<std::int64_t>(shots);
  RunControl* const control = options_.control;
  // Spans bracket the whole fan-out, OUTSIDE the parallel region — the
  // trace wants "when did the shot sweep run", never a per-shot event.
  if (control != nullptr) {
    control->span("shots.begin");
  }
#ifdef PQS_HAVE_OPENMP
#pragma omp parallel for schedule(static) num_threads(threads_)
#endif
  for (std::int64_t i = 0; i < n; ++i) {
    // Exceptions cannot cross an OpenMP region: skip the remaining bodies
    // and throw once, below, after the join.
    if (control != nullptr && control->cancelled()) {
      continue;
    }
    const auto shot = static_cast<std::uint64_t>(i);
    Rng rng = shot_rng(shot);
    outcomes[static_cast<std::size_t>(i)] = body(shot, rng);
    if (control != nullptr) {
      control->add_work_done();
    }
  }
  checkpoint(control);
  if (control != nullptr) {
    control->span("shots.end");
  }
  return outcomes;
}

ShotReport BatchRunner::tally(const std::vector<Index>& outcomes,
                              std::uint64_t queries_per_shot) {
  ShotReport report;
  report.shots = outcomes.size();
  report.queries_per_shot = queries_per_shot;
  for (const Index outcome : outcomes) {
    ++report.counts[outcome];
  }
  std::uint64_t best = 0;
  for (const auto& [outcome, count] : report.counts) {
    if (count > best) {  // ties resolve to the smallest outcome
      best = count;
      report.mode = outcome;
    }
  }
  if (report.shots > 0) {
    report.mode_frequency =
        static_cast<double>(best) / static_cast<double>(report.shots);
  }
  return report;
}

ShotReport BatchRunner::sample_shots(const StateVector& state,
                                     std::uint64_t shots,
                                     std::uint64_t queries_per_shot) const {
  return tally(map_shots(shots,
                         [&state](std::uint64_t, Rng& rng) {
                           return state.sample(rng);
                         }),
               queries_per_shot);
}

ShotReport BatchRunner::sample_shots(const Backend& backend,
                                     std::uint64_t shots,
                                     std::uint64_t queries_per_shot) const {
  return tally(map_shots(shots,
                         [&backend](std::uint64_t, Rng& rng) {
                           return backend.sample(rng);
                         }),
               queries_per_shot);
}

ShotReport BatchRunner::sample_block_shots(
    const StateVector& state, unsigned k, std::uint64_t shots,
    std::uint64_t queries_per_shot) const {
  return tally(map_shots(shots,
                         [&state, k](std::uint64_t, Rng& rng) {
                           return state.sample_block(k, rng);
                         }),
               queries_per_shot);
}

ShotReport BatchRunner::sample_block_shots(
    const Backend& backend, std::uint64_t shots,
    std::uint64_t queries_per_shot) const {
  return tally(map_shots(shots,
                         [&backend](std::uint64_t, Rng& rng) {
                           return backend.sample_block(rng);
                         }),
               queries_per_shot);
}

}  // namespace pqs::qsim

// Stochastic Pauli noise via quantum trajectories.
//
// The paper assumes a perfect oracle; a practical question for any adopter
// is how fast the three-step algorithm's advantage degrades when each oracle
// call is followed by noise. We model the standard single-qubit Pauli
// channels by trajectory sampling: with probability p per qubit, apply a
// random Pauli (depolarizing) or Z (dephasing) after each noisy operation.
// Averaging success over trajectories converges to the density-matrix
// result; tests check the analytically solvable single-qubit cases.
//
// Two engines implement the channel (see qsim/backend.h):
//   * dense — literal Pauli gates on the amplitude array (exact trajectories);
//   * symmetry — the block-class density argument: each symmetry class keeps
//     a coherent mean and a total mass, and every Pauli updates the class
//     moments, which lets noise studies run at n = 32+ qubits.
// The free function below is the historical StateVector form, used by the
// Simulator facade and the dense engine.
#pragma once

#include <cmath>
#include <cstdint>
#include <string_view>

#include "common/random.h"
#include "qsim/state_vector.h"

namespace pqs::qsim {

enum class NoiseKind {
  kNone,
  kDepolarizing,  ///< X, Y, or Z each with probability p/3 per qubit
  kDephasing,     ///< Z with probability p per qubit
  kBitFlip,       ///< X with probability p per qubit
};

struct NoiseModel {
  NoiseKind kind = NoiseKind::kNone;
  /// Per-qubit error probability applied at each noise point.
  double probability = 0.0;

  bool enabled() const {
    return kind != NoiseKind::kNone && probability > 0.0;
  }

  /// True iff 0 <= probability <= 1 (NaN fails both comparisons).
  bool valid() const { return probability >= 0.0 && probability <= 1.0; }

  /// Throws CheckFailure unless valid(). Call ONCE at driver entry — a
  /// negative probability would otherwise make every Bernoulli draw fail
  /// and silently report a noiseless run as noisy. The per-trajectory
  /// apply_noise paths assume a validated model and keep no checks in the
  /// hot loop.
  void validate() const;
};

/// Sample one trajectory step: for each qubit, with probability p inject
/// the channel's Pauli. Mutates the state; returns the number of injected
/// errors (0 on the no-error trajectory). The count includes exactly the
/// Pauli gates actually applied. Precondition: model.validate() passed
/// (checked here once per call; drivers running many trajectories validate
/// at entry and the per-qubit loop is check-free).
std::uint64_t apply_noise(StateVector& state, const NoiseModel& model,
                          Rng& rng);

/// Which Pauli a channel injects.
enum class Pauli { kX, kY, kZ };

/// Visit every qubit hit by one Bernoulli(p) sweep over n_qubits qubits,
/// in increasing order, without drawing per qubit: the gap to the next hit
/// is geometric, so one uniform draw per HIT (plus one to terminate)
/// replaces n_qubits draws. At the p ~ 1e-2..1e-5 rates noise studies
/// sweep, this is what keeps 40k-query trajectories at n = 32 cheap.
/// Identically distributed to the per-qubit loop (not draw-for-draw
/// identical). Returns the number of hits. Precondition: 0 <= p <= 1.
template <typename Visit>
std::uint64_t for_each_error_qubit(unsigned n_qubits, double p, Rng& rng,
                                   Visit&& visit) {
  if (p <= 0.0) {
    return 0;
  }
  if (p >= 1.0) {
    for (unsigned q = 0; q < n_qubits; ++q) {
      visit(q);
    }
    return n_qubits;
  }
  const double log_miss = std::log1p(-p);  // < 0
  std::uint64_t injected = 0;
  std::uint64_t pos = 0;
  while (pos < n_qubits) {
    // Geometric number of unaffected qubits before the next hit.
    const double gap = std::floor(std::log1p(-rng.uniform01()) / log_miss);
    if (gap >= static_cast<double>(n_qubits - pos)) {
      break;
    }
    pos += static_cast<std::uint64_t>(gap);
    visit(static_cast<unsigned>(pos));
    ++pos;
    ++injected;
  }
  return injected;
}

/// The channel's Pauli for one injection (uniform X/Y/Z for depolarizing).
/// Both engines draw through this so they consume identical randomness.
/// Checked: kind must be a real channel, not kNone.
Pauli sample_pauli_kind(NoiseKind kind, Rng& rng);

/// The same draw as a gate matrix (the dense engine's form).
Gate2 sample_pauli(NoiseKind kind, Rng& rng);

/// Human-readable channel name.
const char* noise_kind_name(NoiseKind kind);

/// Parse "none" / "depolarizing" / "dephasing" / "bitflip" (the --noise CLI
/// flag). Throws CheckFailure on anything else.
NoiseKind parse_noise_kind(std::string_view name);

}  // namespace pqs::qsim

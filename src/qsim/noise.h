// Stochastic Pauli noise via quantum trajectories.
//
// The paper assumes a perfect oracle; a practical question for any adopter
// is how fast the three-step algorithm's advantage degrades when each oracle
// call is followed by noise. We model the standard single-qubit Pauli
// channels by trajectory sampling: with probability p per qubit, apply a
// random Pauli (depolarizing) or Z (dephasing) after each noisy operation.
// Averaging success over trajectories converges to the density-matrix
// result; tests check the analytically solvable single-qubit cases.
#pragma once

#include <cstdint>

#include "common/random.h"
#include "qsim/state_vector.h"

namespace pqs::qsim {

enum class NoiseKind {
  kNone,
  kDepolarizing,  ///< X, Y, or Z each with probability p/3 per qubit
  kDephasing,     ///< Z with probability p per qubit
  kBitFlip,       ///< X with probability p per qubit
};

struct NoiseModel {
  NoiseKind kind = NoiseKind::kNone;
  /// Per-qubit error probability applied at each noise point.
  double probability = 0.0;

  bool enabled() const {
    return kind != NoiseKind::kNone && probability > 0.0;
  }
};

/// Sample one trajectory step: for each qubit, with probability p inject
/// the channel's Pauli. Mutates the state; returns the number of injected
/// errors (0 on the no-error trajectory).
std::uint64_t apply_noise(StateVector& state, const NoiseModel& model,
                          Rng& rng);

/// Human-readable channel name.
const char* noise_kind_name(NoiseKind kind);

}  // namespace pqs::qsim

// Two-qubit gates: the 4x4 layer completing the simulator's gate set.
//
// The reproduction itself needs only reflections and single-qubit layers,
// but a simulator substrate a downstream user would adopt needs entangling
// gates; the gate-level oracle constructions (bit oracle as CNOT cascades)
// and the tests exercising them live on this layer.
#pragma once

#include <array>
#include <span>
#include <string>

#include "qsim/gates.h"
#include "qsim/types.h"

namespace pqs::qsim {

/// A 4x4 unitary on an ordered qubit pair (q_high, q_low): basis order
/// |q_high q_low> = |00>, |01>, |10>, |11>.
struct Gate4 {
  std::array<std::array<Amplitude, 4>, 4> m;
  std::string name;

  Gate4 compose(const Gate4& first) const;
  Gate4 adjoint() const;
  double distance(const Gate4& other) const;
  double unitarity_defect() const;
};

namespace gates {

/// Identity on two qubits.
Gate4 II();
/// Tensor product a (on the high qubit) (x) b (on the low qubit).
Gate4 tensor(const Gate2& a, const Gate2& b);
/// CNOT with the HIGH qubit as control, LOW as target.
Gate4 CNOT();
/// Controlled-Z (symmetric).
Gate4 CZ();
/// Controlled phase diag(1,1,1,e^{i phi}).
Gate4 CPhase(double phi);
/// SWAP.
Gate4 SWAP();
/// iSWAP.
Gate4 ISWAP();

}  // namespace gates

namespace kernels {

/// Apply a 4x4 unitary to qubits (q_high, q_low) of an n-qubit state.
/// q_high and q_low are arbitrary distinct qubit indices; the gate's basis
/// convention is |q_high q_low>.
void apply_gate2(std::span<Amplitude> state, unsigned n_qubits,
                 unsigned q_high, unsigned q_low, const Gate4& g);

}  // namespace kernels

}  // namespace pqs::qsim

// Simulator facade: the convenience front-end a downstream user reaches for
// first. Wraps circuit execution with seeding, repeated-shot sampling,
// optional noise, and aggregated results; the algorithm modules underneath
// use the lower-level APIs directly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "qsim/circuit.h"
#include "qsim/noise.h"
#include "qsim/state_vector.h"

namespace pqs::qsim {

/// Aggregated result of a multi-shot circuit execution.
struct ShotReport {
  std::map<Index, std::uint64_t> counts;  ///< outcome -> occurrences
  std::uint64_t shots = 0;
  std::uint64_t queries_per_shot = 0;
  /// Most frequent outcome and its empirical probability.
  Index mode = 0;
  double mode_frequency = 0.0;

  std::string to_string(std::size_t max_rows = 8) const;
};

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 2005);

  /// Deterministic reseed (each run* call consumes randomness in order).
  void reseed(std::uint64_t seed);

  /// Access the underlying generator (e.g. to share it with algorithms).
  Rng& rng() { return rng_; }

  /// Attach a noise model applied after every oracle call of run_shots /
  /// run_state (trajectory sampling).
  void set_noise(const NoiseModel& model) { noise_ = model; }
  const NoiseModel& noise() const { return noise_; }

  /// One noiseless execution returning the full pre-measurement state.
  StateVector run_state(const Circuit& circuit, const OracleView& oracle);

  /// Repeated execute-and-measure. With noise attached, each shot is an
  /// independent trajectory (fresh Pauli samples).
  ShotReport run_shots(const Circuit& circuit, const OracleView& oracle,
                       std::uint64_t shots);

  /// Shot sampling of only the first k bits (block measurement).
  ShotReport run_block_shots(const Circuit& circuit, const OracleView& oracle,
                             unsigned k, std::uint64_t shots);

 private:
  StateVector execute(const Circuit& circuit, const OracleView& oracle);

  Rng rng_;
  NoiseModel noise_;
};

}  // namespace pqs::qsim

// Simulator facade: the convenience front-end a downstream user reaches for
// first. Wraps circuit execution with seeding, repeated-shot sampling,
// optional noise, backend selection, and aggregated results; the algorithm
// modules underneath use the lower-level APIs directly.
//
// Backend selection (set_backend): kAuto/kDense execute circuits on the
// dense state vector exactly as before; kSymmetry executes symmetric
// circuits (oracle + diffusion ops on one block granularity, single-target
// oracles) on the O(K) SymmetryBackend — and rejects features (run_state)
// that need full amplitude vectors. Noise follows the backend support
// matrix (qsim::backend_supports_noise): the dense engine samples literal
// Pauli trajectories, the symmetry engine runs the class-moment channel
// when the spec allows it (power-of-two N and K, unique target).
//
// Shot execution routes through qsim::BatchRunner: shots fan out across
// OpenMP threads with independent per-shot RNG streams, so reports are
// reproducible from the Simulator seed for any thread count (set_batch).
#pragma once

#include <cstdint>

#include "common/random.h"
#include "qsim/backend.h"
#include "qsim/batch.h"
#include "qsim/circuit.h"
#include "qsim/noise.h"
#include "qsim/state_vector.h"

namespace pqs::qsim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 2005);

  /// Deterministic reseed (each run* call consumes randomness in order).
  void reseed(std::uint64_t seed);

  /// Access the underlying generator (e.g. to share it with algorithms).
  Rng& rng() { return rng_; }

  /// Attach a noise model applied after every oracle call of run_shots /
  /// run_block_shots (trajectory sampling). Supported on BOTH engines per
  /// qsim::backend_supports_noise — dense runs exact Pauli trajectories,
  /// symmetry the class-moment channel; an unsupported engine/spec pair
  /// fails loudly before any shot runs. run_state stays dense-only (it
  /// materializes the full amplitude vector).
  void set_noise(const NoiseModel& model) { noise_ = model; }
  const NoiseModel& noise() const { return noise_; }

  /// Choose the simulation engine for circuit execution (default kAuto).
  void set_backend(BackendKind kind) { backend_kind_ = kind; }
  BackendKind backend_kind() const { return backend_kind_; }

  /// Configure the shot fan-out (thread count). The seed field of the
  /// options is ignored: batch seeds derive from the Simulator stream so
  /// reseed() keeps controlling everything.
  void set_batch(const BatchOptions& options) { batch_ = options; }
  const BatchOptions& batch() const { return batch_; }

  /// One noiseless execution returning the full pre-measurement state
  /// (dense by definition; rejects an explicit symmetry backend).
  StateVector run_state(const Circuit& circuit, const OracleView& oracle);

  /// Repeated execute-and-measure. With noise attached, each shot is an
  /// independent trajectory (fresh Pauli samples).
  ShotReport run_shots(const Circuit& circuit, const OracleView& oracle,
                       std::uint64_t shots);

  /// Shot sampling of only the first k bits (block measurement).
  ShotReport run_block_shots(const Circuit& circuit, const OracleView& oracle,
                             unsigned k, std::uint64_t shots);

 private:
  StateVector execute(const Circuit& circuit, const OracleView& oracle,
                      Rng& rng);
  /// The symmetric spec for this circuit/oracle pair, or nullopt when the
  /// effective backend is dense (kAuto always resolves dense here: every
  /// circuit-sized state fits in memory, and dense is bit-compatible with
  /// the historical behavior). Checked: an explicit kSymmetry request on a
  /// non-symmetric circuit throws, as does one whose spec cannot run the
  /// attached noise model (backend_supports_noise).
  std::optional<BackendSpec> symmetry_spec_for(
      const Circuit& circuit, const OracleView& oracle,
      std::optional<unsigned> measure_k) const;
  BatchRunner make_runner();

  Rng rng_;
  NoiseModel noise_;
  BackendKind backend_kind_ = BackendKind::kAuto;
  BatchOptions batch_;
};

}  // namespace pqs::qsim

#include "qsim/gates.h"

#include <cmath>

#include "common/math.h"

namespace pqs::qsim {

namespace {
constexpr Amplitude kI{0.0, 1.0};
}

Gate2 Gate2::compose(const Gate2& first) const {
  Gate2 out;
  out.name = name + "*" + first.name;
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) {
      out.m[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] =
          m[static_cast<std::size_t>(r)][0] *
              first.m[0][static_cast<std::size_t>(c)] +
          m[static_cast<std::size_t>(r)][1] *
              first.m[1][static_cast<std::size_t>(c)];
    }
  }
  return out;
}

Gate2 Gate2::adjoint() const {
  Gate2 out;
  out.name = name + "^dag";
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 2; ++c) {
      out.m[r][c] = std::conj(m[c][r]);
    }
  }
  return out;
}

double Gate2::distance(const Gate2& other) const {
  double d2 = 0.0;
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 2; ++c) {
      d2 += std::norm(m[r][c] - other.m[r][c]);
    }
  }
  return std::sqrt(d2);
}

double Gate2::unitarity_defect() const {
  const Gate2 prod = compose(adjoint());
  Gate2 eye = gates::I();
  return prod.distance(eye);
}

namespace gates {

Gate2 I() { return Gate2{{{{1.0, 0.0}, {0.0, 1.0}}}, "I"}; }

Gate2 H() {
  const double s = 1.0 / std::sqrt(2.0);
  return Gate2{{{{s, s}, {s, -s}}}, "H"};
}

Gate2 X() { return Gate2{{{{0.0, 1.0}, {1.0, 0.0}}}, "X"}; }

Gate2 Y() { return Gate2{{{{0.0, -kI}, {kI, 0.0}}}, "Y"}; }

Gate2 Z() { return Gate2{{{{1.0, 0.0}, {0.0, -1.0}}}, "Z"}; }

Gate2 S() { return Gate2{{{{1.0, 0.0}, {0.0, kI}}}, "S"}; }

Gate2 Sdg() { return Gate2{{{{1.0, 0.0}, {0.0, -kI}}}, "Sdg"}; }

Gate2 T() {
  return Gate2{{{{1.0, 0.0}, {0.0, std::polar(1.0, kQuarterPi)}}}, "T"};
}

Gate2 Tdg() {
  return Gate2{{{{1.0, 0.0}, {0.0, std::polar(1.0, -kQuarterPi)}}}, "Tdg"};
}

Gate2 Phase(double phi) {
  return Gate2{{{{1.0, 0.0}, {0.0, std::polar(1.0, phi)}}}, "P"};
}

Gate2 Rx(double theta) {
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  return Gate2{{{{c, -kI * s}, {-kI * s, c}}}, "Rx"};
}

Gate2 Ry(double theta) {
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  return Gate2{{{{c, -s}, {s, c}}}, "Ry"};
}

Gate2 Rz(double theta) {
  return Gate2{{{{std::polar(1.0, -theta / 2.0), 0.0},
                 {0.0, std::polar(1.0, theta / 2.0)}}},
               "Rz"};
}

Gate2 U(double theta, double phi, double lambda) {
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  return Gate2{{{{Amplitude{c, 0.0}, -std::polar(1.0, lambda) * s},
                 {std::polar(1.0, phi) * s, std::polar(1.0, phi + lambda) * c}}},
               "U"};
}

}  // namespace gates

}  // namespace pqs::qsim

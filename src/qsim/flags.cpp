#include "qsim/flags.h"

#include "common/check.h"

namespace pqs::qsim {

EngineFlags parse_engine_flags(Cli& cli) {
  EngineFlags flags;
  flags.backend = parse_backend_kind(cli.get_string(
      "backend", "auto", "simulation engine: auto | dense | symmetry"));
  return flags;
}

EngineFlags parse_engine_flags_batched(Cli& cli) {
  EngineFlags flags = parse_engine_flags(cli);
  flags.batch = BatchOptions{
      .threads = static_cast<unsigned>(cli.get_int(
          "batch", 0, "shot fan-out threads (0 = all hardware threads)"))};
  return flags;
}

EngineFlags parse_engine_flags_with_noise(Cli& cli) {
  EngineFlags flags = parse_engine_flags_batched(cli);
  flags.noise.kind = parse_noise_kind(cli.get_string(
      "noise", "depolarizing",
      "noise channel: none | depolarizing | dephasing | bitflip"));
  flags.noise.probability = cli.get_double(
      "noise-p", 0.0, "per-qubit error rate after each oracle call");
  flags.noise.validate();
  // A disabled channel with a nonzero rate would run clean while the
  // output reports noisy rows; refuse the contradiction loudly.
  PQS_CHECK_MSG(
      flags.noise.kind != NoiseKind::kNone || flags.noise.probability == 0.0,
      "--noise none contradicts a nonzero --noise-p (pick a channel, or "
      "drop --noise-p)");
  return flags;
}

}  // namespace pqs::qsim

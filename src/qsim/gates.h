// Single-qubit gate matrices and the standard gate set.
#pragma once

#include <array>
#include <string>

#include "qsim/types.h"

namespace pqs::qsim {

/// A 2x2 unitary acting on one qubit. Row-major: m[row][col].
struct Gate2 {
  std::array<std::array<Amplitude, 2>, 2> m;
  std::string name;

  /// Matrix product: (*this) applied after `first` equals compose(first).
  Gate2 compose(const Gate2& first) const;

  /// Conjugate transpose.
  Gate2 adjoint() const;

  /// Frobenius distance to another gate (for tests).
  double distance(const Gate2& other) const;

  /// || G G^dag - I ||_F ; ~0 for unitary matrices.
  double unitarity_defect() const;
};

namespace gates {

/// Identity.
Gate2 I();
/// Hadamard.
Gate2 H();
/// Pauli gates.
Gate2 X();
Gate2 Y();
Gate2 Z();
/// Phase gates S = diag(1, i), T = diag(1, e^{i pi/4}) and their adjoints.
Gate2 S();
Gate2 Sdg();
Gate2 T();
Gate2 Tdg();
/// diag(1, e^{i phi}).
Gate2 Phase(double phi);
/// Rotations about the Bloch axes: R_a(t) = exp(-i t A / 2).
Gate2 Rx(double theta);
Gate2 Ry(double theta);
Gate2 Rz(double theta);
/// General U(theta, phi, lambda) in the OpenQASM convention.
Gate2 U(double theta, double phi, double lambda);

}  // namespace gates

}  // namespace pqs::qsim

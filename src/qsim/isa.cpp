#include "qsim/isa.h"

#include <atomic>
#include <cstdlib>
#include <string>

#include "common/check.h"
#include "qsim/kernels_ops.h"

namespace pqs::qsim {

std::string_view isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
  }
  return "unknown";
}

Isa parse_isa(std::string_view name) {
  if (name == "scalar") {
    return Isa::kScalar;
  }
  if (name == "avx2") {
    return Isa::kAvx2;
  }
  if (name == "avx512") {
    return Isa::kAvx512;
  }
  throw CheckFailure("unknown ISA '" + std::string(name) +
                     "' (expected scalar, avx2, or avx512)");
}

bool isa_compiled(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
      return kernels::avx2_kernels_compiled();
    case Isa::kAvx512:
      return kernels::avx512_kernels_compiled();
  }
  return false;
}

namespace {

bool cpu_supports(Isa isa) {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
    case Isa::kAvx512:
      return __builtin_cpu_supports("avx512f");
  }
  return false;
#else
  return isa == Isa::kScalar;
#endif
}

/// The test/bench override. Stored as an atomic int (-1 = no override) so a
/// force_isa() racing a kernel dispatch on another thread is merely a stale
/// read, not UB; tests are still expected to set it before spawning work.
std::atomic<int>& forced_isa_raw() {
  static std::atomic<int> forced{-1};
  return forced;
}

Isa env_or_best_isa() {
  // getenv is only MT-unsafe against a concurrent setenv; this process
  // never writes its environment, so the read-only access is safe.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* env = std::getenv("PQS_ISA"); env != nullptr && *env != 0) {
    const Isa isa = parse_isa(env);
    PQS_CHECK_MSG(isa_supported(isa),
                  "PQS_ISA requests tier '" + std::string(isa_name(isa)) +
                      "' which is not supported on this machine/build");
    return isa;
  }
  return best_supported_isa();
}

}  // namespace

bool isa_supported(Isa isa) { return isa_compiled(isa) && cpu_supports(isa); }

Isa best_supported_isa() {
  if (isa_supported(Isa::kAvx512)) {
    return Isa::kAvx512;
  }
  if (isa_supported(Isa::kAvx2)) {
    return Isa::kAvx2;
  }
  return Isa::kScalar;
}

std::vector<Isa> supported_isas() {
  std::vector<Isa> out;
  for (const Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kAvx512}) {
    if (isa_supported(isa)) {
      out.push_back(isa);
    }
  }
  return out;
}

Isa active_isa() {
  const int forced = forced_isa_raw().load(std::memory_order_relaxed);
  if (forced >= 0) {
    return static_cast<Isa>(forced);
  }
  // PQS_ISA is re-read on every call so a test harness that sets it before
  // spawning each child process sees the expected tier; the getenv cost is
  // noise next to the O(N) work each dispatch guards.
  return env_or_best_isa();
}

void force_isa(std::optional<Isa> isa) {
  if (isa.has_value()) {
    PQS_CHECK_MSG(isa_supported(*isa),
                  "force_isa: tier '" + std::string(isa_name(*isa)) +
                      "' is not supported on this machine/build");
  }
  forced_isa_raw().store(isa.has_value() ? static_cast<int>(*isa) : -1,
                         std::memory_order_relaxed);
}

}  // namespace pqs::qsim

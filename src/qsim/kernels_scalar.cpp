// Scalar tier of the SoA segment primitives (qsim/kernels_ops.h).
//
// Plain C++ loops with `omp simd` hints: this is the portable baseline every
// other tier must agree with to 1e-10, and the tier CI pins with
// PQS_ISA=scalar. Kept deliberately straight-line — when debugging a kernel
// discrepancy this file is the specification.
#include <cstddef>

#include "qsim/kernels_ops.h"

namespace pqs::qsim::kernels {

namespace {

void scalar_sum(const double* re, const double* im, std::size_t n,
                double* sum_re, double* sum_im) {
  double sr = 0.0, si = 0.0;
#ifdef PQS_HAVE_OPENMP
#pragma omp simd reduction(+ : sr, si)
#endif
  for (std::size_t i = 0; i < n; ++i) {
    sr += re[i];
    si += im[i];
  }
  *sum_re = sr;
  *sum_im = si;
}

double scalar_norm_sq(const double* re, const double* im, std::size_t n) {
  double s = 0.0;
#ifdef PQS_HAVE_OPENMP
#pragma omp simd reduction(+ : s)
#endif
  for (std::size_t i = 0; i < n; ++i) {
    s += re[i] * re[i] + im[i] * im[i];
  }
  return s;
}

void scalar_inner(const double* a_re, const double* a_im, const double* b_re,
                  const double* b_im, std::size_t n, double* sum_re,
                  double* sum_im) {
  double sr = 0.0, si = 0.0;
#ifdef PQS_HAVE_OPENMP
#pragma omp simd reduction(+ : sr, si)
#endif
  for (std::size_t i = 0; i < n; ++i) {
    sr += a_re[i] * b_re[i] + a_im[i] * b_im[i];
    si += a_re[i] * b_im[i] - a_im[i] * b_re[i];
  }
  *sum_re = sr;
  *sum_im = si;
}

void scalar_reflect(double* re, double* im, std::size_t n, double t_re,
                    double t_im, double* sum_re, double* sum_im) {
  double sr = 0.0, si = 0.0;
#ifdef PQS_HAVE_OPENMP
#pragma omp simd reduction(+ : sr, si)
#endif
  for (std::size_t i = 0; i < n; ++i) {
    const double r = t_re - re[i];
    const double s = t_im - im[i];
    re[i] = r;
    im[i] = s;
    sr += r;
    si += s;
  }
  *sum_re = sr;
  *sum_im = si;
}

void scalar_add(double* re, double* im, std::size_t n, double c_re,
                double c_im, double* sum_re, double* sum_im) {
  double sr = 0.0, si = 0.0;
#ifdef PQS_HAVE_OPENMP
#pragma omp simd reduction(+ : sr, si)
#endif
  for (std::size_t i = 0; i < n; ++i) {
    const double r = re[i] + c_re;
    const double s = im[i] + c_im;
    re[i] = r;
    im[i] = s;
    sr += r;
    si += s;
  }
  *sum_re = sr;
  *sum_im = si;
}

void scalar_scale(double* re, double* im, std::size_t n, double s_re,
                  double s_im) {
#ifdef PQS_HAVE_OPENMP
#pragma omp simd
#endif
  for (std::size_t i = 0; i < n; ++i) {
    const double r = re[i];
    const double s = im[i];
    re[i] = s_re * r - s_im * s;
    im[i] = s_re * s + s_im * r;
  }
}

void scalar_gate1(double* re0, double* im0, double* re1, double* im1,
                  std::size_t n, const double m[8]) {
  const double m00r = m[0], m00i = m[1], m01r = m[2], m01i = m[3];
  const double m10r = m[4], m10i = m[5], m11r = m[6], m11i = m[7];
#ifdef PQS_HAVE_OPENMP
#pragma omp simd
#endif
  for (std::size_t i = 0; i < n; ++i) {
    const double a0r = re0[i], a0i = im0[i];
    const double a1r = re1[i], a1i = im1[i];
    re0[i] = m00r * a0r - m00i * a0i + m01r * a1r - m01i * a1i;
    im0[i] = m00r * a0i + m00i * a0r + m01r * a1i + m01i * a1r;
    re1[i] = m10r * a0r - m10i * a0i + m11r * a1r - m11i * a1i;
    im1[i] = m10r * a0i + m10i * a0r + m11r * a1i + m11i * a1r;
  }
}

}  // namespace

const KernelOps& scalar_kernel_ops() {
  static const KernelOps ops{
      .sum = scalar_sum,
      .norm_sq = scalar_norm_sq,
      .inner = scalar_inner,
      .reflect = scalar_reflect,
      .add = scalar_add,
      .scale = scalar_scale,
      .gate1 = scalar_gate1,
  };
  return ops;
}

}  // namespace pqs::qsim::kernels

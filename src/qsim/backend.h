// Pluggable simulation backends.
//
// Every algorithm in this repository drives the same handful of operators:
// the oracle phase I_t, the global diffusion I0 = 2|psi0><psi0| - I, the
// per-block diffusion I_[K] (x) I0,[N/K], their generalized (phase-rotation)
// forms, and the Step-3 "invert the unmarked amplitudes about their mean".
// `Backend` abstracts those operators away from the state representation so
// the algorithm layers (grover/, partial/, reduction/, zalka/) can dispatch
// between engines at runtime:
//
//   DenseBackend     the exact O(N)-per-operation amplitude array, built on
//                    qsim/kernels. Works for ANY database size N (the kernels
//                    are dimension-agnostic; blocks are the K contiguous
//                    ranges of N/K addresses), supports every operator and
//                    arbitrary marked sets, and is the only engine that can
//                    expose full amplitude vectors (snapshots, noise, the
//                    Zalka hybrid argument). Capacity-limited to
//                    N <= 2^kMaxQubits.
//
//   SymmetryBackend  the O(K)-per-operation engine. The partial-search state
//                    is fully block-symmetric: at every point of the
//                    algorithm the N amplitudes take only three distinct
//                    values — one on the marked set, one on the rest of the
//                    target block, one on all other blocks (Section 3's
//                    invariant subspace, here tracked as literal per-state
//                    amplitudes rather than subspace coordinates, so results
//                    match DenseBackend to machine precision). Every operator
//                    above preserves that structure, which makes huge-N
//                    simulation (n = 60+ qubits) exact and effectively free.
//
// Pick an engine with BackendKind: kDense / kSymmetry force one, kAuto takes
// the dense engine whenever the state fits in memory (bit-identical to the
// pre-backend code paths) and the symmetry engine beyond that. Construction
// goes through make_backend(kind, spec).
//
// Thread-safety: backends are single-owner mutable state, like StateVector.
// The batched execution layer (qsim/batch.h) gives each shot its own backend
// or samples a const backend with per-shot RNG streams.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "qsim/circuit.h"
#include "qsim/noise.h"
#include "qsim/types.h"

namespace pqs::qsim {

/// Which simulation engine to use.
enum class BackendKind {
  kAuto,      ///< dense when N fits in memory, symmetry beyond
  kDense,     ///< full amplitude array, O(N) per operation
  kSymmetry,  ///< block-symmetric amplitudes, O(K) per operation
};

/// Parse "auto" / "dense" / "symmetry" (as the --backend CLI flag does).
/// Throws CheckFailure on anything else.
BackendKind parse_backend_kind(std::string_view name);
std::string to_string(BackendKind kind);

/// Largest database a DenseBackend will allocate (matches StateVector's
/// qubit ceiling).
inline constexpr std::uint64_t kMaxDenseItems = std::uint64_t{1} << kMaxQubits;

/// The kAuto dense -> symmetry crossover: databases up to this many items
/// resolve to the dense engine (bit-identical to the historical code paths),
/// larger ones to the O(K) symmetry engine. The ONE definition of the
/// cutoff — module headers (grover/grover.h, partial/grk.h, ...) reference
/// this function instead of restating the 2^30 constant.
constexpr std::uint64_t auto_backend_cutoff() { return kMaxDenseItems; }

/// The static shape of a simulation: database size, block structure, and the
/// marked set. Blocks are the K contiguous ranges of N/K addresses; for the
/// power-of-two case this coincides with the paper's "first k bits of the
/// address" convention (block of x = x >> (n - k)).
struct BackendSpec {
  std::uint64_t n_items = 0;   ///< N >= 2; any value, not only powers of two
  std::uint64_t n_blocks = 1;  ///< K >= 1; must divide N
  std::vector<Index> marked;   ///< sorted, unique, non-empty

  /// The paper's setting: a unique marked address.
  static BackendSpec single_target(std::uint64_t n_items,
                                   std::uint64_t n_blocks, Index target);
};

/// The engine interface. All operators are in-place on the backend's state;
/// `reset_uniform` restores |psi0>. Query accounting stays with the caller
/// (oracle::Database's meter), exactly as with the raw kernels.
class Backend {
 public:
  explicit Backend(BackendSpec spec);
  virtual ~Backend() = default;

  Backend(const Backend&) = delete;
  Backend& operator=(const Backend&) = delete;

  virtual BackendKind kind() const = 0;
  const BackendSpec& spec() const { return spec_; }
  std::uint64_t num_items() const { return spec_.n_items; }
  std::uint64_t num_blocks() const { return spec_.n_blocks; }
  std::uint64_t block_size() const { return spec_.n_items / spec_.n_blocks; }
  std::uint64_t num_marked() const { return spec_.marked.size(); }
  Index block_of(Index x) const { return x / block_size(); }
  /// The block holding the first marked address.
  Index target_block() const { return block_of(spec_.marked.front()); }

  // -- state preparation --
  /// |psi0> = (1/sqrt(N)) sum_x |x>.
  virtual void reset_uniform() = 0;

  // -- operators (the caller meters queries) --
  /// I_t generalized to the marked set: flip the sign of every marked state.
  virtual void apply_oracle() = 0;
  /// Generalized oracle: multiply marked states by e^{i phi}.
  virtual void apply_oracle_phase(double phi) = 0;
  /// I0 = 2|psi0><psi0| - I.
  virtual void apply_global_diffusion() = 0;
  /// I + (e^{i phi} - 1)|psi0><psi0| (phi = pi recovers -I0 up to phase).
  virtual void apply_global_rotation(double phi) = 0;
  /// I_[K] (x) I0,[N/K] over the spec's K blocks.
  virtual void apply_block_diffusion() = 0;
  /// Generalized per-block rotation by phase phi (sure-success variant).
  virtual void apply_block_rotation(double phi) = 0;
  /// Step 3: keep the marked amplitudes, invert every other amplitude about
  /// their common mean.
  virtual void apply_step3() = 0;
  /// Multiply the whole state by a fixed phase.
  virtual void apply_global_phase(Amplitude phase) = 0;

  // -- noise channels (trajectory sampling) --
  /// Sample one noise-trajectory step: for each address qubit, with
  /// probability model.probability inject the channel's Pauli. Returns the
  /// number of injected errors. The dense engine applies literal Pauli
  /// gates (exact trajectories); the symmetry engine updates per-class
  /// moments — each symmetry class carries a coherent mean amplitude plus
  /// an incoherent residual mass, every coherent operator transforms the
  /// means exactly and leaves the residue invariant, and each Pauli maps
  /// the class moments the way it maps the underlying amplitudes (exact
  /// for the first error on a fully coherent state, exchangeable-residue
  /// approximation afterwards; validated against dense trajectories to
  /// statistical tolerance in tests). The model's rate is validated here
  /// (two comparisons — an out-of-range rate throws rather than silently
  /// reading as a clean run); drivers additionally validate once at entry
  /// so the error surfaces before any trial work. Checked: the spec must
  /// support noise — see require_noise_support.
  virtual std::uint64_t apply_noise(const NoiseModel& model, Rng& rng);

  // -- gate-level ops (dense only; the defaults throw CheckFailure) --
  virtual void apply_gate1(unsigned q, const Gate2& g);
  virtual void apply_controlled_gate1(std::uint64_t control_mask, unsigned q,
                                      const Gate2& g);
  virtual void apply_phase_flip_known(Index x);
  virtual void apply_mcz(std::uint64_t mask);

  // -- observables --
  virtual double probability(Index x) const = 0;
  /// Total mass on the marked set.
  virtual double marked_probability() const = 0;
  virtual double block_probability(Index block) const = 0;
  /// All K block probabilities.
  virtual std::vector<double> block_distribution() const = 0;
  virtual double norm_squared() const = 0;

  // -- measurement (state not collapsed) --
  virtual Index sample(Rng& rng) const = 0;
  virtual Index sample_block(Rng& rng) const = 0;

  /// Materialize the full amplitude vector (snapshots, cross-validation).
  /// Checked: N must be at most kMaxDenseItems.
  virtual std::vector<Amplitude> amplitudes_copy() const = 0;

 protected:
  BackendSpec spec_;
};

/// True when the spec's marked set lies inside a single block — the
/// precondition for the symmetry engine.
bool symmetry_supports(const BackendSpec& spec);

/// Resolve kAuto against the spec (dense when it fits, symmetry beyond).
/// Checked: the resolved engine must actually support the spec.
BackendKind resolve_backend(BackendKind kind, const BackendSpec& spec);

/// Construct the chosen engine in the uniform start state.
std::unique_ptr<Backend> make_backend(BackendKind kind,
                                      const BackendSpec& spec);

/// Guard for code paths that genuinely need full amplitude vectors
/// (snapshots, the Zalka hybrid argument): throws CheckFailure naming
/// `what` when `kind` resolves to anything but dense.
void require_dense(BackendKind kind, std::string_view what);

/// True when the resolved engine can run Pauli noise channels on `spec`:
/// the dense engine needs a power-of-two N (per-qubit gates), the symmetry
/// engine additionally needs a power-of-two K and a unique marked address
/// (the class-moment channel is derived for the single-target split).
bool backend_supports_noise(BackendKind kind, const BackendSpec& spec);

/// Throws CheckFailure naming `what` unless backend_supports_noise. Call
/// BEFORE fanning trials across threads: a throw inside an OpenMP region
/// would terminate the process instead of reporting the error.
void require_noise_support(BackendKind kind, const BackendSpec& spec,
                           std::string_view what);

// -- circuit execution on a backend --

/// The spec a symmetric execution of `circuit` against `oracle` would use,
/// or nullopt when the pair leaves the 3-class symmetry: the circuit uses a
/// non-symmetric op (single-qubit gates, MCZ, ...), mixes distinct block
/// sizes, the oracle's marked set is unknown or empty or spans blocks, or a
/// Step-3 op appears with more than one marked address.
std::optional<BackendSpec> symmetric_spec(const Circuit& circuit,
                                          const OracleView& oracle);

/// Execute every op of `circuit` on `backend` (which must already be in the
/// desired start state; circuits assume |psi0>). Returns the oracle queries
/// consumed. Checked: every op must be applicable to the backend — run
/// symmetric_spec first when in doubt.
std::uint64_t apply_circuit(Backend& backend, const Circuit& circuit);

}  // namespace pqs::qsim

#include "qsim/state_vector.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/math.h"
#include "common/stats.h"
#include "qsim/gates2.h"
#include "qsim/kernels.h"

namespace pqs::qsim {

StateVector::StateVector(unsigned n_qubits) : n_qubits_(n_qubits) {
  PQS_CHECK_MSG(n_qubits >= 1 && n_qubits <= kMaxQubits,
                "qubit count out of supported range");
  soa_ = SoaVector(pow2(n_qubits));
  soa_.set(0, Amplitude{1.0, 0.0});
}

StateVector StateVector::zero_state(unsigned n_qubits) {
  return StateVector(n_qubits);
}

StateVector StateVector::uniform(unsigned n_qubits) {
  StateVector sv(n_qubits);
  const double amp = 1.0 / std::sqrt(static_cast<double>(sv.dimension()));
  sv.soa_.fill(Amplitude{amp, 0.0});
  return sv;
}

StateVector StateVector::basis(unsigned n_qubits, Index x) {
  StateVector sv(n_qubits);
  PQS_CHECK_MSG(x < sv.dimension(), "basis index out of range");
  sv.soa_.set(0, Amplitude{0.0, 0.0});
  sv.soa_.set(x, Amplitude{1.0, 0.0});
  return sv;
}

StateVector StateVector::from_amplitudes(std::vector<Amplitude> amps) {
  PQS_CHECK_MSG(is_pow2(amps.size()), "amplitude count must be a power of two");
  StateVector sv(log2_exact(amps.size()));
  sv.soa_ = SoaVector::from_amplitudes(amps);
  return sv;
}

Amplitude StateVector::amplitude(Index x) const {
  PQS_CHECK_MSG(x < dimension(), "index out of range");
  return soa_.get(x);
}

void StateVector::set_amplitude(Index x, Amplitude a) {
  PQS_CHECK_MSG(x < dimension(), "index out of range");
  soa_.set(x, a);
  soa_.invalidate_sums();
}

double StateVector::norm_squared() const { return kernels::norm_squared(soa_); }

double StateVector::norm() const { return std::sqrt(norm_squared()); }

void StateVector::normalize() {
  const double n = norm();
  PQS_CHECK_MSG(n > 0.0, "cannot normalize the zero vector");
  kernels::scale(soa_, Amplitude{1.0 / n, 0.0});
}

double StateVector::linf_distance(const StateVector& other) const {
  PQS_CHECK_MSG(dimension() == other.dimension(), "dimension mismatch");
  double d = 0.0;
  for (std::size_t i = 0; i < dimension(); ++i) {
    d = std::max(d, std::abs(soa_.get(i) - other.soa_.get(i)));
  }
  return d;
}

Amplitude StateVector::inner(const StateVector& other) const {
  return kernels::inner_product(soa_, other.soa_);
}

double StateVector::fidelity(const StateVector& other) const {
  return std::norm(inner(other));
}

double StateVector::probability(Index x) const {
  PQS_CHECK_MSG(x < dimension(), "index out of range");
  return std::norm(soa_.get(x));
}

double StateVector::block_probability(unsigned k, Index block) const {
  PQS_CHECK_MSG(k <= n_qubits_, "k exceeds qubit count");
  PQS_CHECK_MSG(block < pow2(k), "block index out of range");
  const std::size_t block_size = dimension() >> k;
  const std::size_t lo = static_cast<std::size_t>(block) * block_size;
  return kernels::norm_squared_range(soa_, lo, block_size);
}

std::vector<double> StateVector::block_distribution(unsigned k) const {
  PQS_CHECK_MSG(k <= n_qubits_, "k exceeds qubit count");
  const std::size_t n_blocks = pow2(k);
  std::vector<double> dist(n_blocks);
  for (std::size_t b = 0; b < n_blocks; ++b) {
    dist[b] = block_probability(k, b);
  }
  return dist;
}

void StateVector::apply_gate1(unsigned q, const Gate2& g) {
  kernels::apply_gate1(soa_, n_qubits_, q, g);
}

void StateVector::apply_controlled_gate1(std::uint64_t control_mask,
                                         unsigned q, const Gate2& g) {
  kernels::apply_controlled_gate1(soa_, n_qubits_, control_mask, q, g);
}

void StateVector::apply_gate2(unsigned q_high, unsigned q_low,
                              const Gate4& g) {
  // Analysis-grade path (tests, gate-level oracles): materialize, run the
  // span kernel, convert back. The O(N) copies are noise next to the gate.
  std::vector<Amplitude> amps = amplitudes_copy();
  kernels::apply_gate2(amps, n_qubits_, q_high, q_low, g);
  soa_ = SoaVector::from_amplitudes(amps);
}

void StateVector::apply_hadamard_all() {
  const Gate2 h = gates::H();
  for (unsigned q = 0; q < n_qubits_; ++q) {
    kernels::apply_gate1(soa_, n_qubits_, q, h);
  }
}

void StateVector::phase_flip(Index t) {
  PQS_CHECK_MSG(t < dimension(), "target index out of range");
  kernels::phase_flip_index(soa_, t);
}

void StateVector::phase_rotate(Index t, double phi) {
  PQS_CHECK_MSG(t < dimension(), "target index out of range");
  kernels::phase_rotate_index(soa_, t, phi);
}

void StateVector::phase_flip_indices(std::span<const Index> marked_sorted) {
  kernels::phase_flip_indices(soa_, marked_sorted);
}

void StateVector::phase_rotate_indices(std::span<const Index> marked_sorted,
                                       double phi) {
  kernels::phase_rotate_indices(soa_, marked_sorted, phi);
}

void StateVector::phase_flip_mask_all_ones(std::uint64_t mask) {
  kernels::phase_flip_mask_all_ones(soa_, mask);
}

void StateVector::scale(Amplitude s) { kernels::scale(soa_, s); }

void StateVector::reflect_about_uniform() {
  kernels::reflect_about_uniform(soa_);
}

void StateVector::reflect_blocks_about_uniform(unsigned k) {
  PQS_CHECK_MSG(k <= n_qubits_, "k exceeds qubit count");
  kernels::reflect_blocks_about_uniform(soa_, dimension() >> k);
}

void StateVector::rotate_blocks_about_uniform(unsigned k, double phi) {
  PQS_CHECK_MSG(k <= n_qubits_, "k exceeds qubit count");
  kernels::rotate_blocks_about_uniform(soa_, dimension() >> k, phi);
}

void StateVector::reflect_non_target_about_their_mean(Index t) {
  kernels::reflect_non_target_about_their_mean(soa_, t);
}

void StateVector::reflect_unmarked_about_their_mean(
    std::span<const Index> marked_sorted) {
  kernels::reflect_unmarked_about_their_mean(soa_, marked_sorted);
}

Index StateVector::sample(Rng& rng) const {
  // The same per-element arithmetic std::norm performs on the interleaved
  // representation, so seeded runs reproduce historical samples exactly.
  const double* re = soa_.re();
  const double* im = soa_.im();
  double u = rng.uniform01() * norm_squared();
  for (std::size_t i = 0; i < dimension(); ++i) {
    u -= re[i] * re[i] + im[i] * im[i];
    if (u <= 0.0) {
      return static_cast<Index>(i);
    }
  }
  return static_cast<Index>(dimension() - 1);
}

Index StateVector::sample_block(unsigned k, Rng& rng) const {
  return sample(rng) >> (n_qubits_ - k);
}

std::string StateVector::render_real_amplitudes(unsigned k_blocks,
                                                std::size_t half_width) const {
  PQS_CHECK_MSG(dimension() <= 64,
                "render_real_amplitudes is meant for small states");
  const double* re = soa_.re();
  double max_abs = 1e-12;
  for (std::size_t i = 0; i < dimension(); ++i) {
    max_abs = std::max(max_abs, std::abs(re[i]));
  }
  const std::size_t block_size =
      k_blocks == 0 ? dimension() : (dimension() >> k_blocks);
  std::ostringstream os;
  for (std::size_t i = 0; i < dimension(); ++i) {
    if (k_blocks != 0 && i % block_size == 0) {
      os << "-- block " << i / block_size << " --\n";
    }
    os.setf(std::ios::fixed);
    os.precision(4);
    os.width(3);
    os << i << "  " << signed_bar(re[i], max_abs, half_width) << "  ";
    os.width(8);
    os << re[i] << '\n';
  }
  return os.str();
}

StateVector uniform_state(unsigned n_qubits) {
  return StateVector::uniform(n_qubits);
}

}  // namespace pqs::qsim

// A small circuit IR.
//
// Circuits separate *description* from *execution*: algorithms build an op
// list once; `apply` runs it against a state vector and an oracle, counting
// oracle queries. Oracle calls are symbolic (OracleOp / NonTargetMeanOp) so
// the same circuit can be executed against different databases — and, for the
// Zalka hybrid argument, with some oracle calls replaced by the identity.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <variant>
#include <vector>

#include "qsim/gates.h"
#include "qsim/state_vector.h"

namespace pqs::qsim {

/// Marked-set predicate + target accessor the circuit executor queries.
/// (The oracle subsystem adapts pqs::oracle::Database to this.)
struct OracleView {
  /// f(x): is x marked?
  std::function<bool(Index)> marked;
  /// The unique target (used by ops that need the paper's I_t directly).
  Index target = 0;
  /// Explicit marked set (sorted, unique), when the oracle layer knows it.
  /// Non-empty lets the executor flip oracle phases in O(m) instead of
  /// scanning all N basis states through `marked`; empty means "unknown"
  /// and falls back to the predicate scan.
  std::vector<Index> marked_list;
};

// --- Ops ---

/// Apply a 2x2 gate to one qubit.
struct Gate1Op {
  unsigned q;
  Gate2 g;
};

/// Apply a 2x2 gate to qubit q, controlled on all qubits in `control_mask`.
struct CGate1Op {
  std::uint64_t control_mask;
  unsigned q;
  Gate2 g;
};

/// Apply the same 2x2 gate to every qubit (e.g. the H^(x)n / X^(x)n layers).
struct LayerOp {
  Gate2 g;
};

/// Phase oracle: flip the sign of every marked basis state. Costs 1 query.
struct OracleOp {};

/// Generalized phase oracle: multiply marked states by e^{i phi}. 1 query.
/// (Used by the sure-success variants; phi = pi is OracleOp.)
struct OraclePhaseOp {
  double phi;
};

/// I0 = 2|psi0><psi0| - I as a fused kernel. 0 queries.
struct GlobalDiffusionOp {};

/// I_[K] (x) I0,[N/K] with K = 2^k blocks. 0 queries.
struct BlockDiffusionOp {
  unsigned k;
};

/// Generalized block rotation about the uniform axis by phase phi. 0 queries.
struct BlockRotationOp {
  unsigned k;
  double phi;
};

/// Flip the sign of one *known* basis state (no oracle involved). Used for
/// the |0...0> phase in the gate-level diffusion decomposition. 0 queries.
struct PhaseFlipKnownOp {
  Index x;
};

/// Multi-controlled Z: flip the sign of states with all bits of `mask` set.
struct MczOp {
  std::uint64_t mask;
};

/// Multiply the whole state by a fixed phase (tracks the -1 that the
/// gate-level diffusion decomposition introduces). 0 queries.
struct GlobalPhaseOp {
  Amplitude phase;
};

/// Step 3 of the partial-search algorithm: mark the target out with one query
/// and invert all the *other* amplitudes about their mean. 1 query.
struct NonTargetMeanOp {};

using Op = std::variant<Gate1Op, CGate1Op, LayerOp, OracleOp, OraclePhaseOp,
                        GlobalDiffusionOp, BlockDiffusionOp, BlockRotationOp,
                        PhaseFlipKnownOp, MczOp, GlobalPhaseOp,
                        NonTargetMeanOp>;

/// How many oracle queries an op consumes.
std::uint64_t op_query_cost(const Op& op);
/// Human-readable op name.
std::string op_name(const Op& op);

/// An ordered op list for a fixed qubit count.
class Circuit {
 public:
  explicit Circuit(unsigned n_qubits);

  unsigned num_qubits() const { return n_qubits_; }
  std::size_t size() const { return ops_.size(); }
  const std::vector<Op>& ops() const { return ops_; }

  // -- builders --
  Circuit& add(Op op);
  Circuit& gate1(unsigned q, const Gate2& g);
  Circuit& controlled(std::uint64_t control_mask, unsigned q, const Gate2& g);
  Circuit& layer(const Gate2& g);
  Circuit& hadamard_all() { return layer(gates::H()); }
  Circuit& oracle();
  Circuit& oracle_phase(double phi);
  Circuit& global_diffusion();
  Circuit& block_diffusion(unsigned k);
  Circuit& block_rotation(unsigned k, double phi);
  /// One standard Grover iteration A = I0 . It (1 query).
  Circuit& grover_iteration();
  /// One per-block iteration A_[N/K] = (I_[K] (x) I0,[N/K]) . It (1 query).
  Circuit& partial_iteration(unsigned k);
  /// Gate-level I0: H layer, X layer, MCZ on all qubits, X layer, H layer,
  /// global phase -1. Equal to GlobalDiffusionOp as an operator (tested).
  Circuit& global_diffusion_gate_level();
  /// Step 3 of the partial-search algorithm (1 query).
  Circuit& non_target_mean_reflection();

  /// Total oracle queries the circuit would consume.
  std::uint64_t query_count() const;

  /// Execute against a state and oracle; returns the number of queries made.
  std::uint64_t apply(StateVector& state, const OracleView& oracle) const;

  /// Execute only ops [begin, end) — used by the Zalka hybrid argument.
  std::uint64_t apply_range(StateVector& state, const OracleView& oracle,
                            std::size_t begin, std::size_t end) const;

  /// Execute with oracle calls >= `identity_from_query` (0-based query index)
  /// replaced by the identity. The Zalka hybrid |phi^{y,i}> runs the first
  /// T-i queries as identity: call with identity_until_query = T - i instead.
  std::uint64_t apply_hybrid(StateVector& state, const OracleView& oracle,
                             std::uint64_t identity_until_query) const;

  /// Multi-line rendering of the op list.
  std::string to_string() const;

 private:
  unsigned n_qubits_;
  std::vector<Op> ops_;
};

/// The textbook Grover circuit: `iterations` repetitions of A = I0 . It on
/// the uniform start state (start state preparation is the caller's job).
Circuit make_grover_circuit(unsigned n_qubits, std::uint64_t iterations);

}  // namespace pqs::qsim

// AVX-512F tier of the SoA segment primitives (qsim/kernels_ops.h).
//
// Compiled with -mavx512f (per-file flag in CMakeLists.txt); without the
// flag the __AVX512F__ guard degrades this TU to the scalar table. Same
// shape notes as the AVX2 tier apply: ~1KB software prefetch, fused-sum
// accumulation on the store passes, and NO non-temporal stores (they
// regressed when measured).
#include "qsim/kernels_ops.h"

#if defined(__AVX512F__)

#include <immintrin.h>

#include <cstddef>

namespace pqs::qsim::kernels {

namespace {

/// Prefetch distance in bytes (per plane).
constexpr int kPf = 1024;

inline void prefetch2(const double* re, const double* im, std::size_t i) {
  _mm_prefetch(reinterpret_cast<const char*>(re + i) + kPf, _MM_HINT_T0);
  _mm_prefetch(reinterpret_cast<const char*>(im + i) + kPf, _MM_HINT_T0);
}

void avx512_sum(const double* re, const double* im, std::size_t n,
                double* sum_re, double* sum_im) {
  __m512d a0 = _mm512_setzero_pd(), a1 = _mm512_setzero_pd();
  __m512d b0 = _mm512_setzero_pd(), b1 = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    prefetch2(re, im, i);
    a0 = _mm512_add_pd(a0, _mm512_loadu_pd(re + i));
    a1 = _mm512_add_pd(a1, _mm512_loadu_pd(re + i + 8));
    b0 = _mm512_add_pd(b0, _mm512_loadu_pd(im + i));
    b1 = _mm512_add_pd(b1, _mm512_loadu_pd(im + i + 8));
  }
  double sr = _mm512_reduce_add_pd(_mm512_add_pd(a0, a1));
  double si = _mm512_reduce_add_pd(_mm512_add_pd(b0, b1));
  for (; i < n; ++i) {
    sr += re[i];
    si += im[i];
  }
  *sum_re = sr;
  *sum_im = si;
}

double avx512_norm_sq(const double* re, const double* im, std::size_t n) {
  __m512d a0 = _mm512_setzero_pd(), a1 = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    prefetch2(re, im, i);
    const __m512d r0 = _mm512_loadu_pd(re + i);
    const __m512d r1 = _mm512_loadu_pd(re + i + 8);
    const __m512d s0 = _mm512_loadu_pd(im + i);
    const __m512d s1 = _mm512_loadu_pd(im + i + 8);
    a0 = _mm512_fmadd_pd(r0, r0, a0);
    a1 = _mm512_fmadd_pd(r1, r1, a1);
    a0 = _mm512_fmadd_pd(s0, s0, a0);
    a1 = _mm512_fmadd_pd(s1, s1, a1);
  }
  double s = _mm512_reduce_add_pd(_mm512_add_pd(a0, a1));
  for (; i < n; ++i) {
    s += re[i] * re[i] + im[i] * im[i];
  }
  return s;
}

void avx512_inner(const double* a_re, const double* a_im, const double* b_re,
                  const double* b_im, std::size_t n, double* sum_re,
                  double* sum_im) {
  __m512d acc_r = _mm512_setzero_pd();
  __m512d acc_i = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d ar = _mm512_loadu_pd(a_re + i);
    const __m512d ai = _mm512_loadu_pd(a_im + i);
    const __m512d br = _mm512_loadu_pd(b_re + i);
    const __m512d bi = _mm512_loadu_pd(b_im + i);
    acc_r = _mm512_fmadd_pd(ar, br, acc_r);
    acc_r = _mm512_fmadd_pd(ai, bi, acc_r);
    acc_i = _mm512_fmadd_pd(ar, bi, acc_i);
    acc_i = _mm512_fnmadd_pd(ai, br, acc_i);
  }
  double sr = _mm512_reduce_add_pd(acc_r);
  double si = _mm512_reduce_add_pd(acc_i);
  for (; i < n; ++i) {
    sr += a_re[i] * b_re[i] + a_im[i] * b_im[i];
    si += a_re[i] * b_im[i] - a_im[i] * b_re[i];
  }
  *sum_re = sr;
  *sum_im = si;
}

void avx512_reflect(double* re, double* im, std::size_t n, double t_re,
                    double t_im, double* sum_re, double* sum_im) {
  const __m512d tr = _mm512_set1_pd(t_re);
  const __m512d ti = _mm512_set1_pd(t_im);
  __m512d a0 = _mm512_setzero_pd(), a1 = _mm512_setzero_pd();
  __m512d b0 = _mm512_setzero_pd(), b1 = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    prefetch2(re, im, i);
    const __m512d r0 = _mm512_sub_pd(tr, _mm512_loadu_pd(re + i));
    const __m512d r1 = _mm512_sub_pd(tr, _mm512_loadu_pd(re + i + 8));
    const __m512d s0 = _mm512_sub_pd(ti, _mm512_loadu_pd(im + i));
    const __m512d s1 = _mm512_sub_pd(ti, _mm512_loadu_pd(im + i + 8));
    _mm512_storeu_pd(re + i, r0);
    _mm512_storeu_pd(re + i + 8, r1);
    _mm512_storeu_pd(im + i, s0);
    _mm512_storeu_pd(im + i + 8, s1);
    a0 = _mm512_add_pd(a0, r0);
    a1 = _mm512_add_pd(a1, r1);
    b0 = _mm512_add_pd(b0, s0);
    b1 = _mm512_add_pd(b1, s1);
  }
  double sr = _mm512_reduce_add_pd(_mm512_add_pd(a0, a1));
  double si = _mm512_reduce_add_pd(_mm512_add_pd(b0, b1));
  for (; i < n; ++i) {
    const double r = t_re - re[i];
    const double s = t_im - im[i];
    re[i] = r;
    im[i] = s;
    sr += r;
    si += s;
  }
  *sum_re = sr;
  *sum_im = si;
}

void avx512_add(double* re, double* im, std::size_t n, double c_re,
                double c_im, double* sum_re, double* sum_im) {
  const __m512d cr = _mm512_set1_pd(c_re);
  const __m512d ci = _mm512_set1_pd(c_im);
  __m512d a0 = _mm512_setzero_pd(), a1 = _mm512_setzero_pd();
  __m512d b0 = _mm512_setzero_pd(), b1 = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    prefetch2(re, im, i);
    const __m512d r0 = _mm512_add_pd(cr, _mm512_loadu_pd(re + i));
    const __m512d r1 = _mm512_add_pd(cr, _mm512_loadu_pd(re + i + 8));
    const __m512d s0 = _mm512_add_pd(ci, _mm512_loadu_pd(im + i));
    const __m512d s1 = _mm512_add_pd(ci, _mm512_loadu_pd(im + i + 8));
    _mm512_storeu_pd(re + i, r0);
    _mm512_storeu_pd(re + i + 8, r1);
    _mm512_storeu_pd(im + i, s0);
    _mm512_storeu_pd(im + i + 8, s1);
    a0 = _mm512_add_pd(a0, r0);
    a1 = _mm512_add_pd(a1, r1);
    b0 = _mm512_add_pd(b0, s0);
    b1 = _mm512_add_pd(b1, s1);
  }
  double sr = _mm512_reduce_add_pd(_mm512_add_pd(a0, a1));
  double si = _mm512_reduce_add_pd(_mm512_add_pd(b0, b1));
  for (; i < n; ++i) {
    const double r = re[i] + c_re;
    const double s = im[i] + c_im;
    re[i] = r;
    im[i] = s;
    sr += r;
    si += s;
  }
  *sum_re = sr;
  *sum_im = si;
}

void avx512_scale(double* re, double* im, std::size_t n, double s_re,
                  double s_im) {
  const __m512d vr = _mm512_set1_pd(s_re);
  const __m512d vi = _mm512_set1_pd(s_im);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    prefetch2(re, im, i);
    const __m512d r = _mm512_loadu_pd(re + i);
    const __m512d s = _mm512_loadu_pd(im + i);
    _mm512_storeu_pd(re + i, _mm512_fmsub_pd(vr, r, _mm512_mul_pd(vi, s)));
    _mm512_storeu_pd(im + i, _mm512_fmadd_pd(vr, s, _mm512_mul_pd(vi, r)));
  }
  for (; i < n; ++i) {
    const double r = re[i];
    const double s = im[i];
    re[i] = s_re * r - s_im * s;
    im[i] = s_re * s + s_im * r;
  }
}

void avx512_gate1(double* re0, double* im0, double* re1, double* im1,
                  std::size_t n, const double m[8]) {
  const __m512d m00r = _mm512_set1_pd(m[0]), m00i = _mm512_set1_pd(m[1]);
  const __m512d m01r = _mm512_set1_pd(m[2]), m01i = _mm512_set1_pd(m[3]);
  const __m512d m10r = _mm512_set1_pd(m[4]), m10i = _mm512_set1_pd(m[5]);
  const __m512d m11r = _mm512_set1_pd(m[6]), m11i = _mm512_set1_pd(m[7]);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d a0r = _mm512_loadu_pd(re0 + i);
    const __m512d a0i = _mm512_loadu_pd(im0 + i);
    const __m512d a1r = _mm512_loadu_pd(re1 + i);
    const __m512d a1i = _mm512_loadu_pd(im1 + i);
    __m512d r = _mm512_mul_pd(m00r, a0r);
    r = _mm512_fnmadd_pd(m00i, a0i, r);
    r = _mm512_fmadd_pd(m01r, a1r, r);
    r = _mm512_fnmadd_pd(m01i, a1i, r);
    __m512d s = _mm512_mul_pd(m00r, a0i);
    s = _mm512_fmadd_pd(m00i, a0r, s);
    s = _mm512_fmadd_pd(m01r, a1i, s);
    s = _mm512_fmadd_pd(m01i, a1r, s);
    _mm512_storeu_pd(re0 + i, r);
    _mm512_storeu_pd(im0 + i, s);
    r = _mm512_mul_pd(m10r, a0r);
    r = _mm512_fnmadd_pd(m10i, a0i, r);
    r = _mm512_fmadd_pd(m11r, a1r, r);
    r = _mm512_fnmadd_pd(m11i, a1i, r);
    s = _mm512_mul_pd(m10r, a0i);
    s = _mm512_fmadd_pd(m10i, a0r, s);
    s = _mm512_fmadd_pd(m11r, a1i, s);
    s = _mm512_fmadd_pd(m11i, a1r, s);
    _mm512_storeu_pd(re1 + i, r);
    _mm512_storeu_pd(im1 + i, s);
  }
  for (; i < n; ++i) {
    const double a0r = re0[i], a0i = im0[i];
    const double a1r = re1[i], a1i = im1[i];
    re0[i] = m[0] * a0r - m[1] * a0i + m[2] * a1r - m[3] * a1i;
    im0[i] = m[0] * a0i + m[1] * a0r + m[2] * a1i + m[3] * a1r;
    re1[i] = m[4] * a0r - m[5] * a0i + m[6] * a1r - m[7] * a1i;
    im1[i] = m[4] * a0i + m[5] * a0r + m[6] * a1i + m[7] * a1r;
  }
}

}  // namespace

const KernelOps& avx512_kernel_ops() {
  static const KernelOps ops{
      .sum = avx512_sum,
      .norm_sq = avx512_norm_sq,
      .inner = avx512_inner,
      .reflect = avx512_reflect,
      .add = avx512_add,
      .scale = avx512_scale,
      .gate1 = avx512_gate1,
  };
  return ops;
}

bool avx512_kernels_compiled() { return true; }

}  // namespace pqs::qsim::kernels

#else  // !__AVX512F__: degrade to the scalar table.

namespace pqs::qsim::kernels {

const KernelOps& avx512_kernel_ops() { return scalar_kernel_ops(); }

bool avx512_kernels_compiled() { return false; }

}  // namespace pqs::qsim::kernels

#endif

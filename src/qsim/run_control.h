// Cooperative cancellation and progress for long-running searches.
//
// A production service cannot treat a 2^30-item shot sweep as an opaque
// blocking call: callers need to cancel it mid-flight and watch it advance.
// RunControl is the handle that makes both real — an atomic cancel flag the
// execution layers CHECK (BatchRunner per shot, the BBHT restart loop per
// round, the classical scans every few thousand probes, every adapter
// between stages) and an atomic work counter they ADVANCE. Cancellation is
// cooperative: cancel() never interrupts a thread, it makes the next
// checkpoint throw CancelledError, which unwinds out of Engine::run with no
// partial result. One RunControl belongs to one run; pqs::Service allocates
// one per job and exposes it through JobHandle::cancel / progress.
//
// All members are lock-free atomics, so checking from inside an OpenMP shot
// fan-out is safe and cheap (a relaxed load per shot). Because there is no
// mutex, there is nothing here for the Clang thread-safety analysis
// (common/thread_annotations.h) to guard — lock-freedom IS the invariant,
// and tools/pqs_lint.py keeps it honest by flagging any bare std::mutex
// member that might creep in.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>

namespace pqs::qsim {

/// Thrown by a cancellation checkpoint once cancel() has been observed.
/// Derives from std::runtime_error so generic error paths still catch it,
/// while the service layer can distinguish kCancelled from kFailed.
class CancelledError : public std::runtime_error {
 public:
  CancelledError() : std::runtime_error("run cancelled") {}
};

/// Where span events go when a run is traced. The interface lives HERE (not
/// in src/obs/) so the execution layers can emit spans without qsim growing
/// a dependency on the observability subsystem — obs::Trace implements it,
/// qsim only sees the abstract sink. Implementations must be safe to call
/// from any thread of the run.
class SpanSink {
 public:
  virtual ~SpanSink() = default;
  /// Record one named instant in the run's timeline. `name` must point at
  /// storage outliving the call (string literals in practice).
  virtual void span(const char* name) noexcept = 0;
};

/// Shared cancel + progress state of one run. The submitting side keeps a
/// reference and calls cancel(); the executing side checkpoints and reports
/// progress. Not reusable across runs (counters only grow).
class RunControl {
 public:
  /// Request cancellation. Idempotent, thread-safe, returns immediately;
  /// the run stops at its next checkpoint.
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Checkpoint: throws CancelledError iff cancel() has been called.
  void throw_if_cancelled() const {
    if (cancelled()) {
      throw CancelledError();
    }
  }

  /// Declare the total work units of the run (shots / trials / probes).
  /// Called once by whoever knows the run's shape; 0 = unknown.
  void set_work_total(std::uint64_t units) noexcept {
    work_total_.store(units, std::memory_order_relaxed);
  }

  /// Advance the progress counter (one unit per completed shot / probe
  /// block). Safe to call concurrently from the shot fan-out.
  void add_work_done(std::uint64_t units = 1) noexcept {
    work_done_.fetch_add(units, std::memory_order_relaxed);
  }

  std::uint64_t work_total() const noexcept {
    return work_total_.load(std::memory_order_relaxed);
  }
  std::uint64_t work_done() const noexcept {
    return work_done_.load(std::memory_order_relaxed);
  }

  /// Attach a span sink. Called at most once, BEFORE the run is published
  /// to other threads (pqs::Service sets it inside submit(), before the job
  /// reaches the queue — the queue mutex provides the happens-before edge),
  /// exactly like detail::Job::journal_id. A plain pointer, not an atomic:
  /// the untraced path must cost one null check and nothing else.
  void set_span_sink(SpanSink* sink) noexcept { trace_ = sink; }
  SpanSink* span_sink() const noexcept { return trace_; }

  /// Emit one named span event iff a sink is attached. This is the whole
  /// disabled path — pointer test + branch — which is what lets the bench
  /// pin untraced overhead at ~0.
  void span(const char* name) const noexcept {
    if (trace_ != nullptr) {
      trace_->span(name);
    }
  }

  /// Completed fraction in [0, 1]; 0 while the total is unknown.
  double progress() const noexcept {
    const std::uint64_t total = work_total();
    if (total == 0) {
      return 0.0;
    }
    const std::uint64_t done = work_done();
    return done >= total ? 1.0
                         : static_cast<double>(done) /
                               static_cast<double>(total);
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<std::uint64_t> work_total_{0};
  std::atomic<std::uint64_t> work_done_{0};
  SpanSink* trace_ = nullptr;  ///< set once pre-publication; see above
};

/// Null-tolerant checkpoint, for code paths where no control is attached
/// (direct module calls, single-shot CLI runs).
inline void checkpoint(const RunControl* control) {
  if (control != nullptr) {
    control->throw_if_cancelled();
  }
}

}  // namespace pqs::qsim

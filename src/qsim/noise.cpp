#include "qsim/noise.h"

#include "common/check.h"

namespace pqs::qsim {

std::uint64_t apply_noise(StateVector& state, const NoiseModel& model,
                          Rng& rng) {
  if (!model.enabled()) {
    return 0;
  }
  PQS_CHECK_MSG(model.probability <= 1.0, "noise probability > 1");
  std::uint64_t injected = 0;
  for (unsigned q = 0; q < state.num_qubits(); ++q) {
    if (!rng.bernoulli(model.probability)) {
      continue;
    }
    ++injected;
    switch (model.kind) {
      case NoiseKind::kDepolarizing: {
        const auto which = rng.uniform_below(3);
        state.apply_gate1(q, which == 0   ? gates::X()
                             : which == 1 ? gates::Y()
                                          : gates::Z());
        break;
      }
      case NoiseKind::kDephasing:
        state.apply_gate1(q, gates::Z());
        break;
      case NoiseKind::kBitFlip:
        state.apply_gate1(q, gates::X());
        break;
      case NoiseKind::kNone:
        break;
    }
  }
  return injected;
}

const char* noise_kind_name(NoiseKind kind) {
  switch (kind) {
    case NoiseKind::kNone:
      return "none";
    case NoiseKind::kDepolarizing:
      return "depolarizing";
    case NoiseKind::kDephasing:
      return "dephasing";
    case NoiseKind::kBitFlip:
      return "bit-flip";
  }
  return "?";
}

}  // namespace pqs::qsim

#include "qsim/noise.h"

#include <string>

#include "common/check.h"

namespace pqs::qsim {

void NoiseModel::validate() const {
  PQS_CHECK_MSG(valid(),
                "noise probability must lie in [0, 1], got " +
                    std::to_string(probability));
}

Pauli sample_pauli_kind(NoiseKind kind, Rng& rng) {
  switch (kind) {
    case NoiseKind::kDepolarizing: {
      const auto which = rng.uniform_below(3);
      return which == 0 ? Pauli::kX : which == 1 ? Pauli::kY : Pauli::kZ;
    }
    case NoiseKind::kDephasing:
      return Pauli::kZ;
    case NoiseKind::kBitFlip:
      return Pauli::kX;
    case NoiseKind::kNone:
      break;
  }
  throw CheckFailure("sample_pauli: channel has no Pauli (NoiseKind::kNone)");
}

Gate2 sample_pauli(NoiseKind kind, Rng& rng) {
  switch (sample_pauli_kind(kind, rng)) {
    case Pauli::kX:
      return gates::X();
    case Pauli::kY:
      return gates::Y();
    case Pauli::kZ:
      return gates::Z();
  }
  throw CheckFailure("sample_pauli: invalid Pauli value");
}

std::uint64_t apply_noise(StateVector& state, const NoiseModel& model,
                          Rng& rng) {
  model.validate();
  if (!model.enabled()) {
    return 0;
  }
  // Hot loop: every hit corresponds to exactly one gate application.
  return for_each_error_qubit(
      state.num_qubits(), model.probability, rng, [&](unsigned q) {
        state.apply_gate1(q, sample_pauli(model.kind, rng));
      });
}

const char* noise_kind_name(NoiseKind kind) {
  switch (kind) {
    case NoiseKind::kNone:
      return "none";
    case NoiseKind::kDepolarizing:
      return "depolarizing";
    case NoiseKind::kDephasing:
      return "dephasing";
    case NoiseKind::kBitFlip:
      return "bit-flip";
  }
  throw CheckFailure("noise_kind_name: invalid NoiseKind value");
}

NoiseKind parse_noise_kind(std::string_view name) {
  if (name == "none") {
    return NoiseKind::kNone;
  }
  if (name == "depolarizing") {
    return NoiseKind::kDepolarizing;
  }
  if (name == "dephasing") {
    return NoiseKind::kDephasing;
  }
  if (name == "bitflip" || name == "bit-flip") {
    return NoiseKind::kBitFlip;
  }
  throw CheckFailure("unknown noise channel '" + std::string(name) +
                     "' (expected none, depolarizing, dephasing, or bitflip)");
}

}  // namespace pqs::qsim

#include "qsim/measurement.h"

#include <cmath>

#include "common/check.h"
#include "common/math.h"

namespace pqs::qsim {

Index measure_all(StateVector& state, Rng& rng) {
  const Index outcome = state.sample(rng);
  const Amplitude kept = state.amplitude(outcome);
  state.soa().fill(Amplitude{0.0, 0.0});  // collapse: zero everything...
  state.set_amplitude(outcome, kept);     // ...except the observed state
  state.normalize();
  return outcome;
}

Index measure_block(StateVector& state, unsigned k, Rng& rng) {
  PQS_CHECK_MSG(k >= 1 && k <= state.num_qubits(), "invalid block bit count");
  const Index block = state.sample_block(k, rng);
  SoaVector& soa = state.soa();
  const std::size_t block_size = soa.size() >> k;
  const std::size_t lo = static_cast<std::size_t>(block) * block_size;
  for (std::size_t i = 0; i < soa.size(); ++i) {
    if (i < lo || i >= lo + block_size) {
      soa.set(i, Amplitude{0.0, 0.0});
    }
  }
  soa.invalidate_sums();
  state.normalize();
  return block;
}

std::map<Index, std::uint64_t> sample_counts(const StateVector& state,
                                             std::uint64_t shots, Rng& rng) {
  std::map<Index, std::uint64_t> counts;
  for (std::uint64_t s = 0; s < shots; ++s) {
    ++counts[state.sample(rng)];
  }
  return counts;
}

std::vector<double> empirical_block_distribution(const StateVector& state,
                                                 unsigned k,
                                                 std::uint64_t shots,
                                                 Rng& rng) {
  PQS_CHECK(shots > 0);
  std::vector<double> dist(pow2(k), 0.0);
  for (std::uint64_t s = 0; s < shots; ++s) {
    dist[state.sample_block(k, rng)] += 1.0;
  }
  for (auto& p : dist) {
    p /= static_cast<double>(shots);
  }
  return dist;
}

}  // namespace pqs::qsim

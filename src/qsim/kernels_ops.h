// The per-ISA segment primitives behind the SoA kernels.
//
// Each tier (qsim/kernels_scalar.cpp, kernels_avx2.cpp, kernels_avx512.cpp)
// fills one KernelOps table with implementations of the same contiguous-run
// primitives; qsim/kernels_soa.cpp composes them into the block-structured
// kernels (chunking, OpenMP, the sum cache) so the tier files stay tiny and
// branch-free. All pointers operate on contiguous runs of the separated
// re[]/im[] planes of a SoaVector.
//
// The mutating primitives that take sum_re/sum_im out-params accumulate the
// sums of the values they STORE. That is the fused-sum trick this engine is
// built around: a reflection's store pass yields next iteration's block sums
// for free, so steady-state Grover/GRK iterations touch memory once per
// kernel instead of twice (sum pass + update pass).
#pragma once

#include <cstddef>

#include "qsim/isa.h"

namespace pqs::qsim::kernels {

/// One ISA tier's segment primitives. m[8] packs a 2x2 complex matrix as
/// {m00.re, m00.im, m01.re, m01.im, m10.re, m10.im, m11.re, m11.im}.
struct KernelOps {
  /// sum_re/sum_im <- sum of the segment.
  void (*sum)(const double* re, const double* im, std::size_t n,
              double* sum_re, double* sum_im);
  /// Returns sum of re^2 + im^2 over the segment.
  double (*norm_sq)(const double* re, const double* im, std::size_t n);
  /// sum_re/sum_im <- sum of conj(a) * b over the segment.
  void (*inner)(const double* a_re, const double* a_im, const double* b_re,
                const double* b_im, std::size_t n, double* sum_re,
                double* sum_im);
  /// a <- t - a (the inversion-about-the-mean update with t = 2*mean);
  /// sum_re/sum_im <- sum of the stored values.
  void (*reflect)(double* re, double* im, std::size_t n, double t_re,
                  double t_im, double* sum_re, double* sum_im);
  /// a <- a + c (the block-rotation update); sums of the stored values.
  void (*add)(double* re, double* im, std::size_t n, double c_re, double c_im,
              double* sum_re, double* sum_im);
  /// a <- s * a (complex scale).
  void (*scale)(double* re, double* im, std::size_t n, double s_re,
                double s_im);
  /// 2x2 unitary on the paired runs (re0,im0) / (re1,im1): the caller hands
  /// the two half-planes of an apply_gate1 stride block.
  void (*gate1)(double* re0, double* im0, double* re1, double* im1,
                std::size_t n, const double m[8]);
};

/// Tier tables. The AVX accessors are valid to call regardless of build
/// flags but alias the scalar table when their TU was compiled without the
/// target ISA (isa_compiled() reports which happened).
const KernelOps& scalar_kernel_ops();
const KernelOps& avx2_kernel_ops();
const KernelOps& avx512_kernel_ops();

/// True iff the tier's TU was actually built with its target flags.
bool avx2_kernels_compiled();
bool avx512_kernels_compiled();

/// The table for a tier. Checked: the tier must be supported.
const KernelOps& kernel_ops(Isa isa);

/// kernel_ops(active_isa()).
const KernelOps& active_kernel_ops();

}  // namespace pqs::qsim::kernels

// AVX2+FMA tier of the SoA segment primitives (qsim/kernels_ops.h).
//
// Compiled with -mavx2 -mfma (per-file flags in CMakeLists.txt); when the
// compiler lacks those flags the __AVX2__ guard turns this TU into an alias
// of the scalar table and isa_compiled(kAvx2) reports false.
//
// Shape notes (measured on the target fleet, see BENCH_qsim.json):
//   - 8 doubles per plane per iteration with two 256-bit accumulators per
//     plane hides FP-add latency behind the loads;
//   - software prefetch ~1KB ahead buys 15-35% on the bandwidth-bound loops
//     because a single core cannot otherwise keep enough lines in flight;
//   - non-temporal stores were tried and REGRESSED (0.64x) on the reflect
//     kernels — every store here is a plain store, do not "optimize" that.
#include "qsim/kernels_ops.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <cstddef>

namespace pqs::qsim::kernels {

namespace {

/// Prefetch distance in bytes (per plane).
constexpr int kPf = 1024;

inline double hsum(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d s2 = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(s2, _mm_unpackhi_pd(s2, s2)));
}

inline void prefetch2(const double* re, const double* im, std::size_t i) {
  _mm_prefetch(reinterpret_cast<const char*>(re + i) + kPf, _MM_HINT_T0);
  _mm_prefetch(reinterpret_cast<const char*>(im + i) + kPf, _MM_HINT_T0);
}

void avx2_sum(const double* re, const double* im, std::size_t n,
              double* sum_re, double* sum_im) {
  __m256d a0 = _mm256_setzero_pd(), a1 = _mm256_setzero_pd();
  __m256d b0 = _mm256_setzero_pd(), b1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    prefetch2(re, im, i);
    a0 = _mm256_add_pd(a0, _mm256_loadu_pd(re + i));
    a1 = _mm256_add_pd(a1, _mm256_loadu_pd(re + i + 4));
    b0 = _mm256_add_pd(b0, _mm256_loadu_pd(im + i));
    b1 = _mm256_add_pd(b1, _mm256_loadu_pd(im + i + 4));
  }
  double sr = hsum(_mm256_add_pd(a0, a1));
  double si = hsum(_mm256_add_pd(b0, b1));
  for (; i < n; ++i) {
    sr += re[i];
    si += im[i];
  }
  *sum_re = sr;
  *sum_im = si;
}

double avx2_norm_sq(const double* re, const double* im, std::size_t n) {
  __m256d a0 = _mm256_setzero_pd(), a1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    prefetch2(re, im, i);
    const __m256d r0 = _mm256_loadu_pd(re + i);
    const __m256d r1 = _mm256_loadu_pd(re + i + 4);
    const __m256d s0 = _mm256_loadu_pd(im + i);
    const __m256d s1 = _mm256_loadu_pd(im + i + 4);
    a0 = _mm256_fmadd_pd(r0, r0, a0);
    a1 = _mm256_fmadd_pd(r1, r1, a1);
    a0 = _mm256_fmadd_pd(s0, s0, a0);
    a1 = _mm256_fmadd_pd(s1, s1, a1);
  }
  double s = hsum(_mm256_add_pd(a0, a1));
  for (; i < n; ++i) {
    s += re[i] * re[i] + im[i] * im[i];
  }
  return s;
}

void avx2_inner(const double* a_re, const double* a_im, const double* b_re,
                const double* b_im, std::size_t n, double* sum_re,
                double* sum_im) {
  __m256d acc_r = _mm256_setzero_pd();
  __m256d acc_i = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d ar = _mm256_loadu_pd(a_re + i);
    const __m256d ai = _mm256_loadu_pd(a_im + i);
    const __m256d br = _mm256_loadu_pd(b_re + i);
    const __m256d bi = _mm256_loadu_pd(b_im + i);
    acc_r = _mm256_fmadd_pd(ar, br, acc_r);
    acc_r = _mm256_fmadd_pd(ai, bi, acc_r);
    acc_i = _mm256_fmadd_pd(ar, bi, acc_i);
    acc_i = _mm256_fnmadd_pd(ai, br, acc_i);
  }
  double sr = hsum(acc_r);
  double si = hsum(acc_i);
  for (; i < n; ++i) {
    sr += a_re[i] * b_re[i] + a_im[i] * b_im[i];
    si += a_re[i] * b_im[i] - a_im[i] * b_re[i];
  }
  *sum_re = sr;
  *sum_im = si;
}

void avx2_reflect(double* re, double* im, std::size_t n, double t_re,
                  double t_im, double* sum_re, double* sum_im) {
  const __m256d tr = _mm256_set1_pd(t_re);
  const __m256d ti = _mm256_set1_pd(t_im);
  __m256d a0 = _mm256_setzero_pd(), a1 = _mm256_setzero_pd();
  __m256d b0 = _mm256_setzero_pd(), b1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    prefetch2(re, im, i);
    const __m256d r0 = _mm256_sub_pd(tr, _mm256_loadu_pd(re + i));
    const __m256d r1 = _mm256_sub_pd(tr, _mm256_loadu_pd(re + i + 4));
    const __m256d s0 = _mm256_sub_pd(ti, _mm256_loadu_pd(im + i));
    const __m256d s1 = _mm256_sub_pd(ti, _mm256_loadu_pd(im + i + 4));
    _mm256_storeu_pd(re + i, r0);
    _mm256_storeu_pd(re + i + 4, r1);
    _mm256_storeu_pd(im + i, s0);
    _mm256_storeu_pd(im + i + 4, s1);
    a0 = _mm256_add_pd(a0, r0);
    a1 = _mm256_add_pd(a1, r1);
    b0 = _mm256_add_pd(b0, s0);
    b1 = _mm256_add_pd(b1, s1);
  }
  double sr = hsum(_mm256_add_pd(a0, a1));
  double si = hsum(_mm256_add_pd(b0, b1));
  for (; i < n; ++i) {
    const double r = t_re - re[i];
    const double s = t_im - im[i];
    re[i] = r;
    im[i] = s;
    sr += r;
    si += s;
  }
  *sum_re = sr;
  *sum_im = si;
}

void avx2_add(double* re, double* im, std::size_t n, double c_re, double c_im,
              double* sum_re, double* sum_im) {
  const __m256d cr = _mm256_set1_pd(c_re);
  const __m256d ci = _mm256_set1_pd(c_im);
  __m256d a0 = _mm256_setzero_pd(), a1 = _mm256_setzero_pd();
  __m256d b0 = _mm256_setzero_pd(), b1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    prefetch2(re, im, i);
    const __m256d r0 = _mm256_add_pd(cr, _mm256_loadu_pd(re + i));
    const __m256d r1 = _mm256_add_pd(cr, _mm256_loadu_pd(re + i + 4));
    const __m256d s0 = _mm256_add_pd(ci, _mm256_loadu_pd(im + i));
    const __m256d s1 = _mm256_add_pd(ci, _mm256_loadu_pd(im + i + 4));
    _mm256_storeu_pd(re + i, r0);
    _mm256_storeu_pd(re + i + 4, r1);
    _mm256_storeu_pd(im + i, s0);
    _mm256_storeu_pd(im + i + 4, s1);
    a0 = _mm256_add_pd(a0, r0);
    a1 = _mm256_add_pd(a1, r1);
    b0 = _mm256_add_pd(b0, s0);
    b1 = _mm256_add_pd(b1, s1);
  }
  double sr = hsum(_mm256_add_pd(a0, a1));
  double si = hsum(_mm256_add_pd(b0, b1));
  for (; i < n; ++i) {
    const double r = re[i] + c_re;
    const double s = im[i] + c_im;
    re[i] = r;
    im[i] = s;
    sr += r;
    si += s;
  }
  *sum_re = sr;
  *sum_im = si;
}

void avx2_scale(double* re, double* im, std::size_t n, double s_re,
                double s_im) {
  const __m256d vr = _mm256_set1_pd(s_re);
  const __m256d vi = _mm256_set1_pd(s_im);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    prefetch2(re, im, i);
    const __m256d r = _mm256_loadu_pd(re + i);
    const __m256d s = _mm256_loadu_pd(im + i);
    _mm256_storeu_pd(re + i, _mm256_fmsub_pd(vr, r, _mm256_mul_pd(vi, s)));
    _mm256_storeu_pd(im + i, _mm256_fmadd_pd(vr, s, _mm256_mul_pd(vi, r)));
  }
  for (; i < n; ++i) {
    const double r = re[i];
    const double s = im[i];
    re[i] = s_re * r - s_im * s;
    im[i] = s_re * s + s_im * r;
  }
}

void avx2_gate1(double* re0, double* im0, double* re1, double* im1,
                std::size_t n, const double m[8]) {
  const __m256d m00r = _mm256_set1_pd(m[0]), m00i = _mm256_set1_pd(m[1]);
  const __m256d m01r = _mm256_set1_pd(m[2]), m01i = _mm256_set1_pd(m[3]);
  const __m256d m10r = _mm256_set1_pd(m[4]), m10i = _mm256_set1_pd(m[5]);
  const __m256d m11r = _mm256_set1_pd(m[6]), m11i = _mm256_set1_pd(m[7]);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d a0r = _mm256_loadu_pd(re0 + i);
    const __m256d a0i = _mm256_loadu_pd(im0 + i);
    const __m256d a1r = _mm256_loadu_pd(re1 + i);
    const __m256d a1i = _mm256_loadu_pd(im1 + i);
    // out0 = m00 * a0 + m01 * a1 (complex), out1 likewise with row 1.
    __m256d r = _mm256_mul_pd(m00r, a0r);
    r = _mm256_fnmadd_pd(m00i, a0i, r);
    r = _mm256_fmadd_pd(m01r, a1r, r);
    r = _mm256_fnmadd_pd(m01i, a1i, r);
    __m256d s = _mm256_mul_pd(m00r, a0i);
    s = _mm256_fmadd_pd(m00i, a0r, s);
    s = _mm256_fmadd_pd(m01r, a1i, s);
    s = _mm256_fmadd_pd(m01i, a1r, s);
    _mm256_storeu_pd(re0 + i, r);
    _mm256_storeu_pd(im0 + i, s);
    r = _mm256_mul_pd(m10r, a0r);
    r = _mm256_fnmadd_pd(m10i, a0i, r);
    r = _mm256_fmadd_pd(m11r, a1r, r);
    r = _mm256_fnmadd_pd(m11i, a1i, r);
    s = _mm256_mul_pd(m10r, a0i);
    s = _mm256_fmadd_pd(m10i, a0r, s);
    s = _mm256_fmadd_pd(m11r, a1i, s);
    s = _mm256_fmadd_pd(m11i, a1r, s);
    _mm256_storeu_pd(re1 + i, r);
    _mm256_storeu_pd(im1 + i, s);
  }
  for (; i < n; ++i) {
    const double a0r = re0[i], a0i = im0[i];
    const double a1r = re1[i], a1i = im1[i];
    re0[i] = m[0] * a0r - m[1] * a0i + m[2] * a1r - m[3] * a1i;
    im0[i] = m[0] * a0i + m[1] * a0r + m[2] * a1i + m[3] * a1r;
    re1[i] = m[4] * a0r - m[5] * a0i + m[6] * a1r - m[7] * a1i;
    im1[i] = m[4] * a0i + m[5] * a0r + m[6] * a1i + m[7] * a1r;
  }
}

}  // namespace

const KernelOps& avx2_kernel_ops() {
  static const KernelOps ops{
      .sum = avx2_sum,
      .norm_sq = avx2_norm_sq,
      .inner = avx2_inner,
      .reflect = avx2_reflect,
      .add = avx2_add,
      .scale = avx2_scale,
      .gate1 = avx2_gate1,
  };
  return ops;
}

bool avx2_kernels_compiled() { return true; }

}  // namespace pqs::qsim::kernels

#else  // !(__AVX2__ && __FMA__): degrade to the scalar table.

namespace pqs::qsim::kernels {

const KernelOps& avx2_kernel_ops() { return scalar_kernel_ops(); }

bool avx2_kernels_compiled() { return false; }

}  // namespace pqs::qsim::kernels

#endif

#include "qsim/circuit.h"

#include <sstream>

#include "common/check.h"
#include "common/math.h"
#include "qsim/kernels.h"

namespace pqs::qsim {

namespace {

struct QueryCostVisitor {
  std::uint64_t operator()(const OracleOp&) const { return 1; }
  std::uint64_t operator()(const OraclePhaseOp&) const { return 1; }
  std::uint64_t operator()(const NonTargetMeanOp&) const { return 1; }
  template <typename T>
  std::uint64_t operator()(const T&) const {
    return 0;
  }
};

struct NameVisitor {
  std::string operator()(const Gate1Op& op) const {
    return op.g.name + "(q" + std::to_string(op.q) + ")";
  }
  std::string operator()(const CGate1Op& op) const {
    return "C[" + std::to_string(op.control_mask) + "]" + op.g.name + "(q" +
           std::to_string(op.q) + ")";
  }
  std::string operator()(const LayerOp& op) const {
    return op.g.name + "^(x)n";
  }
  std::string operator()(const OracleOp&) const { return "Oracle(It)"; }
  std::string operator()(const OraclePhaseOp& op) const {
    return "OraclePhase(" + std::to_string(op.phi) + ")";
  }
  std::string operator()(const GlobalDiffusionOp&) const { return "I0"; }
  std::string operator()(const BlockDiffusionOp& op) const {
    return "I0[blocks k=" + std::to_string(op.k) + "]";
  }
  std::string operator()(const BlockRotationOp& op) const {
    return "Rot[blocks k=" + std::to_string(op.k) + ", phi=" +
           std::to_string(op.phi) + "]";
  }
  std::string operator()(const PhaseFlipKnownOp& op) const {
    return "FlipKnown(" + std::to_string(op.x) + ")";
  }
  std::string operator()(const MczOp& op) const {
    return "MCZ(mask=" + std::to_string(op.mask) + ")";
  }
  std::string operator()(const GlobalPhaseOp&) const { return "GlobalPhase"; }
  std::string operator()(const NonTargetMeanOp&) const {
    return "NonTargetMeanReflect";
  }
};

}  // namespace

std::uint64_t op_query_cost(const Op& op) {
  return std::visit(QueryCostVisitor{}, op);
}

std::string op_name(const Op& op) { return std::visit(NameVisitor{}, op); }

Circuit::Circuit(unsigned n_qubits) : n_qubits_(n_qubits) {
  PQS_CHECK(n_qubits >= 1 && n_qubits <= kMaxQubits);
}

Circuit& Circuit::add(Op op) {
  ops_.push_back(std::move(op));
  return *this;
}

Circuit& Circuit::gate1(unsigned q, const Gate2& g) {
  PQS_CHECK_MSG(q < n_qubits_, "qubit index out of range");
  return add(Gate1Op{q, g});
}

Circuit& Circuit::controlled(std::uint64_t control_mask, unsigned q,
                             const Gate2& g) {
  PQS_CHECK_MSG(q < n_qubits_, "qubit index out of range");
  return add(CGate1Op{control_mask, q, g});
}

Circuit& Circuit::layer(const Gate2& g) { return add(LayerOp{g}); }

Circuit& Circuit::oracle() { return add(OracleOp{}); }

Circuit& Circuit::oracle_phase(double phi) { return add(OraclePhaseOp{phi}); }

Circuit& Circuit::global_diffusion() { return add(GlobalDiffusionOp{}); }

Circuit& Circuit::block_diffusion(unsigned k) {
  PQS_CHECK_MSG(k >= 1 && k < n_qubits_, "block bits out of range");
  return add(BlockDiffusionOp{k});
}

Circuit& Circuit::block_rotation(unsigned k, double phi) {
  PQS_CHECK_MSG(k >= 1 && k < n_qubits_, "block bits out of range");
  return add(BlockRotationOp{k, phi});
}

Circuit& Circuit::grover_iteration() {
  oracle();
  return global_diffusion();
}

Circuit& Circuit::partial_iteration(unsigned k) {
  oracle();
  return block_diffusion(k);
}

Circuit& Circuit::global_diffusion_gate_level() {
  layer(gates::H());
  layer(gates::X());
  add(MczOp{pow2(n_qubits_) - 1});
  layer(gates::X());
  layer(gates::H());
  return add(GlobalPhaseOp{Amplitude{-1.0, 0.0}});
}

Circuit& Circuit::non_target_mean_reflection() {
  return add(NonTargetMeanOp{});
}

std::uint64_t Circuit::query_count() const {
  std::uint64_t total = 0;
  for (const auto& op : ops_) {
    total += op_query_cost(op);
  }
  return total;
}

namespace {

struct ApplyVisitor {
  StateVector& state;
  const OracleView& oracle;
  bool oracle_as_identity;

  void operator()(const Gate1Op& op) const { state.apply_gate1(op.q, op.g); }
  void operator()(const CGate1Op& op) const {
    state.apply_controlled_gate1(op.control_mask, op.q, op.g);
  }
  void operator()(const LayerOp& op) const {
    for (unsigned q = 0; q < state.num_qubits(); ++q) {
      state.apply_gate1(q, op.g);
    }
  }
  void operator()(const OracleOp&) const {
    if (oracle_as_identity) {
      return;
    }
    if (!oracle.marked_list.empty()) {
      state.phase_flip_indices(oracle.marked_list);
    } else {
      state.phase_flip_if(oracle.marked);
    }
  }
  void operator()(const OraclePhaseOp& op) const {
    if (oracle_as_identity) {
      return;
    }
    if (!oracle.marked_list.empty()) {
      state.phase_rotate_indices(oracle.marked_list, op.phi);
      return;
    }
    const Amplitude factor = std::polar(1.0, op.phi);
    for (std::size_t i = 0; i < state.dimension(); ++i) {
      if (oracle.marked(static_cast<Index>(i))) {
        state.set_amplitude(static_cast<Index>(i),
                            factor * state.amplitude(static_cast<Index>(i)));
      }
    }
  }
  void operator()(const GlobalDiffusionOp&) const {
    state.reflect_about_uniform();
  }
  void operator()(const BlockDiffusionOp& op) const {
    state.reflect_blocks_about_uniform(op.k);
  }
  void operator()(const BlockRotationOp& op) const {
    state.rotate_blocks_about_uniform(op.k, op.phi);
  }
  void operator()(const PhaseFlipKnownOp& op) const { state.phase_flip(op.x); }
  void operator()(const MczOp& op) const {
    state.phase_flip_mask_all_ones(op.mask);
  }
  void operator()(const GlobalPhaseOp& op) const { state.scale(op.phase); }
  void operator()(const NonTargetMeanOp&) const {
    if (oracle_as_identity) {
      return;
    }
    state.reflect_non_target_about_their_mean(oracle.target);
  }
};

}  // namespace

std::uint64_t Circuit::apply(StateVector& state,
                             const OracleView& oracle) const {
  return apply_range(state, oracle, 0, ops_.size());
}

std::uint64_t Circuit::apply_range(StateVector& state,
                                   const OracleView& oracle, std::size_t begin,
                                   std::size_t end) const {
  PQS_CHECK_MSG(begin <= end && end <= ops_.size(), "bad op range");
  PQS_CHECK_MSG(state.num_qubits() == n_qubits_, "qubit count mismatch");
  std::uint64_t queries = 0;
  for (std::size_t i = begin; i < end; ++i) {
    std::visit(ApplyVisitor{state, oracle, /*oracle_as_identity=*/false},
               ops_[i]);
    queries += op_query_cost(ops_[i]);
  }
  return queries;
}

std::uint64_t Circuit::apply_hybrid(StateVector& state,
                                    const OracleView& oracle,
                                    std::uint64_t identity_until_query) const {
  PQS_CHECK_MSG(state.num_qubits() == n_qubits_, "qubit count mismatch");
  std::uint64_t queries_seen = 0;
  std::uint64_t real_queries = 0;
  for (const auto& op : ops_) {
    const std::uint64_t cost = op_query_cost(op);
    const bool as_identity = cost > 0 && queries_seen < identity_until_query;
    std::visit(ApplyVisitor{state, oracle, as_identity}, op);
    queries_seen += cost;
    if (cost > 0 && !as_identity) {
      real_queries += cost;
    }
  }
  return real_queries;
}

std::string Circuit::to_string() const {
  std::ostringstream os;
  os << "Circuit(n=" << n_qubits_ << ", ops=" << ops_.size()
     << ", queries=" << query_count() << ")\n";
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    os << "  " << i << ": " << op_name(ops_[i]) << '\n';
  }
  return os.str();
}

Circuit make_grover_circuit(unsigned n_qubits, std::uint64_t iterations) {
  Circuit c(n_qubits);
  for (std::uint64_t i = 0; i < iterations; ++i) {
    c.grover_iteration();
  }
  return c;
}

}  // namespace pqs::qsim

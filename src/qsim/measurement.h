// Measurement: sampling, collapse, and empirical distributions.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/random.h"
#include "qsim/state_vector.h"

namespace pqs::qsim {

/// Projectively measure all qubits: samples an outcome, collapses the state
/// to the corresponding basis vector, and returns the outcome.
Index measure_all(StateVector& state, Rng& rng);

/// Projectively measure the first k (most significant) bits: samples a block,
/// zeroes every amplitude outside that block, renormalizes, and returns the
/// block index. This is the final measurement of the partial-search algorithm.
Index measure_block(StateVector& state, unsigned k, Rng& rng);

/// Sample `shots` outcomes without collapsing; returns outcome -> count.
std::map<Index, std::uint64_t> sample_counts(const StateVector& state,
                                             std::uint64_t shots, Rng& rng);

/// Empirical block distribution from `shots` samples of the first k bits.
std::vector<double> empirical_block_distribution(const StateVector& state,
                                                 unsigned k,
                                                 std::uint64_t shots, Rng& rng);

}  // namespace pqs::qsim

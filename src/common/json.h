// A minimal JSON value: parse, build, and canonical serialization.
//
// The wire layer (api/serialize.h, pqs_serve's JSONL protocol) needs JSON
// without external dependencies, and it needs two properties the usual
// tricks with printf don't give:
//   * exact 64-bit integers — SearchSpec carries n_items up to 2^62 and
//     arbitrary uint64 seeds, which a double-only JSON number mangles;
//     integers therefore parse and print through uint64 exactly;
//   * canonical output — object keys sort, no whitespace, doubles render
//     via the shortest round-trip form (std::to_chars) — so the dump of a
//     value is a deterministic function of the value. Request coalescing
//     keys on that string, and CI diffs serve transcripts byte-for-byte.
//
// The grammar is standard JSON; numbers with a sign, fraction, or exponent
// become doubles, bare non-negative integer literals become uint64.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace pqs {

class Json {
 public:
  enum class Kind { kNull, kBool, kUInt, kDouble, kString, kArray, kObject };

  using Array = std::vector<Json>;
  /// std::map: iteration (and therefore dump()) is key-sorted — canonical.
  using Object = std::map<std::string, Json>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(std::uint64_t u) : value_(u) {}
  Json(int u);  // convenience for literals; must be non-negative
  Json(unsigned u) : value_(std::uint64_t{u}) {}
  Json(double d) : value_(d) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(Array a) : value_(std::move(a)) {}
  Json(Object o) : value_(std::move(o)) {}

  static Json make_array() { return Json(Array{}); }
  static Json make_object() { return Json(Object{}); }

  Kind kind() const { return static_cast<Kind>(value_.index()); }
  bool is_null() const { return kind() == Kind::kNull; }
  bool is_bool() const { return kind() == Kind::kBool; }
  bool is_uint() const { return kind() == Kind::kUInt; }
  bool is_double() const { return kind() == Kind::kDouble; }
  bool is_number() const { return is_uint() || is_double(); }
  bool is_string() const { return kind() == Kind::kString; }
  bool is_array() const { return kind() == Kind::kArray; }
  bool is_object() const { return kind() == Kind::kObject; }

  /// Checked accessors; a kind mismatch throws CheckFailure naming the
  /// expected and actual kinds.
  bool as_bool() const;
  std::uint64_t as_uint() const;
  /// Any number (a uint converts exactly when it fits a double's mantissa;
  /// beyond 2^53 callers should use as_uint).
  double as_double() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  Array& as_array();
  const Object& as_object() const;
  Object& as_object();

  // -- object helpers --
  bool has(std::string_view key) const;
  /// Member lookup; a missing key throws CheckFailure naming the key.
  const Json& at(std::string_view key) const;
  /// Insert-or-access for building objects (value starts null).
  Json& operator[](const std::string& key);

  // -- array helper --
  void push_back(Json v);

  friend bool operator==(const Json& a, const Json& b) {
    return a.value_ == b.value_;
  }

  /// Canonical one-line serialization (sorted keys, no whitespace,
  /// shortest-round-trip doubles). Throws on non-finite doubles.
  std::string dump() const;

  /// Parse one JSON document (the whole string must be consumed). Throws
  /// CheckFailure with the byte offset on malformed input.
  static Json parse(std::string_view text);

 private:
  std::variant<std::nullptr_t, bool, std::uint64_t, double, std::string,
               Array, Object>
      value_;
};

}  // namespace pqs

// Deterministic, seedable random number generation.
//
// Everything stochastic in the library (measurement sampling, classical
// Monte-Carlo baselines, randomized test sweeps) draws from pqs::Rng so that
// experiments are reproducible from a single seed printed in each report.
//
// Engine: xoshiro256** (Blackman & Vigna), seeded via splitmix64 — the
// community-standard small fast generator; good enough statistical quality for
// Monte-Carlo query counting, and dependency-free.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace pqs {

/// splitmix64 step; used for seeding and as a cheap stateless hash.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** engine with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// UniformRandomBitGenerator interface (usable with <random> distributions).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() { return next(); }

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform in [0, bound) without modulo bias (Lemire's method + rejection).
  std::uint64_t uniform_below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Marsaglia polar method.
  double normal();

  /// Bernoulli(p).
  bool bernoulli(double p);

  /// A uniformly random permutation of {0, 1, ..., n-1} (Fisher-Yates).
  std::vector<std::uint64_t> permutation(std::uint64_t n);

  /// Sample an index from an (unnormalized) nonnegative weight vector.
  std::size_t sample_discrete(const std::vector<double>& weights);

  /// Split off an independently seeded child generator (for parallel streams).
  Rng split();

 private:
  std::array<std::uint64_t, 4> s_;
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace pqs

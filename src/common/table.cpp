#include "common/table.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace pqs {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  PQS_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> row) {
  PQS_CHECK_MSG(row.size() == header_.size(),
                "table row width does not match header");
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string Table::num(std::uint64_t v) { return std::to_string(v); }
std::string Table::num(std::int64_t v) { return std::to_string(v); }

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto hline = [&] {
    std::string s = "+";
    for (const auto w : widths) {
      s += std::string(w + 2, '-') + "+";
    }
    return s + "\n";
  };
  const auto format_row = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      s += ' ' + row[c] + std::string(widths[c] - row[c].size(), ' ') + " |";
    }
    return s + "\n";
  };

  std::ostringstream os;
  if (!title_.empty()) {
    os << title_ << '\n';
  }
  os << hline() << format_row(header_) << hline();
  for (const auto& row : rows_) {
    os << format_row(row);
  }
  os << hline();
  return os.str();
}

}  // namespace pqs

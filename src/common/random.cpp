#include "common/random.h"

#include <cmath>
#include <numeric>

namespace pqs {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) {
    word = splitmix64(sm);
  }
  // xoshiro must not start in the all-zero state.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) {
    s_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_below(std::uint64_t bound) {
  PQS_CHECK(bound > 0);
  // Lemire's multiply-shift with rejection for exact uniformity.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  PQS_CHECK(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi - lo) + 1;  // hi-lo < 2^63, safe
  return lo + static_cast<std::int64_t>(uniform_below(span));
}

double Rng::uniform01() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  PQS_CHECK(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

double Rng::normal() {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u, v, r2;
  do {
    u = 2.0 * uniform01() - 1.0;
    v = 2.0 * uniform01() - 1.0;
    r2 = u * u + v * v;
  } while (r2 >= 1.0 || r2 == 0.0);
  const double f = std::sqrt(-2.0 * std::log(r2) / r2);
  spare_normal_ = v * f;
  have_spare_normal_ = true;
  return u * f;
}

bool Rng::bernoulli(double p) {
  PQS_CHECK(p >= 0.0 && p <= 1.0);
  return uniform01() < p;
}

std::vector<std::uint64_t> Rng::permutation(std::uint64_t n) {
  std::vector<std::uint64_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::uint64_t{0});
  for (std::uint64_t i = n; i > 1; --i) {
    const std::uint64_t j = uniform_below(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

std::size_t Rng::sample_discrete(const std::vector<double>& weights) {
  PQS_CHECK(!weights.empty());
  double total = 0.0;
  for (const double w : weights) {
    PQS_CHECK_MSG(w >= 0.0, "sample_discrete: negative weight");
    total += w;
  }
  PQS_CHECK_MSG(total > 0.0, "sample_discrete: all weights zero");
  double u = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) {
      return i;
    }
  }
  return weights.size() - 1;  // roundoff fell through; last positive bin
}

Rng Rng::split() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace pqs

#include "common/math.h"

#include <algorithm>
#include <bit>

namespace pqs {

unsigned log2_exact(std::uint64_t v) {
  PQS_CHECK_MSG(is_pow2(v), "log2_exact requires a power of two");
  return static_cast<unsigned>(std::countr_zero(v));
}

double clamped_asin(double x, double slack) {
  PQS_CHECK_MSG(x >= -1.0 - slack && x <= 1.0 + slack,
                "clamped_asin: argument too far outside [-1, 1]");
  return std::asin(std::clamp(x, -1.0, 1.0));
}

double clamped_acos(double x, double slack) {
  PQS_CHECK_MSG(x >= -1.0 - slack && x <= 1.0 + slack,
                "clamped_acos: argument too far outside [-1, 1]");
  return std::acos(std::clamp(x, -1.0, 1.0));
}

double clamped_sqrt(double x, double slack) {
  PQS_CHECK_MSG(x >= -slack, "clamped_sqrt: argument too negative");
  return std::sqrt(std::max(x, 0.0));
}

bool approx_rel(double a, double b, double tol) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= tol * scale;
}

double grover_angle(std::uint64_t n_items, std::uint64_t n_marked) {
  PQS_CHECK(n_items > 0 && n_marked > 0 && n_marked <= n_items);
  return std::asin(
      std::sqrt(static_cast<double>(n_marked) / static_cast<double>(n_items)));
}

double grover_success_probability(std::uint64_t n_items, std::uint64_t m_iters,
                                  std::uint64_t n_marked) {
  const double theta = grover_angle(n_items, n_marked);
  const double s = std::sin((2.0 * static_cast<double>(m_iters) + 1.0) * theta);
  return s * s;
}

std::uint64_t grover_optimal_iterations(std::uint64_t n_items,
                                        std::uint64_t n_marked) {
  const double theta = grover_angle(n_items, n_marked);
  const double m = kPi / (4.0 * theta) - 0.5;
  return m <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(m));
}

}  // namespace pqs

// Checked assertions used throughout the library.
//
// PQS_CHECK fires in every build type (Release included): violated invariants
// in a numerical reproduction are bugs we want to see, not UB we want to hide.
// PQS_DCHECK compiles out in Release for hot kernels.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace pqs {

/// Thrown by PQS_CHECK failures; carries file:line and the failed expression.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(std::string_view expr, std::string_view message,
                               const std::source_location& loc);
}  // namespace detail

}  // namespace pqs

#define PQS_CHECK(expr)                                                        \
  do {                                                                         \
    if (!(expr)) {                                                             \
      ::pqs::detail::check_failed(#expr, "", std::source_location::current()); \
    }                                                                          \
  } while (false)

#define PQS_CHECK_MSG(expr, msg)                                                \
  do {                                                                          \
    if (!(expr)) {                                                              \
      ::pqs::detail::check_failed(#expr, (msg), std::source_location::current()); \
    }                                                                           \
  } while (false)

#ifdef NDEBUG
#define PQS_DCHECK(expr) \
  do {                   \
  } while (false)
#else
#define PQS_DCHECK(expr) PQS_CHECK(expr)
#endif

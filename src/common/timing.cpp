#include "common/timing.h"

#include <sstream>

namespace pqs {

double Stopwatch::seconds() const {
  const auto dt = Clock::now() - start_;
  return std::chrono::duration<double>(dt).count();
}

std::string Stopwatch::human() const {
  const double s = seconds();
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(2);
  if (s >= 1.0) {
    os << s << " s";
  } else if (s >= 1e-3) {
    os << s * 1e3 << " ms";
  } else {
    os << s * 1e6 << " us";
  }
  return os.str();
}

}  // namespace pqs

// Small numeric helpers shared by every subsystem.
//
// All the angle bookkeeping of the paper (theta = pi/2 * eps, eq. (3)/(4)
// arcsines, Grover rotation angles) funnels through the clamped helpers here so
// that values that are mathematically in [-1, 1] but numerically 1 + 1e-16 do
// not produce NaNs.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

#include "common/check.h"

namespace pqs {

inline constexpr double kPi = std::numbers::pi_v<double>;
inline constexpr double kHalfPi = kPi / 2.0;
inline constexpr double kQuarterPi = kPi / 4.0;

/// 2^e as an unsigned 64-bit value. Checked: e must fit.
constexpr std::uint64_t pow2(unsigned e) {
  return e < 64 ? (std::uint64_t{1} << e)
                : (throw CheckFailure("pow2: exponent >= 64"), 0);
}

/// Exact integer log2 of a power of two. Checked.
unsigned log2_exact(std::uint64_t v);

/// True iff v is a power of two (v > 0).
constexpr bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// arcsin with the argument clamped into [-1, 1] to absorb roundoff.
/// Arguments farther than `slack` outside the interval are an error.
double clamped_asin(double x, double slack = 1e-9);

/// arccos with the same clamping contract as clamped_asin.
double clamped_acos(double x, double slack = 1e-9);

/// sqrt that treats tiny negative arguments (>= -slack) as zero.
double clamped_sqrt(double x, double slack = 1e-9);

/// |a - b| <= tol ?
inline bool approx_eq(double a, double b, double tol) {
  return std::fabs(a - b) <= tol;
}

/// Relative closeness: |a-b| <= tol * max(1, |a|, |b|).
bool approx_rel(double a, double b, double tol);

/// The Grover rotation half-angle for N items and M marked ones:
/// sin(theta) = sqrt(M/N). Each iteration advances the state by 2*theta.
double grover_angle(std::uint64_t n_items, std::uint64_t n_marked = 1);

/// Closed-form success probability of standard Grover search after m
/// iterations on N items with M marked: sin^2((2m+1) * theta).
double grover_success_probability(std::uint64_t n_items, std::uint64_t m_iters,
                                  std::uint64_t n_marked = 1);

/// The iteration count maximizing the closed-form success probability:
/// round((pi / (4 theta)) - 1/2). Matches the paper's (pi/4) sqrt(N).
std::uint64_t grover_optimal_iterations(std::uint64_t n_items,
                                        std::uint64_t n_marked = 1);

}  // namespace pqs

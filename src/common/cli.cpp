#include "common/cli.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

#include "common/check.h"

namespace pqs {

Cli::Cli(int argc, const char* const* argv) {
  PQS_CHECK(argc >= 1);
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    PQS_CHECK_MSG(arg.rfind("--", 0) == 0,
                  "positional arguments are not supported: " + arg);
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare boolean flag
    }
  }
}

std::optional<std::string> Cli::flag(const std::string& name,
                                     const std::string& help_text) {
  docs_.push_back({name, help_text, ""});
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::string Cli::get_string(const std::string& name, const std::string& def,
                            const std::string& help_text) {
  docs_.push_back({name, help_text, def});
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t def,
                          const std::string& help_text) {
  docs_.push_back({name, help_text, std::to_string(def)});
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return def;
  }
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw CheckFailure("flag --" + name + " expects an integer, got '" +
                       it->second + "'");
  }
}

double Cli::get_double(const std::string& name, double def,
                       const std::string& help_text) {
  docs_.push_back({name, help_text, std::to_string(def)});
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return def;
  }
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw CheckFailure("flag --" + name + " expects a number, got '" +
                       it->second + "'");
  }
}

bool Cli::get_bool(const std::string& name, bool def,
                   const std::string& help_text) {
  docs_.push_back({name, help_text, def ? "true" : "false"});
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return def;
  }
  if (it->second == "true" || it->second == "1" || it->second == "yes") {
    return true;
  }
  if (it->second == "false" || it->second == "0" || it->second == "no") {
    return false;
  }
  throw CheckFailure("flag --" + name + " expects a boolean, got '" +
                     it->second + "'");
}

std::string Cli::help() const {
  std::ostringstream os;
  os << "usage: " << program_ << " [flags]\n";
  for (const auto& doc : docs_) {
    os << "  --" << doc.name;
    if (!doc.default_value.empty()) {
      os << " (default: " << doc.default_value << ")";
    }
    os << "\n      " << doc.help << "\n";
  }
  return os.str();
}

namespace {

/// Classic dynamic-programming edit distance, for "did you mean" hints.
std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) {
    row[j] = j;
  }
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t substitution =
          diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitution});
    }
  }
  return row[b.size()];
}

}  // namespace

void Cli::finish() const {
  std::set<std::string> known;
  for (const auto& doc : docs_) {
    known.insert(doc.name);
  }
  std::string unknown;
  for (const auto& [name, value] : values_) {
    if (known.contains(name)) {
      continue;
    }
    unknown += unknown.empty() ? "unknown flag --" : "; unknown flag --";
    unknown += name;
    // Suggest the closest declared flag when it is plausibly a typo.
    std::string best;
    std::size_t best_distance = name.size();
    for (const auto& candidate : known) {
      const std::size_t d = edit_distance(name, candidate);
      if (d < best_distance) {
        best_distance = d;
        best = candidate;
      }
    }
    if (!best.empty() && best_distance <= 2) {
      unknown += " (did you mean --" + best + "?)";
    }
  }
  PQS_CHECK_MSG(unknown.empty(), unknown);
}

}  // namespace pqs

// A bounded least-recently-used map.
//
// Two long-lived caches in the service stack must not grow without limit —
// the Planner's plan cache and the Service's result cache — and both want
// the same policy: keep the most recently touched entries, evict the
// coldest, count what happens. LruMap is that policy as a container:
// a recency list plus an index map. NOT thread-safe; callers hold their own
// lock and annotate their instance for the Clang thread-safety analysis —
// `LruMap<K, V> cache_ PQS_GUARDED_BY(mutex_);` — so every access path is
// machine-checked to hold that lock (see api/planner.h and
// service/service.h, the two owners).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <utility>

#include "common/check.h"

namespace pqs {

template <typename Key, typename Value, typename Compare = std::less<Key>>
class LruMap {
 public:
  explicit LruMap(std::size_t capacity) : capacity_(capacity) {
    PQS_CHECK_MSG(capacity >= 1, "LruMap needs capacity >= 1");
  }

  /// Lookup; touching an entry makes it most-recent. nullptr on a miss.
  Value* find(const Key& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) {
      return nullptr;
    }
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->second;
  }

  /// Insert or overwrite; the entry becomes most-recent. Evicts the
  /// least-recently-used entry when the map would exceed capacity.
  Value& put(const Key& key, Value value) {
    if (const auto it = index_.find(key); it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return it->second->second;
    }
    order_.emplace_front(key, std::move(value));
    index_.emplace(key, order_.begin());
    if (order_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
      ++evictions_;
    }
    return order_.front().second;
  }

  /// Shrink (or grow) the bound; shrinking evicts cold entries now.
  void set_capacity(std::size_t capacity) {
    PQS_CHECK_MSG(capacity >= 1, "LruMap needs capacity >= 1");
    capacity_ = capacity;
    while (order_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
      ++evictions_;
    }
  }

  std::size_t size() const { return order_.size(); }
  std::size_t capacity() const { return capacity_; }
  /// Entries dropped by the bound since construction / last clear().
  std::uint64_t evictions() const { return evictions_; }

  void clear() {
    order_.clear();
    index_.clear();
    evictions_ = 0;
  }

 private:
  std::size_t capacity_;
  /// front = most recently used; back = eviction candidate.
  std::list<std::pair<Key, Value>> order_;
  std::map<Key, typename std::list<std::pair<Key, Value>>::iterator, Compare>
      index_;
  std::uint64_t evictions_ = 0;
};

}  // namespace pqs

#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace pqs {

void RunningStats::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const {
  PQS_CHECK_MSG(count_ > 0, "mean of empty accumulator");
  return mean_;
}

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::sem() const {
  if (count_ == 0) {
    return 0.0;
  }
  return stddev() / std::sqrt(static_cast<double>(count_));
}

double RunningStats::ci95_halfwidth() const { return 1.96 * sem(); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  PQS_CHECK(lo < hi);
  PQS_CHECK(bins > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double f = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::size_t>(f * static_cast<double>(counts_.size()));
  idx = std::min(idx, counts_.size() - 1);
  ++counts_[idx];
}

double Histogram::bin_lo(std::size_t i) const {
  PQS_CHECK(i < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const {
  PQS_CHECK(i < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(i + 1) /
                   static_cast<double>(counts_.size());
}

std::string Histogram::render(std::size_t bar_width) const {
  std::uint64_t peak = 1;
  for (const auto c : counts_) {
    peak = std::max(peak, c);
  }
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto len = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(bar_width));
    os << '[';
    os.setf(std::ios::fixed);
    os.precision(4);
    os.width(10);
    os << bin_lo(i) << ", ";
    os.width(10);
    os << bin_hi(i) << ") |" << std::string(len, '#') << "  " << counts_[i]
       << '\n';
  }
  if (underflow_ != 0 || overflow_ != 0) {
    os << "underflow: " << underflow_ << "  overflow: " << overflow_ << '\n';
  }
  return os.str();
}

std::string signed_bar(double value, double max_abs, std::size_t half_width) {
  PQS_CHECK(max_abs > 0.0);
  const double frac = std::clamp(value / max_abs, -1.0, 1.0);
  const auto len = static_cast<std::size_t>(
      std::round(std::fabs(frac) * static_cast<double>(half_width)));
  std::string out(2 * half_width + 1, ' ');
  out[half_width] = '|';
  if (frac >= 0.0) {
    for (std::size_t i = 0; i < len; ++i) {
      out[half_width + 1 + i] = '#';
    }
  } else {
    for (std::size_t i = 0; i < len; ++i) {
      out[half_width - 1 - i] = '#';
    }
  }
  return out;
}

}  // namespace pqs

// Wall-clock timing for benches and progress reporting.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace pqs {

/// Simple steady-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last reset.
  double seconds() const;
  /// Elapsed milliseconds.
  double millis() const { return seconds() * 1e3; }
  /// Elapsed integer nanoseconds (the unit of SearchReport's timing split).
  std::uint64_t nanos() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

  /// "1.23 s" / "45.6 ms" / "789 us" human rendering.
  std::string human() const;

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// The sanctioned "now" for deadline arithmetic (JobHandle::wait_for and
/// friends). Everything that reads a clock goes through common/timing or
/// obs/trace — pqs_lint's raw-clock rule rejects direct *_clock::now()
/// calls elsewhere, so trace tests can fake time in one place.
inline std::chrono::steady_clock::time_point steady_now() {
  return std::chrono::steady_clock::now();
}

}  // namespace pqs

// ASCII table rendering for the experiment binaries.
//
// Every bench prints rows in the same layout as the paper's table so that
// paper-vs-measured comparisons in EXPERIMENTS.md are a straight read-off.
#pragma once

#include <string>
#include <vector>

namespace pqs {

/// Column-aligned ASCII table with a header row and optional title.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void set_title(std::string title) { title_ = std::move(title); }

  /// Append a row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: format a double with fixed precision.
  static std::string num(double v, int precision = 3);
  /// Convenience: format an integer.
  static std::string num(std::uint64_t v);
  static std::string num(std::int64_t v);

  std::string render() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pqs

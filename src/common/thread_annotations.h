// Clang thread-safety annotations + capability-annotated lock wrappers.
//
// Every locking invariant in the service stack ("stats_ is guarded by
// mutex_", "reap_cancelled_locked requires mutex_ held") used to live in
// comments, checked by review. This header makes them machine-checked:
// members annotated PQS_GUARDED_BY and functions annotated PQS_REQUIRES /
// PQS_ACQUIRE / PQS_RELEASE are verified by Clang's -Wthread-safety
// capability analysis — forgetting a lock acquisition is a compile error
// under `cmake -DPQS_THREAD_SAFETY=ON` (the CI thread-safety job), not a
// race to catch dynamically. On compilers without the analysis (GCC, MSVC)
// every macro expands to nothing and pqs::Mutex is a zero-cost veneer over
// std::mutex.
//
// Usage pattern (see service/service.h for the full-scale example):
//
//   pqs::Mutex mutex_;
//   std::map<K, V> table_ PQS_GUARDED_BY(mutex_);
//
//   void touch() {
//     pqs::LockGuard lock(mutex_);   // scoped acquire, analysis-visible
//     table_.clear();                // OK: capability held
//   }
//   void touch_locked() PQS_REQUIRES(mutex_);  // caller must hold mutex_
//
// To wait on a condition, pair pqs::UniqueLock with
// std::condition_variable_any and spell the predicate as an inline loop —
//
//   pqs::UniqueLock lock(mutex_);
//   while (!ready_) cv_.wait(lock);
//
// — NOT cv.wait(lock, [&]{ return ready_; }): the analysis checks a lambda
// body as a separate function that does not hold the capability, so the
// predicate-lambda form warns while the inline loop (which provably runs
// with the lock held) is clean.
#pragma once

#include <mutex>

// Attribute plumbing: real attributes under Clang, nothing elsewhere.
#if defined(__clang__) && !defined(SWIG)
#define PQS_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define PQS_THREAD_ANNOTATION_ATTRIBUTE(x)
#endif

/// Declares a class to be a capability (a lockable resource).
#define PQS_CAPABILITY(x) PQS_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Declares an RAII class whose lifetime acquires/releases a capability.
#define PQS_SCOPED_CAPABILITY PQS_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Member is only read/written with the given capability held.
#define PQS_GUARDED_BY(x) PQS_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointee (not the pointer itself) is guarded by the capability.
#define PQS_PT_GUARDED_BY(x) PQS_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Function acquires the capability (held on return, not on entry).
#define PQS_ACQUIRE(...) \
  PQS_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Function releases the capability (held on entry, not on return).
#define PQS_RELEASE(...) \
  PQS_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns the given value.
#define PQS_TRY_ACQUIRE(...) \
  PQS_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// Caller must hold the capability for the duration of the call.
#define PQS_REQUIRES(...) \
  PQS_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock-by-reentry guard).
#define PQS_EXCLUDES(...) \
  PQS_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define PQS_RETURN_CAPABILITY(x) \
  PQS_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// A is always acquired before B (lock-order documentation).
#define PQS_ACQUIRED_BEFORE(...) \
  PQS_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define PQS_ACQUIRED_AFTER(...) \
  PQS_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

/// Escape hatch: function is exempt from analysis (use sparingly, with a
/// comment saying why the analysis cannot model it).
#define PQS_NO_THREAD_SAFETY_ANALYSIS \
  PQS_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

namespace pqs {

/// std::mutex as a Clang capability. The one mutex type project code may
/// declare — tools/pqs_lint.py flags bare std::mutex members, because a
/// bare mutex is invisible to the analysis and its guarded data reverts to
/// comment-enforced locking.
class PQS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PQS_ACQUIRE() { mu_.lock(); }
  void unlock() PQS_RELEASE() { mu_.unlock(); }
  bool try_lock() PQS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Scoped lock (std::lock_guard shape) the analysis can see.
class PQS_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) PQS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~LockGuard() PQS_RELEASE() { mu_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

/// Scoped lock that is also BasicLockable, for condition-variable waits
/// (std::condition_variable_any::wait(UniqueLock&) calls unlock()/lock()
/// around the park — those calls happen inside the standard library, which
/// the analysis does not check, so from the caller's point of view the
/// capability is held across the wait; that is exactly the guarantee the
/// woken code observes). Manual unlock()/lock() in analyzed code is also
/// tracked: the destructor releases only if still held.
class PQS_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) PQS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~UniqueLock() PQS_RELEASE() {
    if (held_) {
      mu_.unlock();
    }
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() PQS_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }
  void unlock() PQS_RELEASE() {
    held_ = false;
    mu_.unlock();
  }

 private:
  Mutex& mu_;
  bool held_ = true;
};

}  // namespace pqs

#include "common/check.h"

#include <sstream>

namespace pqs::detail {

void check_failed(std::string_view expr, std::string_view message,
                  const std::source_location& loc) {
  std::ostringstream os;
  os << "PQS_CHECK failed: (" << expr << ") at " << loc.file_name() << ':'
     << loc.line();
  if (!message.empty()) {
    os << " — " << message;
  }
  throw CheckFailure(os.str());
}

}  // namespace pqs::detail

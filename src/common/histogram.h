// A log-bucketed histogram for latency distributions.
//
// A fleet front-end cannot publish every per-request latency, and a plain
// mean hides exactly the tail a service is judged on. LogHistogram keeps a
// (pqs::Histogram in common/stats.h is the fixed-range double-bin sibling
// for amplitude pictures; this one is integer, log-spaced, mergeable.)
// fixed 256-slot array of log-spaced buckets — values 0..7 exact, then four
// sub-buckets per power of two (relative bucket width <= 25%) up to the full
// uint64 range — so recording is O(1) with no allocation, merging client
// shards is element-wise addition, and p50/p90/p99 fall out of one pass.
// The service layer records the PR 5 timing split (queue_ns / plan_ns /
// exec_ns) into three of these per Service, and the `stats` op serializes
// them with to_json(); tools/pqs_loadgen reuses the same type to aggregate
// client-observed latencies.
//
// NOT thread-safe, by the same design decision as LruMap (common/lru.h):
// the owner holds its own lock and annotates the member —
// `LogHistogram queue_ PQS_GUARDED_BY(mutex_);` — so the capability analysis
// machine-checks every access path instead of this type paying for a mutex
// nobody asked for.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

#include "common/check.h"
#include "common/json.h"

namespace pqs {

class LogHistogram {
 public:
  /// 8 exact slots (0..7) + 61 octaves x 4 sub-buckets covers all of uint64.
  static constexpr std::size_t kBuckets = 8 + 61 * 4;

  /// Bucket index of a value. Values below 8 get exact buckets; above, the
  /// top three significant bits pick (octave, quarter), so a bucket spans
  /// at most 25% of its lower bound.
  static constexpr std::size_t bucket_index(std::uint64_t value) {
    if (value < 8) {
      return static_cast<std::size_t>(value);
    }
    const int octave = 63 - std::countl_zero(value);  // >= 3
    const std::uint64_t quarter = (value >> (octave - 2)) & 3;
    return 8 + static_cast<std::size_t>(octave - 3) * 4 +
           static_cast<std::size_t>(quarter);
  }

  /// Smallest value that lands in bucket `index` (the bound percentile()
  /// reports, so estimates err low, never high-side a tail they didn't see).
  static constexpr std::uint64_t bucket_lower(std::size_t index) {
    if (index < 8) {
      return index;
    }
    const int octave = 3 + static_cast<int>((index - 8) / 4);
    const std::uint64_t quarter = (index - 8) % 4;
    return (std::uint64_t{1} << octave) + (quarter << (octave - 2));
  }

  void record(std::uint64_t value) {
    ++counts_[bucket_index(value)];
    ++count_;
    if (value > max_) {
      max_ = value;
    }
  }

  std::uint64_t count() const { return count_; }
  /// Largest recorded value, exact (not bucketed). 0 when empty.
  std::uint64_t max() const { return max_; }

  /// Lower bound of the bucket holding the q-quantile (q in [0, 1]);
  /// 0 when empty. percentile(1.0) returns the exact max.
  std::uint64_t percentile(double q) const {
    PQS_CHECK_MSG(q >= 0.0 && q <= 1.0, "percentile wants q in [0, 1]");
    if (count_ == 0) {
      return 0;
    }
    if (q >= 1.0) {
      return max_;
    }
    // rank in [1, count_]: the smallest bucket whose cumulative count
    // reaches it.
    const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count_)) + 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += counts_[i];
      if (seen >= rank) {
        return bucket_lower(i);
      }
    }
    return max_;  // unreachable: seen == count_ after the loop
  }

  /// Add `n` observations directly to bucket `index` — the reconstruction
  /// path (from_json, obs::AtomicHistogram::snapshot) where the original
  /// values are gone and only their bucketing survives. Does not touch
  /// max_: callers that know the true max follow with note_max().
  void add_to_bucket(std::size_t index, std::uint64_t n) {
    PQS_CHECK_MSG(index < kBuckets, "bucket index out of range");
    counts_[index] += n;
    count_ += n;
  }

  /// Raise max_ to `value` if larger (paired with add_to_bucket above).
  void note_max(std::uint64_t value) {
    if (value > max_) {
      max_ = value;
    }
  }

  /// Element-wise addition — how loadgen folds per-client shards together.
  void merge(const LogHistogram& other) {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      counts_[i] += other.counts_[i];
    }
    count_ += other.count_;
    if (other.max_ > max_) {
      max_ = other.max_;
    }
  }

  void clear() {
    counts_.fill(0);
    count_ = 0;
    max_ = 0;
  }

  /// {"count":N,"max":M,"p50":...,"p90":...,"p99":...,
  ///  "buckets":[[lower,count],...]} — only non-empty buckets, in order, so
  /// the dump stays small and canonical (the stats op embeds this).
  Json to_json() const {
    Json json = Json::make_object();
    json["count"] = count_;
    json["max"] = max_;
    json["p50"] = percentile(0.50);
    json["p90"] = percentile(0.90);
    json["p99"] = percentile(0.99);
    Json buckets = Json::make_array();
    for (std::size_t i = 0; i < kBuckets; ++i) {
      if (counts_[i] == 0) {
        continue;
      }
      Json entry = Json::make_array();
      entry.push_back(bucket_lower(i));
      entry.push_back(counts_[i]);
      buckets.push_back(std::move(entry));
    }
    json["buckets"] = std::move(buckets);
    return json;
  }

  /// Inverse of to_json(): rebuild a histogram from its wire form. Bucket
  /// lowers are mapped back through bucket_index, so a dump produced by any
  /// node with the same bucket layout round-trips exactly — this is what
  /// lets pqs_router merge `metrics` snapshots from remote workers without
  /// ever seeing their raw samples. Percentile fields are recomputed, not
  /// trusted. Throws CheckFailure on a malformed dump.
  static LogHistogram from_json(const Json& json) {
    LogHistogram histogram;
    for (const Json& entry : json.at("buckets").as_array()) {
      const Json::Array& pair = entry.as_array();
      PQS_CHECK_MSG(pair.size() == 2, "histogram bucket wants [lower, count]");
      const std::uint64_t lower = pair[0].as_uint();
      const std::uint64_t n = pair[1].as_uint();
      const std::size_t index = bucket_index(lower);
      PQS_CHECK_MSG(bucket_lower(index) == lower,
                    "histogram bucket lower is not a bucket boundary");
      histogram.add_to_bucket(index, n);
    }
    PQS_CHECK_MSG(histogram.count_ == json.at("count").as_uint(),
                  "histogram bucket counts disagree with total");
    histogram.note_max(json.at("max").as_uint());
    return histogram;
  }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace pqs

// Streaming statistics and histograms for the Monte-Carlo baselines and the
// experiment reports.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace pqs {

/// Welford streaming accumulator: mean / variance / min / max in one pass.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::uint64_t count() const { return count_; }
  double mean() const;
  /// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  /// Standard error of the mean.
  double sem() const;
  /// Half-width of the ~95% normal confidence interval (1.96 * sem).
  double ci95_halfwidth() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-range histogram with uniform bins; used for amplitude histograms
/// (Figure 5) and query-count distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bins() const { return counts_.size(); }
  std::uint64_t bin_count(std::size_t i) const { return counts_.at(i); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  std::uint64_t total() const { return total_; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }

  /// Multi-line ASCII rendering with proportional bars.
  std::string render(std::size_t bar_width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

/// One-line signed bar chart used to render amplitude pictures like the
/// paper's Figure 1 and Figure 5 (positive bars right, negative bars left).
std::string signed_bar(double value, double max_abs, std::size_t half_width);

}  // namespace pqs

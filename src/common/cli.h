// Minimal command-line flag parsing for bench and example binaries.
//
// Supports `--name value`, `--name=value`, and boolean `--flag`. Unknown flags
// are an error so typos in experiment scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace pqs {

/// Parsed command line. Construct from (argc, argv), then query typed flags.
class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// Declare a flag with help text; returns its string value if present.
  std::optional<std::string> flag(const std::string& name,
                                  const std::string& help);

  /// Typed accessors with defaults. Declaring registers the flag for --help.
  std::string get_string(const std::string& name, const std::string& def,
                         const std::string& help);
  std::int64_t get_int(const std::string& name, std::int64_t def,
                       const std::string& help);
  double get_double(const std::string& name, double def,
                    const std::string& help);
  bool get_bool(const std::string& name, bool def, const std::string& help);

  /// True when --help was passed; callers should print help() and exit 0.
  bool help_requested() const { return help_requested_; }
  /// Rendered help text from all declared flags.
  std::string help() const;

  /// After all flags are declared, verify no unknown flags were supplied.
  /// Throws CheckFailure listing the offenders.
  void finish() const;

  const std::string& program() const { return program_; }

 private:
  struct FlagDoc {
    std::string name;
    std::string help;
    std::string default_value;
  };

  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<FlagDoc> docs_;
  bool help_requested_ = false;
};

}  // namespace pqs

#include "common/json.h"

#include <charconv>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/check.h"

namespace pqs {

namespace {

std::string_view kind_name(Json::Kind kind) {
  switch (kind) {
    case Json::Kind::kNull: return "null";
    case Json::Kind::kBool: return "bool";
    case Json::Kind::kUInt: return "integer";
    case Json::Kind::kDouble: return "double";
    case Json::Kind::kString: return "string";
    case Json::Kind::kArray: return "array";
    case Json::Kind::kObject: return "object";
  }
  return "?";
}

[[noreturn]] void kind_error(Json::Kind want, Json::Kind got) {
  throw CheckFailure(std::string("JSON: expected ") +
                     std::string(kind_name(want)) + ", got " +
                     std::string(kind_name(got)));
}

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through
        }
    }
  }
  out += '"';
}

/// Recursive-descent JSON parser over a string_view.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    check(pos_ == text_.size(), "trailing characters after JSON value");
    return value;
  }

 private:
  void check(bool ok, const std::string& what) const {
    if (!ok) {
      throw CheckFailure("JSON parse error at byte " + std::to_string(pos_) +
                         ": " + what);
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    check(pos_ < text_.size(), "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    check(pos_ < text_.size() && text_[pos_] == c,
          std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Json parse_value() {
    // parse_object/parse_array recurse through here; without a cap, one
    // deeply nested line blows the stack and kills the whole process (a
    // server must answer malformed input with an error, not a segfault).
    check(depth_ < kMaxDepth, "nesting deeper than 64 levels");
    ++depth_;
    skip_ws();
    const char c = peek();
    Json value;
    if (c == '{') {
      value = parse_object();
    } else if (c == '[') {
      value = parse_array();
    } else if (c == '"') {
      value = Json(parse_string());
    } else if (consume_literal("true")) {
      value = Json(true);
    } else if (consume_literal("false")) {
      value = Json(false);
    } else if (consume_literal("null")) {
      value = Json(nullptr);
    } else {
      value = parse_number();
    }
    --depth_;
    return value;
  }

  Json parse_object() {
    expect('{');
    Json::Object object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(object));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      check(!object.contains(key), "duplicate key \"" + key + "\"");
      skip_ws();
      expect(':');
      object.emplace(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Json(std::move(object));
    }
  }

  Json parse_array() {
    expect('[');
    Json::Array array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(array));
    }
    while (true) {
      array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Json(std::move(array));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      check(pos_ < text_.size(), "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      check(pos_ < text_.size(), "unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          check(pos_ + 4 <= text_.size(), "truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else check(false, "bad \\u escape digit");
          }
          // Basic-plane code point to UTF-8. Surrogates are rejected, not
          // transcoded: encoding them blindly would emit CESU-8 bytes that
          // downstream strict-UTF-8 JSON parsers refuse.
          check(code < 0xD800 || code > 0xDFFF,
                "surrogate \\u escapes are not supported");
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          check(false, std::string("bad escape '\\") + e + "'");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') {
      ++pos_;
    }
    bool integral = text_[start] != '-';
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view lit = text_.substr(start, pos_ - start);
    check(!lit.empty() && lit != "-", "expected a number");
    if (integral) {
      std::uint64_t u = 0;
      const auto [ptr, ec] =
          std::from_chars(lit.data(), lit.data() + lit.size(), u);
      if (ec == std::errc() && ptr == lit.data() + lit.size()) {
        return Json(u);
      }
    }
    double d = 0.0;
    const auto [ptr, ec] =
        std::from_chars(lit.data(), lit.data() + lit.size(), d);
    check(ec == std::errc() && ptr == lit.data() + lit.size(),
          "malformed number \"" + std::string(lit) + "\"");
    return Json(d);
  }

  static constexpr std::size_t kMaxDepth = 64;

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

void dump_value(const Json& v, std::string& out);

void dump_double(double d, std::string& out) {
  PQS_CHECK_MSG(std::isfinite(d), "JSON cannot carry a non-finite number");
  char buf[32];
  // Shortest representation that round-trips — the canonical form.
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  PQS_CHECK(ec == std::errc());
  out.append(buf, ptr);
  // Keep doubles distinguishable from integers on the wire ("1" vs "1.0"):
  // a double that prints as a bare integer gains ".0".
  const std::string_view printed(buf, static_cast<std::size_t>(ptr - buf));
  if (printed.find('.') == std::string_view::npos &&
      printed.find('e') == std::string_view::npos) {
    out += ".0";
  }
}

void dump_value(const Json& v, std::string& out) {
  switch (v.kind()) {
    case Json::Kind::kNull:
      out += "null";
      break;
    case Json::Kind::kBool:
      out += v.as_bool() ? "true" : "false";
      break;
    case Json::Kind::kUInt:
      out += std::to_string(v.as_uint());
      break;
    case Json::Kind::kDouble:
      dump_double(v.as_double(), out);
      break;
    case Json::Kind::kString:
      dump_string(v.as_string(), out);
      break;
    case Json::Kind::kArray: {
      out += '[';
      bool first = true;
      for (const auto& item : v.as_array()) {
        if (!first) out += ',';
        first = false;
        dump_value(item, out);
      }
      out += ']';
      break;
    }
    case Json::Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, value] : v.as_object()) {
        if (!first) out += ',';
        first = false;
        dump_string(key, out);
        out += ':';
        dump_value(value, out);
      }
      out += '}';
      break;
    }
  }
}

}  // namespace

Json::Json(int u) : value_(std::uint64_t{0}) {
  PQS_CHECK_MSG(u >= 0, "negative integers are not part of the wire schema");
  value_ = static_cast<std::uint64_t>(u);
}

bool Json::as_bool() const {
  if (!is_bool()) kind_error(Kind::kBool, kind());
  return std::get<bool>(value_);
}

std::uint64_t Json::as_uint() const {
  if (!is_uint()) kind_error(Kind::kUInt, kind());
  return std::get<std::uint64_t>(value_);
}

double Json::as_double() const {
  if (is_uint()) {
    return static_cast<double>(std::get<std::uint64_t>(value_));
  }
  if (!is_double()) kind_error(Kind::kDouble, kind());
  return std::get<double>(value_);
}

const std::string& Json::as_string() const {
  if (!is_string()) kind_error(Kind::kString, kind());
  return std::get<std::string>(value_);
}

const Json::Array& Json::as_array() const {
  if (!is_array()) kind_error(Kind::kArray, kind());
  return std::get<Array>(value_);
}

Json::Array& Json::as_array() {
  if (!is_array()) kind_error(Kind::kArray, kind());
  return std::get<Array>(value_);
}

const Json::Object& Json::as_object() const {
  if (!is_object()) kind_error(Kind::kObject, kind());
  return std::get<Object>(value_);
}

Json::Object& Json::as_object() {
  if (!is_object()) kind_error(Kind::kObject, kind());
  return std::get<Object>(value_);
}

bool Json::has(std::string_view key) const {
  const auto& object = as_object();
  return object.find(std::string(key)) != object.end();
}

const Json& Json::at(std::string_view key) const {
  const auto& object = as_object();
  const auto it = object.find(std::string(key));
  PQS_CHECK_MSG(it != object.end(),
                "JSON object has no key \"" + std::string(key) + "\"");
  return it->second;
}

Json& Json::operator[](const std::string& key) {
  if (is_null()) {
    value_ = Object{};
  }
  return as_object()[key];
}

void Json::push_back(Json v) {
  if (is_null()) {
    value_ = Array{};
  }
  as_array().push_back(std::move(v));
}

std::string Json::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

Json Json::parse(std::string_view text) {
  Parser parser(text);
  return parser.parse_document();
}

}  // namespace pqs

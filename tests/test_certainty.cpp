#include "partial/certainty.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/math.h"
#include "partial/bounds.h"
#include "partial/optimizer.h"

namespace pqs::partial {
namespace {

class CertaintyShape
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(CertaintyShape, BlockProbabilityIsExactlyOne) {
  const auto [n, k] = GetParam();
  Rng rng(900 + 32 * n + k);
  const oracle::Database db =
      oracle::Database::with_qubits(n, pow2(n) - 2);
  const auto result = run_partial_search_certain(db, k, rng);
  EXPECT_NEAR(result.block_probability, 1.0, 1e-9) << "n=" << n << " k=" << k;
  EXPECT_TRUE(result.correct);
  EXPECT_NEAR(result.schedule.predicted_block_probability, 1.0, 1e-9);
}

TEST_P(CertaintyShape, QueryMeterMatchesSchedule) {
  const auto [n, k] = GetParam();
  Rng rng(1);
  const oracle::Database db = oracle::Database::with_qubits(n, 3);
  const auto result = run_partial_search_certain(db, k, rng);
  EXPECT_EQ(db.queries(), result.schedule.queries);
}

INSTANTIATE_TEST_SUITE_P(Shapes, CertaintyShape,
                         ::testing::Values(std::tuple{6u, 1u},
                                           std::tuple{6u, 2u},
                                           std::tuple{8u, 2u},
                                           std::tuple{8u, 3u},
                                           std::tuple{10u, 1u},
                                           std::tuple{10u, 3u},
                                           std::tuple{12u, 2u},
                                           std::tuple{12u, 4u},
                                           std::tuple{14u, 3u}));

TEST(Certainty, CostsAtMostAFewExtraQueries) {
  // Theorem 1: certainty "increases the number of queries by at most a
  // constant" relative to the high-probability variant. Compare against the
  // tight-floor (error 1/sqrt(N)) optimum — the loose default floor lets
  // the plain variant cut Step 2 short, which is a different operating
  // point, not a fair baseline.
  for (const auto& [n, k] : {std::pair{10u, 2u}, std::pair{12u, 3u},
                             std::pair{14u, 2u}, std::pair{16u, 4u}}) {
    const std::uint64_t n_items = pow2(n);
    const double tight_floor =
        1.0 - 1.0 / std::sqrt(static_cast<double>(n_items));
    const auto plain = optimize_integer(n_items, pow2(k), tight_floor);
    const auto certain = certainty_schedule(n_items, pow2(k));
    EXPECT_LE(certain.queries, plain.queries + 12) << "n=" << n << " k=" << k;
  }
}

TEST(Certainty, BeatsFullSearchCount) {
  for (const auto& [n, k] :
       {std::pair{12u, 1u}, std::pair{14u, 2u}, std::pair{16u, 3u}}) {
    const std::uint64_t n_items = pow2(n);
    const auto sched = certainty_schedule(n_items, pow2(k));
    EXPECT_LT(sched.queries, grover_optimal_iterations(n_items))
        << "n=" << n << " k=" << k;
  }
}

TEST(Certainty, RespectsTheorem2LowerBound) {
  // Zero-error partial search cannot beat (pi/4)(1 - 1/sqrt(K)) sqrt(N);
  // at finite N allow the O(1) additive slack of the bound.
  for (const auto& [n, k] :
       {std::pair{12u, 1u}, std::pair{14u, 2u}, std::pair{16u, 3u}}) {
    const std::uint64_t n_items = pow2(n);
    const double floor_q =
        lower_bound_coefficient(pow2(k)) *
        std::sqrt(static_cast<double>(n_items));
    const auto sched = certainty_schedule(n_items, pow2(k));
    EXPECT_GT(static_cast<double>(sched.queries) + 3.0, floor_q)
        << "n=" << n << " k=" << k;
  }
}

TEST(Certainty, ScheduleIsDeterministic) {
  const auto a = certainty_schedule(1 << 12, 8);
  const auto b = certainty_schedule(1 << 12, 8);
  EXPECT_EQ(a.l1, b.l1);
  EXPECT_EQ(a.l2_plain, b.l2_plain);
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_DOUBLE_EQ(a.phases.oracle_phase, b.phases.oracle_phase);
}

TEST(Certainty, ExplicitL1IsHonored) {
  const auto sched = certainty_schedule(1 << 10, 4, 20);
  EXPECT_EQ(sched.l1, 20u);
  EXPECT_NEAR(sched.predicted_block_probability, 1.0, 1e-9);
}

TEST(Certainty, WorksForNonPowerOfTwoShapes) {
  // The schedule math runs on the subspace model, which supports any K | N:
  // the Figure-1 shape (N = 12, K = 3) included.
  const auto sched = certainty_schedule(12, 3);
  EXPECT_NEAR(sched.predicted_block_probability, 1.0, 1e-9);
  // Figure 1 achieves 2 queries; the generic schedule may use an extra
  // generalized step but must stay in the same ballpark.
  EXPECT_LE(sched.queries, 4u);
}

TEST(Certainty, CancellationRatioSigns) {
  // K = 2: nearly balanced (lambda ~ -1/(2 w_b w_o) ~ 0-). K > 2: negative
  // and growing in magnitude with K (the target-block rest must go negative,
  // Figure 5).
  EXPECT_LT(cancellation_ratio(1 << 10, 2), 0.0);
  EXPECT_LT(cancellation_ratio(1 << 10, 8), cancellation_ratio(1 << 10, 2));
}

TEST(Certainty, ManyTrialsNeverFail) {
  Rng rng(77);
  const oracle::Database db = oracle::Database::with_qubits(10, 511);
  for (int trial = 0; trial < 30; ++trial) {
    const auto result = run_partial_search_certain(db, 2, rng);
    ASSERT_TRUE(result.correct);
  }
}

}  // namespace
}  // namespace pqs::partial

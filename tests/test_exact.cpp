#include "grover/exact.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/math.h"

namespace pqs::grover {
namespace {

class ExactGrover : public ::testing::TestWithParam<unsigned> {};

TEST_P(ExactGrover, ReachesTargetWithProbabilityOne) {
  const unsigned n = GetParam();
  const oracle::Database db =
      oracle::Database::with_qubits(n, pow2(n) - 1);
  const auto state = evolve_exact(db);
  EXPECT_NEAR(state.probability(db.target()), 1.0, 1e-9) << "n=" << n;
}

TEST_P(ExactGrover, QueryCountWithinOneOfPlainOptimum) {
  const unsigned n = GetParam();
  const std::uint64_t n_items = pow2(n);
  const auto exact = exact_query_count(n_items);
  const auto plain = grover_optimal_iterations(n_items);
  EXPECT_LE(exact, plain + 1) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, ExactGrover,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u,
                                           10u, 12u, 14u));

TEST(ExactGrover, ScheduleStopsShortOfTarget) {
  for (unsigned n = 2; n <= 14; ++n) {
    const std::uint64_t n_items = pow2(n);
    const auto sched = exact_schedule(n_items);
    const double theta = grover_angle(n_items);
    // (2m+1) theta <= pi/2 must hold (never overshoot)...
    EXPECT_LE((2.0 * static_cast<double>(sched.plain_iterations) + 1.0) *
                  theta,
              kHalfPi + 1e-12)
        << "n=" << n;
    // ...and m must be maximal.
    EXPECT_GT((2.0 * static_cast<double>(sched.plain_iterations + 1) + 1.0) *
                  theta,
              kHalfPi - 1e-12)
        << "n=" << n;
  }
}

TEST(ExactGrover, N4NeedsNoFinalStep) {
  // N = 4: theta = pi/6, one plain iteration lands exactly on the target.
  const auto sched = exact_schedule(4);
  EXPECT_EQ(sched.plain_iterations, 1u);
  EXPECT_FALSE(sched.final_step_needed);
  EXPECT_EQ(exact_query_count(4), 1u);
}

TEST(ExactGrover, DatabaseMetersMatchSchedule) {
  const oracle::Database db = oracle::Database::with_qubits(9, 17);
  evolve_exact(db);
  EXPECT_EQ(db.queries(), exact_query_count(512));
}

TEST(ExactGrover, SearchExactAlwaysCorrect) {
  Rng rng(99);
  for (unsigned n : {3u, 5u, 8u, 11u}) {
    const oracle::Database db = oracle::Database::with_qubits(n, pow2(n) / 2);
    for (int trial = 0; trial < 10; ++trial) {
      const auto result = search_exact(db, rng);
      ASSERT_TRUE(result.correct) << "n=" << n;
      ASSERT_NEAR(result.success_probability, 1.0, 1e-9);
    }
  }
}

TEST(ExactGrover, TwelveItemFullSearchNeedsThreeQueries) {
  // Paper, Section 1.3: "to find the target with certainty, we would need at
  // least three (quantum) queries" in a twelve-item list. Our sure-success
  // construction on N = 12 (not a power of two, so computed from the
  // schedule math alone) uses exactly 3.
  EXPECT_EQ(exact_query_count(12), 3u);
}

}  // namespace
}  // namespace pqs::grover

#include "partial/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/check.h"
#include "common/math.h"
#include "partial/bounds.h"

namespace pqs::partial {
namespace {

TEST(StepAngles, EpsZeroIsFullSearch) {
  // eps = 0: theta = 0, no Step-2 work needed at all.
  const auto a = step_angles(0.0, 8);
  ASSERT_TRUE(a.feasible);
  EXPECT_NEAR(a.theta, 0.0, 1e-15);
  EXPECT_NEAR(a.theta1, 0.0, 1e-15);
  EXPECT_NEAR(a.theta2, 0.0, 1e-15);
}

TEST(StepAngles, FeasibilityEndsForLargeKAndEps) {
  // For K > 4 the theta2 arcsin argument exceeds 1 as eps -> 1.
  EXPECT_TRUE(step_angles(1.0, 4).feasible);
  EXPECT_FALSE(step_angles(1.0, 5).feasible);
  EXPECT_FALSE(step_angles(1.0, 32).feasible);
  EXPECT_TRUE(step_angles(0.1, 32).feasible);
}

TEST(StepAngles, K2HasNoTheta2) {
  // K = 2: the (K-2) factor kills theta2 for every eps.
  for (double eps : {0.2, 0.5, 0.9, 1.0}) {
    const auto a = step_angles(eps, 2);
    ASSERT_TRUE(a.feasible);
    EXPECT_NEAR(a.theta2, 0.0, 1e-15) << "eps=" << eps;
  }
}

TEST(StepAngles, RejectsOutOfRangeEps) {
  EXPECT_THROW(step_angles(-0.1, 4), CheckFailure);
  EXPECT_THROW(step_angles(1.1, 4), CheckFailure);
}

TEST(QueryCoefficient, EpsZeroEqualsQuarterPi) {
  for (std::uint64_t k : {2u, 3u, 8u, 64u}) {
    EXPECT_NEAR(query_coefficient(0.0, k), kQuarterPi, 1e-12) << "K=" << k;
  }
}

TEST(QueryCoefficient, InfeasibleEpsIsInfinite) {
  EXPECT_TRUE(std::isinf(query_coefficient(1.0, 32)));
}

TEST(OptimizeEpsilon, ReproducesPaperTableToThreeDecimals) {
  // THE key reproduction: Section 3.1's "Upper bound" column.
  const struct {
    std::uint64_t k;
    double paper;
  } rows[] = {{2, 0.555}, {3, 0.592}, {4, 0.615},
              {5, 0.633}, {8, 0.664}, {32, 0.725}};
  for (const auto& row : rows) {
    const auto opt = optimize_epsilon(row.k);
    EXPECT_NEAR(opt.coefficient, row.paper, 1.5e-3) << "K=" << row.k;
  }
}

TEST(OptimizeEpsilon, BeatsFullSearchForEveryK) {
  for (std::uint64_t k = 2; k <= 512; k *= 2) {
    const auto opt = optimize_epsilon(k);
    EXPECT_LT(opt.coefficient, kQuarterPi) << "K=" << k;
  }
}

TEST(OptimizeEpsilon, RespectsTheorem2LowerBound) {
  for (std::uint64_t k = 2; k <= 1024; k *= 2) {
    const auto opt = optimize_epsilon(k);
    EXPECT_GT(opt.coefficient, lower_bound_coefficient(k)) << "K=" << k;
  }
}

TEST(OptimizeEpsilon, BeatsNaiveBlockDiscard) {
  // The Section-3 algorithm must dominate the Section-1.2 naive algorithm.
  for (std::uint64_t k = 2; k <= 256; k *= 2) {
    const auto opt = optimize_epsilon(k);
    EXPECT_LT(opt.coefficient, naive_block_discard_coefficient(k))
        << "K=" << k;
  }
}

TEST(OptimizeEpsilon, SavingsScaleAsOneOverSqrtK) {
  // Theorem 1: c_K >= 0.42/sqrt(K) for large K, i.e.
  // (pi/4 - coefficient) * 4/pi * sqrt(K) >= 0.42.
  for (std::uint64_t k : {64u, 256u, 1024u, 4096u}) {
    const auto opt = optimize_epsilon(k);
    const double c_k =
        (kQuarterPi - opt.coefficient) / kQuarterPi * std::sqrt(static_cast<double>(k));
    EXPECT_GE(c_k, 0.42) << "K=" << k;
    EXPECT_LE(c_k, 1.0) << "K=" << k;  // cannot beat the lower bound scale
  }
}

TEST(OptimizeEpsilon, RecipeEpsIsNearlyOptimalForLargeK) {
  // The paper's eps = 1/sqrt(K) recipe is within O(1/K) of the optimum.
  for (std::uint64_t k : {64u, 1024u}) {
    const auto opt = optimize_epsilon(k);
    const double recipe = recipe_coefficient(k);
    EXPECT_GE(recipe, opt.coefficient - 1e-12);
    EXPECT_LT(recipe - opt.coefficient, 2.0 / static_cast<double>(k));
  }
}

TEST(OptimizeEpsilon, K2OptimumSkipsStepOneAlmostEntirely) {
  // For K = 2 the optimum sits at (numerically, just inside) eps = 1: Step 1
  // contributes essentially nothing and the coefficient is within 1e-6 of
  // the boundary value (pi/2)/(2 sqrt(2)) = 0.5554.
  const auto opt = optimize_epsilon(2);
  EXPECT_NEAR(opt.epsilon, 1.0, 1e-2);
  EXPECT_LE(opt.coefficient, kHalfPi / (2.0 * std::sqrt(2.0)) + 1e-12);
  EXPECT_NEAR(opt.coefficient, kHalfPi / (2.0 * std::sqrt(2.0)), 1e-6);
}

class IntegerOptimizerShape
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(IntegerOptimizerShape, MeetsFloorAndIsMinimal) {
  const auto [n_bits, k_bits] = GetParam();
  const std::uint64_t n_items = pow2(n_bits);
  const std::uint64_t k_blocks = pow2(k_bits);
  const double floor_p = default_min_success(n_items);
  const auto opt = optimize_integer(n_items, k_blocks, floor_p);

  EXPECT_GE(opt.success, floor_p);
  EXPECT_EQ(opt.queries, opt.l1 + opt.l2 + 1);

  // Minimality: no (l1', l2') with one query fewer meets the floor.
  const SubspaceModel model(n_items, k_blocks);
  const std::uint64_t budget = opt.queries - 1;  // l1' + l2' + 1 = budget
  for (std::uint64_t l1 = 0; l1 + 1 <= budget; ++l1) {
    const std::uint64_t l2 = budget - 1 - l1;
    const double p = model.run_grk(l1, l2).target_block_probability();
    ASSERT_LT(p, floor_p) << "cheaper (l1=" << l1 << ", l2=" << l2
                          << ") also meets the floor";
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, IntegerOptimizerShape,
                         ::testing::Values(std::tuple{8u, 1u},
                                           std::tuple{8u, 2u},
                                           std::tuple{10u, 1u},
                                           std::tuple{10u, 3u},
                                           std::tuple{12u, 2u},
                                           std::tuple{12u, 4u}));

TEST(OptimizeInteger, BeatsFullGroverCount) {
  const std::uint64_t n_items = 1 << 16;
  for (std::uint64_t k : {2u, 4u, 8u, 32u}) {
    const auto opt =
        optimize_integer(n_items, k, default_min_success(n_items));
    EXPECT_LT(opt.queries, grover_optimal_iterations(n_items)) << "K=" << k;
  }
}

TEST(OptimizeInteger, QueriesGrowWithK) {
  // Larger K = more of the address wanted = closer to full search.
  const std::uint64_t n_items = 1 << 14;
  std::uint64_t prev = 0;
  for (std::uint64_t k : {2u, 4u, 8u, 16u, 32u}) {
    const auto opt =
        optimize_integer(n_items, k, default_min_success(n_items));
    EXPECT_GE(opt.queries, prev) << "K=" << k;
    prev = opt.queries;
  }
}

TEST(OptimizeInteger, ImpossibleFloorThrows) {
  EXPECT_THROW(optimize_integer(256, 4, 1.1), CheckFailure);
}

TEST(OptimizeInteger, CoefficientApproachesAsymptoticOptimum) {
  // With the tight floor 1 - 1/sqrt(N), the finite-N count divided by
  // sqrt(N) should approach the eps-optimum coefficient from below-ish;
  // at n = 18 they agree to a few percent of sqrt(N).
  const std::uint64_t n_items = 1 << 18;
  const double sqrt_n = std::sqrt(static_cast<double>(n_items));
  for (std::uint64_t k : {4u, 8u}) {
    const auto opt =
        optimize_integer(n_items, k, 1.0 - 1.0 / sqrt_n);
    const double measured = static_cast<double>(opt.queries) / sqrt_n;
    const double asymptotic = optimize_epsilon(k).coefficient;
    EXPECT_NEAR(measured, asymptotic, 0.04) << "K=" << k;
  }
}

TEST(DefaultMinSuccess, MatchesPaperErrorScale) {
  EXPECT_NEAR(default_min_success(1 << 16), 1.0 - 4.0 / 256.0, 1e-15);
  EXPECT_LT(default_min_success(100), 1.0);
}

}  // namespace
}  // namespace pqs::partial

#include "qsim/circuit.h"

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/math.h"
#include "oracle/database.h"

namespace pqs::qsim {
namespace {

TEST(Circuit, QueryCountCountsOracleOpsOnly) {
  Circuit c(4);
  c.hadamard_all().oracle().global_diffusion().oracle_phase(0.5).gate1(
      0, gates::X());
  c.non_target_mean_reflection();
  EXPECT_EQ(c.query_count(), 3u);
}

TEST(Circuit, GroverIterationIsOneQuery) {
  Circuit c(4);
  c.grover_iteration();
  EXPECT_EQ(c.query_count(), 1u);
  EXPECT_EQ(c.size(), 2u);  // oracle + diffusion
}

TEST(Circuit, ApplyMatchesManualEvolution) {
  const oracle::Database db = oracle::Database::with_qubits(5, 11);
  Circuit c(5);
  for (int i = 0; i < 4; ++i) {
    c.grover_iteration();
  }
  auto circuit_state = StateVector::uniform(5);
  const auto queries = c.apply(circuit_state, db.view());
  EXPECT_EQ(queries, 4u);

  auto manual = StateVector::uniform(5);
  for (int i = 0; i < 4; ++i) {
    manual.phase_flip(11);
    manual.reflect_about_uniform();
  }
  EXPECT_LT(circuit_state.linf_distance(manual), 1e-12);
}

TEST(Circuit, MakeGroverCircuitMatchesBuilder) {
  const auto a = make_grover_circuit(4, 3);
  Circuit b(4);
  for (int i = 0; i < 3; ++i) {
    b.grover_iteration();
  }
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(a.query_count(), b.query_count());
}

TEST(Circuit, PartialIterationUsesBlockDiffusion) {
  const oracle::Database db = oracle::Database::with_qubits(6, 33);
  Circuit c(6);
  c.partial_iteration(2);
  auto state = StateVector::uniform(6);
  c.apply(state, db.view());

  auto manual = StateVector::uniform(6);
  manual.phase_flip(33);
  manual.reflect_blocks_about_uniform(2);
  EXPECT_LT(state.linf_distance(manual), 1e-12);
}

TEST(Circuit, GateLevelDiffusionEqualsFusedKernel) {
  const oracle::Database db = oracle::Database::with_qubits(5, 7);
  // Prepare an arbitrary state by a few gates, then compare both diffusion
  // realizations.
  Circuit prep(5);
  prep.hadamard_all().gate1(1, gates::T()).gate1(3, gates::Ry(0.6));

  auto a = StateVector::zero_state(5);
  prep.apply(a, db.view());
  auto b = a;

  Circuit fused(5);
  fused.global_diffusion();
  fused.apply(a, db.view());

  Circuit gates_only(5);
  gates_only.global_diffusion_gate_level();
  gates_only.apply(b, db.view());

  EXPECT_LT(a.linf_distance(b), 1e-12);
  EXPECT_EQ(gates_only.query_count(), 0u);
}

TEST(Circuit, HybridIdentityUntilSkipsEarlyQueries) {
  const oracle::Database db = oracle::Database::with_qubits(4, 9);
  Circuit c(4);
  for (int i = 0; i < 5; ++i) {
    c.grover_iteration();
  }
  // All five queries replaced by identity: the diffusion fixes |psi0>, so
  // the state must remain uniform.
  auto state = StateVector::uniform(4);
  const auto real_queries = c.apply_hybrid(state, db.view(), 5);
  EXPECT_EQ(real_queries, 0u);
  EXPECT_LT(state.linf_distance(StateVector::uniform(4)), 1e-12);
}

TEST(Circuit, HybridSuffixMatchesShorterRealRun) {
  // First 2 of 5 queries identity == running only the last 3 iterations
  // (diffusion on uniform is the identity).
  const oracle::Database db = oracle::Database::with_qubits(4, 9);
  Circuit five(4);
  for (int i = 0; i < 5; ++i) {
    five.grover_iteration();
  }
  auto hybrid = StateVector::uniform(4);
  const auto real_queries = five.apply_hybrid(hybrid, db.view(), 2);
  EXPECT_EQ(real_queries, 3u);

  Circuit three(4);
  for (int i = 0; i < 3; ++i) {
    three.grover_iteration();
  }
  auto direct = StateVector::uniform(4);
  three.apply(direct, db.view());
  EXPECT_LT(hybrid.linf_distance(direct), 1e-12);
}

TEST(Circuit, ApplyRangeSplitsExecution) {
  const oracle::Database db = oracle::Database::with_qubits(4, 3);
  Circuit c(4);
  for (int i = 0; i < 4; ++i) {
    c.grover_iteration();
  }
  auto split = StateVector::uniform(4);
  c.apply_range(split, db.view(), 0, 4);             // first 2 iterations
  c.apply_range(split, db.view(), 4, c.size());      // the rest
  auto whole = StateVector::uniform(4);
  c.apply(whole, db.view());
  EXPECT_LT(split.linf_distance(whole), 1e-12);
}

TEST(Circuit, ApplyRangeRejectsBadBounds) {
  const oracle::Database db = oracle::Database::with_qubits(3, 0);
  Circuit c(3);
  c.grover_iteration();
  auto state = StateVector::uniform(3);
  EXPECT_THROW(c.apply_range(state, db.view(), 3, 2), CheckFailure);
  EXPECT_THROW(c.apply_range(state, db.view(), 0, 99), CheckFailure);
}

TEST(Circuit, QubitCountMismatchRejected) {
  const oracle::Database db = oracle::Database::with_qubits(3, 0);
  Circuit c(3);
  c.grover_iteration();
  auto wrong = StateVector::uniform(4);
  EXPECT_THROW(c.apply(wrong, db.view()), CheckFailure);
}

TEST(Circuit, NonTargetMeanOpUsesOracleTarget) {
  const oracle::Database db = oracle::Database::with_qubits(3, 5);
  Circuit c(3);
  c.non_target_mean_reflection();
  auto state = StateVector::uniform(3);
  state.phase_flip(5);
  auto manual = state;
  c.apply(state, db.view());
  manual.reflect_non_target_about_their_mean(5);
  EXPECT_LT(state.linf_distance(manual), 1e-12);
}

TEST(Circuit, ToStringListsOps) {
  Circuit c(4);
  c.grover_iteration().partial_iteration(2);
  const std::string s = c.to_string();
  EXPECT_NE(s.find("Oracle(It)"), std::string::npos);
  EXPECT_NE(s.find("I0"), std::string::npos);
  EXPECT_NE(s.find("blocks k=2"), std::string::npos);
  EXPECT_NE(s.find("queries=2"), std::string::npos);
}

TEST(Circuit, OpNameCoversAllVariants) {
  EXPECT_EQ(op_name(OracleOp{}), "Oracle(It)");
  EXPECT_EQ(op_name(GlobalDiffusionOp{}), "I0");
  EXPECT_EQ(op_name(NonTargetMeanOp{}), "NonTargetMeanReflect");
  EXPECT_NE(op_name(Gate1Op{0, gates::H()}).find("H"), std::string::npos);
  EXPECT_NE(op_name(MczOp{7}).find("MCZ"), std::string::npos);
}

TEST(Circuit, BlockDiffusionValidatesK) {
  Circuit c(4);
  EXPECT_THROW(c.block_diffusion(0), CheckFailure);
  EXPECT_THROW(c.block_diffusion(4), CheckFailure);
  EXPECT_NO_THROW(c.block_diffusion(3));
}

}  // namespace
}  // namespace pqs::qsim

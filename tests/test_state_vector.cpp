#include "qsim/state_vector.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/math.h"

namespace pqs::qsim {
namespace {

TEST(StateVector, ZeroStateIsBasisZero) {
  const auto sv = StateVector::zero_state(3);
  EXPECT_EQ(sv.dimension(), 8u);
  EXPECT_NEAR(sv.probability(0), 1.0, 1e-15);
  for (Index x = 1; x < 8; ++x) {
    EXPECT_NEAR(sv.probability(x), 0.0, 1e-15);
  }
}

TEST(StateVector, UniformHasEqualProbabilities) {
  const auto sv = StateVector::uniform(4);
  for (Index x = 0; x < 16; ++x) {
    EXPECT_NEAR(sv.probability(x), 1.0 / 16.0, 1e-15);
  }
  EXPECT_NEAR(sv.norm_squared(), 1.0, 1e-14);
}

TEST(StateVector, BasisState) {
  const auto sv = StateVector::basis(3, 5);
  EXPECT_NEAR(sv.probability(5), 1.0, 1e-15);
  EXPECT_NEAR(sv.norm_squared(), 1.0, 1e-15);
}

TEST(StateVector, BasisRejectsOutOfRange) {
  EXPECT_THROW(StateVector::basis(2, 4), CheckFailure);
}

TEST(StateVector, FromAmplitudesRequiresPowerOfTwo) {
  EXPECT_THROW(StateVector::from_amplitudes(std::vector<Amplitude>(12)),
               CheckFailure);
  const auto sv =
      StateVector::from_amplitudes(std::vector<Amplitude>(8, {0.25, 0.0}));
  EXPECT_EQ(sv.num_qubits(), 3u);
}

TEST(StateVector, QubitCountLimits) {
  EXPECT_THROW(StateVector(0), CheckFailure);
  EXPECT_THROW(StateVector(kMaxQubits + 1), CheckFailure);
}

TEST(StateVector, NormalizeRescales) {
  auto sv = StateVector::from_amplitudes(
      std::vector<Amplitude>{{3.0, 0.0}, {4.0, 0.0}});
  EXPECT_NEAR(sv.norm(), 5.0, 1e-12);
  sv.normalize();
  EXPECT_NEAR(sv.norm(), 1.0, 1e-12);
  EXPECT_NEAR(sv.probability(0), 9.0 / 25.0, 1e-12);
}

TEST(StateVector, InnerAndFidelity) {
  const auto a = StateVector::basis(2, 1);
  const auto b = StateVector::uniform(2);
  EXPECT_NEAR(std::abs(a.inner(b)), 0.5, 1e-12);
  EXPECT_NEAR(a.fidelity(b), 0.25, 1e-12);
  EXPECT_NEAR(a.fidelity(a), 1.0, 1e-12);
}

TEST(StateVector, BlockProbabilityPartitionsUnity) {
  auto sv = StateVector::uniform(5);
  sv.apply_gate1(0, gates::T());
  sv.apply_gate1(3, gates::H());
  for (unsigned k = 1; k <= 5; ++k) {
    const auto dist = sv.block_distribution(k);
    double total = 0.0;
    for (const double p : dist) {
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-12) << "k=" << k;
  }
}

TEST(StateVector, BlockProbabilityUsesMostSignificantBits) {
  // |110> (index 6) with k=1 lies in block 1; with k=2 in block 3.
  const auto sv = StateVector::basis(3, 6);
  EXPECT_NEAR(sv.block_probability(1, 1), 1.0, 1e-15);
  EXPECT_NEAR(sv.block_probability(2, 3), 1.0, 1e-15);
  EXPECT_NEAR(sv.block_probability(2, 0), 0.0, 1e-15);
}

TEST(StateVector, HadamardAllMapsZeroToUniform) {
  auto sv = StateVector::zero_state(6);
  sv.apply_hadamard_all();
  const auto uniform = StateVector::uniform(6);
  EXPECT_LT(sv.linf_distance(uniform), 1e-12);
}

TEST(StateVector, ReflectionsPreserveNorm) {
  auto sv = StateVector::uniform(6);
  sv.phase_flip(17);
  sv.reflect_about_uniform();
  sv.reflect_blocks_about_uniform(2);
  sv.rotate_blocks_about_uniform(2, 0.77);
  sv.reflect_non_target_about_their_mean(17);
  EXPECT_NEAR(sv.norm_squared(), 1.0, 1e-12);
}

TEST(StateVector, SampleFollowsDistribution) {
  // 3/4 weight on |01>, 1/4 on |10>.
  auto sv = StateVector::from_amplitudes(std::vector<Amplitude>{
      {0.0, 0.0}, {std::sqrt(0.75), 0.0}, {0.5, 0.0}, {0.0, 0.0}});
  Rng rng(99);
  int count1 = 0;
  constexpr int kShots = 20000;
  for (int s = 0; s < kShots; ++s) {
    const Index x = sv.sample(rng);
    ASSERT_TRUE(x == 1 || x == 2);
    count1 += x == 1 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(count1) / kShots, 0.75, 0.02);
}

TEST(StateVector, SampleBlockMatchesBlockDistribution) {
  auto sv = StateVector::uniform(4);
  sv.phase_flip(3);
  sv.reflect_about_uniform();  // one Grover step toward block 0
  Rng rng(7);
  const auto dist = sv.block_distribution(2);
  std::vector<int> counts(4, 0);
  constexpr int kShots = 40000;
  for (int s = 0; s < kShots; ++s) {
    ++counts[sv.sample_block(2, rng)];
  }
  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_NEAR(static_cast<double>(counts[b]) / kShots, dist[b], 0.02);
  }
}

TEST(StateVector, RenderShowsBlocksAndValues) {
  const auto sv = StateVector::uniform(3);
  const std::string r = sv.render_real_amplitudes(1);
  EXPECT_NE(r.find("block 0"), std::string::npos);
  EXPECT_NE(r.find("block 1"), std::string::npos);
  EXPECT_NE(r.find("0.35"), std::string::npos);  // 1/sqrt(8) = 0.3536
}

TEST(StateVector, RenderRejectsLargeStates) {
  const auto sv = StateVector::uniform(10);
  EXPECT_THROW(sv.render_real_amplitudes(), CheckFailure);
}

}  // namespace
}  // namespace pqs::qsim

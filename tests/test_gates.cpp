#include "qsim/gates.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/math.h"

namespace pqs::qsim {
namespace {

using gates::H;
using gates::I;
using gates::Phase;
using gates::Rx;
using gates::Ry;
using gates::Rz;
using gates::S;
using gates::Sdg;
using gates::T;
using gates::Tdg;
using gates::U;
using gates::X;
using gates::Y;
using gates::Z;

class NamedGateTest : public ::testing::TestWithParam<Gate2> {};

TEST_P(NamedGateTest, IsUnitary) {
  EXPECT_LT(GetParam().unitarity_defect(), 1e-12) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    StandardGates, NamedGateTest,
    ::testing::Values(I(), H(), X(), Y(), Z(), S(), Sdg(), T(), Tdg(),
                      Phase(0.7), Rx(1.1), Ry(-2.3), Rz(0.4),
                      U(0.3, 1.2, -0.8)),
    [](const ::testing::TestParamInfo<Gate2>& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) {
          c = '_';
        }
      }
      return name + "_" + std::to_string(info.index);
    });

TEST(Gates, HadamardIsSelfInverse) {
  EXPECT_LT(H().compose(H()).distance(I()), 1e-12);
}

TEST(Gates, PauliAlgebra) {
  // X Y = i Z.
  const Gate2 xy = X().compose(Y());
  Gate2 iz = Z();
  for (auto& row : iz.m) {
    for (auto& e : row) {
      e *= Amplitude{0.0, 1.0};
    }
  }
  EXPECT_LT(xy.distance(iz), 1e-12);
}

TEST(Gates, SSquaredIsZ) {
  EXPECT_LT(S().compose(S()).distance(Z()), 1e-12);
}

TEST(Gates, TSquaredIsS) {
  EXPECT_LT(T().compose(T()).distance(S()), 1e-12);
}

TEST(Gates, SdgIsAdjointOfS) {
  EXPECT_LT(Sdg().distance(S().adjoint()), 1e-12);
}

TEST(Gates, HZHEqualsX) {
  EXPECT_LT(H().compose(Z()).compose(H()).distance(X()), 1e-12);
}

TEST(Gates, PhasePiIsZ) {
  EXPECT_LT(Phase(kPi).distance(Z()), 1e-12);
}

TEST(Gates, RotationComposition) {
  // Ry(a) Ry(b) = Ry(a+b).
  EXPECT_LT(Ry(0.5).compose(Ry(0.7)).distance(Ry(1.2)), 1e-12);
  EXPECT_LT(Rz(0.5).compose(Rz(0.7)).distance(Rz(1.2)), 1e-12);
}

TEST(Gates, RyFullTurnIsMinusIdentity) {
  Gate2 minus_i = I();
  for (auto& row : minus_i.m) {
    for (auto& e : row) {
      e = -e;
    }
  }
  EXPECT_LT(Ry(2.0 * kPi).distance(minus_i), 1e-12);
}

TEST(Gates, UGeneralizesNamedGates) {
  // U(pi, 0, pi) = X up to convention; U(0, 0, lambda) = Phase(lambda).
  EXPECT_LT(U(kPi, 0.0, kPi).distance(X()), 1e-12);
  EXPECT_LT(U(0.0, 0.0, 0.9).distance(Phase(0.9)), 1e-12);
}

TEST(Gates, AdjointReversesComposition) {
  const Gate2 a = Rx(0.3), b = Ry(0.9);
  const Gate2 lhs = a.compose(b).adjoint();
  const Gate2 rhs = b.adjoint().compose(a.adjoint());
  EXPECT_LT(lhs.distance(rhs), 1e-12);
}

TEST(Gates, DistanceIsZeroOnlyForEqualGates) {
  EXPECT_DOUBLE_EQ(H().distance(H()), 0.0);
  EXPECT_GT(H().distance(X()), 0.1);
}

}  // namespace
}  // namespace pqs::qsim

#include "zalka/zalka.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/math.h"
#include "grover/grover.h"
#include "qsim/kernels.h"

namespace pqs::zalka {
namespace {

TEST(StateAngle, BasicGeometry) {
  const auto a = qsim::StateVector::basis(3, 0);
  const auto b = qsim::StateVector::basis(3, 5);
  const auto u = qsim::StateVector::uniform(3);
  EXPECT_NEAR(state_angle(a, a), 0.0, 1e-9);
  EXPECT_NEAR(state_angle(a, b), kHalfPi, 1e-12);
  EXPECT_NEAR(state_angle(a, u), std::acos(1.0 / std::sqrt(8.0)), 1e-12);
}

TEST(StateAngle, InsensitiveToGlobalPhase) {
  auto a = qsim::StateVector::uniform(4);
  auto b = a;
  b.scale(qsim::Amplitude{-1.0, 0.0});
  EXPECT_NEAR(state_angle(a, b), 0.0, 1e-9);
}

class ZalkaOnGrover : public ::testing::TestWithParam<unsigned> {};

TEST_P(ZalkaOnGrover, AllThreeLemmasHold) {
  const unsigned n = GetParam();
  const auto t = grover::optimal_iterations(pow2(n));
  ZalkaOptions options;
  options.lemma2_sample = 8;
  const auto report = analyze_grover(n, t, options);

  // Lemma 3: every per-query sum within the ceiling.
  EXPECT_LE(report.max_per_query_sum, report.lemma3_ceiling + 1e-9)
      << "n=" << n;
  // Lemma 1: the final-angle sum above the floor.
  EXPECT_GE(report.sum_final_angles, report.lemma1_floor - 1e-9) << "n=" << n;
  // Lemma 2: hybrid steps within 2 arcsin sqrt(p).
  EXPECT_TRUE(report.lemma2_holds) << "n=" << n
                                   << " slack=" << report.lemma2_worst_slack;
  // The chain: T >= sum / (2 sqrt(N)(1+1/N)).
  EXPECT_GE(static_cast<double>(report.queries) + 1e-9,
            report.implied_query_floor)
      << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sizes, ZalkaOnGrover,
                         ::testing::Values(4u, 5u, 6u, 7u, 8u));

TEST(Zalka, GroverAtOptimumHasSmallEps) {
  const auto report = analyze_grover(8, grover::optimal_iterations(256));
  EXPECT_LT(report.eps, 0.02);
  EXPECT_GT(report.min_success, 0.98);
}

TEST(Zalka, ImpliedFloorIsNearlyTightForGrover) {
  // Grover IS optimal: the implied floor should recover a constant fraction
  // of the actual count (the bound loses the (1 - O(N^-1/4)) factor).
  const unsigned n = 8;
  const auto t = grover::optimal_iterations(pow2(n));
  const auto report = analyze_grover(n, t);
  EXPECT_GT(report.implied_query_floor,
            0.7 * static_cast<double>(report.queries));
}

TEST(Zalka, TooFewIterationsMeansLargeEps) {
  // Half the optimal count cannot be near-perfect; Theorem 3's floor then
  // degrades gracefully (sqrt(eps) term).
  const auto report = analyze_grover(8, grover::optimal_iterations(256) / 2);
  EXPECT_GT(report.eps, 0.2);
}

TEST(Zalka, PerQuerySumsAreSqrtNScale) {
  const unsigned n = 6;
  const auto report = analyze_grover(n, 5);
  const double sqrt_n = std::sqrt(64.0);
  for (const double s : report.per_query_sums) {
    EXPECT_GT(s, 0.9 * sqrt_n);
    EXPECT_LE(s, report.lemma3_ceiling + 1e-12);
  }
}

TEST(Zalka, IdentityOracleRunStaysUniform) {
  // For Grover specifically, the all-identity run fixes |psi0>, so
  // p_{i,y} = 1/N for every i and S_i = N arcsin(1/sqrt(N)).
  const unsigned n = 6;
  const auto report = analyze_grover(n, 4);
  const double expected = 64.0 * std::asin(1.0 / 8.0);
  for (const double s : report.per_query_sums) {
    EXPECT_NEAR(s, expected, 1e-9);
  }
}

TEST(Zalka, Theorem3FloorClosedForm) {
  const double floor_perfect = theorem3_floor(1 << 16, 0.0);
  EXPECT_NEAR(floor_perfect, kQuarterPi * 256.0 * (1.0 - 1.0 / 16.0), 1e-9);
  EXPECT_LT(theorem3_floor(1 << 16, 0.09), floor_perfect);
}

TEST(Zalka, AnalyzeRejectsQuerylessCircuit) {
  qsim::Circuit c(4);
  c.hadamard_all();
  EXPECT_THROW(analyze_circuit(c), CheckFailure);
}

TEST(Zalka, WorksOnNonGroverCircuits) {
  // A deliberately bad algorithm (oracle calls with no amplification) still
  // satisfies the lemmas; its eps is huge.
  qsim::Circuit c(5);
  c.oracle().layer(qsim::gates::H()).oracle().layer(qsim::gates::H());
  const auto report = analyze_circuit(c);
  EXPECT_LE(report.max_per_query_sum, report.lemma3_ceiling + 1e-9);
  EXPECT_GE(report.sum_final_angles, -1e-9);
  EXPECT_GT(report.eps, 0.5);
}

}  // namespace
}  // namespace pqs::zalka

#include "reduction/reduction.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/math.h"
#include "partial/bounds.h"
#include "partial/certainty.h"
#include "partial/optimizer.h"

namespace pqs::reduction {
namespace {

TEST(Reduction, FindsTargetExactly) {
  Rng rng(11);
  for (const qsim::Index target : {0u, 1u, 500u, 1023u}) {
    const oracle::Database db = oracle::Database::with_qubits(10, target);
    const auto result = search_full_via_partial(db, 2, rng);
    ASSERT_TRUE(result.correct) << "target=" << target;
    ASSERT_EQ(result.found, target);
  }
}

TEST(Reduction, LevelSizesShrinkByK) {
  Rng rng(12);
  const oracle::Database db = oracle::Database::with_qubits(12, 999);
  const auto result = search_full_via_partial(db, 2, rng);
  ASSERT_GE(result.levels.size(), 2u);
  for (std::size_t i = 0; i + 1 < result.levels.size(); ++i) {
    if (result.levels[i].via_partial_search) {
      EXPECT_EQ(result.levels[i + 1].db_size, result.levels[i].db_size / 4);
    }
  }
  EXPECT_FALSE(result.levels.back().via_partial_search);
}

TEST(Reduction, QueryAccountingAddsUp) {
  Rng rng(13);
  const oracle::Database db = oracle::Database::with_qubits(10, 77);
  const auto result = search_full_via_partial(db, 1, rng);
  std::uint64_t total = 0;
  for (const auto& level : result.levels) {
    total += level.queries;
  }
  EXPECT_EQ(total, result.total_queries);
  EXPECT_EQ(db.queries(), result.total_queries);
}

TEST(Reduction, BitsFixedSumToN) {
  Rng rng(14);
  const oracle::Database db = oracle::Database::with_qubits(11, 2047);
  const auto result = search_full_via_partial(db, 3, rng);
  std::uint64_t bits = 0;
  for (const auto& level : result.levels) {
    bits += level.bits_fixed;
  }
  EXPECT_EQ(bits, 11u);
  EXPECT_TRUE(result.correct);
}

TEST(Reduction, TotalQueriesWithinTheorem2Accounting) {
  // Measured total <= bound computed from the *measured* per-level
  // coefficient is circular; instead compare against the geometric bound
  // with the certainty schedule's own top-level coefficient, plus the
  // brute-force tail.
  Rng rng(15);
  const unsigned n = 14;
  const unsigned k = 2;
  const std::uint64_t n_items = pow2(n);
  const oracle::Database db = oracle::Database::with_qubits(n, 12345);
  const auto result = search_full_via_partial(db, k, rng);

  const auto top = partial::certainty_schedule(n_items, pow2(k));
  const double top_coeff = static_cast<double>(top.queries) /
                           std::sqrt(static_cast<double>(n_items));
  const double bound =
      theorem2_query_bound(top_coeff, n_items, pow2(k)) +
      32.0;  // brute-force tail + per-level O(1) slack
  EXPECT_LE(static_cast<double>(result.total_queries), bound);
}

TEST(Reduction, CannotBeatZalkaFloor) {
  // The reduction solves FULL search with zero error, so it cannot use fewer
  // than ~ (pi/4) sqrt(N) queries. This is exactly how Theorem 2's proof
  // forces the partial-search lower bound.
  Rng rng(16);
  const unsigned n = 14;
  const std::uint64_t n_items = pow2(n);
  const oracle::Database db = oracle::Database::with_qubits(n, 4242);
  const auto result = search_full_via_partial(db, 2, rng);
  const double zalka_floor =
      kQuarterPi * std::sqrt(static_cast<double>(n_items));
  // Allow the O(sqrt(N_level)) lower-order corrections of finite levels.
  EXPECT_GT(static_cast<double>(result.total_queries), 0.8 * zalka_floor);
}

TEST(Reduction, LargerKMeansFewerLevels) {
  Rng rng(17);
  const oracle::Database db1 = oracle::Database::with_qubits(12, 100);
  const auto r1 = search_full_via_partial(db1, 1, rng);
  const oracle::Database db2 = oracle::Database::with_qubits(12, 100);
  const auto r4 = search_full_via_partial(db2, 4, rng);
  EXPECT_GT(r1.levels.size(), r4.levels.size());
}

TEST(Reduction, BruteForceThresholdRespected) {
  Rng rng(18);
  const oracle::Database db = oracle::Database::with_qubits(10, 512);
  ReductionOptions options;
  options.brute_force_below = 64;
  const auto result = search_full_via_partial(db, 2, rng, options);
  ASSERT_TRUE(result.correct);
  EXPECT_FALSE(result.levels.back().via_partial_search);
  EXPECT_LE(result.levels.back().db_size, 64u);
}

TEST(Reduction, Theorem2BoundFormula) {
  // alpha sqrt(K)/(sqrt(K)-1) sqrt(N).
  EXPECT_NEAR(theorem2_query_bound(0.5, 1 << 10, 4), 0.5 * 32.0 * 2.0, 1e-9);
}

TEST(Reduction, RejectsNonPowerOfTwo) {
  Rng rng(19);
  const oracle::Database db(12, 3);
  EXPECT_THROW(search_full_via_partial(db, 1, rng), CheckFailure);
}

}  // namespace
}  // namespace pqs::reduction

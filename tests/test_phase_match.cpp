#include "partial/phase_match.h"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "common/math.h"
#include "common/random.h"

namespace pqs::partial {
namespace {

using Cplx = std::complex<double>;

Cplx residual_r_form(const PhaseMatch& pm, double A, double B, double R) {
  const Cplx u = std::polar(1.0, pm.diffusion_phase) - 1.0;
  return u * (A * std::polar(1.0, pm.oracle_phase) + B) - R;
}

Cplx residual_affine(const PhaseMatch& pm, double A, double B, double a0,
                     double C) {
  const Cplx zeta = std::polar(1.0, pm.diffusion_phase);
  const Cplx u = zeta - 1.0;
  return a0 + u * (A * std::polar(1.0, pm.oracle_phase) + B) - C * zeta;
}

TEST(PhaseMatchRForm, SolutionSatisfiesEquation) {
  Rng rng(101);
  int feasible = 0;
  for (int trial = 0; trial < 500; ++trial) {
    const double A = rng.uniform(-1.0, 1.0);
    const double B = rng.uniform(-1.0, 1.0);
    const double R = rng.uniform(-0.5, 0.5);
    const auto pm = solve_phase_match(A, B, R);
    if (!pm.feasible) {
      continue;
    }
    ++feasible;
    ASSERT_LT(std::abs(residual_r_form(pm, A, B, R)), 1e-9)
        << "A=" << A << " B=" << B << " R=" << R;
  }
  EXPECT_GT(feasible, 100);  // the feasible region is a fat set
}

TEST(PhaseMatchRForm, ZeroDisplacementIsIdentity) {
  const auto pm = solve_phase_match(0.5, 0.2, 0.0);
  ASSERT_TRUE(pm.feasible);
  EXPECT_DOUBLE_EQ(pm.diffusion_phase, 0.0);
}

TEST(PhaseMatchRForm, NoCouplingIsInfeasible) {
  EXPECT_FALSE(solve_phase_match(0.0, 0.3, 0.2).feasible);
}

TEST(PhaseMatchRForm, UnreachableDisplacementIsInfeasible) {
  // |u|^2 = R^2/(A^2 - B^2 - RB) > 4 for tiny A and large R.
  EXPECT_FALSE(solve_phase_match(0.01, 0.0, 0.9).feasible);
}

TEST(PhaseMatchAffine, SolutionSatisfiesEquation) {
  Rng rng(202);
  int feasible = 0;
  for (int trial = 0; trial < 1000; ++trial) {
    const double A = rng.uniform(-1.0, 1.0);
    const double B = rng.uniform(-1.0, 1.0);
    const double a0 = rng.uniform(-1.0, 1.0);
    const double C = rng.uniform(-1.0, 1.0);
    const auto pm = solve_phase_match_affine(A, B, a0, C);
    if (!pm.feasible) {
      continue;
    }
    ++feasible;
    ASSERT_LT(std::abs(residual_affine(pm, A, B, a0, C)), 1e-8)
        << "A=" << A << " B=" << B << " a0=" << a0 << " C=" << C;
  }
  EXPECT_GT(feasible, 100);
}

TEST(PhaseMatchAffine, ExactGroverSpecialCase) {
  // The sure-success full-search condition is the affine form with C = 0:
  // a_r + u(A e^{i phi} + B) = 0. Check it against the known geometry of
  // N = 64 after the no-overshoot iteration count.
  const double theta = std::asin(1.0 / 8.0);
  const auto m = static_cast<std::uint64_t>(
      std::floor((kHalfPi / theta - 1.0) / 2.0));
  const double a_t = std::sin((2.0 * static_cast<double>(m) + 1.0) * theta);
  const double a_r = std::cos((2.0 * static_cast<double>(m) + 1.0) * theta);
  const double s = std::sin(theta), c = std::cos(theta);
  const auto pm =
      solve_phase_match_affine(s * c * a_t, c * c * a_r, a_r, 0.0);
  ASSERT_TRUE(pm.feasible);
  EXPECT_LT(std::abs(residual_affine(pm, s * c * a_t, c * c * a_r, a_r, 0.0)),
            1e-10);
}

TEST(PhaseMatchAffine, NoCouplingIsInfeasible) {
  EXPECT_FALSE(solve_phase_match_affine(0.0, 0.1, 0.5, 0.0).feasible);
}

TEST(PhaseMatchAffine, PhasesAreFiniteAndInRange) {
  Rng rng(303);
  for (int trial = 0; trial < 200; ++trial) {
    const auto pm = solve_phase_match_affine(
        rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0),
        rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
    if (pm.feasible) {
      ASSERT_TRUE(std::isfinite(pm.oracle_phase));
      ASSERT_TRUE(std::isfinite(pm.diffusion_phase));
      ASSERT_LE(std::fabs(pm.oracle_phase), kPi + 1e-9);
      ASSERT_LE(pm.diffusion_phase, kPi + 1e-9);
      ASSERT_GE(pm.diffusion_phase, 0.0);
    }
  }
}

}  // namespace
}  // namespace pqs::partial

#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace pqs {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.next() == b.next() ? 1 : 0;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformBelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.uniform_below(bound), bound);
    }
  }
}

TEST(Rng, UniformBelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.uniform_below(1), 0u);
  }
}

TEST(Rng, UniformBelowCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.uniform_below(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformBelowIsApproximatelyUniform) {
  Rng rng(13);
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.uniform_below(kBuckets)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, 600);  // ~6 sigma
  }
}

TEST(Rng, UniformIntInclusiveEndpoints) {
  Rng rng(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01HalfOpenAndCentered) {
  Rng rng(19);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(23);
  double sum = 0.0, sum2 = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.02);
  EXPECT_NEAR(sum2 / kSamples, 1.0, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    hits += rng.bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, BernoulliRejectsBadProbability) {
  Rng rng(1);
  EXPECT_THROW(rng.bernoulli(-0.1), CheckFailure);
  EXPECT_THROW(rng.bernoulli(1.1), CheckFailure);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(31);
  const auto perm = rng.permutation(100);
  std::set<std::uint64_t> values(perm.begin(), perm.end());
  EXPECT_EQ(values.size(), 100u);
  EXPECT_EQ(*values.begin(), 0u);
  EXPECT_EQ(*values.rbegin(), 99u);
}

TEST(Rng, PermutationShuffles) {
  Rng rng(37);
  const auto perm = rng.permutation(1000);
  std::uint64_t fixed_points = 0;
  for (std::uint64_t i = 0; i < perm.size(); ++i) {
    fixed_points += perm[i] == i ? 1 : 0;
  }
  EXPECT_LT(fixed_points, 20u);  // expectation is 1
}

TEST(Rng, SampleDiscreteRespectsWeights) {
  Rng rng(41);
  const std::vector<double> weights{1.0, 0.0, 3.0};
  int counts[3] = {};
  for (int i = 0; i < 40000; ++i) {
    ++counts[rng.sample_discrete(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
}

TEST(Rng, SampleDiscreteRejectsDegenerateInput) {
  Rng rng(1);
  EXPECT_THROW(rng.sample_discrete({}), CheckFailure);
  EXPECT_THROW(rng.sample_discrete({0.0, 0.0}), CheckFailure);
  EXPECT_THROW(rng.sample_discrete({1.0, -1.0}), CheckFailure);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(43);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += parent.next() == child.next() ? 1 : 0;
  }
  EXPECT_LT(same, 4);
}

TEST(Splitmix64, KnownFirstOutput) {
  // Reference value from the splitmix64 reference implementation with
  // state 0: first output is 0xe220a8397b1dcdaf.
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xe220a8397b1dcdafULL);
}

}  // namespace
}  // namespace pqs
